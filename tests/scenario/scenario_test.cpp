#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "node/testbed.hpp"
#include "scenario/json.hpp"
#include "scenario/scenario.hpp"
#include "sim/units.hpp"

namespace tfsim::scenario {
namespace {

// --- built-ins ---------------------------------------------------------

TEST(ScenarioBuiltinTest, LookupByFileStem) {
  EXPECT_TRUE(builtin("paper_twonode").has_value());
  EXPECT_TRUE(builtin("pooling_1xN").has_value());
  EXPECT_TRUE(builtin("trunk_contention").has_value());
  EXPECT_TRUE(builtin("leafspine_rack128").has_value());
  EXPECT_FALSE(builtin("no-such-scenario").has_value());
}

TEST(ScenarioBuiltinTest, LeafSpineRackShape) {
  const ScenarioSpec spec = leafspine_rack();
  EXPECT_EQ(spec.topology.kind, TopologyKind::kLeafSpine);
  EXPECT_EQ(spec.topology.leaves, 8u);
  EXPECT_EQ(spec.topology.spines, 4u);
  EXPECT_EQ(spec.topology.switch_count(), 12u);
  EXPECT_EQ(spec.expanded_node_count(), 256u);  // 128 borrowers + 128 lenders
  EXPECT_TRUE(spec.pdes.enabled());
  EXPECT_EQ(spec.sweep.borrowers,
            (std::vector<std::uint32_t>{16, 32, 64, 128, 256}));
}

TEST(ScenarioBuiltinTest, SwitchCountPerKind) {
  ScenarioSpec spec;
  spec.topology.kind = TopologyKind::kDirect;
  EXPECT_EQ(spec.topology.switch_count(), 0u);
  spec.topology.kind = TopologyKind::kDumbbell;
  EXPECT_EQ(spec.topology.switch_count(), 2u);
  spec.topology.kind = TopologyKind::kLeafSpine;
  spec.topology.leaves = 3;
  spec.topology.spines = 2;
  EXPECT_EQ(spec.topology.switch_count(), 5u);
}

TEST(ScenarioBuiltinTest, PaperTwoNodeMatchesTestbedDefaults) {
  const ScenarioSpec spec = paper_two_node();
  ASSERT_EQ(spec.nodes.size(), 2u);
  EXPECT_EQ(spec.nodes[0].role, Role::kBorrower);
  EXPECT_EQ(spec.nodes[1].role, Role::kLender);
  EXPECT_TRUE(spec.nodes[0].nic_enabled());
  EXPECT_FALSE(spec.nodes[1].nic_enabled());
  ASSERT_EQ(spec.reservations.size(), 1u);
  EXPECT_EQ(spec.reservations[0].name, "thymesisflow-borrowed");

  // Round-trips through the legacy TestbedSpec without loss.
  const node::TestbedSpec tb = node::to_testbed_spec(spec);
  const node::TestbedSpec ref = node::thymesisflow_testbed();
  EXPECT_EQ(tb.remote_gib, ref.remote_gib);
  EXPECT_EQ(tb.borrower.dram.capacity_bytes, ref.borrower.dram.capacity_bytes);
  EXPECT_EQ(tb.borrower.nic.window_entries, ref.borrower.nic.window_entries);

  // Apart from naming and workload bindings (which only scenario-driven
  // benches consume), the shim's scenario is the built-in.
  ScenarioSpec shim = node::to_scenario(tb);
  shim.name = spec.name;
  shim.description = spec.description;
  shim.workloads = spec.workloads;
  EXPECT_EQ(resolved_json(shim), resolved_json(spec));
}

TEST(ScenarioBuiltinTest, CountExpansionAndOverrides) {
  ScenarioSpec spec = pooling_1xN(4);
  EXPECT_EQ(spec.expanded_node_count(), 5u);  // 1 borrower + 4 lenders
  spec.set_lender_count(8);
  EXPECT_EQ(spec.expanded_node_count(), 9u);
  spec.set_borrower_count(2);
  EXPECT_EQ(spec.expanded_node_count(), 10u);
}

// --- JSON parse / serialize --------------------------------------------

TEST(ScenarioJsonTest, ResolvedJsonRoundTripsExactly) {
  for (const char* name : {"paper_twonode", "pooling_1xN", "trunk_contention",
                           "leafspine_rack128"}) {
    const ScenarioSpec spec = *builtin(name);
    const std::string dumped = resolved_json(spec);
    EXPECT_EQ(resolved_json(parse(dumped)), dumped) << name;
  }
}

TEST(ScenarioJsonTest, LeafSpineTopologyBlockParses) {
  const ScenarioSpec spec = parse(R"({
    "name": "rack",
    "nodes": [
      {"name": "b", "role": "borrower", "count": 4},
      {"name": "l", "role": "lender", "count": 4}
    ],
    "topology": {"kind": "leaf_spine", "leaves": 2, "spines": 3,
                 "uplink": {"bandwidth_gbit": 200, "propagation_ns": 450},
                 "switch": {"buffer_kib": 64, "policy": "drop"}}
  })");
  EXPECT_EQ(spec.topology.kind, TopologyKind::kLeafSpine);
  EXPECT_EQ(spec.topology.leaves, 2u);
  EXPECT_EQ(spec.topology.spines, 3u);
  EXPECT_DOUBLE_EQ(spec.topology.uplink.bandwidth.gbit_per_sec(), 200.0);
  EXPECT_EQ(spec.topology.uplink.propagation, sim::from_ns(450.0));
  EXPECT_EQ(spec.topology.sw.buffer_bytes, 64u * 1024u);
  EXPECT_EQ(spec.topology.sw.policy, net::QueuePolicy::kDrop);
  const std::string dumped = resolved_json(spec);
  EXPECT_EQ(resolved_json(parse(dumped)), dumped);
}

TEST(ScenarioJsonTest, TopologyDefaultsStaySwitchless) {
  const ScenarioSpec spec = parse(R"({"nodes": [{"name": "b"}]})");
  EXPECT_EQ(spec.topology.kind, TopologyKind::kDirect);
  EXPECT_EQ(spec.topology.leaves, 2u);
  EXPECT_EQ(spec.topology.spines, 2u);
  EXPECT_EQ(spec.topology.sw.policy, net::QueuePolicy::kBackpressure);
}

TEST(ScenarioJsonTest, LeafSpineValidation) {
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b"}],
                          "topology": {"kind": "leaf_spine", "leaves": 0}})"),
               JsonError);
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b"}],
                          "topology": {"kind": "leaf_spine", "spines": 0}})"),
               JsonError);
  EXPECT_THROW(
      parse(R"({"nodes": [{"name": "b"}],
                "topology": {"switch": {"policy": "red"}}})"),
      JsonError)
      << "unknown queue policy";
  EXPECT_THROW(
      parse(R"({"nodes": [{"name": "b"}],
                "topology": {"switch": {"depth_kib": 64}}})"),
      JsonError)
      << "unknown switch key";
}

TEST(ScenarioJsonTest, UnitsBearingKeysParse) {
  const ScenarioSpec spec = parse(R"({
    "name": "mini",
    "policy": "most-free",
    "nodes": [
      {"name": "b", "role": "borrower",
       "dram": {"capacity_gib": 2, "bandwidth_gbyte": 70, "latency_ns": 50},
       "nic": {"window_entries": 64, "period": 8}},
      {"name": "l", "role": "lender", "count": 3}
    ],
    "topology": {"kind": "dumbbell",
                 "trunk": {"bandwidth_gbit": 50, "propagation_ns": 600}},
    "injector": {"period": 16},
    "reservations": [{"size_gib": 1, "chunks": 3, "name": "r"}],
    "sweep": {"periods": [1, 100]}
  })");
  EXPECT_EQ(spec.name, "mini");
  EXPECT_EQ(spec.policy, "most-free");
  ASSERT_EQ(spec.nodes.size(), 2u);
  EXPECT_EQ(spec.nodes[0].dram.capacity_bytes, 2 * sim::kGiB);
  EXPECT_DOUBLE_EQ(spec.nodes[0].dram.bus_bandwidth.gbyte_per_sec(), 70.0);
  EXPECT_EQ(spec.nodes[0].dram.access_latency, sim::from_ns(50.0));
  EXPECT_EQ(spec.nodes[0].nic.window_entries, 64u);
  EXPECT_EQ(spec.nodes[0].nic.period, 8u);
  EXPECT_EQ(spec.nodes[1].count, 3u);
  EXPECT_FALSE(spec.nodes[1].nic_enabled()) << "lender default: no NIC";
  EXPECT_EQ(spec.topology.kind, TopologyKind::kDumbbell);
  EXPECT_DOUBLE_EQ(spec.topology.trunk.bandwidth.gbit_per_sec(), 50.0);
  EXPECT_EQ(spec.topology.trunk.propagation, sim::from_ns(600.0));
  EXPECT_EQ(spec.injector.period, 16u);
  ASSERT_EQ(spec.reservations.size(), 1u);
  EXPECT_EQ(spec.reservations[0].chunks, 3u);
  EXPECT_EQ(spec.sweep.periods, (std::vector<std::uint64_t>{1, 100}));
}

TEST(ScenarioJsonTest, FaultsBlockParses) {
  const ScenarioSpec spec = parse(R"({
    "name": "faulty",
    "nodes": [
      {"name": "b", "role": "borrower",
       "nic": {"retry_timeout_us": 10, "retry_backoff": 1.5,
               "max_retries": 3, "detach_threshold": 2}},
      {"name": "l", "role": "lender"}
    ],
    "faults": {
      "loss_rate": 0.01,
      "corrupt_rate": 0.001,
      "seed": 9,
      "flaps": [{"at_us": 50, "for_us": 25, "factor": 0},
                {"at_us": 120, "for_us": 40, "factor": 0.25}],
      "kill_lender": {"node": "l", "at_us": 200}
    }
  })");
  EXPECT_TRUE(spec.faults.enabled());
  EXPECT_DOUBLE_EQ(spec.faults.link.loss_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.faults.link.corrupt_rate, 0.001);
  EXPECT_EQ(spec.faults.link.seed, 9u);
  ASSERT_EQ(spec.faults.link.flaps.size(), 2u);
  EXPECT_EQ(spec.faults.link.flaps[0].start, sim::from_us(50.0));
  EXPECT_EQ(spec.faults.link.flaps[0].duration, sim::from_us(25.0));
  EXPECT_TRUE(spec.faults.link.flaps[0].down());
  EXPECT_DOUBLE_EQ(spec.faults.link.flaps[1].bandwidth_factor, 0.25);
  EXPECT_EQ(spec.faults.kill_lender, "l");
  EXPECT_DOUBLE_EQ(spec.faults.kill_at_us, 200.0);
  // The nic retry knobs landed in the replay config.
  EXPECT_EQ(spec.nodes[0].nic.replay.retry_timeout, sim::from_us(10.0));
  EXPECT_DOUBLE_EQ(spec.nodes[0].nic.replay.backoff, 1.5);
  EXPECT_EQ(spec.nodes[0].nic.replay.max_retries, 3u);
  EXPECT_EQ(spec.nodes[0].nic.replay.detach_threshold, 2u);
}

TEST(ScenarioJsonTest, FaultsDefaultToPristine) {
  const ScenarioSpec spec = parse(R"({"nodes": [{"name": "b"}]})");
  EXPECT_FALSE(spec.faults.enabled());
  EXPECT_TRUE(spec.faults.kill_lender.empty());
}

TEST(ScenarioJsonTest, FaultySpecRoundTripsExactly) {
  ScenarioSpec spec = *builtin("paper_twonode");
  spec.faults.link.loss_rate = 1e-3;
  spec.faults.link.flaps.push_back(
      net::FlapSpec{sim::from_us(50.0), sim::from_us(25.0), 0.0});
  spec.faults.kill_lender = "lender";
  spec.faults.kill_at_us = 300.0;
  const std::string dumped = resolved_json(spec);
  EXPECT_EQ(resolved_json(parse(dumped)), dumped);
}

TEST(ScenarioJsonTest, FaultsUnknownKeysRejected) {
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b"}],
                          "faults": {"loss": 0.1}})"),
               JsonError);
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b"}],
                          "faults": {"flaps": [{"at_us": 1, "dur_us": 2}]}})"),
               JsonError);
  EXPECT_THROW(
      parse(R"({"nodes": [{"name": "b"}],
                "faults": {"kill_lender": {"node": "l", "when_us": 5}}})"),
      JsonError);
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b"}],
                          "faults": {"kill_lender": {"at_us": 5}}})"),
               JsonError)
      << "kill_lender requires a node name";
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b",
                          "nic": {"retry_us": 10}}]})"),
               JsonError);
}

TEST(ScenarioJsonTest, PdesBlockParsesAndRoundTrips) {
  const ScenarioSpec spec = parse(R"({
    "name": "pdes_mini",
    "nodes": [{"name": "b", "role": "borrower"}, {"name": "l", "count": 3}],
    "pdes": {"threads": 8, "lookahead_ns": 250}
  })");
  EXPECT_TRUE(spec.pdes.enabled());
  EXPECT_EQ(spec.pdes.threads, 8u);
  EXPECT_DOUBLE_EQ(spec.pdes.lookahead_ns, 250.0);
  const std::string dumped = resolved_json(spec);
  EXPECT_EQ(resolved_json(parse(dumped)), dumped);

  // Default: PDES off, lookahead derived from the fabric.
  const ScenarioSpec off = parse(R"({"nodes": [{"name": "b"}]})");
  EXPECT_FALSE(off.pdes.enabled());
  EXPECT_EQ(off.pdes.threads, 0u);
  EXPECT_DOUBLE_EQ(off.pdes.lookahead_ns, 0.0);
}

TEST(ScenarioJsonTest, PdesBlockRejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b"}],
                          "pdes": {"workers": 4}})"),
               JsonError);
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b"}],
                          "pdes": {"threads": 4, "lookahead_ns": -1}})"),
               JsonError)
      << "negative lookahead must be rejected at parse time";
}

TEST(ScenarioJsonTest, UnknownKeysRejected) {
  EXPECT_THROW(parse(R"({"name": "x", "bogus": 1})"), JsonError);
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b", "typo_role": "borrower"}]})"),
               JsonError);
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b"}],
                          "topology": {"link": {"bandwidth_mbit": 1}}})"),
               JsonError);
}

TEST(ScenarioJsonTest, InvalidValuesRejected) {
  EXPECT_THROW(parse(R"({"nodes": [{"role": "overlord"}]})"), JsonError);
  EXPECT_THROW(parse(R"({"nodes": [{"name": "b"}],
                          "topology": {"kind": "ring"}})"),
               JsonError);
  EXPECT_THROW(parse("{"), JsonError);            // truncated document
  EXPECT_THROW(parse(R"({"name": 42})"), JsonError);  // kind mismatch
}

// --- chaos timeline + detector ------------------------------------------

TEST(ScenarioChaosTest, ChaosAndDetectorBlocksParse) {
  const ScenarioSpec spec = parse(R"({
    "name": "chaotic",
    "nodes": [
      {"name": "b", "role": "borrower", "count": 4},
      {"name": "l", "role": "lender", "count": 4}
    ],
    "topology": {"kind": "leaf_spine", "leaves": 2, "spines": 2},
    "chaos": {
      "seed": 11,
      "events": [
        {"at_us": 100, "kind": "gray_lender", "target": "l0", "factor": 6},
        {"at_us": 300, "kind": "recover", "target": "l0"},
        {"at_us": 400, "kind": "brownout_port", "target": "leaf0:spine1",
         "factor": 0.25, "for_us": 100},
        {"at_us": 600, "kind": "kill_switch", "target": "spine0"}
      ]
    },
    "detector": {"enabled": true, "alpha": 0.5, "latency_threshold": 2.5,
                 "timeout_weight": 8, "warmup": 8, "confirm": 2,
                 "probe_interval": 4, "rejoin_margin": 1.25,
                 "rejoin_confirm": 2}
  })");

  EXPECT_TRUE(spec.chaos.enabled());
  EXPECT_EQ(spec.chaos.seed, 11u);
  ASSERT_EQ(spec.chaos.events.size(), 4u);
  EXPECT_EQ(spec.chaos.events[0].kind, ChaosKind::kGrayLender);
  EXPECT_DOUBLE_EQ(spec.chaos.events[0].factor, 6.0);
  EXPECT_EQ(spec.chaos.events[3].kind, ChaosKind::kKillSwitch);
  EXPECT_EQ(spec.chaos.events[3].target, "spine0");

  EXPECT_TRUE(spec.detector.enabled);
  EXPECT_DOUBLE_EQ(spec.detector.alpha, 0.5);
  EXPECT_DOUBLE_EQ(spec.detector.latency_threshold, 2.5);
  EXPECT_EQ(spec.detector.warmup, 8u);
  EXPECT_DOUBLE_EQ(spec.detector.rejoin_margin, 1.25);
  EXPECT_EQ(spec.detector.rejoin_confirm, 2u);

  // The timeline resolves into windows: gray closed by its recover,
  // brownout closed by for_us, kill left open (runs to the horizon).
  const auto windows = resolve_chaos(spec.chaos);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].kind, ChaosKind::kGrayLender);
  EXPECT_EQ(windows[0].end, sim::from_us(300.0));
  EXPECT_EQ(windows[1].end, sim::from_us(500.0));
  EXPECT_EQ(windows[2].kind, ChaosKind::kKillSwitch);
  EXPECT_EQ(windows[2].end, sim::kTimeNever);

  const std::string dumped = resolved_json(spec);
  EXPECT_EQ(resolved_json(parse(dumped)), dumped);
}

TEST(ScenarioChaosTest, ChaosRackBuiltinRoundTripsExactly) {
  for (const char* name : {"chaos_rack", "serving_diurnal"}) {
    const ScenarioSpec spec = *builtin(name);
    const std::string dumped = resolved_json(spec);
    EXPECT_EQ(resolved_json(parse(dumped)), dumped) << name;
  }
}

TEST(ScenarioChaosTest, MalformedTimelineFailsAtParseNamingTheEvent) {
  const auto chaos_doc = [](const std::string& events) {
    return R"({"nodes": [{"name": "b"}], "chaos": {"events": [)" + events +
           "]}}";
  };
  const auto expect_message = [&](const std::string& events,
                                  const std::string& needle) {
    try {
      parse(chaos_doc(events));
      FAIL() << "expected rejection mentioning \"" << needle << "\"";
    } catch (const JsonError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  // Unmatched recover: nothing open on the target.
  expect_message(
      R"({"at_us": 10, "kind": "recover", "target": "spine0"})",
      "chaos event 0: recover for \"spine0\" matches no open chaos window");
  // Double-open on one target without a recover in between.
  expect_message(
      R"({"at_us": 10, "kind": "kill_switch", "target": "spine0"},
         {"at_us": 20, "kind": "kill_switch", "target": "spine0"})",
      "chaos event 1: target \"spine0\" already has an open chaos window");
  // A bounded window the next event overlaps.
  expect_message(
      R"({"at_us": 10, "kind": "kill_switch", "target": "spine0",
          "for_us": 100},
         {"at_us": 50, "kind": "kill_switch", "target": "spine0"})",
      "chaos event 1 overlaps the previous window on \"spine0\"");
  // Out-of-order timeline.
  expect_message(
      R"({"at_us": 50, "kind": "kill_switch", "target": "spine0"},
         {"at_us": 10, "kind": "kill_switch", "target": "spine1"})",
      "chaos events 0 and 1 out of order");
  // Factor validation per kind.
  expect_message(
      R"({"at_us": 10, "kind": "gray_lender", "target": "l0", "factor": 1})",
      "chaos event 0: gray_lender factor must be > 1");
  expect_message(
      R"({"at_us": 10, "kind": "brownout_port", "target": "leaf0:spine0",
          "factor": 1.5})",
      "chaos event 0: brownout_port factor must be in [0, 1)");
  expect_message(
      R"({"at_us": 10, "kind": "brownout_port", "target": "leaf0",
          "factor": 0.5})",
      "chaos event 0: brownout_port target must be \"switch:neighbor\"");
  expect_message(
      R"({"at_us": 10, "kind": "kill_switch", "target": "spine0",
          "factor": 0.5})",
      "chaos event 0: kill_switch takes no factor");

  // Unknown kinds and keys are scenario-level errors too.
  EXPECT_THROW(parse(chaos_doc(
                   R"({"at_us": 1, "kind": "meteor", "target": "spine0"})")),
               JsonError);
  EXPECT_THROW(parse(chaos_doc(
                   R"({"at": 1, "kind": "kill_switch", "target": "s"})")),
               JsonError);
}

TEST(ScenarioChaosTest, DetectorValidationRejectsBadKnobs) {
  const auto detector_doc = [](const std::string& body) {
    return R"({"nodes": [{"name": "b"}], "detector": {)" + body + "}}";
  };
  EXPECT_THROW(parse(detector_doc(R"("alpha": 0)")), JsonError);
  EXPECT_THROW(parse(detector_doc(R"("alpha": 1.5)")), JsonError);
  EXPECT_THROW(parse(detector_doc(R"("latency_threshold": 1)")), JsonError);
  EXPECT_THROW(parse(detector_doc(R"("rejoin_margin": 0.9)")), JsonError)
      << "a margin under 1x the healthy baseline can never be met";
  EXPECT_THROW(parse(detector_doc(R"("warmup": 0)")), JsonError);
  EXPECT_THROW(parse(detector_doc(R"("confirm": 0)")), JsonError);
  EXPECT_THROW(parse(detector_doc(R"("sensitivity": 2)")), JsonError)
      << "unknown detector key";
  // Defaults parse clean and round-trip.
  const ScenarioSpec spec = parse(detector_doc(R"("enabled": true)"));
  EXPECT_TRUE(spec.detector.enabled);
  EXPECT_DOUBLE_EQ(spec.detector.rejoin_margin, 1.5);
  const std::string dumped = resolved_json(spec);
  EXPECT_EQ(resolved_json(parse(dumped)), dumped);
}

}  // namespace
}  // namespace tfsim::scenario
