#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "capi/credit.hpp"
#include "capi/frame.hpp"
#include "capi/opcodes.hpp"

namespace tfsim::capi {
namespace {

class FrameRoundTripTest : public ::testing::TestWithParam<Opcode> {};

TEST_P(FrameRoundTripTest, EncodeDecodeIdentity) {
  Command cmd;
  cmd.opcode = GetParam();
  cmd.tag = 0xBEEF;
  cmd.addr = 0x1234'5678'9ABC'DEF0ULL;
  cmd.size = 128;
  const auto buf = encode(cmd);
  EXPECT_EQ(buf.size(), kFrameBytes);
  const auto res = decode(buf);
  ASSERT_TRUE(res.command.has_value());
  EXPECT_EQ(*res.command, cmd);
  EXPECT_FALSE(res.error.has_value());
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, FrameRoundTripTest,
                         ::testing::Values(Opcode::kNop, Opcode::kReadRequest,
                                           Opcode::kWriteRequest,
                                           Opcode::kReadResponse,
                                           Opcode::kWriteResponse,
                                           Opcode::kFailResponse));

TEST(FrameTest, TruncatedRejected) {
  const auto buf = encode(Command{});
  const auto res = decode(buf.data(), buf.size() - 1);
  ASSERT_TRUE(res.error.has_value());
  EXPECT_EQ(*res.error, DecodeError::kTruncated);
}

TEST(FrameTest, BadMagicRejected) {
  auto buf = encode(Command{});
  buf[0] ^= 0xFF;
  const auto res = decode(buf);
  ASSERT_TRUE(res.error.has_value());
  EXPECT_EQ(*res.error, DecodeError::kBadMagic);
}

TEST(FrameTest, EveryFlippedBitIsDetected) {
  Command cmd;
  cmd.opcode = Opcode::kReadRequest;
  cmd.tag = 7;
  cmd.addr = 0xA5A5A5A5;
  const auto clean = encode(cmd);
  // Flipping any single bit anywhere in the frame must be detected
  // (magic, checksum, or field mismatch -- never silent acceptance of a
  // different command).
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = clean;
      corrupted[byte] ^= static_cast<std::uint8_t>(1 << bit);
      const auto res = decode(corrupted);
      if (res.command.has_value()) {
        EXPECT_EQ(*res.command, cmd)
            << "bit flip at byte " << byte << " produced a different command";
        ADD_FAILURE() << "corruption accepted at byte " << byte;
      }
    }
  }
}

TEST(FrameTest, BadOpcodeRejected) {
  auto buf = encode(Command{});
  buf[2] = 0x77;  // invalid opcode
  // Recompute the checksum so only the opcode check can fire.
  const auto crc = fletcher32(buf.data(), kFrameBytes - 4);
  buf[kFrameBytes - 4] = static_cast<std::uint8_t>(crc & 0xff);
  buf[kFrameBytes - 3] = static_cast<std::uint8_t>((crc >> 8) & 0xff);
  buf[kFrameBytes - 2] = static_cast<std::uint8_t>((crc >> 16) & 0xff);
  buf[kFrameBytes - 1] = static_cast<std::uint8_t>((crc >> 24) & 0xff);
  const auto res = decode(buf);
  ASSERT_TRUE(res.error.has_value());
  EXPECT_EQ(*res.error, DecodeError::kBadOpcode);
}

TEST(FrameTest, Fletcher32KnownProperties) {
  const std::uint8_t a[] = {1, 2, 3, 4};
  const std::uint8_t b[] = {1, 2, 4, 3};
  EXPECT_NE(fletcher32(a, 4), fletcher32(b, 4)) << "order sensitive";
  EXPECT_EQ(fletcher32(a, 4), fletcher32(a, 4)) << "deterministic";
  const std::uint8_t odd[] = {9, 9, 9};
  EXPECT_NE(fletcher32(odd, 3), fletcher32(odd, 2)) << "length sensitive";
}

TEST(OpcodeTest, RequestResponsePairing) {
  EXPECT_TRUE(is_request(Opcode::kReadRequest));
  EXPECT_TRUE(is_request(Opcode::kWriteRequest));
  EXPECT_FALSE(is_request(Opcode::kReadResponse));
  EXPECT_TRUE(is_response(Opcode::kFailResponse));
  EXPECT_EQ(response_for(Opcode::kReadRequest), Opcode::kReadResponse);
  EXPECT_EQ(response_for(Opcode::kWriteRequest), Opcode::kWriteResponse);
  EXPECT_EQ(response_for(Opcode::kNop), Opcode::kFailResponse);
}

TEST(OpcodeTest, WireBytesCountDataDirections) {
  Command rd{Opcode::kReadRequest, 0, 0, 128};
  Command wr{Opcode::kWriteRequest, 0, 0, 128};
  Command rresp{Opcode::kReadResponse, 0, 0, 128};
  Command wresp{Opcode::kWriteResponse, 0, 0, 128};
  EXPECT_EQ(wire_bytes(rd), kTlHeaderBytes);
  EXPECT_EQ(wire_bytes(wr), kTlHeaderBytes + 128);
  EXPECT_EQ(wire_bytes(rresp), kTlHeaderBytes + 128);
  EXPECT_EQ(wire_bytes(wresp), kTlHeaderBytes);
}

TEST(OpcodeTest, ToStringNamesAll) {
  EXPECT_EQ(to_string(Opcode::kReadRequest), "rd_wnitc");
  EXPECT_EQ(to_string(Opcode::kWriteRequest), "dma_w");
  EXPECT_EQ(to_string(Opcode::kNop), "nop");
}

// --- credits / tags ----------------------------------------------------

TEST(CreditTest, ConsumeRestoreCycle) {
  CreditPool pool(3);
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_TRUE(pool.try_consume());
  EXPECT_TRUE(pool.try_consume());
  EXPECT_TRUE(pool.try_consume());
  EXPECT_FALSE(pool.try_consume()) << "exhausted";
  EXPECT_EQ(pool.in_use(), 3u);
  pool.restore();
  EXPECT_TRUE(pool.try_consume());
}

TEST(CreditTest, OverReturnThrows) {
  CreditPool pool(1);
  EXPECT_THROW(pool.restore(), std::logic_error);
}

TEST(TagAllocatorTest, AllocateAllThenExhaust) {
  TagAllocator tags(4);
  std::vector<std::uint16_t> got;
  for (int i = 0; i < 4; ++i) {
    auto t = tags.allocate();
    ASSERT_TRUE(t.has_value());
    got.push_back(*t);
  }
  EXPECT_FALSE(tags.allocate().has_value());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint16_t>{0, 1, 2, 3})) << "unique tags";
  tags.release(2);
  const auto t = tags.allocate();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 2u);
}

TEST(TagAllocatorTest, OutOfRangeReleaseThrows) {
  TagAllocator tags(4);
  EXPECT_THROW(tags.release(4), std::logic_error);
}

TEST(TagAllocatorTest, DuplicateReleaseThrowsOnTheExactTag) {
  // The per-tag allocated bitmap must catch a double release even while
  // other tags are legitimately in flight (a free-list length check alone
  // cannot distinguish which release was bogus).
  TagAllocator tags(4);
  const auto a = tags.allocate();
  const auto b = tags.allocate();
  const auto c = tags.allocate();
  ASSERT_TRUE(a && b && c);
  EXPECT_TRUE(tags.in_flight(*b));
  tags.release(*b);
  EXPECT_FALSE(tags.in_flight(*b));
  EXPECT_THROW(tags.release(*b), std::logic_error) << "exact duplicate";
  EXPECT_TRUE(tags.in_flight(*a)) << "unaffected by the failed release";
  EXPECT_TRUE(tags.in_flight(*c));
  EXPECT_THROW(tags.in_flight(4), std::logic_error) << "range-checked";
}

TEST(TagAllocatorTest, CheckQuiescedDetectsLeak) {
  TagAllocator tags(2);
  tags.check_quiesced();  // fresh allocator: all tags home
  const auto t = tags.allocate();
  ASSERT_TRUE(t.has_value());
  EXPECT_THROW(tags.check_quiesced(), std::logic_error);
  tags.release(*t);
  tags.check_quiesced();
}

TEST(CreditTest, ExhaustionAndLowWaterCounters) {
  CreditPool pool(2);
  EXPECT_EQ(pool.exhaustions(), 0u);
  EXPECT_EQ(pool.min_available(), 2u);
  EXPECT_TRUE(pool.try_consume());
  EXPECT_EQ(pool.min_available(), 1u);
  EXPECT_TRUE(pool.try_consume());
  EXPECT_EQ(pool.min_available(), 0u);
  EXPECT_FALSE(pool.try_consume());
  EXPECT_FALSE(pool.try_consume());
  EXPECT_EQ(pool.exhaustions(), 2u) << "each empty-pool arrival counts";
  pool.restore();
  pool.restore();
  EXPECT_EQ(pool.min_available(), 0u) << "low-water mark is sticky";
  EXPECT_EQ(pool.available(), 2u);
}

TEST(CreditTest, CheckQuiescedDetectsLeak) {
  CreditPool pool(3);
  pool.check_quiesced();
  ASSERT_TRUE(pool.try_consume());
  EXPECT_THROW(pool.check_quiesced(), std::logic_error);
  pool.restore();
  pool.check_quiesced();
}

}  // namespace
}  // namespace tfsim::capi
