#include "sim/log.hpp"

#include <gtest/gtest.h>

namespace tfsim::sim {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, ParseKnownLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::Warn) << "safe default";
}

TEST(LogTest, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
}

TEST(LogTest, MacroSkipsDisabledLevels) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  TFSIM_LOG(Debug) << count();
  TFSIM_LOG(Error) << count();
  EXPECT_EQ(evaluations, 0) << "stream must not be evaluated when disabled";
  set_log_level(LogLevel::Debug);
  TFSIM_LOG(Info) << "visible at debug level: " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, EmitDoesNotCrashAtAnyLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  TFSIM_LOG(Debug) << "debug";
  TFSIM_LOG(Info) << "info";
  TFSIM_LOG(Warn) << "warn " << 1 << ' ' << 2.5;
  TFSIM_LOG(Error) << "error";
}

}  // namespace
}  // namespace tfsim::sim
