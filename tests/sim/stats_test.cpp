#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace tfsim::sim {
namespace {

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, MergeMatchesCombinedStream) {
  Rng rng(5);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 100);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

// Empty-operand regressions (ISSUE 7 audit): merging two empty stats must
// not divide 0/0 into a NaN mean_/m2_, and an empty side's +/-infinity
// min/max sentinels must never reach the merged extrema.  Barrier-combined
// per-domain stats hit these paths constantly (idle domains are routine).
TEST(StatsTest, MergeBothEmpty) {
  OnlineStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_FALSE(std::isnan(a.mean()));
  EXPECT_FALSE(std::isnan(a.variance()));
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  // A poisoned accumulator would corrupt everything added afterwards.
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(StatsTest, MergeEmptyIntoFull) {
  OnlineStats full, empty;
  full.add(-2.0);
  full.add(6.0);
  full.merge(empty);
  EXPECT_EQ(full.count(), 2u);
  EXPECT_DOUBLE_EQ(full.mean(), 2.0);
  EXPECT_DOUBLE_EQ(full.min(), -2.0) << "empty +inf sentinel must not leak";
  EXPECT_DOUBLE_EQ(full.max(), 6.0) << "empty -inf sentinel must not leak";
  EXPECT_FALSE(std::isnan(full.variance()));
}

TEST(StatsTest, MergeFullIntoEmpty) {
  OnlineStats full, empty;
  full.add(-2.0);
  full.add(6.0);
  empty.merge(full);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty.min(), -2.0);
  EXPECT_DOUBLE_EQ(empty.max(), 6.0);
}

TEST(StatsTest, HistogramMergeEmptyOperands) {
  Histogram a, b;
  a.merge(b);  // empty + empty: still pristine
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);

  Histogram full;
  full.add(4.0);
  full.add(16.0);
  const double min_before = full.min();
  const double max_before = full.max();
  full.merge(b);  // empty right operand: extrema and moments unchanged
  EXPECT_EQ(full.count(), 2u);
  EXPECT_DOUBLE_EQ(full.min(), min_before);
  EXPECT_DOUBLE_EQ(full.max(), max_before);

  Histogram target;
  target.merge(full);  // full into empty: raw extrema copied, not folded
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min(), min_before);
  EXPECT_DOUBLE_EQ(target.max(), max_before);
}

// Histogram quantiles must agree with exact quantiles within the bucket
// relative error (1/64 per octave ~ 1.6%).
class HistogramQuantileTest : public ::testing::TestWithParam<double> {};

TEST_P(HistogramQuantileTest, MatchesSortedReference) {
  const double q = GetParam();
  Rng rng(71);
  Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.lognormal(3.0, 1.0);  // wide dynamic range
    h.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(values.size()) - 1,
                       std::ceil(q * static_cast<double>(values.size())) - 1));
  const double exact = values[idx];
  EXPECT_NEAR(h.quantile(q), exact, exact * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, HistogramQuantileTest,
                         ::testing::Values(0.01, 0.10, 0.25, 0.50, 0.75, 0.90,
                                           0.99, 0.999));

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.add(10.0);
  h.add(20.0);
  h.add(30.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

// Regression: bucket_index used to collapse every sample < 1.0 into bucket
// 0, making quantiles of sub-unit metrics (ratios, GB/s, sub-µs latencies)
// meaningless.  Negative octaves must resolve them with the same bounded
// relative error as values >= 1.
TEST(HistogramTest, SubUnitQuantilesMatchSortedReference) {
  Rng rng(29);
  Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(0.001, 0.9);  // entirely inside (0, 1)
    h.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.01, 0.25, 0.50, 0.75, 0.99}) {
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(values.size()) - 1,
                         std::ceil(q * static_cast<double>(values.size())) - 1));
    const double exact = values[idx];
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.05) << "q=" << q;
  }
}

TEST(HistogramTest, SubUnitAndSuperUnitMix) {
  Histogram h;
  h.add(0.25);
  h.add(0.5);
  h.add(2.0);
  h.add(4.0);
  EXPECT_NEAR(h.quantile(0.25), 0.25, 0.25 * 0.02);
  EXPECT_NEAR(h.quantile(0.50), 0.5, 0.5 * 0.02);
  EXPECT_NEAR(h.quantile(1.0), 4.0, 4.0 * 0.02);
}

TEST(HistogramTest, TinyValuesClampToFirstBucket) {
  // Below 2^-32 the histogram saturates rather than misbehaving.
  Histogram h;
  h.add(1e-12);
  h.add(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.quantile(1.0), 1e-9);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.add(10.0);
  for (int i = 0; i < 100; ++i) b.add(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_LT(a.quantile(0.25), 20.0);
  EXPECT_GT(a.quantile(0.75), 900.0);
}

TEST(HistogramTest, AddCountWeightsValues) {
  Histogram h;
  h.add_count(5.0, 1000);
  h.add_count(50.0, 1);
  EXPECT_EQ(h.count(), 1001u);
  EXPECT_LT(h.p50(), 6.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.add(42.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

// --- intra-bucket interpolation regressions ------------------------------
// quantile() interpolates linearly inside the containing bucket and clamps
// to the observed [min, max], so degenerate histograms are exact and dense
// ones land within ~2% instead of the raw ~5% bucket-boundary error.

TEST(HistogramInterpolationTest, SingleValueQuantilesAreExact) {
  Histogram h;
  h.add(7.5);
  EXPECT_DOUBLE_EQ(h.p50(), 7.5);
  EXPECT_DOUBLE_EQ(h.p99(), 7.5);
  EXPECT_DOUBLE_EQ(h.p999(), 7.5);
}

TEST(HistogramInterpolationTest, RepeatedValueQuantilesAreExact) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(42.0);
  EXPECT_DOUBLE_EQ(h.p50(), 42.0);
  EXPECT_DOUBLE_EQ(h.p99(), 42.0);
  EXPECT_DOUBLE_EQ(h.p999(), 42.0);
}

TEST(HistogramInterpolationTest, UniformGridTailsPinnedTo2Percent) {
  // 1..1000, one sample each: exact p50 = 500, p99 = 990, p999 = 999.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.02);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.02);
  EXPECT_NEAR(h.p999(), 999.0, 999.0 * 0.02);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0) << "max clamp";
  EXPECT_GE(h.quantile(0.0), 1.0) << "never below the observed min";
  EXPECT_NEAR(h.quantile(0.0), 1.0, 1.0 * 0.02);
}

TEST(HistogramInterpolationTest, ExponentialTailsMatchSortedReference) {
  Rng rng(123);
  Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    const double v = 1.0 + rng.exponential(25.0);
    h.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.99, 0.999}) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())) - 1);
    const double exact = values[idx];
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.02) << "q=" << q;
  }
}

TEST(RateMeterTest, BandwidthMath) {
  RateMeter m;
  m.add(1'000'000'000);  // 1 GB
  // over 1 second (1e12 ps) -> 1 GB/s
  EXPECT_DOUBLE_EQ(m.gbyte_per_sec(1'000'000'000'000ULL), 1.0);
  EXPECT_EQ(m.bytes_per_sec(0), 0.0);
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineHasHighR2) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(5.0 * i + 10 + rng.uniform(-1, 1));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 5.0, 0.05);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(LinearFitTest, DegenerateInputs) {
  EXPECT_EQ(linear_fit({}, {}).r2, 0.0);
  EXPECT_EQ(linear_fit({1.0}, {2.0}).r2, 0.0);
  // Vertical data (all same x) cannot be fit.
  EXPECT_EQ(linear_fit({3, 3, 3}, {1, 2, 3}).slope, 0.0);
}

TEST(LinearFitTest, MismatchedLengthsThrow) {
  // Regression: mismatched series used to be silently truncated, fitting a
  // line through accidentally re-paired points.
  EXPECT_THROW(linear_fit({1.0, 2.0, 3.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(linear_fit({}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace tfsim::sim
