#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace tfsim::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformU64CoversRangeEvenly) {
  Rng rng(11);
  constexpr std::uint64_t n = 10;
  std::vector<std::uint64_t> counts(n, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_u64(n)];
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, kDraws * 0.01);
  }
}

TEST(RngTest, UniformU64One) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(1), 0u);
}

struct DistCase {
  const char* name;
  double expected_mean;
  double tolerance;
};

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalMeanAndStddevMatch) {
  Rng rng(17);
  constexpr int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, LognormalMeanMatchesFormula) {
  Rng rng(19);
  const double mu = 1.0, sigma = 0.5;
  constexpr int n = 400000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2), 0.05);
}

TEST(RngTest, ParetoRespectsScaleAndMean) {
  Rng rng(23);
  const double xm = 2.0, alpha = 3.0;
  constexpr int n = 400000;
  double sum = 0, min_seen = 1e30;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(xm, alpha);
    sum += x;
    min_seen = std::min(min_seen, x);
  }
  EXPECT_GE(min_seen, xm);
  EXPECT_NEAR(sum / n, alpha * xm / (alpha - 1), 0.05);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(42);
  Rng b = a.split();
  // The split stream should not mirror the parent.
  Rng a2(42);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (b.next() == a2.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(ZipfTest, FirstRankIsMostPopular) {
  Rng rng(29);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[0], counts[50]);
  // Harmonic law: rank 0 is ~100/5.19 times rank... check ratio loosely.
  EXPECT_GT(static_cast<double>(counts[0]) / std::max(1, counts[9]), 5.0);
}

TEST(ZipfTest, AllValuesInRange) {
  Rng rng(31);
  ZipfGenerator zipf(10, 0.8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf(rng), 10u);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  Rng rng(37);
  ZipfGenerator zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf(rng)];
  for (auto c : counts) EXPECT_NEAR(c, 10000, 400);
}

}  // namespace
}  // namespace tfsim::sim
