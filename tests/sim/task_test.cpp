#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/sync.hpp"

namespace tfsim::sim {
namespace {

Task simple_process(Engine& e, Time step, int n, std::vector<Time>& stamps) {
  for (int i = 0; i < n; ++i) {
    co_await delay(e, step);
    stamps.push_back(e.now());
  }
}

TEST(TaskTest, DelayAdvancesSimTime) {
  Engine e;
  std::vector<Time> stamps;
  Task t = simple_process(e, 10, 3, stamps);
  EXPECT_FALSE(t.done());
  e.run();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(stamps, (std::vector<Time>{10, 20, 30}));
}

TEST(TaskTest, TasksInterleaveByTime) {
  Engine e;
  std::vector<Time> a, b;
  Task ta = simple_process(e, 10, 3, a);
  Task tb = simple_process(e, 15, 2, b);
  e.run();
  EXPECT_EQ(a, (std::vector<Time>{10, 20, 30}));
  EXPECT_EQ(b, (std::vector<Time>{15, 30}));
}

Task joiner(Engine& e, Task& inner, bool& joined, Time& when) {
  co_await inner;
  joined = true;
  when = e.now();
}

TEST(TaskTest, AwaitingATaskJoinsIt) {
  Engine e;
  std::vector<Time> stamps;
  Task inner = simple_process(e, 10, 2, stamps);
  bool joined = false;
  Time when = 0;
  Task outer = joiner(e, inner, joined, when);
  e.run();
  EXPECT_TRUE(joined);
  EXPECT_EQ(when, 20u);
}

TEST(TaskTest, AwaitingDoneTaskIsImmediate) {
  Engine e;
  std::vector<Time> stamps;
  Task inner = simple_process(e, 1, 1, stamps);
  e.run();
  ASSERT_TRUE(inner.done());
  bool joined = false;
  Time when = 0;
  Task outer = joiner(e, inner, joined, when);
  EXPECT_TRUE(joined);  // no suspension needed
}

Task throwing_process(Engine& e) {
  co_await delay(e, 5);
  throw std::runtime_error("boom");
}

TEST(TaskTest, ExceptionIsCapturedAndRethrownOnJoin) {
  Engine e;
  Task t = throwing_process(e);
  e.run();
  EXPECT_TRUE(t.done());
  EXPECT_TRUE(t.failed());
  EXPECT_THROW(t.rethrow_if_failed(), std::runtime_error);
}

TEST(TaskTest, UntilAwaiterIsReadyForPastTimes) {
  Engine e;
  e.run_until(100);
  UntilAwaiter a{e, 50};
  EXPECT_TRUE(a.await_ready());
  UntilAwaiter b{e, 150};
  EXPECT_FALSE(b.await_ready());
}

// --- Trigger ---------------------------------------------------------

Task wait_trigger(Trigger& tr, int& hits) {
  co_await tr;
  ++hits;
}

TEST(SyncTest, TriggerWakesAllWaiters) {
  Trigger tr;
  int hits = 0;
  Task a = wait_trigger(tr, hits);
  Task b = wait_trigger(tr, hits);
  EXPECT_EQ(hits, 0);
  tr.fire();
  EXPECT_EQ(hits, 2);
  EXPECT_TRUE(a.done());
  EXPECT_TRUE(b.done());
}

TEST(SyncTest, FiredTriggerIsImmediate) {
  Trigger tr;
  tr.fire();
  int hits = 0;
  Task a = wait_trigger(tr, hits);
  EXPECT_EQ(hits, 1);
}

TEST(SyncTest, TriggerResetRearms) {
  Trigger tr;
  tr.fire();
  tr.reset();
  int hits = 0;
  Task a = wait_trigger(tr, hits);
  EXPECT_EQ(hits, 0);
  tr.fire();
  EXPECT_EQ(hits, 1);
}

// --- Semaphore -------------------------------------------------------

Task hold_sem(Engine& e, Semaphore& sem, Time hold, std::vector<int>& order,
              int id) {
  co_await sem.acquire();
  order.push_back(id);
  co_await delay(e, hold);
  sem.release();
}

TEST(SyncTest, SemaphoreLimitsConcurrency) {
  Engine e;
  Semaphore sem(2);
  std::vector<int> order;
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) tasks.push_back(hold_sem(e, sem, 10, order, i));
  // Only 2 acquired immediately.
  EXPECT_EQ(order.size(), 2u);
  e.run();
  EXPECT_EQ(order.size(), 4u);
  // FIFO: waiters admitted in arrival order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sem.available(), 2u);
}

TEST(SyncTest, SemaphoreFastPathDoesNotJumpQueue) {
  Engine e;
  Semaphore sem(1);
  std::vector<int> order;
  std::vector<Task> tasks;
  tasks.push_back(hold_sem(e, sem, 10, order, 0));  // holds the slot
  tasks.push_back(hold_sem(e, sem, 10, order, 1));  // queued
  tasks.push_back(hold_sem(e, sem, 10, order, 2));  // queued behind 1
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// --- Latch -----------------------------------------------------------

Task wait_latch(Latch& l, bool& done) {
  co_await l;
  done = true;
}

TEST(SyncTest, LatchFiresAfterCountdown) {
  Latch l(3);
  bool done = false;
  Task t = wait_latch(l, done);
  l.count_down();
  l.count_down();
  EXPECT_FALSE(done);
  l.count_down();
  EXPECT_TRUE(done);
}

TEST(SyncTest, ZeroLatchIsImmediate) {
  Latch l(0);
  bool done = false;
  Task t = wait_latch(l, done);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace tfsim::sim
