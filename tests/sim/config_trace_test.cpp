#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

#include "sim/config.hpp"
#include "sim/trace.hpp"

namespace tfsim::sim {
namespace {

ArgParser make_parser() {
  ArgParser p("test program");
  p.add_flag("verbose", "enable verbosity");
  p.add_string("name", "default", "a name");
  p.add_int("count", 7, "a count");
  p.add_double("rate", 2.5, "a rate");
  p.add_string("list", "1,2,3", "a list");
  return p;
}

TEST(ArgParserTest, DefaultsApply) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_FALSE(p.flag("verbose"));
  EXPECT_EQ(p.str("name"), "default");
  EXPECT_EQ(p.integer("count"), 7);
  EXPECT_DOUBLE_EQ(p.real("rate"), 2.5);
}

TEST(ArgParserTest, EqualsSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--name=foo", "--count=42", "--rate=0.125",
                        "--verbose"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_TRUE(p.flag("verbose"));
  EXPECT_EQ(p.str("name"), "foo");
  EXPECT_EQ(p.integer("count"), 42);
  EXPECT_DOUBLE_EQ(p.real("rate"), 0.125);
}

TEST(ArgParserTest, SpaceSeparatedValue) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count", "99"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.integer("count"), 99);
}

TEST(ArgParserTest, IntListParsing) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--list=10,20,30"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_EQ(p.int_list("list"), (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(ArgParserTest, DefaultListUsedWhenAbsent) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.int_list("list"), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(ArgParserTest, DoubleListParsing) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--list=0.5,2,12.25"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_EQ(p.double_list("list"), (std::vector<double>{0.5, 2.0, 12.25}));
}

TEST(ArgParserTest, DoubleListDefaultAndEmptyEntries) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.double_list("list"), (std::vector<double>{1.0, 2.0, 3.0}));

  auto q = make_parser();
  const char* argv2[] = {"prog", "--list=,1.5,,2.5,"};
  ASSERT_TRUE(q.parse(2, argv2));
  EXPECT_EQ(q.double_list("list"), (std::vector<double>{1.5, 2.5}));
}

TEST(ArgParserTest, UnknownOptionRejected) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParserTest, HelpReturnsFalse) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParserTest, PositionalRejected) {
  auto p = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParserTest, MissingValueRejected) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParserTest, UnregisteredLookupThrows) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW(p.str("nope"), std::logic_error);
  EXPECT_THROW(p.flag("name"), std::logic_error);  // type mismatch
}

TEST(ArgParserTest, UsageMentionsAllOptions) {
  auto p = make_parser();
  const auto u = p.usage();
  EXPECT_NE(u.find("--verbose"), std::string::npos);
  EXPECT_NE(u.find("--count"), std::string::npos);
}

// --- CSV -------------------------------------------------------------

TEST(CsvWriterTest, BasicRows) {
  CsvWriter csv;
  csv.header({"a", "b", "c"});
  csv.row().col(std::string("x")).col(1.5).col(std::uint64_t{42});
  EXPECT_EQ(csv.str(), "a,b,c\nx,1.5,42\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriterTest, QuotingSpecialCharacters) {
  CsvWriter csv;
  csv.header({"v"});
  csv.row().col(std::string("has,comma"));
  csv.row().col(std::string("has\"quote"));
  EXPECT_EQ(csv.str(), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvWriterTest, FileModeWritesToDisk) {
  const std::string path = ::testing::TempDir() + "/tfsim_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"x"});
    csv.row().col(std::int64_t{-3});
  }
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "x\n-3\n");
}

TEST(CsvWriterTest, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace tfsim::sim
