#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace tfsim::sim {
namespace {

TEST(EngineTest, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(EngineTest, EqualTimesRunInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EngineTest, ScheduleInIsRelative) {
  Engine e;
  Time seen = 0;
  e.schedule_at(100, [&] {
    e.schedule_in(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150u);
}

TEST(EngineTest, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(50, [] {}), std::logic_error);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  auto id = e.schedule_at(10, [&] { ran = true; });
  EXPECT_EQ(e.pending(), 1u);
  e.cancel(id);
  EXPECT_EQ(e.pending(), 0u);
  e.run();
  EXPECT_FALSE(ran);
}

TEST(EngineTest, CancelAfterFireIsNoop) {
  Engine e;
  auto id = e.schedule_at(10, [] {});
  e.run();
  e.cancel(id);  // must not crash or corrupt counters
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EngineTest, CancelledEventDoesNotBlockRunUntil) {
  Engine e;
  bool ran = false;
  auto early = e.schedule_at(10, [&] { ran = true; });
  e.schedule_at(100, [] {});
  e.cancel(early);
  e.run_until(50);
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.now(), 50u);
  EXPECT_EQ(e.pending(), 1u);  // the t=100 event still waits
}

TEST(EngineTest, RunUntilAdvancesClockWithoutEvents) {
  Engine e;
  e.run_until(1234);
  EXPECT_EQ(e.now(), 1234u);
}

TEST(EngineTest, RunUntilExecutesBoundaryEvent) {
  Engine e;
  bool at_boundary = false, after = false;
  e.schedule_at(100, [&] { at_boundary = true; });
  e.schedule_at(101, [&] { after = true; });
  e.run_until(100);
  EXPECT_TRUE(at_boundary);
  EXPECT_FALSE(after);
}

TEST(EngineTest, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_at(1, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(EngineTest, RunWhilePendingStops) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 100; ++i) {
    e.schedule_at(static_cast<Time>(i), [&] { ++count; });
  }
  const bool stopped = e.run_while_pending([&] { return count >= 10; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 10);
}

TEST(EngineTest, EventsScheduledDuringRunExecute) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) e.schedule_in(10, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 40u);
  EXPECT_EQ(e.executed(), 5u);
}

// --- event-pool handle semantics (slab + generation counters) --------------

TEST(EngineTest, ValidTracksEventLifecycle) {
  Engine e;
  Engine::EventId none;
  EXPECT_FALSE(none.valid());
  auto id = e.schedule_at(5, [] {});
  EXPECT_TRUE(id.valid());
  e.run();
  EXPECT_FALSE(id.valid()) << "fired event invalidates the handle";
  auto id2 = e.schedule_at(10, [] {});
  EXPECT_FALSE(id.valid()) << "slot reuse must not resurrect the old handle";
  EXPECT_TRUE(id2.valid());
  e.cancel(id2);
  EXPECT_FALSE(id2.valid());
}

TEST(EngineTest, DoubleCancelIsNoop) {
  Engine e;
  bool ran = false;
  auto id = e.schedule_at(10, [&] { ran = true; });
  auto copy = id;  // handles are copyable; both reference the same event
  e.cancel(id);
  EXPECT_EQ(e.pending(), 0u);
  e.cancel(id);    // reset handle: no-op
  e.cancel(copy);  // stale generation: no-op, must not corrupt counters
  EXPECT_EQ(e.pending(), 0u);
  e.run();
  EXPECT_FALSE(ran);
}

TEST(EngineTest, CancelStaleHandleAfterSlotReuse) {
  Engine e;
  bool first = false, second = false;
  auto id = e.schedule_at(10, [&] { first = true; });
  e.run();  // fires; the slot returns to the free list
  auto id2 = e.schedule_at(20, [&] { second = true; });  // reuses the slot
  e.cancel(id);  // stale generation: must NOT cancel the new event
  EXPECT_TRUE(id2.valid());
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
}

TEST(EngineTest, CancelSiblingFromCallbackAtSameTime) {
  Engine e;
  bool sibling_ran = false;
  Engine::EventId sib;
  e.schedule_at(10, [&] { e.cancel(sib); });
  sib = e.schedule_at(10, [&] { sibling_ran = true; });
  e.run();
  EXPECT_FALSE(sibling_ran);
  EXPECT_EQ(e.pending(), 0u);
}

// Deterministic stress over many slab generations: cancel before fire,
// double-cancel, and cancel-after-fire on handles whose slots have been
// recycled many times.
TEST(EngineTest, CancellationStressAcrossGenerations) {
  Engine e;
  int fired = 0;
  constexpr int kRounds = 50;
  constexpr int kPerRound = 100;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Engine::EventId> ids;
    ids.reserve(kPerRound);
    for (int i = 0; i < kPerRound; ++i) {
      ids.push_back(e.schedule_in(static_cast<Time>((i * 7) % 23),
                                  [&] { ++fired; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) e.cancel(ids[i]);
    for (std::size_t i = 0; i < ids.size(); i += 6) e.cancel(ids[i]);  // double
    e.run();
    for (auto& id : ids) e.cancel(id);  // all stale now: post-fire cancels
    EXPECT_EQ(e.pending(), 0u);
  }
  // Per round: 100 scheduled, 34 cancelled (i = 0, 3, ..., 99), 66 fire.
  EXPECT_EQ(fired, kRounds * 66);
  EXPECT_EQ(e.executed(), static_cast<std::uint64_t>(kRounds * 66));
}

}  // namespace
}  // namespace tfsim::sim
