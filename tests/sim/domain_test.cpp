// Unit tests for the runtime domain-ownership checker (sim/domain.hpp):
// guard stacking, handle binding, strict/collect/off modes, and violation
// report contents.  Cluster-level wiring is covered by
// tests/node/domain_cluster_test.cpp.
#include "sim/domain.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace tfsim::sim {
namespace {

struct Counter {
  int value = 0;
  void bump() {
    TFSIM_DOMAIN_TOUCH("Counter::bump");
    ++value;
  }
  TFSIM_DOMAIN_OWNED
};

TEST(DomainCheckerTest, UnboundHandleIsAlwaysFree) {
  Counter c;
  EXPECT_FALSE(c.tfsim_domain().bound());
  c.bump();  // no checker: must not throw regardless of guards elsewhere
  EXPECT_EQ(c.value, 1);
}

TEST(DomainCheckerTest, TouchOutsideAnyGuardIsUnchecked) {
  DomainChecker checker;
  checker.set_mode(DomainCheckMode::kStrict);
  const DomainId d = checker.add_domain("node0");
  Counter c;
  c.tfsim_domain().bind(checker, d, "node0/counter");
  // Setup/teardown code pokes objects directly without declaring a domain;
  // ownership is an event-dispatch invariant only.
  EXPECT_NO_THROW(c.bump());
  EXPECT_TRUE(checker.clean());
}

TEST(DomainCheckerTest, MatchingGuardPasses) {
  DomainChecker checker;
  checker.set_mode(DomainCheckMode::kStrict);
  const DomainId d = checker.add_domain("node0");
  Counter c;
  c.tfsim_domain().bind(checker, d, "node0/counter");
  const DomainGuard g(&checker, d, "test");
  EXPECT_NO_THROW(c.bump());
  EXPECT_TRUE(checker.clean());
}

TEST(DomainCheckerTest, StrictModeThrowsOnCrossDomainTouch) {
  DomainChecker checker;
  checker.set_mode(DomainCheckMode::kStrict);
  const DomainId owner = checker.add_domain("lender");
  const DomainId other = checker.add_domain("borrower");
  Counter c;
  c.tfsim_domain().bind(checker, owner, "lender/counter");
  const DomainGuard g(&checker, other, "ctx:miss");
  EXPECT_THROW(c.bump(), DomainError);
  EXPECT_EQ(checker.total(), 1u);
}

TEST(DomainCheckerTest, CollectModeAccumulatesWithFullContext) {
  Engine engine;
  DomainChecker checker;
  checker.set_mode(DomainCheckMode::kCollect);
  checker.bind_engine(&engine);
  const DomainId owner = checker.add_domain("lender1");
  const DomainId other = checker.add_domain("borrower");
  Counter c;
  c.tfsim_domain().bind(checker, owner, "lender1/counter");

  // Advance the engine so the violation captures a non-trivial event
  // context.
  engine.schedule_at(sim::from_us(1.0), [] {});
  engine.schedule_at(sim::from_us(2.0), [] {});
  engine.run();
  ASSERT_EQ(engine.executed(), 2u);

  {
    const DomainGuard g(&checker, other, "ctx:miss");
    EXPECT_NO_THROW(c.bump());
    EXPECT_NO_THROW(c.bump());
  }
  EXPECT_FALSE(checker.clean());
  ASSERT_EQ(checker.total(), 2u);
  const DomainViolation& v = checker.violations().front();
  EXPECT_EQ(v.object, "lender1/counter");
  EXPECT_EQ(v.what, "Counter::bump");
  EXPECT_EQ(v.owner, owner);
  EXPECT_EQ(v.active, other);
  EXPECT_EQ(v.owner_name, "lender1");
  EXPECT_EQ(v.active_name, "borrower");
  EXPECT_EQ(v.guard_label, "ctx:miss");
  EXPECT_EQ(v.when, sim::from_us(2.0));
  EXPECT_EQ(v.event_index, 2u);
  // The rendered report names everything a PDES debugging session needs.
  const std::string s = v.to_string();
  EXPECT_NE(s.find("lender1/counter"), std::string::npos) << s;
  EXPECT_NE(s.find("Counter::bump"), std::string::npos) << s;
  EXPECT_NE(s.find("borrower"), std::string::npos) << s;
  EXPECT_NE(s.find("ctx:miss"), std::string::npos) << s;
  EXPECT_NE(s.find("event #2"), std::string::npos) << s;
}

TEST(DomainCheckerTest, OffModeDisablesEverything) {
  DomainChecker checker;
  checker.set_mode(DomainCheckMode::kOff);
  const DomainId owner = checker.add_domain("a");
  const DomainId other = checker.add_domain("b");
  Counter c;
  c.tfsim_domain().bind(checker, owner, "a/counter");
  const DomainGuard g(&checker, other, "x");
  EXPECT_NO_THROW(c.bump());
  EXPECT_TRUE(checker.clean());
  // Off-mode guards do not even push (the guard went inert).
  EXPECT_FALSE(checker.in_guard());
}

TEST(DomainCheckerTest, InnermostGuardWins) {
  DomainChecker checker;
  checker.set_mode(DomainCheckMode::kStrict);
  const DomainId borrower = checker.add_domain("borrower");
  const DomainId lender = checker.add_domain("lender");
  Counter c;
  c.tfsim_domain().bind(checker, lender, "lender/counter");
  const DomainGuard outer(&checker, borrower, "ctx:miss");
  EXPECT_THROW(c.bump(), DomainError);
  {
    // The NIC's network-boundary handoff: nesting a lender guard makes the
    // lender-side mutation legal again.
    const DomainGuard inner(&checker, lender, "net:deliver");
    EXPECT_NO_THROW(c.bump());
    EXPECT_EQ(checker.guard_depth(), 2u);
  }
  EXPECT_THROW(c.bump(), DomainError);
}

TEST(DomainCheckerTest, NullCheckerGuardIsInert) {
  const DomainGuard g(nullptr, 3, "standalone");
  SUCCEED();  // construction and destruction must be no-ops
}

TEST(DomainCheckerTest, ClearResetsCollectState) {
  DomainChecker checker;
  checker.set_mode(DomainCheckMode::kCollect);
  const DomainId owner = checker.add_domain("a");
  const DomainId other = checker.add_domain("b");
  Counter c;
  c.tfsim_domain().bind(checker, owner, "a/c");
  {
    const DomainGuard g(&checker, other, "x");
    c.bump();
  }
  EXPECT_EQ(checker.total(), 1u);
  checker.clear();
  EXPECT_TRUE(checker.clean());
  EXPECT_TRUE(checker.violations().empty());
}

TEST(DomainCheckerTest, StoredViolationsAreCapped) {
  DomainChecker checker;
  checker.set_mode(DomainCheckMode::kCollect);
  const DomainId owner = checker.add_domain("a");
  const DomainId other = checker.add_domain("b");
  Counter c;
  c.tfsim_domain().bind(checker, owner, "a/c");
  const DomainGuard g(&checker, other, "x");
  for (int i = 0; i < 300; ++i) c.bump();
  EXPECT_EQ(checker.total(), 300u);
  EXPECT_EQ(checker.violations().size(), 256u) << "storage is capped";
}

TEST(DomainCheckerTest, UnknownDomainNameRendersPlaceholder) {
  DomainChecker checker;
  EXPECT_EQ(checker.domain_name(kNoDomain), "<none>");
}

}  // namespace
}  // namespace tfsim::sim
