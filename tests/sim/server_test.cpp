#include "sim/server.hpp"

#include <gtest/gtest.h>

namespace tfsim::sim {
namespace {

constexpr Bandwidth kGbps1 = Bandwidth{1e9};  // 1 GB/s -> 1 ns per byte

TEST(BandwidthServerTest, SingleRequestLatency) {
  BandwidthServer s(kGbps1, /*post_latency=*/from_ns(100));
  // 1000 bytes at 1 GB/s = 1000 ns serialization + 100 ns post.
  EXPECT_EQ(s.request(0, 1000), from_ns(1100));
}

TEST(BandwidthServerTest, BackToBackRequestsQueue) {
  BandwidthServer s(kGbps1, 0);
  EXPECT_EQ(s.request(0, 1000), from_ns(1000));
  // Arrives while busy: waits for the first to finish serializing.
  EXPECT_EQ(s.request(0, 1000), from_ns(2000));
  EXPECT_EQ(s.request(from_ns(500), 1000), from_ns(3000));
}

TEST(BandwidthServerTest, IdleGapResetsQueue) {
  BandwidthServer s(kGbps1, 0);
  s.request(0, 1000);
  // Arrival long after the server drained: no queueing.
  EXPECT_EQ(s.request(from_ns(10000), 1000), from_ns(11000));
}

TEST(BandwidthServerTest, PostLatencyDoesNotOccupyServer) {
  BandwidthServer s(kGbps1, from_ns(1000000));
  const Time first = s.request(0, 100);
  const Time second = s.request(0, 100);
  // Completion includes post latency, but the second request only waits
  // for the first serialization (100 ns), not the post latency.
  EXPECT_EQ(first, from_ns(100 + 1000000));
  EXPECT_EQ(second, from_ns(200 + 1000000));
}

TEST(BandwidthServerTest, BacklogAndBusyAccounting) {
  BandwidthServer s(kGbps1, 0);
  s.request(0, 5000);
  EXPECT_EQ(s.backlog(from_ns(1000)), from_ns(4000));
  EXPECT_EQ(s.backlog(from_ns(6000)), 0u);
  EXPECT_EQ(s.busy_time(), from_ns(5000));
  EXPECT_EQ(s.bytes_served(), 5000u);
  EXPECT_EQ(s.requests(), 1u);
}

TEST(BandwidthServerTest, ZeroBandwidthNeverCompletes) {
  BandwidthServer s(Bandwidth{0.0}, 0);
  EXPECT_EQ(s.request(0, 1), kTimeNever);
}

TEST(BandwidthServerTest, ThroughputMatchesBandwidthUnderSaturation) {
  BandwidthServer s(Bandwidth::from_gbyte(10.0), from_ns(300));
  Time t = 0;
  constexpr int kN = 10000;
  Time last = 0;
  for (int i = 0; i < kN; ++i) last = s.request(t, 128);
  // kN * 128 bytes at 10 GB/s = kN * 12.8 ns.
  const double expected_ns = kN * 12.8 + 300;
  EXPECT_NEAR(to_ns(last), expected_ns, 1.0 + kN * 0.01);
}

// --- IntervalServer (event-level injector core) -----------------------

TEST(IntervalServerTest, AdmitsOnBoundaries) {
  IntervalServer s(100);
  EXPECT_EQ(s.request(0), 0u);      // boundary 0
  EXPECT_EQ(s.request(0), 100u);    // next slot
  EXPECT_EQ(s.request(0), 200u);
  EXPECT_EQ(s.request(250), 300u);  // rounds up to the next boundary
}

TEST(IntervalServerTest, SparseArrivalsAlignUp) {
  IntervalServer s(100);
  EXPECT_EQ(s.request(101), 200u);
  EXPECT_EQ(s.request(999), 1000u);
  EXPECT_EQ(s.request(1200), 1200u);  // exactly on a free boundary
}

TEST(IntervalServerTest, IntervalOneIsTransparent) {
  IntervalServer s(1);
  EXPECT_EQ(s.request(0), 0u);
  EXPECT_EQ(s.request(12345), 12345u);
}

class IntervalPropertyTest : public ::testing::TestWithParam<Time> {};

TEST_P(IntervalPropertyTest, AdmissionsAreSpacedAndAligned) {
  const Time interval = GetParam();
  IntervalServer s(interval);
  Time prev = 0;
  bool first = true;
  std::uint64_t seed = 99;
  Time now = 0;
  for (int i = 0; i < 1000; ++i) {
    seed = seed * 6364136223846793005ULL + 1;
    now += seed % (2 * interval);  // jittered arrivals
    const Time slot = s.request(now);
    EXPECT_GE(slot, now);
    EXPECT_EQ(slot % interval, 0u) << "must admit on a gate boundary";
    if (!first) {
      EXPECT_GE(slot, prev + interval) << "min spacing violated";
    }
    prev = slot;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, IntervalPropertyTest,
                         ::testing::Values(2, 3, 10, 64, 1000, 31250));

}  // namespace
}  // namespace tfsim::sim
