#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace tfsim::sim {
namespace {

// One independent mini-simulation per sweep point — its own Engine and RNG
// stream, like every real sweep point — folded into a digest string so any
// divergence (ordering, RNG cross-talk, result misplacement) is visible.
std::string sim_job(std::size_t i) {
  Engine e;
  Rng rng(0x5EED0000 + i);
  OnlineStats times;
  std::uint64_t fired = 0;
  std::function<void()> hop = [&] {
    ++fired;
    times.add(static_cast<double>(e.now()));
    if (fired < 500) e.schedule_in(1 + rng.uniform_u64(9), hop);
  };
  for (int c = 0; c < 4; ++c) e.schedule_at(rng.uniform_u64(5), hop);
  e.run();
  std::ostringstream os;
  os << i << ":" << fired << ":" << e.now() << ":" << times.mean();
  return os.str();
}

// The property the whole PR hangs on: worker count changes wall-clock time
// only, never results.
TEST(SweepRunnerTest, SerialAndParallelProduceIdenticalResults) {
  const std::size_t n = 24;
  const auto serial = SweepRunner(1).run(n, sim_job);
  const auto par4 = SweepRunner(4).run(n, sim_job);
  const auto par16 = SweepRunner(16).run(n, sim_job);
  EXPECT_EQ(serial, par4);
  EXPECT_EQ(serial, par16);
}

TEST(SweepRunnerTest, ResultsComeBackInInputOrder) {
  const auto r =
      SweepRunner(8).run(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(r.size(), 100u);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_EQ(r[i], i * i);
}

TEST(SweepRunnerTest, MapPreservesInputOrder) {
  const std::vector<int> inputs = {5, 3, 8, 1, 9, 2};
  const auto r = SweepRunner(3).map(
      inputs, [](const int& v) { return std::to_string(v * 10); });
  ASSERT_EQ(r.size(), inputs.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], std::to_string(inputs[i] * 10));
  }
}

TEST(SweepRunnerTest, EmptyAndSingleElementSweeps) {
  EXPECT_TRUE(SweepRunner(4).run(0, [](std::size_t) { return 1; }).empty());
  const auto one = SweepRunner(4).run(1, [](std::size_t i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
}

TEST(SweepRunnerTest, FirstExceptionByInputOrderWins) {
  try {
    SweepRunner(4).run(32, [](std::size_t i) -> int {
      if (i % 2 != 0) throw std::runtime_error("boom " + std::to_string(i));
      return 0;
    });
    FAIL() << "expected the job exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 1") << "lowest failing index, like serial";
  }
}

TEST(SweepRunnerTest, ZeroJobsClampsToSerial) {
  EXPECT_EQ(SweepRunner(0).jobs(), 1u);
}

TEST(SweepRunnerTest, JobsFromEnv) {
  setenv("TFSIM_JOBS", "7", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), 7u);
  setenv("TFSIM_JOBS", "junk", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), 1u) << "junk falls back to serial";
  setenv("TFSIM_JOBS", "0", 1);
  EXPECT_GE(SweepRunner::jobs_from_env(), 1u) << "0 = hardware concurrency";
  unsetenv("TFSIM_JOBS");
  EXPECT_EQ(SweepRunner::jobs_from_env(), 1u);
}

// The ISSUE 7 bugfix: TFSIM_JOBS=-1 used to wrap through strtoul to
// 4294967295 and ask for ~4B threads.  Negatives and junk now fall back
// (with a warning), oversized values clamp to kMaxEnvThreads.
TEST(SweepRunnerTest, EnvThreadCountRejectsNegatives) {
  setenv("TFSIM_JOBS", "-1", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), 1u);
  setenv("TFSIM_JOBS", "  -37", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), 1u);
  unsetenv("TFSIM_JOBS");
}

TEST(SweepRunnerTest, EnvThreadCountClampsOverflow) {
  setenv("TFSIM_JOBS", "4294967295", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), kMaxEnvThreads);
  setenv("TFSIM_JOBS", "99999999999999999999999", 1);  // > ULONG_MAX
  EXPECT_EQ(SweepRunner::jobs_from_env(), kMaxEnvThreads);
  setenv("TFSIM_JOBS", "257", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), kMaxEnvThreads);
  setenv("TFSIM_JOBS", "256", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), 256u) << "ceiling itself is legal";
  unsetenv("TFSIM_JOBS");
}

TEST(SweepRunnerTest, EnvThreadCountRejectsTrailingJunk) {
  setenv("TFSIM_JOBS", "4x", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), 1u);
  setenv("TFSIM_JOBS", "1e3", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), 1u) << "no exponent notation";
  setenv("TFSIM_JOBS", "", 1);
  EXPECT_EQ(SweepRunner::jobs_from_env(), 1u);
  unsetenv("TFSIM_JOBS");
}

}  // namespace
}  // namespace tfsim::sim
