#include "sim/units.hpp"

#include <gtest/gtest.h>

namespace tfsim::sim {
namespace {

TEST(UnitsTest, TimeConversionsRoundTrip) {
  EXPECT_EQ(from_ns(1.0), kNanosecond);
  EXPECT_EQ(from_us(1.0), kMicrosecond);
  EXPECT_EQ(from_ms(1.0), kMillisecond);
  EXPECT_EQ(from_sec(1.0), kSecond);
  EXPECT_DOUBLE_EQ(to_ns(from_ns(123.5)), 123.5);
  EXPECT_DOUBLE_EQ(to_us(from_us(7.25)), 7.25);
  EXPECT_DOUBLE_EQ(to_ms(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_sec(kMillisecond), 1e-3);
}

TEST(UnitsTest, BandwidthConstructors) {
  const auto hundred_gbit = Bandwidth::from_gbit(100.0);
  EXPECT_DOUBLE_EQ(hundred_gbit.bytes_per_sec, 12.5e9);
  EXPECT_DOUBLE_EQ(hundred_gbit.gbyte_per_sec(), 12.5);
  EXPECT_DOUBLE_EQ(hundred_gbit.gbit_per_sec(), 100.0);
  const auto from_gb = Bandwidth::from_gbyte(12.5);
  EXPECT_DOUBLE_EQ(from_gb.bytes_per_sec, hundred_gbit.bytes_per_sec);
}

TEST(UnitsTest, SerializationTime) {
  const Bandwidth one_gb{1e9};  // 1 ns per byte
  EXPECT_EQ(one_gb.serialization_time(1000), from_ns(1000));
  EXPECT_EQ(one_gb.serialization_time(0), 0u);
  EXPECT_EQ(Bandwidth{0.0}.serialization_time(1), kTimeNever);
}

TEST(UnitsTest, ClockPeriod) {
  EXPECT_EQ(clock_period(1e9), kNanosecond);          // 1 GHz
  EXPECT_EQ(clock_period(320e6), 3125u);              // 3.125 ns in ps
  EXPECT_EQ(clock_period(250e6), 4 * kNanosecond);
}

TEST(UnitsTest, SizeConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
}

TEST(UnitsTest, PicosecondResolutionCoversExperimentScales) {
  // An FPGA cycle and a multi-minute run must both be representable.
  const Time cycle = clock_period(320e6);
  EXPECT_GT(cycle, 0u);
  const Time ten_minutes = from_sec(600.0);
  EXPECT_GT(ten_minutes, cycle);
  EXPECT_LT(ten_minutes, kTimeNever);
}

}  // namespace
}  // namespace tfsim::sim
