// ParallelEngine: conservative barrier-window PDES over per-domain slab
// calendars (sim/pdes.hpp).  The suite pins the three contracts the
// tentpole rests on: lookahead enforcement at the horizon boundary,
// thread-count-independent determinism, and cancel semantics across
// calendars (including the ISSUE 7 foreign-handle bugfix).
#include "sim/pdes.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/sweep.hpp"

namespace tfsim::sim {
namespace {

PdesConfig config(unsigned threads, Time lookahead) {
  PdesConfig cfg;
  cfg.threads = threads;
  cfg.lookahead = lookahead;
  return cfg;
}

// Deterministic message-passing workload: every domain runs a seeded event
// chain, each step optionally posting to the next domain at >= the horizon.
// Returns one trace string per domain (time/count folds) so serial and
// parallel runs can be compared byte-for-byte.
std::vector<std::string> run_ring(unsigned threads, std::size_t domains,
                                  Time lookahead, std::uint64_t seed,
                                  int chain_len) {
  ParallelEngine pdes(domains, config(threads, lookahead));
  std::vector<std::uint64_t> hops(domains, 0);
  std::vector<std::uint64_t> fold(domains, 0);
  struct Ctx {
    ParallelEngine* pdes;
    std::vector<std::uint64_t>* hops;
    std::vector<std::uint64_t>* fold;
    std::size_t domains;
    Time lookahead;
    int chain_len;
  } ctx{&pdes, &hops, &fold, domains, lookahead, chain_len};

  // Each hop folds (domain, now) into the owning domain's digest and
  // forwards to the next ring member one lookahead out -- always legal,
  // since the next window's horizon is at most now + lookahead.
  std::function<void(Ctx*, DomainId, int)> hop = [&hop](Ctx* c, DomainId d,
                                                        int depth) {
    Engine& self = c->pdes->domain(d);
    (*c->hops)[d]++;
    (*c->fold)[d] = (*c->fold)[d] * 1099511628211ULL ^ self.now() ^ d;
    if (depth <= 0) return;
    const auto dst = static_cast<DomainId>((d + 1) % c->domains);
    const Time t = self.now() + c->lookahead;
    c->pdes->post(d, dst, t, [c, dst, depth, &hop] { hop(c, dst, depth - 1); });
  };

  Rng rng(seed);
  for (std::size_t d = 0; d < domains; ++d) {
    const Time start = rng.uniform_u64(lookahead);
    pdes.post(static_cast<DomainId>(d), static_cast<DomainId>(d), start,
              [&ctx, d, &hop] {
                hop(&ctx, static_cast<DomainId>(d), ctx.chain_len);
              });
  }
  pdes.run();

  std::vector<std::string> out;
  out.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    std::ostringstream os;
    os << d << ":" << hops[d] << ":" << fold[d] << ":"
       << pdes.domain(static_cast<DomainId>(d)).executed();
    out.push_back(os.str());
  }
  return out;
}

TEST(PdesTest, SerialWindowedRunMatchesPlainEngineSemantics) {
  ParallelEngine pdes(1, config(1, 100));
  std::vector<Time> fired;
  for (Time t : {Time{50}, Time{10}, Time{10}, Time{320}}) {
    pdes.post(0, 0, t, [&fired, &pdes] { fired.push_back(pdes.domain(0).now()); });
  }
  pdes.run();
  EXPECT_EQ(fired, (std::vector<Time>{10, 10, 50, 320}));
  EXPECT_EQ(pdes.executed(), 4u);
  EXPECT_EQ(pdes.pending(), 0u);
  EXPECT_GE(pdes.windows(), 2u) << "320 is beyond the first 100-wide window";
}

TEST(PdesTest, ZeroDelaySelfSendsAreLegal) {
  ParallelEngine pdes(2, config(2, 10));
  int count = 0;
  // A callback scheduling into its own domain at its own `now` must run in
  // the same window -- self-sends never synchronize.
  pdes.post(0, 0, 5, [&pdes, &count] {
    ++count;
    pdes.post(0, 0, pdes.domain(0).now(), [&count] { ++count; });
  });
  pdes.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(pdes.domain(0).now(), 5u);
}

TEST(PdesTest, CrossDomainPostBelowHorizonThrows) {
  ParallelEngine pdes(2, config(1, 100));
  bool threw = false;
  pdes.post(0, 0, 50, [&pdes, &threw] {
    // Window is [50, 150): a cross-domain send at 149 violates lookahead...
    try {
      pdes.post(0, 1, pdes.horizon() - 1, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
    // ...while exactly at the horizon is the tightest legal send.
    pdes.post(0, 1, pdes.horizon(), [] {});
  });
  pdes.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(pdes.executed(), 2u) << "the horizon-boundary send must arrive";
}

TEST(PdesTest, SetupTimePostsBypassTheHorizon) {
  ParallelEngine pdes(2, config(1, 1000));
  int ran = 0;
  pdes.post(0, 1, 3, [&ran] { ++ran; });  // below any horizon: legal at setup
  EXPECT_EQ(pdes.pending(), 1u);
  pdes.run();
  EXPECT_EQ(ran, 1);
}

TEST(PdesTest, RunRequiresLookahead) {
  ParallelEngine pdes(2, config(1, 0));
  pdes.post(0, 0, 1, [] {});
  EXPECT_THROW(pdes.run(), std::logic_error);
}

TEST(PdesTest, DeterministicAcrossThreadCounts) {
  const auto serial = run_ring(1, 16, 300, 0xC0FFEE, 40);
  const auto par2 = run_ring(2, 16, 300, 0xC0FFEE, 40);
  const auto par8 = run_ring(8, 16, 300, 0xC0FFEE, 40);
  EXPECT_EQ(serial, par2);
  EXPECT_EQ(serial, par8);
}

TEST(PdesTest, ThreadCountCapsAtDomainCount) {
  // More workers than domains must neither deadlock the barrier nor change
  // results (the pool is sized min(threads, domains)).
  const auto serial = run_ring(1, 3, 100, 7, 25);
  const auto par16 = run_ring(16, 3, 100, 7, 25);
  EXPECT_EQ(serial, par16);
}

TEST(PdesTest, CancelAcrossBarrierWindows) {
  ParallelEngine pdes(2, config(2, 50));
  int fired = 0;
  // Victim sits several windows out in domain 0's own future.
  Engine::EventId victim =
      pdes.domain(0).schedule_at(400, [&fired] { ++fired; });
  // A domain-0 event in an earlier window cancels it: same-calendar cancel
  // across a barrier is legal and must survive the window protocol.
  pdes.post(0, 0, 10, [&pdes, &victim] { pdes.domain(0).cancel(victim); });
  // Keep domain 1 busy across the same windows so barriers actually turn.
  pdes.post(1, 1, 30, [&pdes, &fired] {
    ++fired;
    pdes.post(1, 1, 390, [&fired] { ++fired; });
  });
  pdes.run();
  EXPECT_EQ(fired, 2) << "only domain 1's two events may fire";
  EXPECT_FALSE(victim.valid());
  EXPECT_EQ(pdes.domain(0).executed(), 1u);
}

TEST(PdesTest, ForeignCancelReportedUnderStrictChecker) {
  DomainChecker checker;
  checker.set_mode(DomainCheckMode::kStrict);
  const DomainId d0 = checker.add_domain("node0");
  const DomainId d1 = checker.add_domain("node1");
  ParallelEngine pdes(2, config(1, 100));
  pdes.domain(0).bind_domain_checker(&checker, d0);
  pdes.domain(1).bind_domain_checker(&checker, d1);

  Engine::EventId ev = pdes.domain(0).schedule_at(10, [] {});
  EXPECT_THROW(pdes.domain(1).cancel(ev), DomainError)
      << "a handle minted by domain 0 presented to domain 1's calendar";
  EXPECT_EQ(checker.total(), 1u);

  // collect mode records without throwing; the foreign event stays live.
  checker.set_mode(DomainCheckMode::kCollect);
  Engine::EventId ev2 = pdes.domain(0).schedule_at(20, [] {});
  pdes.domain(1).cancel(ev2);
  EXPECT_EQ(checker.total(), 2u);
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_EQ(checker.violations().back().owner, d0);
  EXPECT_EQ(checker.violations().back().active, d1);
  EXPECT_EQ(pdes.domain(0).pending(), 2u)
      << "foreign cancels never touch the owning calendar";

  // off mode: the historical silent no-op.
  checker.set_mode(DomainCheckMode::kOff);
  Engine::EventId ev3 = pdes.domain(0).schedule_at(30, [] {});
  pdes.domain(1).cancel(ev3);
  EXPECT_EQ(checker.total(), 2u);
}

TEST(PdesTest, WorkerExceptionPropagatesLowestDomainFirst) {
  for (const unsigned threads : {1u, 4u}) {
    ParallelEngine pdes(4, config(threads, 100));
    for (DomainId d = 0; d < 4; ++d) {
      pdes.post(d, d, 10, [d] {
        throw std::runtime_error("boom " + std::to_string(d));
      });
    }
    try {
      pdes.run();
      FAIL() << "expected the domain exception to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 0") << "lowest domain id wins, as serial";
    }
    EXPECT_FALSE(pdes.running());
  }
}

TEST(PdesTest, ThreadsFromEnv) {
  setenv("TFSIM_PDES", "8", 1);
  EXPECT_EQ(PdesConfig::threads_from_env(), 8u);
  setenv("TFSIM_PDES", "off", 1);
  EXPECT_EQ(PdesConfig::threads_from_env(), 0u);
  setenv("TFSIM_PDES", "-1", 1);
  EXPECT_EQ(PdesConfig::threads_from_env(), 0u) << "negatives reject to off";
  setenv("TFSIM_PDES", "junk", 1);
  EXPECT_EQ(PdesConfig::threads_from_env(), 0u);
  setenv("TFSIM_PDES", "1000000", 1);
  EXPECT_EQ(PdesConfig::threads_from_env(), kMaxEnvThreads);
  setenv("TFSIM_PDES", "0", 1);
  EXPECT_GE(PdesConfig::threads_from_env(), 1u) << "0 = hardware concurrency";
  unsetenv("TFSIM_PDES");
  EXPECT_EQ(PdesConfig::threads_from_env(), 0u);
}

}  // namespace
}  // namespace tfsim::sim
