// Open-loop arrival processes and the bounded-window source: rate fidelity,
// strict monotonicity, and the offered == sum-of-buckets conservation law
// under completion, shedding, rejection, and timeout.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/units.hpp"
#include "workloads/openloop/arrivals.hpp"
#include "workloads/openloop/generator.hpp"

namespace tfsim::workloads {
namespace {

TEST(ArrivalProcessTest, KindParsingRoundTrips) {
  for (const auto kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    EXPECT_EQ(arrival_kind_from(to_string(kind)), kind);
  }
  EXPECT_THROW(arrival_kind_from("uniform"), std::invalid_argument);
  EXPECT_THROW(arrival_kind_from(""), std::invalid_argument);
}

TEST(ArrivalProcessTest, ZeroRateNeverArrives) {
  ArrivalConfig cfg;
  cfg.rate_rps = 0.0;
  ArrivalProcess p(cfg);
  EXPECT_EQ(p.next(), sim::kTimeNever);
}

TEST(ArrivalProcessTest, StrictlyIncreasingForEveryKind) {
  for (const auto kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate_rps = 1e6;
    cfg.seed = 17;
    ArrivalProcess p(cfg);
    sim::Time prev = 0;
    for (int i = 0; i < 5000; ++i) {
      const sim::Time t = p.next();
      EXPECT_GT(t, prev) << to_string(kind) << " sample " << i;
      prev = t;
    }
  }
}

TEST(ArrivalProcessTest, PoissonMeanMatchesRate) {
  ArrivalConfig cfg;
  cfg.rate_rps = 1e6;  // 1 request/us
  cfg.seed = 5;
  ArrivalProcess p(cfg);
  const int n = 20000;
  sim::Time last = 0;
  for (int i = 0; i < n; ++i) last = p.next();
  const double mean_gap_us = sim::to_us(last) / n;
  EXPECT_NEAR(mean_gap_us, 1.0, 0.03);
}

TEST(ArrivalProcessTest, StreamIsReproducible) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kDiurnal;
  cfg.rate_rps = 2e6;
  cfg.seed = 99;
  ArrivalProcess a(cfg);
  ArrivalProcess b(cfg);
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(a.next(), b.next()) << "sample " << i;
}

TEST(ArrivalProcessTest, BurstyArrivesOnlyInOnPhase) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  cfg.rate_rps = 1e6;
  cfg.burst_on_us = 100.0;
  cfg.burst_off_us = 300.0;
  cfg.seed = 3;
  ArrivalProcess p(cfg);
  const sim::Time period = sim::from_us(400.0);
  const sim::Time on = sim::from_us(100.0);
  for (int i = 0; i < 5000; ++i) {
    const sim::Time t = p.next();
    EXPECT_LT(t % period, on) << "arrival " << i << " in the off phase";
  }
}

TEST(ArrivalProcessTest, DiurnalRateSwingsByAmplitude) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kDiurnal;
  cfg.rate_rps = 1e6;
  cfg.diurnal_period_us = 10000.0;
  cfg.diurnal_amplitude = 0.8;
  ArrivalProcess p(cfg);
  const sim::Time peak = sim::from_us(2500.0);    // sin = +1
  const sim::Time trough = sim::from_us(7500.0);  // sin = -1
  EXPECT_NEAR(p.rate_at(peak), 1.8e6, 1e3);
  EXPECT_NEAR(p.rate_at(trough), 0.2e6, 1e3);
  EXPECT_NEAR(p.rate_at(0), 1e6, 1e3);
}

// --- the bounded-window source -----------------------------------------

OpenLoopConfig source_cfg(double rate_rps, double duration_us) {
  OpenLoopConfig cfg;
  cfg.arrivals.kind = ArrivalKind::kPoisson;
  cfg.arrivals.rate_rps = rate_rps;
  cfg.arrivals.seed = 7;
  cfg.stop_at = sim::from_us(duration_us);
  return cfg;
}

TEST(OpenLoopSourceTest, CompletesEverythingUnderCapacity) {
  sim::Engine engine;
  OpenLoopSource src(engine, source_cfg(1e6, 500.0),
                     [&engine](sim::Time, std::uint64_t,
                               OpenLoopSource::CompletionFn done) {
                       engine.schedule_in(sim::from_ns(100.0), [done, &engine] {
                         done(engine.now(), RequestOutcome::kCompleted);
                       });
                     });
  src.start();
  engine.run();
  const OpenLoopCounters& c = src.counters();
  EXPECT_GT(c.offered, 400u);
  EXPECT_EQ(c.completed, c.offered);
  EXPECT_EQ(c.shed, 0u);
  EXPECT_EQ(c.in_flight, 0u);
  EXPECT_EQ(c.queued, 0u);
  EXPECT_TRUE(c.balanced());
}

TEST(OpenLoopSourceTest, ShedsWhenWindowAndQueueFull) {
  sim::Engine engine;
  OpenLoopConfig cfg = source_cfg(1e6, 500.0);
  cfg.max_in_flight = 2;
  cfg.queue_depth = 3;
  // A sink that never answers and no timeout: the window fills, then the
  // queue, then every further arrival is shed on the spot.
  OpenLoopSource src(engine, cfg,
                     [](sim::Time, std::uint64_t,
                        OpenLoopSource::CompletionFn) {});
  src.start();
  engine.run();
  const OpenLoopCounters& c = src.counters();
  EXPECT_EQ(c.in_flight, 2u);
  EXPECT_EQ(c.queued, 3u);
  EXPECT_EQ(c.shed, c.offered - 5);
  EXPECT_EQ(c.completed, 0u);
  EXPECT_TRUE(c.balanced());
}

TEST(OpenLoopSourceTest, TimeoutMarksFailedAndDrainsQueue) {
  sim::Engine engine;
  OpenLoopConfig cfg = source_cfg(1e6, 200.0);
  cfg.max_in_flight = 4;
  cfg.queue_depth = 64;
  cfg.request_timeout = sim::from_us(10.0);
  OpenLoopSource src(engine, cfg,
                     [](sim::Time, std::uint64_t,
                        OpenLoopSource::CompletionFn) {});
  src.start();
  engine.run();
  const OpenLoopCounters& c = src.counters();
  EXPECT_GT(c.failed, 0u);
  EXPECT_EQ(c.completed, 0u);
  EXPECT_EQ(c.in_flight, 0u) << "every dispatched request must time out";
  EXPECT_EQ(c.queued, 0u) << "timeouts must drain the waiting room";
  EXPECT_EQ(c.failed + c.shed, c.offered);
  EXPECT_TRUE(c.balanced());
}

TEST(OpenLoopSourceTest, DownstreamRejectionCounted) {
  sim::Engine engine;
  OpenLoopSource src(engine, source_cfg(1e6, 200.0),
                     [](sim::Time now, std::uint64_t,
                        OpenLoopSource::CompletionFn done) {
                       done(now, RequestOutcome::kRejected);
                     });
  src.start();
  engine.run();
  const OpenLoopCounters& c = src.counters();
  EXPECT_GT(c.offered, 0u);
  EXPECT_EQ(c.rejected, c.offered);
  EXPECT_TRUE(c.balanced());
}

TEST(OpenLoopSourceTest, LateResponseAfterTimeoutIsDropped) {
  sim::Engine engine;
  OpenLoopConfig cfg = source_cfg(1e6, 50.0);
  cfg.request_timeout = sim::from_us(5.0);
  // Every response arrives well after the timeout already fired: the
  // request must count as failed exactly once, never also as completed.
  OpenLoopSource src(engine, cfg,
                     [&engine](sim::Time, std::uint64_t,
                               OpenLoopSource::CompletionFn done) {
                       engine.schedule_in(sim::from_us(20.0), [done, &engine] {
                         done(engine.now(), RequestOutcome::kCompleted);
                       });
                     });
  src.start();
  engine.run();
  const OpenLoopCounters& c = src.counters();
  EXPECT_GT(c.offered, 0u);
  EXPECT_EQ(c.completed, 0u);
  EXPECT_EQ(c.failed + c.shed, c.offered);
  EXPECT_TRUE(c.balanced());
}

TEST(OpenLoopSourceTest, ObserverFiresOncePerOfferedRequest) {
  sim::Engine engine;
  OpenLoopConfig cfg = source_cfg(1e6, 300.0);
  cfg.max_in_flight = 2;
  cfg.queue_depth = 2;
  OpenLoopSource src(engine, cfg,
                     [&engine](sim::Time, std::uint64_t,
                               OpenLoopSource::CompletionFn done) {
                       engine.schedule_in(sim::from_us(3.0), [done, &engine] {
                         done(engine.now(), RequestOutcome::kCompleted);
                       });
                     });
  std::uint64_t fires = 0;
  std::uint64_t shed_fires = 0;
  src.set_observer([&](sim::Time arrival, sim::Time terminal,
                       RequestOutcome outcome, std::uint64_t req_id) {
    ++fires;
    EXPECT_GE(terminal, arrival);
    if (outcome == RequestOutcome::kShed) {
      ++shed_fires;
      EXPECT_EQ(terminal, arrival) << "shed happens on the spot";
      EXPECT_EQ(req_id, OpenLoopSource::kNoRequestId);
    } else {
      EXPECT_NE(req_id, OpenLoopSource::kNoRequestId)
          << "dispatched requests carry their dispatch id";
    }
  });
  src.start();
  engine.run();
  const OpenLoopCounters& c = src.counters();
  EXPECT_EQ(fires, c.offered) << "observer must see every terminal request";
  EXPECT_EQ(shed_fires, c.shed);
  EXPECT_TRUE(c.balanced());
}

}  // namespace
}  // namespace tfsim::workloads
