#include "workloads/replay/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "node/testbed.hpp"

namespace tfsim::workloads::replay {
namespace {

TEST(TraceParseTest, ParsesAllOpKinds) {
  const auto trace = parse_trace_string(
      "# comment\n"
      "R 80\n"
      "W 100\n"
      "D 0\n"
      "C 250\n");
  ASSERT_EQ(trace.ops.size(), 4u);
  EXPECT_EQ(trace.ops[0], (TraceOp{OpKind::kRead, 0x80}));
  EXPECT_EQ(trace.ops[1], (TraceOp{OpKind::kWrite, 0x100}));
  EXPECT_EQ(trace.ops[2], (TraceOp{OpKind::kDependentRead, 0}));
  EXPECT_EQ(trace.ops[3], (TraceOp{OpKind::kCompute, 250}));
}

TEST(TraceParseTest, RoundTripsThroughSerialization) {
  const auto original = parse_trace_string("R 80\nW ff80\nD 0\nC 42\n");
  std::ostringstream out;
  write_trace(out, original);
  const auto reparsed = parse_trace_string(out.str());
  EXPECT_EQ(original.ops, reparsed.ops);
}

TEST(TraceParseTest, RejectsMalformedLines) {
  EXPECT_THROW(parse_trace_string("X 80\n"), std::runtime_error);
  EXPECT_THROW(parse_trace_string("R\n"), std::runtime_error);
  EXPECT_THROW(parse_trace_string("R zz\n"), std::runtime_error);
  EXPECT_THROW(parse_trace_string("R 80 extra\n"), std::runtime_error);
}

TEST(TraceTest, FootprintAndAccessCounts) {
  const auto trace = parse_trace_string("R 0\nW 1000\nC 5\n");
  EXPECT_EQ(trace.accesses(), 2u);
  EXPECT_EQ(trace.footprint_bytes(), 0x1000u + mem::kCacheLineBytes);
  EXPECT_EQ(Trace{}.footprint_bytes(), 0u);
}

TEST(ReplayTest, RunsAgainstTestbed) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "R " + std::to_string(i * 2) + "00\n";  // hex offsets, spread out
    text += "C 10\n";
  }
  const auto trace = parse_trace_string(text);
  const auto res = replay(tb.borrower(), trace, node::Placement::kRemote);
  EXPECT_EQ(res.accesses, 200u);
  EXPECT_GT(res.remote_misses, 150u);
  EXPECT_GT(res.elapsed, sim::from_us(1.0));
}

TEST(ReplayTest, DelaySensitivityMatchesAccessPattern) {
  // A dependent-chase trace must suffer more from injection than an
  // independent-read trace of identical addresses.
  std::string dep_text, indep_text;
  for (int i = 0; i < 100; ++i) {
    dep_text += "D " + std::to_string(i) + "000\n";
    indep_text += "R " + std::to_string(i) + "000\n";
  }
  auto run = [](const std::string& text, std::uint64_t period) {
    node::Testbed tb;
    tb.set_period(period);
    tb.attach_remote();
    return replay(tb.borrower(), parse_trace_string(text),
                  node::Placement::kRemote)
        .elapsed;
  };
  const double dep_deg = static_cast<double>(run(dep_text, 1000)) /
                         static_cast<double>(run(dep_text, 1));
  const double indep_deg = static_cast<double>(run(indep_text, 1000)) /
                           static_cast<double>(run(indep_text, 1));
  EXPECT_GT(dep_deg, 1.5);
  EXPECT_GT(indep_deg, 1.5);
}

TEST(RecorderTest, CapturedTraceReplaysEquivalently) {
  // Record a synthetic workload, then replay the capture: both must see the
  // same number of accesses, and similar timing on a fresh testbed.
  node::Testbed tb1;
  ASSERT_TRUE(tb1.attach_remote());
  const mem::Addr base = tb1.remote_base();
  node::MemContext ctx(tb1.borrower(), node::CpuConfig{8, 100}, "rec");
  TraceRecorder rec(ctx, base);
  for (int i = 0; i < 300; ++i) {
    rec.access(base + static_cast<mem::Addr>(i) * 256, i % 3 == 0,
               i % 7 == 0);
    if (i % 10 == 0) rec.advance(sim::from_ns(50));
  }
  ctx.drain();
  const sim::Time original = ctx.now();

  node::Testbed tb2;
  ASSERT_TRUE(tb2.attach_remote());
  const auto res = replay(tb2.borrower(), rec.trace(), node::Placement::kRemote,
                          node::CpuConfig{8, 100});
  EXPECT_EQ(res.accesses, 300u);
  const double ratio = static_cast<double>(res.elapsed) /
                       static_cast<double>(original);
  EXPECT_NEAR(ratio, 1.0, 0.05) << "replay reproduces the recorded timing";
}

}  // namespace
}  // namespace tfsim::workloads::replay
