#include "workloads/stream/stream.hpp"

#include <gtest/gtest.h>

#include "node/testbed.hpp"
#include "workloads/stream/stream_flow.hpp"

namespace tfsim::workloads {
namespace {

StreamConfig small_stream(std::uint64_t elements = 1'000'000) {
  StreamConfig cfg;
  cfg.elements = elements;  // 24 MB of arrays: misses through the 10 MiB L3
  cfg.placement = node::Placement::kRemote;
  return cfg;
}

TEST(StreamTest, AllKernelsValidateNumerically) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  Stream s(tb.borrower(), small_stream());
  const auto res = s.run();
  ASSERT_EQ(res.kernels.size(), 4u);
  EXPECT_TRUE(res.validated);
  for (const auto& k : res.kernels) {
    EXPECT_TRUE(k.validated) << k.kernel;
    EXPECT_GT(k.bandwidth_gbps, 0.0) << k.kernel;
    EXPECT_GT(k.elapsed, 0u) << k.kernel;
  }
  EXPECT_EQ(res.kernels[0].kernel, "copy");
  EXPECT_EQ(res.kernels[3].kernel, "triad");
}

TEST(StreamTest, MultipleRepetitionsStillValidate) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  auto cfg = small_stream(50'000);
  cfg.repetitions = 3;
  Stream s(tb.borrower(), cfg);
  EXPECT_TRUE(s.run().validated);
}

TEST(StreamTest, BytesCountsMatchStreamConvention) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  const auto cfg = small_stream();
  Stream s(tb.borrower(), cfg);
  const auto res = s.run();
  EXPECT_EQ(res.kernel("copy").bytes, 16 * cfg.elements);
  EXPECT_EQ(res.kernel("scale").bytes, 16 * cfg.elements);
  EXPECT_EQ(res.kernel("add").bytes, 24 * cfg.elements);
  EXPECT_EQ(res.kernel("triad").bytes, 24 * cfg.elements);
  EXPECT_THROW(res.kernel("nope"), std::out_of_range);
}

TEST(StreamTest, DelayInjectionDegradesBandwidthAndRaisesLatency) {
  node::Testbed tb1;
  ASSERT_TRUE(tb1.attach_remote());
  Stream fast(tb1.borrower(), small_stream());
  const auto base = fast.run();

  node::Testbed tb2;
  tb2.set_period(100);
  ASSERT_TRUE(tb2.attach_remote());
  Stream slow(tb2.borrower(), small_stream());
  const auto degraded = slow.run();

  EXPECT_LT(degraded.best_bandwidth_gbps, base.best_bandwidth_gbps / 5);
  EXPECT_GT(degraded.avg_latency_us, base.avg_latency_us * 5);
  EXPECT_TRUE(degraded.validated) << "results stay correct under delay";
}

TEST(StreamTest, LocalPlacementIsFaster) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  auto remote_cfg = small_stream();
  Stream remote(tb.borrower(), remote_cfg);
  const auto r = remote.run();

  node::Testbed tb2;
  auto local_cfg = small_stream();
  local_cfg.placement = node::Placement::kLocal;
  Stream local(tb2.borrower(), local_cfg);
  const auto l = local.run();
  EXPECT_GT(l.best_bandwidth_gbps, r.best_bandwidth_gbps);
}

TEST(StreamTest, FootprintMatchesConfig) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  const auto cfg = small_stream();
  Stream s(tb.borrower(), cfg);
  EXPECT_EQ(s.footprint_bytes(), 3 * cfg.elements * sizeof(double));
}

// --- closed-loop flows ---------------------------------------------------

TEST(StreamFlowTest, RemoteFlowMovesLines) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  FlowConfig cfg;
  cfg.concurrency = 8;
  cfg.base = tb.remote_base();
  cfg.span_bytes = sim::kMiB;
  cfg.stop_at = sim::from_ms(1.0);
  RemoteStreamFlow flow(tb.engine(), tb.borrower().nic(), cfg);
  flow.start();
  tb.engine().run();
  EXPECT_TRUE(flow.finished());
  EXPECT_GT(flow.stats().lines_completed, 100u);
  EXPECT_LE(flow.stats().last_completion,
            cfg.stop_at + sim::from_us(50)) << "stops near the deadline";
}

TEST(StreamFlowTest, BandwidthScalesWithConcurrencyUntilSaturation) {
  auto run_with = [](std::uint32_t lanes) {
    node::Testbed tb;
    tb.attach_remote();
    FlowConfig cfg;
    cfg.concurrency = lanes;
    cfg.base = tb.remote_base();
    cfg.span_bytes = 64 * sim::kMiB;
    cfg.stop_at = sim::from_ms(5.0);
    RemoteStreamFlow flow(tb.engine(), tb.borrower().nic(), cfg);
    flow.start();
    tb.engine().run();
    return flow.stats().bandwidth_gbps(cfg.stop_at);
  };
  const double bw8 = run_with(8);
  const double bw32 = run_with(32);
  const double bw256 = run_with(256);
  EXPECT_NEAR(bw32 / bw8, 4.0, 0.5) << "latency-bound region scales linearly";
  EXPECT_LT(bw256, bw32 * 8) << "saturates at the link/window";
}

TEST(StreamFlowTest, TwoFlowsShareEqually) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  FlowConfig cfg;
  cfg.concurrency = 128;
  cfg.base = tb.remote_base();
  cfg.span_bytes = 64 * sim::kMiB;
  cfg.stop_at = sim::from_ms(5.0);
  RemoteStreamFlow f1(tb.engine(), tb.borrower().nic(), cfg);
  FlowConfig cfg2 = cfg;
  cfg2.base = tb.remote_base() + 128 * sim::kMiB;
  RemoteStreamFlow f2(tb.engine(), tb.borrower().nic(), cfg2);
  f1.start();
  f2.start();
  tb.engine().run();
  const double b1 = f1.stats().bandwidth_gbps(cfg.stop_at);
  const double b2 = f2.stats().bandwidth_gbps(cfg.stop_at);
  EXPECT_NEAR(b1 / b2, 1.0, 0.05) << "equal division (Fig. 6 property)";
}

TEST(StreamFlowTest, LocalFlowConsumesLenderBus) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  FlowConfig cfg;
  cfg.concurrency = 16;
  cfg.stop_at = sim::from_ms(1.0);
  LocalStreamFlow flow(tb.engine(), tb.lender().dram(), cfg);
  flow.start();
  tb.engine().run();
  EXPECT_TRUE(flow.finished());
  EXPECT_GT(flow.stats().lines_completed, 1000u);
  EXPECT_GT(tb.lender().dram().utilization(cfg.stop_at), 0.005);
}

}  // namespace
}  // namespace tfsim::workloads
