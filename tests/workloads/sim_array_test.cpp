#include "workloads/sim_array.hpp"

#include <gtest/gtest.h>

#include "node/testbed.hpp"

namespace tfsim::workloads {
namespace {

struct Fixture {
  node::Testbed tb;
  Fixture() { tb.attach_remote(); }
  node::MemContext ctx() {
    return node::MemContext(tb.borrower(), node::CpuConfig{8, 100}, "t");
  }
};

TEST(SimArrayTest, AddressesAreContiguousAndTyped) {
  Fixture f;
  SimArray<double> arr(f.tb.borrower(), 100, node::Placement::kRemote, "a");
  EXPECT_EQ(arr.size(), 100u);
  EXPECT_EQ(arr.bytes(), 800u);
  EXPECT_EQ(arr.addr_of(1) - arr.addr_of(0), sizeof(double));
  EXPECT_EQ(arr.addr_of(0), arr.base());
  EXPECT_GE(arr.base(), f.tb.remote_base());
}

TEST(SimArrayTest, TimedReadReturnsHostValueAndChargesAccess) {
  Fixture f;
  SimArray<int> arr(f.tb.borrower(), 64, node::Placement::kRemote);
  arr[5] = 42;
  auto ctx = f.ctx();
  EXPECT_EQ(arr.read(ctx, 5), 42);
  EXPECT_EQ(ctx.stats().accesses, 1u);
}

TEST(SimArrayTest, TimedWriteUpdatesHost) {
  Fixture f;
  SimArray<int> arr(f.tb.borrower(), 64, node::Placement::kRemote);
  auto ctx = f.ctx();
  arr.write(ctx, 3, 7);
  EXPECT_EQ(arr[3], 7);
  EXPECT_EQ(ctx.stats().accesses, 1u);
}

TEST(SimArrayTest, DistinctArraysDoNotShareLines) {
  Fixture f;
  SimArray<std::uint8_t> a(f.tb.borrower(), 10, node::Placement::kRemote);
  SimArray<std::uint8_t> b(f.tb.borrower(), 10, node::Placement::kRemote);
  EXPECT_GE(b.base() - a.base(), mem::kCacheLineBytes);
}

TEST(AddrSpanTest, MapsWithoutHostStorage) {
  Fixture f;
  AddrSpan<float> span(f.tb.borrower(), 1000, node::Placement::kRemote);
  EXPECT_EQ(span.size(), 1000u);
  EXPECT_EQ(span.bytes(), 4000u);
  EXPECT_EQ(span.addr_of(10) - span.addr_of(0), 10 * sizeof(float));
  auto ctx = f.ctx();
  span.touch_read(ctx, 0);
  span.touch_write(ctx, 999);
  span.touch_read(ctx, 500, /*dependent=*/true);
  EXPECT_EQ(ctx.stats().accesses, 3u);
}

TEST(AddrSpanTest, DefaultConstructedIsEmpty) {
  AddrSpan<int> span;
  EXPECT_EQ(span.size(), 0u);
  EXPECT_EQ(span.bytes(), 0u);
}

TEST(SimArrayTest, LocalPlacementStaysBelowRemoteWindow) {
  Fixture f;
  SimArray<int> local(f.tb.borrower(), 64, node::Placement::kLocal);
  EXPECT_LT(local.base(), f.tb.remote_base());
}

}  // namespace
}  // namespace tfsim::workloads
