#include "workloads/kvstore/kvstore.hpp"

#include <gtest/gtest.h>

#include "node/testbed.hpp"
#include "workloads/kvstore/memtier.hpp"
#include "workloads/kvstore/resp.hpp"

namespace tfsim::workloads::kv {
namespace {

// --- RESP codec -----------------------------------------------------------

TEST(RespTest, EncodeCommand) {
  EXPECT_EQ(resp_encode_command({"GET", "k1"}),
            "*2\r\n$3\r\nGET\r\n$2\r\nk1\r\n");
}

TEST(RespTest, EncodeReplies) {
  EXPECT_EQ(resp_encode_simple("OK"), "+OK\r\n");
  EXPECT_EQ(resp_encode_error("ERR nope"), "-ERR nope\r\n");
  EXPECT_EQ(resp_encode_bulk("abc"), "$3\r\nabc\r\n");
  EXPECT_EQ(resp_encode_null(), "$-1\r\n");
  EXPECT_EQ(resp_encode_integer(-7), ":-7\r\n");
}

TEST(RespTest, ParseRoundTrip) {
  const auto wire = resp_encode_command({"SET", "key", "some value"});
  const auto parsed = resp_parse_command(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->parts,
            (std::vector<std::string>{"SET", "key", "some value"}));
  EXPECT_EQ(parsed->consumed, wire.size());
}

TEST(RespTest, ParseHandlesBinaryValues) {
  std::string binary = "a\r\nb\0c";
  binary += '\x01';
  const auto wire = resp_encode_command({"SET", "k", binary});
  const auto parsed = resp_parse_command(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->parts[2], binary);
}

TEST(RespTest, IncompleteInputReturnsNulloptWithoutError) {
  const auto wire = resp_encode_command({"GET", "key"});
  std::string error;
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    error.clear();
    const auto parsed = resp_parse_command(wire.substr(0, cut), &error);
    EXPECT_FALSE(parsed.has_value()) << "cut=" << cut;
    EXPECT_TRUE(error.empty()) << "incomplete is not malformed, cut=" << cut;
  }
}

TEST(RespTest, MalformedInputsSetError) {
  std::string error;
  EXPECT_FALSE(resp_parse_command("PING\r\n", &error).has_value());
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(resp_parse_command("*1\r\n:5\r\n", &error).has_value());
  EXPECT_FALSE(error.empty()) << "array element must be a bulk string";
  error.clear();
  EXPECT_FALSE(resp_parse_command("*1\r\n$3\r\nabcXX", &error).has_value());
  EXPECT_FALSE(error.empty()) << "missing CRLF after bulk";
}

TEST(RespTest, TrailingBytesReported) {
  const auto wire = resp_encode_command({"GET", "k"}) + "extra";
  const auto parsed = resp_parse_command(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->consumed, wire.size() - 5);
}

// --- make_value ------------------------------------------------------------

TEST(MakeValueTest, DeterministicAndVersionSensitive) {
  const auto a = make_value("key1", 1, 64);
  EXPECT_EQ(a, make_value("key1", 1, 64));
  EXPECT_NE(a, make_value("key1", 2, 64));
  EXPECT_NE(a, make_value("key2", 1, 64));
  EXPECT_EQ(a.size(), 64u);
}

// --- KvStore ----------------------------------------------------------------

struct KvFixture {
  node::Testbed tb;
  KvStoreConfig cfg;
  KvFixture() {
    tb.attach_remote();
    cfg.buckets = 1 << 10;
    cfg.max_keys = 1 << 12;
    cfg.value_size = 256;
  }
  node::MemContext ctx() {
    return node::MemContext(tb.borrower(), node::CpuConfig{16, 100}, "kv");
  }
};

TEST(KvStoreTest, SetGetRoundTrip) {
  KvFixture f;
  KvStore store(f.tb.borrower(), f.cfg);
  auto ctx = f.ctx();
  store.set(ctx, "alpha", 41);
  store.set(ctx, "beta", 7);
  const auto got = store.get(ctx, "alpha");
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.version, 41u);
  EXPECT_EQ(got.value, make_value("alpha", 41, 256));
  EXPECT_EQ(store.size(), 2u);
}

TEST(KvStoreTest, OverwriteUpdatesVersion) {
  KvFixture f;
  KvStore store(f.tb.borrower(), f.cfg);
  auto ctx = f.ctx();
  store.set(ctx, "k", 1);
  store.set(ctx, "k", 2);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get(ctx, "k").version, 2u);
}

TEST(KvStoreTest, MissingKeyNotFound) {
  KvFixture f;
  KvStore store(f.tb.borrower(), f.cfg);
  auto ctx = f.ctx();
  EXPECT_FALSE(store.get(ctx, "ghost").found);
}

TEST(KvStoreTest, DeleteRemoves) {
  KvFixture f;
  KvStore store(f.tb.borrower(), f.cfg);
  auto ctx = f.ctx();
  store.set(ctx, "k", 1);
  EXPECT_TRUE(store.del(ctx, "k"));
  EXPECT_FALSE(store.get(ctx, "k").found);
  EXPECT_FALSE(store.del(ctx, "k"));
  EXPECT_EQ(store.size(), 0u);
}

TEST(KvStoreTest, CollidingKeysCoexist) {
  KvFixture f;
  f.cfg.buckets = 2;  // force chains
  KvStore store(f.tb.borrower(), f.cfg);
  auto ctx = f.ctx();
  for (int i = 0; i < 100; ++i) {
    store.set(ctx, "key-" + std::to_string(i), static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 100; ++i) {
    const auto got = store.get(ctx, "key-" + std::to_string(i));
    EXPECT_TRUE(got.found) << i;
    EXPECT_EQ(got.version, static_cast<std::uint64_t>(i));
  }
}

TEST(KvStoreTest, MaxKeysEnforced) {
  KvFixture f;
  f.cfg.max_keys = 4;
  KvStore store(f.tb.borrower(), f.cfg);
  auto ctx = f.ctx();
  for (int i = 0; i < 4; ++i) {
    store.set(ctx, "k" + std::to_string(i), 1);
  }
  EXPECT_THROW(store.set(ctx, "k4", 1), std::runtime_error);
}

TEST(KvStoreTest, BucketsMustBePowerOfTwo) {
  KvFixture f;
  f.cfg.buckets = 1000;
  EXPECT_THROW(KvStore(f.tb.borrower(), f.cfg), std::invalid_argument);
}

TEST(KvStoreTest, GetTouchesMoreMemoryThanMiss) {
  KvFixture f;
  KvStore store(f.tb.borrower(), f.cfg);
  auto ctx = f.ctx();
  store.set(ctx, "k", 1);
  const auto before = ctx.stats().accesses;
  store.get(ctx, "k");
  const auto hit_accesses = ctx.stats().accesses - before;
  // Hit touches: aux + bucket + entry + value lines.
  EXPECT_GE(hit_accesses, 2u + f.cfg.value_size / 128);
}

// --- Memtier -----------------------------------------------------------------

MemtierConfig small_load() {
  MemtierConfig cfg;
  cfg.threads = 2;
  cfg.connections = 5;
  cfg.requests_per_client = 20;
  cfg.key_space = 200;
  return cfg;
}

TEST(MemtierTest, RunsAndValidates) {
  KvFixture f;
  KvStore store(f.tb.borrower(), f.cfg);
  Memtier memtier(f.tb.borrower(), store, small_load());
  const auto res = memtier.run();
  EXPECT_EQ(res.requests, 2u * 5u * 20u);
  EXPECT_EQ(res.gets + res.sets, res.requests);
  EXPECT_TRUE(res.validated) << "every GET matched the oracle";
  EXPECT_GT(res.ops_per_sec, 0.0);
  EXPECT_GT(res.populate_elapsed, 0u);
  EXPECT_EQ(res.hits, res.gets) << "populated keyspace: all GETs hit";
}

TEST(MemtierTest, LatencyIncludesRttAndQueueing) {
  KvFixture f;
  KvStore store(f.tb.borrower(), f.cfg);
  auto cfg = small_load();
  Memtier memtier(f.tb.borrower(), store, cfg);
  const auto res = memtier.run();
  EXPECT_GE(res.latency_us.min(),
            sim::to_us(cfg.netstack.client_rtt) - 1e-6)
      << "latency can never be below the network RTT";
  // 10 closed-loop connections on one server: mean latency ~ conns x service.
  EXPECT_GT(res.latency_us.mean(), res.avg_service_us * 5);
}

TEST(MemtierTest, SetRatioRespected) {
  KvFixture f;
  KvStore store(f.tb.borrower(), f.cfg);
  auto cfg = small_load();
  cfg.requests_per_client = 100;
  cfg.set_percent = 30;
  Memtier memtier(f.tb.borrower(), store, cfg);
  const auto res = memtier.run();
  const double ratio = static_cast<double>(res.sets) /
                       static_cast<double>(res.requests);
  EXPECT_NEAR(ratio, 0.30, 0.05);
}

TEST(MemtierTest, NoPopulateMeansMisses) {
  KvFixture f;
  KvStore store(f.tb.borrower(), f.cfg);
  auto cfg = small_load();
  cfg.populate = false;
  cfg.set_percent = 0;  // pure GET of an empty store
  Memtier memtier(f.tb.borrower(), store, cfg);
  const auto res = memtier.run();
  EXPECT_EQ(res.hits, 0u);
  EXPECT_TRUE(res.validated) << "misses are the correct answer here";
}

TEST(MemtierTest, DelaySlowsServiceDown) {
  KvFixture f1;
  KvStore s1(f1.tb.borrower(), f1.cfg);
  Memtier m1(f1.tb.borrower(), s1, small_load());
  const auto base = m1.run();

  node::Testbed tb2;
  tb2.set_period(1000);
  tb2.attach_remote();
  KvStoreConfig cfg2 = f1.cfg;
  KvStore s2(tb2.borrower(), cfg2);
  Memtier m2(tb2.borrower(), s2, small_load());
  const auto slow = m2.run();
  EXPECT_GT(slow.avg_service_us, base.avg_service_us * 1.2);
  EXPECT_LT(slow.avg_service_us, base.avg_service_us * 4.0)
      << "Redis stays stack-dominated (the paper's point)";
}

}  // namespace
}  // namespace tfsim::workloads::kv
