#include "workloads/graph500/graph500.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <queue>

#include "node/testbed.hpp"

namespace tfsim::workloads::g500 {
namespace {

KroneckerParams tiny_params(std::uint32_t scale = 10) {
  KroneckerParams p;
  p.scale = scale;
  p.edgefactor = 16;
  p.seed = 12345;
  return p;
}

TEST(KroneckerTest, EdgeCountAndRange) {
  const auto el = kronecker_generate(tiny_params());
  EXPECT_EQ(el.num_vertices, 1024u);
  EXPECT_EQ(el.edges.size(), 1024u * 16u);
  for (const auto& e : el.edges) {
    EXPECT_LT(e.u, el.num_vertices);
    EXPECT_LT(e.v, el.num_vertices);
    EXPECT_GE(e.w, 0.0f);
    EXPECT_LT(e.w, 1.0f);
  }
}

TEST(KroneckerTest, DeterministicForSeed) {
  const auto a = kronecker_generate(tiny_params());
  const auto b = kronecker_generate(tiny_params());
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].u, b.edges[i].u);
    EXPECT_EQ(a.edges[i].v, b.edges[i].v);
  }
  auto p2 = tiny_params();
  p2.seed = 999;
  const auto c = kronecker_generate(p2);
  int diff = 0;
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    diff += (a.edges[i].u != c.edges[i].u) ? 1 : 0;
  }
  EXPECT_GT(diff, 1000) << "different seed, different graph";
}

TEST(KroneckerTest, SkewedDegreeDistribution) {
  const auto el = kronecker_generate(tiny_params(12));
  const auto g = build_csr(el);
  std::uint64_t max_deg = 0;
  for (std::uint64_t v = 0; v < g.num_vertices; ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  const double avg = static_cast<double>(g.num_edges_directed()) /
                     static_cast<double>(g.num_vertices);
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg)
      << "R-MAT graphs are heavy-tailed";
}

TEST(CsrTest, StructureIsConsistent) {
  const auto el = kronecker_generate(tiny_params());
  const auto g = build_csr(el);
  EXPECT_EQ(g.num_vertices, el.num_vertices);
  EXPECT_EQ(g.xadj.size(), g.num_vertices + 1);
  EXPECT_EQ(g.xadj.front(), 0u);
  EXPECT_EQ(g.xadj.back(), g.adj.size());
  EXPECT_EQ(g.weights.size(), g.adj.size());
  // Symmetrized minus self-loops: every directed edge has its reverse.
  std::uint64_t self_loops = 0;
  for (const auto& e : el.edges) self_loops += (e.u == e.v) ? 1 : 0;
  EXPECT_EQ(g.adj.size(), 2 * (el.edges.size() - self_loops));
  // Sorted adjacency per vertex.
  for (std::uint64_t v = 0; v < g.num_vertices; ++v) {
    for (std::uint64_t e = g.xadj[v] + 1; e < g.xadj[v + 1]; ++e) {
      EXPECT_LE(g.adj[e - 1], g.adj[e]);
    }
  }
}

TEST(CsrTest, SymmetryProperty) {
  const auto el = kronecker_generate(tiny_params());
  const auto g = build_csr(el);
  for (std::uint64_t v = 0; v < g.num_vertices; v += 37) {
    for (std::uint64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      EXPECT_TRUE(g.has_edge(g.adj[e], static_cast<std::uint32_t>(v)))
          << "missing reverse edge";
    }
  }
}

TEST(CsrTest, HasEdgeAndMinWeight) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1, 0.5f}, {0, 1, 0.2f}, {1, 2, 0.9f}, {3, 3, 0.1f}};
  const auto g = build_csr(el);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(3, 3)) << "self loop dropped";
  EXPECT_FLOAT_EQ(g.min_edge_weight(0, 1), 0.2f) << "multi-edge min";
  EXPECT_TRUE(std::isinf(g.min_edge_weight(0, 3)));
}

// --- BFS/SSSP over simulated memory ---------------------------------------

struct GraphFixture {
  node::Testbed tb;
  Graph500Config cfg;
  GraphFixture() {
    tb.attach_remote();
    cfg.gen = tiny_params(12);
    cfg.placement = node::Placement::kRemote;
  }
};

TEST(BfsTest, ProducesValidTree) {
  GraphFixture f;
  Graph500 g(f.tb.borrower(), f.cfg);
  const auto res = g.run_bfs(1);
  EXPECT_GT(res.vertices_visited, g.graph().num_vertices / 2)
      << "giant component reached";
  EXPECT_GT(res.edges_traversed, 0u);
  EXPECT_GT(res.teps, 0.0);
  EXPECT_EQ(validate_bfs(g.graph(), 1, res.parent), "");
}

TEST(BfsTest, AgainstReferenceLevels) {
  // Cross-check simulated BFS levels against an independent host BFS.
  GraphFixture f;
  Graph500 g(f.tb.borrower(), f.cfg);
  const auto res = g.run_bfs(7);
  const auto& gr = g.graph();
  std::vector<int> level(gr.num_vertices, -1);
  std::queue<std::uint32_t> q;
  level[7] = 0;
  q.push(7);
  while (!q.empty()) {
    const auto u = q.front();
    q.pop();
    for (std::uint64_t e = gr.xadj[u]; e < gr.xadj[u + 1]; ++e) {
      const auto v = gr.adj[e];
      if (level[v] < 0) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  for (std::uint32_t v = 0; v < gr.num_vertices; ++v) {
    EXPECT_EQ(res.parent[v] >= 0, level[v] >= 0) << "reachability mismatch at "
                                                 << v;
  }
}

TEST(BfsTest, ValidatorRejectsCorruptedTree) {
  GraphFixture f;
  Graph500 g(f.tb.borrower(), f.cfg);
  auto res = g.run_bfs(1);
  ASSERT_EQ(validate_bfs(g.graph(), 1, res.parent), "");
  // Corrupt: point some visited vertex at a non-neighbour.
  for (std::uint32_t v = 0; v < g.graph().num_vertices; ++v) {
    if (res.parent[v] >= 0 && v != 1 &&
        !g.graph().has_edge(static_cast<std::uint32_t>((v + 517) %
                                                       g.graph().num_vertices),
                            v)) {
      res.parent[v] =
          static_cast<std::int64_t>((v + 517) % g.graph().num_vertices);
      break;
    }
  }
  EXPECT_NE(validate_bfs(g.graph(), 1, res.parent), "");
}

TEST(SsspTest, ProducesValidDistances) {
  GraphFixture f;
  Graph500 g(f.tb.borrower(), f.cfg);
  const auto res = g.run_sssp(1);
  EXPECT_EQ(res.dist[1], 0.0f);
  EXPECT_EQ(validate_sssp(g.graph(), 1, res.dist, res.parent), "");
  EXPECT_GT(res.vertices_visited, 0u);
}

TEST(SsspTest, DistancesAreShorterThanHops) {
  // Weighted shortest paths are <= unweighted hop count (weights < 1).
  GraphFixture f;
  Graph500 g(f.tb.borrower(), f.cfg);
  const auto bfs = g.run_bfs(3);
  const auto sssp = g.run_sssp(3);
  std::vector<int> level(g.graph().num_vertices, -1);
  // Recover hop counts from the BFS parent chain.
  for (std::uint32_t v = 0; v < g.graph().num_vertices; ++v) {
    if (bfs.parent[v] < 0) continue;
    int hops = 0;
    std::uint32_t cur = v;
    while (cur != 3 && hops <= static_cast<int>(g.graph().num_vertices)) {
      cur = static_cast<std::uint32_t>(bfs.parent[cur]);
      ++hops;
    }
    level[v] = hops;
  }
  for (std::uint32_t v = 0; v < g.graph().num_vertices; v += 11) {
    if (level[v] >= 0 && sssp.dist[v] < 1e30f) {
      EXPECT_LE(sssp.dist[v], static_cast<float>(level[v]) + 1e-3f);
    }
  }
}

TEST(SsspTest, ValidatorRejectsWrongDistance) {
  GraphFixture f;
  Graph500 g(f.tb.borrower(), f.cfg);
  auto res = g.run_sssp(1);
  // Inflate one reachable non-root distance: leaves a relaxable edge.
  for (std::uint32_t v = 0; v < g.graph().num_vertices; ++v) {
    if (v != 1 && res.dist[v] < 1e30f && res.dist[v] > 0.0f) {
      res.dist[v] += 10.0f;
      break;
    }
  }
  EXPECT_NE(validate_sssp(g.graph(), 1, res.dist, res.parent), "");
}

TEST(JobTest, ConstructionPlusKernel) {
  GraphFixture f;
  Graph500 g(f.tb.borrower(), f.cfg);
  ASSERT_TRUE(g.has_edge_list());
  const auto job = g.run_bfs_job(1);
  EXPECT_GT(job.construction_elapsed, 0u);
  EXPECT_GT(job.kernel_elapsed, 0u);
  EXPECT_EQ(job.total(), job.construction_elapsed + job.kernel_elapsed);
  EXPECT_EQ(job.validation_error, "");
}

TEST(JobTest, CsrOnlyGraphCannotReplayConstruction) {
  GraphFixture f;
  auto csr = build_csr(kronecker_generate(tiny_params()));
  Graph500 g(f.tb.borrower(), f.cfg, std::move(csr));
  EXPECT_FALSE(g.has_edge_list());
  EXPECT_THROW(g.run_construction(), std::logic_error);
}

TEST(JobTest, DelayInjectionSlowsJobDown) {
  GraphFixture fast;
  Graph500 g1(fast.tb.borrower(), fast.cfg);
  const auto base = g1.run_bfs_job(1);

  node::Testbed tb2;
  tb2.set_period(200);
  tb2.attach_remote();
  Graph500 g2(tb2.borrower(), fast.cfg);
  const auto slow = g2.run_bfs_job(1);
  EXPECT_GT(slow.total(), 3 * base.total());
  EXPECT_EQ(slow.validation_error, "") << "still correct, just slow";
}

}  // namespace
}  // namespace tfsim::workloads::g500
