// Switch unit tests: per-port occupancy statistics under kBackpressure
// bursts, tail-drop admission at the exact buffer depth, chaos down/brownout
// windows (kept apart from buffer drops), and the enum round-trips report
// parsers lean on (FaultOutcome, HealthClass, QueuePolicy).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/resilience.hpp"
#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/units.hpp"

namespace tfsim::net {
namespace {

constexpr NodeId kPortA = 7;
constexpr NodeId kPortB = 9;
constexpr std::uint64_t kFrame = 1000;

// 8 Gb/s == 1e9 B/s, so a 1000-byte frame serializes in exactly 1 us and
// the occupancy arithmetic below stays in whole bytes.
Link make_link() {
  LinkConfig cfg;
  cfg.bandwidth = sim::Bandwidth::from_gbit(8.0);
  cfg.propagation = sim::from_ns(100.0);
  return Link(cfg, "egress");
}

TEST(SwitchTest, BackpressureBurstTracksPeakAndMeanOccupancy) {
  Switch sw{SwitchConfig{.buffer_bytes = 0, .policy = QueuePolicy::kBackpressure}};
  Link out = make_link();

  // A 6-frame burst at t=0: frame k finds k full frames queued ahead of it
  // (including the one on the wire), and lossless admission takes them all.
  constexpr std::uint64_t kBurst = 6;
  for (std::uint64_t k = 0; k < kBurst; ++k) {
    ASSERT_TRUE(sw.admit(kPortA, 0, kFrame, out));
    out.transmit(0, kFrame);
  }
  const PortStats* p = sw.port(kPortA);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->frames, kBurst);
  EXPECT_EQ(p->bytes, kBurst * kFrame);
  EXPECT_EQ(p->drops, 0u);
  EXPECT_EQ(p->chaos_drops, 0u);
  // Peak is sampled right after admission: the last frame's occupancy plus
  // itself, i.e. the whole burst.
  EXPECT_EQ(p->peak_queued_bytes, kBurst * kFrame);
  // Mean at arrival: (0 + 1 + ... + 5) * kFrame / 6.
  EXPECT_DOUBLE_EQ(p->mean_queued_bytes(),
                   static_cast<double>(kFrame) * (kBurst - 1) / 2.0);

  // After the burst drains, a lone frame sees an empty queue: the peak
  // stays, the mean falls.
  const sim::Time later = sim::from_us(100.0);
  ASSERT_TRUE(sw.admit(kPortA, later, kFrame, out));
  out.transmit(later, kFrame);
  EXPECT_EQ(p->peak_queued_bytes, kBurst * kFrame);
  EXPECT_DOUBLE_EQ(p->mean_queued_bytes(),
                   static_cast<double>(kFrame) * (kBurst - 1) / 2.0 *
                       (static_cast<double>(kBurst) / (kBurst + 1)));
  EXPECT_EQ(sw.total_drops(), 0u);
}

TEST(SwitchTest, DropPolicyAdmitsExactlyAtDepthThenTailDrops) {
  // Buffer holds exactly four frames; the admission rule is occupancy +
  // frame > depth, so the frame landing *exactly* at the depth is admitted.
  Switch sw{SwitchConfig{.buffer_bytes = 4 * kFrame, .policy = QueuePolicy::kDrop}};
  Link out = make_link();

  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(sw.admit(kPortA, 0, kFrame, out)) << "frame " << k;
    out.transmit(0, kFrame);
  }
  // Fifth frame would land at 5 * kFrame > depth: tail-dropped, and the
  // link never sees it.
  EXPECT_FALSE(sw.admit(kPortA, 0, kFrame, out));
  const PortStats* p = sw.port(kPortA);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->frames, 4u);
  EXPECT_EQ(p->drops, 1u);
  EXPECT_EQ(p->chaos_drops, 0u);
  EXPECT_EQ(p->peak_queued_bytes, 4 * kFrame);
  EXPECT_EQ(sw.total_drops(), 1u);
  EXPECT_EQ(sw.total_chaos_drops(), 0u);
}

TEST(SwitchTest, ChaosDownWindowDropsSeparatelyFromTailDrops) {
  Switch sw{SwitchConfig{.policy = QueuePolicy::kBackpressure}};
  Link out = make_link();
  sw.set_down_windows({{.start = sim::from_us(10.0),
                        .duration = sim::from_us(10.0),
                        .bandwidth_factor = 0.0}});

  EXPECT_FALSE(sw.chaos_down(kPortA, sim::from_us(5.0)));
  EXPECT_TRUE(sw.chaos_down(kPortA, sim::from_us(10.0)));
  EXPECT_TRUE(sw.chaos_down(kPortB, sim::from_us(15.0)))
      << "a killed switch is dead on every port";
  EXPECT_FALSE(sw.chaos_down(kPortA, sim::from_us(20.0)))
      << "window end is exclusive";

  ASSERT_TRUE(sw.admit(kPortA, sim::from_us(5.0), kFrame, out));
  out.transmit(sim::from_us(5.0), kFrame);
  EXPECT_FALSE(sw.admit(kPortA, sim::from_us(12.0), kFrame, out));
  ASSERT_TRUE(sw.admit(kPortA, sim::from_us(25.0), kFrame, out));
  out.transmit(sim::from_us(25.0), kFrame);

  const PortStats* p = sw.port(kPortA);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->frames, 2u);
  EXPECT_EQ(p->drops, 0u) << "chaos drops must not pollute the buffer stat";
  EXPECT_EQ(p->chaos_drops, 1u);
  EXPECT_EQ(sw.total_chaos_drops(), 1u);
  EXPECT_EQ(sw.total_drops(), 0u);
}

TEST(SwitchTest, PortBrownoutStretchesOnlyThatPort) {
  Switch sw{SwitchConfig{.policy = QueuePolicy::kBackpressure}};
  sw.set_port_windows(kPortA, {{.start = sim::from_us(0.0),
                                .duration = sim::from_us(10.0),
                                .bandwidth_factor = 0.25}});

  EXPECT_DOUBLE_EQ(sw.service_stretch(kPortA, sim::from_us(5.0)), 4.0);
  EXPECT_DOUBLE_EQ(sw.service_stretch(kPortB, sim::from_us(5.0)), 1.0);
  EXPECT_DOUBLE_EQ(sw.service_stretch(kPortA, sim::from_us(15.0)), 1.0);
  // A browned-out port still admits: degradation is slowness, not loss.
  EXPECT_FALSE(sw.chaos_down(kPortA, sim::from_us(5.0)));

  Link out = make_link();
  ASSERT_TRUE(sw.admit(kPortA, sim::from_us(5.0), kFrame, out));
  EXPECT_EQ(sw.total_chaos_drops(), 0u);
}

TEST(SwitchTest, SwitchWideWindowDominatesPortSchedule) {
  Switch sw{SwitchConfig{.policy = QueuePolicy::kBackpressure}};
  // The port says "degraded", the switch says "dead": dead wins.
  sw.set_port_windows(kPortA, {{.start = sim::from_us(0.0),
                                .duration = sim::from_us(20.0),
                                .bandwidth_factor = 0.5}});
  sw.set_down_windows({{.start = sim::from_us(5.0),
                        .duration = sim::from_us(5.0),
                        .bandwidth_factor = 0.0}});

  EXPECT_DOUBLE_EQ(sw.service_stretch(kPortA, sim::from_us(2.0)), 2.0);
  EXPECT_TRUE(sw.chaos_down(kPortA, sim::from_us(7.0)));
  // Inside a hard-down window there is no stretch -- frames are dropped,
  // not slowed.
  EXPECT_DOUBLE_EQ(sw.service_stretch(kPortA, sim::from_us(7.0)), 1.0);
  EXPECT_DOUBLE_EQ(sw.service_stretch(kPortA, sim::from_us(12.0)), 2.0);
}

TEST(SwitchTest, RejectsOverlappingChaosSchedules) {
  Switch sw{SwitchConfig{}};
  std::vector<FlapSpec> overlapping = {
      {.start = sim::from_us(0.0), .duration = sim::from_us(10.0),
       .bandwidth_factor = 0.0},
      {.start = sim::from_us(5.0), .duration = sim::from_us(10.0),
       .bandwidth_factor = 0.5}};
  EXPECT_THROW(sw.set_down_windows(overlapping), std::invalid_argument);
  EXPECT_THROW(sw.set_port_windows(kPortA, overlapping),
               std::invalid_argument);
}

TEST(SwitchTest, FaultOutcomeRoundTrips) {
  for (const FaultOutcome o :
       {FaultOutcome::kDelivered, FaultOutcome::kCorrupted,
        FaultOutcome::kLost, FaultOutcome::kFlapDropped,
        FaultOutcome::kSwitchDropped}) {
    EXPECT_EQ(parse_fault_outcome(to_string(o)), o);
  }
  EXPECT_EQ(std::string(to_string(FaultOutcome::kSwitchDropped)),
            "switch-dropped");
  EXPECT_THROW(parse_fault_outcome("teleported"), std::invalid_argument);
}

TEST(SwitchTest, HealthClassRoundTrips) {
  using core::HealthClass;
  for (const HealthClass h :
       {HealthClass::kHealthy, HealthClass::kRecovering,
        HealthClass::kDegraded, HealthClass::kDetached,
        HealthClass::kDeviceLost}) {
    EXPECT_EQ(core::parse_health_class(core::to_string(h)), h);
  }
  EXPECT_EQ(core::to_string(HealthClass::kDeviceLost), "device-lost");
  EXPECT_THROW(core::parse_health_class("zombie"), std::invalid_argument);
}

TEST(SwitchTest, QueuePolicyRoundTrips) {
  EXPECT_EQ(parse_queue_policy(to_string(QueuePolicy::kDrop)),
            QueuePolicy::kDrop);
  EXPECT_EQ(parse_queue_policy(to_string(QueuePolicy::kBackpressure)),
            QueuePolicy::kBackpressure);
  EXPECT_THROW(parse_queue_policy("random-early"), std::invalid_argument);
}

}  // namespace
}  // namespace tfsim::net
