#include <gtest/gtest.h>

#include <vector>

#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/network.hpp"

namespace tfsim::net {
namespace {

// --- fault plan ----------------------------------------------------------

TEST(FaultPlanTest, SameSeedSameSequence) {
  FaultConfig cfg;
  cfg.loss_rate = 0.3;
  cfg.corrupt_rate = 0.2;
  cfg.seed = 42;
  FaultPlan a(cfg), b(cfg);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.next(0), b.next(0)) << "decision " << i;
  }
  EXPECT_EQ(a.decisions(), 2000u);
}

TEST(FaultPlanTest, DecisionIndependentOfDepartTime) {
  // Decision k is a pure function of (seed, k): the depart time only matters
  // for flap windows, never for the loss/corruption draws.
  FaultConfig cfg;
  cfg.loss_rate = 0.5;
  cfg.seed = 7;
  FaultPlan a(cfg), b(cfg);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.next(0), b.next(sim::from_us(static_cast<double>(i))));
  }
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  FaultConfig a_cfg, b_cfg;
  a_cfg.loss_rate = b_cfg.loss_rate = 0.5;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  FaultPlan a(a_cfg), b(b_cfg);
  int diffs = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.next(0) != b.next(0)) ++diffs;
  }
  EXPECT_GT(diffs, 0) << "independent streams must not be identical";
}

TEST(FaultPlanTest, RatesRoughlyMatchConfig) {
  FaultConfig cfg;
  cfg.loss_rate = 0.1;
  cfg.seed = 3;
  FaultPlan plan(cfg);
  int lost = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (plan.next(0) == FaultOutcome::kLost) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.1, 0.02);
}

TEST(FaultPlanTest, ZeroRatesAlwaysDeliver) {
  FaultPlan plan(FaultConfig{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(plan.next(0), FaultOutcome::kDelivered);
  }
}

TEST(FaultPlanTest, RateValidation) {
  FaultConfig bad;
  bad.loss_rate = 1.5;
  EXPECT_THROW(FaultPlan{bad}, std::invalid_argument);
  bad.loss_rate = -0.1;
  EXPECT_THROW(FaultPlan{bad}, std::invalid_argument);
  bad.loss_rate = 0.0;
  bad.corrupt_rate = 2.0;
  EXPECT_THROW(FaultPlan{bad}, std::invalid_argument);
}

TEST(FaultPlanTest, FlapValidation) {
  FaultConfig bad;
  bad.flaps.push_back(FlapSpec{0, 0, 0.0});  // zero duration
  EXPECT_THROW(FaultPlan{bad}, std::invalid_argument);
  bad.flaps = {FlapSpec{0, 100, 1.0}};  // factor must stay < 1
  EXPECT_THROW(FaultPlan{bad}, std::invalid_argument);
  bad.flaps = {FlapSpec{0, 100, -0.5}};
  EXPECT_THROW(FaultPlan{bad}, std::invalid_argument);
}

TEST(FaultPlanTest, HardDownFlapWindowIsHalfOpen) {
  FaultConfig cfg;
  cfg.flaps.push_back(FlapSpec{1000, 500, 0.0});
  FaultPlan plan(cfg);
  EXPECT_EQ(plan.next(999), FaultOutcome::kDelivered);
  EXPECT_EQ(plan.next(1000), FaultOutcome::kFlapDropped);
  EXPECT_EQ(plan.next(1499), FaultOutcome::kFlapDropped);
  EXPECT_EQ(plan.next(1500), FaultOutcome::kDelivered) << "end is exclusive";
  EXPECT_EQ(plan.active_flap(1200), &plan.config().flaps[0]);
  EXPECT_EQ(plan.active_flap(1500), nullptr);
}

TEST(FaultPlanTest, HardDownFlapOutranksLoss) {
  // Precedence: a frame sent into a down window is flap-dropped even when
  // the random draw would also have lost it.
  FaultConfig cfg;
  cfg.loss_rate = 1.0;
  cfg.flaps.push_back(FlapSpec{0, 1000, 0.0});
  FaultPlan plan(cfg);
  EXPECT_EQ(plan.next(500), FaultOutcome::kFlapDropped);
  EXPECT_EQ(plan.next(2000), FaultOutcome::kLost);
}

TEST(FaultPlanTest, DegradedFlapDoesNotDropFrames) {
  FaultConfig cfg;
  cfg.flaps.push_back(FlapSpec{0, 1000, 0.5});
  FaultPlan plan(cfg);
  EXPECT_EQ(plan.next(500), FaultOutcome::kDelivered);
  ASSERT_NE(plan.active_flap(500), nullptr);
  EXPECT_FALSE(plan.active_flap(500)->down());
}

TEST(FaultPlanTest, OutcomeNames) {
  EXPECT_STREQ(to_string(FaultOutcome::kDelivered), "delivered");
  EXPECT_STREQ(to_string(FaultOutcome::kCorrupted), "corrupted");
  EXPECT_STREQ(to_string(FaultOutcome::kLost), "lost");
  EXPECT_STREQ(to_string(FaultOutcome::kFlapDropped), "flap-dropped");
}

// --- faulty link ----------------------------------------------------------

LinkConfig one_gig() {
  LinkConfig cfg;
  cfg.bandwidth = sim::Bandwidth{1e9};  // 1 ns/byte
  cfg.propagation = 0;
  return cfg;
}

TEST(FaultyLinkTest, CountersMatchOutcomes) {
  Link link(one_gig());
  FaultConfig cfg;
  cfg.loss_rate = 1.0;
  FaultyLink faulty(link, cfg);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(faulty.transmit(0, 100).outcome, FaultOutcome::kLost);
  }
  EXPECT_EQ(faulty.lost(), 5u);
  EXPECT_EQ(faulty.delivered(), 0u);
}

TEST(FaultyLinkTest, LostFrameStillConsumesWireTime) {
  // The sender serialized the frame before it vanished: the wire is busy
  // and the would-be arrival time is still meaningful for queueing.
  Link link(one_gig());
  FaultConfig cfg;
  cfg.loss_rate = 1.0;
  FaultyLink faulty(link, cfg);
  const auto r = faulty.transmit(0, 1000);
  EXPECT_EQ(r.outcome, FaultOutcome::kLost);
  EXPECT_EQ(r.delivered, sim::from_ns(1000));
  EXPECT_EQ(link.bytes_sent(), 1000u);
  // A second frame queues behind the lost one's serialization.
  EXPECT_EQ(faulty.transmit(0, 1000).delivered, sim::from_ns(2000));
}

TEST(FaultyLinkTest, CorruptedFrameArrivesOnTime) {
  Link link(one_gig());
  FaultConfig cfg;
  cfg.corrupt_rate = 1.0;
  FaultyLink faulty(link, cfg);
  const auto r = faulty.transmit(0, 500);
  EXPECT_EQ(r.outcome, FaultOutcome::kCorrupted);
  EXPECT_EQ(r.delivered, sim::from_ns(500)) << "corruption does not delay";
  EXPECT_EQ(faulty.corrupted(), 1u);
}

TEST(FaultyLinkTest, DegradedFlapStretchesServiceTime) {
  Link link(one_gig());
  FaultConfig cfg;
  cfg.flaps.push_back(FlapSpec{0, sim::from_us(100.0), 0.25});
  FaultyLink faulty(link, cfg);
  // Inside the flap: 1000 B at quarter bandwidth = 4000 ns effective.
  const auto in_flap = faulty.transmit(0, 1000);
  EXPECT_EQ(in_flap.outcome, FaultOutcome::kDelivered);
  EXPECT_EQ(in_flap.delivered, sim::from_ns(4000));
  // Outside the flap the link is back to full speed (fresh link: no queue).
  Link clean(one_gig());
  FaultyLink after(clean, cfg);
  EXPECT_EQ(after.transmit(sim::from_us(200.0), 1000).delivered,
            sim::from_us(200.0) + sim::from_ns(1000));
}

TEST(FaultyLinkTest, HardDownFlapDropsEveryFrameInWindow) {
  Link link(one_gig());
  FaultConfig cfg;
  cfg.flaps.push_back(FlapSpec{0, sim::from_us(10.0), 0.0});
  FaultyLink faulty(link, cfg);
  EXPECT_EQ(faulty.transmit(0, 100).outcome, FaultOutcome::kFlapDropped);
  EXPECT_EQ(faulty.transmit(sim::from_us(20.0), 100).outcome,
            FaultOutcome::kDelivered);
  EXPECT_EQ(faulty.flap_dropped(), 1u);
  EXPECT_EQ(faulty.delivered(), 1u);
}

// --- per-link stream splitting ---------------------------------------------

TEST(FaultSeedTest, SplitIsDeterministicAndEndpointSensitive) {
  EXPECT_EQ(link_fault_seed(1, 2, 3), link_fault_seed(1, 2, 3));
  EXPECT_NE(link_fault_seed(1, 2, 3), link_fault_seed(1, 3, 2))
      << "direction matters";
  EXPECT_NE(link_fault_seed(1, 2, 3), link_fault_seed(2, 2, 3))
      << "base seed matters";
  EXPECT_NE(link_fault_seed(1, 0, 1), link_fault_seed(1, 0, 2));
}

// --- network fault integration ---------------------------------------------

struct FaultNetFixture {
  Network net;
  NodeId a, sw, b;

  FaultNetFixture() {
    a = net.add_node("a");
    sw = net.add_node("switch");
    b = net.add_node("b");
    net.connect(a, sw, one_gig());
    net.connect(sw, b, one_gig());
    net.add_route(a, b, {{a, sw}, {sw, b}});
  }
};

TEST(NetworkFaultTest, EnableFaultsWrapsEveryLink) {
  FaultNetFixture f;
  EXPECT_FALSE(f.net.faults_enabled());
  EXPECT_EQ(f.net.faulty_link(f.a, f.sw), nullptr);
  FaultConfig cfg;
  cfg.loss_rate = 0.5;
  f.net.enable_faults(cfg);
  EXPECT_TRUE(f.net.faults_enabled());
  ASSERT_NE(f.net.faulty_link(f.a, f.sw), nullptr);
  ASSERT_NE(f.net.faulty_link(f.sw, f.b), nullptr);
  // Per-link streams are split off the base seed, not shared.
  EXPECT_NE(f.net.faulty_link(f.a, f.sw)->plan().config().seed,
            f.net.faulty_link(f.sw, f.b)->plan().config().seed);
}

TEST(NetworkFaultTest, PristineDeliverExMatchesDeliver) {
  FaultNetFixture f, g;
  const auto d = f.net.deliver_ex(0, f.a, f.b, 100);
  EXPECT_TRUE(d.delivered());
  EXPECT_EQ(d.arrival, g.net.deliver(0, g.a, g.b, 100));
}

TEST(NetworkFaultTest, LossAtFirstHopEndsTraversal) {
  FaultNetFixture f;
  FaultConfig cfg;
  cfg.loss_rate = 1.0;
  f.net.enable_faults(cfg);
  const auto d = f.net.deliver_ex(0, f.a, f.b, 100);
  EXPECT_EQ(d.outcome, FaultOutcome::kLost);
  // Dropped on hop one: the arrival is the loss point, short of the
  // two-hop path time.
  FaultNetFixture clean;
  EXPECT_LT(d.arrival, clean.net.deliver(0, clean.a, clean.b, 100));
  EXPECT_EQ(f.net.link(f.sw, f.b).packets_sent(), 0u)
      << "the second hop never saw the frame";
}

TEST(NetworkFaultTest, CorruptionTravelsToDestination) {
  // The CRC is only checked at the receiving NIC, so a corrupted frame
  // still crosses every hop and spends the full path time.
  FaultNetFixture f;
  FaultConfig cfg;
  cfg.corrupt_rate = 1.0;
  f.net.enable_faults(cfg);
  const auto d = f.net.deliver_ex(0, f.a, f.b, 100);
  EXPECT_EQ(d.outcome, FaultOutcome::kCorrupted);
  FaultNetFixture clean;
  EXPECT_EQ(d.arrival, clean.net.deliver(0, clean.a, clean.b, 100));
  EXPECT_EQ(f.net.link(f.sw, f.b).packets_sent(), 1u);
}

TEST(NetworkFaultTest, IdenticalSpecsReproduceTheFaultSequence) {
  FaultConfig cfg;
  cfg.loss_rate = 0.3;
  cfg.corrupt_rate = 0.1;
  cfg.seed = 99;
  FaultNetFixture f, g;
  f.net.enable_faults(cfg);
  g.net.enable_faults(cfg);
  for (int i = 0; i < 300; ++i) {
    const auto df = f.net.deliver_ex(0, f.a, f.b, 128);
    const auto dg = g.net.deliver_ex(0, g.a, g.b, 128);
    EXPECT_EQ(df.outcome, dg.outcome) << "frame " << i;
    EXPECT_EQ(df.arrival, dg.arrival) << "frame " << i;
  }
}

// --- flap schedule search ------------------------------------------------

// Linear reference for active_window: first (only, post-validation) window
// covering t.
const FlapSpec* linear_active(const std::vector<FlapSpec>& sorted,
                              sim::Time t) {
  for (const FlapSpec& w : sorted) {
    if (w.start <= t && t < w.end()) return &w;
  }
  return nullptr;
}

TEST(FlapScheduleTest, BinarySearchMatchesLinearReference) {
  // A long pseudo-random schedule (mix64-driven, so the test is a pure
  // function of the constants): windows with random gaps and durations,
  // alternating hard-down and degraded.
  std::vector<FlapSpec> schedule;
  sim::Time cursor = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    const sim::Time gap = 1 + mix64(i * 2 + 1) % 1000;
    const sim::Time dur = 1 + mix64(i * 2 + 2) % 500;
    cursor += gap;
    schedule.push_back(FlapSpec{cursor, dur, (i % 2) ? 0.5 : 0.0});
    cursor += dur;
  }
  validate_flap_schedule(schedule, "test schedule");

  // Probe every boundary and its neighbours plus interior points: the
  // binary search must agree with the linear scan everywhere.
  for (const FlapSpec& w : schedule) {
    for (const sim::Time t :
         {w.start - 1, w.start, w.start + w.duration / 2, w.end() - 1,
          w.end()}) {
      EXPECT_EQ(active_window(schedule, t), linear_active(schedule, t))
          << "t=" << t;
    }
  }
  EXPECT_EQ(active_window(schedule, 0), linear_active(schedule, 0));
  EXPECT_EQ(active_window(schedule, cursor + 12345), nullptr);
  EXPECT_EQ(active_window({}, 42), nullptr);
}

TEST(FlapScheduleTest, OverlapRejectionNamesTheWindows) {
  std::vector<FlapSpec> overlapping = {FlapSpec{0, 100, 0.0},
                                       FlapSpec{50, 100, 0.5}};
  try {
    validate_flap_schedule(overlapping, "spine1 down windows");
    FAIL() << "overlap must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("spine1 down windows"), std::string::npos) << msg;
    EXPECT_NE(msg.find("windows 0 and 1"), std::string::npos) << msg;
  }

  // Validation sorts first, so declaration order does not hide an overlap.
  std::vector<FlapSpec> reversed = {FlapSpec{50, 100, 0.5},
                                    FlapSpec{0, 100, 0.0}};
  EXPECT_THROW(validate_flap_schedule(reversed, "x"), std::invalid_argument);

  // Back-to-back windows (end == next start) are legal: the boundary
  // instant belongs to the later window only.
  std::vector<FlapSpec> adjacent = {FlapSpec{0, 100, 0.0},
                                    FlapSpec{100, 100, 0.5}};
  validate_flap_schedule(adjacent, "adjacent");
  EXPECT_EQ(active_window(adjacent, 100), &adjacent[1]);
}

}  // namespace
}  // namespace tfsim::net
