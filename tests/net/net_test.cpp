#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "capi/frame.hpp"
#include "net/latency_dist.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"

namespace tfsim::net {
namespace {

// --- CRC32 -------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
  // CRC of empty input is 0.
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, SensitiveToEveryByte) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const auto base = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto copy = data;
    copy[i] ^= 1;
    EXPECT_NE(crc32(copy), base) << "byte " << i;
  }
}

// --- packet encapsulation -----------------------------------------------

TEST(PacketTest, RoundTripReadRequest) {
  capi::Command cmd;
  cmd.opcode = capi::Opcode::kReadRequest;
  cmd.tag = 42;
  cmd.addr = 0xDEAD'BEEF;
  const auto pkt = encapsulate(1, 2, 77, cmd);
  EXPECT_EQ(pkt.header.src, 1u);
  EXPECT_EQ(pkt.header.dst, 2u);
  EXPECT_EQ(pkt.header.seq, 77u);
  EXPECT_EQ(pkt.payload.size(), capi::kFrameBytes);  // no data payload
  const auto out = decapsulate(pkt);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, cmd);
}

TEST(PacketTest, DataCarryingDirectionsIncludeLine) {
  capi::Command wr;
  wr.opcode = capi::Opcode::kWriteRequest;
  wr.size = 128;
  const auto pkt = encapsulate(0, 1, 0, wr);
  EXPECT_EQ(pkt.payload.size(), capi::kFrameBytes + 128);
  EXPECT_EQ(pkt.wire_bytes(), kPacketHeaderBytes + capi::kFrameBytes + 128);
  EXPECT_TRUE(decapsulate(pkt).has_value());
}

TEST(PacketTest, CorruptionDetected) {
  capi::Command cmd;
  cmd.opcode = capi::Opcode::kReadResponse;
  auto pkt = encapsulate(0, 1, 5, cmd);
  pkt.payload[3] ^= 0x10;
  EXPECT_FALSE(decapsulate(pkt).has_value());
}

TEST(PacketTest, LengthMismatchDetected) {
  capi::Command cmd;
  auto pkt = encapsulate(0, 1, 5, cmd);
  pkt.payload.push_back(0);
  EXPECT_FALSE(decapsulate(pkt).has_value());
}

// --- link ----------------------------------------------------------------

TEST(LinkTest, SerializationPlusPropagation) {
  LinkConfig cfg;
  cfg.bandwidth = sim::Bandwidth{1e9};  // 1 GB/s: 1 ns/byte
  cfg.propagation = sim::from_ns(500);
  Link link(cfg);
  EXPECT_EQ(link.transmit(0, 1000), sim::from_ns(1500));
  // Next packet queues behind the first's serialization (not propagation).
  EXPECT_EQ(link.transmit(0, 1000), sim::from_ns(2500));
  EXPECT_EQ(link.bytes_sent(), 2000u);
  EXPECT_EQ(link.packets_sent(), 2u);
}

TEST(LinkTest, HundredGigDefaults) {
  Link link(LinkConfig{});
  // 128 B at 12.5 GB/s = 10.24 ns serialization + 300 ns propagation.
  const auto t = link.transmit(0, 128);
  EXPECT_NEAR(sim::to_ns(t), 310.24, 0.1);
}

// --- network ---------------------------------------------------------------

TEST(NetworkTest, DirectRoute) {
  Network net;
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.connect(a, b, LinkConfig{});
  EXPECT_TRUE(net.has_route(a, b));
  EXPECT_FALSE(net.has_route(b, a)) << "links are unidirectional";
  const auto t = net.deliver(0, a, b, 128);
  EXPECT_GT(t, 0u);
}

TEST(NetworkTest, MultiHopAccumulatesDelay) {
  Network net;
  const auto a = net.add_node("a");
  const auto sw = net.add_node("switch");
  const auto b = net.add_node("b");
  LinkConfig cfg;
  cfg.bandwidth = sim::Bandwidth{1e9};
  cfg.propagation = sim::from_ns(100);
  net.connect(a, sw, cfg);
  net.connect(sw, b, cfg);
  net.add_route(a, b, {{a, sw}, {sw, b}});
  // 100 bytes/hop: (100 ns ser + 100 ns prop) x 2.
  EXPECT_EQ(net.deliver(0, a, b, 100), sim::from_ns(400));
}

TEST(NetworkTest, SharedHopCreatesContention) {
  Network net;
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto sw = net.add_node("switch");
  const auto dst = net.add_node("dst");
  LinkConfig cfg;
  cfg.bandwidth = sim::Bandwidth{1e9};
  cfg.propagation = 0;
  net.connect(a, sw, cfg);
  net.connect(b, sw, cfg);
  net.connect(sw, dst, cfg);
  net.add_route(a, dst, {{a, sw}, {sw, dst}});
  net.add_route(b, dst, {{b, sw}, {sw, dst}});
  const auto t1 = net.deliver(0, a, dst, 1000);
  const auto t2 = net.deliver(0, b, dst, 1000);
  // Both used the shared sw->dst hop; the second must queue behind the first.
  EXPECT_EQ(t1, sim::from_ns(2000));
  EXPECT_EQ(t2, sim::from_ns(3000));
}

TEST(NetworkTest, RouteValidation) {
  Network net;
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto c = net.add_node("c");
  net.connect(a, b, LinkConfig{});
  EXPECT_THROW(net.deliver(0, a, c, 10), std::invalid_argument);
  EXPECT_THROW(net.add_route(a, c, {{a, c}}), std::invalid_argument)
      << "hop without a link";
  EXPECT_THROW(net.add_route(a, b, {}), std::invalid_argument);
  EXPECT_THROW(net.connect(a, b, LinkConfig{}), std::invalid_argument)
      << "duplicate link";
  net.connect(b, c, LinkConfig{});
  EXPECT_THROW(net.add_route(a, c, {{b, c}}), std::invalid_argument)
      << "path must start at src";
  EXPECT_THROW(net.add_route(a, c, {{a, b}, {a, b}}), std::invalid_argument)
      << "disconnected path";
}

// --- latency distributions --------------------------------------------------

TEST(LatencyDistTest, FixedIsConstant) {
  LatencyDistribution d(DistKind::kFixed, sim::from_us(5));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(), sim::from_us(5));
}

TEST(LatencyDistTest, ZeroMeanIsZero) {
  LatencyDistribution d(DistKind::kExponential, 0);
  EXPECT_EQ(d.sample(), 0u);
}

class DistMeanTest : public ::testing::TestWithParam<DistKind> {};

TEST_P(DistMeanTest, SampleMeanMatchesConfiguredMean) {
  const sim::Time mean = sim::from_us(10);
  LatencyDistribution d(GetParam(), mean, 7);
  double sum = 0;
  constexpr int n = 300000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample());
  EXPECT_NEAR(sum / n / static_cast<double>(mean), 1.0, 0.05)
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DistMeanTest,
                         ::testing::Values(DistKind::kFixed, DistKind::kUniform,
                                           DistKind::kExponential,
                                           DistKind::kLognormal,
                                           DistKind::kPareto));

TEST(LatencyDistTest, ParseRoundTrip) {
  for (auto kind : {DistKind::kFixed, DistKind::kUniform, DistKind::kExponential,
                    DistKind::kLognormal, DistKind::kPareto}) {
    EXPECT_EQ(parse_dist_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_dist_kind("gaussian"), std::invalid_argument);
}

TEST(LatencyDistTest, HeavyTailHasHigherP99) {
  LatencyDistribution fixed(DistKind::kFixed, sim::from_us(10), 3);
  LatencyDistribution pareto(DistKind::kPareto, sim::from_us(10), 3);
  sim::Time fixed_max = 0, pareto_max = 0;
  for (int i = 0; i < 10000; ++i) {
    fixed_max = std::max(fixed_max, fixed.sample());
    pareto_max = std::max(pareto_max, pareto.sample());
  }
  EXPECT_GT(pareto_max, 2 * fixed_max);
}

}  // namespace
}  // namespace tfsim::net
