// Topology-layer coverage: destination-based routing tables, deterministic
// ECMP striping, switch egress admission, the leaf/spine builder, and
// hop-by-hop PDES forwarding (post_routed) over shared switches.
#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/pdes.hpp"

namespace tfsim::net {
namespace {

LinkConfig gig_link(double bytes_per_sec, double prop_ns) {
  LinkConfig cfg;
  cfg.bandwidth = sim::Bandwidth{bytes_per_sec};
  cfg.propagation = sim::from_ns(prop_ns);
  return cfg;
}

// --- routing table ---------------------------------------------------------

TEST(RoutingTableTest, MultiHopChainForwardsWithoutExplicitRoutes) {
  // a -> s1 -> s2 -> s3 -> b: four hops, no add_route anywhere.
  Network net;
  const auto a = net.add_node("a");
  const auto s1 = net.add_node("s1");
  const auto s2 = net.add_node("s2");
  const auto s3 = net.add_node("s3");
  const auto b = net.add_node("b");
  const auto cfg = gig_link(1e9, 100);  // 1 ns/byte + 100 ns
  net.connect(a, s1, cfg);
  net.connect(s1, s2, cfg);
  net.connect(s2, s3, cfg);
  net.connect(s3, b, cfg);
  net.build_routes();
  EXPECT_TRUE(net.has_route(a, b));
  EXPECT_FALSE(net.has_route(b, a)) << "links are unidirectional";
  // 100 bytes/hop: (100 ns ser + 100 ns prop) x 4.
  EXPECT_EQ(net.deliver(0, a, b, 100), sim::from_ns(800));
}

TEST(RoutingTableTest, UnknownDestinationThrows) {
  Network net;
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto island = net.add_node("island");
  net.connect(a, b, LinkConfig{});
  net.build_routes();
  EXPECT_FALSE(net.has_route(a, island));
  EXPECT_THROW(net.deliver(0, a, island, 64), std::invalid_argument);
  sim::PdesConfig pc;
  pc.threads = 1;
  sim::ParallelEngine pdes(net.num_nodes(), pc);
  EXPECT_THROW(net.post_routed(pdes, 0, a, island, 64, sim::Priority::kBulk,
                               0, [](const Delivery&) {}),
               std::invalid_argument);
  EXPECT_THROW(net.routing().pick(a, island, a, 0), std::invalid_argument);
}

TEST(RoutingTableTest, LazyRebuildAfterTopologyChange) {
  Network net;
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto c = net.add_node("c");
  net.connect(a, b, LinkConfig{});
  EXPECT_FALSE(net.has_route(a, c));
  net.connect(b, c, LinkConfig{});  // dirties the cached table
  EXPECT_TRUE(net.has_route(a, c));
}

// Builds the same 2-leaf/3-spine fabric inserting links in a different
// order per permutation; the routing decision must not notice.
TEST(RoutingTableTest, EcmpPickInvariantUnderLinkInsertionOrder) {
  const NodeId h0 = 0, h1 = 1, l0 = 2, l1 = 3, sp0 = 4, sp1 = 5, sp2 = 6;
  using Edge = std::pair<NodeId, NodeId>;
  const std::vector<Edge> edges = {
      {h0, l0}, {l0, h0}, {h1, l1}, {l1, h1},
      {l0, sp0}, {sp0, l0}, {l0, sp1}, {sp1, l0}, {l0, sp2}, {sp2, l0},
      {l1, sp0}, {sp0, l1}, {l1, sp1}, {sp1, l1}, {l1, sp2}, {sp2, l1}};

  const auto build = [&](bool reversed) {
    Network net;
    for (const char* n : {"h0", "h1", "l0", "l1", "sp0", "sp1", "sp2"}) {
      net.add_node(n);
    }
    auto order = edges;
    if (reversed) std::reverse(order.begin(), order.end());
    for (const auto& [from, to] : order) net.connect(from, to, LinkConfig{});
    net.build_routes();
    std::ostringstream picks;
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
      picks << net.routing().pick(l0, h1, h0, salt) << ","
            << net.routing().pick(l1, h0, h1, salt) << ";";
    }
    return picks.str();
  };
  EXPECT_EQ(build(false), build(true));
}

TEST(RoutingTableTest, EcmpStripesAcrossParallelSpines) {
  Network net;
  std::vector<NodeId> hosts;
  for (int i = 0; i < 6; ++i) {
    hosts.push_back(net.add_node("h" + std::to_string(i)));
  }
  LeafSpineConfig cfg;
  cfg.leaves = 2;
  cfg.spines = 3;
  const auto fabric = LeafSpineFabric::build(net, cfg, hosts);

  // Across many flows leaving leaf0 for leaf1-resident hosts, every spine
  // candidate should be exercised, and each individual pick must be stable.
  std::set<NodeId> used;
  for (const NodeId src : {hosts[0], hosts[2], hosts[4]}) {
    for (const NodeId dst : {hosts[1], hosts[3], hosts[5]}) {
      for (std::uint64_t salt = 0; salt < 4; ++salt) {
        const NodeId pick =
            net.routing().pick(fabric.leaves[0], dst, src, salt);
        EXPECT_EQ(pick, net.routing().pick(fabric.leaves[0], dst, src, salt));
        used.insert(pick);
      }
    }
  }
  EXPECT_EQ(used.size(), 3u) << "all parallel spines should carry traffic";

  // The salt re-rolls the stripe: some flow must move to a different spine.
  bool resalted = false;
  for (const NodeId dst : {hosts[1], hosts[3], hosts[5]}) {
    const NodeId base = net.routing().pick(fabric.leaves[0], dst, hosts[0], 0);
    for (std::uint64_t salt = 1; salt < 16 && !resalted; ++salt) {
      resalted = net.routing().pick(fabric.leaves[0], dst, hosts[0], salt) !=
                 base;
    }
  }
  EXPECT_TRUE(resalted);
}

// --- add_route validation (ISSUE 8 satellite) ------------------------------

TEST(RoutingTableTest, AddRouteNamesTheOffendingHop) {
  Network net;
  const auto a = net.add_node("a");
  const auto sw = net.add_node("sw");
  const auto b = net.add_node("b");
  net.connect(a, sw, LinkConfig{});
  net.connect(sw, b, LinkConfig{});
  try {
    net.add_route(a, b, {{a, sw}, {a, b}});
    FAIL() << "missing link must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hop 1 (a->b) has no link"),
              std::string::npos)
        << e.what();
  }
  net.connect(b, sw, LinkConfig{});
  try {
    // Endpoints line up (a ... b) but hop 0 does not feed hop 1.
    net.add_route(a, b, {{a, sw}, {b, sw}, {sw, b}});
    FAIL() << "discontiguous path must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hop 0 (a->sw)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("not contiguous with hop 1 (b->sw)"),
              std::string::npos)
        << msg;
  }
  net.add_route(a, b, {{a, sw}, {sw, b}});  // the valid spelling still works
  EXPECT_TRUE(net.has_route(a, b));
}

// --- switch egress admission ----------------------------------------------

TEST(SwitchTest, ExactDepthAdmitsOneMoreDrops) {
  Link out(gig_link(1e9, 0));  // 1 ns/byte
  SwitchConfig cfg;
  cfg.buffer_bytes = 2000;
  cfg.policy = QueuePolicy::kDrop;
  Switch sw(cfg);
  // Admission compares occupancy + frame against the depth: the frame that
  // lands exactly at buffer_bytes is admitted, the next one is dropped.
  EXPECT_TRUE(sw.admit(7, 0, 1000, out));
  out.transmit(0, 1000);
  EXPECT_TRUE(sw.admit(7, 0, 1000, out)) << "exactly at depth still fits";
  out.transmit(0, 1000);
  EXPECT_FALSE(sw.admit(7, 0, 1000, out)) << "beyond depth tail-drops";
  const PortStats* p = sw.port(7);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->frames, 2u);
  EXPECT_EQ(p->bytes, 2000u);
  EXPECT_EQ(p->drops, 1u);
  EXPECT_EQ(p->peak_queued_bytes, 2000u);
  EXPECT_EQ(sw.total_drops(), 1u);
}

TEST(SwitchTest, BackpressureNeverDrops) {
  Link out(gig_link(1e9, 0));
  SwitchConfig cfg;
  cfg.buffer_bytes = 1000;
  cfg.policy = QueuePolicy::kBackpressure;
  Switch sw(cfg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(sw.admit(3, 0, 1000, out));
    out.transmit(0, 1000);
  }
  EXPECT_EQ(sw.total_drops(), 0u);
  EXPECT_EQ(sw.port(3)->frames, 8u);
  EXPECT_EQ(sw.port(3)->peak_queued_bytes, 8000u)
      << "the lossless queue grows past the nominal depth";
}

TEST(SwitchTest, PolicyNamesRoundTrip) {
  EXPECT_EQ(parse_queue_policy("drop"), QueuePolicy::kDrop);
  EXPECT_EQ(parse_queue_policy("backpressure"), QueuePolicy::kBackpressure);
  EXPECT_STREQ(to_string(QueuePolicy::kDrop), "drop");
  EXPECT_STREQ(to_string(QueuePolicy::kBackpressure), "backpressure");
  EXPECT_THROW(parse_queue_policy("red"), std::invalid_argument);
}

TEST(SwitchTest, OverflowEndsTraversalWithSwitchDropped) {
  // Two senders funnel into one slow egress behind a shallow drop buffer.
  Network net;
  const auto a1 = net.add_node("a1");
  const auto a2 = net.add_node("a2");
  const auto b = net.add_node("b");
  SwitchConfig sc;
  sc.buffer_bytes = 2048;
  sc.policy = QueuePolicy::kDrop;
  const auto sw = net.add_switch("sw", sc);
  const auto edge = gig_link(1e10, 0);  // fast in
  const auto out = gig_link(1e8, 0);    // 100x slower out
  net.connect(a1, sw, edge);
  net.connect(a2, sw, edge);
  net.connect(sw, b, out);
  net.build_routes();
  std::uint64_t delivered = 0, dropped = 0;
  for (int i = 0; i < 6; ++i) {
    const auto d = net.deliver_ex(0, i % 2 == 0 ? a1 : a2, b, 1000);
    if (d.outcome == FaultOutcome::kSwitchDropped) {
      ++dropped;
    } else {
      EXPECT_TRUE(d.delivered());
      ++delivered;
    }
  }
  EXPECT_GE(delivered, 2u);
  EXPECT_GE(dropped, 1u) << "the shallow buffer must overflow";
  EXPECT_EQ(net.switch_at(sw).total_drops(), dropped);
  EXPECT_EQ(net.switch_at(sw).port(b)->frames, delivered);
}

// --- leaf/spine builder ----------------------------------------------------

TEST(LeafSpineTest, BuildsFullBipartiteTier) {
  Network net;
  std::vector<NodeId> hosts;
  for (int i = 0; i < 8; ++i) {
    hosts.push_back(net.add_node("h" + std::to_string(i)));
  }
  LeafSpineConfig cfg;
  cfg.leaves = 2;
  cfg.spines = 2;
  cfg.prefix = "rack/";
  const auto fabric = LeafSpineFabric::build(net, cfg, hosts);
  ASSERT_EQ(fabric.leaves.size(), 2u);
  ASSERT_EQ(fabric.spines.size(), 2u);
  EXPECT_EQ(net.node_name(fabric.leaves[0]), "rack/leaf0");
  EXPECT_EQ(net.node_name(fabric.spines[1]), "rack/spine1");
  for (const NodeId sw : fabric.leaves) EXPECT_TRUE(net.is_switch(sw));
  for (const NodeId sw : fabric.spines) EXPECT_TRUE(net.is_switch(sw));
  // Host i hangs off leaf (i mod 2), both directions.
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_TRUE(net.has_link(hosts[i], fabric.leaf_of(i)));
    EXPECT_TRUE(net.has_link(fabric.leaf_of(i), hosts[i]));
  }
  // Full leaf x spine bipartite uplinks; no leaf-leaf or spine-spine links.
  for (const NodeId leaf : fabric.leaves) {
    for (const NodeId spine : fabric.spines) {
      EXPECT_TRUE(net.has_link(leaf, spine));
      EXPECT_TRUE(net.has_link(spine, leaf));
    }
  }
  EXPECT_FALSE(net.has_link(fabric.leaves[0], fabric.leaves[1]));
  EXPECT_FALSE(net.has_link(fabric.spines[0], fabric.spines[1]));
  // Every host pair routes without a single add_route call.
  for (const NodeId s : hosts) {
    for (const NodeId d : hosts) {
      if (s != d) EXPECT_TRUE(net.has_route(s, d));
    }
  }
}

TEST(LeafSpineTest, CrossLeafLatencyIsFourHops) {
  Network net;
  std::vector<NodeId> hosts;
  for (int i = 0; i < 4; ++i) {
    hosts.push_back(net.add_node("h" + std::to_string(i)));
  }
  LeafSpineConfig cfg;
  cfg.leaves = 2;
  cfg.spines = 1;  // single spine: the path is fully determined
  cfg.edge = gig_link(1e9, 100);
  cfg.uplink = gig_link(1e9, 100);
  LeafSpineFabric::build(net, cfg, hosts);
  // h0(leaf0) -> h1(leaf1): host-leaf, leaf-spine, spine-leaf, leaf-host =
  // 4 x (100 ns ser + 100 ns prop) for a 100 B frame.
  EXPECT_EQ(net.deliver(0, hosts[0], hosts[1], 100), sim::from_ns(800));
  // Same-leaf pair stays under its ToR: 2 hops only.
  Network net2;
  std::vector<NodeId> hosts2;
  for (int i = 0; i < 4; ++i) {
    hosts2.push_back(net2.add_node("h" + std::to_string(i)));
  }
  LeafSpineFabric::build(net2, cfg, hosts2);
  EXPECT_EQ(net2.deliver(0, hosts2[0], hosts2[2], 100), sim::from_ns(400));
}

TEST(LeafSpineTest, RejectsDegenerateShapes) {
  Network net;
  const std::vector<NodeId> hosts = {net.add_node("h0")};
  LeafSpineConfig cfg;
  cfg.leaves = 0;
  EXPECT_THROW(LeafSpineFabric::build(net, cfg, hosts),
               std::invalid_argument);
  cfg.leaves = 2;
  cfg.spines = 0;
  EXPECT_THROW(LeafSpineFabric::build(net, cfg, hosts),
               std::invalid_argument);
  cfg.spines = 1;
  EXPECT_THROW(LeafSpineFabric::build(net, cfg, hosts), std::invalid_argument)
      << "fewer hosts than leaves";
}

TEST(LeafSpineTest, FaultDecorationCoversUplinks) {
  Network net;
  std::vector<NodeId> hosts;
  for (int i = 0; i < 4; ++i) {
    hosts.push_back(net.add_node("h" + std::to_string(i)));
  }
  LeafSpineConfig cfg;
  cfg.leaves = 2;
  cfg.spines = 2;
  const auto fabric = LeafSpineFabric::build(net, cfg, hosts);
  FaultConfig fc;
  fc.loss_rate = 0.5;
  fc.seed = 9;
  net.enable_faults(fc);
  for (const NodeId leaf : fabric.leaves) {
    for (const NodeId spine : fabric.spines) {
      EXPECT_NE(net.faulty_link(leaf, spine), nullptr);
      EXPECT_NE(net.faulty_link(spine, leaf), nullptr);
    }
  }
  EXPECT_NE(net.faulty_link(hosts[0], fabric.leaf_of(0)), nullptr);
}

// --- post_routed (hop-by-hop PDES forwarding) ------------------------------

struct FabricRun {
  std::string trace;           ///< per-domain arrival fold, deterministic order
  std::uint64_t arrivals = 0;  ///< total frames that survived
  std::uint64_t drops = 0;     ///< switch tail-drops
};

// W request chains per host pair over a 2x2 leaf/spine with shallow kDrop
// buffers; every arrival folds into its *destination* domain's digest, so
// any cross-thread reordering or misrouting changes the trace string.
FabricRun run_fabric_traffic(unsigned threads) {
  Network net;
  std::vector<NodeId> hosts;
  for (int i = 0; i < 8; ++i) {
    hosts.push_back(net.add_node("h" + std::to_string(i)));
  }
  LeafSpineConfig cfg;
  cfg.leaves = 2;
  cfg.spines = 2;
  cfg.edge = gig_link(1.25e9, 300);
  cfg.uplink = gig_link(1.25e9, 300);
  cfg.sw.policy = QueuePolicy::kDrop;
  cfg.sw.buffer_bytes = 4096;
  const auto fabric = LeafSpineFabric::build(net, cfg, hosts);

  sim::PdesConfig pc;
  pc.threads = threads;
  pc.lookahead = net.min_propagation();
  sim::ParallelEngine pdes(net.num_nodes(), pc);

  const std::size_t n = hosts.size();
  std::vector<std::uint64_t> fold(net.num_nodes(), 0);
  std::vector<std::uint64_t> count(net.num_nodes(), 0);

  // Each host fires a bounce chain at its cross-leaf partner: on arrival in
  // the destination's domain, fold the time and send the next frame back.
  std::function<void(NodeId, NodeId, int)> bounce = [&](NodeId src, NodeId dst,
                                                        int remaining) {
    net.post_routed(pdes, pdes.domain(static_cast<sim::DomainId>(src)).now(),
                    src, dst, 1024, sim::Priority::kBulk,
                    static_cast<std::uint64_t>(remaining),
                    [&, src, dst, remaining](const Delivery& d) {
                      fold[dst] = fold[dst] * 1099511628211ULL ^ d.arrival;
                      ++count[dst];
                      if (remaining > 0) bounce(dst, src, remaining - 1);
                    });
  };
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId src = hosts[i];
    const NodeId dst = hosts[(i + 1) % n];  // neighbour sits on the other leaf
    pdes.post(static_cast<sim::DomainId>(src),
              static_cast<sim::DomainId>(src), sim::from_ns(10) * (i + 1),
              [&, src, dst] { bounce(src, dst, 12); });
  }
  pdes.run();

  FabricRun out;
  std::ostringstream os;
  for (std::size_t d = 0; d < fold.size(); ++d) {
    os << d << ":" << fold[d] << ":" << count[d] << ";";
    out.arrivals += count[d];
  }
  for (const auto& [id, sw] : net.switches()) {
    os << "S" << id << "=" << sw.total_drops() << ";";
    out.drops += sw.total_drops();
  }
  out.trace = os.str();
  return out;
}

TEST(PostRoutedTest, MatchesAnalyticDeliveryOnQuietFabric) {
  // One frame on an idle fabric: post_routed must arrive exactly when the
  // serial analytic traversal says, switch hops included.
  const auto build = [](Network& net, std::vector<NodeId>& hosts) {
    for (int i = 0; i < 4; ++i) {
      hosts.push_back(net.add_node("h" + std::to_string(i)));
    }
    LeafSpineConfig cfg;
    cfg.leaves = 2;
    cfg.spines = 1;
    LeafSpineFabric::build(net, cfg, hosts);
  };
  Network ref;
  std::vector<NodeId> ref_hosts;
  build(ref, ref_hosts);
  const sim::Time expected =
      ref.deliver(0, ref_hosts[0], ref_hosts[1], 1024);

  Network net;
  std::vector<NodeId> hosts;
  build(net, hosts);
  sim::PdesConfig pc;
  pc.threads = 1;
  pc.lookahead = net.min_propagation();
  sim::ParallelEngine pdes(net.num_nodes(), pc);
  sim::Time arrival = 0;
  net.post_routed(pdes, 0, hosts[0], hosts[1], 1024, sim::Priority::kBulk, 0,
                  [&arrival](const Delivery& d) { arrival = d.arrival; });
  pdes.run();
  EXPECT_EQ(arrival, expected);
}

TEST(PostRoutedTest, ByteIdenticalAcrossThreadCounts) {
  const FabricRun serial = run_fabric_traffic(1);
  EXPECT_GT(serial.arrivals, 0u);
  for (const unsigned threads : {2u, 8u}) {
    const FabricRun parallel = run_fabric_traffic(threads);
    EXPECT_EQ(serial.trace, parallel.trace) << threads << " threads";
  }
}

}  // namespace
}  // namespace tfsim::net
