// kBackpressure switches on a leaf/spine fabric: the lossless policy must
// deliver every frame (zero drops, every closed-loop chain completes its
// budget) with the overload showing up as bounded egress-queue occupancy
// instead of loss -- the same offered traffic under kDrop with shallow
// buffers tail-drops, which is what makes the lossless claim non-vacuous.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/pdes.hpp"
#include "sim/rng.hpp"
#include "sim/units.hpp"

namespace tfsim::net {
namespace {

struct FabricRun {
  std::uint64_t drops = 0;
  std::uint64_t arrivals = 0;         ///< bounce-chain hops completed
  std::uint64_t peak_queued = 0;      ///< hottest egress port
  std::uint64_t injected_bytes = 0;   ///< admitted wire bytes, all ports
};

constexpr std::size_t kHosts = 8;
constexpr int kChains = 4;
constexpr int kBudget = 40;
constexpr std::uint64_t kBufferBytes = 4096;

// Closed-loop bounce chains host i -> i+1 across a 2x2 leaf/spine rack,
// identical to the determinism_check fabric scenario except for the queue
// policy under test.  Hosts alternate leaves, so every frame contends for
// the spine uplinks.
FabricRun run_fabric(QueuePolicy policy) {
  namespace sim = tfsim::sim;

  Network fabric;
  std::vector<NodeId> hosts;
  for (std::size_t i = 0; i < kHosts; ++i) {
    hosts.push_back(fabric.add_node("h" + std::to_string(i)));
  }
  LeafSpineConfig topo;
  topo.leaves = 2;
  topo.spines = 2;
  topo.edge.bandwidth = sim::Bandwidth::from_gbit(50.0);
  topo.edge.propagation = sim::from_ns(120.0);
  topo.uplink.bandwidth = sim::Bandwidth::from_gbit(50.0);
  topo.uplink.propagation = sim::from_ns(200.0);
  topo.sw.policy = policy;
  topo.sw.buffer_bytes = kBufferBytes;  // shallow: kDrop drops at this depth
  const auto rack = LeafSpineFabric::build(fabric, topo, hosts);

  sim::PdesConfig cfg;
  cfg.threads = 1;
  cfg.lookahead = fabric.min_propagation();
  sim::ParallelEngine pdes(
      kHosts + rack.leaves.size() + rack.spines.size(), cfg);

  std::vector<sim::Rng> rng;
  std::vector<std::uint64_t> arrivals(kHosts, 0);
  rng.reserve(kHosts);
  for (std::size_t h = 0; h < kHosts; ++h) rng.emplace_back(h + 1);

  std::function<void(NodeId, int, std::uint64_t)> bounce =
      [&](NodeId h, int budget, std::uint64_t flow) {
        ++arrivals[h];
        if (budget <= 0) return;
        sim::Engine& self = pdes.domain(static_cast<sim::DomainId>(h));
        const auto dst = static_cast<NodeId>((h + 1) % kHosts);
        const std::uint64_t bytes = 256 + rng[h].uniform_u64(1200);
        fabric.post_routed(pdes, self.now(), h, dst, bytes,
                           sim::Priority::kBulk, flow,
                           [&bounce, dst, budget, flow](const Delivery&) {
                             bounce(dst, budget - 1, flow + 1);
                           });
      };
  for (std::size_t h = 0; h < kHosts; ++h) {
    for (int chain = 0; chain < kChains; ++chain) {
      const sim::Time start = 1 + rng[h].uniform_u64(cfg.lookahead);
      const auto flow = static_cast<std::uint64_t>(h * 131 + chain);
      pdes.post(static_cast<sim::DomainId>(h), static_cast<sim::DomainId>(h),
                start, [&bounce, h, flow] {
                  bounce(static_cast<NodeId>(h), kBudget, flow);
                });
    }
  }
  pdes.run();

  FabricRun r;
  for (const std::uint64_t a : arrivals) r.arrivals += a;
  for (const auto& [id, sw] : fabric.switches()) {
    r.drops += sw.total_drops();
    for (const auto& [egress, port] : sw.ports()) {
      r.peak_queued = std::max(r.peak_queued, port.peak_queued_bytes);
      r.injected_bytes += port.bytes;
    }
  }
  return r;
}

TEST(BackpressureFabricTest, LosslessFabricDeliversEveryFrame) {
  const FabricRun lossless = run_fabric(QueuePolicy::kBackpressure);
  EXPECT_EQ(lossless.drops, 0u);
  // Each of the 32 chains makes its initial hop plus kBudget deliveries;
  // with zero loss not a single chain may end early.
  EXPECT_EQ(lossless.arrivals,
            static_cast<std::uint64_t>(kHosts * kChains * (kBudget + 1)));
  // The overload is real: some egress queue exceeded the depth at which
  // the drop policy would have discarded, yet stayed bounded (far below
  // the total bytes pushed through the fabric).
  EXPECT_GT(lossless.peak_queued, kBufferBytes);
  EXPECT_LT(lossless.peak_queued, lossless.injected_bytes / 4);
}

TEST(BackpressureFabricTest, SameTrafficUnderDropPolicyLosesFrames) {
  const FabricRun drop = run_fabric(QueuePolicy::kDrop);
  EXPECT_GT(drop.drops, 0u) << "shallow kDrop buffers must tail-drop, or "
                               "the lossless comparison proves nothing";
  EXPECT_LT(drop.arrivals,
            static_cast<std::uint64_t>(kHosts * kChains * (kBudget + 1)))
      << "a dropped frame must end its chain early";
  // Admission compares occupancy + frame size against the depth, so the
  // post-admission peak can never exceed the configured buffer.
  EXPECT_LE(drop.peak_queued, kBufferBytes);
}

}  // namespace
}  // namespace tfsim::net
