// Golden-trace differential suite for the activity-driven scheduler
// (DESIGN.md section 10).
//
// Every scenario builds the same pipeline twice -- once under
// SettleMode::kNaive (the original exhaustive settle loop, the reference
// implementation) and once under SettleMode::kActivity -- drives it with the
// same stimulus, and asserts the per-cycle (VALID, READY, payload) trace of
// every wire is byte-identical, along with every observable statistic
// (arrivals, monitor gaps, gate counters, flow-conservation counts).
// Scenarios where the activity scheduler is expected to fast-forward also
// assert that it actually skipped cycles, so the equivalence is not
// vacuously proven on the slow path.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "axi/checker.hpp"
#include "axi/endpoints.hpp"
#include "axi/fifo.hpp"
#include "axi/monitor.hpp"
#include "axi/mux.hpp"
#include "axi/rate_gate.hpp"
#include "axi/router.hpp"
#include "axi/testbench.hpp"
#include "axi/trace.hpp"

namespace tfsim::axi {
namespace {

/// Handles a scenario builder hands back so the harness can compare every
/// observable the two modes expose.
struct Probes {
  std::vector<const Wire*> traced;
  Source* src = nullptr;
  Sink* sink = nullptr;
  Monitor* mon = nullptr;
  RateGate* gate = nullptr;
  FlowChecker* flow = nullptr;
};

using Builder = std::function<Probes(Testbench&)>;
/// Called between run() chunks (chunk index about to start); lets scenarios
/// reconfigure (set_period) or inject stimulus (push) mid-run.
using BetweenChunks = std::function<void(Probes&, std::size_t)>;

struct ModeRun {
  std::unique_ptr<Testbench> tb;
  Probes probes;
  CycleTraceRecorder* trace = nullptr;
};

ModeRun run_mode(SettleMode mode, const Builder& build,
                 const std::vector<std::uint64_t>& chunks,
                 const BetweenChunks& between) {
  ModeRun r;
  r.tb = std::make_unique<Testbench>(CheckMode::kStrict, mode);
  r.probes = build(*r.tb);
  r.trace = &r.tb->add<CycleTraceRecorder>("trace", r.probes.traced);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (between && i > 0) between(r.probes, i);
    r.tb->run(chunks[i]);
  }
  r.tb->finish_checks();
  return r;
}

void expect_equivalent(const Builder& build,
                       const std::vector<std::uint64_t>& chunks,
                       std::uint64_t min_skipped = 0,
                       const BetweenChunks& between = {}) {
  const ModeRun naive = run_mode(SettleMode::kNaive, build, chunks, between);
  const ModeRun act = run_mode(SettleMode::kActivity, build, chunks, between);

  EXPECT_EQ(CycleTraceRecorder::diff(*naive.trace, *act.trace), "");
  EXPECT_EQ(naive.tb->cycle(), act.tb->cycle());
  EXPECT_EQ(naive.tb->skipped_cycles(), 0u) << "naive mode must step";
  EXPECT_GE(act.tb->skipped_cycles(), min_skipped)
      << "activity mode did not engage its fast path";
  EXPECT_EQ(naive.tb->sink().total(), act.tb->sink().total());

  if (naive.probes.sink != nullptr) {
    const auto& a = naive.probes.sink->arrivals();
    const auto& b = act.probes.sink->arrivals();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].cycle, b[i].cycle) << "arrival " << i;
      EXPECT_EQ(a[i].beat, b[i].beat) << "arrival " << i;
    }
  }
  if (naive.probes.mon != nullptr) {
    EXPECT_EQ(naive.probes.mon->fires(), act.probes.mon->fires());
    EXPECT_EQ(naive.probes.mon->violations(), act.probes.mon->violations());
    const auto& ga = naive.probes.mon->gap_stats();
    const auto& gb = act.probes.mon->gap_stats();
    EXPECT_EQ(ga.count(), gb.count());
    if (ga.count() > 0) {
      EXPECT_DOUBLE_EQ(ga.mean(), gb.mean());
      EXPECT_DOUBLE_EQ(ga.min(), gb.min());
      EXPECT_DOUBLE_EQ(ga.max(), gb.max());
    }
  }
  if (naive.probes.gate != nullptr) {
    EXPECT_EQ(naive.probes.gate->transfers(), act.probes.gate->transfers());
    EXPECT_EQ(naive.probes.gate->stalled_cycles(),
              act.probes.gate->stalled_cycles());
  }
  if (naive.probes.flow != nullptr) {
    EXPECT_EQ(naive.probes.flow->entered(), act.probes.flow->entered());
    EXPECT_EQ(naive.probes.flow->exited(), act.probes.flow->exited());
  }
}

/// The paper's egress shape: saturating source -> router -> RateGate ->
/// round-robin mux -> sink, everything deterministic so the activity
/// scheduler can fast-forward the closed-window gaps.
Builder egress_builder(std::uint64_t period) {
  return [period](Testbench& tb) {
    Probes p;
    Wire& src = tb.wire("src");
    Wire& r0 = tb.wire("r0");
    Wire& g0 = tb.wire("g0");
    Wire& out = tb.wire("out");
    Source::Config scfg;
    scfg.saturate = true;
    tb.add<Source>("source", src, scfg);
    tb.add<Router>("router", src, std::vector<Wire*>{&r0});
    p.gate = &tb.add<RateGate>("gate", r0, g0, period);
    tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&g0}, out);
    p.sink = &tb.add<Sink>("sink", out);
    p.mon = &tb.add<Monitor>("mon", out, /*check_id_order=*/true);
    p.flow = &tb.watch_flow("egress", {&src}, {&out});
    p.traced = {&src, &r0, &g0, &out};
    return p;
  };
}

class RateGateEquivTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RateGateEquivTest, SaturatedEgressTraceIdentical) {
  const std::uint64_t period = GetParam();
  // PERIOD=1 fires every cycle (no gaps to skip); higher periods must
  // engage the fast-forward path for most of the run.
  const std::uint64_t cycles = 1000 * ((period > 100) ? 20 : 1);
  const std::uint64_t min_skipped =
      period == 1 ? 0 : (cycles / period) * (period - 3);
  expect_equivalent(egress_builder(period), {cycles}, min_skipped);
}

INSTANTIATE_TEST_SUITE_P(Periods, RateGateEquivTest,
                         ::testing::Values(1, 7, 1000));

TEST(SchedEquivTest, FifoBackpressureProbabilisticSink) {
  // A stalling consumer (30% READY) fills the FIFO and exercises sustained
  // backpressure; the probabilistic sink flips READY every cycle, so this
  // pins the sensitivity-list settle (not the fast-forward) against naive.
  expect_equivalent(
      [](Testbench& tb) {
        Probes p;
        Wire& in = tb.wire("in");
        Wire& out = tb.wire("out");
        Source::Config scfg;
        scfg.saturate = true;
        tb.add<Source>("src", in, scfg);
        tb.add<Fifo>("fifo", in, out, 3);
        Sink::Config kcfg;
        kcfg.ready_probability = 0.3;
        kcfg.seed = 11;
        p.sink = &tb.add<Sink>("sink", out, kcfg);
        p.mon = &tb.add<Monitor>("mon", out, /*check_id_order=*/true);
        p.flow = &tb.watch_flow("fifo-region", {&in}, {&out},
                                /*allowed_in_flight=*/3);
        p.traced = {&in, &out};
        return p;
      },
      {800});
}

TEST(SchedEquivTest, FifoFeedingClosedGateSkips) {
  // FIFO backpressure interleaved with gate windows: the FIFO fills while
  // the gate is closed, drains one beat per window, and the gaps in between
  // are provably quiescent.
  expect_equivalent(
      [](Testbench& tb) {
        Probes p;
        Wire& in = tb.wire("in");
        Wire& f0 = tb.wire("f0");
        Wire& g0 = tb.wire("g0");
        auto& src = tb.add<Source>("src", in);
        for (std::uint64_t i = 0; i < 12; ++i) {
          src.push(Beat{i, 0, 0, true});
        }
        tb.add<Fifo>("fifo", in, f0, 2);
        p.gate = &tb.add<RateGate>("gate", f0, g0, 40);
        p.sink = &tb.add<Sink>("sink", g0);
        p.mon = &tb.add<Monitor>("mon", g0, /*check_id_order=*/true);
        p.flow = &tb.watch_flow("fifo-gate", {&in}, {&g0},
                                /*allowed_in_flight=*/2);
        p.traced = {&in, &f0, &g0};
        return p;
      },
      {12 * 40 + 50}, /*min_skipped=*/300);
}

TEST(SchedEquivTest, MuxGrantSwitchesUnderStall) {
  // Three competing sources (two bursty) into the mux with a stalling
  // consumer: grant locking, grant switching, and round-robin rotation all
  // while READY flaps.
  expect_equivalent(
      [](Testbench& tb) {
        Probes p;
        Wire& a = tb.wire("a");
        Wire& b = tb.wire("b");
        Wire& c = tb.wire("c");
        Wire& out = tb.wire("out");
        Source::Config sa;
        sa.saturate = true;
        tb.add<Source>("sa", a, sa);
        Source::Config sb = sa;
        sb.valid_probability = 0.6;
        sb.seed = 21;
        tb.add<Source>("sb", b, sb);
        Source::Config sc = sa;
        sc.valid_probability = 0.8;
        sc.seed = 33;
        tb.add<Source>("sc", c, sc);
        tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&a, &b, &c}, out);
        Sink::Config kcfg;
        kcfg.ready_probability = 0.35;
        kcfg.seed = 44;
        p.sink = &tb.add<Sink>("sink", out, kcfg);
        p.mon = &tb.add<Monitor>("mon", out);
        p.traced = {&a, &b, &c, &out};
        return p;
      },
      {600});
}

TEST(SchedEquivTest, RegisterSliceChainThroughGate) {
  expect_equivalent(
      [](Testbench& tb) {
        Probes p;
        Wire& in = tb.wire("in");
        Wire& s0 = tb.wire("s0");
        Wire& s1 = tb.wire("s1");
        Wire& out = tb.wire("out");
        Source::Config scfg;
        scfg.saturate = true;
        tb.add<Source>("src", in, scfg);
        tb.add<RegisterSlice>("slice0", in, s0);
        tb.add<RegisterSlice>("slice1", s0, s1);
        p.gate = &tb.add<RateGate>("gate", s1, out, 5);
        p.sink = &tb.add<Sink>("sink", out);
        p.mon = &tb.add<Monitor>("mon", out, /*check_id_order=*/true);
        p.traced = {&in, &s0, &s1, &out};
        return p;
      },
      {400});
}

TEST(SchedEquivTest, BurstySourceThroughGate) {
  // valid_probability < 1 consumes RNG state on every un-offered cycle, so
  // the activity scheduler must not fast-forward; the traces prove the
  // coin-flip sequences stay aligned.
  expect_equivalent(
      [](Testbench& tb) {
        Probes p;
        Wire& in = tb.wire("in");
        Wire& out = tb.wire("out");
        Source::Config scfg;
        scfg.saturate = true;
        scfg.valid_probability = 0.4;
        scfg.seed = 5;
        tb.add<Source>("src", in, scfg);
        p.gate = &tb.add<RateGate>("gate", in, out, 3);
        p.sink = &tb.add<Sink>("sink", out);
        p.mon = &tb.add<Monitor>("mon", out);
        p.traced = {&in, &out};
        return p;
      },
      {900});
}

TEST(SchedEquivTest, SetPeriodMidRunReschedulesTheGate) {
  // Reconfiguring PERIOD between run() chunks must wake the gate out of a
  // fast-forwarded gap in activity mode; the traces prove the new window
  // schedule lands on the same cycle in both modes.
  expect_equivalent(
      egress_builder(1000), {1500, 2500, 3000}, /*min_skipped=*/1000,
      [](Probes& p, std::size_t chunk) {
        p.gate->set_period(chunk == 1 ? 3 : 250);
      });
}

TEST(SchedEquivTest, PushAfterIdleGapWakesTheSource) {
  // An idle source parks the whole bench (the activity scheduler jumps the
  // gap in one hop); pushing stimulus between chunks must wake it and
  // deliver on the same absolute cycle as naive.
  expect_equivalent(
      [](Testbench& tb) {
        Probes p;
        Wire& in = tb.wire("in");
        Wire& out = tb.wire("out");
        p.src = &tb.add<Source>("src", in);
        p.src->push(Beat{0, 0, 0, true});
        tb.add<Fifo>("fifo", in, out, 2);
        p.sink = &tb.add<Sink>("sink", out);
        p.mon = &tb.add<Monitor>("mon", out, /*check_id_order=*/true);
        p.flow = &tb.watch_flow("pipe", {&in}, {&out},
                                /*allowed_in_flight=*/2);
        p.traced = {&in, &out};
        return p;
      },
      {100, 60, 40}, /*min_skipped=*/120,
      [](Probes& p, std::size_t chunk) {
        p.src->push(Beat{10 + chunk, 0, 0, true});
      });
}

}  // namespace
}  // namespace tfsim::axi
