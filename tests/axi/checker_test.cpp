// Protocol-assertion layer tests: each violation class must be detected
// when a deliberately buggy module commits it, strict mode must abort,
// and the real egress pipeline must be violation-free across the PERIOD
// range the paper sweeps.
#include "axi/checker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "axi/endpoints.hpp"
#include "axi/fifo.hpp"
#include "axi/mux.hpp"
#include "axi/rate_gate.hpp"
#include "axi/router.hpp"
#include "axi/testbench.hpp"
#include "core/protocol_report.hpp"

namespace tfsim::axi {
namespace {

// ---------------------------------------------------------------------------
// Deliberately buggy modules.  Each commits exactly one class of protocol
// violation so the tests can assert detection is precise.
// ---------------------------------------------------------------------------

/// Asserts VALID for one cycle and retracts it before READY ever comes.
struct ValidDropper final : Module {
  Wire& out;
  std::uint64_t cycles = 0;
  explicit ValidDropper(Wire& w) : Module("valid_dropper"), out(w) {}
  void eval() override {
    out.set_valid(cycles == 0);
    out.set_beat(Beat{1, 0, 0, true});
  }
  void tick(std::uint64_t) override { ++cycles; }
};

/// Offers a beat and mutates its id every cycle while the consumer stalls.
struct PayloadMutator final : Module {
  Wire& out;
  std::uint64_t id = 0;
  explicit PayloadMutator(Wire& w) : Module("payload_mutator"), out(w) {}
  void eval() override {
    out.set_valid(true);
    out.set_beat(Beat{id, 0, 0, true});
  }
  void tick(std::uint64_t) override { ++id; }
};

/// Pass-through that re-offers every accepted beat once more: each beat
/// exits twice (duplication).
struct Duplicator final : Module {
  Wire& in;
  Wire& out;
  bool replaying = false;
  Beat held{};
  Duplicator(Wire& i, Wire& o) : Module("duplicator"), in(i), out(o) {}
  void eval() override {
    if (replaying) {
      out.set_valid(true);
      out.set_beat(held);
      in.set_ready(false);
    } else {
      out.set_valid(in.valid());
      out.set_beat(in.beat());
      in.set_ready(out.ready());
    }
  }
  void tick(std::uint64_t) override {
    if (replaying) {
      if (out.fire()) replaying = false;
    } else if (out.fire()) {
      held = out.beat();
      replaying = true;  // play the same beat again next cycle
    }
  }
};

/// Accepts every beat and forwards none (a black hole).
struct BeatEater final : Module {
  Wire& in;
  Wire& out;
  BeatEater(Wire& i, Wire& o) : Module("beat_eater"), in(i), out(o) {}
  void eval() override {
    in.set_ready(true);
    out.set_valid(false);
  }
  void tick(std::uint64_t) override {}
};

/// Buffers two beats and emits them swapped: per-TDEST order inverted.
struct Swapper final : Module {
  Wire& in;
  Wire& out;
  std::vector<Beat> pair;
  std::vector<Beat> emitting;
  Swapper(Wire& i, Wire& o) : Module("swapper"), in(i), out(o) {}
  void eval() override {
    in.set_ready(emitting.empty() && pair.size() < 2);
    out.set_valid(!emitting.empty());
    if (!emitting.empty()) out.set_beat(emitting.back());
  }
  void tick(std::uint64_t) override {
    if (in.fire()) {
      pair.push_back(in.beat());
      if (pair.size() == 2) {
        emitting = {pair[0], pair[1]};  // back() emitted first -> swapped
        pair.clear();
      }
    }
    if (out.fire()) emitting.pop_back();
  }
};

/// Pass-through that flips a "bit" of the payload (id xor 0x80).
struct Corruptor final : Module {
  Wire& in;
  Wire& out;
  Corruptor(Wire& i, Wire& o) : Module("corruptor"), in(i), out(o) {}
  void eval() override {
    out.set_valid(in.valid());
    Beat b = in.beat();
    b.id ^= 0x80;
    out.set_beat(b);
    in.set_ready(out.ready());
  }
  void tick(std::uint64_t) override {}
};

// ---------------------------------------------------------------------------
// Per-wire handshake assertions
// ---------------------------------------------------------------------------

TEST(WireCheckerTest, DetectsValidRetraction) {
  Testbench tb(CheckMode::kCollect);
  Wire& w = tb.wire("w");
  tb.add<ValidDropper>(w);
  Sink::Config cfg;
  cfg.ready_probability = 0.0;  // never accept: the drop is un-excusable
  tb.add<Sink>("sink", w, cfg);
  tb.run(3);
  EXPECT_EQ(tb.sink().count(ViolationKind::kValidRetracted), 1u);
}

TEST(WireCheckerTest, DetectsPayloadMutationUnderStall) {
  Testbench tb(CheckMode::kCollect);
  Wire& w = tb.wire("w");
  tb.add<PayloadMutator>(w);
  Sink::Config cfg;
  cfg.ready_probability = 0.0;
  tb.add<Sink>("sink", w, cfg);
  tb.run(4);
  EXPECT_GE(tb.sink().count(ViolationKind::kPayloadMutated), 3u);
}

TEST(WireCheckerTest, StrictModeThrowsProtocolError) {
  Testbench tb;  // default strict
  Wire& w = tb.wire("w");
  tb.add<PayloadMutator>(w);
  Sink::Config cfg;
  cfg.ready_probability = 0.0;
  tb.add<Sink>("sink", w, cfg);
  tb.step();  // first offer: legal
  try {
    tb.run(3);
    FAIL() << "strict mode must abort on the first violation";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.violation().kind, ViolationKind::kPayloadMutated);
    EXPECT_NE(std::string(e.what()).find("PAYLOAD_MUTATED"),
              std::string::npos);
  }
}

TEST(WireCheckerTest, DetectsTdestChangeMidPacket) {
  Testbench tb(CheckMode::kCollect);
  Wire& w = tb.wire("w");
  auto& src = tb.add<Source>("src", w);
  tb.add<Sink>("sink", w);
  src.push(Beat{0, 0, 0, false});  // open packet on TDEST 0
  src.push(Beat{1, 1, 0, true});   // close it on TDEST 1: framing torn
  tb.run(5);
  EXPECT_EQ(tb.sink().count(ViolationKind::kTdestChangedMidPacket), 1u);
}

TEST(WireCheckerTest, DetectsUnterminatedPacketAtFinish) {
  Testbench tb(CheckMode::kCollect);
  Wire& w = tb.wire("w");
  auto& src = tb.add<Source>("src", w);
  tb.add<Sink>("sink", w);
  src.push(Beat{0, 0, 0, false});  // packet never closed
  tb.run(5);
  EXPECT_TRUE(tb.sink().clean());
  tb.finish_checks();
  EXPECT_EQ(tb.sink().count(ViolationKind::kPacketUnterminated), 1u);
}

TEST(WireCheckerTest, WellFormedMultiBeatPacketIsClean) {
  Testbench tb;  // strict
  Wire& w = tb.wire("w");
  auto& src = tb.add<Source>("src", w);
  tb.add<Sink>("sink", w);
  src.push(Beat{0, 3, 0, false});
  src.push(Beat{1, 3, 0, false});
  src.push(Beat{2, 3, 0, true});
  tb.run(6);
  tb.finish_checks();
  EXPECT_TRUE(tb.sink().clean());
}

// ---------------------------------------------------------------------------
// Conservation (FlowChecker) assertions
// ---------------------------------------------------------------------------

TEST(FlowCheckerTest, DetectsDuplication) {
  Testbench tb(CheckMode::kCollect);
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  auto& src = tb.add<Source>("src", in);
  tb.add<Duplicator>(in, out);
  tb.add<Sink>("sink", out);
  tb.watch_flow("flow", {&in}, {&out});
  for (std::uint64_t i = 0; i < 4; ++i) src.push(Beat{i, 0, 0, true});
  tb.run(20);
  EXPECT_GE(tb.sink().count(ViolationKind::kBeatDuplicated), 4u);
}

TEST(FlowCheckerTest, DetectsDroppedBeatsAtFinish) {
  Testbench tb(CheckMode::kCollect);
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  auto& src = tb.add<Source>("src", in);
  tb.add<BeatEater>(in, out);
  tb.add<Sink>("sink", out);
  auto& flow = tb.watch_flow("flow", {&in}, {&out});
  for (std::uint64_t i = 0; i < 5; ++i) src.push(Beat{i, 0, 0, true});
  tb.run(10);
  EXPECT_EQ(flow.entered(), 5u);
  EXPECT_EQ(flow.exited(), 0u);
  tb.finish_checks();
  EXPECT_EQ(tb.sink().count(ViolationKind::kBeatDropped), 1u);
}

TEST(FlowCheckerTest, DetectsReordering) {
  Testbench tb(CheckMode::kCollect);
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  auto& src = tb.add<Source>("src", in);
  tb.add<Swapper>(in, out);
  tb.add<Sink>("sink", out);
  tb.watch_flow("flow", {&in}, {&out});
  src.push(Beat{10, 0, 0, true});
  src.push(Beat{11, 0, 0, true});
  tb.run(10);
  EXPECT_EQ(tb.sink().count(ViolationKind::kBeatReordered), 1u);
}

TEST(FlowCheckerTest, DetectsCorruption) {
  Testbench tb(CheckMode::kCollect);
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  auto& src = tb.add<Source>("src", in);
  tb.add<Corruptor>(in, out);
  tb.add<Sink>("sink", out);
  tb.watch_flow("flow", {&in}, {&out});
  src.push(Beat{1, 0, 0, true});
  tb.run(5);
  EXPECT_EQ(tb.sink().count(ViolationKind::kBeatCorrupted), 1u);
}

TEST(FlowCheckerTest, BufferedRegionWithSlackIsClean) {
  // A FIFO legitimately holds beats at end of test; allowed_in_flight
  // equal to its capacity must keep the conservation check quiet.
  Testbench tb;  // strict
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  auto& src = tb.add<Source>("src", in);
  tb.add<Fifo>("fifo", in, out, 4);
  Sink::Config cfg;
  cfg.ready_probability = 0.0;  // never drains
  tb.add<Sink>("sink", out, cfg);
  tb.watch_flow("flow", {&in}, {&out}, /*allowed_in_flight=*/4);
  for (std::uint64_t i = 0; i < 4; ++i) src.push(Beat{i, 0, 0, true});
  tb.run(10);
  tb.finish_checks();
  EXPECT_TRUE(tb.sink().clean());
}

// ---------------------------------------------------------------------------
// Module self-checks (RateGate / Router / Mux instrumentation)
// ---------------------------------------------------------------------------

TEST(SelfCheckTest, MuxHoldsGrantWhileOfferStalls) {
  // Two saturating producers into a mux with a mostly-stalled consumer:
  // before the grant-hold fix the arbiter could switch inputs mid-offer,
  // rewriting the stalled beat.  Strict mode means any such rewrite throws.
  Testbench tb;
  Wire& a = tb.wire("a");
  Wire& b = tb.wire("b");
  Wire& out = tb.wire("out");
  Source::Config sa;
  sa.saturate = true;
  sa.dest = 0;
  tb.add<Source>("sa", a, sa);
  Source::Config sb;
  sb.saturate = true;
  sb.dest = 1;
  sb.seed = 77;
  tb.add<Source>("sb", b, sb);
  tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&a, &b}, out);
  Sink::Config cfg;
  cfg.ready_probability = 0.3;  // stalls most offers
  tb.add<Sink>("sink", out, cfg);
  auto& flow = tb.watch_flow("flow", {&a, &b}, {&out});
  tb.run(500);
  tb.finish_checks();
  EXPECT_TRUE(tb.sink().clean());
  EXPECT_EQ(flow.entered(), flow.exited());
}

TEST(SelfCheckTest, StalledMuxStillFairAfterHold) {
  // The grant lock must not break round-robin fairness once offers drain.
  Testbench tb;
  Wire& a = tb.wire("a");
  Wire& b = tb.wire("b");
  Wire& out = tb.wire("out");
  Source::Config sa;
  sa.saturate = true;
  tb.add<Source>("sa", a, sa);
  Source::Config sb = sa;
  sb.seed = 5;
  tb.add<Source>("sb", b, sb);
  auto& mux = tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&a, &b}, out);
  Sink::Config cfg;
  cfg.ready_probability = 0.5;
  tb.add<Sink>("sink", out, cfg);
  tb.run(2000);
  const double lo = static_cast<double>(mux.transfers(0));
  const double hi = static_cast<double>(mux.transfers(1));
  EXPECT_NEAR(lo / (lo + hi), 0.5, 0.05);
}

// ---------------------------------------------------------------------------
// Regression: the paper's egress pipeline is violation-free across PERIODs
// ---------------------------------------------------------------------------

/// PERIOD == 0 means "no injector spliced" (vanilla router -> mux egress);
/// otherwise router -> RateGate(PERIOD) -> mux.
class EgressCheckerTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EgressCheckerTest, PipelineIsViolationFree) {
  const std::uint64_t period = GetParam();
  Testbench tb;  // strict: a single violation fails the test by throwing
  Wire& in = tb.wire("src->router");
  Wire& r0 = tb.wire("router->gate");
  Wire& out = tb.wire("mux->sink");
  Source::Config scfg;
  scfg.saturate = true;
  tb.add<Source>("src", in, scfg);
  Wire* mux_in = &r0;
  tb.add<Router>("router", in, std::vector<Wire*>{&r0});
  if (period > 0) {
    Wire& g0 = tb.wire("gate->mux");
    tb.add<RateGate>("gate", r0, g0, period);
    mux_in = &g0;
  }
  tb.add<RoundRobinMux>("mux", std::vector<Wire*>{mux_in}, out);
  auto& sink = tb.add<Sink>("sink", out);
  auto& flow = tb.watch_flow("flow", {&in}, {&out});
  const std::uint64_t cycles = 2000;
  ASSERT_NO_THROW(tb.run(cycles));
  ASSERT_NO_THROW(tb.finish_checks());
  EXPECT_TRUE(tb.sink().clean());
  EXPECT_EQ(flow.entered(), flow.exited());
  // The gate admits on counter % PERIOD == 0 boundaries, so a partial
  // trailing window still carries one beat: ceiling division.
  const std::uint64_t effective = period == 0 ? 1 : period;
  EXPECT_EQ(sink.received(), (cycles + effective - 1) / effective);
}

INSTANTIATE_TEST_SUITE_P(Periods, EgressCheckerTest,
                         ::testing::Values(0, 1, 8, 64));

// ---------------------------------------------------------------------------
// core/report integration
// ---------------------------------------------------------------------------

TEST(ProtocolReportTest, ViolationTableAndSummary) {
  Testbench tb(CheckMode::kCollect);
  Wire& w = tb.wire("w");
  tb.add<PayloadMutator>(w);
  Sink::Config cfg;
  cfg.ready_probability = 0.0;
  tb.add<Sink>("sink", w, cfg);
  tb.run(4);
  ASSERT_FALSE(tb.sink().clean());

  const core::Table detail =
      core::violation_table("violations", tb.sink().violations());
  EXPECT_EQ(detail.rows(), tb.sink().violations().size());
  EXPECT_EQ(detail.data()[0][0], "PAYLOAD_MUTATED");

  const core::Table summary = core::violation_summary("summary", tb.sink());
  ASSERT_GE(summary.rows(), 2u);  // one kind + TOTAL
  EXPECT_EQ(summary.data().back()[0], "TOTAL");
  EXPECT_EQ(summary.data().back()[1], std::to_string(tb.sink().total()));
}

TEST(ViolationSinkTest, StorageIsCappedButTotalIsNot) {
  ViolationSink sink;
  sink.set_mode(CheckMode::kCollect);
  for (int i = 0; i < 1000; ++i) {
    sink.report(Violation{ViolationKind::kBeatDropped, "w",
                          static_cast<std::uint64_t>(i), "x"});
  }
  EXPECT_EQ(sink.total(), 1000u);
  EXPECT_EQ(sink.violations().size(), 256u);
  sink.clear();
  EXPECT_TRUE(sink.clean());
}

}  // namespace
}  // namespace tfsim::axi
