// Regression tests for the activity-driven scheduler itself (DESIGN.md
// section 10): the fast-forward instrumentation, checker behaviour across
// skipped gaps, and the non-convergence diagnostics.  The byte-identical
// trace equivalence lives in sched_equiv_test.cpp; this file pins the
// scheduler-specific observables.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "axi/checker.hpp"
#include "axi/endpoints.hpp"
#include "axi/monitor.hpp"
#include "axi/mux.hpp"
#include "axi/rate_gate.hpp"
#include "axi/router.hpp"
#include "axi/testbench.hpp"

namespace tfsim::axi {
namespace {

struct Egress {
  Source* src = nullptr;
  RateGate* gate = nullptr;
  Sink* sink = nullptr;
  Monitor* mon = nullptr;
};

Egress build_egress(Testbench& tb, std::uint64_t period) {
  Egress e;
  Wire& src = tb.wire("src");
  Wire& r0 = tb.wire("r0");
  Wire& g0 = tb.wire("g0");
  Wire& out = tb.wire("out");
  Source::Config scfg;
  scfg.saturate = true;
  e.src = &tb.add<Source>("source", src, scfg);
  tb.add<Router>("router", src, std::vector<Wire*>{&r0});
  e.gate = &tb.add<RateGate>("gate", r0, g0, period);
  tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&g0}, out);
  e.sink = &tb.add<Sink>("sink", out);
  e.mon = &tb.add<Monitor>("mon", out, /*check_id_order=*/true);
  return e;
}

TEST(SchedulerTest, ActivityModeFastForwardsHighPeriodGaps) {
  const std::uint64_t cycles = 20000;
  Testbench act(CheckMode::kStrict, SettleMode::kActivity);
  build_egress(act, 1000);
  act.run(cycles);

  // At PERIOD=1000 a saturated pipeline is quiescent for ~998 of every 1000
  // cycles; the scheduler must jump the overwhelming majority of them.
  EXPECT_EQ(act.stepped_cycles() + act.skipped_cycles(), cycles);
  EXPECT_GT(act.skipped_cycles(), cycles * 9 / 10);
  EXPECT_EQ(act.cycle(), cycles);

  Testbench naive(CheckMode::kStrict, SettleMode::kNaive);
  build_egress(naive, 1000);
  naive.run(cycles);
  EXPECT_EQ(naive.skipped_cycles(), 0u);
  EXPECT_EQ(naive.stepped_cycles(), cycles);
  // The settle work itself must collapse by at least an order of magnitude
  // (the ISSUE's 10x floor is wall-clock; eval-call count is the stronger,
  // deterministic proxy).
  EXPECT_LT(act.eval_calls() * 10, naive.eval_calls());
}

TEST(SchedulerTest, BackToBackTrafficNeverSkips) {
  // PERIOD=1 fires every cycle: there is never a quiescent gap to jump, so
  // the fast-forward path must not engage (and must not be needed).
  Testbench act(CheckMode::kStrict, SettleMode::kActivity);
  Egress e = build_egress(act, 1);
  act.run(500);
  EXPECT_EQ(act.skipped_cycles(), 0u);
  EXPECT_EQ(act.stepped_cycles(), 500u);
  EXPECT_GT(e.sink->received(), 0u);
}

TEST(SchedulerTest, MonitorStatsIdenticalAcrossFastForwardedGaps) {
  const std::uint64_t cycles = 5000;
  Testbench naive(CheckMode::kStrict, SettleMode::kNaive);
  Egress en = build_egress(naive, 500);
  naive.run(cycles);
  Testbench act(CheckMode::kStrict, SettleMode::kActivity);
  Egress ea = build_egress(act, 500);
  act.run(cycles);

  ASSERT_GT(act.skipped_cycles(), 0u);
  EXPECT_EQ(en.mon->fires(), ea.mon->fires());
  EXPECT_EQ(en.mon->gap_stats().count(), ea.mon->gap_stats().count());
  EXPECT_DOUBLE_EQ(en.mon->gap_stats().mean(), ea.mon->gap_stats().mean());
  EXPECT_DOUBLE_EQ(en.mon->gap_stats().max(), ea.mon->gap_stats().max());
  EXPECT_EQ(en.gate->transfers(), ea.gate->transfers());
  EXPECT_EQ(en.gate->stalled_cycles(), ea.gate->stalled_cycles());
  ASSERT_EQ(en.sink->arrivals().size(), ea.sink->arrivals().size());
  for (std::size_t i = 0; i < en.sink->arrivals().size(); ++i) {
    EXPECT_EQ(en.sink->arrivals()[i].cycle, ea.sink->arrivals()[i].cycle);
  }
}

/// Deliberately buggy module: holds VALID (with READY low downstream) and
/// retracts it at a programmed cycle -- in the middle of what the scheduler
/// would otherwise consider a quiescent gap.  Its activity contract is
/// honest about the upcoming change, which is exactly what a self-modifying
/// module must do; the test proves the violation is still caught at the
/// precise cycle even though the surrounding cycles were fast-forwarded.
class TimedRetractor final : public Module {
 public:
  TimedRetractor(Wire& wire, std::uint64_t retract_at)
      : Module("retractor"), w_(wire), retract_at_(retract_at) {}

  void eval() override {
    w_.set_beat(Beat{7, 0, 0, true});
    w_.set_valid(now_ < retract_at_);
  }
  void tick(std::uint64_t) override { ++now_; }
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{};
  }
  std::uint64_t next_activity(std::uint64_t /*next*/) const override {
    return now_ < retract_at_ ? retract_at_ : kIdle;
  }
  void advance(std::uint64_t cycles) override { now_ += cycles; }

 private:
  Wire& w_;
  std::uint64_t retract_at_;
  std::uint64_t now_ = 0;
};

class MidGapViolationTest : public ::testing::TestWithParam<SettleMode> {};

TEST_P(MidGapViolationTest, RetractionInsideGapCaughtAtExactCycle) {
  constexpr std::uint64_t kRetractAt = 750;
  Testbench tb(CheckMode::kCollect, GetParam());
  Wire& w = tb.wire("held");
  tb.add<TimedRetractor>(w, kRetractAt);
  Sink::Config cfg;
  cfg.ready_probability = 0.0;  // never accept: the offer is held forever
  tb.add<Sink>("sink", w, cfg);
  tb.run(2000);

  ASSERT_EQ(tb.sink().count(ViolationKind::kValidRetracted), 1u);
  const auto& vs = tb.sink().violations();
  const auto it =
      std::find_if(vs.begin(), vs.end(), [](const Violation& v) {
        return v.kind == ViolationKind::kValidRetracted;
      });
  ASSERT_NE(it, vs.end());
  EXPECT_EQ(it->cycle, kRetractAt);
  if (GetParam() == SettleMode::kActivity) {
    // The gap around the retraction really was fast-forwarded: only the
    // handful of active cycles were stepped.
    EXPECT_GT(tb.skipped_cycles(), 1900u);
  } else {
    EXPECT_EQ(tb.skipped_cycles(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, MidGapViolationTest,
                         ::testing::Values(SettleMode::kNaive,
                                           SettleMode::kActivity),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

/// Combinational loop: keeps toggling its wire every eval pass.
class Oscillator final : public Module {
 public:
  Oscillator(std::string name, Wire& wire)
      : Module(std::move(name)), w_(wire) {}
  void eval() override { w_.set_valid(!w_.valid()); }
  void tick(std::uint64_t) override {}
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{&w_};
  }

 private:
  Wire& w_;
};

class NonConvergenceTest : public ::testing::TestWithParam<SettleMode> {};

TEST_P(NonConvergenceTest, ErrorNamesTheTogglingModules) {
  Testbench tb(CheckMode::kStrict, GetParam());
  Wire& a = tb.wire("a");
  Wire& b = tb.wire("b");
  tb.add<Oscillator>("osc-alpha", a);
  tb.add<Oscillator>("osc-beta", b);
  // An innocent bystander that settles immediately must NOT be blamed.
  Wire& c = tb.wire("c");
  tb.add<Source>("innocent", c);

  try {
    tb.step();
    FAIL() << "expected non-convergence";
  } catch (const std::runtime_error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("did not converge"), std::string::npos) << what;
    EXPECT_NE(what.find("osc-alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("osc-beta"), std::string::npos) << what;
    EXPECT_EQ(what.find("innocent"), std::string::npos) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, NonConvergenceTest,
                         ::testing::Values(SettleMode::kNaive,
                                           SettleMode::kActivity),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

TEST(SchedulerTest, PushAfterDrainArrivesAtAbsoluteCycle) {
  // Reference arrival cycle from the naive scheduler...
  auto drive = [](SettleMode mode) {
    Testbench tb(CheckMode::kStrict, mode);
    Wire& w = tb.wire("w");
    Source& src = tb.add<Source>("src", w);
    Sink& sink = tb.add<Sink>("sink", w);
    src.push(Beat{1, 0, 0, true});
    tb.run(300);  // beat 1 delivered early; bench idles for the rest
    src.push(Beat{2, 0, 0, true});
    tb.run(10);
    return std::make_pair(sink.arrivals(), tb.skipped_cycles());
  };
  const auto [naive, naive_skipped] = drive(SettleMode::kNaive);
  const auto [act, act_skipped] = drive(SettleMode::kActivity);
  EXPECT_EQ(naive_skipped, 0u);
  EXPECT_GT(act_skipped, 250u);  // ...the idle stretch was fast-forwarded...
  ASSERT_EQ(naive.size(), 2u);
  ASSERT_EQ(act.size(), 2u);
  for (std::size_t i = 0; i < naive.size(); ++i) {
    // ...and the wake-up lands the second beat on the same absolute cycle.
    EXPECT_EQ(naive[i].cycle, act[i].cycle) << "arrival " << i;
    EXPECT_EQ(naive[i].beat, act[i].beat) << "arrival " << i;
  }
}

}  // namespace
}  // namespace tfsim::axi
