// FIFO, register slice, mux, router, and full egress pipeline composition.
// All benches run with the protocol checker in its default strict mode, so
// every test here doubles as an assertion-layer regression; tests that
// violate the protocol on purpose switch to collect mode and assert the
// checker caught them.
#include <gtest/gtest.h>

#include "axi/checker.hpp"
#include "axi/endpoints.hpp"
#include "axi/fifo.hpp"
#include "axi/monitor.hpp"
#include "axi/mux.hpp"
#include "axi/rate_gate.hpp"
#include "axi/router.hpp"
#include "axi/testbench.hpp"

namespace tfsim::axi {
namespace {

TEST(FifoTest, PassesBeatsInOrder) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  auto& src = tb.add<Source>("src", in);
  tb.add<Fifo>("fifo", in, out, 4);
  auto& sink = tb.add<Sink>("sink", out);
  for (std::uint64_t i = 0; i < 10; ++i) src.push(Beat{i, 0, 0, true});
  tb.run(30);
  ASSERT_EQ(sink.received(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.arrivals()[i].beat.id, i);
  }
}

TEST(FifoTest, RegisteredOutputAddsOneCycle) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  auto& src = tb.add<Source>("src", in);
  tb.add<Fifo>("fifo", in, out, 4);
  auto& sink = tb.add<Sink>("sink", out);
  src.push(Beat{7, 0, 0, true});
  tb.run(5);
  ASSERT_EQ(sink.received(), 1u);
  // Accepted at cycle 0, visible downstream at cycle 1.
  EXPECT_EQ(sink.arrivals()[0].cycle, 1u);
}

TEST(FifoTest, BackpressureWhenFull) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  Source::Config scfg;
  scfg.saturate = true;
  tb.add<Source>("src", in, scfg);
  auto& fifo = tb.add<Fifo>("fifo", in, out, 3);
  Sink::Config kcfg;
  kcfg.ready_probability = 0.0;  // stalled consumer
  tb.add<Sink>("sink", out, kcfg);
  tb.run(20);
  EXPECT_EQ(fifo.size(), 3u);
  EXPECT_EQ(fifo.accepted(), 3u);
  EXPECT_EQ(fifo.delivered(), 0u);
  EXPECT_EQ(fifo.max_occupancy(), 3u);
}

TEST(FifoTest, DrainsAfterStallClears) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  auto& src = tb.add<Source>("src", in);
  tb.add<Fifo>("fifo", in, out, 2);
  auto& sink = tb.add<Sink>("sink", out);
  for (std::uint64_t i = 0; i < 5; ++i) src.push(Beat{i, 0, 0, true});
  tb.run(20);
  EXPECT_EQ(sink.received(), 5u);
}

TEST(FifoTest, RejectsZeroDepth) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  EXPECT_THROW(Fifo("f", in, out, 0), std::invalid_argument);
}

TEST(RegisterSliceTest, SingleBeatPipelining) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  Source::Config scfg;
  scfg.saturate = true;
  tb.add<Source>("src", in, scfg);
  tb.add<RegisterSlice>("slice", in, out);
  auto& sink = tb.add<Sink>("sink", out);
  auto& mon = tb.add<Monitor>("mon", out, true);
  tb.run(100);
  EXPECT_TRUE(mon.clean());
  // A depth-1 slice with no bypass sustains one beat every 2 cycles.
  EXPECT_EQ(sink.received(), 50u);
}

TEST(RouterTest, RoutesByDest) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& o0 = tb.wire("o0");
  Wire& o1 = tb.wire("o1");
  auto& src = tb.add<Source>("src", in);
  auto& router = tb.add<Router>("router", in, std::vector<Wire*>{&o0, &o1});
  auto& s0 = tb.add<Sink>("s0", o0);
  auto& s1 = tb.add<Sink>("s1", o1);
  src.push(Beat{0, 0, 0, true});
  src.push(Beat{1, 1, 0, true});
  src.push(Beat{2, 1, 0, true});
  src.push(Beat{3, 0, 0, true});
  tb.run(10);
  EXPECT_EQ(s0.received(), 2u);
  EXPECT_EQ(s1.received(), 2u);
  EXPECT_EQ(router.transfers(0), 2u);
  EXPECT_EQ(router.transfers(1), 2u);
  EXPECT_EQ(router.misroutes(), 0u);
}

TEST(RouterTest, OutOfRangeDestIsCountedNotDeadlocked) {
  // A bogus TDEST is a protocol violation (kMisroute); collect it instead
  // of aborting so the drain behaviour can be verified too.
  Testbench tb(CheckMode::kCollect);
  Wire& in = tb.wire("in");
  Wire& o0 = tb.wire("o0");
  auto& src = tb.add<Source>("src", in);
  auto& router = tb.add<Router>("router", in, std::vector<Wire*>{&o0});
  auto& s0 = tb.add<Sink>("s0", o0);
  src.push(Beat{0, 5, 0, true});  // bogus dest
  src.push(Beat{1, 0, 0, true});
  tb.run(10);
  EXPECT_EQ(router.misroutes(), 1u);
  EXPECT_EQ(s0.received(), 1u);
  EXPECT_EQ(s0.arrivals()[0].beat.id, 1u);
  EXPECT_EQ(tb.sink().count(ViolationKind::kMisroute), 1u);
}

TEST(MuxTest, RoundRobinIsFair) {
  Testbench tb;
  Wire& a = tb.wire("a");
  Wire& b = tb.wire("b");
  Wire& c = tb.wire("c");
  Wire& out = tb.wire("out");
  Source::Config scfg;
  scfg.saturate = true;
  tb.add<Source>("sa", a, scfg);
  Source::Config scfg2 = scfg;
  scfg2.seed = 99;
  tb.add<Source>("sb", b, scfg2);
  Source::Config scfg3 = scfg;
  scfg3.seed = 123;
  tb.add<Source>("sc", c, scfg3);
  auto& mux =
      tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&a, &b, &c}, out);
  tb.add<Sink>("sink", out);
  tb.run(300);
  // Perfect three-way fairness under saturation.
  EXPECT_EQ(mux.transfers(0), 100u);
  EXPECT_EQ(mux.transfers(1), 100u);
  EXPECT_EQ(mux.transfers(2), 100u);
}

TEST(MuxTest, NoStarvationWithOneHeavyInput) {
  Testbench tb;
  Wire& a = tb.wire("a");
  Wire& b = tb.wire("b");
  Wire& out = tb.wire("out");
  Source::Config heavy;
  heavy.saturate = true;
  tb.add<Source>("heavy", a, heavy);
  auto& light = tb.add<Source>("light", b);
  auto& mux = tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&a, &b}, out);
  tb.add<Sink>("sink", out);
  light.push(Beat{1000, 0, 0, true});
  tb.run(10);
  EXPECT_EQ(mux.transfers(1), 1u) << "light input must not starve";
  EXPECT_GT(mux.transfers(0), 5u);
}

TEST(MuxTest, SingleInputPassesThrough) {
  Testbench tb;
  Wire& a = tb.wire("a");
  Wire& out = tb.wire("out");
  Source::Config scfg;
  scfg.saturate = true;
  tb.add<Source>("src", a, scfg);
  tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&a}, out);
  auto& sink = tb.add<Sink>("sink", out);
  tb.run(50);
  EXPECT_EQ(sink.received(), 50u);
}

// The full ThymesisFlow egress: router -> [gate per route] -> mux, as the
// paper splices the injector between routing and multiplexing.
TEST(PipelineTest, EgressWithInjectorKeepsOrderAndRate) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& r0 = tb.wire("r0");
  Wire& g0 = tb.wire("g0");
  Wire& out = tb.wire("out");
  Source::Config scfg;
  scfg.saturate = true;
  tb.add<Source>("src", in, scfg);
  tb.add<Router>("router", in, std::vector<Wire*>{&r0});
  tb.add<RateGate>("gate", r0, g0, 5);
  tb.add<RoundRobinMux>("mux", std::vector<Wire*>{&g0}, out);
  auto& sink = tb.add<Sink>("sink", out);
  auto& mon = tb.add<Monitor>("mon", out, true);
  tb.run(500);
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(sink.received(), 100u);
}

TEST(MonitorTest, DetectsValidRetraction) {
  // Drive a wire by hand through a testbench with only a monitor.  The
  // testbench's own WireChecker sees the same violation, so collect mode.
  Testbench tb(CheckMode::kCollect);
  Wire& w = tb.wire("w");
  auto& mon = tb.add<Monitor>("mon", w);
  w.set_valid(true);
  w.set_beat(Beat{1, 0, 0, true});
  w.set_ready(false);
  tb.step();  // offered, not accepted
  w.set_valid(false);  // illegal retraction
  tb.step();
  EXPECT_FALSE(mon.clean());
  EXPECT_NE(mon.violations()[0].find("retracted"), std::string::npos);
  EXPECT_EQ(tb.sink().count(ViolationKind::kValidRetracted), 1u);
}

TEST(MonitorTest, DetectsPayloadChangeWhileWaiting) {
  Testbench tb(CheckMode::kCollect);
  Wire& w = tb.wire("w");
  auto& mon = tb.add<Monitor>("mon", w);
  w.set_valid(true);
  w.set_beat(Beat{1, 0, 0, true});
  w.set_ready(false);
  tb.step();
  w.set_beat(Beat{2, 0, 0, true});  // illegal payload mutation
  tb.step();
  EXPECT_FALSE(mon.clean());
  EXPECT_NE(mon.violations()[0].find("payload"), std::string::npos);
  EXPECT_EQ(tb.sink().count(ViolationKind::kPayloadMutated), 1u);
}

TEST(TestbenchTest, DetectsCombinationalLoop) {
  // A module that keeps toggling a wire never converges.
  struct Oscillator final : Module {
    Wire& w;
    explicit Oscillator(Wire& wire) : Module("osc"), w(wire) {}
    void eval() override { w.set_valid(!w.valid()); }
    void tick(std::uint64_t) override {}
  };
  Testbench tb;
  Wire& w = tb.wire("w");
  tb.add<Oscillator>(w);
  EXPECT_THROW(tb.step(), std::runtime_error);
}

}  // namespace
}  // namespace tfsim::axi
