// Cycle-level tests of the paper's delay-injection module (Eq. 1).
#include "axi/rate_gate.hpp"

#include <gtest/gtest.h>

#include "axi/endpoints.hpp"
#include "axi/monitor.hpp"
#include "axi/testbench.hpp"

namespace tfsim::axi {
namespace {

struct GateBench {
  Testbench tb;
  Wire* in;
  Wire* out;
  Source* source;
  RateGate* gate;
  Sink* sink;
  Monitor* monitor;

  explicit GateBench(std::uint64_t period, double sink_ready_prob = 1.0) {
    in = &tb.wire("in");
    out = &tb.wire("out");
    Source::Config scfg;
    scfg.saturate = true;
    source = &tb.add<Source>("source", *in, scfg);
    gate = &tb.add<RateGate>("gate", *in, *out, period);
    Sink::Config kcfg;
    kcfg.ready_probability = sink_ready_prob;
    sink = &tb.add<Sink>("sink", *out, kcfg);
    monitor = &tb.add<Monitor>("monitor", *out, /*check_id_order=*/true);
  }
};

TEST(RateGateTest, PeriodOneIsTransparent) {
  GateBench b(1);
  b.tb.run(100);
  EXPECT_EQ(b.sink->received(), 100u);
  EXPECT_TRUE(b.monitor->clean());
}

class RateGatePeriodTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RateGatePeriodTest, OneTransferPerPeriod) {
  const std::uint64_t period = GetParam();
  GateBench b(period);
  const std::uint64_t cycles = period * 50;
  b.tb.run(cycles);
  EXPECT_EQ(b.sink->received(), cycles / period);
  EXPECT_TRUE(b.monitor->clean());
  // Inter-arrival gaps are exactly PERIOD cycles under saturation.
  if (period > 1) {
    EXPECT_DOUBLE_EQ(b.monitor->gap_stats().mean(),
                     static_cast<double>(period));
    EXPECT_DOUBLE_EQ(b.monitor->gap_stats().min(),
                     static_cast<double>(period));
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, RateGatePeriodTest,
                         ::testing::Values(2, 3, 4, 7, 10, 16, 100, 1000));

TEST(RateGateTest, TransfersHappenOnCounterBoundaries) {
  GateBench b(10);
  b.tb.run(100);
  for (const auto& arrival : b.sink->arrivals()) {
    EXPECT_EQ(arrival.cycle % 10, 0u)
        << "transfer off the COUNTER%PERIOD==0 boundary";
  }
}

TEST(RateGateTest, RespectsDownstreamBackpressure) {
  // Sink ready only 30% of cycles: the gate must never exceed what both
  // the window and READY_OLD allow, and no beat may be lost or duplicated.
  GateBench b(4, 0.3);
  b.tb.run(4000);
  EXPECT_LE(b.sink->received(), 4000u / 4);
  EXPECT_TRUE(b.monitor->clean());
  // Ids must be consecutive from 0 (no loss/duplication).
  const auto& arr = b.sink->arrivals();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr[i].beat.id, i);
  }
}

TEST(RateGateTest, StalledCyclesCounted) {
  GateBench b(10);
  b.tb.run(100);
  // Upstream offers every cycle; the gate admits 1 in 10.
  EXPECT_GT(b.gate->stalled_cycles(), 80u);
  EXPECT_EQ(b.gate->transfers(), 10u);
}

TEST(RateGateTest, SetPeriodTakesEffect) {
  GateBench b(1);
  b.tb.run(50);
  EXPECT_EQ(b.sink->received(), 50u);
  b.gate->set_period(5);
  b.tb.run(100);
  EXPECT_EQ(b.sink->received(), 50u + 20u);
}

TEST(RateGateTest, RejectsPeriodZero) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  EXPECT_THROW(RateGate("g", in, out, 0), std::invalid_argument);
  RateGate ok("g", in, out, 1);
  EXPECT_THROW(ok.set_period(0), std::invalid_argument);
}

TEST(RateGateTest, BurstySourceStillObeysPeriod) {
  Testbench tb;
  Wire& in = tb.wire("in");
  Wire& out = tb.wire("out");
  Source::Config scfg;
  scfg.saturate = true;
  scfg.valid_probability = 0.4;  // bursty upstream
  tb.add<Source>("source", in, scfg);
  tb.add<RateGate>("gate", in, out, 3);
  auto& sink = tb.add<Sink>("sink", out);
  auto& mon = tb.add<Monitor>("monitor", out);
  tb.run(3000);
  EXPECT_TRUE(mon.clean());
  EXPECT_LE(sink.received(), 1000u);
  EXPECT_GT(sink.received(), 300u);  // still flows
  if (mon.gap_stats().count() > 0) {
    EXPECT_GE(mon.gap_stats().min(), 3.0);
  }
}

}  // namespace
}  // namespace tfsim::axi
