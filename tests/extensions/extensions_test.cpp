// Tests for the resource-management extensions built on the paper's
// insights: QoS (priority servers, MSHR reservation), hot-page migration,
// and beyond-rack-scale switched topologies.
#include <gtest/gtest.h>

#include <memory>

#include "net/topology.hpp"
#include "node/migration.hpp"
#include "node/testbed.hpp"
#include "sim/server.hpp"
#include "workloads/stream/stream_flow.hpp"

namespace tfsim {
namespace {

// --- PriorityBandwidthServer --------------------------------------------

constexpr sim::Bandwidth kGbps1{1e9};  // 1 ns per byte

TEST(PriorityServerTest, BulkOnlyBehavesLikeFifo) {
  sim::PriorityBandwidthServer s(kGbps1, 0);
  EXPECT_EQ(s.request(0, 1000), sim::from_ns(1000));
  EXPECT_EQ(s.request(0, 1000), sim::from_ns(2000));
  EXPECT_EQ(s.request(sim::from_ns(5000), 100), sim::from_ns(5100));
}

TEST(PriorityServerTest, LatencyClassBypassesBulkBacklog) {
  sim::PriorityBandwidthServer s(kGbps1, 0);
  for (int i = 0; i < 10; ++i) s.request(0, 1000);  // 10 us of bulk backlog
  // A latency-class frame waits at most the residual of one bulk frame.
  const auto done = s.request(0, 100, sim::Priority::kLatency);
  EXPECT_LE(done, sim::from_ns(1000 + 100));
  EXPECT_GE(done, sim::from_ns(100));
}

TEST(PriorityServerTest, LatencyClassStealsBulkCapacity) {
  sim::PriorityBandwidthServer s(kGbps1, 0);
  s.request(0, 1000);                                // bulk until 1000
  s.request(0, 500, sim::Priority::kLatency);        // bypass, 500 ns stolen
  // Next bulk frame sees its queue pushed back by the stolen wire time.
  EXPECT_GE(s.request(0, 1000), sim::from_ns(2500));
}

TEST(PriorityServerTest, LatencyClassFifoAmongItself) {
  sim::PriorityBandwidthServer s(kGbps1, 0);
  const auto a = s.request(0, 1000, sim::Priority::kLatency);
  const auto b = s.request(0, 1000, sim::Priority::kLatency);
  EXPECT_EQ(a, sim::from_ns(1000));
  EXPECT_EQ(b, sim::from_ns(2000));
}

TEST(PriorityServerTest, BacklogPerClass) {
  sim::PriorityBandwidthServer s(kGbps1, 0);
  for (int i = 0; i < 5; ++i) s.request(0, 1000);
  EXPECT_EQ(s.backlog(0, sim::Priority::kBulk), sim::from_ns(5000));
  EXPECT_EQ(s.backlog(0, sim::Priority::kLatency), 0u);
}

// --- end-to-end QoS -------------------------------------------------------

TEST(QosTest, PrioritizedProbeKeepsLowLatencyUnderSaturation) {
  node::TestbedSpec spec = node::thymesisflow_testbed();
  spec.borrower.nic.latency_reserved_entries = 16;
  node::Testbed tb(spec);
  ASSERT_TRUE(tb.attach_remote());
  const sim::Time horizon = sim::from_ms(5.0);

  workloads::FlowConfig bulk_cfg;
  bulk_cfg.concurrency = 128;
  bulk_cfg.base = tb.remote_base();
  bulk_cfg.span_bytes = 256 * sim::kMiB;
  bulk_cfg.stop_at = horizon;
  workloads::RemoteStreamFlow bulk(tb.engine(), tb.borrower().nic(), bulk_cfg);

  workloads::FlowConfig probe_cfg;
  probe_cfg.concurrency = 4;
  probe_cfg.base = tb.remote_base() + 512 * sim::kMiB;
  probe_cfg.span_bytes = 64 * sim::kMiB;
  probe_cfg.stop_at = horizon;
  probe_cfg.priority = sim::Priority::kLatency;
  workloads::RemoteStreamFlow probe(tb.engine(), tb.borrower().nic(), probe_cfg);

  bulk.start();
  probe.start();
  tb.engine().run();

  EXPECT_LT(probe.stats().latency_us.mean(), 1.6)
      << "near-unloaded latency despite bulk saturation";
  EXPECT_GT(bulk.stats().bandwidth_gbps(horizon), 7.0)
      << "bulk keeps most of the link";
}

TEST(QosTest, MemContextPriorityReachesNic) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  node::CpuConfig cpu{4, sim::from_ns(1), sim::Priority::kLatency};
  node::MemContext ctx(tb.borrower(), cpu, "qos");
  ctx.read(tb.remote_base(), /*dependent=*/true);
  EXPECT_EQ(ctx.stats().remote_misses, 1u);  // plumbed without error
}

// --- page migration -------------------------------------------------------

node::MigrationConfig fast_migration() {
  node::MigrationConfig cfg;
  cfg.page_bytes = 4 * sim::kKiB;
  cfg.hot_threshold = 4;
  cfg.min_hot_epochs = 2;
  cfg.epoch_accesses = 64;
  return cfg;
}

TEST(MigrationTest, HotPageMigratesAfterRepeatedEpochs) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  tb.borrower().enable_migration(fast_migration());
  auto* m = tb.borrower().migrator();
  ASSERT_NE(m, nullptr);

  node::MemContext ctx(tb.borrower(), node::CpuConfig{8, sim::from_ns(1)}, "t");
  // Hammer one page across many epochs; sprinkle other traffic so epochs
  // advance.
  const mem::Addr hot = tb.remote_base();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      ctx.read(hot + static_cast<mem::Addr>(i) * 128, true);
      tb.borrower().caches().invalidate(hot + static_cast<mem::Addr>(i) * 128);
    }
    for (int i = 0; i < 64; ++i) {
      ctx.read(tb.remote_base() + sim::kGiB +
               (static_cast<mem::Addr>(round) * 64 + i) * 128);
    }
  }
  ctx.drain();
  EXPECT_GE(m->stats().pages_migrated, 1u);
  EXPECT_GT(m->stats().accesses_served_locally, 0u);
}

TEST(MigrationTest, StreamingPagesDoNotQualify) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  tb.borrower().enable_migration(fast_migration());
  node::MemContext ctx(tb.borrower(), node::CpuConfig{32, sim::from_ns(1)}, "t");
  // One pass over 8 MB: every page touched in exactly one epoch burst.
  ctx.stream(tb.remote_base(), 8 * sim::kMiB, false);
  ctx.drain();
  EXPECT_EQ(tb.borrower().migrator()->stats().pages_migrated, 0u);
}

TEST(MigrationTest, BudgetCapsMigration) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  auto cfg = fast_migration();
  cfg.budget_bytes = cfg.page_bytes;  // exactly one page
  tb.borrower().enable_migration(cfg);
  auto* m = tb.borrower().migrator();

  node::MemContext ctx(tb.borrower(), node::CpuConfig{8, sim::from_ns(1)}, "t");
  for (int round = 0; round < 60; ++round) {
    for (mem::Addr page = 0; page < 4; ++page) {
      // Four hot lines per page per epoch: meets the per-epoch threshold.
      for (mem::Addr l = 0; l < 4; ++l) {
        const mem::Addr addr =
            tb.remote_base() + page * cfg.page_bytes + l * 128;
        ctx.read(addr, true);
        tb.borrower().caches().invalidate(addr);
      }
    }
    for (int i = 0; i < 64; ++i) {
      ctx.read(tb.remote_base() + sim::kGiB +
               (static_cast<mem::Addr>(round) * 64 + i) * 128);
    }
  }
  ctx.drain();
  EXPECT_EQ(m->stats().pages_migrated, 1u);
  EXPECT_GT(m->stats().budget_rejections, 0u);
}

// --- topology ---------------------------------------------------------------

TEST(TopologyTest, StarBuildsRoutesBothWays) {
  net::Network network;
  net::StarTopologyConfig cfg;
  cfg.pairs = 3;
  const auto topo = net::StarTopology::build(network, cfg);
  ASSERT_EQ(topo.borrowers.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(network.has_route(topo.borrowers[i], topo.lenders[i]));
    EXPECT_TRUE(network.has_route(topo.lenders[i], topo.borrowers[i]));
  }
  EXPECT_EQ(network.num_nodes(), 2u + 2u * 3u);
}

TEST(TopologyTest, TrunkIsShared) {
  net::Network network;
  net::StarTopologyConfig cfg;
  cfg.pairs = 2;
  cfg.edge.propagation = 0;
  cfg.trunk.propagation = 0;
  cfg.edge.bandwidth = sim::Bandwidth{1e9};
  cfg.trunk.bandwidth = sim::Bandwidth{1e9};
  const auto topo = net::StarTopology::build(network, cfg);
  const auto t1 =
      network.deliver(0, topo.borrowers[0], topo.lenders[0], 1000);
  const auto t2 =
      network.deliver(0, topo.borrowers[1], topo.lenders[1], 1000);
  // Pair 1's packet queues behind pair 0's on the trunk hop.
  EXPECT_GT(t2, t1);
}

TEST(TopologyTest, RejectsBadConfigs) {
  net::Network network;
  net::StarTopologyConfig cfg;
  cfg.pairs = 0;
  EXPECT_THROW(net::StarTopology::build(network, cfg), std::invalid_argument);
  net::Network used;
  used.add_node("x");
  cfg.pairs = 1;
  EXPECT_THROW(net::StarTopology::build(used, cfg), std::invalid_argument);
}

// --- bursty flows -------------------------------------------------------------

TEST(BurstyFlowTest, PhasedFlowMovesLessThanSmoothFlow) {
  auto run = [](sim::Time on, sim::Time off) {
    node::Testbed tb;
    tb.attach_remote();
    workloads::FlowConfig cfg;
    cfg.concurrency = 32;
    cfg.base = tb.remote_base();
    cfg.span_bytes = 64 * sim::kMiB;
    cfg.stop_at = sim::from_ms(5.0);
    cfg.phase_on = on;
    cfg.phase_off = off;
    workloads::RemoteStreamFlow flow(tb.engine(), tb.borrower().nic(), cfg);
    flow.start();
    tb.engine().run();
    return flow.stats().lines_completed;
  };
  const auto smooth = run(0, 0);
  const auto phased = run(sim::from_us(100), sim::from_us(100));
  EXPECT_LT(phased, smooth * 2 / 3) << "50% duty cycle moves ~half the lines";
  EXPECT_GT(phased, smooth / 4);
}

TEST(BurstyFlowTest, MicroBurstsThrottleThroughput) {
  auto run = [](std::uint64_t burst_lines, sim::Time idle) {
    node::Testbed tb;
    tb.attach_remote();
    workloads::FlowConfig cfg;
    cfg.concurrency = 8;
    cfg.base = tb.remote_base();
    cfg.span_bytes = 64 * sim::kMiB;
    cfg.stop_at = sim::from_ms(5.0);
    cfg.burst_lines = burst_lines;
    cfg.idle_mean = idle;
    workloads::RemoteStreamFlow flow(tb.engine(), tb.borrower().nic(), cfg);
    flow.start();
    tb.engine().run();
    return flow.stats().lines_completed;
  };
  EXPECT_LT(run(16, sim::from_us(50)), run(0, 0));
}

// --- DRAM QoS ------------------------------------------------------------------

TEST(DramQosTest, LatencyClassBypassesBulkQueue) {
  mem::DramConfig cfg;
  cfg.bus_bandwidth = sim::Bandwidth::from_gbyte(1.0);  // slow: 128 ns/line
  cfg.access_latency = 0;
  mem::Dram dram(cfg);
  for (int i = 0; i < 100; ++i) dram.access_line(0);  // 12.8 us backlog
  const auto hi = dram.access(0, 128, sim::Priority::kLatency);
  EXPECT_LE(hi, sim::from_ns(2 * 128));
}

}  // namespace
}  // namespace tfsim
