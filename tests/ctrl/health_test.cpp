// HealthDetector: warmup/baseline semantics, the EWMA score model, the
// confirmation streak, and the two reset flavors the serving reaction
// policy depends on (soft_reset keeps the baseline, reset forgets it).
#include <gtest/gtest.h>

#include <stdexcept>

#include "ctrl/health.hpp"

namespace tfsim::ctrl {
namespace {

HealthConfig quick_cfg() {
  HealthConfig cfg;
  cfg.alpha = 0.3;
  cfg.latency_threshold = 3.0;
  cfg.timeout_weight = 10.0;
  cfg.warmup = 4;
  cfg.confirm = 3;
  return cfg;
}

/// Feed `n` identical healthy completions.
void warm_up(HealthDetector& d, double us, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) d.observe_latency(us);
}

TEST(HealthDetectorTest, ConstructorRejectsBadConfig) {
  HealthConfig cfg = quick_cfg();
  cfg.alpha = 0.0;
  EXPECT_THROW(HealthDetector{cfg}, std::invalid_argument);
  cfg = quick_cfg();
  cfg.alpha = 1.5;
  EXPECT_THROW(HealthDetector{cfg}, std::invalid_argument);
  cfg = quick_cfg();
  cfg.latency_threshold = 1.0;  // 1.0 == the healthy baseline itself
  EXPECT_THROW(HealthDetector{cfg}, std::invalid_argument);
  cfg = quick_cfg();
  cfg.timeout_weight = -0.1;
  EXPECT_THROW(HealthDetector{cfg}, std::invalid_argument);
  cfg = quick_cfg();
  cfg.warmup = 0;
  EXPECT_THROW(HealthDetector{cfg}, std::invalid_argument);
  cfg = quick_cfg();
  cfg.confirm = 0;
  EXPECT_THROW(HealthDetector{cfg}, std::invalid_argument);
  EXPECT_THROW(HealthDetector{quick_cfg()}.observe_latency(-1.0),
               std::invalid_argument);
}

TEST(HealthDetectorTest, NeverSickDuringWarmup) {
  HealthDetector d(quick_cfg());
  // Wildly bad observations during warmup must not trip the detector: it
  // does not yet know what healthy means.
  d.observe_latency(1000.0);
  d.observe_timeout();
  d.observe_latency(5000.0);
  EXPECT_FALSE(d.sick());
  EXPECT_FALSE(d.warmed_up());
  EXPECT_DOUBLE_EQ(d.baseline_us(), 0.0);
  EXPECT_DOUBLE_EQ(d.latency_score(), 0.0);
}

TEST(HealthDetectorTest, BaselineIsWarmupMeanAndFreezes) {
  HealthDetector d(quick_cfg());
  d.observe_latency(4.0);
  d.observe_latency(6.0);
  d.observe_latency(5.0);
  d.observe_latency(5.0);
  EXPECT_TRUE(d.warmed_up());
  EXPECT_DOUBLE_EQ(d.baseline_us(), 5.0);
  // Post-warmup observations move the EWMA, never the baseline.
  warm_up(d, 50.0, 10);
  EXPECT_DOUBLE_EQ(d.baseline_us(), 5.0);
}

TEST(HealthDetectorTest, HealthyTrafficStaysHealthy) {
  HealthDetector d(quick_cfg());
  warm_up(d, 5.0, 200);
  EXPECT_FALSE(d.sick());
  EXPECT_NEAR(d.score(), 1.0, 1e-9);  // exactly at baseline
  EXPECT_EQ(d.observations(), 200u);
}

TEST(HealthDetectorTest, LatencyInflationTripsAfterConfirmStreak) {
  HealthDetector d(quick_cfg());
  warm_up(d, 5.0, 4);
  // 6x inflation: ewma climbs 5 -> 12.5 -> 17.75 -> 21.4 -> ...; the score
  // crosses 3.0 on the second sample, so the confirm=3 streak completes on
  // the fourth -- early enough to beat a 4-timeout failover budget.
  d.observe_latency(30.0);
  EXPECT_FALSE(d.sick());
  d.observe_latency(30.0);
  EXPECT_FALSE(d.sick());
  d.observe_latency(30.0);
  EXPECT_FALSE(d.sick());
  d.observe_latency(30.0);
  EXPECT_TRUE(d.sick());
  EXPECT_FALSE(d.timeout_dominated()) << "no timeouts: the gray signature";
}

TEST(HealthDetectorTest, SingleStraySlowSampleDoesNotTrip) {
  HealthDetector d(quick_cfg());
  warm_up(d, 5.0, 4);
  // One 8x stray: ewma jumps to 15.5 (score 3.1, streak 1), but the next
  // healthy completion decays it back under the threshold and the streak
  // resets before confirm=3 is reached.
  d.observe_latency(40.0);
  EXPECT_FALSE(d.sick());
  warm_up(d, 5.0, 50);
  EXPECT_FALSE(d.sick());
  EXPECT_NEAR(d.score(), 1.0, 0.01);
}

TEST(HealthDetectorTest, ConsecutiveTimeoutsTripTimeoutDominated) {
  HealthDetector d(quick_cfg());
  warm_up(d, 5.0, 4);
  // timeout_score after k timeouts: 10 * (1 - 0.7^k) = 3.0, 5.1, 6.57...
  // and the at-baseline latency EWMA keeps contributing 1.0, so every
  // timeout scores over the threshold: the confirm=3 streak completes on
  // the third -- one observation before a 4-timeout failover budget would
  // fire its walk.
  d.observe_timeout();
  EXPECT_FALSE(d.sick());
  d.observe_timeout();
  EXPECT_FALSE(d.sick());
  d.observe_timeout();
  EXPECT_TRUE(d.sick());
  EXPECT_TRUE(d.timeout_dominated()) << "the dead-path signature";
}

TEST(HealthDetectorTest, SickLatchesUntilReset) {
  HealthDetector d(quick_cfg());
  warm_up(d, 5.0, 4);
  for (int i = 0; i < 4; ++i) d.observe_timeout();
  ASSERT_TRUE(d.sick());
  // A few good completions drop the score but the verdict stays latched:
  // the reaction layer decides when the episode is over, not the score.
  warm_up(d, 5.0, 20);
  EXPECT_TRUE(d.sick());
}

TEST(HealthDetectorTest, SoftResetKeepsBaseline) {
  HealthDetector d(quick_cfg());
  warm_up(d, 5.0, 4);
  for (int i = 0; i < 4; ++i) d.observe_timeout();
  ASSERT_TRUE(d.sick());
  d.soft_reset();
  EXPECT_FALSE(d.sick());
  EXPECT_TRUE(d.warmed_up());
  EXPECT_DOUBLE_EQ(d.baseline_us(), 5.0) << "same lender, new path: the "
                                            "healthy baseline still applies";
  EXPECT_NEAR(d.score(), 1.0, 1e-9);
  // And it can trip again on fresh evidence.
  for (int i = 0; i < 4; ++i) d.observe_timeout();
  EXPECT_TRUE(d.sick());
}

TEST(HealthDetectorTest, ResetForgetsEverything) {
  HealthDetector d(quick_cfg());
  warm_up(d, 5.0, 4);
  for (int i = 0; i < 4; ++i) d.observe_timeout();
  ASSERT_TRUE(d.sick());
  d.reset();
  EXPECT_FALSE(d.sick());
  EXPECT_FALSE(d.warmed_up()) << "a different lender: relearn the baseline";
  EXPECT_DOUBLE_EQ(d.baseline_us(), 0.0);
  // Re-warms against the new target's numbers.
  warm_up(d, 20.0, 4);
  EXPECT_TRUE(d.warmed_up());
  EXPECT_DOUBLE_EQ(d.baseline_us(), 20.0);
}

TEST(HealthDetectorTest, TimeoutsDuringWarmupAreIgnored) {
  HealthDetector d(quick_cfg());
  d.observe_timeout();
  d.observe_timeout();
  EXPECT_DOUBLE_EQ(d.timeout_score(), 0.0);
  warm_up(d, 5.0, 4);
  EXPECT_TRUE(d.warmed_up());
  EXPECT_FALSE(d.sick());
}

TEST(HealthDetectorTest, DeterministicGivenSameObservationSequence) {
  HealthDetector a(quick_cfg());
  HealthDetector b(quick_cfg());
  const auto feed = [](HealthDetector& d) {
    for (int i = 0; i < 50; ++i) {
      if (i % 7 == 3) {
        d.observe_timeout();
      } else {
        d.observe_latency(5.0 + static_cast<double>(i % 5));
      }
    }
  };
  feed(a);
  feed(b);
  EXPECT_EQ(a.sick(), b.sick());
  EXPECT_DOUBLE_EQ(a.score(), b.score());
  EXPECT_DOUBLE_EQ(a.baseline_us(), b.baseline_us());
  EXPECT_EQ(a.observations(), b.observations());
}

}  // namespace
}  // namespace tfsim::ctrl
