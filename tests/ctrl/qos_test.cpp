// Credit QoS, admission control, and the serving controller: weight-
// proportional sharing under saturation, deterministic rejection at credit
// exhaustion, and policy-ranked placement with precomputed failover chains.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ctrl/control_plane.hpp"
#include "ctrl/policy.hpp"
#include "ctrl/qos.hpp"
#include "ctrl/registry.hpp"
#include "ctrl/serving_control.hpp"
#include "sim/units.hpp"

namespace tfsim::ctrl {
namespace {

constexpr std::uint64_t kGiB = tfsim::sim::kGiB;

QosConfig qos_cfg(std::uint64_t capacity) {
  QosConfig cfg;
  cfg.window = sim::from_us(100.0);
  cfg.capacity_per_window = capacity;
  return cfg;
}

TEST(CreditQosTest, CreditsSplitByWeight) {
  CreditQos qos(qos_cfg(100));
  const auto frontend = qos.add_tenant("frontend", 3);
  const auto batch = qos.add_tenant("batch", 1);
  ASSERT_TRUE(qos.try_admit(frontend, 0));  // triggers the window-0 refill
  EXPECT_EQ(qos.credits(frontend), 74u);    // 75 minus the admit above
  EXPECT_EQ(qos.credits(batch), 25u);
}

TEST(CreditQosTest, WeightRatioHoldsUnderSaturation) {
  // Both tenants offer far more than their share every window; the admitted
  // ratio must track the 3:1 weights within 5% (the ISSUE acceptance band;
  // integer credit split makes it exact here).
  CreditQos qos(qos_cfg(100));
  const auto frontend = qos.add_tenant("frontend", 3);
  const auto batch = qos.add_tenant("batch", 1);
  const sim::Time window = sim::from_us(100.0);
  for (std::uint64_t w = 0; w < 50; ++w) {
    const sim::Time now = w * window;
    for (int i = 0; i < 200; ++i) {
      qos.try_admit(frontend, now);
      qos.try_admit(batch, now);
    }
  }
  const auto& stats = qos.tenants();
  ASSERT_EQ(stats.size(), 2u);
  const double ratio = static_cast<double>(stats[frontend].admitted) /
                       static_cast<double>(stats[batch].admitted);
  EXPECT_NEAR(ratio, 3.0, 3.0 * 0.05);
  EXPECT_EQ(stats[frontend].admitted + stats[batch].admitted, 50u * 100u)
      << "saturated: every window's full capacity is spent";
  EXPECT_GT(stats[frontend].rejected, 0u);
  EXPECT_GT(stats[batch].rejected, 0u);
}

TEST(CreditQosTest, RejectionAtExhaustionIsDeterministic) {
  const auto run = [] {
    CreditQos qos(qos_cfg(10));
    const auto a = qos.add_tenant("a", 1);
    qos.add_tenant("b", 1);
    std::vector<bool> verdicts;
    for (int i = 0; i < 8; ++i) verdicts.push_back(qos.try_admit(a, 0));
    return verdicts;
  };
  const auto first = run();
  EXPECT_EQ(first, run()) << "same call sequence, same verdicts";
  // 10 credits split 1:1 = 5 for tenant a; the 6th call must refuse.
  EXPECT_EQ(first, (std::vector<bool>{true, true, true, true, true, false,
                                      false, false}));
}

TEST(CreditQosTest, RefillHappensAtWindowBoundary) {
  CreditQos qos(qos_cfg(4));
  const auto a = qos.add_tenant("a", 1);
  const sim::Time window = sim::from_us(100.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(qos.try_admit(a, 0));
  EXPECT_FALSE(qos.try_admit(a, window - 1)) << "still the same window";
  EXPECT_TRUE(qos.try_admit(a, window)) << "fresh credits at the boundary";
}

TEST(CreditQosTest, RemainderCreditsGoInTenantIndexOrder) {
  CreditQos qos(qos_cfg(10));
  const auto a = qos.add_tenant("a", 1);
  const auto b = qos.add_tenant("b", 1);
  const auto c = qos.add_tenant("c", 1);
  ASSERT_TRUE(qos.try_admit(a, 0));
  // 10 / 3 = 3 each, remainder 1 deterministically lands on tenant 0.
  EXPECT_EQ(qos.credits(a), 3u);  // 4 minus the admit above
  EXPECT_EQ(qos.credits(b), 3u);
  EXPECT_EQ(qos.credits(c), 3u);
}

// --- admission + serving controller -------------------------------------

NodeRegistry serving_registry() {
  NodeRegistry reg;
  reg.add_node("borrower", 512 * kGiB);  // id 0
  reg.add_node("lender-a", 512 * kGiB);  // id 1
  reg.add_node("lender-b", 512 * kGiB);  // id 2
  reg.add_node("lender-c", 512 * kGiB);  // id 3
  reg.set_role(0, Role::kBorrower);
  reg.set_role(1, Role::kLender);
  reg.set_role(2, Role::kLender);
  reg.set_role(3, Role::kLender);
  return reg;
}

TEST(AdmissionControllerTest, BooksRescindsAndRefusesOverCommit) {
  auto reg = serving_registry();
  AdmissionConfig cfg;
  cfg.lender_capacity_rps = 1e6;
  AdmissionController adm(cfg);
  EXPECT_TRUE(adm.can_admit(reg, 1, 6e5, kGiB));
  adm.commit(1, 6e5);
  EXPECT_DOUBLE_EQ(adm.committed_rps(1), 6e5);
  EXPECT_DOUBLE_EQ(adm.headroom_rps(1), 4e5);
  EXPECT_FALSE(adm.can_admit(reg, 1, 6e5, kGiB)) << "rate headroom exhausted";
  EXPECT_TRUE(adm.can_admit(reg, 1, 4e5, kGiB));
  adm.rescind(1);
  EXPECT_TRUE(adm.can_admit(reg, 1, 6e5, kGiB)) << "dead lender's rate freed";
  EXPECT_FALSE(adm.can_admit(reg, 1, 1e5, 2048 * kGiB))
      << "byte headroom also gates admission";
}

ServingConfig serving_cfg(double capacity_rps, std::uint32_t depth) {
  ServingConfig cfg;
  cfg.admission.lender_capacity_rps = capacity_rps;
  cfg.failover_depth = depth;
  return cfg;
}

TenantSpec tenant(const std::string& name, double rate) {
  TenantSpec t;
  t.name = name;
  t.weight = 1;
  t.rate_rps = rate;
  t.bytes = kGiB;
  return t;
}

TEST(ServingControllerTest, PlacementComesWithFailoverChain) {
  auto reg = serving_registry();
  ServingController sc(reg, std::make_unique<FirstFitPolicy>(),
                       serving_cfg(1e6, 2));
  const auto p = sc.admit_tenant(tenant("frontend", 5e5), 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->primary, 1u) << "first-fit picks the lowest lender id";
  EXPECT_EQ(p->failover, (std::vector<std::uint32_t>{2, 3}))
      << "chain is policy-ranked with the primary excluded";
  EXPECT_DOUBLE_EQ(sc.admission().committed_rps(1), 5e5);
  EXPECT_EQ(sc.placements().size(), 1u);
}

TEST(ServingControllerTest, RejectionAtCreditExhaustionIsDeterministic) {
  const auto run = [] {
    auto reg = serving_registry();
    ServingController sc(reg, std::make_unique<FirstFitPolicy>(),
                         serving_cfg(1e6, 1));
    std::vector<bool> admitted;
    // Each tenant wants 70% of one lender: three fit (one per lender),
    // the fourth finds no lender with rate headroom anywhere.
    for (int i = 0; i < 5; ++i) {
      admitted.push_back(
          sc.admit_tenant(tenant("t" + std::to_string(i), 7e5), 0)
              .has_value());
    }
    return admitted;
  };
  const auto first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first, (std::vector<bool>{true, true, true, false, false}));
}

TEST(ServingControllerTest, RecordFailoverRebooksRate) {
  auto reg = serving_registry();
  ServingController sc(reg, std::make_unique<FirstFitPolicy>(),
                       serving_cfg(1e6, 2));
  const auto spec = tenant("frontend", 5e5);
  const auto p = sc.admit_tenant(spec, 0);
  ASSERT_TRUE(p.has_value());
  sc.record_failover(spec, p->primary, p->failover.front());
  EXPECT_DOUBLE_EQ(sc.admission().committed_rps(p->primary), 0.0);
  EXPECT_DOUBLE_EQ(sc.admission().committed_rps(p->failover.front()), 5e5);
}

TEST(SloAwarePolicyTest, PrefersLowTailProxy) {
  auto reg = serving_registry();
  // lender-a: saturated memory bus; lender-b: heavily lent out;
  // lender-c: quiet.  The tail proxy must pick the quiet one.
  reg.report_load(1, 0, 0, 0.9);
  reg.node(2).lent_out = 400 * kGiB;
  SloAwarePolicy p;
  EXPECT_EQ(p.pick(reg, 0, kGiB, {1, 2, 3}), 3u);
}

TEST(SloAwarePolicyTest, TiesBreakToLowestId) {
  auto reg = serving_registry();
  SloAwarePolicy p;
  EXPECT_EQ(p.pick(reg, 0, kGiB, {2, 3}), 2u);
  EXPECT_FALSE(p.pick(reg, 0, kGiB, {}).has_value());
}

// --- reactive re-placement (registry-level migrate) ----------------------

TEST(ControlPlaneTest, MigrateRetargetsReservationOffDeadLender) {
  auto reg = serving_registry();
  ControlPlane cp(reg, std::make_unique<FirstFitPolicy>());
  const auto r = cp.reserve(0, 16 * kGiB, "serving");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lender, 1u);
  const auto moved = cp.migrate(r->id, /*exclude=*/1, nullptr, nullptr);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(*moved, 2u) << "first-fit among the survivors";
  EXPECT_EQ(reg.node(1).lent_out, 0u) << "dead lender's booking released";
  EXPECT_EQ(reg.node(2).lent_out, 16 * kGiB);
  ASSERT_NE(cp.find(r->id), nullptr);
  EXPECT_EQ(cp.find(r->id)->lender, 2u);
}

}  // namespace
}  // namespace tfsim::ctrl
