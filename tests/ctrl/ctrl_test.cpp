#include <gtest/gtest.h>

#include "ctrl/control_plane.hpp"
#include "ctrl/policy.hpp"
#include "ctrl/registry.hpp"
#include "node/testbed.hpp"

namespace tfsim::ctrl {
namespace {

constexpr std::uint64_t kGiB = tfsim::sim::kGiB;

NodeRegistry make_registry() {
  NodeRegistry reg;
  reg.add_node("borrower", 512 * kGiB);   // id 0
  reg.add_node("lender-a", 512 * kGiB);   // id 1
  reg.add_node("lender-b", 256 * kGiB);   // id 2
  reg.add_node("lender-c", 512 * kGiB);   // id 3
  reg.set_role(0, Role::kBorrower);
  reg.set_role(1, Role::kLender);
  reg.set_role(2, Role::kLender);
  reg.set_role(3, Role::kLender);
  return reg;
}

TEST(RegistryTest, RolesAndLendable) {
  auto reg = make_registry();
  EXPECT_EQ(reg.node(0).role, Role::kBorrower);
  EXPECT_EQ(reg.node(1).lendable(0), 512 * kGiB);
  reg.report_load(1, 100 * kGiB, 3, 0.5);
  EXPECT_EQ(reg.node(1).lendable(0), 412 * kGiB);
  EXPECT_EQ(reg.node(1).lendable(12 * kGiB), 400 * kGiB);
  EXPECT_EQ(reg.node(1).running_apps, 3u);
  // Over-committed: lendable clamps to zero.
  reg.report_load(2, 300 * kGiB, 0, 0.0);
  EXPECT_EQ(reg.node(2).lendable(0), 0u);
}

TEST(RegistryTest, LenderCandidatesFilter) {
  auto reg = make_registry();
  reg.report_load(2, 250 * kGiB, 0, 0.0);
  const auto cands = reg.lender_candidates(100 * kGiB, 4 * kGiB);
  EXPECT_EQ(cands, (std::vector<std::uint32_t>{1, 3}))
      << "borrower and full lender excluded";
}

TEST(RegistryTest, BadIdThrows) {
  auto reg = make_registry();
  EXPECT_THROW(reg.node(42), std::out_of_range);
}

TEST(PolicyTest, FirstFitPicksLowestId) {
  auto reg = make_registry();
  FirstFitPolicy p;
  EXPECT_EQ(p.pick(reg, 0, kGiB, {3, 1, 2}), 1u);
  EXPECT_FALSE(p.pick(reg, 0, kGiB, {}).has_value());
}

TEST(PolicyTest, MostFreePicksLargest) {
  auto reg = make_registry();
  reg.report_load(1, 400 * kGiB, 0, 0.0);
  MostFreePolicy p;
  EXPECT_EQ(p.pick(reg, 0, kGiB, {1, 2, 3}), 3u);
}

TEST(PolicyTest, IdlePreferringAvoidsBusyLenders) {
  auto reg = make_registry();
  reg.report_load(1, 0, 10, 0.2);
  reg.report_load(3, 0, 0, 0.2);
  IdlePreferringPolicy p;
  EXPECT_EQ(p.pick(reg, 0, kGiB, {1, 3}), 3u);
}

TEST(PolicyTest, ContentionAwareIgnoresAppCountButCapsBusUtilization) {
  auto reg = make_registry();
  // Paper insight: many running apps is fine; only a saturated bus matters.
  reg.report_load(1, 0, 50, 0.5);   // busy apps, healthy bus
  reg.report_load(3, 0, 0, 0.97);   // idle apps, saturated bus
  ContentionAwarePolicy p(0.9);
  EXPECT_EQ(p.pick(reg, 0, kGiB, {1, 3}), 1u)
      << "must pick the app-busy lender over the bus-saturated one";
  reg.report_load(1, 0, 0, 0.95);
  EXPECT_FALSE(p.pick(reg, 0, kGiB, {1, 3}).has_value())
      << "all buses saturated";
}

TEST(PolicyTest, FactoryKnowsAllNames) {
  for (const char* name :
       {"first-fit", "most-free", "idle-preferring", "contention-aware",
        "slo-aware"}) {
    EXPECT_EQ(make_policy(name)->name(), name);
  }
  EXPECT_THROW(make_policy("round-robin"), std::invalid_argument);
}

// --- control plane -----------------------------------------------------

TEST(ControlPlaneTest, ReserveBooksLenderMemory) {
  auto reg = make_registry();
  ControlPlane cp(reg, std::make_unique<FirstFitPolicy>());
  const auto r = cp.reserve(0, 16 * kGiB, "r1");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lender, 1u);
  EXPECT_EQ(reg.node(1).lent_out, 16 * kGiB);
  const auto r2 = cp.reserve(0, 16 * kGiB, "r2");
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->lender_base, 16 * kGiB) << "donated space grows linearly";
}

TEST(ControlPlaneTest, NeverLendsToSelf) {
  NodeRegistry reg;
  reg.add_node("only", 512 * kGiB);
  reg.set_role(0, Role::kLender);
  ControlPlane cp(reg, std::make_unique<FirstFitPolicy>());
  EXPECT_FALSE(cp.reserve(0, kGiB, "self").has_value());
}

TEST(ControlPlaneTest, ReleaseReturnsMemory) {
  auto reg = make_registry();
  ControlPlane cp(reg, std::make_unique<FirstFitPolicy>());
  const auto r = cp.reserve(0, 16 * kGiB, "r1");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(cp.release(r->id, nullptr, nullptr));
  EXPECT_EQ(reg.node(1).lent_out, 0u);
  EXPECT_FALSE(cp.release(r->id, nullptr, nullptr));
}

TEST(ControlPlaneTest, AttachProgramsNicAndMap) {
  // Full lifecycle on a real testbed.
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  const auto base = tb.remote_base();
  const auto* region = tb.borrower().memory_map().find(base);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->backing, mem::Backing::kRemoteDram);
  const auto x = tb.borrower().nic().translator().translate(base + 4096);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(x->lender_addr, 4096u);
}

TEST(ControlPlaneTest, AttachFailsWhenDeviceTimesOut) {
  node::Testbed tb;
  tb.set_period(10000);  // beyond the FPGA detection deadline
  EXPECT_FALSE(tb.attach_remote());
  EXPECT_FALSE(tb.remote_attached());
}

TEST(ControlPlaneTest, ReservationTooLargeFails) {
  auto reg = make_registry();
  ControlPlane cp(reg, std::make_unique<FirstFitPolicy>());
  EXPECT_FALSE(cp.reserve(0, 1024 * kGiB, "huge").has_value());
  EXPECT_FALSE(cp.reserve(0, 0, "empty").has_value());
}

TEST(ControlPlaneTest, FindLocatesReservation) {
  auto reg = make_registry();
  ControlPlane cp(reg, std::make_unique<FirstFitPolicy>());
  const auto r = cp.reserve(0, kGiB, "r1");
  ASSERT_TRUE(r.has_value());
  ASSERT_NE(cp.find(r->id), nullptr);
  EXPECT_EQ(cp.find(r->id)->name, "r1");
  EXPECT_EQ(cp.find(9999), nullptr);
}

}  // namespace
}  // namespace tfsim::ctrl
