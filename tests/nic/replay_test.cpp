#include <gtest/gtest.h>

#include <memory>

#include "mem/dram.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "nic/nic.hpp"
#include "nic/replay.hpp"
#include "nic/timeout.hpp"
#include "nic/translator.hpp"

namespace tfsim::nic {
namespace {

// --- replay window timing policy -------------------------------------------

TEST(ReplayWindowTest, ExponentialBackoffLadder) {
  ReplayConfig cfg;
  cfg.retry_timeout = 100;
  cfg.backoff = 2.0;
  ReplayWindow w(cfg);
  EXPECT_EQ(w.retry_at(1000, 0), 1100u);
  EXPECT_EQ(w.retry_at(1000, 1), 1200u);
  EXPECT_EQ(w.retry_at(1000, 2), 1400u);
  EXPECT_EQ(w.retry_at(1000, 3), 1800u);
}

TEST(ReplayWindowTest, UnitBackoffIsFlat) {
  ReplayConfig cfg;
  cfg.retry_timeout = 50;
  cfg.backoff = 1.0;
  ReplayWindow w(cfg);
  EXPECT_EQ(w.retry_at(0, 0), 50u);
  EXPECT_EQ(w.retry_at(0, 7), 50u) << "no growth at backoff 1";
}

TEST(ReplayWindowTest, SaturatesInsteadOfWrapping) {
  ReplayWindow w(ReplayConfig{});
  EXPECT_EQ(w.retry_at(0, 500), sim::kTimeNever)
      << "2^500 timeouts must saturate, not wrap";
  EXPECT_EQ(w.retry_at(sim::kTimeNever - 1, 0), sim::kTimeNever);
}

TEST(ReplayWindowTest, ConfigValidation) {
  ReplayConfig bad;
  bad.retry_timeout = 0;
  EXPECT_THROW(ReplayWindow{bad}, std::invalid_argument);
  bad.retry_timeout = 100;
  bad.backoff = 0.5;
  EXPECT_THROW(ReplayWindow{bad}, std::invalid_argument);
}

TEST(ReplayWindowTest, StatsCountAndReset) {
  ReplayWindow w(ReplayConfig{});
  w.count_retry();
  w.count_retry();
  w.count_abandoned();
  w.count_crc_drop();
  w.count_frame_lost();
  w.count_recovered();
  EXPECT_EQ(w.retries(), 2u);
  EXPECT_EQ(w.abandoned(), 1u);
  EXPECT_EQ(w.crc_drops(), 1u);
  EXPECT_EQ(w.frames_lost(), 1u);
  EXPECT_EQ(w.recovered(), 1u);
  w.reset_stats();
  EXPECT_EQ(w.retries() + w.abandoned() + w.crc_drops() + w.frames_lost() +
                w.recovered(),
            0u);
}

// --- timeout detector saturation -------------------------------------------

TEST(TimeoutTest, HugePeriodSaturatesInsteadOfWrapping) {
  // discovery_reads x period x tclk overflows uint64 for absurd sweep
  // points; the probe must read "never detected", not a bogus small time.
  TimeoutDetector det;
  const sim::Time tclk = sim::clock_period(320e6);
  const auto p = det.probe(~std::uint64_t{0}, tclk);
  EXPECT_FALSE(p.detected);
  EXPECT_EQ(p.discovery_time, sim::kTimeNever);
  const auto q = det.probe(std::uint64_t{1} << 60, tclk);
  EXPECT_FALSE(q.detected);
  EXPECT_EQ(q.discovery_time, sim::kTimeNever);
}

// --- NIC retry path over a faulty fabric -----------------------------------

struct FaultyNicFixture {
  net::Network network;
  net::NodeId self, lender_node;
  mem::Dram lender_dram{mem::DramConfig{}};
  std::unique_ptr<DisaggNic> nic;

  explicit FaultyNicFixture(const net::FaultConfig& faults,
                            std::uint32_t max_retries = 8,
                            std::uint32_t detach_threshold = 4) {
    self = network.add_node("borrower");
    lender_node = network.add_node("lender");
    network.connect(self, lender_node, net::LinkConfig{});
    network.connect(lender_node, self, net::LinkConfig{});
    if (faults.enabled()) network.enable_faults(faults);
    NicConfig cfg;
    cfg.replay.retry_timeout = sim::from_us(5.0);
    cfg.replay.max_retries = max_retries;
    cfg.replay.detach_threshold = detach_threshold;
    nic = std::make_unique<DisaggNic>(cfg, network, self);
    nic->register_lender(7, lender_node, &lender_dram);
    nic->translator().add_segment(
        Segment{mem::Range{0x1000'0000, 16 * sim::kMiB}, 0, 7, "seg"});
    nic->attach();
  }
};

TEST(NicReplayTest, PristinePathNeedsNoRetries) {
  FaultyNicFixture f(net::FaultConfig{});
  const auto t = f.nic->remote_access(0, 0x1000'0000, false);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->retries, 0u);
  EXPECT_EQ(f.nic->replay().retries(), 0u);
  EXPECT_EQ(f.nic->replay().recovered(), 0u);
  f.nic->check_quiesced();
}

TEST(NicReplayTest, TotalLossAbandonsAfterBoundedRetries) {
  net::FaultConfig faults;
  faults.loss_rate = 1.0;
  FaultyNicFixture f(faults, /*max_retries=*/2);
  EXPECT_FALSE(f.nic->remote_access(0, 0x1000'0000, false).has_value());
  const auto& r = f.nic->replay();
  EXPECT_EQ(r.abandoned(), 1u);
  EXPECT_EQ(r.retries(), 2u) << "initial attempt + 2 retransmissions";
  EXPECT_EQ(r.frames_lost(), 3u) << "every attempt lost a frame";
  EXPECT_EQ(r.frames_lost() + r.crc_drops(), r.retries() + r.abandoned());
  EXPECT_EQ(f.nic->failures(), 1u);
  // The abandonment reclaimed its tag and credit.
  f.nic->check_quiesced();
  EXPECT_EQ(f.nic->credits().available(), f.nic->credits().total());
}

TEST(NicReplayTest, TotalCorruptionCountsCrcDrops) {
  net::FaultConfig faults;
  faults.corrupt_rate = 1.0;
  FaultyNicFixture f(faults, /*max_retries=*/1);
  EXPECT_FALSE(f.nic->remote_access(0, 0x1000'0000, false).has_value());
  const auto& r = f.nic->replay();
  EXPECT_EQ(r.crc_drops(), 2u);
  EXPECT_EQ(r.frames_lost(), 0u);
  EXPECT_EQ(r.abandoned(), 1u);
  EXPECT_EQ(r.retries(), 1u);
  f.nic->check_quiesced();
}

TEST(NicReplayTest, FlapRecoveryCostsOneTimerInterval) {
  // A hard-down flap covers the first attempt; the retransmission timer
  // (5 us) expires outside the window and the retry completes.  Loss turns
  // into latency -- deterministically, since the flap is scheduled.
  net::FaultConfig faults;
  faults.flaps.push_back(
      net::FlapSpec{0, sim::from_us(3.0), 0.0});
  FaultyNicFixture f(faults);
  const auto t = f.nic->remote_access(0, 0x1000'0000, false);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->retries, 1u);
  const auto& r = f.nic->replay();
  EXPECT_EQ(r.frames_lost(), 1u);
  EXPECT_EQ(r.retries(), 1u);
  EXPECT_EQ(r.recovered(), 1u);
  EXPECT_EQ(r.abandoned(), 0u);
  // The access paid the full retry timeout before the second attempt.
  EXPECT_GT(t->completion - t->issued, sim::from_us(5.0));
  EXPECT_LT(t->completion - t->issued, sim::from_us(10.0));
  f.nic->check_quiesced();
}

TEST(NicReplayTest, ModerateLossRecoversEveryAccess) {
  net::FaultConfig faults;
  faults.loss_rate = 0.2;
  faults.seed = 11;
  FaultyNicFixture f(faults);
  sim::Time now = 0;
  std::uint64_t completed = 0;
  for (int i = 0; i < 200; ++i) {
    const auto t =
        f.nic->remote_access(now, 0x1000'0000 + (i % 512) * 128u, i % 4 == 3);
    if (t.has_value()) {
      ++completed;
      now = t->completion;
    } else {
      now += sim::from_ms(1.0);
    }
  }
  const auto& r = f.nic->replay();
  EXPECT_EQ(completed + f.nic->failures(), 200u) << "no access vanished";
  EXPECT_GT(r.retries(), 0u);
  EXPECT_GT(r.recovered(), 0u);
  // The replay ledger balances: every failed attempt became a retry or a
  // counted abandonment -- the zero-hung-transactions invariant.
  EXPECT_EQ(r.frames_lost() + r.crc_drops(), r.retries() + r.abandoned());
  f.nic->check_quiesced();
}

TEST(NicReplayTest, LenderDownAccessorsAndValidation) {
  FaultyNicFixture f(net::FaultConfig{});
  EXPECT_THROW(f.nic->set_lender_down(99, 0), std::invalid_argument);
  f.nic->set_lender_down(7, 1000);
  EXPECT_FALSE(f.nic->lender_down(7, 999));
  EXPECT_TRUE(f.nic->lender_down(7, 1000));
  EXPECT_TRUE(f.nic->lender_down(7, 5000));
}

TEST(NicReplayTest, DeadLenderDetachesAfterConsecutiveAbandonments) {
  FaultyNicFixture f(net::FaultConfig{}, /*max_retries=*/1,
                     /*detach_threshold=*/2);
  f.nic->set_lender_down(7, 0);

  // First abandoned access: retried, abandoned, lender still mapped.
  EXPECT_FALSE(f.nic->remote_access(0, 0x1000'0000, false).has_value());
  EXPECT_EQ(f.nic->replay().abandoned(), 1u);
  EXPECT_EQ(f.nic->detached_lenders(), 0u);
  EXPECT_TRUE(f.nic->translator().translate(0x1000'0000).has_value());

  // Second consecutive abandonment crosses the threshold: graceful detach,
  // segments unmapped.
  EXPECT_FALSE(
      f.nic->remote_access(sim::from_ms(1.0), 0x1000'0000, false).has_value());
  EXPECT_EQ(f.nic->replay().abandoned(), 2u);
  EXPECT_EQ(f.nic->detached_lenders(), 1u);
  EXPECT_FALSE(f.nic->translator().translate(0x1000'0000).has_value())
      << "detach unmaps the dead lender's segments";

  // Later accesses fail fast: no fresh retry ladder into the black hole.
  const auto retries_before = f.nic->replay().retries();
  EXPECT_FALSE(
      f.nic->remote_access(sim::from_ms(2.0), 0x1000'0000, false).has_value());
  EXPECT_EQ(f.nic->replay().retries(), retries_before);
  EXPECT_EQ(f.nic->replay().abandoned(), 2u);
  EXPECT_EQ(f.nic->failures(), 3u);
  f.nic->check_quiesced();
}

TEST(NicReplayTest, SuccessResetsConsecutiveAbandonCount) {
  // A lender that dies *later* must not inherit abandonment credit from
  // earlier recovered turbulence: the counter tracks consecutive failures.
  net::FaultConfig faults;
  faults.flaps.push_back(net::FlapSpec{0, sim::from_us(3.0), 0.0});
  FaultyNicFixture f(faults, /*max_retries=*/1, /*detach_threshold=*/2);
  // Recovers via retry (flap covers only the first attempt).
  ASSERT_TRUE(f.nic->remote_access(0, 0x1000'0000, false).has_value());
  // Now kill the lender; it takes the full threshold to detach.
  f.nic->set_lender_down(7, sim::from_ms(1.0));
  EXPECT_FALSE(
      f.nic->remote_access(sim::from_ms(1.0), 0x1000'0000, false).has_value());
  EXPECT_EQ(f.nic->detached_lenders(), 0u) << "one abandonment is not enough";
  EXPECT_FALSE(
      f.nic->remote_access(sim::from_ms(2.0), 0x1000'0000, false).has_value());
  EXPECT_EQ(f.nic->detached_lenders(), 1u);
  f.nic->check_quiesced();
}

TEST(NicReplayTest, ResetStatsClearsReplayCounters) {
  net::FaultConfig faults;
  faults.loss_rate = 1.0;
  FaultyNicFixture f(faults, /*max_retries=*/1);
  EXPECT_FALSE(f.nic->remote_access(0, 0x1000'0000, false).has_value());
  EXPECT_GT(f.nic->replay().frames_lost(), 0u);
  f.nic->reset_stats();
  EXPECT_EQ(f.nic->replay().frames_lost(), 0u);
  EXPECT_EQ(f.nic->replay().retries(), 0u);
  EXPECT_EQ(f.nic->replay().abandoned(), 0u);
}

}  // namespace
}  // namespace tfsim::nic
