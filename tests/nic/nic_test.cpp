#include <gtest/gtest.h>

#include "mem/dram.hpp"
#include "net/network.hpp"
#include "nic/injector.hpp"
#include "nic/nic.hpp"
#include "nic/timeout.hpp"
#include "nic/translator.hpp"
#include "nic/window.hpp"

namespace tfsim::nic {
namespace {

// --- translator ----------------------------------------------------------

TEST(TranslatorTest, SegmentMapping) {
  AddressTranslator t;
  t.add_segment(Segment{mem::Range{0x1000, 0x1000}, 0x9000, 3, "seg0"});
  const auto x = t.translate(0x1800);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(x->lender_id, 3u);
  EXPECT_EQ(x->lender_addr, 0x9800u);
  EXPECT_FALSE(t.translate(0x0FFF).has_value());
  EXPECT_FALSE(t.translate(0x2000).has_value());
  EXPECT_EQ(t.mapped_bytes(), 0x1000u);
}

TEST(TranslatorTest, MultipleSegmentsAndRemoval) {
  AddressTranslator t;
  t.add_segment(Segment{mem::Range{0x10000, 0x1000}, 0, 1, "a"});
  t.add_segment(Segment{mem::Range{0x20000, 0x1000}, 0x1000, 2, "b"});
  EXPECT_EQ(t.translate(0x20010)->lender_id, 2u);
  EXPECT_TRUE(t.remove_segment("a"));
  EXPECT_FALSE(t.translate(0x10000).has_value());
  EXPECT_FALSE(t.remove_segment("a"));
}

TEST(TranslatorTest, OverlapRejected) {
  AddressTranslator t;
  t.add_segment(Segment{mem::Range{0x1000, 0x1000}, 0, 1, "a"});
  EXPECT_THROW(
      t.add_segment(Segment{mem::Range{0x1800, 0x1000}, 0, 1, "b"}),
      std::invalid_argument);
}

// --- request window --------------------------------------------------------

TEST(WindowTest, AdmitsImmediatelyWhenNotFull) {
  RequestWindow w(2);
  EXPECT_EQ(w.admission_time(100), 100u);
  w.record_completion(500);
  EXPECT_EQ(w.admission_time(200), 200u);
  w.record_completion(600);
  EXPECT_EQ(w.in_flight(), 2u);
}

TEST(WindowTest, FullWindowWaitsForOldest) {
  RequestWindow w(2);
  w.record_completion(500);
  w.record_completion(600);
  EXPECT_EQ(w.admission_time(100), 500u) << "wait for the oldest completion";
  EXPECT_EQ(w.stalls(), 1u);
  w.record_completion(700);
  EXPECT_EQ(w.in_flight(), 2u) << "oldest retired on overflow push";
}

TEST(WindowTest, RetiresCompletedEntries) {
  RequestWindow w(2);
  w.record_completion(500);
  w.record_completion(600);
  EXPECT_EQ(w.admission_time(650), 650u) << "both retired by now";
  EXPECT_EQ(w.in_flight(), 0u);
}

TEST(WindowTest, OutOfOrderCompletionsRetireCorrectly) {
  // QoS classes let later requests complete earlier; the window must always
  // free slots in completion order, not admission order.
  RequestWindow w(2);
  w.record_completion(900);
  w.record_completion(400);  // overtakes the first
  EXPECT_EQ(w.admission_time(100), 400u) << "earliest completion frees first";
  // That grant consumed the 400 slot; only the 900 entry remains.
  w.record_completion(500);
  EXPECT_EQ(w.admission_time(450), 500u)
      << "grant waits for the earliest remaining completion";
  EXPECT_EQ(w.in_flight(), 1u) << "only the 900 entry left";
}

TEST(WindowTest, LatencyReservationProtectsSensitiveClass) {
  RequestWindow w(4, /*latency_reserved=*/2);
  // Bulk may only hold 2 of the 4 slots.
  EXPECT_EQ(w.admission_time(0, sim::Priority::kBulk), 0u);
  w.record_completion(1000, sim::Priority::kBulk);
  EXPECT_EQ(w.admission_time(0, sim::Priority::kBulk), 0u);
  w.record_completion(1100, sim::Priority::kBulk);
  EXPECT_EQ(w.admission_time(0, sim::Priority::kBulk), 1000u)
      << "bulk capacity exhausted";
  w.record_completion(1200, sim::Priority::kBulk);
  // The latency class still gets in immediately.
  EXPECT_EQ(w.admission_time(0, sim::Priority::kLatency), 0u);
  w.record_completion(900, sim::Priority::kLatency);
  EXPECT_EQ(w.in_flight(), 3u);
}

TEST(WindowTest, ReservationMustLeaveBulkCapacity) {
  EXPECT_THROW(RequestWindow(4, 4), std::invalid_argument);
  EXPECT_THROW(RequestWindow(4, 5), std::invalid_argument);
  RequestWindow ok(4, 3);  // fine
  EXPECT_EQ(ok.latency_reserved(), 3u);
}

TEST(WindowTest, ZeroEntriesRejected) {
  EXPECT_THROW(RequestWindow(0), std::invalid_argument);
}

TEST(WindowTest, LatencyClassBorrowsBulkCapacity) {
  // The reservation is a floor for the latency class, not a ceiling: with
  // 1 of 4 slots reserved, latency traffic may occupy the entire window.
  RequestWindow w(4, /*latency_reserved=*/1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(w.admission_time(0, sim::Priority::kLatency), 0u) << "slot " << i;
    w.record_completion(1000 + static_cast<sim::Time>(i) * 100,
                        sim::Priority::kLatency);
  }
  EXPECT_EQ(w.in_flight(), 4u) << "latency filled every slot";
  // The window is now full for *both* classes.  Bulk holds zero of its
  // 3-slot budget, yet must still wait: no free entries exist.
  EXPECT_EQ(w.admission_time(0, sim::Priority::kBulk), 1000u)
      << "bulk waits for the earliest completion even under its cap";
  EXPECT_EQ(w.stalls(), 1u);
}

TEST(WindowTest, FullWindowVictimIsEarliestAcrossClasses) {
  // When the whole window is occupied, the granted slot is the earliest
  // completion across *both* multisets -- with out-of-order completions
  // interleaved between the classes.
  RequestWindow w(3, /*latency_reserved=*/1);
  EXPECT_EQ(w.admission_time(0, sim::Priority::kBulk), 0u);
  w.record_completion(900, sim::Priority::kBulk);
  EXPECT_EQ(w.admission_time(0, sim::Priority::kBulk), 0u);
  w.record_completion(400, sim::Priority::kBulk);  // overtakes the first
  EXPECT_EQ(w.admission_time(0, sim::Priority::kLatency), 0u);
  w.record_completion(650, sim::Priority::kLatency);
  // Full: bulk {400, 900}, latency {650}.  Earliest is the bulk 400 entry.
  EXPECT_EQ(w.admission_time(100, sim::Priority::kLatency), 400u)
      << "victim chosen across classes, not within the caller's own";
  w.record_completion(700, sim::Priority::kLatency);
  // Full again: bulk {900}, latency {650, 700}.  Bulk is under its 2-slot
  // cap, but the window is full; the earliest entry is now in latency.
  EXPECT_EQ(w.admission_time(450, sim::Priority::kBulk), 650u)
      << "a bulk arrival may victimize the latency multiset";
  w.record_completion(800, sim::Priority::kBulk);
  EXPECT_EQ(w.in_flight(), 3u);
  EXPECT_EQ(w.stalls(), 2u);
}

// Regression: occupancy used to be sampled only after insertion in
// record_completion, never after retirement, so drained states were
// invisible and the mean was biased upward.  Known schedule:
//   admit@0   -> retire none, sample 0; complete@100 -> sample 1
//   admit@50  -> retire none, sample 1; complete@150 -> sample 2
//   admit@200 -> retire both, sample 0; complete@300 -> sample 1
TEST(WindowTest, OccupancySampledOnAdmissionAndCompletion) {
  RequestWindow w(4);
  EXPECT_EQ(w.admission_time(0), 0u);
  w.record_completion(100);
  EXPECT_EQ(w.admission_time(50), 50u);
  w.record_completion(150);
  EXPECT_EQ(w.admission_time(200), 200u);
  w.record_completion(300);
  const auto& occ = w.occupancy_stats();
  EXPECT_EQ(occ.count(), 6u);
  EXPECT_DOUBLE_EQ(occ.mean(), (0.0 + 1 + 1 + 2 + 0 + 1) / 6.0);
  EXPECT_DOUBLE_EQ(occ.min(), 0.0);
  EXPECT_DOUBLE_EQ(occ.max(), 2.0);
}

// --- timeout detector ------------------------------------------------------

TEST(TimeoutTest, Fig4Cliff) {
  TimeoutDetector det;  // defaults: 129 reads, 50 us base, 2 ms deadline
  const sim::Time tclk = sim::clock_period(320e6);
  EXPECT_TRUE(det.probe(1, tclk).detected);
  EXPECT_TRUE(det.probe(1000, tclk).detected) << "~450 us discovery: OK";
  const auto p = det.probe(10000, tclk);
  EXPECT_FALSE(p.detected) << "~4 ms discovery: device lost";
  EXPECT_NEAR(sim::to_ms(p.discovery_time), 4.08, 0.1);
}

// --- event-level injector ----------------------------------------------------

TEST(InjectorTest, PeriodOneTransparent) {
  DelayInjector inj(320e6, 1);
  EXPECT_EQ(inj.admit(12345), 12345u);
  EXPECT_EQ(inj.admit(12345), 12345u) << "no spacing at PERIOD=1";
}

TEST(InjectorTest, SpacingMatchesPeriodTimesClock) {
  DelayInjector inj(320e6, 100);
  const sim::Time interval = inj.interval();
  EXPECT_EQ(interval, sim::clock_period(320e6) * 100);
  const auto t1 = inj.admit(0);
  const auto t2 = inj.admit(0);
  EXPECT_EQ(t2 - t1, interval);
}

TEST(InjectorTest, SetPeriodReconfigures) {
  DelayInjector inj(320e6, 1);
  inj.set_period(1000);
  EXPECT_EQ(inj.period(), 1000u);
  EXPECT_THROW(inj.set_period(0), std::invalid_argument);
}

TEST(InjectorTest, DistributionModeAddsSampledDelay) {
  auto dist = std::make_unique<net::LatencyDistribution>(
      net::DistKind::kFixed, sim::from_us(3));
  DelayInjector inj(std::move(dist));
  EXPECT_EQ(inj.mode(), DelayInjector::Mode::kDistribution);
  EXPECT_EQ(inj.admit(1000), 1000 + sim::from_us(3));
  EXPECT_THROW(inj.set_period(5), std::logic_error);
}

TEST(InjectorTest, StatsTrackAddedDelay) {
  DelayInjector inj(320e6, 320);  // interval = 1 us
  inj.admit(0);
  inj.admit(0);  // waits 1 us
  EXPECT_EQ(inj.admitted(), 2u);
  EXPECT_NEAR(inj.added_delay().max(), 1.0, 1e-6);
}

// --- assembled NIC ---------------------------------------------------------

struct NicFixture {
  net::Network network;
  net::NodeId self, lender_node;
  mem::Dram lender_dram{mem::DramConfig{}};
  std::unique_ptr<DisaggNic> nic;

  explicit NicFixture(std::uint64_t period = 1) {
    self = network.add_node("borrower");
    lender_node = network.add_node("lender");
    network.connect(self, lender_node, net::LinkConfig{});
    network.connect(lender_node, self, net::LinkConfig{});
    NicConfig cfg;
    cfg.period = period;
    nic = std::make_unique<DisaggNic>(cfg, network, self);
    nic->register_lender(7, lender_node, &lender_dram);
    nic->translator().add_segment(
        Segment{mem::Range{0x1000'0000, 16 * sim::kMiB}, 0, 7, "seg"});
    nic->attach();
  }
};

TEST(NicTest, AccessTraceIsOrdered) {
  NicFixture f;
  const auto t = f.nic->remote_access(1000, 0x1000'0000, false);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->issued, 1000u);
  EXPECT_LE(t->issued, t->admitted);
  EXPECT_LE(t->admitted, t->gate_out);
  EXPECT_LT(t->gate_out, t->tx_done);
  EXPECT_LT(t->tx_done, t->mem_done);
  EXPECT_LT(t->mem_done, t->completion);
}

TEST(NicTest, VanillaLatencyIsMicrosecondScale) {
  NicFixture f;
  const auto t = f.nic->remote_access(0, 0x1000'0000, false);
  ASSERT_TRUE(t.has_value());
  const double us = sim::to_us(t->completion - t->issued);
  EXPECT_GT(us, 0.5);
  EXPECT_LT(us, 2.5) << "ThymesisFlow-class unloaded latency";
}

TEST(NicTest, UnmappedAddressFails) {
  NicFixture f;
  EXPECT_FALSE(f.nic->remote_access(0, 0x9999'0000, false).has_value());
  EXPECT_EQ(f.nic->failures(), 1u);
}

TEST(NicTest, UnknownLenderFails) {
  NicFixture f;
  f.nic->translator().add_segment(
      Segment{mem::Range{0x5000'0000, 4096}, 0, 99, "bogus-lender"});
  EXPECT_FALSE(f.nic->remote_access(0, 0x5000'0000, false).has_value());
}

TEST(NicTest, DetachedDeviceRefusesAccess) {
  NicFixture f(10000);  // PERIOD beyond the detection deadline
  f.nic->reset_device();
  EXPECT_FALSE(f.nic->attach());
  EXPECT_FALSE(f.nic->remote_access(0, 0x1000'0000, false).has_value());
}

TEST(NicTest, AttachRecoversAfterReset) {
  NicFixture f(10000);
  f.nic->reset_device();
  EXPECT_FALSE(f.nic->attach());
  f.nic->set_period(1);
  EXPECT_FALSE(f.nic->attach()) << "device stays lost until reset";
  f.nic->reset_device();
  EXPECT_TRUE(f.nic->attach());
}

TEST(NicTest, SaturatedLatencyEqualsWindowTimesInterval) {
  // BDP property: with the gate as bottleneck, steady-state latency
  // approaches window_entries x PERIOD x Tclk.
  NicFixture f(1000);
  const auto& cfg = f.nic->config();
  const sim::Time interval = f.nic->injector().interval();
  sim::Time now = 0;
  sim::Time last_latency = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto t = f.nic->remote_access(now, 0x1000'0000 + (i % 1024) * 128u,
                                        false);
    ASSERT_TRUE(t.has_value());
    last_latency = t->completion - t->issued;
    // Saturating caller: issue as fast as the window admits.
    now = t->admitted;
  }
  const double expected_us =
      sim::to_us(interval) * static_cast<double>(cfg.window_entries);
  EXPECT_NEAR(sim::to_us(last_latency), expected_us, expected_us * 0.05);
}

TEST(NicTest, WriteAndReadWireSizesDiffer) {
  NicFixture f;
  f.nic->remote_access(0, 0x1000'0000, false);
  const auto read_out = f.nic->wire_bytes_out();
  const auto read_in = f.nic->wire_bytes_in();
  f.nic->remote_access(1000, 0x1000'0000, true);
  const auto write_out = f.nic->wire_bytes_out() - read_out;
  const auto write_in = f.nic->wire_bytes_in() - read_in;
  // Read: small request out, data response in.  Write: the reverse.
  EXPECT_GT(read_in, read_out);
  EXPECT_GT(write_out, write_in);
  EXPECT_EQ(read_out, write_in) << "command-only packets match";
  EXPECT_EQ(read_in, write_out) << "data-carrying packets match";
  EXPECT_EQ(f.nic->reads(), 1u);
  EXPECT_EQ(f.nic->writes(), 1u);
}

TEST(NicTest, StatsReset) {
  NicFixture f;
  f.nic->remote_access(0, 0x1000'0000, false);
  f.nic->reset_stats();
  EXPECT_EQ(f.nic->reads(), 0u);
  EXPECT_EQ(f.nic->latency_us().count(), 0u);
}

TEST(NicTest, RegisterLenderValidation) {
  net::Network net2;
  const auto a = net2.add_node("a");
  const auto b = net2.add_node("b");
  DisaggNic nic(NicConfig{}, net2, a);
  mem::Dram dram{mem::DramConfig{}};
  EXPECT_THROW(nic.register_lender(0, b, &dram), std::invalid_argument)
      << "no route yet";
  net2.connect(a, b, net::LinkConfig{});
  net2.connect(b, a, net::LinkConfig{});
  EXPECT_THROW(nic.register_lender(0, b, nullptr), std::invalid_argument);
  nic.register_lender(0, b, &dram);  // now fine
}

}  // namespace
}  // namespace tfsim::nic
