// End-to-end properties: the paper's headline behaviours must hold on the
// assembled system (scaled down for test speed).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "core/session.hpp"
#include "sim/stats.hpp"
#include "workloads/stream/stream_flow.hpp"

namespace tfsim {
namespace {

workloads::StreamConfig test_stream() {
  workloads::StreamConfig cfg;
  cfg.elements = 800'000;  // 19 MB of arrays: misses through the 10 MiB L3
  return cfg;
}

// Fig. 2 property: PERIOD-latency relation is linear with high R^2.
TEST(IntegrationTest, PeriodLatencyIsLinear) {
  std::vector<double> periods, latencies;
  for (const std::uint64_t p : {8, 16, 32, 64, 128}) {
    core::SessionConfig cfg;
    cfg.period = p;
    core::Session s(cfg);
    ASSERT_TRUE(s.attached());
    const auto res = s.run_stream(test_stream());
    periods.push_back(static_cast<double>(p));
    latencies.push_back(res.avg_latency_us);
  }
  const auto fit = sim::linear_fit(periods, latencies);
  EXPECT_GT(fit.r2, 0.999) << "paper: strong linear correlation";
  EXPECT_GT(fit.slope, 0.0);
}

// Fig. 3 property: bandwidth-delay product is constant in the saturated
// regime.
TEST(IntegrationTest, BdpIsConstantAcrossInjection) {
  std::vector<double> bdps;
  for (const std::uint64_t p : {16, 64, 256}) {
    core::SessionConfig cfg;
    cfg.period = p;
    core::Session s(cfg);
    ASSERT_TRUE(s.attached());
    const auto res = s.run_stream(test_stream());
    const auto& copy = res.kernel("copy");
    bdps.push_back(core::bdp_kb(copy.bandwidth_gbps, copy.avg_latency_us));
  }
  for (const double bdp : bdps) {
    EXPECT_NEAR(bdp, bdps.front(), bdps.front() * 0.05)
        << "BDP must stay ~constant";
  }
  // And it equals window x line size.
  EXPECT_NEAR(bdps.front(), 128 * 128.0 / 1000.0, 2.0);
}

// Table I / Fig. 5 property: Redis is delay-insensitive, Graph500 is not.
TEST(IntegrationTest, RedisInsensitiveGraphSensitive) {
  workloads::g500::Graph500Config gcfg;
  gcfg.gen.scale = 14;
  gcfg.gen.edgefactor = 16;
  const auto edges = workloads::g500::kronecker_generate(gcfg.gen);

  workloads::kv::KvStoreConfig store_cfg;
  store_cfg.buckets = 1 << 12;
  store_cfg.max_keys = 1 << 13;
  workloads::kv::MemtierConfig load_cfg;
  load_cfg.threads = 1;
  load_cfg.connections = 10;
  load_cfg.requests_per_client = 60;
  load_cfg.key_space = 2000;

  sim::Time redis_base = 0, redis_slow = 0, bfs_base = 0, bfs_slow = 0;
  for (const std::uint64_t p : {std::uint64_t{1}, std::uint64_t{400}}) {
    core::SessionConfig cfg;
    cfg.period = p;
    core::Session s(cfg);
    ASSERT_TRUE(s.attached());
    const auto redis = s.run_memtier(store_cfg, load_cfg);
    const auto bfs = s.run_bfs_job(gcfg, edges, 1);
    ASSERT_TRUE(redis.validated);
    ASSERT_EQ(bfs.validation_error, "");
    (p == 1 ? redis_base : redis_slow) = redis.elapsed;
    (p == 1 ? bfs_base : bfs_slow) = bfs.total();
  }
  const double redis_deg = core::degradation_from_times(redis_slow, redis_base);
  const double bfs_deg = core::degradation_from_times(bfs_slow, bfs_base);
  EXPECT_LT(redis_deg, 1.6) << "Redis stays network-stack bound";
  EXPECT_GT(bfs_deg, 4.0) << "Graph500 collapses under the same delay";
  EXPECT_GT(bfs_deg, 3.0 * redis_deg);
}

// Fig. 6 property: equal division among borrower-side competitors.
TEST(IntegrationTest, BorrowerContentionDividesEqually) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  const sim::Time stop = sim::from_ms(5.0);
  std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
  for (int i = 0; i < 4; ++i) {
    workloads::FlowConfig cfg;
    cfg.concurrency = 64;
    cfg.base = tb.remote_base() + static_cast<std::uint64_t>(i) * 64 * sim::kMiB;
    cfg.span_bytes = 64 * sim::kMiB;
    cfg.stop_at = stop;
    flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
        tb.engine(), tb.borrower().nic(), cfg));
  }
  for (auto& f : flows) f->start();
  tb.engine().run();
  std::vector<double> bws;
  for (auto& f : flows) bws.push_back(f->stats().bandwidth_gbps(stop));
  for (const double bw : bws) {
    EXPECT_NEAR(bw, bws.front(), bws.front() * 0.05) << "equal division";
  }
}

// Fig. 7 property: lender-side contention does not dent borrower bandwidth.
TEST(IntegrationTest, LenderContentionInvisibleToBorrower) {
  auto run_with_lender_load = [](int lender_instances) {
    node::Testbed tb;
    tb.attach_remote();
    const sim::Time stop = sim::from_ms(5.0);
    workloads::FlowConfig bcfg;
    bcfg.concurrency = 64;
    bcfg.base = tb.remote_base();
    bcfg.span_bytes = 64 * sim::kMiB;
    bcfg.stop_at = stop;
    workloads::RemoteStreamFlow borrower(tb.engine(), tb.borrower().nic(), bcfg);
    std::vector<std::unique_ptr<workloads::LocalStreamFlow>> lender_flows;
    for (int i = 0; i < lender_instances; ++i) {
      workloads::FlowConfig lcfg;
      lcfg.concurrency = 64;
      lcfg.stop_at = stop;
      lender_flows.push_back(std::make_unique<workloads::LocalStreamFlow>(
          tb.engine(), tb.lender().dram(), lcfg));
    }
    borrower.start();
    for (auto& f : lender_flows) f->start();
    tb.engine().run();
    return borrower.stats().bandwidth_gbps(stop);
  };
  const double idle = run_with_lender_load(0);
  const double busy = run_with_lender_load(8);
  EXPECT_NEAR(busy / idle, 1.0, 0.02)
      << "network, not the lender bus, is the bottleneck";
}

// Fig. 4 property: the reliability cliff sits between PERIOD 1000 and 10000.
TEST(IntegrationTest, ReliabilityCliffLocation) {
  core::SessionConfig ok_cfg;
  ok_cfg.period = 1000;
  core::Session ok(ok_cfg);
  EXPECT_TRUE(ok.attached());

  core::SessionConfig dead_cfg;
  dead_cfg.period = 10000;
  core::Session dead(dead_cfg);
  EXPECT_FALSE(dead.attached());
}

// Future-work property: heavier-tailed injection hurts more at equal mean.
TEST(IntegrationTest, TailShapeMattersAtEqualMean) {
  auto run_dist = [](net::DistKind kind) {
    core::SessionConfig cfg;
    cfg.dist_kind = kind;
    cfg.dist_mean = sim::from_us(2);
    core::Session s(cfg);
    const auto res = s.run_stream(test_stream());
    return res.best_bandwidth_gbps;
  };
  const double fixed_bw = run_dist(net::DistKind::kFixed);
  const double pareto_bw = run_dist(net::DistKind::kPareto);
  EXPECT_LT(pareto_bw, fixed_bw * 0.75);
}

}  // namespace
}  // namespace tfsim
