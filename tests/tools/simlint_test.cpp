// Tests for the simlint static analysis pass: each rule class must catch
// its deliberate violation (negative fixtures + inline snippets), waivers
// and baselines must behave, and clean code must stay clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tools/simlint/driver.hpp"
#include "tools/simlint/lexer.hpp"
#include "tools/simlint/rules.hpp"

#ifndef TFSIM_SOURCE_DIR
#error "TFSIM_SOURCE_DIR must point at the repo root"
#endif

namespace tfsim::simlint {
namespace {

constexpr RuleScope kAllRules{true, true, true, true, true};

std::vector<Finding> lint_snippet(const std::string& code) {
  const LexedFile lf = lex(code);
  AnalysisContext ctx = default_context();
  collect(lf, ctx);
  collect(lf, ctx);  // second sweep resolves aliases declared after use
  return analyze("snippet.cpp", lf, kAllRules, ctx);
}

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::vector<Finding> lint_fixture(const std::string& name) {
  DriverConfig cfg;
  cfg.root = TFSIM_SOURCE_DIR;
  cfg.extra_files = {"tools/simlint/testdata/" + name};
  const RunResult r = run(cfg);
  std::vector<Finding> out;
  for (const Finding& f : r.findings) {
    if (f.file.find("testdata/" + name) != std::string::npos) {
      out.push_back(f);
    }
  }
  return out;
}

// ---- lexer -------------------------------------------------------------

TEST(SimlintLexerTest, TokenizesAndStripsComments) {
  const LexedFile lf = lex("int x = 42; // comment\n/* block */ y();\n");
  std::vector<std::string> texts;
  for (const Token& t : lf.tokens) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"int", "x", "=", "42", ";", "y",
                                             "(", ")", ";"}));
}

TEST(SimlintLexerTest, RawStringsAndCharLiteralsDoNotConfuse) {
  const LexedFile lf = lex(
      "auto s = R\"x(rand() \"quote)x\";\n"
      "char c = '\\'';\n"
      "auto t = \"time(nullptr)\";\n");
  // Banned calls inside literals must not produce identifier tokens.
  for (const Token& t : lf.tokens) {
    EXPECT_NE(t.kind == TokKind::kIdent && t.text == "rand", true);
    EXPECT_NE(t.kind == TokKind::kIdent && t.text == "time", true);
  }
}

TEST(SimlintLexerTest, SuppressionCommentsAreRecorded) {
  const LexedFile lf = lex(
      "// simlint: allow(R3): reasoned waiver\n"
      "int g = 0;\n"
      "// simlint: allow-file(R2): whole-file waiver\n");
  ASSERT_EQ(lf.suppressions.size(), 2u);
  EXPECT_EQ(lf.suppressions[0].rule, "R3");
  EXPECT_EQ(lf.suppressions[0].line, 1);
  EXPECT_FALSE(lf.suppressions[0].whole_file);
  EXPECT_EQ(lf.suppressions[1].rule, "R2");
  EXPECT_TRUE(lf.suppressions[1].whole_file);
}

// ---- rule classes on inline snippets -----------------------------------

TEST(SimlintRulesTest, R1CatchesWallClockAndAmbientRandomness) {
  EXPECT_TRUE(has_rule(lint_snippet("#include <chrono>\n"), "R1"));
  EXPECT_TRUE(has_rule(
      lint_snippet("auto t0 = std::chrono::steady_clock::now();\n"), "R1"));
  EXPECT_TRUE(has_rule(lint_snippet("int r = rand() % 7;\n"), "R1"));
  EXPECT_TRUE(has_rule(lint_snippet("std::random_device rd;\n"), "R1"));
  EXPECT_TRUE(has_rule(lint_snippet("long t = time(nullptr);\n"), "R1"));
}

TEST(SimlintRulesTest, R1IgnoresMethodsAndMembersNamedLikeBannedCalls) {
  // obj.time(), Clock::time(), and fields named `time` are not libc time().
  EXPECT_FALSE(has_rule(lint_snippet("auto v = obj.time();\n"), "R1"));
  EXPECT_FALSE(has_rule(lint_snippet("auto v = sim::Clock::time();\n"), "R1"));
  EXPECT_FALSE(has_rule(lint_snippet("double time = 0.5;\n"), "R1"));
  EXPECT_FALSE(has_rule(lint_snippet("stats.record(t.time);\n"), "R1"));
}

TEST(SimlintRulesTest, R2CatchesUnorderedIterationIncludingAliases) {
  EXPECT_TRUE(has_rule(
      lint_snippet("std::unordered_map<int, int> m;\n"
                   "void f() { for (const auto& [k, v] : m) use(k, v); }\n"),
      "R2"));
  EXPECT_TRUE(has_rule(
      lint_snippet("std::unordered_set<int> s;\n"
                   "void f() { for (auto it = s.begin(); it != s.end(); ++it)"
                   " use(*it); }\n"),
      "R2"));
  // Alias laundering must not help.
  EXPECT_TRUE(has_rule(
      lint_snippet("using Index = std::unordered_map<int, int>;\n"
                   "Index idx;\n"
                   "void f() { for (const auto& [k, v] : idx) use(k, v); }\n"),
      "R2"));
}

TEST(SimlintRulesTest, R2AllowsOrderedIterationAndKeyedLookup) {
  EXPECT_FALSE(has_rule(
      lint_snippet("std::map<int, int> m;\n"
                   "void f() { for (const auto& [k, v] : m) use(k, v); }\n"),
      "R2"));
  EXPECT_FALSE(has_rule(
      lint_snippet("std::unordered_map<int, int> m;\n"
                   "int f(int k) { return m.count(k) ? m.at(k) : 0; }\n"),
      "R2"));
}

TEST(SimlintRulesTest, R3CatchesMutableGlobalsAndStatics) {
  EXPECT_TRUE(has_rule(lint_snippet("namespace x {\nint g_count = 0;\n}\n"),
                       "R3"));
  EXPECT_TRUE(has_rule(
      lint_snippet("struct S {\n  static int live;\n};\n"), "R3"));
  EXPECT_TRUE(has_rule(
      lint_snippet("int f() {\n  static int calls = 0;\n  return ++calls;\n}\n"),
      "R3"));
}

TEST(SimlintRulesTest, R3AllowsImmutableGlobals) {
  EXPECT_FALSE(has_rule(lint_snippet("constexpr int kMax = 4;\n"), "R3"));
  EXPECT_FALSE(has_rule(
      lint_snippet("const std::string kName = \"x\";\n"), "R3"));
  EXPECT_FALSE(has_rule(
      lint_snippet("constexpr const char* kNames[] = {\"a\", \"b\"};\n"),
      "R3"));
}

TEST(SimlintRulesTest, R4CatchesPointerKeysAndPointerToIntCasts) {
  EXPECT_TRUE(has_rule(
      lint_snippet("std::map<Node*, int> owners;\n"), "R4"));
  EXPECT_TRUE(has_rule(
      lint_snippet("std::unordered_set<const Wire*> seen;\n"), "R4"));
  EXPECT_TRUE(has_rule(
      lint_snippet("auto h = reinterpret_cast<std::uintptr_t>(p);\n"), "R4"));
}

TEST(SimlintRulesTest, R4AllowsPointerValuesAndIdKeys) {
  EXPECT_FALSE(has_rule(
      lint_snippet("std::map<std::uint32_t, Node*> by_id;\n"), "R4"));
  EXPECT_FALSE(has_rule(
      lint_snippet("auto* p = reinterpret_cast<Node*>(storage);\n"), "R4"));
}

TEST(SimlintRulesTest, R5RequiresAnnotationOnOwnedClasses) {
  EXPECT_TRUE(has_rule(
      lint_snippet("class Dram {\n public:\n  void access();\n};\n"), "R5"));
  EXPECT_FALSE(has_rule(
      lint_snippet("class Dram {\n public:\n  void access();\n"
                   "  TFSIM_DOMAIN_OWNED\n};\n"),
      "R5"));
  // Classes outside the ownership set need no annotation.
  EXPECT_FALSE(has_rule(
      lint_snippet("class Helper {\n public:\n  void run();\n};\n"), "R5"));
}

TEST(SimlintRulesTest, R5ForbidsPublicMutableMembersOnAnnotatedClasses) {
  EXPECT_TRUE(has_rule(
      lint_snippet("class Dram {\n public:\n  int hits = 0;\n"
                   "  TFSIM_DOMAIN_OWNED\n};\n"),
      "R5"));
  EXPECT_FALSE(has_rule(
      lint_snippet("class Dram {\n public:\n  void access();\n"
                   "  TFSIM_DOMAIN_OWNED\n private:\n  int hits_ = 0;\n};\n"),
      "R5"));
}

TEST(SimlintRulesTest, WaiversSuppressOnExactAndPreviousLine) {
  EXPECT_FALSE(has_rule(
      lint_snippet("// simlint: allow(R3): test waiver\nint g_state = 0;\n"),
      "R3"));
  EXPECT_FALSE(has_rule(
      lint_snippet("int g_state = 0;  // simlint: allow(R3): same line\n"),
      "R3"));
  EXPECT_TRUE(has_rule(
      lint_snippet("// simlint: allow(R1): wrong rule\nint g_state = 0;\n"),
      "R3"))
      << "a waiver names one rule; others still fire";
  EXPECT_FALSE(has_rule(
      lint_snippet("// simlint: allow-file(R3): whole file\n"
                   "int g_a = 0;\nint g_b = 0;\n"),
      "R3"));
}

// ---- negative fixtures through the driver ------------------------------

TEST(SimlintDriverTest, EachRuleClassFailsItsFixture) {
  const std::pair<const char*, const char*> cases[] = {
      {"R1", "bad_r1.cpp"}, {"R2", "bad_r2.cpp"}, {"R3", "bad_r3.cpp"},
      {"R4", "bad_r4.cpp"}, {"R5", "bad_r5.cpp"}};
  for (const auto& [rule, name] : cases) {
    const std::vector<Finding> fs = lint_fixture(name);
    EXPECT_TRUE(has_rule(fs, rule)) << name << " must trigger " << rule;
    for (const Finding& f : fs) {
      EXPECT_EQ(f.rule, rule) << name << " triggered a foreign rule: "
                              << f.to_string();
    }
  }
}

TEST(SimlintDriverTest, CleanFixtureStaysClean) {
  EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

TEST(SimlintDriverTest, RepoTreeIsCleanAgainstBaseline) {
  DriverConfig cfg;
  cfg.root = TFSIM_SOURCE_DIR;
  cfg.baseline_path = std::string(TFSIM_SOURCE_DIR) +
                      "/tools/simlint/baseline.txt";
  const RunResult r = run(cfg);
  EXPECT_TRUE(r.ok()) << render_report(r);
  EXPECT_GT(r.files_scanned, 100u) << "tree sweep must actually scan";
  EXPECT_TRUE(r.stale_baseline.empty()) << render_report(r);
}

TEST(SimlintDriverTest, BaselineAbsorbsKnownFindingsAndReportsStale) {
  const std::string dir = ::testing::TempDir();
  const std::string baseline = dir + "/simlint_baseline_test.txt";
  // First run without a baseline to learn the fixture's keys.
  DriverConfig cfg;
  cfg.root = TFSIM_SOURCE_DIR;
  cfg.extra_files = {"tools/simlint/testdata/bad_r3.cpp"};
  const RunResult before = run(cfg);
  ASSERT_FALSE(before.ok());

  {
    std::ofstream out(baseline);
    out << "# test baseline\n";
    for (const Finding& f : before.new_findings) out << f.key() << "\n";
    out << "R9 gone/file.cpp global:never_existed\n";  // stale entry
  }
  cfg.baseline_path = baseline;
  const RunResult after = run(cfg);
  EXPECT_TRUE(after.ok()) << "baselined findings must not fail the run";
  ASSERT_EQ(after.stale_baseline.size(), 1u);
  EXPECT_EQ(after.stale_baseline.front(),
            "R9 gone/file.cpp global:never_existed");
  std::remove(baseline.c_str());
}

TEST(SimlintDriverTest, FindingKeysAreLineFree) {
  const std::vector<Finding> fs = lint_fixture("bad_r3.cpp");
  ASSERT_FALSE(fs.empty());
  for (const Finding& f : fs) {
    EXPECT_EQ(f.key().find(std::to_string(f.line) + ":"), std::string::npos)
        << "keys must survive line drift: " << f.key();
    EXPECT_NE(f.line, 0) << "the report itself still carries the line";
  }
}

TEST(SimlintDriverTest, ScopeForGatesRulesByPath) {
  EXPECT_TRUE(scope_for("src/sim/engine.cpp").r5);
  EXPECT_TRUE(scope_for("src/sim/engine.cpp").r1);
  EXPECT_FALSE(scope_for("tools/determinism_check.cpp").r5)
      << "tools hold no per-node sim state";
  EXPECT_TRUE(scope_for("tools/determinism_check.cpp").r2);
  EXPECT_FALSE(scope_for("tools/simlint/testdata/bad_r1.cpp").any())
      << "fixtures are only linted as explicit extra files";
  EXPECT_FALSE(scope_for("tests/sim/engine_test.cpp").any());
  EXPECT_FALSE(scope_for("bench/delay_bench.cpp").any());
}

}  // namespace
}  // namespace tfsim::simlint
