// Property tests for the PDES core (ISSUE 7 acceptance): over seeded random
// cluster topologies, serial and multi-threaded barrier-window runs must be
// byte-identical -- per-domain event counts, clocks, traffic digests and
// per-link byte counters all match for 1, 2 and 8 workers -- and the
// Cluster assembly path must partition node calendars exactly 1:1 with
// domain ids, with the lookahead pinned to the fabric's minimum link
// propagation.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"
#include "sim/pdes.hpp"
#include "sim/rng.hpp"
#include "sim/units.hpp"

namespace tfsim {
namespace {

// A random strongly-connected fabric: ring backbone (so every domain can
// reach every other) plus random chords, every link with its own random
// propagation and bandwidth.  Node i owns its egress links exclusively --
// the ownership partition net::Network::post_delivery requires.
struct RandomFabric {
  net::Network network;
  std::size_t nodes = 0;
  std::vector<std::vector<net::NodeId>> neighbors;  // per node, sorted order

  explicit RandomFabric(std::uint64_t seed) {
    sim::Rng rng(seed);
    nodes = 2 + rng.uniform_u64(11);  // 2..12 nodes
    neighbors.resize(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      network.add_node("n" + std::to_string(i));
    }
    auto connect = [&](std::size_t a, std::size_t b) {
      if (a == b || network.has_route(static_cast<net::NodeId>(a),
                                      static_cast<net::NodeId>(b))) {
        return;
      }
      net::LinkConfig cfg;
      cfg.propagation = sim::from_ns(50.0 + rng.uniform(0.0, 450.0));
      cfg.bandwidth = sim::Bandwidth::from_gbit(25.0 + rng.uniform(0.0, 75.0));
      network.connect(static_cast<net::NodeId>(a),
                      static_cast<net::NodeId>(b), cfg);
      neighbors[a].push_back(static_cast<net::NodeId>(b));
    };
    for (std::size_t i = 0; i < nodes; ++i) connect(i, (i + 1) % nodes);
    const std::size_t chords = rng.uniform_u64(2 * nodes);
    for (std::size_t c = 0; c < chords; ++c) {
      connect(rng.uniform_u64(nodes), rng.uniform_u64(nodes));
    }
  }
};

// Drive seeded per-domain traffic over the fabric through post_delivery and
// fold everything observable into one digest string per domain.
std::string run_fabric(RandomFabric& fabric, unsigned threads,
                       std::uint64_t seed, int hops_per_node) {
  sim::PdesConfig cfg;
  cfg.threads = threads;
  cfg.lookahead = fabric.network.min_propagation();
  sim::ParallelEngine pdes(fabric.nodes, cfg);

  struct DomainState {
    sim::Rng rng{0};
    std::uint64_t fold = 0;
    std::uint64_t arrivals = 0;
  };
  std::vector<DomainState> state(fabric.nodes);
  for (std::size_t d = 0; d < fabric.nodes; ++d) {
    state[d].rng = sim::Rng(seed ^ (0x9E3779B97F4A7C15ULL * (d + 1)));
  }

  // Each arrival folds the delivery into the *destination* domain's state
  // and forwards to a random neighbor until the hop budget runs dry.  All
  // mutable state is indexed by the executing domain, so the partition
  // invariant holds by construction.
  std::function<void(sim::DomainId, int)> bounce = [&](sim::DomainId d,
                                                       int budget) {
    DomainState& st = state[d];
    sim::Engine& self = pdes.domain(d);
    st.fold = st.fold * 1099511628211ULL ^ self.now() ^ d;
    ++st.arrivals;
    if (budget <= 0 || fabric.neighbors[d].empty()) return;
    const auto& out = fabric.neighbors[d];
    const net::NodeId dst = out[st.rng.uniform_u64(out.size())];
    const std::uint64_t bytes = 64 + st.rng.uniform_u64(4032);
    const net::Delivery sent = fabric.network.post_delivery(
        pdes, d, static_cast<sim::DomainId>(dst), self.now(),
        static_cast<net::NodeId>(d), dst, bytes, sim::Priority::kBulk,
        [&bounce, dst, budget](const net::Delivery& del) {
          (void)del;
          bounce(static_cast<sim::DomainId>(dst), budget - 1);
        });
    st.fold ^= sent.arrival * 0x9E3779B97F4A7C15ULL;
  };

  for (std::size_t d = 0; d < fabric.nodes; ++d) {
    const sim::Time start = state[d].rng.uniform_u64(cfg.lookahead) + 1;
    pdes.post(static_cast<sim::DomainId>(d), static_cast<sim::DomainId>(d),
              start, [&bounce, d, hops_per_node] {
                bounce(static_cast<sim::DomainId>(d), hops_per_node);
              });
  }
  pdes.run();

  std::ostringstream os;
  for (std::size_t d = 0; d < fabric.nodes; ++d) {
    os << d << ":" << state[d].arrivals << ":" << state[d].fold << ":"
       << pdes.domain(static_cast<sim::DomainId>(d)).executed() << ":"
       << pdes.domain(static_cast<sim::DomainId>(d)).now() << ";";
  }
  for (std::size_t i = 0; i < fabric.nodes; ++i) {
    for (const net::NodeId j : fabric.neighbors[i]) {
      const auto& link = fabric.network.link(static_cast<net::NodeId>(i), j);
      os << "L" << i << ">" << j << "=" << link.bytes_sent() << ","
         << link.packets_sent() << ";";
    }
  }
  return os.str();
}

TEST(PdesPropertyTest, RandomTopologiesByteIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    // Fresh fabric per thread count: link servers carry queueing state.
    RandomFabric f1(seed), f2(seed), f8(seed);
    ASSERT_EQ(f1.nodes, f2.nodes);
    ASSERT_EQ(f1.nodes, f8.nodes);
    const std::string serial = run_fabric(f1, 1, seed, 60);
    const std::string par2 = run_fabric(f2, 2, seed, 60);
    const std::string par8 = run_fabric(f8, 8, seed, 60);
    EXPECT_EQ(serial, par2) << "seed " << seed;
    EXPECT_EQ(serial, par8) << "seed " << seed;
  }
}

TEST(PdesPropertyTest, SameSeedReproducesSameDigestDifferentSeedDiffers) {
  RandomFabric a(42), b(42), c(43);
  const std::string da = run_fabric(a, 4, 42, 40);
  const std::string db = run_fabric(b, 4, 42, 40);
  EXPECT_EQ(da, db);
  const std::string dc = run_fabric(c, 4, 43, 40);
  EXPECT_NE(da, dc) << "seed must steer topology and traffic";
}

// Cluster assembly across random scenario shapes: node index == DomainId,
// every node's calendar is its domain's calendar, and the engine lookahead
// equals the fabric's minimum propagation.
TEST(PdesPropertyTest, ClusterPartitionAlignsNodesAndDomains) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::Rng rng(seed * 0xA5A5);
    scenario::ScenarioSpec spec;
    spec.name = "pdes_prop" + std::to_string(seed);
    scenario::NodeDecl borrowers;
    borrowers.name = "b";
    borrowers.role = scenario::Role::kBorrower;
    borrowers.count = static_cast<std::uint32_t>(1 + rng.uniform_u64(4));
    scenario::NodeDecl lenders;
    lenders.name = "l";
    lenders.role = scenario::Role::kLender;
    lenders.count = static_cast<std::uint32_t>(1 + rng.uniform_u64(6));
    spec.nodes = {borrowers, lenders};
    spec.topology.kind = rng.uniform_u64(2) == 0
                             ? scenario::TopologyKind::kDirect
                             : scenario::TopologyKind::kDumbbell;
    spec.topology.link.propagation =
        sim::from_ns(100.0 + rng.uniform(0.0, 400.0));
    spec.topology.trunk.propagation =
        sim::from_ns(100.0 + rng.uniform(0.0, 400.0));
    spec.pdes.threads = static_cast<std::uint32_t>(1 + rng.uniform_u64(8));

    node::Cluster cluster(spec);
    ASSERT_NE(cluster.pdes(), nullptr) << "seed " << seed;
    // Fabric switches own trailing domains after the hosts.
    EXPECT_EQ(cluster.pdes()->num_domains(),
              cluster.num_nodes() + spec.topology.switch_count());
    EXPECT_EQ(cluster.pdes()->lookahead(),
              cluster.network().min_propagation())
        << "seed " << seed;
    for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
      EXPECT_EQ(&cluster.engine_for(i),
                &cluster.pdes()->domain(static_cast<sim::DomainId>(i)))
          << "seed " << seed << " node " << i;
    }
  }
}

}  // namespace
}  // namespace tfsim
