// Property-based differential fuzz for the activity-driven scheduler
// (DESIGN.md section 10).
//
// Each seed deterministically generates a random egress pipeline -- a
// router fanning out to 1..3 routes, each an optional FIFO feeding a
// RateGate with a random PERIOD, merged by the round-robin mux into a
// randomly-stalling sink -- plus random stimulus and an optional mid-run
// set_period() mutation.  The same plan is driven under SettleMode::kNaive
// and SettleMode::kActivity and every per-cycle wire sample must be
// byte-identical.  Any divergence prints the offending seed and the full
// plan so the case can be replayed as a unit test.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "axi/checker.hpp"
#include "axi/endpoints.hpp"
#include "axi/fifo.hpp"
#include "axi/monitor.hpp"
#include "axi/mux.hpp"
#include "axi/rate_gate.hpp"
#include "axi/router.hpp"
#include "axi/testbench.hpp"
#include "axi/trace.hpp"
#include "sim/rng.hpp"

namespace tfsim::axi {
namespace {

struct RoutePlan {
  bool has_fifo = false;
  std::size_t fifo_depth = 1;
  std::uint64_t period = 1;
};

struct Plan {
  std::uint64_t seed = 0;
  std::vector<RoutePlan> routes;
  bool saturate = false;
  double valid_p = 1.0;
  double ready_p = 1.0;
  std::vector<Beat> stimulus;  ///< empty when saturating
  std::uint64_t cycles1 = 0;
  std::uint64_t cycles2 = 0;
  bool mutate = false;  ///< set_period() between the two run chunks
  std::size_t mutate_route = 0;
  std::uint64_t new_period = 1;
};

Plan make_plan(std::uint64_t seed) {
  tfsim::sim::Rng rng(seed);
  Plan p;
  p.seed = seed;
  // Periods mix back-to-back (1), small windows, and long quiescent gaps.
  static constexpr std::uint64_t kPeriods[] = {1, 2, 3, 7, 50, 400};
  const std::size_t n_routes = 1 + rng.uniform_u64(3);
  for (std::size_t i = 0; i < n_routes; ++i) {
    RoutePlan r;
    r.has_fifo = rng.uniform() < 0.5;
    r.fifo_depth = 1 + rng.uniform_u64(4);
    r.period = kPeriods[rng.uniform_u64(6)];
    p.routes.push_back(r);
  }
  p.saturate = rng.uniform() < 0.25;
  static constexpr double kValidP[] = {1.0, 0.8, 0.5};
  static constexpr double kReadyP[] = {1.0, 0.6, 0.3};
  p.valid_p = kValidP[rng.uniform_u64(3)];
  p.ready_p = kReadyP[rng.uniform_u64(3)];
  if (!p.saturate) {
    const std::uint64_t beats = 20 + rng.uniform_u64(100);
    for (std::uint64_t i = 0; i < beats; ++i) {
      p.stimulus.push_back(Beat{
          i, static_cast<std::uint32_t>(rng.uniform_u64(n_routes)),
          static_cast<std::uint32_t>(rng.uniform_u64(16)), true});
    }
  }
  p.cycles1 = 150 + rng.uniform_u64(450);
  p.cycles2 = 150 + rng.uniform_u64(450);
  p.mutate = rng.uniform() < 0.5;
  p.mutate_route = rng.uniform_u64(n_routes);
  p.new_period = kPeriods[rng.uniform_u64(6)];
  return p;
}

std::string describe(const Plan& p) {
  std::ostringstream os;
  os << "seed=" << p.seed << " routes=[";
  for (std::size_t i = 0; i < p.routes.size(); ++i) {
    if (i) os << ", ";
    if (p.routes[i].has_fifo) os << "fifo(" << p.routes[i].fifo_depth << ")+";
    os << "gate(" << p.routes[i].period << ")";
  }
  os << "] saturate=" << p.saturate << " valid_p=" << p.valid_p
     << " ready_p=" << p.ready_p << " beats=" << p.stimulus.size()
     << " cycles=" << p.cycles1 << "+" << p.cycles2;
  if (p.mutate) {
    os << " mutate(route " << p.mutate_route << " -> period " << p.new_period
       << ")";
  }
  return os.str();
}

struct Bench {
  std::unique_ptr<Testbench> tb;
  std::vector<RateGate*> gates;
  Sink* sink = nullptr;
  FlowChecker* flow = nullptr;
  CycleTraceRecorder* trace = nullptr;
};

Bench build(const Plan& p, SettleMode mode) {
  Bench b;
  b.tb = std::make_unique<Testbench>(CheckMode::kStrict, mode);
  Testbench& tb = *b.tb;

  Wire& src_w = tb.wire("src");
  std::vector<const Wire*> traced{&src_w};

  Source::Config scfg;
  scfg.saturate = p.saturate;
  scfg.valid_probability = p.valid_p;
  scfg.seed = p.seed * 2 + 1;
  Source& src = tb.add<Source>("source", src_w, scfg);
  for (const Beat& beat : p.stimulus) src.push(beat);

  std::vector<Wire*> route_in;
  for (std::size_t i = 0; i < p.routes.size(); ++i) {
    route_in.push_back(&tb.wire("r" + std::to_string(i)));
    traced.push_back(route_in.back());
  }
  tb.add<Router>("router", src_w, route_in);

  std::uint64_t allowed_in_flight = 0;
  std::vector<Wire*> mux_in;
  for (std::size_t i = 0; i < p.routes.size(); ++i) {
    Wire* cur = route_in[i];
    if (p.routes[i].has_fifo) {
      Wire& f = tb.wire("f" + std::to_string(i));
      tb.add<Fifo>("fifo" + std::to_string(i), *cur, f,
                   p.routes[i].fifo_depth);
      allowed_in_flight += p.routes[i].fifo_depth;
      traced.push_back(&f);
      cur = &f;
    }
    Wire& g = tb.wire("g" + std::to_string(i));
    b.gates.push_back(&tb.add<RateGate>("gate" + std::to_string(i), *cur, g,
                                        p.routes[i].period));
    traced.push_back(&g);
    mux_in.push_back(&g);
  }

  Wire& out = tb.wire("out");
  traced.push_back(&out);
  tb.add<RoundRobinMux>("mux", mux_in, out);
  Sink::Config kcfg;
  kcfg.ready_probability = p.ready_p;
  kcfg.seed = p.seed * 3 + 7;
  b.sink = &tb.add<Sink>("sink", out, kcfg);
  // Routes with different PERIODs legally reorder beats across TDESTs, so
  // no id-order check at the merge point; per-TDEST order is still enforced
  // by the FlowChecker.
  tb.add<Monitor>("mon", out, /*check_id_order=*/false);
  b.flow = &tb.watch_flow("fuzz-region", {&src_w}, {&out}, allowed_in_flight);
  b.trace = &tb.add<CycleTraceRecorder>("trace", traced);
  return b;
}

void drive(Bench& b, const Plan& p) {
  b.tb->run(p.cycles1);
  if (p.mutate) b.gates[p.mutate_route]->set_period(p.new_period);
  b.tb->run(p.cycles2);
  b.tb->finish_checks();
}

void run_differential(std::uint64_t seed) {
  const Plan plan = make_plan(seed);
  SCOPED_TRACE(describe(plan));

  Bench naive = build(plan, SettleMode::kNaive);
  drive(naive, plan);
  Bench act = build(plan, SettleMode::kActivity);
  drive(act, plan);

  const std::string divergence =
      CycleTraceRecorder::diff(*naive.trace, *act.trace);
  ASSERT_EQ(divergence, "")
      << "replay with make_plan(" << seed << "): " << divergence;

  EXPECT_EQ(naive.tb->cycle(), act.tb->cycle());
  EXPECT_EQ(naive.tb->skipped_cycles(), 0u);
  EXPECT_EQ(naive.flow->entered(), act.flow->entered());
  EXPECT_EQ(naive.flow->exited(), act.flow->exited());
  const auto& a = naive.sink->arrivals();
  const auto& c = act.sink->arrivals();
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].cycle, c[i].cycle) << "arrival " << i;
    ASSERT_EQ(a[i].beat, c[i].beat) << "arrival " << i;
  }
}

class SchedFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedFuzzTest, NaiveAndActivityTracesIdentical) {
  run_differential(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(SchedFuzzTest, ActivitySchedulerActuallySkipsSomewhere) {
  // Guard against the fuzz passing vacuously: across the seed corpus at
  // least some plans must engage the fast-forward path.
  std::uint64_t total_skipped = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Plan plan = make_plan(seed);
    Bench act = build(plan, SettleMode::kActivity);
    drive(act, plan);
    total_skipped += act.tb->skipped_cycles();
  }
  EXPECT_GT(total_skipped, 1000u);
}

}  // namespace
}  // namespace tfsim::axi
