// Randomized robustness: decoders must never crash, loop, or silently
// accept garbage, no matter the input bytes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "capi/frame.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "workloads/kvstore/resp.hpp"

namespace tfsim {
namespace {

TEST(FrameFuzzTest, RandomBytesNeverDecodeSilently) {
  sim::Rng rng(0xF00D);
  int accepted = 0;
  for (int trial = 0; trial < 50000; ++trial) {
    std::vector<std::uint8_t> buf(rng.uniform_u64(2 * capi::kFrameBytes));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    const auto res = capi::decode(buf.data(), buf.size());
    // Either a command or an error, never both/neither.
    EXPECT_NE(res.command.has_value(), res.error.has_value());
    accepted += res.command.has_value() ? 1 : 0;
  }
  // Magic (16 bits) + Fletcher-32 make random acceptance essentially
  // impossible.
  EXPECT_EQ(accepted, 0);
}

TEST(FrameFuzzTest, TruncationsOfValidFrameAreRejected) {
  capi::Command cmd;
  cmd.opcode = capi::Opcode::kReadRequest;
  cmd.addr = 0x42;
  const auto buf = capi::encode(cmd);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    const auto res = capi::decode(buf.data(), len);
    EXPECT_FALSE(res.command.has_value()) << "accepted at length " << len;
  }
}

TEST(PacketFuzzTest, RandomPayloadMutationsAreCaught) {
  sim::Rng rng(0xBEEF);
  capi::Command cmd;
  cmd.opcode = capi::Opcode::kWriteRequest;
  cmd.size = 128;
  for (int trial = 0; trial < 5000; ++trial) {
    auto pkt = net::encapsulate(0, 1, static_cast<std::uint32_t>(trial), cmd);
    const auto idx = rng.uniform_u64(pkt.payload.size());
    const auto bit = rng.uniform_u64(8);
    pkt.payload[idx] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_FALSE(net::decapsulate(pkt).has_value())
        << "flip at byte " << idx << " bit " << bit;
  }
}

TEST(RespFuzzTest, RandomStringsNeverCrashOrLoop) {
  sim::Rng rng(0xCAFE);
  const char alphabet[] = "*$:+-\r\n0123456789abcGETSET ";
  for (int trial = 0; trial < 50000; ++trial) {
    std::string s;
    const auto len = rng.uniform_u64(64);
    for (std::uint64_t i = 0; i < len; ++i) {
      s += alphabet[rng.uniform_u64(sizeof(alphabet) - 1)];
    }
    std::string err;
    const auto parsed = workloads::kv::resp_parse_command(s, &err);
    if (parsed.has_value()) {
      EXPECT_LE(parsed->consumed, s.size());
    }
  }
}

TEST(RespFuzzTest, MutatedValidCommandsParseOrFailCleanly) {
  sim::Rng rng(0xD00D);
  const auto wire =
      workloads::kv::resp_encode_command({"SET", "key-123", "value-body"});
  for (int trial = 0; trial < 20000; ++trial) {
    std::string s = wire;
    s[rng.uniform_u64(s.size())] =
        static_cast<char>(rng.uniform_u64(128));
    const auto parsed = workloads::kv::resp_parse_command(s);
    if (parsed.has_value()) {
      EXPECT_LE(parsed->consumed, s.size());
      EXPECT_LE(parsed->parts.size(), 1024u);
    }
  }
}

}  // namespace
}  // namespace tfsim
