// Open-loop serving properties (slow tier):
//   * the full serving report -- hence every arrival, dispatch, QoS verdict
//     and failover -- is byte-identical across 1/2/8 PDES workers;
//   * each arrival process's empirical mean inter-arrival time converges to
//     1/rate as the sample count grows;
//   * the offered == completed + shed + rejected + failed + in_flight +
//     queued conservation law holds at every probe point, not just at the
//     end of the run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/serving.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/units.hpp"
#include "workloads/openloop/arrivals.hpp"
#include "workloads/openloop/generator.hpp"

namespace tfsim::workloads {
namespace {

// The Cluster honors $TFSIM_PDES over the scenario, so pin the requested
// worker count for the duration of one run (and restore afterwards: other
// suites in this binary rely on the ambient setting).
class PdesEnvPin {
 public:
  explicit PdesEnvPin(unsigned threads) {
    const char* old = std::getenv("TFSIM_PDES");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    setenv("TFSIM_PDES", std::to_string(threads).c_str(), 1);
  }
  ~PdesEnvPin() {
    if (had_) {
      setenv("TFSIM_PDES", saved_.c_str(), 1);
    } else {
      unsetenv("TFSIM_PDES");
    }
  }

 private:
  bool had_ = false;
  std::string saved_;
};

core::ServingReport serving_run(unsigned threads, std::uint64_t seed) {
  auto spec = *scenario::builtin("serving_diurnal");
  spec.traffic.seed = seed;
  spec.traffic.duration_us = 2000.0;
  spec.traffic.diurnal_period_us = 2000.0;
  spec.faults.kill_at_us = 1000.0;
  spec.slo.window_us = 500.0;
  spec.pdes.threads = threads;
  PdesEnvPin pin(threads);
  node::Cluster cluster(spec);
  return core::run_serving(cluster);
}

TEST(OpenLoopPdesProperty, ReportByteIdenticalAcross128Workers) {
  for (const std::uint64_t seed : {1ull, 20260808ull, 0xD15EA5Eull}) {
    const core::ServingReport serial = serving_run(1, seed);
    const core::ServingReport two = serving_run(2, seed);
    const core::ServingReport eight = serving_run(8, seed);
    EXPECT_EQ(serial.serialized, two.serialized) << "seed " << seed;
    EXPECT_EQ(serial.serialized, eight.serialized) << "seed " << seed;
    EXPECT_EQ(serial.digest, eight.digest) << "seed " << seed;
    EXPECT_GT(serial.totals.completed, 0u);
    EXPECT_GT(serial.failovers, 0u)
        << "the kill path must be inside the identity claim";
  }
}

class ArrivalConvergenceTest : public ::testing::TestWithParam<ArrivalKind> {};

TEST_P(ArrivalConvergenceTest, MeanInterArrivalConvergesToRate) {
  ArrivalConfig cfg;
  cfg.kind = GetParam();
  cfg.rate_rps = 2e6;  // 2 requests/us -> exact mean gap 0.5 us
  cfg.seed = 41;
  // Whole periods only, so the on/off and sinusoidal modulation averages
  // out exactly; tighter tolerance at larger n is the convergence claim.
  cfg.burst_on_us = 100.0;
  cfg.burst_off_us = 300.0;
  cfg.diurnal_period_us = 1000.0;
  double prev_err = 0.0;
  for (const int n : {20000, 200000}) {
    ArrivalProcess p(cfg);
    sim::Time last = 0;
    for (int i = 0; i < n; ++i) last = p.next();
    const double mean_gap_us = sim::to_us(last) / n;
    const double err = std::abs(mean_gap_us - 0.5) / 0.5;
    EXPECT_LT(err, n >= 200000 ? 0.01 : 0.05)
        << to_string(cfg.kind) << " n=" << n;
    if (n > 20000) {
      EXPECT_LT(err, prev_err + 0.01)
          << "error must not grow with sample count";
    }
    prev_err = err;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ArrivalConvergenceTest,
                         ::testing::Values(ArrivalKind::kPoisson,
                                           ArrivalKind::kBursty,
                                           ArrivalKind::kDiurnal),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

TEST(OpenLoopLedgerProperty, BalancedAtEveryProbePoint) {
  sim::Engine engine;
  OpenLoopConfig cfg;
  cfg.arrivals.kind = ArrivalKind::kBursty;  // on/off stresses the queue
  cfg.arrivals.rate_rps = 4e6;
  cfg.arrivals.seed = 13;
  cfg.arrivals.burst_on_us = 20.0;
  cfg.arrivals.burst_off_us = 60.0;
  cfg.max_in_flight = 8;
  cfg.queue_depth = 16;
  cfg.stop_at = sim::from_us(2000.0);
  cfg.request_timeout = sim::from_us(40.0);
  // Service is slower than the on-phase offered rate, so the window fills
  // and the queue sheds; every 7th request is swallowed by the sink (a lost
  // frame), so timeouts fire too -- all buckets are live at once.
  OpenLoopSource src(engine, cfg,
                     [&engine](sim::Time, std::uint64_t req_id,
                               OpenLoopSource::CompletionFn done) {
                       if (req_id % 7 == 0) return;  // never answered
                       engine.schedule_in(sim::from_us(1.5), [done, &engine] {
                         done(engine.now(), RequestOutcome::kCompleted);
                       });
                     });
  std::uint64_t probes = 0;
  for (int i = 1; i <= 200; ++i) {
    engine.schedule_at(sim::from_us(10.0) * i, [&] {
      ++probes;
      EXPECT_TRUE(src.counters().balanced())
          << "ledger unbalanced at " << engine.now();
    });
  }
  src.start();
  engine.run();
  ++probes;
  const OpenLoopCounters& c = src.counters();
  EXPECT_TRUE(c.balanced()) << "final drain";
  EXPECT_EQ(c.in_flight, 0u);
  EXPECT_EQ(c.queued, 0u);
  EXPECT_EQ(probes, 201u);
  // The scenario genuinely exercised every bucket.
  EXPECT_GT(c.completed, 0u);
  EXPECT_GT(c.shed, 0u);
  EXPECT_GT(c.failed, 0u);
}

}  // namespace
}  // namespace tfsim::workloads
