// Property-based tests: shadow models, metamorphic relations, and
// randomized stress across the stack.
#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <map>
#include <tuple>
#include <vector>

#include "axi/endpoints.hpp"
#include "axi/fifo.hpp"
#include "axi/monitor.hpp"
#include "axi/testbench.hpp"
#include "core/session.hpp"
#include "mem/cache.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "workloads/graph500/graph500.hpp"
#include "workloads/kvstore/kvstore.hpp"
#include "workloads/kvstore/memtier.hpp"

namespace tfsim {
namespace {

// --- cache vs shadow LRU model ------------------------------------------

/// Reference cache: per-set std::list as true LRU, no clever indexing.
class ShadowLruCache {
 public:
  explicit ShadowLruCache(const mem::CacheConfig& cfg) : cfg_(cfg) {}

  bool access(mem::Addr addr, bool write, bool* wb) {
    const mem::Addr line = mem::line_base(addr, cfg_.line_bytes);
    const auto set = (line / cfg_.line_bytes) % cfg_.num_sets();
    auto& lru = sets_[set];
    *wb = false;
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->first == line) {
        it->second = it->second || write;
        lru.splice(lru.begin(), lru, it);  // move to MRU
        return true;
      }
    }
    if (lru.size() == cfg_.associativity) {
      *wb = lru.back().second;
      lru.pop_back();
    }
    lru.emplace_front(line, write);
    return false;
  }

 private:
  mem::CacheConfig cfg_;
  std::map<std::uint64_t, std::list<std::pair<mem::Addr, bool>>> sets_;
};

class CacheShadowTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(CacheShadowTest, MatchesReferenceLruExactly) {
  const auto [size, assoc] = GetParam();
  const mem::CacheConfig cfg{size, assoc, 128, mem::Replacement::kLru};
  mem::SetAssocCache cache(cfg);
  ShadowLruCache shadow(cfg);
  sim::Rng rng(size ^ assoc);
  for (int i = 0; i < 20000; ++i) {
    // Cluster addresses so sets conflict often.
    const mem::Addr addr = rng.uniform_u64(size * 4);
    const bool write = rng.uniform() < 0.3;
    bool shadow_wb = false;
    const bool shadow_hit = shadow.access(addr, write, &shadow_wb);
    const auto r = cache.access(addr, write);
    ASSERT_EQ(r.hit, shadow_hit) << "access " << i << " addr " << addr;
    ASSERT_EQ(r.writeback, shadow_wb) << "access " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheShadowTest,
    ::testing::Values(std::make_tuple(std::uint64_t{2048}, 2u),
                      std::make_tuple(std::uint64_t{4096}, 4u),
                      std::make_tuple(std::uint64_t{8192}, 1u),
                      std::make_tuple(std::uint64_t{16384}, 16u),
                      std::make_tuple(std::uint64_t{65536}, 8u)));

// --- AXI FIFO vs shadow queue under random handshakes ----------------------

class FifoShadowTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, double>> {};

TEST_P(FifoShadowTest, NoLossNoDuplicationNoReorder) {
  const auto [depth, valid_p, ready_p] = GetParam();
  axi::Testbench tb;
  auto& in = tb.wire("in");
  auto& out = tb.wire("out");
  axi::Source::Config scfg;
  scfg.saturate = true;
  scfg.valid_probability = valid_p;
  scfg.seed = depth;
  tb.add<axi::Source>("src", in, scfg);
  tb.add<axi::Fifo>("fifo", in, out, depth);
  axi::Sink::Config kcfg;
  kcfg.ready_probability = ready_p;
  kcfg.seed = depth + 1;
  auto& sink = tb.add<axi::Sink>("sink", out, kcfg);
  auto& mon = tb.add<axi::Monitor>("mon", out, /*check_id_order=*/true);
  tb.run(5000);
  EXPECT_TRUE(mon.clean())
      << (mon.violations().empty() ? "" : mon.violations()[0]);
  // ids must be exactly 0..n-1.
  for (std::size_t i = 0; i < sink.arrivals().size(); ++i) {
    ASSERT_EQ(sink.arrivals()[i].beat.id, i);
  }
  EXPECT_GT(sink.received(), 100u) << "traffic actually flowed";
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, FifoShadowTest,
    ::testing::Values(std::make_tuple(std::size_t{1}, 1.0, 1.0),
                      std::make_tuple(std::size_t{2}, 0.7, 0.4),
                      std::make_tuple(std::size_t{4}, 0.4, 0.7),
                      std::make_tuple(std::size_t{8}, 0.9, 0.9),
                      std::make_tuple(std::size_t{16}, 0.3, 0.3)));

// --- engine/task stress ------------------------------------------------------

sim::Task chaotic_task(sim::Engine& e, sim::Rng& rng, int hops,
                       std::vector<sim::Time>& observations) {
  for (int i = 0; i < hops; ++i) {
    co_await sim::delay(e, rng.uniform_u64(1000) + 1);
    observations.push_back(e.now());
  }
}

TEST(EngineStressTest, ManyInterleavedTasksObserveMonotoneTime) {
  sim::Engine engine;
  sim::Rng rng(99);
  std::vector<sim::Time> observations;
  std::vector<sim::Task> tasks;
  for (int t = 0; t < 64; ++t) {
    tasks.push_back(chaotic_task(engine, rng, 50, observations));
  }
  engine.run();
  ASSERT_EQ(observations.size(), 64u * 50u);
  for (std::size_t i = 1; i < observations.size(); ++i) {
    ASSERT_GE(observations[i], observations[i - 1])
        << "simulated time went backwards";
  }
  for (const auto& t : tasks) EXPECT_TRUE(t.done());
}

// --- injector metamorphic property ------------------------------------------

class PeriodMonotonicityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeriodMonotonicityTest, HigherPeriodNeverFaster) {
  const std::uint64_t period = GetParam();
  auto run = [](std::uint64_t p) {
    core::SessionConfig cfg;
    cfg.period = p;
    core::Session s(cfg);
    workloads::StreamConfig sc;
    sc.elements = 300'000;
    const auto res = s.run_stream(sc);
    return std::make_pair(res.total_elapsed, res.avg_latency_us);
  };
  const auto [t_lo, lat_lo] = run(period);
  const auto [t_hi, lat_hi] = run(period * 4);
  EXPECT_GE(t_hi, t_lo) << "more delay cannot finish sooner";
  EXPECT_GE(lat_hi, lat_lo);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodMonotonicityTest,
                         ::testing::Values(2, 8, 32, 128));

// --- determinism ------------------------------------------------------------

TEST(DeterminismTest, IdenticalSeedsIdenticalResults) {
  auto run = [] {
    core::SessionConfig cfg;
    cfg.period = 16;
    core::Session s(cfg);
    workloads::kv::KvStoreConfig store_cfg;
    store_cfg.buckets = 1 << 10;
    workloads::kv::MemtierConfig load_cfg;
    load_cfg.threads = 1;
    load_cfg.connections = 4;
    load_cfg.requests_per_client = 50;
    load_cfg.key_space = 500;
    const auto res = s.run_memtier(store_cfg, load_cfg);
    return std::make_tuple(res.elapsed, res.hits, res.sets);
  };
  EXPECT_EQ(run(), run()) << "whole-stack runs must be bit-reproducible";
}

TEST(DeterminismTest, GraphJobsAreReproducible) {
  workloads::g500::Graph500Config gcfg;
  gcfg.gen.scale = 12;
  const auto edges = workloads::g500::kronecker_generate(gcfg.gen);
  auto run = [&] {
    core::SessionConfig cfg;
    cfg.period = 8;
    core::Session s(cfg);
    return s.run_bfs_job(gcfg, edges, 3).total();
  };
  EXPECT_EQ(run(), run());
}

// --- kv store randomized vs std::map oracle ----------------------------------

TEST(KvShadowTest, RandomOpsMatchMapOracle) {
  node::Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  workloads::kv::KvStoreConfig cfg;
  cfg.buckets = 64;  // tiny: force heavy chaining
  cfg.max_keys = 4096;
  cfg.value_size = 128;
  workloads::kv::KvStore store(tb.borrower(), cfg);
  node::MemContext ctx(tb.borrower(), node::CpuConfig{8, 100}, "kv");
  std::map<std::string, std::uint64_t> oracle;
  sim::Rng rng(2024);
  std::uint64_t version = 1;
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform_u64(300));
    const auto op = rng.uniform_u64(10);
    if (op < 4) {  // set
      store.set(ctx, key, version);
      oracle[key] = version;
      ++version;
    } else if (op < 5) {  // del
      ASSERT_EQ(store.del(ctx, key), oracle.erase(key) > 0) << i;
    } else {  // get
      const auto got = store.get(ctx, key);
      const auto it = oracle.find(key);
      ASSERT_EQ(got.found, it != oracle.end()) << i;
      if (got.found) {
        ASSERT_EQ(got.version, it->second) << i;
      }
    }
    ASSERT_EQ(store.size(), oracle.size());
  }
}

}  // namespace
}  // namespace tfsim
