// Property tests for the fault-injection layer (ISSUE acceptance): with
// nonzero loss every lost or corrupted frame is retried to completion or
// surfaces as a counted abandonment -- zero hung transactions -- and the
// whole (loss x flap) surface is byte-identical between the serial sweep
// and an 8-worker fan-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/resilience.hpp"
#include "mem/dram.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "nic/nic.hpp"
#include "sim/units.hpp"

namespace tfsim {
namespace {

// The acceptance sweep axes: loss in {0, 1e-4, 1e-2} x flap schedules.
const std::vector<double> kLossRates = {0.0, 1e-4, 1e-2};

std::vector<std::vector<net::FlapSpec>> flap_schedules() {
  return {
      {},
      {net::FlapSpec{sim::from_us(200.0), sim::from_us(100.0), 0.0}},
      {net::FlapSpec{sim::from_us(100.0), sim::from_us(300.0), 0.25}},
  };
}

// --- NIC-level zero-hung-transactions sweep --------------------------------

struct ProbeRig {
  net::Network network;
  net::NodeId self, lender_node;
  mem::Dram lender_dram{mem::DramConfig{}};
  std::unique_ptr<nic::DisaggNic> nic;

  explicit ProbeRig(const net::FaultConfig& faults) {
    self = network.add_node("borrower");
    lender_node = network.add_node("lender");
    network.connect(self, lender_node, net::LinkConfig{});
    network.connect(lender_node, self, net::LinkConfig{});
    if (faults.enabled()) network.enable_faults(faults);
    nic::NicConfig cfg;
    cfg.replay.retry_timeout = sim::from_us(10.0);
    cfg.replay.max_retries = 4;
    nic = std::make_unique<nic::DisaggNic>(cfg, network, self);
    nic->register_lender(1, lender_node, &lender_dram);
    nic->translator().add_segment(nic::Segment{
        mem::Range{0x1000'0000, 16 * sim::kMiB}, 0, 1, "seg"});
    nic->attach();
  }
};

TEST(FaultPropertyTest, EveryAccessCompletesOrCountsAsAbandonment) {
  for (double loss : kLossRates) {
    std::uint32_t schedule = 0;
    for (const auto& flaps : flap_schedules()) {
      net::FaultConfig faults;
      faults.loss_rate = loss;
      faults.corrupt_rate = loss / 10.0;
      faults.seed = 17;
      faults.flaps = flaps;
      ProbeRig rig(faults);
      const std::string where =
          "loss=" + std::to_string(loss) +
          " schedule=" + std::to_string(schedule);

      constexpr std::uint64_t kAccesses = 3000;
      std::uint64_t completed = 0;
      sim::Time now = 0;
      sim::Time last_completion = 0;
      for (std::uint64_t i = 0; i < kAccesses; ++i) {
        const auto t = rig.nic->remote_access(
            now, 0x1000'0000 + (i % 4096) * 128u, i % 4 == 3);
        if (t.has_value()) {
          ++completed;
          EXPECT_GE(t->completion, t->issued) << where;
          EXPECT_GE(t->completion, last_completion)
              << where << " completions must stay monotone (FIFO model)";
          last_completion = t->completion;
          now = t->completion;
        } else {
          now += sim::from_us(100.0);
        }
      }

      const auto& r = rig.nic->replay();
      // Every access is accounted for: completed or surfaced as a failure.
      EXPECT_EQ(completed + rig.nic->failures(), kAccesses) << where;
      // The replay ledger balances: each lost/corrupted frame produced
      // exactly one retry or one counted abandonment -- nothing hangs.
      EXPECT_EQ(r.frames_lost() + r.crc_drops(), r.retries() + r.abandoned())
          << where;
      // Configurations that are guaranteed to drop frames (heavy loss, or a
      // hard-down flap the closed loop runs through) must exercise the
      // retry path; a degraded flap only stretches service time and a
      // 1e-4 loss rate may legitimately hit zero frames in this run.
      const bool has_down_flap =
          std::any_of(flaps.begin(), flaps.end(),
                      [](const net::FlapSpec& f) { return f.down(); });
      if (loss >= 1e-2 || has_down_flap) {
        EXPECT_GT(r.frames_lost() + r.crc_drops(), 0u) << where;
      }
      if (loss == 0.0 && !has_down_flap) {
        EXPECT_EQ(r.retries(), 0u) << where;
      }
      // Abandonments reclaimed every tag and credit.
      EXPECT_NO_THROW(rig.nic->check_quiesced()) << where;
      ++schedule;
    }
  }
}

// --- serial vs parallel matrix determinism ---------------------------------

std::string probe_fingerprint(const core::FaultProbe& p) {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "p=%llu loss=%.17g flap=%u att=%d done=%llu fail=%llu lat=%.17g "
      "retry=%llu aband=%llu crc=%llu lost=%llu rec=%llu det=%u h=%s",
      static_cast<unsigned long long>(p.point.period), p.point.loss_rate,
      p.point.flap_schedule, p.attached ? 1 : 0,
      static_cast<unsigned long long>(p.completed),
      static_cast<unsigned long long>(p.failed), p.avg_latency_us,
      static_cast<unsigned long long>(p.retries),
      static_cast<unsigned long long>(p.abandoned),
      static_cast<unsigned long long>(p.crc_drops),
      static_cast<unsigned long long>(p.frames_lost),
      static_cast<unsigned long long>(p.recovered), p.detached_lenders,
      core::to_string(p.health).c_str());
  return buf;
}

TEST(FaultPropertyTest, MatrixIsByteIdenticalSerialVsEightJobs) {
  core::FaultMatrixOptions opts;
  for (auto& node : opts.scenario.nodes) {
    node.nic.replay.retry_timeout = sim::from_us(10.0);
  }
  opts.periods = {1, 100};
  opts.loss_rates = kLossRates;
  opts.flap_schedules = flap_schedules();
  opts.corrupt_rate = 1e-3;
  opts.seed = 23;
  opts.accesses = 1000;

  const auto serial = core::assess_fault_matrix(opts, 1);
  const auto parallel = core::assess_fault_matrix(opts, 8);
  ASSERT_EQ(serial.size(),
            opts.periods.size() * opts.loss_rates.size() *
                opts.flap_schedules.size());
  ASSERT_EQ(parallel.size(), serial.size());

  std::uint64_t retried = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(probe_fingerprint(serial[i]), probe_fingerprint(parallel[i]))
        << "point " << i;
    retried += serial[i].retries;
    EXPECT_EQ(serial[i].frames_lost + serial[i].crc_drops,
              serial[i].retries + serial[i].abandoned)
        << "point " << i;
  }
  EXPECT_GT(retried, 0u)
      << "the sweep must exercise the replay path, or the determinism "
         "claim covers nothing";
}

TEST(FaultPropertyTest, SameSpecReproducesTheMatrixExactly) {
  core::FaultMatrixOptions opts;
  for (auto& node : opts.scenario.nodes) {
    node.nic.replay.retry_timeout = sim::from_us(10.0);
  }
  opts.periods = {1};
  opts.loss_rates = {1e-2};
  opts.flap_schedules = {{}};
  opts.seed = 7;
  opts.accesses = 800;
  const auto a = core::assess_fault_matrix(opts, 1);
  const auto b = core::assess_fault_matrix(opts, 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(probe_fingerprint(a[i]), probe_fingerprint(b[i])) << i;
  }
  // A different seed must produce a different fault pattern somewhere.
  opts.seed = 8;
  const auto c = core::assess_fault_matrix(opts, 1);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (probe_fingerprint(a[i]) != probe_fingerprint(c[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "seed must steer the fault stream";
}

}  // namespace
}  // namespace tfsim
