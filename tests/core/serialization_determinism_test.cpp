// Regression tests for simlint rule R2's end-to-end property: serialized
// output (protocol reports, stranded-beat messages, CSV tables) must be
// byte-identical across runs regardless of container insertion order or
// hash-table layout.  These are the paths where unordered_map iteration
// used to be able to leak hash-seed dependence into reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "axi/checker.hpp"
#include "axi/stream.hpp"
#include "core/protocol_report.hpp"
#include "core/report.hpp"

namespace tfsim {
namespace {

// Push one fired beat through a wire so a FlowChecker entry books it.
void enter_beat(axi::Wire& w, axi::FlowChecker& fc, std::uint64_t id,
                std::uint32_t dest, std::uint64_t cycle) {
  w.set_beat(axi::Beat{id, dest, 0, true});
  w.set_valid(true);
  w.set_ready(true);
  fc.tick(cycle);
  w.set_valid(false);
  w.set_ready(false);
}

// Feed `dests` (one stranded beat each) into a fresh FlowChecker and return
// the end-of-test violation message.
std::string stranded_report(const std::vector<std::uint32_t>& dests) {
  axi::ViolationSink sink;
  sink.set_mode(axi::CheckMode::kCollect);
  axi::Wire in;
  axi::FlowChecker fc("region", {&in}, {}, sink);
  std::uint64_t cycle = 0;
  for (const std::uint32_t d : dests) {
    enter_beat(in, fc, /*id=*/1000 + d, d, cycle++);
  }
  fc.finish(cycle);
  EXPECT_EQ(sink.total(), 1u);
  return sink.violations().empty() ? std::string()
                                   : sink.violations().front().to_string();
}

TEST(SerializationDeterminismTest, StrandedBeatReportIgnoresInsertionOrder) {
  // The scoreboard accumulates per-TDEST queues; the report names the
  // stranded beat with the lowest TDEST.  Ascending, descending, and
  // shuffled insertion orders must serialize the same bytes.
  std::vector<std::uint32_t> ascending;
  for (std::uint32_t d = 0; d < 64; ++d) ascending.push_back(d * 7 + 3);
  std::vector<std::uint32_t> descending(ascending.rbegin(), ascending.rend());
  std::vector<std::uint32_t> shuffled = ascending;
  // Deterministic shuffle (no ambient RNG in tests either).
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    std::swap(shuffled[i], shuffled[(i * 31 + 17) % shuffled.size()]);
  }

  const std::string a = stranded_report(ascending);
  const std::string b = stranded_report(descending);
  const std::string c = stranded_report(shuffled);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_NE(a.find("id=1003"), std::string::npos)
      << "lowest TDEST (3) must name the stranded beat: " << a;
}

TEST(SerializationDeterminismTest, ViolationSummaryIgnoresReportOrder) {
  using axi::Violation;
  using axi::ViolationKind;
  std::vector<Violation> violations;
  for (int i = 0; i < 5; ++i) {
    violations.push_back(Violation{ViolationKind::kBeatDropped, "w", 10, "x"});
    violations.push_back(Violation{ViolationKind::kBeatReordered, "w", 11, "y"});
  }
  violations.push_back(Violation{ViolationKind::kPayloadMutated, "w", 12, "z"});

  const auto render = [](const std::vector<Violation>& vs) {
    axi::ViolationSink sink;
    sink.set_mode(axi::CheckMode::kCollect);
    for (const auto& v : vs) sink.report(v);
    std::ostringstream os;
    core::violation_summary("audit", sink).print(os);
    return os.str();
  };

  const std::string forward = render(violations);
  std::vector<Violation> reversed(violations.rbegin(), violations.rend());
  const std::string backward = render(reversed);
  EXPECT_EQ(forward, backward)
      << "summary tables must not depend on report order";
  EXPECT_NE(forward.find("TOTAL"), std::string::npos);
}

TEST(SerializationDeterminismTest, MetricsDigestSurvivesForcedRehash) {
  // The approved pattern for hash-map accumulators feeding reports: keyed
  // accumulation may be unordered, but serialization extracts and sorts.
  // Forcing wildly different bucket counts (what a hash-seed change does to
  // iteration order) must not move a byte of output.
  const auto serialize = [](std::size_t bucket_hint,
                            const std::vector<std::uint32_t>& order) {
    std::unordered_map<std::uint32_t, std::uint64_t> acc;
    acc.rehash(bucket_hint);
    for (const std::uint32_t k : order) acc[k % 17] += k;
    // Extract-and-sort before serializing (the R2-clean idiom).
    std::vector<std::pair<std::uint32_t, std::uint64_t>> rows(acc.begin(),
                                                              acc.end());
    std::sort(rows.begin(), rows.end());
    core::Table t("metrics", {"key", "sum"});
    for (const auto& [k, v] : rows) {
      t.row({std::to_string(k), std::to_string(v)});
    }
    std::ostringstream os;
    t.print(os);
    return os.str();
  };

  std::vector<std::uint32_t> keys;
  for (std::uint32_t i = 0; i < 500; ++i) keys.push_back(i * 131 + 7);
  std::vector<std::uint32_t> reversed(keys.rbegin(), keys.rend());

  const std::string small_table = serialize(1, keys);
  const std::string big_table = serialize(1 << 14, keys);
  const std::string reordered = serialize(257, reversed);
  EXPECT_EQ(small_table, big_table);
  EXPECT_EQ(small_table, reordered);
}

TEST(SerializationDeterminismTest, TableBytesAreStableAcrossRuns) {
  // Two independently built, identically populated tables print and CSV
  // identically -- the Table layer adds no ambient state (timestamps,
  // pointers, locale).
  const auto build = [] {
    core::Table t("latency", {"period", "p99_us"});
    t.row({"1", core::Table::num(1.71)});
    t.row({"40", core::Table::num(18.5)});
    return t;
  };
  std::ostringstream a, b;
  build().print(a);
  build().print(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(a.str().empty());
}

}  // namespace
}  // namespace tfsim
