#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/resilience.hpp"
#include "core/session.hpp"

namespace tfsim::core {
namespace {

TEST(MetricsTest, DegradationFromTimes) {
  EXPECT_DOUBLE_EQ(degradation_from_times(200, 100), 2.0);
  EXPECT_DOUBLE_EQ(degradation_from_times(100, 100), 1.0);
  EXPECT_EQ(degradation_from_times(100, 0), 0.0);
}

TEST(MetricsTest, DegradationFromRates) {
  EXPECT_DOUBLE_EQ(degradation_from_rates(1000.0, 500.0), 2.0);
  EXPECT_EQ(degradation_from_rates(1000.0, 0.0), 0.0);
}

TEST(MetricsTest, BdpUnits) {
  // 10 GB/s x 1.65 us = 16.5 kB.
  EXPECT_NEAR(bdp_kb(10.0, 1.65), 16.5, 1e-9);
}

TEST(TableTest, FormatsAlignedOutput) {
  Table t("demo", {"col-a", "b"});
  t.row({"x", "1"});
  t.row({"longer-cell", "2"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("longer-cell"), std::string::npos);
  EXPECT_NE(s.find("col-a"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t("demo", {"a", "b", "c"});
  t.row({"only-one"});
  EXPECT_EQ(t.data()[0].size(), 3u);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::ratio(1.756), "1.76x");
  EXPECT_EQ(Table::ratio(2209.4), "2209x");
}

TEST(TableTest, CsvExport) {
  Table t("demo", {"a", "b"});
  t.row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/tfsim_table.csv";
  ASSERT_TRUE(t.to_csv(path));
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "a,b\n1,2\n");
  EXPECT_FALSE(t.to_csv("/no-such-dir-xyz/t.csv"));
}

// --- session ---------------------------------------------------------------

workloads::StreamConfig tiny_stream() {
  workloads::StreamConfig cfg;
  cfg.elements = 600'000;  // 14.4 MB of arrays: beyond the 10 MiB L3
  return cfg;
}

TEST(SessionTest, AttachesAndRunsStream) {
  SessionConfig cfg;
  cfg.period = 1;
  Session s(cfg);
  ASSERT_TRUE(s.attached());
  const auto res = s.run_stream(tiny_stream());
  EXPECT_TRUE(res.validated);
  EXPECT_GT(res.best_bandwidth_gbps, 1.0);
}

TEST(SessionTest, PeriodReachesInjector) {
  SessionConfig cfg;
  cfg.period = 50;
  Session s(cfg);
  ASSERT_TRUE(s.attached());
  EXPECT_EQ(s.injector_interval(), sim::clock_period(320e6) * 50);
}

TEST(SessionTest, ExtremePeriodFailsAttach) {
  SessionConfig cfg;
  cfg.period = 10000;
  Session s(cfg);
  EXPECT_FALSE(s.attached());
}

TEST(SessionTest, DistributionModeConfigures) {
  SessionConfig cfg;
  cfg.dist_kind = net::DistKind::kExponential;
  cfg.dist_mean = sim::from_us(1);
  Session s(cfg);
  ASSERT_TRUE(s.attached());
  EXPECT_EQ(s.injector_interval(), 0u) << "no fixed interval in dist mode";
  const auto res = s.run_stream(tiny_stream());
  EXPECT_TRUE(res.validated);
}

TEST(SessionTest, LocalPlacementIgnoresInjector) {
  SessionConfig remote_cfg;
  remote_cfg.period = 200;
  Session remote(remote_cfg);
  const auto r = remote.run_stream(tiny_stream());

  SessionConfig local_cfg;
  local_cfg.period = 200;
  local_cfg.placement = node::Placement::kLocal;
  Session local(local_cfg);
  const auto l = local.run_stream(tiny_stream());
  EXPECT_GT(l.best_bandwidth_gbps, 20 * r.best_bandwidth_gbps);
}

// --- resilience ---------------------------------------------------------------

ResilienceOptions tiny_resilience() {
  ResilienceOptions opts;
  opts.stream = tiny_stream();
  return opts;
}

TEST(ResilienceTest, HealthyAtLowPeriod) {
  const auto p = assess_resilience(1, tiny_resilience());
  EXPECT_TRUE(p.attached);
  EXPECT_EQ(p.health, HealthClass::kHealthy);
  EXPECT_GT(p.stream_bandwidth_gbps, 0.0);
}

TEST(ResilienceTest, DegradedAtHighPeriod) {
  const auto p = assess_resilience(1000, tiny_resilience());
  EXPECT_TRUE(p.attached);
  EXPECT_EQ(p.health, HealthClass::kDegraded);
  EXPECT_GT(p.stream_latency_us, 100.0);
}

TEST(ResilienceTest, DeviceLostAtExtremePeriod) {
  const auto p = assess_resilience(10000, tiny_resilience());
  EXPECT_FALSE(p.attached);
  EXPECT_EQ(p.health, HealthClass::kDeviceLost);
  EXPECT_EQ(p.stream_latency_us, 0.0);
}

TEST(ResilienceTest, ClassNames) {
  EXPECT_EQ(to_string(HealthClass::kHealthy), "healthy");
  EXPECT_EQ(to_string(HealthClass::kRecovering), "recovering");
  EXPECT_EQ(to_string(HealthClass::kDegraded), "degraded");
  EXPECT_EQ(to_string(HealthClass::kDetached), "detached");
  EXPECT_EQ(to_string(HealthClass::kDeviceLost), "device-lost");
}

// --- fault matrix -----------------------------------------------------------

TEST(FaultMatrixTest, ClassifyPrecedence) {
  constexpr double kSla = 100.0;
  FaultProbe p;
  p.attached = true;
  p.completed = 100;
  p.avg_latency_us = 2.0;
  EXPECT_EQ(classify(p, kSla), HealthClass::kHealthy);

  p.retries = 5;
  EXPECT_EQ(classify(p, kSla), HealthClass::kRecovering);

  p.avg_latency_us = 250.0;
  EXPECT_EQ(classify(p, kSla), HealthClass::kDegraded)
      << "over-SLA latency outranks recovering";
  p.avg_latency_us = 2.0;
  p.failed = 1;
  EXPECT_EQ(classify(p, kSla), HealthClass::kDegraded)
      << "surfaced failures are degradation even at low latency";

  p.detached_lenders = 1;
  EXPECT_EQ(classify(p, kSla), HealthClass::kDetached)
      << "capacity loss outranks degradation";

  p.attached = false;
  EXPECT_EQ(classify(p, kSla), HealthClass::kDeviceLost)
      << "no attach outranks everything";
}

TEST(FaultMatrixTest, TinyMatrixClassifiesAndBalances) {
  core::FaultMatrixOptions opts;
  // Shrink the retry timer so the lossy points stay fast.
  for (auto& node : opts.scenario.nodes) {
    node.nic.replay.retry_timeout = sim::from_us(5.0);
  }
  opts.periods = {1};
  opts.loss_rates = {0.0, 1e-2};
  opts.flap_schedules = {{}};
  opts.seed = 5;
  opts.accesses = 300;

  const auto probes = assess_fault_matrix(opts, 1);
  ASSERT_EQ(probes.size(), 2u);

  const auto& clean = probes[0];
  EXPECT_TRUE(clean.attached);
  EXPECT_EQ(clean.health, HealthClass::kHealthy);
  EXPECT_EQ(clean.completed, 300u);
  EXPECT_EQ(clean.retries, 0u);

  const auto& lossy = probes[1];
  EXPECT_TRUE(lossy.attached);
  EXPECT_EQ(lossy.health, HealthClass::kRecovering);
  EXPECT_GT(lossy.retries, 0u);
  EXPECT_GT(lossy.recovered, 0u);
  EXPECT_EQ(lossy.completed + lossy.failed, 300u);
  EXPECT_EQ(lossy.frames_lost + lossy.crc_drops,
            lossy.retries + lossy.abandoned)
      << "replay ledger must balance";
  EXPECT_GT(lossy.avg_latency_us, clean.avg_latency_us)
      << "loss costs latency";

  // Fan-out determinism: the parallel sweep reproduces the serial results
  // field for field.
  const auto parallel = assess_fault_matrix(opts, 4);
  ASSERT_EQ(parallel.size(), probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(parallel[i].completed, probes[i].completed) << i;
    EXPECT_EQ(parallel[i].retries, probes[i].retries) << i;
    EXPECT_EQ(parallel[i].frames_lost, probes[i].frames_lost) << i;
    EXPECT_DOUBLE_EQ(parallel[i].avg_latency_us, probes[i].avg_latency_us)
        << i;
    EXPECT_EQ(parallel[i].health, probes[i].health) << i;
  }
}

TEST(FaultMatrixTest, EmptyFlapAxisRejected) {
  core::FaultMatrixOptions opts;
  opts.flap_schedules.clear();
  EXPECT_THROW(assess_fault_matrix(opts, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tfsim::core
