#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tfsim::mem {
namespace {

CacheConfig small_cache() {
  // 8 sets x 2 ways x 128 B = 2 KiB.
  return CacheConfig{2048, 2, 128, Replacement::kLru};
}

TEST(CacheTest, ColdMissThenHit) {
  SetAssocCache c(small_cache());
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000 + 64, false).hit) << "same line";
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheTest, LruEvictionOrder) {
  SetAssocCache c(small_cache());
  // Three lines mapping to the same set (set stride = 8 sets * 128 B = 1 KiB).
  const Addr a = 0x0000, b = 0x0000 + 8 * 1024, d = 0x0000 + 16 * 1024;
  // Same set check: all map to set 0 (line_no % 8 == 0).
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);  // a is now MRU
  c.access(d, false);  // evicts b (LRU)
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));
  EXPECT_TRUE(c.probe(d));
}

TEST(CacheTest, DirtyVictimReportsWriteback) {
  SetAssocCache c(small_cache());
  const Addr a = 0x0000, b = 8 * 1024, d = 16 * 1024;
  c.access(a, true);   // dirty
  c.access(b, false);  // clean
  const auto r = c.access(d, false);  // evicts a (LRU, dirty)
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_line, a);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheTest, CleanVictimNoWriteback) {
  SetAssocCache c(small_cache());
  const Addr a = 0x0000, b = 8 * 1024, d = 16 * 1024;
  c.access(a, false);
  c.access(b, false);
  const auto r = c.access(d, false);
  EXPECT_FALSE(r.writeback);
}

TEST(CacheTest, WriteHitMarksDirty) {
  SetAssocCache c(small_cache());
  const Addr a = 0x0000, b = 8 * 1024, d = 16 * 1024;
  c.access(a, false);  // clean fill
  c.access(a, true);   // write hit dirties it
  c.access(b, false);
  c.access(b, false);  // b MRU
  const auto r = c.access(d, false);  // evict a
  EXPECT_TRUE(r.writeback);
}

TEST(CacheTest, InvalidateDropsLine) {
  SetAssocCache c(small_cache());
  c.access(0x2000, true);
  bool dirty = false;
  EXPECT_TRUE(c.invalidate(0x2000, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_FALSE(c.probe(0x2000));
  EXPECT_FALSE(c.invalidate(0x2000));
}

TEST(CacheTest, InvalidateRange) {
  SetAssocCache c(CacheConfig{64 * 1024, 4, 128});
  for (Addr a = 0; a < 16 * 1024; a += 128) c.access(a, false);
  const auto dropped = c.invalidate_range(Range{4096, 4096});
  EXPECT_EQ(dropped, 4096u / 128u);
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(4096));
  EXPECT_FALSE(c.probe(8191));
  EXPECT_TRUE(c.probe(8192));
}

TEST(CacheTest, ResidentLinesAndFlush) {
  SetAssocCache c(small_cache());
  for (Addr a = 0; a < 2048; a += 128) c.access(a, false);
  EXPECT_EQ(c.resident_lines(), 16u);
  c.flush();
  EXPECT_EQ(c.resident_lines(), 0u);
}

TEST(CacheTest, FullSweepBeyondCapacityEvicts) {
  SetAssocCache c(small_cache());
  for (Addr a = 0; a < 64 * 1024; a += 128) c.access(a, false);
  EXPECT_EQ(c.resident_lines(), 16u);  // never exceeds capacity
  EXPECT_EQ(c.stats().misses, 512u);   // streaming: everything misses
}

TEST(CacheTest, GeometryValidation) {
  EXPECT_THROW(SetAssocCache(CacheConfig{2048, 2, 100}), std::invalid_argument)
      << "non power-of-two line";
  EXPECT_THROW(SetAssocCache(CacheConfig{2048, 0, 128}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache(CacheConfig{2000, 2, 128}), std::invalid_argument)
      << "size not divisible into sets";
}

TEST(CacheTest, RandomReplacementStaysWithinSet) {
  SetAssocCache c(CacheConfig{2048, 2, 128, Replacement::kRandom});
  const Addr a = 0x0000, b = 8 * 1024, d = 16 * 1024;
  c.access(a, false);
  c.access(b, false);
  c.access(d, false);  // evicts a or b, at random
  EXPECT_TRUE(c.probe(d));
  EXPECT_EQ(c.resident_lines(), 2u);
  EXPECT_NE(c.probe(a), c.probe(b)) << "exactly one victim";
}

TEST(CacheTest, RandomReplacementLetsStreamsEvictHotLines) {
  // Property behind the L3 model: under random replacement a hot line's
  // survival decays as streaming pressure rises; under LRU it survives as
  // long as reuse distance < capacity.
  const CacheConfig lru_cfg{64 * 1024, 8, 128, Replacement::kLru};
  const CacheConfig rnd_cfg{64 * 1024, 8, 128, Replacement::kRandom};
  auto run = [](const CacheConfig& cfg) {
    SetAssocCache c(cfg, "probe");
    const Addr hot = 0;
    std::uint64_t hot_hits = 0;
    Addr stream = 1 << 20;
    for (int round = 0; round < 2000; ++round) {
      hot_hits += c.access(hot, false).hit ? 1 : 0;
      for (int s = 0; s < 3; ++s) {  // streaming pressure between touches
        c.access(stream, false);
        stream += 128;
      }
    }
    return hot_hits;
  };
  const auto lru_hits = run(lru_cfg);
  const auto rnd_hits = run(rnd_cfg);
  EXPECT_GT(lru_hits, 1990u) << "LRU keeps the hot line";
  EXPECT_LT(rnd_hits, lru_hits) << "random replacement must lose it sometimes";
}

}  // namespace
}  // namespace tfsim::mem
