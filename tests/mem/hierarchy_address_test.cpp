#include <gtest/gtest.h>

#include "mem/address.hpp"
#include "mem/dram.hpp"
#include "mem/hierarchy.hpp"

namespace tfsim::mem {
namespace {

// --- address math ------------------------------------------------------

TEST(AddressTest, LineBase) {
  EXPECT_EQ(line_base(0), 0u);
  EXPECT_EQ(line_base(127), 0u);
  EXPECT_EQ(line_base(128), 128u);
  EXPECT_EQ(line_base(300), 256u);
}

TEST(AddressTest, LinesSpanned) {
  EXPECT_EQ(lines_spanned(0, 0), 0u);
  EXPECT_EQ(lines_spanned(0, 1), 1u);
  EXPECT_EQ(lines_spanned(0, 128), 1u);
  EXPECT_EQ(lines_spanned(0, 129), 2u);
  EXPECT_EQ(lines_spanned(100, 100), 2u) << "straddles a boundary";
  EXPECT_EQ(lines_spanned(120, 8), 1u);
  EXPECT_EQ(lines_spanned(120, 9), 2u);
}

TEST(AddressTest, RangeSemantics) {
  const Range r{100, 50};
  EXPECT_TRUE(r.contains(100));
  EXPECT_TRUE(r.contains(149));
  EXPECT_FALSE(r.contains(150));
  EXPECT_FALSE(r.contains(99));
  EXPECT_TRUE(r.overlaps(Range{149, 10}));
  EXPECT_FALSE(r.overlaps(Range{150, 10}));
  EXPECT_TRUE(r.overlaps(Range{0, 101}));
  EXPECT_FALSE(r.overlaps(Range{0, 100}));
}

TEST(MemoryMapTest, FindAndRemove) {
  MemoryMap map;
  map.add_region(Region{Range{0, 1000}, Backing::kLocalDram, 0, "local"});
  map.add_region(Region{Range{5000, 1000}, Backing::kRemoteDram, 3, "remote"});
  ASSERT_NE(map.find(500), nullptr);
  EXPECT_EQ(map.find(500)->name, "local");
  ASSERT_NE(map.find(5500), nullptr);
  EXPECT_EQ(map.find(5500)->lender_id, 3u);
  EXPECT_EQ(map.find(2000), nullptr);
  EXPECT_EQ(map.find(6000), nullptr);
  EXPECT_TRUE(map.remove_region("remote"));
  EXPECT_EQ(map.find(5500), nullptr);
  EXPECT_FALSE(map.remove_region("remote"));
}

TEST(MemoryMapTest, OverlapRejected) {
  MemoryMap map;
  map.add_region(Region{Range{0, 1000}, Backing::kLocalDram, 0, "a"});
  EXPECT_THROW(
      map.add_region(Region{Range{999, 10}, Backing::kLocalDram, 0, "b"}),
      std::invalid_argument);
  EXPECT_THROW(map.add_region(Region{Range{10, 0}, Backing::kLocalDram, 0, "e"}),
               std::invalid_argument)
      << "empty region";
}

TEST(MemoryMapTest, TotalBytesByBacking) {
  MemoryMap map;
  map.add_region(Region{Range{0, 1000}, Backing::kLocalDram, 0, "a"});
  map.add_region(Region{Range{2000, 500}, Backing::kRemoteDram, 1, "b"});
  map.add_region(Region{Range{9000, 300}, Backing::kRemoteDram, 1, "c"});
  EXPECT_EQ(map.total_bytes(Backing::kLocalDram), 1000u);
  EXPECT_EQ(map.total_bytes(Backing::kRemoteDram), 800u);
}

// --- hierarchy ---------------------------------------------------------

std::vector<LevelConfig> tiny_hierarchy() {
  return {
      LevelConfig{CacheConfig{1024, 2, 128}, sim::from_ns(1), "L1"},
      LevelConfig{CacheConfig{4096, 4, 128}, sim::from_ns(5), "L2"},
  };
}

TEST(HierarchyTest, HitLevelsReported) {
  CacheHierarchy h(tiny_hierarchy());
  auto r = h.access(0x100, false);
  EXPECT_EQ(r.hit_level, -1) << "cold miss goes to memory";
  r = h.access(0x100, false);
  EXPECT_EQ(r.hit_level, 0);
  EXPECT_EQ(r.latency, sim::from_ns(1));
}

TEST(HierarchyTest, L2HitAfterL1Eviction) {
  CacheHierarchy h(tiny_hierarchy());
  // Fill L1 set 0 (2 ways) with three conflicting lines; L2 (4 ways of the
  // same set) still holds all of them.
  const Addr a = 0, b = 1024, d = 2048;
  h.access(a, false);
  h.access(b, false);
  h.access(d, false);  // evicts a from L1; L2 set has capacity 4... also maps
  const auto r = h.access(a, false);
  EXPECT_EQ(r.hit_level, 1) << "a must be an L2 hit after L1 eviction";
  EXPECT_EQ(r.latency, sim::from_ns(5));
}

TEST(HierarchyTest, WritebacksOnlyFromLastLevel) {
  CacheHierarchy h(tiny_hierarchy());
  // Dirty a line, then stream far past both caches.
  h.access(0, true);
  std::uint64_t wbs = 0;
  for (Addr a = 1 << 20; a < (1 << 20) + 64 * 1024; a += 128) {
    wbs += h.access(a, false).memory_writebacks.size();
  }
  EXPECT_GE(wbs, 1u);
}

TEST(HierarchyTest, InvalidateRangeDropsEverywhere) {
  CacheHierarchy h(tiny_hierarchy());
  h.access(0x100, true);
  h.access(0x100, true);
  EXPECT_GT(h.invalidate_range(Range{0, 4096}), 0u);
  const auto r = h.access(0x100, false);
  EXPECT_EQ(r.hit_level, -1);
}

TEST(HierarchyTest, TotalCapacity) {
  CacheHierarchy h(tiny_hierarchy());
  EXPECT_EQ(h.total_capacity(), 1024u + 4096u);
  EXPECT_EQ(h.num_levels(), 2u);
}

TEST(HierarchyTest, Power9DefaultsSane) {
  const auto levels = power9_like_hierarchy();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].cache.line_bytes, kCacheLineBytes);
  CacheHierarchy h(levels);  // must construct without throwing
  EXPECT_GT(h.total_capacity(), 10 * sim::kMiB);
}

TEST(HierarchyTest, EmptyLevelsRejected) {
  EXPECT_THROW(CacheHierarchy({}), std::invalid_argument);
}

// --- dram --------------------------------------------------------------

TEST(DramTest, LatencyPlusSerialization) {
  DramConfig cfg;
  cfg.bus_bandwidth = sim::Bandwidth::from_gbyte(128.0);  // 1 ns per 128 B
  cfg.access_latency = sim::from_ns(95);
  Dram d(cfg);
  EXPECT_EQ(d.access_line(0), sim::from_ns(96));
  // Second access queues behind the first line's bus slot.
  EXPECT_EQ(d.access_line(0), sim::from_ns(97));
}

TEST(DramTest, UtilizationTracksLoad) {
  DramConfig cfg;
  cfg.bus_bandwidth = sim::Bandwidth::from_gbyte(128.0);
  Dram d(cfg);
  for (int i = 0; i < 1000; ++i) d.access_line(0);
  // 1000 ns busy; utilization over 2000 ns elapsed = 50%.
  EXPECT_NEAR(d.utilization(sim::from_ns(2000)), 0.5, 0.01);
  EXPECT_EQ(d.requests(), 1000u);
  EXPECT_EQ(d.bytes_served(), 1000u * kCacheLineBytes);
}

}  // namespace
}  // namespace tfsim::mem
