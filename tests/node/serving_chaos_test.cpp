// Chaos timeline end-to-end on the 8x4 leaf/spine rack: a compressed
// chaos_rack run must exercise every event kind, the detector path must
// migrate off the gray lender (and rejoin after it recovers) while the
// timeout-only baseline stays pinned on it, and the whole reactive loop
// must stay byte-identical between the serial engine and a 4-worker PDES
// run -- chaos is windows, not mutations, so determinism survives it.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/serving.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"

namespace tfsim::node {
namespace {

/// chaos_rack at half duration: every chaos event (gray lender, recover,
/// port brownout, switch kill, recover) lands inside the shortened horizon
/// because the timeline scales with the traffic.
scenario::ScenarioSpec compressed_chaos(std::uint32_t threads) {
  auto spec = *scenario::builtin("chaos_rack");
  const double scale = 0.5;
  spec.traffic.duration_us *= scale;
  spec.slo.window_us *= scale;
  for (scenario::ChaosEventSpec& ev : spec.chaos.events) {
    ev.at_us *= scale;
    ev.for_us *= scale;
  }
  spec.pdes.threads = threads;
  return spec;
}

core::ServingReport run(const scenario::ScenarioSpec& spec) {
  Cluster cluster(spec);
  return core::run_serving(cluster);
}

TEST(ServingChaosTest, DetectorMigratesRestripesAndRejoins) {
  const core::ServingReport rep = run(compressed_chaos(1));

  EXPECT_TRUE(rep.balanced);
  EXPECT_GT(rep.totals.completed, 0u);

  // The gray window bit (inflated completions happened), the detector saw
  // through it (migrations off the gray primary), the kill/brownout bit
  // the fabric (chaos drops at the switches, restripes around them), and
  // the recover event let sources win their primary back via probes.
  EXPECT_GT(rep.gray_inflated, 0u);
  EXPECT_GT(rep.failovers, 0u);
  EXPECT_GT(rep.restripes, 0u);
  EXPECT_GT(rep.rejoins, 0u);
  EXPECT_GT(rep.switch_chaos_drops, 0u);
}

TEST(ServingChaosTest, TimeoutOnlyBaselineStaysPinnedOnGrayLender) {
  auto on_spec = compressed_chaos(1);
  auto off_spec = on_spec;
  off_spec.detector.enabled = false;

  const core::ServingReport on = run(on_spec);
  const core::ServingReport off = run(off_spec);

  ASSERT_TRUE(on.balanced);
  ASSERT_TRUE(off.balanced);

  // Restripes and rejoins are detector verbs: without it the baseline has
  // no reaction to a gray lender that never times out.
  EXPECT_EQ(off.restripes, 0u);
  EXPECT_EQ(off.rejoins, 0u);
  // So the baseline keeps sending into the inflation window and completes
  // strictly more gray-inflated requests than the detector run, which
  // migrated away early in the window.
  EXPECT_GT(off.gray_inflated, on.gray_inflated);
}

TEST(ServingChaosTest, SerialAndPdesRunsAreByteIdentical) {
  const core::ServingReport serial = run(compressed_chaos(1));
  const core::ServingReport pdes = run(compressed_chaos(4));

  // The comparison only certifies what actually happened: a run where the
  // reactive path never fired would prove nothing about its determinism.
  ASSERT_GT(serial.restripes, 0u);
  ASSERT_GT(serial.failovers, 0u);
  EXPECT_EQ(serial.serialized, pdes.serialized);
  EXPECT_EQ(serial.digest, pdes.digest);
}

TEST(ServingChaosTest, GrayLenderRequiresCappedLenderService) {
  auto spec = compressed_chaos(1);
  // An uncapped lender (no service time) has nothing for gray inflation to
  // stretch: run_serving must reject the combination loudly instead of
  // silently simulating a no-op chaos event.
  spec.traffic.lender_capacity_rps = 0.0;
  Cluster cluster(spec);
  EXPECT_THROW(core::run_serving(cluster), std::invalid_argument);
}

}  // namespace
}  // namespace tfsim::node
