#include <gtest/gtest.h>

#include <new>

#include "node/context.hpp"
#include "node/node.hpp"
#include "node/testbed.hpp"

namespace tfsim::node {
namespace {

TEST(TestbedTest, AssemblesTwoNodePrototype) {
  Testbed tb;
  EXPECT_EQ(tb.borrower().name(), "borrower");
  EXPECT_EQ(tb.lender().name(), "lender");
  EXPECT_TRUE(tb.borrower().has_nic());
  EXPECT_FALSE(tb.lender().has_nic());
  EXPECT_FALSE(tb.remote_attached());
  ASSERT_TRUE(tb.attach_remote());
  EXPECT_TRUE(tb.remote_attached());
  EXPECT_TRUE(tb.attach_remote()) << "idempotent";
}

TEST(TestbedTest, SetPeriodReachesInjector) {
  Testbed tb;
  tb.set_period(123);
  EXPECT_EQ(tb.period(), 123u);
}

TEST(NodeTest, LocalAllocationIsLineAligned) {
  Testbed tb;
  Node& n = tb.borrower();
  const auto a = n.allocate(100, Placement::kLocal);
  const auto b = n.allocate(100, Placement::kLocal);
  EXPECT_EQ(a % mem::kCacheLineBytes, 0u);
  EXPECT_EQ(b % mem::kCacheLineBytes, 0u);
  EXPECT_GE(b - a, 128u) << "allocations must not share a line";
}

TEST(NodeTest, RemoteAllocationRequiresAttach) {
  Testbed tb;
  EXPECT_THROW(tb.borrower().allocate(4096, Placement::kRemote),
               std::bad_alloc);
  ASSERT_TRUE(tb.attach_remote());
  const auto addr = tb.borrower().allocate(4096, Placement::kRemote);
  EXPECT_GE(addr, tb.remote_base());
}

TEST(NodeTest, AutoSpillsToRemote) {
  TestbedSpec spec = thymesisflow_testbed();
  spec.borrower.dram.capacity_bytes = 1 * sim::kMiB;  // tiny local node
  spec.remote_gib = 1;
  Testbed tb(spec);
  ASSERT_TRUE(tb.attach_remote());
  Node& n = tb.borrower();
  const auto local = n.allocate(512 * sim::kKiB, Placement::kAuto);
  EXPECT_LT(local, 1 * sim::kMiB);
  const auto spilled = n.allocate(2 * sim::kMiB, Placement::kAuto);
  EXPECT_GE(spilled, tb.remote_base()) << "local exhausted: spill to remote";
}

TEST(NodeTest, FreeBytesTracksAllocation) {
  Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  Node& n = tb.borrower();
  const auto before = n.free_bytes(mem::Backing::kRemoteDram);
  n.allocate(1 * sim::kMiB, Placement::kRemote);
  EXPECT_EQ(n.free_bytes(mem::Backing::kRemoteDram), before - sim::kMiB);
}

// --- MemContext --------------------------------------------------------

struct ContextFixture {
  Testbed tb;
  mem::Addr remote;
  ContextFixture() {
    tb.attach_remote();
    remote = tb.remote_base();
  }
  MemContext make(std::uint32_t mlp = 8) {
    return MemContext(tb.borrower(), CpuConfig{mlp, sim::from_ns(1)}, "t");
  }
};

TEST(ContextTest, CacheHitIsCheap) {
  ContextFixture f;
  auto ctx = f.make();
  ctx.access(f.remote, false, true);  // cold miss, dependent
  const auto after_miss = ctx.now();
  ctx.access(f.remote, false, true);  // L1 hit
  const auto hit_cost = ctx.now() - after_miss;
  EXPECT_GT(after_miss, sim::from_ns(500)) << "remote miss ~1 us";
  EXPECT_LT(hit_cost, sim::from_ns(10)) << "hit is nanoseconds";
  EXPECT_EQ(ctx.stats().remote_misses, 1u);
  EXPECT_EQ(ctx.stats().cache_hits(), 1u);
}

TEST(ContextTest, DependentMissesSerialize) {
  // Each measurement gets a fresh testbed: NIC/link server state from one
  // run must not pollute the other.
  ContextFixture fd;
  auto dep = fd.make();
  for (int i = 0; i < 16; ++i) {
    dep.access(fd.remote + static_cast<mem::Addr>(i) * 128, false, true);
  }
  dep.drain();

  ContextFixture fi;
  auto indep = fi.make();
  for (int i = 0; i < 16; ++i) {
    indep.access(fi.remote + static_cast<mem::Addr>(i) * 128, false, false);
  }
  indep.drain();
  EXPECT_GT(dep.now(), indep.now() * 4)
      << "dependent chain must be far slower than overlapped misses";
}

TEST(ContextTest, MlpBoundsOutstanding) {
  ContextFixture fn;
  auto narrow_ctx = fn.make(/*mlp=*/2);
  for (int i = 0; i < 8; ++i) {
    narrow_ctx.access(fn.remote + static_cast<mem::Addr>(i) * 128, false,
                      false);
  }
  narrow_ctx.drain();
  const auto narrow = narrow_ctx.now();

  ContextFixture fw;
  auto wide = fw.make(/*mlp=*/8);
  for (int i = 0; i < 8; ++i) {
    wide.access(fw.remote + static_cast<mem::Addr>(i) * 128, false, false);
  }
  wide.drain();
  EXPECT_GT(narrow, wide.now() * 2);
  EXPECT_GT(narrow_ctx.stats().stall_time, 0u);
}

TEST(ContextTest, WritebacksArePosted) {
  ContextFixture f;
  auto ctx = f.make(32);
  // Dirty far more remote lines than the hierarchy can hold.
  const std::uint64_t lines = 4 * (10 * sim::kMiB / 128);
  for (std::uint64_t i = 0; i < lines; ++i) {
    ctx.write(f.remote + i * 128);
  }
  ctx.drain();
  EXPECT_GT(ctx.stats().posted_writebacks, lines / 2);
  EXPECT_GT(f.tb.borrower().nic().writes(), 0u);
}

TEST(ContextTest, StreamTouchesEveryLine) {
  ContextFixture f;
  auto ctx = f.make();
  ctx.stream(f.remote + 100, 1000, false);  // straddles 9 lines
  EXPECT_EQ(ctx.stats().accesses, mem::lines_spanned(f.remote + 100, 1000));
}

TEST(ContextTest, SeekNeverMovesBackward) {
  ContextFixture f;
  auto ctx = f.make();
  ctx.seek(1000);
  EXPECT_EQ(ctx.now(), 1000u);
  ctx.seek(500);
  EXPECT_EQ(ctx.now(), 1000u);
}

TEST(ContextTest, AdvanceAccumulatesComputeTime) {
  ContextFixture f;
  auto ctx = f.make();
  ctx.advance(sim::from_us(5));
  EXPECT_EQ(ctx.stats().compute_time, sim::from_us(5));
  EXPECT_EQ(ctx.now(), sim::from_us(5));
}

TEST(ContextTest, LocalAccessesDoNotTouchNic) {
  ContextFixture f;
  auto ctx = f.make();
  const auto local = f.tb.borrower().allocate(sim::kMiB, Placement::kLocal);
  for (int i = 0; i < 100; ++i) {
    ctx.access(local + static_cast<mem::Addr>(i) * 128, false, false);
  }
  ctx.drain();
  EXPECT_EQ(ctx.stats().remote_misses, 0u);
  EXPECT_EQ(ctx.stats().local_misses, 100u);
  EXPECT_EQ(f.tb.borrower().nic().reads(), 0u);
}

TEST(ContextTest, ResetStatsClears) {
  ContextFixture f;
  auto ctx = f.make();
  ctx.access(f.remote, false, false);
  ctx.reset_stats();
  EXPECT_EQ(ctx.stats().accesses, 0u);
  EXPECT_EQ(ctx.stats().level_hits.size(),
            f.tb.borrower().caches().num_levels());
}

}  // namespace
}  // namespace tfsim::node
