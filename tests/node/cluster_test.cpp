#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>

#include "node/cluster.hpp"
#include "node/testbed.hpp"
#include "scenario/scenario.hpp"
#include "sim/units.hpp"

namespace tfsim::node {
namespace {

TEST(ClusterTest, TwoNodeSpecMatchesTestbed) {
  Cluster cluster(scenario::paper_two_node());
  ASSERT_EQ(cluster.num_nodes(), 2u);
  ASSERT_EQ(cluster.num_borrowers(), 1u);
  ASSERT_EQ(cluster.num_lenders(), 1u);
  EXPECT_EQ(cluster.borrower().name(), "borrower");
  EXPECT_EQ(cluster.lender().name(), "lender");
  EXPECT_TRUE(cluster.borrower().has_nic());
  EXPECT_FALSE(cluster.lender().has_nic());
  ASSERT_TRUE(cluster.attach_remote());

  Testbed tb;
  ASSERT_TRUE(tb.attach_remote());
  EXPECT_EQ(cluster.remote_base(), tb.remote_base());
  EXPECT_EQ(cluster.remote_span(), 16 * sim::kGiB);
}

TEST(ClusterTest, FindResolvesExpandedNames) {
  Cluster cluster(scenario::pooling_1xN(4));
  ASSERT_EQ(cluster.num_nodes(), 5u);
  EXPECT_NE(cluster.find("borrower"), nullptr);
  EXPECT_NE(cluster.find("lender0"), nullptr);
  EXPECT_NE(cluster.find("lender3"), nullptr);
  EXPECT_EQ(cluster.find("lender4"), nullptr);
  EXPECT_EQ(cluster.find("lender"), nullptr) << "count>1 appends the index";
}

TEST(ClusterTest, ChunkedMostFreeStripesAcrossLenders) {
  // 16 GiB in 4 chunks under most-free with equal lenders: each chunk must
  // land on a different lender (round-robin pooling), and the attached
  // window stays contiguous on the borrower.
  Cluster cluster(scenario::pooling_1xN(4));
  ASSERT_TRUE(cluster.attach_remote());
  EXPECT_EQ(cluster.remote_span(), 16 * sim::kGiB);
  std::set<std::uint64_t> lent;
  for (std::size_t i = 0; i < cluster.num_lenders(); ++i) {
    const auto& info =
        cluster.registry().node(cluster.registry_id(cluster.lender(i)));
    EXPECT_EQ(info.lent_out, 4 * sim::kGiB)
        << "lender " << i << " should host exactly one 4 GiB chunk";
    lent.insert(info.lent_out);
  }
  EXPECT_EQ(lent.size(), 1u) << "striping must be even";
}

TEST(ClusterTest, DumbbellPairsEveryBorrowerWithALender) {
  scenario::ScenarioSpec spec = scenario::shared_trunk(4);
  Cluster cluster(spec);
  ASSERT_EQ(cluster.num_borrowers(), 4u);
  ASSERT_EQ(cluster.num_lenders(), 4u);
  ASSERT_TRUE(cluster.attach_remote());
  for (std::size_t i = 0; i < cluster.num_borrowers(); ++i) {
    EXPECT_GT(cluster.remote_span(i), 0u) << "borrower " << i;
    const auto& info =
        cluster.registry().node(cluster.registry_id(cluster.lender(i)));
    EXPECT_GT(info.lent_out, 0u)
        << "most-free must spread the pairs round-robin";
  }
}

TEST(ClusterTest, SetPeriodReachesEveryBorrowerNic) {
  Cluster cluster(scenario::shared_trunk(2));
  cluster.set_period(64);
  EXPECT_EQ(cluster.period(), 64u);
  for (std::size_t i = 0; i < cluster.num_borrowers(); ++i) {
    EXPECT_EQ(cluster.borrower(i).nic().period(), 64u) << "borrower " << i;
  }
}

// Regression for the Fig. 4 reliability cliff through the Cluster path:
// the hot-plug handshake must still time out at extreme PERIOD when the
// testbed is assembled from a scenario instead of the legacy wiring.
TEST(ClusterTest, AttachTimesOutAtExtremePeriod) {
  scenario::ScenarioSpec dead = scenario::paper_two_node();
  dead.injector.period = 10000;
  Cluster lost(dead);
  EXPECT_FALSE(lost.attach_remote());
  EXPECT_FALSE(lost.remote_attached());

  scenario::ScenarioSpec slow = scenario::paper_two_node();
  slow.injector.period = 1000;
  Cluster ok(slow);
  EXPECT_TRUE(ok.attach_remote());

  // Same cliff through the thin Testbed wrapper.
  TestbedSpec spec = thymesisflow_testbed();
  spec.borrower.nic.period = 10000;
  Testbed tb(spec);
  EXPECT_FALSE(tb.attach_remote());
}

// --- leaf/spine fabric ------------------------------------------------------

// A small rack: 3 borrower-lender pairs over 2 leaves x 2 spines.  With
// B=3 not divisible by L=2, borrower i and lender i always land on
// opposite leaves, so every remote access crosses a spine.
scenario::ScenarioSpec small_rack() {
  scenario::ScenarioSpec spec = scenario::leafspine_rack(3);
  spec.topology.leaves = 2;
  spec.topology.spines = 2;
  spec.pdes.threads = 0;  // serial: keep the runtime domain checker armed
  return spec;
}

net::NodeId find_net_node(net::Network& net, const std::string& name) {
  for (net::NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.node_name(id) == name) return id;
  }
  throw std::invalid_argument("no network node named " + name);
}

TEST(ClusterLeafSpineTest, BuildsSwitchTierBehindTheHosts) {
  Cluster cluster(small_rack());
  ASSERT_EQ(cluster.num_nodes(), 6u);
  auto& net = cluster.network();
  EXPECT_EQ(net.num_nodes(), 10u) << "6 hosts + 2 leaves + 2 spines";
  for (net::NodeId id = 0; id < 6; ++id) EXPECT_FALSE(net.is_switch(id));
  for (net::NodeId id = 6; id < 10; ++id) EXPECT_TRUE(net.is_switch(id));
  const auto leaf0 = find_net_node(net, "leafspine-rack/leaf0");
  const auto spine1 = find_net_node(net, "leafspine-rack/spine1");
  EXPECT_TRUE(net.has_link(leaf0, spine1));
  // Every borrower reaches every lender through the table, both ways.
  for (std::size_t b = 0; b < cluster.num_borrowers(); ++b) {
    for (std::size_t l = 0; l < cluster.num_lenders(); ++l) {
      EXPECT_TRUE(net.has_route(cluster.borrower(b).net_id(),
                                cluster.lender(l).net_id()));
      EXPECT_TRUE(net.has_route(cluster.lender(l).net_id(),
                                cluster.borrower(b).net_id()));
    }
  }
}

TEST(ClusterLeafSpineTest, RemoteAccessCrossesTheSpineTier) {
  Cluster cluster(small_rack());
  ASSERT_TRUE(cluster.attach_remote());
  for (std::size_t b = 0; b < cluster.num_borrowers(); ++b) {
    const auto t = cluster.borrower(b).nic().remote_access(
        0, cluster.remote_base(b), false);
    ASSERT_TRUE(t.has_value()) << "borrower " << b;
    EXPECT_GT(t->completion, t->issued);
  }
  // The partner lender is on the other leaf, so the round trips must have
  // moved bytes through at least one spine uplink.
  auto& net = cluster.network();
  std::uint64_t spine_bytes = 0;
  for (const char* spine : {"leafspine-rack/spine0", "leafspine-rack/spine1"}) {
    const auto sp = find_net_node(net, spine);
    for (const auto& [port, stats] : net.switch_at(sp).ports()) {
      spine_bytes += stats.bytes;
    }
  }
  EXPECT_GT(spine_bytes, 0u);
}

TEST(ClusterLeafSpineTest, PdesPartitionIncludesSwitchDomains) {
  scenario::ScenarioSpec spec = small_rack();
  spec.pdes.threads = 2;
  Cluster cluster(spec);
  ASSERT_NE(cluster.pdes(), nullptr);
  EXPECT_EQ(cluster.pdes()->num_domains(), 10u)
      << "hosts and switches each own a calendar";
  EXPECT_EQ(cluster.pdes()->lookahead(), cluster.network().min_propagation());
  ASSERT_TRUE(cluster.attach_remote());
  const auto t = cluster.borrower(0).nic().remote_access(
      0, cluster.remote_base(0), false);
  EXPECT_TRUE(t.has_value());
}

// ISSUE 8 satellite: a flapped (hard-down) spine must not strand traffic --
// ECMP re-salting on retry routes around it and the replay ledger drains.
TEST(ClusterLeafSpineTest, FlappedSpineReroutesWithoutHangingReplay) {
  scenario::ScenarioSpec spec = small_rack();
  for (auto& node : spec.nodes) {
    node.nic.replay.retry_timeout = sim::from_us(5.0);
    node.nic.replay.max_retries = 8;
  }
  Cluster cluster(spec);
  ASSERT_TRUE(cluster.attach_remote());

  auto& net = cluster.network();
  const auto spine0 = find_net_node(net, "leafspine-rack/spine0");
  const auto spine1 = find_net_node(net, "leafspine-rack/spine1");
  const auto leaf0 = find_net_node(net, "leafspine-rack/leaf0");
  const auto leaf1 = find_net_node(net, "leafspine-rack/leaf1");
  net::FaultConfig down;
  down.flaps.push_back(net::FlapSpec{0, sim::from_ms(1000.0), 0.0});
  for (const auto leaf : {leaf0, leaf1}) {
    net.enable_faults_on(leaf, spine0, down);
    net.enable_faults_on(spine0, leaf, down);
  }

  std::uint64_t completions = 0, retries = 0;
  for (std::size_t b = 0; b < cluster.num_borrowers(); ++b) {
    auto& nic = cluster.borrower(b).nic();
    for (int i = 0; i < 4; ++i) {
      const auto t = nic.remote_access(sim::from_us(20.0) * (i + 1),
                                       cluster.remote_base(b), i % 2 == 1);
      ASSERT_TRUE(t.has_value()) << "borrower " << b << " access " << i
                                 << " must reroute, not abandon";
      ++completions;
    }
    retries += nic.replay().retries();
    EXPECT_EQ(nic.replay().abandoned(), 0u);
    nic.check_quiesced();
  }
  EXPECT_EQ(completions, 12u);
  EXPECT_GT(retries, 0u)
      << "some first attempt must have struck the dead spine";
  // All surviving traffic squeezed through spine1.
  std::uint64_t alive_bytes = 0;
  for (const auto& [port, stats] : net.switch_at(spine1).ports()) {
    alive_bytes += stats.bytes;
  }
  EXPECT_GT(alive_bytes, 0u);
}

// --- fault wiring ----------------------------------------------------------

TEST(ClusterFaultTest, LinkFaultsReachTheNetwork) {
  scenario::ScenarioSpec spec = scenario::paper_two_node();
  spec.faults.link.loss_rate = 0.01;
  spec.faults.link.seed = 3;
  Cluster cluster(spec);
  EXPECT_TRUE(cluster.network().faults_enabled());

  Cluster pristine(scenario::paper_two_node());
  EXPECT_FALSE(pristine.network().faults_enabled());
}

TEST(ClusterFaultTest, UnknownKillLenderNameRejected) {
  scenario::ScenarioSpec spec = scenario::paper_two_node();
  spec.faults.kill_lender = "no-such-node";
  EXPECT_THROW(Cluster{spec}, std::invalid_argument);
}

TEST(ClusterFaultTest, KilledLenderDetachesGracefully) {
  scenario::ScenarioSpec spec = scenario::paper_two_node();
  spec.faults.kill_lender = "lender";
  spec.faults.kill_at_us = 0.0;
  // Fast retry ladder so the test stays cheap.
  spec.nodes[0].nic.replay.retry_timeout = sim::from_us(5.0);
  spec.nodes[0].nic.replay.max_retries = 1;
  spec.nodes[0].nic.replay.detach_threshold = 2;
  Cluster cluster(spec);
  ASSERT_TRUE(cluster.attach_remote()) << "attach is host-side, still works";

  auto& nic = cluster.borrower().nic();
  const mem::Addr addr = cluster.remote_base();
  EXPECT_FALSE(nic.remote_access(0, addr, false).has_value());
  EXPECT_EQ(nic.detached_lenders(), 0u);
  EXPECT_FALSE(nic.remote_access(sim::from_ms(1.0), addr, false).has_value());
  EXPECT_EQ(nic.detached_lenders(), 1u)
      << "consecutive abandonments detach the dead lender";
  EXPECT_GT(nic.replay().abandoned(), 0u);
  nic.check_quiesced();
}

TEST(ClusterFaultTest, KillLenderMidRun) {
  // The lender dies *after* traffic has flowed: earlier accesses complete,
  // later ones retry into the void and detach.
  scenario::ScenarioSpec spec = scenario::paper_two_node();
  spec.nodes[0].nic.replay.retry_timeout = sim::from_us(5.0);
  spec.nodes[0].nic.replay.max_retries = 1;
  spec.nodes[0].nic.replay.detach_threshold = 2;
  Cluster cluster(spec);
  ASSERT_TRUE(cluster.attach_remote());

  auto& nic = cluster.borrower().nic();
  const mem::Addr addr = cluster.remote_base();
  const auto before = nic.remote_access(0, addr, false);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->retries, 0u);

  cluster.kill_lender(0, sim::from_ms(1.0));
  EXPECT_FALSE(
      nic.remote_access(sim::from_ms(1.0), addr, false).has_value());
  EXPECT_FALSE(
      nic.remote_access(sim::from_ms(2.0), addr, false).has_value());
  EXPECT_EQ(nic.detached_lenders(), 1u);
  nic.check_quiesced();
}

}  // namespace
}  // namespace tfsim::node
