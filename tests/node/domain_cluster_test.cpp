// Cluster-level tests for the domain-ownership checker: every node gets its
// own domain at assembly, real scenarios run violation-free under strict
// mode, and an injected cross-domain mutation is caught at the exact event
// with a report naming the object and both domains.
#include <gtest/gtest.h>

#include <string>

#include "mem/address.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"
#include "sim/domain.hpp"
#include "sim/units.hpp"

namespace tfsim::node {
namespace {

CpuConfig test_cpu() {
  CpuConfig cfg;
  cfg.mlp = 8;
  return cfg;
}

TEST(DomainClusterTest, EveryNodeGetsItsOwnDomain) {
  Cluster cluster(scenario::pooling_1xN(3));
  EXPECT_EQ(cluster.domains().num_domains(), 4u);
  // Domain ids follow declaration order, and every owned object is bound.
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    Node& n = cluster.node(i);
    ASSERT_TRUE(n.tfsim_domain().bound()) << n.name();
    EXPECT_EQ(cluster.domains().domain_name(n.tfsim_domain().id()), n.name());
    EXPECT_EQ(n.dram().tfsim_domain().id(), n.tfsim_domain().id());
    EXPECT_EQ(n.caches().tfsim_domain().id(), n.tfsim_domain().id());
    if (n.has_nic()) {
      EXPECT_EQ(n.nic().tfsim_domain().id(), n.tfsim_domain().id());
    }
  }
}

TEST(DomainClusterTest, CleanScenarioRunsViolationFreeUnderStrict) {
  Cluster cluster(scenario::paper_two_node());
  cluster.domains().set_mode(sim::DomainCheckMode::kStrict);
  ASSERT_TRUE(cluster.attach_remote());

  MemContext ctx = cluster.make_context(test_cpu());
  const mem::Addr local = cluster.borrower().allocate(4 * sim::kMiB,
                                                      Placement::kLocal);
  const mem::Addr remote = cluster.borrower().allocate(4 * sim::kMiB,
                                                       Placement::kRemote);
  // Local + remote streaming and dependent pointer-chase traffic cross the
  // network boundary thousands of times; under strict mode a single
  // mis-scoped mutation would throw.
  ctx.stream(local, 4 * sim::kMiB, /*write=*/true);
  ctx.stream(remote, 4 * sim::kMiB, /*write=*/false);
  for (int i = 0; i < 64; ++i) {
    ctx.read(remote + static_cast<mem::Addr>(i) * 4096, /*dependent=*/true);
  }
  ctx.drain();
  EXPECT_GT(ctx.stats().remote_misses, 0u);
  EXPECT_TRUE(cluster.domains().clean());
}

TEST(DomainClusterTest, MigrationRunsViolationFreeUnderStrict) {
  Cluster cluster(scenario::paper_two_node());
  cluster.domains().set_mode(sim::DomainCheckMode::kStrict);
  ASSERT_TRUE(cluster.attach_remote());

  MigrationConfig mcfg;
  mcfg.page_bytes = 64 * sim::kKiB;
  mcfg.hot_threshold = 4;
  mcfg.min_hot_epochs = 2;
  mcfg.epoch_accesses = 256;
  cluster.borrower().enable_migration(mcfg);
  ASSERT_TRUE(cluster.borrower().migrator()->tfsim_domain().bound())
      << "daemons enabled after bind_domain must inherit the domain";

  MemContext ctx = cluster.make_context(test_cpu());
  const mem::Addr remote = cluster.borrower().allocate(1 * sim::kMiB,
                                                       Placement::kRemote);
  // Hammer one page until the daemon migrates it; the copy loop issues
  // remote reads + local writes, all inside borrower-domain guards.  The
  // invalidate defeats the caches so every read reaches the miss path (it
  // runs outside any guard, like any test poking state directly).
  for (int i = 0; i < 4096; ++i) {
    const mem::Addr a =
        remote + static_cast<mem::Addr>(i % 16) * mem::kCacheLineBytes;
    ctx.read(a, /*dependent=*/true);
    cluster.borrower().caches().invalidate(a);
  }
  ctx.drain();
  EXPECT_GT(cluster.borrower().migrator()->stats().pages_migrated, 0u);
  EXPECT_TRUE(cluster.domains().clean());
}

TEST(DomainClusterTest, InjectedCrossDomainMutationCaughtAtExactEvent) {
  Cluster cluster(scenario::paper_two_node());
  cluster.domains().set_mode(sim::DomainCheckMode::kCollect);
  ASSERT_TRUE(cluster.attach_remote());

  // Advance the engine to a known point so the report's event context is
  // checkable.
  cluster.engine().schedule_at(sim::from_us(5.0), [] {});
  cluster.engine().run();
  const sim::Time t_inject = cluster.engine().now();
  const std::uint64_t events_before = cluster.engine().executed();

  // Inject the PDES-breaking bug: borrower-side code mutates the lender's
  // DRAM directly instead of going through the NIC/network boundary.
  {
    const sim::DomainGuard g(&cluster.domains(),
                             cluster.borrower().tfsim_domain().id(),
                             "test:injected");
    cluster.lender().dram().access(t_inject, mem::kCacheLineBytes);
  }

  ASSERT_EQ(cluster.domains().total(), 1u);
  const sim::DomainViolation& v = cluster.domains().violations().front();
  EXPECT_EQ(v.object, "lender/dram");
  EXPECT_EQ(v.what, "Dram::access");
  EXPECT_EQ(v.owner_name, "lender");
  EXPECT_EQ(v.active_name, "borrower");
  EXPECT_EQ(v.guard_label, "test:injected");
  EXPECT_EQ(v.when, t_inject) << "violation must carry the exact sim time";
  EXPECT_EQ(v.event_index, events_before)
      << "violation must carry the exact event index";
}

TEST(DomainClusterTest, StrictModeThrowsOnInjectedMutation) {
  Cluster cluster(scenario::paper_two_node());
  cluster.domains().set_mode(sim::DomainCheckMode::kStrict);
  ASSERT_TRUE(cluster.attach_remote());
  const sim::DomainGuard g(&cluster.domains(),
                           cluster.borrower().tfsim_domain().id(),
                           "test:injected");
  EXPECT_THROW(cluster.lender().dram().access(0, mem::kCacheLineBytes),
               sim::DomainError);
}

TEST(DomainClusterTest, NicHandoffEntersLenderDomain) {
  // The one legal cross-node mutation path: the NIC touching lender DRAM
  // inside its net:deliver guard.  A borrower-domain guard is already open
  // (ctx:miss); if attempt_once did not switch domains, every remote miss
  // would throw under strict.
  Cluster cluster(scenario::paper_two_node());
  cluster.domains().set_mode(sim::DomainCheckMode::kStrict);
  ASSERT_TRUE(cluster.attach_remote());
  MemContext ctx = cluster.make_context(test_cpu());
  const mem::Addr remote = cluster.borrower().allocate(256 * sim::kKiB,
                                                       Placement::kRemote);
  EXPECT_NO_THROW(ctx.stream(remote, 256 * sim::kKiB, /*write=*/false));
  ctx.drain();
  EXPECT_GT(cluster.lender().dram().requests(), 0u);
  EXPECT_TRUE(cluster.domains().clean());
}

TEST(DomainClusterTest, OffModeCostsNothingAndCatchesNothing) {
  Cluster cluster(scenario::paper_two_node());
  cluster.domains().set_mode(sim::DomainCheckMode::kOff);
  ASSERT_TRUE(cluster.attach_remote());
  const sim::DomainGuard g(&cluster.domains(),
                           cluster.borrower().tfsim_domain().id(), "x");
  EXPECT_NO_THROW(cluster.lender().dram().access(0, mem::kCacheLineBytes));
  EXPECT_TRUE(cluster.domains().clean());
}

}  // namespace
}  // namespace tfsim::node
