// Serving harness on a real Cluster: a compressed serving_diurnal cycle
// with the lender killed at the peak.  Pins the reactive re-placement
// contract -- every source whose primary died walks its precomputed chain
// onto the survivor -- and the request ledger: zero unaccounted requests
// across completion, shedding, QoS rejection, and timeout-driven failover.
#include <gtest/gtest.h>

#include "core/serving.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"

namespace tfsim::node {
namespace {

scenario::ScenarioSpec compressed_serving() {
  auto spec = *scenario::builtin("serving_diurnal");
  spec.traffic.duration_us = 2000.0;
  spec.traffic.diurnal_period_us = 2000.0;
  spec.faults.kill_at_us = 1000.0;
  spec.slo.window_us = 500.0;
  return spec;
}

TEST(ServingFailoverTest, KillLenderMidRunLeavesNoRequestUnaccounted) {
  auto spec = compressed_serving();
  Cluster cluster(spec);
  const core::ServingReport rep = core::run_serving(cluster);

  // The conservation law, at full drain: every offered request ended in
  // exactly one terminal bucket.
  EXPECT_TRUE(rep.balanced);
  EXPECT_EQ(rep.totals.in_flight, 0u);
  EXPECT_EQ(rep.totals.queued, 0u);
  EXPECT_EQ(rep.totals.offered, rep.totals.completed + rep.totals.shed +
                                    rep.totals.rejected + rep.totals.failed);

  // The kill actually bit: requests in flight to the dead lender timed out
  // (failed > 0) and their sources retargeted along the precomputed chain.
  EXPECT_GT(rep.totals.completed, 0u);
  EXPECT_GT(rep.totals.failed, 0u);
  EXPECT_GT(rep.failovers, 0u);

  // Traffic keeps completing after the kill: the last SLO window before
  // the drain tail still completed requests on the surviving lender.
  ASSERT_GE(rep.windows.size(), 3u);
  EXPECT_GT(rep.windows[rep.windows.size() - 2].completed, 0u);
}

TEST(ServingFailoverTest, FailoverLandsOnSurvivorAndQosStillArbitrates) {
  auto spec = compressed_serving();
  Cluster cluster(spec);
  const core::ServingReport rep = core::run_serving(cluster);

  // serving_diurnal places frontend on lender0 (killed) and batch on
  // lender1: only frontend sources fail over, batch rides through.
  ASSERT_EQ(rep.tenants.size(), 2u);
  const auto& frontend = rep.tenants[0];
  const auto& batch = rep.tenants[1];
  EXPECT_EQ(frontend.name, "frontend");
  EXPECT_GT(frontend.failovers, 0u);
  EXPECT_GT(frontend.totals.failed, 0u) << "in-flight at the kill time out";
  EXPECT_EQ(batch.failovers, 0u) << "survivor's tenant never retargets";
  EXPECT_EQ(batch.totals.failed, 0u);

  // The diurnal peak oversubscribes the per-lender credit gate, so both
  // tenants saw deterministic QoS rejections -- and the weighted gate let
  // the weight-3 frontend complete a multiple of batch's share.
  EXPECT_GT(rep.totals.rejected, 0u);
  EXPECT_GT(frontend.totals.completed, batch.totals.completed);
}

TEST(ServingFailoverTest, ReportIsAPureFunctionOfTheSpec) {
  auto spec = compressed_serving();
  Cluster a(spec);
  Cluster b(spec);
  const core::ServingReport ra = core::run_serving(a);
  const core::ServingReport rb = core::run_serving(b);
  EXPECT_EQ(ra.serialized, rb.serialized);
  EXPECT_EQ(ra.digest, rb.digest);
}

TEST(ServingFailoverTest, RunServingRequiresTrafficAndPdes) {
  auto plain = scenario::paper_two_node();
  Cluster no_traffic(plain);
  EXPECT_THROW(core::run_serving(no_traffic), std::invalid_argument);
}

}  // namespace
}  // namespace tfsim::node
