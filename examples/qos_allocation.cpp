// Control-plane allocation policies in action: the paper's §IV-E insight
// ("a lender with multiple running applications and an idle lender are
// equally viable") applied to lender selection.
//
// A small datacenter: one borrower, three lenders with different load
// profiles.  Each policy picks a lender for a reservation; then we actually
// measure the borrower's remote bandwidth against the chosen lender to show
// which signals mattered.
#include <cstdio>
#include <memory>

#include "core/report.hpp"
#include "ctrl/control_plane.hpp"
#include "ctrl/policy.hpp"
#include "mem/dram.hpp"
#include "net/network.hpp"
#include "nic/nic.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

struct LenderProfile {
  const char* name;
  std::uint32_t running_apps;
  double bus_utilization;       // telemetry the control plane sees
  std::uint32_t busy_flows;     // actual background load we simulate
};

constexpr LenderProfile kLenders[] = {
    {"idle-lender", 0, 0.02, 0},
    {"busy-apps-lender", 24, 0.45, 6},
    {"saturated-bus-lender", 2, 0.97, 40},
};

/// Measure the borrower's achievable remote bandwidth against one lender
/// that is concurrently running `busy_flows` local STREAM instances.
double measure_bandwidth(const LenderProfile& lender) {
  sim::Engine engine;
  net::Network network;
  const auto borrower_id = network.add_node("borrower");
  const auto lender_id = network.add_node(lender.name);
  network.connect(borrower_id, lender_id, net::LinkConfig{});
  network.connect(lender_id, borrower_id, net::LinkConfig{});

  mem::Dram lender_dram{mem::DramConfig{}, std::string(lender.name) + "/dram"};
  nic::DisaggNic nic(nic::NicConfig{}, network, borrower_id);
  nic.register_lender(0, lender_id, &lender_dram);
  nic.translator().add_segment(
      nic::Segment{mem::Range{1ull << 40, sim::kGiB}, 0, 0, "probe"});
  nic.attach();

  const sim::Time horizon = sim::from_ms(10.0);
  std::vector<std::unique_ptr<workloads::LocalStreamFlow>> noise;
  for (std::uint32_t i = 0; i < lender.busy_flows; ++i) {
    workloads::FlowConfig cfg;
    cfg.concurrency = 64;
    cfg.stop_at = horizon;
    noise.push_back(
        std::make_unique<workloads::LocalStreamFlow>(engine, lender_dram, cfg));
  }
  workloads::FlowConfig bcfg;
  bcfg.concurrency = 128;
  bcfg.base = 1ull << 40;
  bcfg.span_bytes = 512 * sim::kMiB;
  bcfg.stop_at = horizon;
  workloads::RemoteStreamFlow borrower(engine, nic, bcfg);
  borrower.start();
  for (auto& f : noise) f->start();
  engine.run();
  return borrower.stats().bandwidth_gbps(horizon);
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args(
      "qos_allocation: lender-selection policies vs measured reality");
  args.add_int("reservation-gib", 64, "reservation size in GiB");
  if (!args.parse(argc, argv)) return 1;

  // Register the fleet with the control plane.
  ctrl::NodeRegistry registry;
  const auto borrower = registry.add_node("borrower", 512 * sim::kGiB);
  registry.set_role(borrower, ctrl::Role::kBorrower);
  for (const auto& l : kLenders) {
    // The app-busy lender is the *biggest* machine in the fleet: policies
    // that fear co-located apps leave its capacity stranded.
    const std::uint64_t capacity =
        (l.running_apps > 0 && l.bus_utilization < 0.9) ? 1024 * sim::kGiB
                                                        : 512 * sim::kGiB;
    const auto id = registry.add_node(l.name, capacity);
    registry.set_role(id, ctrl::Role::kLender);
    registry.report_load(id, 32 * sim::kGiB, l.running_apps, l.bus_utilization);
  }

  const std::uint64_t size =
      static_cast<std::uint64_t>(args.integer("reservation-gib")) * sim::kGiB;

  core::Table picks("Which lender does each policy pick?",
                    {"policy", "picked lender", "comment"});
  for (const char* policy_name :
       {"first-fit", "most-free", "idle-preferring", "contention-aware"}) {
    ctrl::NodeRegistry reg_copy = registry;  // policies must not mutate state
    ctrl::ControlPlane cp(reg_copy, ctrl::make_policy(policy_name));
    const auto r = cp.reserve(borrower, size, std::string("r-") + policy_name);
    picks.row({policy_name,
               r.has_value() ? reg_copy.node(r->lender).name : "(none)",
               r.has_value() ? "" : "rejected all candidates"});
  }
  picks.print();

  core::Table reality("What the borrower actually measures per lender",
                      {"lender", "running apps", "bus util (telemetry)",
                       "borrower remote BW (GB/s)"});
  for (const auto& l : kLenders) {
    reality.row({l.name, std::to_string(l.running_apps),
                 core::Table::num(l.bus_utilization * 100, 0) + "%",
                 core::Table::num(measure_bandwidth(l), 3)});
  }
  reality.print();

  std::puts(
      "The idle lender and the app-busy lender deliver the same borrower\n"
      "bandwidth -- running_apps is a red herring (paper §IV-E).  Only the\n"
      "bus-saturated lender degrades the borrower, which is exactly the one\n"
      "signal the contention-aware policy screens on.");
  return 0;
}
