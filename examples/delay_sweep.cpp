// Delay-injection sweep: characterize any workload's sensitivity to remote
// memory latency, with fixed-PERIOD or distribution-driven injection.
//
//   ./delay_sweep --workload=stream|bfs|redis [--periods=1,8,64,512]
//                 [--dist=lognormal --mean-us=5] [--csv=sweep.csv]
//                 [--delays-us=0.5,2,10] [--scenario=paper_twonode]
//
// Two sweep modes: --periods sweeps the fixed-PERIOD injector (the paper's
// methodology); --delays-us sweeps the *mean injected delay* directly in
// distribution mode (--dist, default fixed) -- fractional microseconds
// allowed.  The testbed itself comes from a scenario file.
//
// Demonstrates the characterization API end to end: one fresh Session per
// configuration fanned out across $TFSIM_JOBS workers (sim::SweepRunner),
// paper-style degradation reporting, CSV export.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "node/testbed.hpp"
#include "sim/config.hpp"
#include "sim/sweep.hpp"

using namespace tfsim;

namespace {

struct SweepPoint {
  std::string label;
  sim::Time elapsed = 0;
  double extra_metric = 0.0;  // bandwidth / ops / teps depending on workload
  bool attached = true;       // false reproduces the Fig. 4 device-lost case
  std::string error;          // non-empty: validation failure (fatal)
};

/// One sweep cell: either a fixed-PERIOD point or a distribution-mode
/// point at a given mean delay (delay_us >= 0 selects the latter).
struct SweepCfg {
  std::int64_t period = 1;
  double delay_us = -1.0;
  std::string label;
};

core::SessionConfig make_session_cfg(const sim::ArgParser& args,
                                     const node::TestbedSpec& testbed,
                                     const SweepCfg& point) {
  core::SessionConfig cfg;
  cfg.testbed = testbed;
  if (point.delay_us >= 0.0) {
    const std::string dist = args.str("dist");
    cfg.dist_kind = net::parse_dist_kind(dist.empty() ? "fixed" : dist);
    cfg.dist_mean = sim::from_us(point.delay_us);
  } else {
    cfg.period = static_cast<std::uint64_t>(point.period);
    if (!args.str("dist").empty()) {
      cfg.dist_kind = net::parse_dist_kind(args.str("dist"));
      cfg.dist_mean = sim::from_us(args.real("mean-us"));
    }
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args("delay_sweep: workload sensitivity to injected delay");
  args.add_string("workload", "stream", "stream | bfs | redis");
  args.add_string("periods", "1,8,64,512", "injector PERIOD sweep");
  args.add_string("dist", "", "distribution mode: fixed|uniform|exponential|lognormal|pareto");
  args.add_double("mean-us", 2.0, "mean injected delay (distribution mode)");
  args.add_string("delays-us", "",
                  "sweep mean injected delay instead of PERIOD "
                  "(comma-separated us, fractions allowed)");
  args.add_string("scenario", "paper_twonode",
                  "testbed scenario name (scenarios/<name>.json) or path");
  args.add_int("stream-elements", 2'000'000, "STREAM array elements");
  args.add_int("graph-scale", 16, "Graph500 scale");
  args.add_int("kv-requests", 100, "memtier requests per client");
  args.add_string("csv", "", "also write results to this CSV file");
  if (!args.parse(argc, argv)) return 1;

  const std::string workload = args.str("workload");
  if (workload != "stream" && workload != "bfs" && workload != "redis") {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }

  // Pre-generate shared inputs once, before the parallel fan-out.
  workloads::g500::Graph500Config gcfg;
  gcfg.gen.scale = static_cast<std::uint32_t>(args.integer("graph-scale"));
  workloads::g500::EdgeList edges;
  if (workload == "bfs") edges = workloads::g500::kronecker_generate(gcfg.gen);

  const node::TestbedSpec testbed =
      node::to_testbed_spec(bench::load_scenario(args.str("scenario")));

  // Sweep axis: mean injected delays (distribution mode) when --delays-us
  // is given, injector PERIODs otherwise.
  std::vector<SweepCfg> cells;
  if (const auto delays = args.double_list("delays-us"); !delays.empty()) {
    for (const double d : delays) {
      char label[32];
      std::snprintf(label, sizeof label, "%g us", d);
      cells.push_back({1, d, label});
    }
  } else {
    for (const auto period : args.int_list("periods")) {
      cells.push_back({period, -1.0, std::to_string(period)});
    }
  }
  auto run_point = [&](const SweepCfg& cell) {
    SweepPoint p;
    p.label = cell.label;
    core::Session session(make_session_cfg(args, testbed, cell));
    if (!session.attached()) {
      p.attached = false;
      return p;
    }
    if (workload == "stream") {
      workloads::StreamConfig cfg;
      cfg.elements = static_cast<std::uint64_t>(args.integer("stream-elements"));
      const auto res = session.run_stream(cfg);
      p.elapsed = res.total_elapsed;
      p.extra_metric = res.best_bandwidth_gbps;
    } else if (workload == "bfs") {
      const auto job = session.run_bfs_job(gcfg, edges, 1);
      p.error = job.validation_error;
      p.elapsed = job.total();
    } else {  // redis
      workloads::kv::KvStoreConfig store_cfg;
      workloads::kv::MemtierConfig load_cfg;
      load_cfg.key_space = 50'000;
      load_cfg.requests_per_client =
          static_cast<std::uint64_t>(args.integer("kv-requests"));
      const auto res = session.run_memtier(store_cfg, load_cfg);
      p.elapsed = res.elapsed;
      p.extra_metric = res.ops_per_sec;
    }
    return p;
  };
  // One independent Session per cell: fan out across $TFSIM_JOBS workers
  // (serial when unset); results come back in input order either way.
  std::vector<SweepPoint> points = sim::SweepRunner().map(cells, run_point);

  for (auto it = points.begin(); it != points.end();) {
    if (!it->error.empty()) {
      std::fprintf(stderr, "BFS validation failed: %s\n", it->error.c_str());
      return 1;
    }
    if (!it->attached) {
      std::fprintf(stderr, "PERIOD %s: attach failed (device lost)\n",
                   it->label.c_str());
      it = points.erase(it);
    } else {
      ++it;
    }
  }

  if (points.empty()) {
    std::fprintf(stderr, "no successful runs\n");
    return 1;
  }

  const bool delay_mode = !args.double_list("delays-us").empty();
  core::Table table("delay sweep: " + workload,
                    {delay_mode ? "mean delay" : "PERIOD", "elapsed (ms)",
                     "degradation vs first",
                     workload == "redis" ? "ops/sec" : "bandwidth (GB/s)"});
  for (const auto& p : points) {
    table.row({p.label, core::Table::num(sim::to_ms(p.elapsed), 2),
               core::Table::ratio(core::degradation_from_times(
                   p.elapsed, points.front().elapsed)),
               core::Table::num(p.extra_metric, 2)});
  }
  table.print();
  if (!args.str("csv").empty()) table.to_csv(args.str("csv"));
  return 0;
}
