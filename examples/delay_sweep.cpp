// Delay-injection sweep: characterize any workload's sensitivity to remote
// memory latency, with fixed-PERIOD or distribution-driven injection.
//
//   ./delay_sweep --workload=stream|bfs|redis [--periods=1,8,64,512]
//                 [--dist=lognormal --mean-us=5] [--csv=sweep.csv]
//
// Demonstrates the characterization API end to end: one fresh Session per
// configuration, paper-style degradation reporting, CSV export.
#include <cstdio>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "sim/config.hpp"

using namespace tfsim;

namespace {

struct SweepPoint {
  std::string label;
  sim::Time elapsed = 0;
  double extra_metric = 0.0;  // bandwidth / ops / teps depending on workload
};

core::SessionConfig make_session_cfg(const sim::ArgParser& args,
                                     std::int64_t period) {
  core::SessionConfig cfg;
  cfg.period = static_cast<std::uint64_t>(period);
  if (!args.str("dist").empty()) {
    cfg.dist_kind = net::parse_dist_kind(args.str("dist"));
    cfg.dist_mean = sim::from_us(args.real("mean-us"));
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args("delay_sweep: workload sensitivity to injected delay");
  args.add_string("workload", "stream", "stream | bfs | redis");
  args.add_string("periods", "1,8,64,512", "injector PERIOD sweep");
  args.add_string("dist", "", "distribution mode: fixed|uniform|exponential|lognormal|pareto");
  args.add_double("mean-us", 2.0, "mean injected delay (distribution mode)");
  args.add_int("stream-elements", 2'000'000, "STREAM array elements");
  args.add_int("graph-scale", 16, "Graph500 scale");
  args.add_int("kv-requests", 100, "memtier requests per client");
  args.add_string("csv", "", "also write results to this CSV file");
  if (!args.parse(argc, argv)) return 1;

  const std::string workload = args.str("workload");
  std::vector<SweepPoint> points;

  // Pre-generate shared inputs once.
  workloads::g500::Graph500Config gcfg;
  gcfg.gen.scale = static_cast<std::uint32_t>(args.integer("graph-scale"));
  workloads::g500::EdgeList edges;
  if (workload == "bfs") edges = workloads::g500::kronecker_generate(gcfg.gen);

  for (const auto period : args.int_list("periods")) {
    core::Session session(make_session_cfg(args, period));
    if (!session.attached()) {
      std::fprintf(stderr, "PERIOD %lld: attach failed (device lost)\n",
                   static_cast<long long>(period));
      continue;
    }
    SweepPoint p;
    p.label = std::to_string(period);
    if (workload == "stream") {
      workloads::StreamConfig cfg;
      cfg.elements = static_cast<std::uint64_t>(args.integer("stream-elements"));
      const auto res = session.run_stream(cfg);
      p.elapsed = res.total_elapsed;
      p.extra_metric = res.best_bandwidth_gbps;
    } else if (workload == "bfs") {
      const auto job = session.run_bfs_job(gcfg, edges, 1);
      if (!job.validation_error.empty()) {
        std::fprintf(stderr, "BFS validation failed: %s\n",
                     job.validation_error.c_str());
        return 1;
      }
      p.elapsed = job.total();
    } else if (workload == "redis") {
      workloads::kv::KvStoreConfig store_cfg;
      workloads::kv::MemtierConfig load_cfg;
      load_cfg.key_space = 50'000;
      load_cfg.requests_per_client =
          static_cast<std::uint64_t>(args.integer("kv-requests"));
      const auto res = session.run_memtier(store_cfg, load_cfg);
      p.elapsed = res.elapsed;
      p.extra_metric = res.ops_per_sec;
    } else {
      std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
      return 1;
    }
    points.push_back(p);
  }

  if (points.empty()) {
    std::fprintf(stderr, "no successful runs\n");
    return 1;
  }

  core::Table table("delay sweep: " + workload,
                    {"PERIOD", "elapsed (ms)", "degradation vs first",
                     workload == "redis" ? "ops/sec" : "bandwidth (GB/s)"});
  for (const auto& p : points) {
    table.row({p.label, core::Table::num(sim::to_ms(p.elapsed), 2),
               core::Table::ratio(core::degradation_from_times(
                   p.elapsed, points.front().elapsed)),
               core::Table::num(p.extra_metric, 2)});
  }
  table.print();
  if (!args.str("csv").empty()) table.to_csv(args.str("csv"));
  return 0;
}
