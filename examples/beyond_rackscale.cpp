// Beyond rack-scale: the datacenter the paper argues toward.
//
// K borrower-lender pairs share a two-switch fabric with one trunk.  As
// pairs activate, trunk congestion raises everyone's remote-memory latency
// -- the failure mode the paper's delay injector emulates.  Then the two
// mitigations this library implements are switched on:
//   * QoS: one pair is latency-class and bypasses bulk backlog;
//   * a fatter trunk (what a real operator would provision).
//
//   ./beyond_rackscale [--pairs=8] [--trunk-gbit=100] [--ms=10]
#include <cstdio>
#include <memory>
#include <vector>

#include "core/report.hpp"
#include "mem/dram.hpp"
#include "net/topology.hpp"
#include "nic/nic.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

struct FabricResult {
  double probe_mean_us = 0;
  double probe_p99_us = 0;
  double aggregate_gbps = 0;
};

FabricResult run_fabric(int pairs, double trunk_gbit, bool probe_priority,
                        sim::Time horizon) {
  sim::Engine engine;
  net::Network network;
  net::StarTopologyConfig tcfg;
  tcfg.pairs = static_cast<std::uint32_t>(pairs);
  tcfg.trunk.bandwidth = sim::Bandwidth::from_gbit(trunk_gbit);
  const auto topo = net::StarTopology::build(network, tcfg);

  std::vector<std::unique_ptr<mem::Dram>> drams;
  std::vector<std::unique_ptr<nic::DisaggNic>> nics;
  std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;

  for (int i = 0; i < pairs; ++i) {
    drams.push_back(std::make_unique<mem::Dram>(mem::DramConfig{}));
    nic::NicConfig ncfg;
    if (i == 0 && probe_priority) ncfg.latency_reserved_entries = 16;
    auto nic = std::make_unique<nic::DisaggNic>(
        ncfg, network, topo.borrowers[static_cast<std::size_t>(i)]);
    nic->register_lender(0, topo.lenders[static_cast<std::size_t>(i)],
                         drams.back().get());
    nic->translator().add_segment(
        nic::Segment{mem::Range{1ull << 40, sim::kGiB}, 0, 0, "seg"});
    nic->attach();
    workloads::FlowConfig fcfg;
    fcfg.concurrency = i == 0 ? 16 : 128;
    fcfg.base = 1ull << 40;
    fcfg.span_bytes = 512 * sim::kMiB;
    fcfg.stop_at = horizon;
    if (i == 0 && probe_priority) fcfg.priority = sim::Priority::kLatency;
    if (i != 0) {
      fcfg.phase_on = sim::from_us(120.0);
      fcfg.phase_off = sim::from_us(180.0);
      fcfg.seed = 17 + static_cast<std::uint64_t>(i);
    }
    flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
        engine, *nic, fcfg));
    nics.push_back(std::move(nic));
  }
  for (auto& f : flows) f->start();
  engine.run();

  FabricResult r;
  r.probe_mean_us = flows[0]->stats().latency_us.mean();
  r.probe_p99_us = nics[0]->latency_us().p99();
  for (auto& f : flows) r.aggregate_gbps += f->stats().bandwidth_gbps(horizon);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args("beyond_rackscale: shared-fabric memory disaggregation");
  args.add_int("pairs", 8, "borrower-lender pairs on the fabric");
  args.add_double("trunk-gbit", 100.0, "trunk bandwidth (Gb/s)");
  args.add_double("ms", 10.0, "measurement window (simulated ms)");
  if (!args.parse(argc, argv)) return 1;

  const int pairs = static_cast<int>(args.integer("pairs"));
  const double trunk = args.real("trunk-gbit");
  const auto horizon = sim::from_ms(args.real("ms"));

  core::Table table(
      "one probe pair among " + std::to_string(pairs - 1) +
          " bursty neighbours",
      {"configuration", "probe mean (us)", "probe p99 (us)",
       "fabric aggregate (GB/s)"});
  const auto congested = run_fabric(pairs, trunk, false, horizon);
  table.row({"shared trunk, no QoS", core::Table::num(congested.probe_mean_us, 2),
             core::Table::num(congested.probe_p99_us, 2),
             core::Table::num(congested.aggregate_gbps, 2)});
  const auto qos = run_fabric(pairs, trunk, true, horizon);
  table.row({"shared trunk, probe latency-class",
             core::Table::num(qos.probe_mean_us, 2),
             core::Table::num(qos.probe_p99_us, 2),
             core::Table::num(qos.aggregate_gbps, 2)});
  const auto fat = run_fabric(pairs, trunk * 4, false, horizon);
  table.row({"4x trunk, no QoS", core::Table::num(fat.probe_mean_us, 2),
             core::Table::num(fat.probe_p99_us, 2),
             core::Table::num(fat.aggregate_gbps, 2)});
  table.print();
  std::puts("Congestion on the shared trunk is what the paper's delay"
            " injector emulates; QoS protects the sensitive pair without"
            " buying bandwidth, over-provisioning buys everyone out.");
  return 0;
}
