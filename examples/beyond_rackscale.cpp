// Beyond rack-scale: the datacenter the paper argues toward.
//
// K borrower-lender pairs share a two-switch fabric with one trunk.  As
// pairs activate, trunk congestion raises everyone's remote-memory latency
// -- the failure mode the paper's delay injector emulates.  Then the two
// mitigations this library implements are switched on:
//   * QoS: one pair is latency-class and bypasses bulk backlog;
//   * a fatter trunk (what a real operator would provision).
//
// The fabric is the checked-in trunk_contention scenario (dumbbell
// topology) built by node::Cluster; only the probe borrower's NIC and the
// trunk bandwidth are adjusted per configuration.
//
//   ./beyond_rackscale [--pairs=8] [--trunk-gbit=100] [--ms=10]
//                      [--scenario=trunk_contention]
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"
#include "sim/config.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

struct FabricResult {
  double probe_mean_us = 0;
  double probe_p99_us = 0;
  double aggregate_gbps = 0;
};

/// The shared-trunk scenario reshaped for this study: the first borrower
/// becomes a dedicated "probe" declaration so its NIC can differ (QoS
/// window reservation), and the trunk bandwidth is overridden in place.
scenario::ScenarioSpec probe_scenario(const scenario::ScenarioSpec& base,
                                      int pairs, double trunk_gbit,
                                      bool probe_priority) {
  scenario::ScenarioSpec spec = base;
  spec.set_borrower_count(static_cast<std::uint32_t>(pairs));
  spec.set_lender_count(static_cast<std::uint32_t>(pairs));
  spec.topology.trunk.bandwidth = sim::Bandwidth::from_gbit(trunk_gbit);

  std::vector<scenario::NodeDecl> nodes;
  scenario::NodeDecl probe;
  bool split = false;
  for (auto& n : spec.nodes) {
    if (!split && n.role == scenario::Role::kBorrower) {
      probe = n;
      probe.name = "probe";
      probe.count = 1;
      if (probe_priority) probe.nic.latency_reserved_entries = 16;
      nodes.push_back(probe);
      if (n.count > 1) {
        n.count -= 1;
        nodes.push_back(n);
      }
      split = true;
    } else {
      nodes.push_back(n);
    }
  }
  spec.nodes = std::move(nodes);
  return spec;
}

FabricResult run_fabric(const scenario::ScenarioSpec& base, int pairs,
                        double trunk_gbit, bool probe_priority,
                        sim::Time horizon) {
  node::Cluster cluster(
      probe_scenario(base, pairs, trunk_gbit, probe_priority));
  cluster.attach_remote();

  std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
  for (std::size_t i = 0; i < cluster.num_borrowers(); ++i) {
    workloads::FlowConfig fcfg;
    fcfg.concurrency = i == 0 ? 16 : 128;
    fcfg.base = cluster.remote_base(i);
    fcfg.span_bytes = cluster.remote_span(i);
    fcfg.stop_at = horizon;
    if (i == 0 && probe_priority) fcfg.priority = sim::Priority::kLatency;
    if (i != 0) {
      fcfg.phase_on = sim::from_us(120.0);
      fcfg.phase_off = sim::from_us(180.0);
      fcfg.seed = 17 + static_cast<std::uint64_t>(i);
    }
    flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
        cluster.engine(), cluster.borrower(i).nic(), fcfg));
  }
  for (auto& f : flows) f->start();
  cluster.engine().run();

  FabricResult r;
  r.probe_mean_us = flows[0]->stats().latency_us.mean();
  r.probe_p99_us = cluster.borrower(0).nic().latency_us().p99();
  for (auto& f : flows) r.aggregate_gbps += f->stats().bandwidth_gbps(horizon);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args("beyond_rackscale: shared-fabric memory disaggregation");
  args.add_int("pairs", 8, "borrower-lender pairs on the fabric");
  args.add_double("trunk-gbit", 100.0, "trunk bandwidth (Gb/s)");
  args.add_double("ms", 10.0, "measurement window (simulated ms)");
  args.add_string("scenario", "trunk_contention",
                  "fabric scenario name (scenarios/<name>.json) or path");
  if (!args.parse(argc, argv)) return 1;

  const scenario::ScenarioSpec base = bench::load_scenario(args.str("scenario"));
  const int pairs = static_cast<int>(args.integer("pairs"));
  const double trunk = args.real("trunk-gbit");
  const auto horizon = sim::from_ms(args.real("ms"));

  core::Table table(
      "one probe pair among " + std::to_string(pairs - 1) +
          " bursty neighbours",
      {"configuration", "probe mean (us)", "probe p99 (us)",
       "fabric aggregate (GB/s)"});
  const auto congested = run_fabric(base, pairs, trunk, false, horizon);
  table.row({"shared trunk, no QoS", core::Table::num(congested.probe_mean_us, 2),
             core::Table::num(congested.probe_p99_us, 2),
             core::Table::num(congested.aggregate_gbps, 2)});
  const auto qos = run_fabric(base, pairs, trunk, true, horizon);
  table.row({"shared trunk, probe latency-class",
             core::Table::num(qos.probe_mean_us, 2),
             core::Table::num(qos.probe_p99_us, 2),
             core::Table::num(qos.aggregate_gbps, 2)});
  const auto fat = run_fabric(base, pairs, trunk * 4, false, horizon);
  table.row({"4x trunk, no QoS", core::Table::num(fat.probe_mean_us, 2),
             core::Table::num(fat.probe_p99_us, 2),
             core::Table::num(fat.aggregate_gbps, 2)});
  table.print();
  std::puts("Congestion on the shared trunk is what the paper's delay"
            " injector emulates; QoS protects the sensitive pair without"
            " buying bandwidth, over-provisioning buys everyone out.");
  return 0;
}
