// Resilience probing (paper §IV-C): find the delay level where the system
// stops being healthy, and the level where it stops working at all.
//
//   ./resilience_probe [--periods=1,10,100,1000,3000,10000]
//                      [--sla-us=100] [--elements=2000000]
#include <cstdio>

#include "core/report.hpp"
#include "core/resilience.hpp"
#include "sim/config.hpp"

using namespace tfsim;

int main(int argc, char** argv) {
  sim::ArgParser args("resilience_probe: classify health vs injected delay");
  args.add_string("periods", "1,10,100,1000,3000,10000", "PERIOD values");
  args.add_double("sla-us", 100.0,
                  "latency SLA: beyond this a run counts as degraded");
  args.add_int("elements", 2'000'000, "STREAM array elements");
  if (!args.parse(argc, argv)) return 1;

  core::ResilienceOptions opts;
  opts.degraded_threshold_us = args.real("sla-us");
  opts.stream.elements = static_cast<std::uint64_t>(args.integer("elements"));

  core::Table table("resilience probe",
                    {"PERIOD", "attached", "STREAM latency (us)",
                     "bandwidth (GB/s)", "classification"});
  std::uint64_t first_degraded = 0, first_lost = 0;
  for (const auto period : args.int_list("periods")) {
    const auto p =
        core::assess_resilience(static_cast<std::uint64_t>(period), opts);
    table.row({std::to_string(period), p.attached ? "yes" : "NO",
               p.attached ? core::Table::num(p.stream_latency_us, 1) : "-",
               p.attached ? core::Table::num(p.stream_bandwidth_gbps, 3) : "-",
               core::to_string(p.health)});
    if (p.health == core::HealthClass::kDegraded && first_degraded == 0) {
      first_degraded = p.period;
    }
    if (p.health == core::HealthClass::kDeviceLost && first_lost == 0) {
      first_lost = p.period;
    }
  }
  table.print();

  if (first_degraded != 0) {
    std::printf("SLA violations start at PERIOD=%llu.\n",
                static_cast<unsigned long long>(first_degraded));
  }
  if (first_lost != 0) {
    std::printf("Device lost at PERIOD=%llu -- but that corresponds to delay"
                " far beyond 99th-percentile datacenter tail latency, so the"
                " paper concludes CPU delay-resilience is not the immediate"
                " concern; SLA-scale degradation is.\n",
                static_cast<unsigned long long>(first_lost));
  }
  return 0;
}
