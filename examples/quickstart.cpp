// Quickstart: bring up the two-node ThymesisFlow testbed, borrow memory,
// inject delay, and watch STREAM feel it.
//
//   ./quickstart [--elements=10000000] [--periods=1,10,100,400]
//
// Walks the whole public API surface: testbed assembly, control-plane
// reservation + hot-plug, the delay injector, a workload, and reporting.
#include <cstdio>

#include "core/metrics.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "sim/config.hpp"

using namespace tfsim;

int main(int argc, char** argv) {
  sim::ArgParser args(
      "quickstart: STREAM on disaggregated memory under delay injection");
  args.add_int("elements", 10'000'000, "STREAM array elements (doubles)");
  args.add_string("periods", "1,10,100,400", "injector PERIOD values");
  if (!args.parse(argc, argv)) return 1;

  workloads::StreamConfig stream_cfg;
  stream_cfg.elements = static_cast<std::uint64_t>(args.integer("elements"));

  core::Table table("STREAM on borrowed memory vs injector PERIOD",
                    {"PERIOD", "delay interval (us)", "latency (us)",
                     "bandwidth (GB/s)", "BDP (kB)", "validated"});

  for (const auto period : args.int_list("periods")) {
    core::SessionConfig cfg;
    cfg.period = static_cast<std::uint64_t>(period);
    core::Session session(cfg);
    if (!session.attached()) {
      std::fprintf(stderr, "PERIOD %lld: device lost, cannot attach\n",
                   static_cast<long long>(period));
      continue;
    }
    std::printf("PERIOD %-6lld: remote region at 0x%llx (%llu GiB borrowed)\n",
                static_cast<long long>(period),
                static_cast<unsigned long long>(session.testbed().remote_base()),
                static_cast<unsigned long long>(
                    session.testbed().spec().remote_gib));

    const auto res = session.run_stream(stream_cfg);
    table.row({std::to_string(period),
               core::Table::num(sim::to_us(session.injector_interval()), 4),
               core::Table::num(res.avg_latency_us, 2),
               core::Table::num(res.best_bandwidth_gbps, 3),
               core::Table::num(
                   core::bdp_kb(res.best_bandwidth_gbps, res.avg_latency_us), 1),
               res.validated ? "yes" : "NO"});
  }
  table.print();
  std::puts("The bandwidth-delay product stays ~constant while latency grows"
            " linearly with PERIOD -- the injector is throttling admission,"
            " not shrinking the window.");
  return 0;
}
