// Bring-your-own-workload characterization via trace replay.
//
// Generates (or loads) a memory-access trace, then replays it against the
// testbed across a PERIOD sweep -- how you characterize an application this
// library does not implement.
//
//   ./trace_replay [--trace=path] [--periods=1,100,1000]
//                  [--save=captured.trace]
//
// Without --trace, a synthetic mixed workload (sequential scan + pointer
// chase + compute) is recorded first and then replayed.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/report.hpp"
#include "node/testbed.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "workloads/replay/trace.hpp"

using namespace tfsim;
using workloads::replay::Trace;

namespace {

/// Record a synthetic phase-mixed workload.
Trace record_synthetic() {
  node::Testbed tb;
  tb.attach_remote();
  node::MemContext ctx(tb.borrower(), node::CpuConfig{16, 100}, "capture");
  workloads::replay::TraceRecorder rec(ctx, tb.remote_base());
  sim::Rng rng(5);
  const mem::Addr base = tb.remote_base();
  // Phase 1: sequential scan (prefetch friendly).
  for (int i = 0; i < 2000; ++i) {
    rec.access(base + static_cast<mem::Addr>(i) * 128, false, false);
  }
  // Phase 2: pointer chase over 8 MB (latency bound).
  for (int i = 0; i < 500; ++i) {
    rec.access(base + rng.uniform_u64(8 * sim::kMiB), false, true);
    rec.advance(sim::from_ns(20));
  }
  // Phase 3: read-modify-write with compute.
  for (int i = 0; i < 1000; ++i) {
    const mem::Addr a = base + rng.uniform_u64(4 * sim::kMiB);
    rec.access(a, false, true);
    rec.advance(sim::from_ns(100));
    rec.access(a, true, false);
  }
  return rec.trace();
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args("trace_replay: characterize any recorded access trace");
  args.add_string("trace", "", "trace file to replay (empty: synthesize one)");
  args.add_string("save", "", "write the trace being used to this file");
  args.add_string("periods", "1,100,1000", "injector PERIOD sweep");
  if (!args.parse(argc, argv)) return 1;

  Trace trace;
  if (!args.str("trace").empty()) {
    std::ifstream in(args.str("trace"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.str("trace").c_str());
      return 1;
    }
    trace = workloads::replay::parse_trace(in);
  } else {
    std::puts("no --trace given: recording a synthetic scan/chase/RMW mix");
    trace = record_synthetic();
  }
  if (!args.str("save").empty()) {
    std::ofstream out(args.str("save"));
    workloads::replay::write_trace(out, trace);
  }
  std::printf("trace: %llu accesses, %.1f MiB footprint\n",
              static_cast<unsigned long long>(trace.accesses()),
              static_cast<double>(trace.footprint_bytes()) /
                  static_cast<double>(sim::kMiB));

  core::Table table("trace replay vs injection PERIOD",
                    {"PERIOD", "elapsed (ms)", "degradation", "remote misses",
                     "avg miss latency (us)"});
  sim::Time baseline = 0;
  for (const auto period : args.int_list("periods")) {
    node::Testbed tb;
    tb.set_period(static_cast<std::uint64_t>(period));
    if (!tb.attach_remote()) {
      std::fprintf(stderr, "PERIOD %lld: device lost\n",
                   static_cast<long long>(period));
      continue;
    }
    const auto res = workloads::replay::replay(tb.borrower(), trace,
                                               node::Placement::kRemote);
    if (baseline == 0) baseline = res.elapsed;
    table.row({std::to_string(period),
               core::Table::num(sim::to_ms(res.elapsed), 3),
               core::Table::ratio(static_cast<double>(res.elapsed) /
                                  static_cast<double>(baseline)),
               std::to_string(res.remote_misses),
               core::Table::num(res.avg_miss_latency_us, 2)});
  }
  table.print();
  return 0;
}
