// Contention study: reproduce the paper's MCBN/MCLN experiments at custom
// instance counts and watch where the bottleneck actually sits.
//
//   ./contention_study [--instances=1,2,4,8] [--scenario=both|mcbn|mcln]
//                      [--ms=20] [--testbed=paper_twonode]
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "node/testbed.hpp"
#include "sim/config.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

/// N STREAM instances on the borrower, all remote (MCBN).
void run_mcbn(const node::TestbedSpec& spec,
              const std::vector<std::int64_t>& counts, sim::Time horizon) {
  core::Table table("MCBN: all instances on the borrower, remote memory",
                    {"instances", "per-instance GB/s", "aggregate GB/s",
                     "NIC window stalls"});
  for (const auto n : counts) {
    node::Testbed tb(spec);
    tb.attach_remote();
    std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
    for (std::int64_t i = 0; i < n; ++i) {
      workloads::FlowConfig cfg;
      cfg.concurrency = 128;
      cfg.base = tb.remote_base() + static_cast<std::uint64_t>(i) * 256 * sim::kMiB;
      cfg.span_bytes = 256 * sim::kMiB;
      cfg.stop_at = horizon;
      flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
          tb.engine(), tb.borrower().nic(), cfg));
    }
    for (auto& f : flows) f->start();
    tb.engine().run();
    double total = 0;
    for (auto& f : flows) total += f->stats().bandwidth_gbps(horizon);
    table.row({std::to_string(n),
               core::Table::num(total / static_cast<double>(n), 3),
               core::Table::num(total, 3),
               std::to_string(tb.borrower().nic().window().stalls())});
  }
  table.print();
  std::puts("-> instances split the bottleneck (network) bandwidth equally.");
}

/// One borrower instance + N instances hammering the lender's bus (MCLN).
void run_mcln(const node::TestbedSpec& spec,
              const std::vector<std::int64_t>& counts, sim::Time horizon) {
  core::Table table("MCLN: borrower streams remotely; N instances on lender",
                    {"lender instances", "borrower GB/s", "lender bus util"});
  for (const auto n : counts) {
    node::Testbed tb(spec);
    tb.attach_remote();
    workloads::FlowConfig bcfg;
    bcfg.concurrency = 128;
    bcfg.base = tb.remote_base();
    bcfg.span_bytes = 256 * sim::kMiB;
    bcfg.stop_at = horizon;
    workloads::RemoteStreamFlow borrower(tb.engine(), tb.borrower().nic(), bcfg);
    std::vector<std::unique_ptr<workloads::LocalStreamFlow>> lender_flows;
    for (std::int64_t i = 0; i < n; ++i) {
      workloads::FlowConfig cfg;
      cfg.concurrency = 64;
      cfg.stop_at = horizon;
      lender_flows.push_back(std::make_unique<workloads::LocalStreamFlow>(
          tb.engine(), tb.lender().dram(), cfg));
    }
    borrower.start();
    for (auto& f : lender_flows) f->start();
    tb.engine().run();
    table.row({std::to_string(n),
               core::Table::num(borrower.stats().bandwidth_gbps(horizon), 3),
               core::Table::num(tb.lender().dram().utilization(horizon) * 100, 1) + "%"});
  }
  table.print();
  std::puts("-> lender-side load barely moves borrower bandwidth: memory-bus"
            " headroom dwarfs the network (the paper's allocation insight).");
}

}  // namespace

int main(int argc, char** argv) {
  sim::ArgParser args("contention_study: MCBN / MCLN scenarios");
  args.add_string("instances", "1,2,4,8", "instance counts to sweep");
  args.add_string("scenario", "both", "both | mcbn | mcln");
  args.add_double("ms", 20.0, "measurement window (simulated ms)");
  args.add_string("testbed", "paper_twonode",
                  "testbed scenario name (scenarios/<name>.json) or path");
  if (!args.parse(argc, argv)) return 1;

  const node::TestbedSpec spec =
      node::to_testbed_spec(bench::load_scenario(args.str("testbed")));
  const auto counts = args.int_list("instances");
  const auto horizon = sim::from_ms(args.real("ms"));
  const auto scenario = args.str("scenario");
  if (scenario == "both" || scenario == "mcbn") run_mcbn(spec, counts, horizon);
  if (scenario == "both" || scenario == "mcln") run_mcln(spec, counts, horizon);
  return 0;
}
