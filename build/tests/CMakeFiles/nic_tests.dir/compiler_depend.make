# Empty compiler generated dependencies file for nic_tests.
# This may be replaced when dependencies are built.
