file(REMOVE_RECURSE
  "CMakeFiles/nic_tests.dir/nic/nic_test.cpp.o"
  "CMakeFiles/nic_tests.dir/nic/nic_test.cpp.o.d"
  "nic_tests"
  "nic_tests.pdb"
  "nic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
