file(REMOVE_RECURSE
  "CMakeFiles/mem_tests.dir/mem/cache_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/cache_test.cpp.o.d"
  "CMakeFiles/mem_tests.dir/mem/hierarchy_address_test.cpp.o"
  "CMakeFiles/mem_tests.dir/mem/hierarchy_address_test.cpp.o.d"
  "mem_tests"
  "mem_tests.pdb"
  "mem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
