file(REMOVE_RECURSE
  "CMakeFiles/ctrl_tests.dir/ctrl/ctrl_test.cpp.o"
  "CMakeFiles/ctrl_tests.dir/ctrl/ctrl_test.cpp.o.d"
  "ctrl_tests"
  "ctrl_tests.pdb"
  "ctrl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
