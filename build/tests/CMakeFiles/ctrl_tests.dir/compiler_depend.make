# Empty compiler generated dependencies file for ctrl_tests.
# This may be replaced when dependencies are built.
