file(REMOVE_RECURSE
  "CMakeFiles/axi_tests.dir/axi/pipeline_test.cpp.o"
  "CMakeFiles/axi_tests.dir/axi/pipeline_test.cpp.o.d"
  "CMakeFiles/axi_tests.dir/axi/rate_gate_test.cpp.o"
  "CMakeFiles/axi_tests.dir/axi/rate_gate_test.cpp.o.d"
  "axi_tests"
  "axi_tests.pdb"
  "axi_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axi_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
