# Empty dependencies file for axi_tests.
# This may be replaced when dependencies are built.
