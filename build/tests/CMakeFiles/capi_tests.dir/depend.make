# Empty dependencies file for capi_tests.
# This may be replaced when dependencies are built.
