file(REMOVE_RECURSE
  "CMakeFiles/capi_tests.dir/capi/capi_test.cpp.o"
  "CMakeFiles/capi_tests.dir/capi/capi_test.cpp.o.d"
  "capi_tests"
  "capi_tests.pdb"
  "capi_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capi_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
