# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/axi_tests[1]_include.cmake")
include("/root/repo/build/tests/mem_tests[1]_include.cmake")
include("/root/repo/build/tests/capi_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/nic_tests[1]_include.cmake")
include("/root/repo/build/tests/ctrl_tests[1]_include.cmake")
include("/root/repo/build/tests/node_tests[1]_include.cmake")
include("/root/repo/build/tests/workloads_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/extensions_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
