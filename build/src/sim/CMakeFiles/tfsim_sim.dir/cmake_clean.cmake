file(REMOVE_RECURSE
  "CMakeFiles/tfsim_sim.dir/config.cpp.o"
  "CMakeFiles/tfsim_sim.dir/config.cpp.o.d"
  "CMakeFiles/tfsim_sim.dir/engine.cpp.o"
  "CMakeFiles/tfsim_sim.dir/engine.cpp.o.d"
  "CMakeFiles/tfsim_sim.dir/log.cpp.o"
  "CMakeFiles/tfsim_sim.dir/log.cpp.o.d"
  "CMakeFiles/tfsim_sim.dir/rng.cpp.o"
  "CMakeFiles/tfsim_sim.dir/rng.cpp.o.d"
  "CMakeFiles/tfsim_sim.dir/stats.cpp.o"
  "CMakeFiles/tfsim_sim.dir/stats.cpp.o.d"
  "CMakeFiles/tfsim_sim.dir/trace.cpp.o"
  "CMakeFiles/tfsim_sim.dir/trace.cpp.o.d"
  "libtfsim_sim.a"
  "libtfsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
