file(REMOVE_RECURSE
  "libtfsim_sim.a"
)
