# Empty dependencies file for tfsim_sim.
# This may be replaced when dependencies are built.
