file(REMOVE_RECURSE
  "libtfsim_ctrl.a"
)
