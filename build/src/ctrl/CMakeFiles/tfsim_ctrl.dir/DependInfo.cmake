
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/control_plane.cpp" "src/ctrl/CMakeFiles/tfsim_ctrl.dir/control_plane.cpp.o" "gcc" "src/ctrl/CMakeFiles/tfsim_ctrl.dir/control_plane.cpp.o.d"
  "/root/repo/src/ctrl/policy.cpp" "src/ctrl/CMakeFiles/tfsim_ctrl.dir/policy.cpp.o" "gcc" "src/ctrl/CMakeFiles/tfsim_ctrl.dir/policy.cpp.o.d"
  "/root/repo/src/ctrl/registry.cpp" "src/ctrl/CMakeFiles/tfsim_ctrl.dir/registry.cpp.o" "gcc" "src/ctrl/CMakeFiles/tfsim_ctrl.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tfsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/tfsim_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/tfsim_capi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
