# Empty compiler generated dependencies file for tfsim_ctrl.
# This may be replaced when dependencies are built.
