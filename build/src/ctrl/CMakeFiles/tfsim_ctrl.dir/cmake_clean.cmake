file(REMOVE_RECURSE
  "CMakeFiles/tfsim_ctrl.dir/control_plane.cpp.o"
  "CMakeFiles/tfsim_ctrl.dir/control_plane.cpp.o.d"
  "CMakeFiles/tfsim_ctrl.dir/policy.cpp.o"
  "CMakeFiles/tfsim_ctrl.dir/policy.cpp.o.d"
  "CMakeFiles/tfsim_ctrl.dir/registry.cpp.o"
  "CMakeFiles/tfsim_ctrl.dir/registry.cpp.o.d"
  "libtfsim_ctrl.a"
  "libtfsim_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
