file(REMOVE_RECURSE
  "CMakeFiles/tfsim_capi.dir/frame.cpp.o"
  "CMakeFiles/tfsim_capi.dir/frame.cpp.o.d"
  "CMakeFiles/tfsim_capi.dir/opcodes.cpp.o"
  "CMakeFiles/tfsim_capi.dir/opcodes.cpp.o.d"
  "libtfsim_capi.a"
  "libtfsim_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
