
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capi/frame.cpp" "src/capi/CMakeFiles/tfsim_capi.dir/frame.cpp.o" "gcc" "src/capi/CMakeFiles/tfsim_capi.dir/frame.cpp.o.d"
  "/root/repo/src/capi/opcodes.cpp" "src/capi/CMakeFiles/tfsim_capi.dir/opcodes.cpp.o" "gcc" "src/capi/CMakeFiles/tfsim_capi.dir/opcodes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tfsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
