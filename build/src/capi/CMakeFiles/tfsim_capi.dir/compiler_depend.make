# Empty compiler generated dependencies file for tfsim_capi.
# This may be replaced when dependencies are built.
