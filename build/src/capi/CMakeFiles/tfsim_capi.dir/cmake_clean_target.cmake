file(REMOVE_RECURSE
  "libtfsim_capi.a"
)
