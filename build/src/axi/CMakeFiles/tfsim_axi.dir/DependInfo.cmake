
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/axi/endpoints.cpp" "src/axi/CMakeFiles/tfsim_axi.dir/endpoints.cpp.o" "gcc" "src/axi/CMakeFiles/tfsim_axi.dir/endpoints.cpp.o.d"
  "/root/repo/src/axi/fifo.cpp" "src/axi/CMakeFiles/tfsim_axi.dir/fifo.cpp.o" "gcc" "src/axi/CMakeFiles/tfsim_axi.dir/fifo.cpp.o.d"
  "/root/repo/src/axi/module.cpp" "src/axi/CMakeFiles/tfsim_axi.dir/module.cpp.o" "gcc" "src/axi/CMakeFiles/tfsim_axi.dir/module.cpp.o.d"
  "/root/repo/src/axi/monitor.cpp" "src/axi/CMakeFiles/tfsim_axi.dir/monitor.cpp.o" "gcc" "src/axi/CMakeFiles/tfsim_axi.dir/monitor.cpp.o.d"
  "/root/repo/src/axi/mux.cpp" "src/axi/CMakeFiles/tfsim_axi.dir/mux.cpp.o" "gcc" "src/axi/CMakeFiles/tfsim_axi.dir/mux.cpp.o.d"
  "/root/repo/src/axi/rate_gate.cpp" "src/axi/CMakeFiles/tfsim_axi.dir/rate_gate.cpp.o" "gcc" "src/axi/CMakeFiles/tfsim_axi.dir/rate_gate.cpp.o.d"
  "/root/repo/src/axi/router.cpp" "src/axi/CMakeFiles/tfsim_axi.dir/router.cpp.o" "gcc" "src/axi/CMakeFiles/tfsim_axi.dir/router.cpp.o.d"
  "/root/repo/src/axi/testbench.cpp" "src/axi/CMakeFiles/tfsim_axi.dir/testbench.cpp.o" "gcc" "src/axi/CMakeFiles/tfsim_axi.dir/testbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tfsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
