file(REMOVE_RECURSE
  "CMakeFiles/tfsim_axi.dir/endpoints.cpp.o"
  "CMakeFiles/tfsim_axi.dir/endpoints.cpp.o.d"
  "CMakeFiles/tfsim_axi.dir/fifo.cpp.o"
  "CMakeFiles/tfsim_axi.dir/fifo.cpp.o.d"
  "CMakeFiles/tfsim_axi.dir/module.cpp.o"
  "CMakeFiles/tfsim_axi.dir/module.cpp.o.d"
  "CMakeFiles/tfsim_axi.dir/monitor.cpp.o"
  "CMakeFiles/tfsim_axi.dir/monitor.cpp.o.d"
  "CMakeFiles/tfsim_axi.dir/mux.cpp.o"
  "CMakeFiles/tfsim_axi.dir/mux.cpp.o.d"
  "CMakeFiles/tfsim_axi.dir/rate_gate.cpp.o"
  "CMakeFiles/tfsim_axi.dir/rate_gate.cpp.o.d"
  "CMakeFiles/tfsim_axi.dir/router.cpp.o"
  "CMakeFiles/tfsim_axi.dir/router.cpp.o.d"
  "CMakeFiles/tfsim_axi.dir/testbench.cpp.o"
  "CMakeFiles/tfsim_axi.dir/testbench.cpp.o.d"
  "libtfsim_axi.a"
  "libtfsim_axi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_axi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
