# Empty compiler generated dependencies file for tfsim_axi.
# This may be replaced when dependencies are built.
