file(REMOVE_RECURSE
  "libtfsim_axi.a"
)
