# Empty dependencies file for tfsim_nic.
# This may be replaced when dependencies are built.
