file(REMOVE_RECURSE
  "libtfsim_nic.a"
)
