file(REMOVE_RECURSE
  "CMakeFiles/tfsim_nic.dir/injector.cpp.o"
  "CMakeFiles/tfsim_nic.dir/injector.cpp.o.d"
  "CMakeFiles/tfsim_nic.dir/nic.cpp.o"
  "CMakeFiles/tfsim_nic.dir/nic.cpp.o.d"
  "CMakeFiles/tfsim_nic.dir/translator.cpp.o"
  "CMakeFiles/tfsim_nic.dir/translator.cpp.o.d"
  "libtfsim_nic.a"
  "libtfsim_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
