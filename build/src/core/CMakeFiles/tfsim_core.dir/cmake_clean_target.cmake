file(REMOVE_RECURSE
  "libtfsim_core.a"
)
