# Empty compiler generated dependencies file for tfsim_core.
# This may be replaced when dependencies are built.
