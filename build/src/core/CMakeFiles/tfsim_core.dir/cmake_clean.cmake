file(REMOVE_RECURSE
  "CMakeFiles/tfsim_core.dir/report.cpp.o"
  "CMakeFiles/tfsim_core.dir/report.cpp.o.d"
  "CMakeFiles/tfsim_core.dir/resilience.cpp.o"
  "CMakeFiles/tfsim_core.dir/resilience.cpp.o.d"
  "CMakeFiles/tfsim_core.dir/session.cpp.o"
  "CMakeFiles/tfsim_core.dir/session.cpp.o.d"
  "libtfsim_core.a"
  "libtfsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
