file(REMOVE_RECURSE
  "CMakeFiles/tfsim_workloads.dir/graph500/csr.cpp.o"
  "CMakeFiles/tfsim_workloads.dir/graph500/csr.cpp.o.d"
  "CMakeFiles/tfsim_workloads.dir/graph500/graph500.cpp.o"
  "CMakeFiles/tfsim_workloads.dir/graph500/graph500.cpp.o.d"
  "CMakeFiles/tfsim_workloads.dir/graph500/kronecker.cpp.o"
  "CMakeFiles/tfsim_workloads.dir/graph500/kronecker.cpp.o.d"
  "CMakeFiles/tfsim_workloads.dir/kvstore/kvstore.cpp.o"
  "CMakeFiles/tfsim_workloads.dir/kvstore/kvstore.cpp.o.d"
  "CMakeFiles/tfsim_workloads.dir/kvstore/memtier.cpp.o"
  "CMakeFiles/tfsim_workloads.dir/kvstore/memtier.cpp.o.d"
  "CMakeFiles/tfsim_workloads.dir/kvstore/resp.cpp.o"
  "CMakeFiles/tfsim_workloads.dir/kvstore/resp.cpp.o.d"
  "CMakeFiles/tfsim_workloads.dir/replay/trace.cpp.o"
  "CMakeFiles/tfsim_workloads.dir/replay/trace.cpp.o.d"
  "CMakeFiles/tfsim_workloads.dir/stream/stream.cpp.o"
  "CMakeFiles/tfsim_workloads.dir/stream/stream.cpp.o.d"
  "CMakeFiles/tfsim_workloads.dir/stream/stream_flow.cpp.o"
  "CMakeFiles/tfsim_workloads.dir/stream/stream_flow.cpp.o.d"
  "libtfsim_workloads.a"
  "libtfsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
