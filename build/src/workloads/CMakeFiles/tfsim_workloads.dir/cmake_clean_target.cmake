file(REMOVE_RECURSE
  "libtfsim_workloads.a"
)
