
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/graph500/csr.cpp" "src/workloads/CMakeFiles/tfsim_workloads.dir/graph500/csr.cpp.o" "gcc" "src/workloads/CMakeFiles/tfsim_workloads.dir/graph500/csr.cpp.o.d"
  "/root/repo/src/workloads/graph500/graph500.cpp" "src/workloads/CMakeFiles/tfsim_workloads.dir/graph500/graph500.cpp.o" "gcc" "src/workloads/CMakeFiles/tfsim_workloads.dir/graph500/graph500.cpp.o.d"
  "/root/repo/src/workloads/graph500/kronecker.cpp" "src/workloads/CMakeFiles/tfsim_workloads.dir/graph500/kronecker.cpp.o" "gcc" "src/workloads/CMakeFiles/tfsim_workloads.dir/graph500/kronecker.cpp.o.d"
  "/root/repo/src/workloads/kvstore/kvstore.cpp" "src/workloads/CMakeFiles/tfsim_workloads.dir/kvstore/kvstore.cpp.o" "gcc" "src/workloads/CMakeFiles/tfsim_workloads.dir/kvstore/kvstore.cpp.o.d"
  "/root/repo/src/workloads/kvstore/memtier.cpp" "src/workloads/CMakeFiles/tfsim_workloads.dir/kvstore/memtier.cpp.o" "gcc" "src/workloads/CMakeFiles/tfsim_workloads.dir/kvstore/memtier.cpp.o.d"
  "/root/repo/src/workloads/kvstore/resp.cpp" "src/workloads/CMakeFiles/tfsim_workloads.dir/kvstore/resp.cpp.o" "gcc" "src/workloads/CMakeFiles/tfsim_workloads.dir/kvstore/resp.cpp.o.d"
  "/root/repo/src/workloads/replay/trace.cpp" "src/workloads/CMakeFiles/tfsim_workloads.dir/replay/trace.cpp.o" "gcc" "src/workloads/CMakeFiles/tfsim_workloads.dir/replay/trace.cpp.o.d"
  "/root/repo/src/workloads/stream/stream.cpp" "src/workloads/CMakeFiles/tfsim_workloads.dir/stream/stream.cpp.o" "gcc" "src/workloads/CMakeFiles/tfsim_workloads.dir/stream/stream.cpp.o.d"
  "/root/repo/src/workloads/stream/stream_flow.cpp" "src/workloads/CMakeFiles/tfsim_workloads.dir/stream/stream_flow.cpp.o" "gcc" "src/workloads/CMakeFiles/tfsim_workloads.dir/stream/stream_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tfsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/tfsim_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/tfsim_node.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/tfsim_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/tfsim_capi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
