# Empty dependencies file for tfsim_workloads.
# This may be replaced when dependencies are built.
