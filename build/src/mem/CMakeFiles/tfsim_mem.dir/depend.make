# Empty dependencies file for tfsim_mem.
# This may be replaced when dependencies are built.
