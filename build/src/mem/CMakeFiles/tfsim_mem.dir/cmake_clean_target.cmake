file(REMOVE_RECURSE
  "libtfsim_mem.a"
)
