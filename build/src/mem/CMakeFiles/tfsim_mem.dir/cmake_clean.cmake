file(REMOVE_RECURSE
  "CMakeFiles/tfsim_mem.dir/address.cpp.o"
  "CMakeFiles/tfsim_mem.dir/address.cpp.o.d"
  "CMakeFiles/tfsim_mem.dir/cache.cpp.o"
  "CMakeFiles/tfsim_mem.dir/cache.cpp.o.d"
  "CMakeFiles/tfsim_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/tfsim_mem.dir/hierarchy.cpp.o.d"
  "libtfsim_mem.a"
  "libtfsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
