file(REMOVE_RECURSE
  "CMakeFiles/tfsim_net.dir/latency_dist.cpp.o"
  "CMakeFiles/tfsim_net.dir/latency_dist.cpp.o.d"
  "CMakeFiles/tfsim_net.dir/network.cpp.o"
  "CMakeFiles/tfsim_net.dir/network.cpp.o.d"
  "CMakeFiles/tfsim_net.dir/packet.cpp.o"
  "CMakeFiles/tfsim_net.dir/packet.cpp.o.d"
  "CMakeFiles/tfsim_net.dir/topology.cpp.o"
  "CMakeFiles/tfsim_net.dir/topology.cpp.o.d"
  "libtfsim_net.a"
  "libtfsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
