file(REMOVE_RECURSE
  "libtfsim_net.a"
)
