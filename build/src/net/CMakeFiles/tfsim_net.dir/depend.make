# Empty dependencies file for tfsim_net.
# This may be replaced when dependencies are built.
