file(REMOVE_RECURSE
  "CMakeFiles/tfsim_node.dir/context.cpp.o"
  "CMakeFiles/tfsim_node.dir/context.cpp.o.d"
  "CMakeFiles/tfsim_node.dir/migration.cpp.o"
  "CMakeFiles/tfsim_node.dir/migration.cpp.o.d"
  "CMakeFiles/tfsim_node.dir/node.cpp.o"
  "CMakeFiles/tfsim_node.dir/node.cpp.o.d"
  "CMakeFiles/tfsim_node.dir/testbed.cpp.o"
  "CMakeFiles/tfsim_node.dir/testbed.cpp.o.d"
  "libtfsim_node.a"
  "libtfsim_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfsim_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
