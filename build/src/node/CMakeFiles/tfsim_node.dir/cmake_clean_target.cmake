file(REMOVE_RECURSE
  "libtfsim_node.a"
)
