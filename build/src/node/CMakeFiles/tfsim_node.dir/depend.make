# Empty dependencies file for tfsim_node.
# This may be replaced when dependencies are built.
