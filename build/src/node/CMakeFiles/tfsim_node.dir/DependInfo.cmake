
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/context.cpp" "src/node/CMakeFiles/tfsim_node.dir/context.cpp.o" "gcc" "src/node/CMakeFiles/tfsim_node.dir/context.cpp.o.d"
  "/root/repo/src/node/migration.cpp" "src/node/CMakeFiles/tfsim_node.dir/migration.cpp.o" "gcc" "src/node/CMakeFiles/tfsim_node.dir/migration.cpp.o.d"
  "/root/repo/src/node/node.cpp" "src/node/CMakeFiles/tfsim_node.dir/node.cpp.o" "gcc" "src/node/CMakeFiles/tfsim_node.dir/node.cpp.o.d"
  "/root/repo/src/node/testbed.cpp" "src/node/CMakeFiles/tfsim_node.dir/testbed.cpp.o" "gcc" "src/node/CMakeFiles/tfsim_node.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tfsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/tfsim_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/tfsim_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/tfsim_capi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
