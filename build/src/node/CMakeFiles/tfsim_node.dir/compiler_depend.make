# Empty compiler generated dependencies file for tfsim_node.
# This may be replaced when dependencies are built.
