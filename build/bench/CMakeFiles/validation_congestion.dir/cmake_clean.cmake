file(REMOVE_RECURSE
  "CMakeFiles/validation_congestion.dir/validation_congestion.cpp.o"
  "CMakeFiles/validation_congestion.dir/validation_congestion.cpp.o.d"
  "validation_congestion"
  "validation_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
