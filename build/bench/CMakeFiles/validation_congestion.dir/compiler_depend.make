# Empty compiler generated dependencies file for validation_congestion.
# This may be replaced when dependencies are built.
