# Empty compiler generated dependencies file for fig5_app_degradation.
# This may be replaced when dependencies are built.
