
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_app_degradation.cpp" "bench/CMakeFiles/fig5_app_degradation.dir/fig5_app_degradation.cpp.o" "gcc" "bench/CMakeFiles/fig5_app_degradation.dir/fig5_app_degradation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/axi/CMakeFiles/tfsim_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tfsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/tfsim_node.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/tfsim_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/tfsim_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/tfsim_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tfsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
