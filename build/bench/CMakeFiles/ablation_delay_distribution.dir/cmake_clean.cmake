file(REMOVE_RECURSE
  "CMakeFiles/ablation_delay_distribution.dir/ablation_delay_distribution.cpp.o"
  "CMakeFiles/ablation_delay_distribution.dir/ablation_delay_distribution.cpp.o.d"
  "ablation_delay_distribution"
  "ablation_delay_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delay_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
