# Empty compiler generated dependencies file for fig2_stream_latency.
# This may be replaced when dependencies are built.
