file(REMOVE_RECURSE
  "CMakeFiles/fig2_stream_latency.dir/fig2_stream_latency.cpp.o"
  "CMakeFiles/fig2_stream_latency.dir/fig2_stream_latency.cpp.o.d"
  "fig2_stream_latency"
  "fig2_stream_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stream_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
