file(REMOVE_RECURSE
  "CMakeFiles/fig7_contention_lender.dir/fig7_contention_lender.cpp.o"
  "CMakeFiles/fig7_contention_lender.dir/fig7_contention_lender.cpp.o.d"
  "fig7_contention_lender"
  "fig7_contention_lender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_contention_lender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
