# Empty compiler generated dependencies file for fig7_contention_lender.
# This may be replaced when dependencies are built.
