file(REMOVE_RECURSE
  "CMakeFiles/table1_high_delay.dir/table1_high_delay.cpp.o"
  "CMakeFiles/table1_high_delay.dir/table1_high_delay.cpp.o.d"
  "table1_high_delay"
  "table1_high_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_high_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
