# Empty compiler generated dependencies file for table1_high_delay.
# This may be replaced when dependencies are built.
