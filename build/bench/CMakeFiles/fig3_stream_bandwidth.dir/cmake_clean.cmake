file(REMOVE_RECURSE
  "CMakeFiles/fig3_stream_bandwidth.dir/fig3_stream_bandwidth.cpp.o"
  "CMakeFiles/fig3_stream_bandwidth.dir/fig3_stream_bandwidth.cpp.o.d"
  "fig3_stream_bandwidth"
  "fig3_stream_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stream_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
