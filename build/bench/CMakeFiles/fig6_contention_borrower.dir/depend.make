# Empty dependencies file for fig6_contention_borrower.
# This may be replaced when dependencies are built.
