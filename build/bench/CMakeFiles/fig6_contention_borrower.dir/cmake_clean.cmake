file(REMOVE_RECURSE
  "CMakeFiles/fig6_contention_borrower.dir/fig6_contention_borrower.cpp.o"
  "CMakeFiles/fig6_contention_borrower.dir/fig6_contention_borrower.cpp.o.d"
  "fig6_contention_borrower"
  "fig6_contention_borrower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_contention_borrower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
