# Empty dependencies file for validation_injector.
# This may be replaced when dependencies are built.
