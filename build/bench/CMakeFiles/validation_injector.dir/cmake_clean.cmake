file(REMOVE_RECURSE
  "CMakeFiles/validation_injector.dir/validation_injector.cpp.o"
  "CMakeFiles/validation_injector.dir/validation_injector.cpp.o.d"
  "validation_injector"
  "validation_injector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
