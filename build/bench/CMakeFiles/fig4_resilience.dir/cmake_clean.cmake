file(REMOVE_RECURSE
  "CMakeFiles/fig4_resilience.dir/fig4_resilience.cpp.o"
  "CMakeFiles/fig4_resilience.dir/fig4_resilience.cpp.o.d"
  "fig4_resilience"
  "fig4_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
