# Empty compiler generated dependencies file for fig4_resilience.
# This may be replaced when dependencies are built.
