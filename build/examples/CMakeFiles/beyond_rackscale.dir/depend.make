# Empty dependencies file for beyond_rackscale.
# This may be replaced when dependencies are built.
