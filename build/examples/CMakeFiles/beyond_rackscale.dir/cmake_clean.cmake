file(REMOVE_RECURSE
  "CMakeFiles/beyond_rackscale.dir/beyond_rackscale.cpp.o"
  "CMakeFiles/beyond_rackscale.dir/beyond_rackscale.cpp.o.d"
  "beyond_rackscale"
  "beyond_rackscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_rackscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
