file(REMOVE_RECURSE
  "CMakeFiles/resilience_probe.dir/resilience_probe.cpp.o"
  "CMakeFiles/resilience_probe.dir/resilience_probe.cpp.o.d"
  "resilience_probe"
  "resilience_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
