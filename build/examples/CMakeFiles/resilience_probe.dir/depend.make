# Empty dependencies file for resilience_probe.
# This may be replaced when dependencies are built.
