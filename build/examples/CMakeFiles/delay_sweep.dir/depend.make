# Empty dependencies file for delay_sweep.
# This may be replaced when dependencies are built.
