file(REMOVE_RECURSE
  "CMakeFiles/delay_sweep.dir/delay_sweep.cpp.o"
  "CMakeFiles/delay_sweep.dir/delay_sweep.cpp.o.d"
  "delay_sweep"
  "delay_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
