# Empty compiler generated dependencies file for qos_allocation.
# This may be replaced when dependencies are built.
