file(REMOVE_RECURSE
  "CMakeFiles/qos_allocation.dir/qos_allocation.cpp.o"
  "CMakeFiles/qos_allocation.dir/qos_allocation.cpp.o.d"
  "qos_allocation"
  "qos_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
