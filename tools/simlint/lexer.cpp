#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace tfsim::simlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Scan a comment body for `simlint: allow(R3)` / `simlint: allow-file(R2)`.
void scan_suppressions(const std::string& body, int line,
                       std::vector<Suppression>& out) {
  const std::string tag = "simlint:";
  std::size_t pos = body.find(tag);
  while (pos != std::string::npos) {
    std::size_t p = pos + tag.size();
    while (p < body.size() && body[p] == ' ') ++p;
    bool whole_file = false;
    const std::string allow = "allow";
    if (body.compare(p, allow.size(), allow) == 0) {
      p += allow.size();
      const std::string filesfx = "-file";
      if (body.compare(p, filesfx.size(), filesfx) == 0) {
        whole_file = true;
        p += filesfx.size();
      }
      if (p < body.size() && body[p] == '(') {
        ++p;
        std::string rule;
        while (p < body.size() && body[p] != ')') rule += body[p++];
        if (p < body.size() && !rule.empty()) {
          out.push_back(Suppression{rule, line, whole_file});
        }
      }
    }
    pos = body.find(tag, pos + tag.size());
  }
}

/// Longest-match punctuators simlint cares to keep glued together.  Order
/// matters: longest first.
constexpr const char* kPuncts3[] = {"...", "<=>", "->*", "<<=", ">>="};
constexpr const char* kPuncts2[] = {"::", "->", "==", "!=", "<=", ">=",
                                    "&&", "||", "<<", ">>", "+=", "-=",
                                    "*=", "/=", "%=", "&=", "|=", "^=",
                                    "++", "--", "##"};

}  // namespace

LexedFile lex(const std::string& source) {
  LexedFile out;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;

  auto push = [&](TokKind k, std::string text, int at) {
    out.tokens.push_back(Token{k, std::move(text), at});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      std::size_t end = source.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_suppressions(source.substr(i + 2, end - i - 2), line,
                        out.suppressions);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      std::size_t end = source.find("*/", i + 2);
      const std::size_t stop = (end == std::string::npos) ? n : end;
      scan_suppressions(source.substr(i + 2, stop - i - 2), line,
                        out.suppressions);
      for (std::size_t j = i; j < stop; ++j) {
        if (source[j] == '\n') ++line;
      }
      i = (end == std::string::npos) ? n : end + 2;
      continue;
    }
    // Raw string literal: (u8|u|U|L)?R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"' &&
        (out.tokens.empty() || !ident_char(source[i - 1]))) {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && source[p] != '(' && source[p] != '\n') delim += source[p++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = source.find(close, p);
      if (end == std::string::npos) end = n;
      const int at = line;
      std::string body = source.substr(p + 1 <= n ? p + 1 : n,
                                       end > p + 1 ? end - p - 1 : 0);
      for (char bc : body) {
        if (bc == '\n') ++line;
      }
      push(TokKind::kString, std::move(body), at);
      i = (end == n) ? n : end + close.size();
      continue;
    }
    // String / char literal (possibly with encoding prefix already emitted
    // as an identifier token -- fine: rules never match literal prefixes).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int at = line;
      std::string body;
      ++i;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          body += source[i];
          body += source[i + 1];
          if (source[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (source[i] == '\n') ++line;  // unterminated; keep line count sane
        body += source[i++];
      }
      if (i < n) ++i;  // closing quote
      push(quote == '"' ? TokKind::kString : TokKind::kChar, std::move(body),
           at);
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t p = i;
      while (p < n && ident_char(source[p])) ++p;
      push(TokKind::kIdent, source.substr(i, p - i), line);
      i = p;
      continue;
    }
    // Number (pp-number: digits, ', ., exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) != 0)) {
      std::size_t p = i;
      while (p < n) {
        const char d = source[p];
        if (ident_char(d) || d == '\'' || d == '.') {
          ++p;
          continue;
        }
        if ((d == '+' || d == '-') && p > i &&
            (source[p - 1] == 'e' || source[p - 1] == 'E' ||
             source[p - 1] == 'p' || source[p - 1] == 'P')) {
          ++p;
          continue;
        }
        break;
      }
      push(TokKind::kNumber, source.substr(i, p - i), line);
      i = p;
      continue;
    }
    // Punctuators, longest match first.
    bool matched = false;
    if (i + 2 < n) {
      const std::string three = source.substr(i, 3);
      for (const char* p3 : kPuncts3) {
        if (three == p3) {
          push(TokKind::kPunct, three, line);
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (!matched && i + 1 < n) {
      const std::string two = source.substr(i, 2);
      for (const char* p2 : kPuncts2) {
        if (two == p2) {
          push(TokKind::kPunct, two, line);
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      push(TokKind::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  return out;
}

}  // namespace tfsim::simlint
