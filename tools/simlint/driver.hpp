// simlint driver: file collection from compile_commands.json, rule-scope
// policy, baseline load/diff, and report rendering.  Split from main() so
// the test suite can drive the whole pass in-process.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"

namespace tfsim::simlint {

struct DriverConfig {
  std::string root;              ///< repo root (absolute)
  std::string compile_commands;  ///< path to compile_commands.json ("" = none)
  std::vector<std::string> extra_files;  ///< explicit files (root-relative ok)
  std::string baseline_path;     ///< "" = no baseline (all findings fail)
};

struct RunResult {
  std::vector<Finding> findings;       ///< everything detected
  std::vector<Finding> new_findings;   ///< not covered by the baseline
  std::vector<std::string> stale_baseline;  ///< baseline keys no longer seen
  std::size_t files_scanned = 0;

  bool ok() const { return new_findings.empty(); }
};

/// Rule-scope policy by root-relative path.  The catalog guards *sim
/// paths*: src/ (every subsystem) plus tools/ for R2/R4 (report and digest
/// code lives there too).  bench/, examples/, and tests/ may legitimately
/// read the wall clock or iterate scratch containers, so they are out of
/// scope; tools/simlint itself and its testdata are excluded.
RuleScope scope_for(const std::string& rel_path);

/// Load `path` and lint it as `rel` with `scope`; appends findings.
/// Returns false (with a synthetic finding) when the file cannot be read.
bool lint_file(const std::string& path, const std::string& rel,
               const RuleScope& scope, const AnalysisContext& ctx,
               std::vector<Finding>& out);

/// Baseline format: one `key` per line (`<rule> <path> <symbol>`), '#'
/// comments and blank lines ignored.
std::set<std::string> load_baseline(const std::string& path);

/// Full pass: collect files, two collection sweeps (aliases then
/// declarations), analyze, diff against the baseline.
RunResult run(const DriverConfig& cfg);

/// Render a human-readable report (also the CI artifact).
std::string render_report(const RunResult& r);

}  // namespace tfsim::simlint
