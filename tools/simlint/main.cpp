// simlint entry point.
//
// Usage (the CMake `simlint` target and the CI job both run exactly this):
//   simlint --compile-commands=build/compile_commands.json --root=.
//           --baseline=tools/simlint/baseline.txt
//           [--report=build/simlint_report.txt] [--files f1.cpp f2.hpp ...]
//
// Exit status: 0 when no finding is outside the baseline, 1 when new
// findings exist, 2 on usage / I/O errors.  `--files` lints the given
// files (all rules enabled) in addition to -- or, without
// --compile-commands, instead of -- the tree; the negative tests drive the
// testdata fixtures through this path.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver.hpp"

namespace {

bool consume(const std::string& arg, const std::string& flag,
             std::string& out) {
  if (arg.rfind(flag, 0) != 0) return false;
  out = arg.substr(flag.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tfsim::simlint::DriverConfig cfg;
  cfg.root = ".";
  std::string report_path;
  bool files_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (consume(arg, "--compile-commands=", v)) {
      cfg.compile_commands = v;
      files_mode = false;
    } else if (consume(arg, "--root=", v)) {
      cfg.root = v;
    } else if (consume(arg, "--baseline=", v)) {
      cfg.baseline_path = v;
    } else if (consume(arg, "--report=", v)) {
      report_path = v;
    } else if (arg == "--files") {
      files_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: simlint [--compile-commands=PATH] [--root=DIR] "
                   "[--baseline=PATH] [--report=PATH] [--files f1 f2 ...]\n";
      return 0;
    } else if (files_mode && arg[0] != '-') {
      cfg.extra_files.push_back(arg);
    } else {
      std::cerr << "simlint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  if (cfg.compile_commands.empty() && cfg.extra_files.empty()) {
    std::cerr << "simlint: need --compile-commands=PATH or --files ...\n";
    return 2;
  }

  tfsim::simlint::RunResult result;
  try {
    result = tfsim::simlint::run(cfg);
  } catch (const std::exception& e) {
    std::cerr << "simlint: fatal: " << e.what() << "\n";
    return 2;
  }

  const std::string report = tfsim::simlint::render_report(result);
  std::cout << report;
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::cerr << "simlint: cannot write report to " << report_path << "\n";
      return 2;
    }
    out << report;
  }
  return result.ok() ? 0 : 1;
}
