#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <optional>
#include <sstream>

namespace tfsim::simlint {

namespace {

using Tokens = std::vector<Token>;

bool ident_is(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

bool in_set(const std::string& s, const std::set<std::string>& set) {
  return set.count(s) != 0;
}

const std::set<std::string> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string> kOrderedKeyedContainers = {"map", "set",
                                                       "multimap", "multiset"};

/// Identifiers that are wall-clock / ambient-randomness sources wherever
/// they appear (R1).
const std::set<std::string> kBannedIdents = {
    "random_device",       "mt19937",
    "mt19937_64",          "minstd_rand",
    "minstd_rand0",        "default_random_engine",
    "ranlux24",            "ranlux48",
    "knuth_b",             "uniform_int_distribution",
    "uniform_real_distribution", "normal_distribution",
    "lognormal_distribution",    "exponential_distribution",
    "poisson_distribution",      "bernoulli_distribution",
    "discrete_distribution",     "steady_clock",
    "system_clock",        "high_resolution_clock",
    "gettimeofday",        "clock_gettime",
    "timespec_get",        "drand48",
    "lrand48",             "srand48",
    "getrandom"};

/// Free functions banned when used as a call (R1); guarded by call-context
/// so `sim::Time time = ...` declarations and `x.clock()` members pass.
const std::set<std::string> kBannedCalls = {"time", "clock", "rand", "srand",
                                            "random"};

/// Headers whose inclusion marks a sim-path file as wall-clock/RNG tainted.
const std::set<std::string> kBannedHeaders = {"chrono", "ctime", "time.h",
                                              "sys/time.h", "random"};

/// Keywords that legitimately precede a call expression (so `return
/// time(nullptr)` is still flagged while `Time time(0)` is not).
const std::set<std::string> kExprKeywords = {
    "return", "case", "else", "do", "while", "if", "for", "switch",
    "throw", "co_return", "co_await", "co_yield"};

/// Skip a balanced template argument list starting at tokens[i] == "<".
/// Returns the index one past the closing ">", or nullopt when the "<" is
/// a comparison (hits ; { } or EOF first).
std::optional<std::size_t> skip_template_args(const Tokens& t, std::size_t i) {
  int depth = 0;
  const std::size_t limit = std::min(t.size(), i + 512);
  for (std::size_t j = i; j < limit; ++j) {
    const std::string& s = t[j].text;
    if (t[j].kind != TokKind::kPunct) continue;
    if (s == "<") {
      ++depth;
    } else if (s == ">") {
      if (--depth == 0) return j + 1;
    } else if (s == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (s == ";" || s == "{" || s == "}") {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Join a token span for messages.
std::string join(const Tokens& t, std::size_t b, std::size_t e,
                 std::size_t cap = 10) {
  std::string out;
  for (std::size_t j = b; j < e && j - b < cap; ++j) {
    if (!out.empty() && t[j].kind != TokKind::kPunct &&
        t[j - 1].kind != TokKind::kPunct) {
      out += ' ';
    }
    out += t[j].text;
  }
  if (e - b > cap) out += "...";
  return out;
}

// ---------------------------------------------------------------------------
// Structural scanner: brace-scope walk shared by R3 (mutable globals /
// statics) and R5 (domain annotation discipline).
// ---------------------------------------------------------------------------

struct ClassInfo {
  std::string name;
  int line = 0;
  bool is_struct = false;   // default access
  bool annotated = false;   // saw TFSIM_DOMAIN_OWNED in the body
  struct Member {
    std::string name;
    int line = 0;
  };
  std::vector<Member> public_mutable_members;
  std::vector<Member> mutable_statics;  // class-scope `static` data
};

struct NsVar {
  std::string name;
  int line = 0;
  bool is_extern = false;
};

struct Structure {
  std::vector<NsVar> ns_vars;            // mutable namespace-scope variables
  std::vector<ClassInfo> classes;        // every class/struct with a body
  std::vector<ClassInfo::Member> local_statics;  // mutable function statics
};

enum class ScopeKind { kNamespace, kClass, kOther, kSkip };

struct Scope {
  ScopeKind kind = ScopeKind::kOther;
  std::size_t class_index = 0;  // valid when kind == kClass
  bool access_public = false;   // current access section (kClass)
};

/// True when the statement's declared entity is const: constexpr/constinit
/// always; `const` only when no `*` follows the last `const` (so
/// `const char* p` is mutable, `char* const p` is not).
bool statement_is_const(const Tokens& st) {
  std::ptrdiff_t last_const = -1, last_star = -1;
  for (std::size_t j = 0; j < st.size(); ++j) {
    const std::string& s = st[j].text;
    if (s == "constexpr" || s == "constinit") return true;
    if (s == "const") last_const = static_cast<std::ptrdiff_t>(j);
    if (s == "*") last_star = static_cast<std::ptrdiff_t>(j);
  }
  if (last_const < 0) return false;
  return last_star < last_const;
}

/// Declared name of a variable statement: the last identifier before the
/// first top-level `=`, `{`, or the end.
std::string declared_name(const Tokens& st) {
  int paren = 0;
  std::string name;
  for (std::size_t j = 0; j < st.size(); ++j) {
    const Token& tk = st[j];
    if (tk.kind == TokKind::kPunct) {
      if (tk.text == "(" || tk.text == "[") ++paren;
      if (tk.text == ")" || tk.text == "]") --paren;
      if (paren == 0 && (tk.text == "=" || tk.text == "{")) break;
      continue;
    }
    if (paren == 0 && tk.kind == TokKind::kIdent) name = tk.text;
  }
  return name;
}

/// True when the statement declares/defines a function: a top-level `(`
/// appears before any top-level `=`.
bool statement_is_function(const Tokens& st) {
  for (const Token& tk : st) {
    if (tk.kind != TokKind::kPunct) continue;
    if (tk.text == "(") return true;
    if (tk.text == "=") return false;
  }
  return false;
}

bool statement_starts_with_any(const Tokens& st,
                               const std::set<std::string>& starts) {
  if (st.empty()) return false;
  return in_set(st.front().text, starts);
}

const std::set<std::string> kNsSkipStarts = {
    "using", "typedef", "friend", "template", "static_assert", "namespace",
    "asm", "concept", "requires", "public", "protected", "private"};

const std::set<std::string> kClassKeywords = {"class", "struct", "union"};

Structure scan_structure(const Tokens& t) {
  Structure out;
  std::vector<Scope> scopes;  // empty == translation-unit (namespace) scope
  Tokens st;                  // current statement accumulator

  auto current_kind = [&]() {
    return scopes.empty() ? ScopeKind::kNamespace : scopes.back().kind;
  };

  auto eval_namespace_statement = [&]() {
    if (st.empty()) return;
    if (statement_starts_with_any(st, kNsSkipStarts)) {
      st.clear();
      return;
    }
    const bool is_extern = st.front().text == "extern";
    // `extern "C"` blocks and plain extern function decls pass below.
    for (const Token& tk : st) {
      if (tk.text == "operator") {
        st.clear();
        return;
      }
    }
    // Pure type declarations (`class X;`) and enums.
    if (statement_starts_with_any(st, kClassKeywords) ||
        st.front().text == "enum") {
      st.clear();
      return;
    }
    if (statement_is_function(st)) {
      st.clear();
      return;
    }
    if (!statement_is_const(st)) {
      const std::string name = declared_name(st);
      if (!name.empty()) {
        out.ns_vars.push_back(NsVar{name, st.front().line, is_extern});
      }
    }
    st.clear();
  };

  auto eval_class_statement = [&](Scope& sc) {
    if (st.empty()) return;
    ClassInfo& ci = out.classes[sc.class_index];
    if (statement_starts_with_any(st, kNsSkipStarts) ||
        statement_starts_with_any(st, kClassKeywords) ||
        st.front().text == "enum") {
      st.clear();
      return;
    }
    for (const Token& tk : st) {
      if (tk.text == "operator") {
        st.clear();
        return;
      }
    }
    if (st.front().text == "static") {
      if (!statement_is_function(st) && !statement_is_const(st)) {
        const std::string name = declared_name(st);
        if (!name.empty()) {
          ci.mutable_statics.push_back(ClassInfo::Member{name, st.front().line});
        }
      }
      st.clear();
      return;
    }
    if (sc.access_public && !statement_is_function(st) &&
        !statement_is_const(st) && st.front().text != "mutable") {
      const std::string name = declared_name(st);
      if (!name.empty()) {
        ci.public_mutable_members.push_back(
            ClassInfo::Member{name, st.front().line});
      }
    } else if (sc.access_public && st.front().text == "mutable") {
      const std::string name = declared_name(st);
      if (!name.empty()) {
        ci.public_mutable_members.push_back(
            ClassInfo::Member{name, st.front().line});
      }
    }
    st.clear();
  };

  // Function-local `static` harvesting needs statement capture inside
  // kOther scopes; we start one only on the `static` keyword.
  bool capturing_local_static = false;
  Tokens local_static_st;

  std::size_t i = 0;
  const std::size_t n = t.size();
  while (i < n) {
    const Token& tk = t[i];

    // Preprocessor directive: skip to end of (continued) line.
    if (tk.kind == TokKind::kPunct && tk.text == "#" &&
        (i == 0 || t[i - 1].line != tk.line || t[i - 1].text == "#")) {
      int line = tk.line;
      std::size_t j = i + 1;
      while (j < n) {
        if (t[j].line != line) {
          if (t[j - 1].text == "\\") {
            line = t[j].line;  // continuation
          } else {
            break;
          }
        }
        ++j;
      }
      i = j;
      continue;
    }

    if (capturing_local_static) {
      if (tk.text == ";") {
        if (!statement_is_function(local_static_st) &&
            !statement_is_const(local_static_st)) {
          const std::string name = declared_name(local_static_st);
          if (!name.empty()) {
            out.local_statics.push_back(
                ClassInfo::Member{name, local_static_st.front().line});
          }
        }
        capturing_local_static = false;
        local_static_st.clear();
      } else if (tk.text == "{" || tk.text == "}") {
        // Brace init or end-of-scope mid capture: abandon gracefully.
        capturing_local_static = false;
        local_static_st.clear();
        continue;  // reprocess the brace below
      } else {
        local_static_st.push_back(tk);
      }
      ++i;
      continue;
    }

    if (tk.kind == TokKind::kPunct && tk.text == "{") {
      // Classify the scope this brace opens from the pending statement.
      ScopeKind kind = ScopeKind::kOther;
      bool from_class = false;
      bool is_struct = false;
      std::string cls_name;
      int cls_line = tk.line;
      if (!st.empty()) {
        if (st.front().text == "namespace" ||
            (st.size() >= 2 && st[0].text == "inline" &&
             st[1].text == "namespace") ||
            (st.size() >= 2 && st[0].text == "extern" &&
             st[1].kind == TokKind::kString)) {
          kind = ScopeKind::kNamespace;
        } else if (st.front().text == "enum") {
          kind = ScopeKind::kSkip;
        } else {
          // class/struct/union at statement level (template<...> allowed
          // in front), provided this isn't a function signature.
          std::size_t k = 0;
          if (st[0].text == "template") {
            // skip template<...> header
            std::size_t depth = 0;
            while (k < st.size()) {
              if (st[k].text == "<") ++depth;
              if (st[k].text == ">" && --depth == 0) {
                ++k;
                break;
              }
              if (st[k].text == ">>" && (depth -= 2) == 0) {
                ++k;
                break;
              }
              ++k;
            }
          }
          if (k < st.size() && in_set(st[k].text, kClassKeywords) &&
              st.back().kind != TokKind::kPunct) {
            // `class X {` / `class X final {` / `struct X : Base {` all end
            // with an identifier; function sigs end with `)`.
            kind = ScopeKind::kClass;
            from_class = true;
            is_struct = st[k].text != "class";
            for (std::size_t m = k + 1; m < st.size(); ++m) {
              if (st[m].kind == TokKind::kIdent && st[m].text != "final" &&
                  st[m].text != "alignas") {
                cls_name = st[m].text;
                cls_line = st[m].line;
                break;
              }
            }
          } else if (kind == ScopeKind::kOther &&
                     current_kind() != ScopeKind::kOther) {
            // Distinguish an initializer brace (part of a declaration
            // statement: `X x = {...};`, `X x = []{...}();`, `X x{0};`)
            // from a function/lambda body scope.  A top-level `=` in the
            // pending statement, or a declarator name directly before the
            // brace with no parameter list anywhere, marks an initializer:
            // inline-skip it so the statement accumulates to its `;`.
            bool has_top_eq = false, has_top_paren = false;
            int depth = 0;
            for (const Token& b : st) {
              if (b.kind != TokKind::kPunct) continue;
              if (b.text == "(" || b.text == "[") {
                if (depth++ == 0) has_top_paren = true;
              } else if (b.text == ")" || b.text == "]") {
                --depth;
              } else if (b.text == "=" && depth == 0) {
                has_top_eq = true;
              }
            }
            if (has_top_eq || (st.back().kind != TokKind::kPunct &&
                               !has_top_paren)) {
              std::size_t bdepth = 1;
              std::size_t j = i + 1;
              while (j < n && bdepth > 0) {
                if (t[j].text == "{") ++bdepth;
                if (t[j].text == "}") --bdepth;
                ++j;
              }
              st.push_back(Token{TokKind::kPunct, "{", tk.line});
              st.push_back(Token{TokKind::kPunct, "}", tk.line});
              i = j;
              continue;
            }
          }
        }
      }
      Scope sc;
      sc.kind = kind;
      if (from_class) {
        ClassInfo ci;
        ci.name = cls_name;
        ci.line = cls_line;
        ci.is_struct = is_struct;
        out.classes.push_back(ci);
        sc.class_index = out.classes.size() - 1;
        sc.access_public = is_struct;
      }
      scopes.push_back(sc);
      st.clear();
      ++i;
      continue;
    }

    if (tk.kind == TokKind::kPunct && tk.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
      st.clear();
      ++i;
      continue;
    }

    const ScopeKind kind = current_kind();
    if (kind == ScopeKind::kNamespace) {
      st.push_back(tk);
      if (tk.text == ";") {
        st.pop_back();
        eval_namespace_statement();
      }
    } else if (kind == ScopeKind::kClass) {
      Scope& sc = scopes.back();
      ClassInfo& ci = out.classes[sc.class_index];
      if (ident_is(tk, "TFSIM_DOMAIN_OWNED")) {
        ci.annotated = true;
        sc.access_public = false;  // the macro expansion ends `private:`
        st.clear();
        ++i;
        continue;
      }
      if (tk.kind == TokKind::kIdent &&
          (tk.text == "public" || tk.text == "protected" ||
           tk.text == "private") &&
          i + 1 < n && t[i + 1].text == ":") {
        sc.access_public = tk.text == "public";
        st.clear();
        i += 2;
        continue;
      }
      st.push_back(tk);
      if (tk.text == ";") {
        st.pop_back();
        eval_class_statement(sc);
      }
    } else {
      // Inside function/block scope: only `static` locals matter.
      if (kind == ScopeKind::kOther && ident_is(tk, "static")) {
        capturing_local_static = true;
        local_static_st.clear();
        local_static_st.push_back(tk);
      }
    }
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppression filter
// ---------------------------------------------------------------------------

bool suppressed(const Finding& f, const std::vector<Suppression>& sup) {
  for (const Suppression& s : sup) {
    if (s.rule != "*" && s.rule != f.rule) continue;
    if (s.whole_file) return true;
    if (s.line == f.line || s.line == f.line - 1) return true;
  }
  return false;
}

}  // namespace

std::string Finding::to_string() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

AnalysisContext default_context() {
  AnalysisContext ctx;
  // Runtime counterpart: the TFSIM_DOMAIN_OWNED annotations in src/ (see
  // sim/domain.hpp and DESIGN.md section 12).  Keep the two lists in sync.
  ctx.domain_required = {"Dram", "CacheHierarchy", "Node", "DisaggNic",
                         "PageMigrator"};
  return ctx;
}

void collect(const LexedFile& lexed, AnalysisContext& ctx) {
  const Tokens& t = lexed.tokens;
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const bool direct = in_set(t[i].text, kUnorderedContainers);
    const bool alias = in_set(t[i].text, ctx.unordered_types);
    if (!direct && !alias) continue;

    // `using X = std::unordered_map<...>;` records the alias X.
    if (direct && i >= 2 && t[i - 1].text == "::" && i >= 3) {
      // fallthrough; the `using` check below looks further back
    }
    if (direct) {
      for (std::size_t back = 1; back <= 6 && back <= i; ++back) {
        if (t[i - back].text == "using" && i - back + 1 < n &&
            t[i - back + 1].kind == TokKind::kIdent) {
          ctx.unordered_types.insert(t[i - back + 1].text);
          break;
        }
        if (t[i - back].text == ";" || t[i - back].text == "{") break;
      }
    }

    // Skip template args (if any), then read declarator name(s).
    std::size_t j = i + 1;
    if (j < n && t[j].text == "<") {
      const auto past = skip_template_args(t, j);
      if (!past.has_value()) continue;
      j = *past;
    } else if (direct) {
      continue;  // bare mention (e.g. in a comment-stripped string); no decl
    }
    for (;;) {
      while (j < n && (t[j].text == "*" || t[j].text == "&" ||
                       t[j].text == "const")) {
        ++j;
      }
      if (j + 1 < n && t[j].kind == TokKind::kIdent &&
          (t[j + 1].text == ";" || t[j + 1].text == "=" ||
           t[j + 1].text == "{" || t[j + 1].text == "," ||
           t[j + 1].text == ")" || t[j + 1].text == ":")) {
        ctx.unordered_vars.insert(t[j].text);
        if (t[j + 1].text == ",") {
          j += 2;
          continue;
        }
      }
      break;
    }
  }
}

std::vector<Finding> analyze(const std::string& file, const LexedFile& lexed,
                             const RuleScope& scope,
                             const AnalysisContext& ctx) {
  std::vector<Finding> findings;
  const Tokens& t = lexed.tokens;
  const std::size_t n = t.size();

  auto add = [&](const char* rule, int line, std::string symbol,
                 std::string message) {
    Finding f{rule, file, line, std::move(symbol), std::move(message)};
    if (!suppressed(f, lexed.suppressions)) findings.push_back(std::move(f));
  };

  // ---- R1: wall-clock time and ambient randomness -----------------------
  if (scope.r1) {
    for (std::size_t i = 0; i < n; ++i) {
      const Token& tk = t[i];
      // Banned #include <hdr>.
      if (tk.text == "#" && i + 2 < n && ident_is(t[i + 1], "include") &&
          t[i + 2].text == "<") {
        std::string hdr;
        for (std::size_t j = i + 3; j < n && t[j].text != ">"; ++j) {
          hdr += t[j].text;
        }
        if (in_set(hdr, kBannedHeaders)) {
          add("R1", tk.line, "include<" + hdr + ">",
              "sim paths must not include <" + hdr +
                  ">: wall-clock time and unseeded randomness are " +
                  "forbidden (use sim::Rng / sim::Engine time)");
        }
        continue;
      }
      if (tk.kind != TokKind::kIdent) continue;
      if (tk.text == "chrono" && i >= 1 && t[i - 1].text == "::") {
        add("R1", tk.line, "std::chrono",
            "std::chrono in a sim path: simulated time must come from "
            "sim::Engine::now(), never the wall clock");
        continue;
      }
      if (in_set(tk.text, kBannedIdents)) {
        add("R1", tk.line, tk.text,
            "'" + tk.text +
                "' is a wall-clock/ambient-randomness source; sim paths "
                "may only use the seeded sim::Rng");
        continue;
      }
      if (in_set(tk.text, kBannedCalls) && i + 1 < n &&
          t[i + 1].text == "(") {
        bool call_context = true;
        if (i > 0) {
          const Token& prev = t[i - 1];
          if (prev.kind == TokKind::kPunct &&
              (prev.text == "." || prev.text == "->" || prev.text == "::")) {
            call_context = false;  // member / qualified name
          } else if (prev.kind == TokKind::kIdent &&
                     !in_set(prev.text, kExprKeywords)) {
            call_context = false;  // `Time time(0)` style declaration
          }
        }
        if (call_context) {
          add("R1", tk.line, tk.text + "()",
              "call to '" + tk.text +
                  "()' in a sim path: wall-clock/libc randomness breaks "
                  "reproducibility (use sim::Engine / sim::Rng)");
        }
      }
    }
  }

  // ---- R2: iteration over unordered containers --------------------------
  if (scope.r2) {
    auto is_unordered_var = [&](const std::string& name) {
      return in_set(name, ctx.unordered_vars);
    };
    for (std::size_t i = 0; i < n; ++i) {
      // Range-for: `for ( ... : expr )` with a top-level `:`.
      if (ident_is(t[i], "for") && i + 1 < n && t[i + 1].text == "(") {
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < n; ++j) {
          const std::string& s = t[j].text;
          if (t[j].kind != TokKind::kPunct) continue;
          if (s == "(" || s == "[" || s == "{") ++depth;
          if (s == ")" || s == "]" || s == "}") {
            if (--depth == 0 && s == ")") {
              close = j;
              break;
            }
          }
          if (s == ":" && depth == 1 && colon == 0) colon = j;
        }
        if (colon != 0 && close != 0) {
          std::string base;
          int base_line = t[colon].line;
          for (std::size_t j = colon + 1; j < close; ++j) {
            if (t[j].kind == TokKind::kIdent) {
              base = t[j].text;
              base_line = t[j].line;
            }
          }
          if (!base.empty() && is_unordered_var(base)) {
            add("R2", base_line, "iter:" + base,
                "range-for over unordered container '" + base +
                    "': iteration order is hash-seed dependent and must "
                    "not feed event ordering, digests, or serialized "
                    "output (use std::map or sort first)");
          }
        }
        continue;
      }
      // Explicit iterators: `x.begin()` / `x.cbegin()` / `x.rbegin()`.
      if (t[i].kind == TokKind::kIdent && i + 3 < n &&
          (t[i + 1].text == "." || t[i + 1].text == "->") &&
          (ident_is(t[i + 2], "begin") || ident_is(t[i + 2], "cbegin") ||
           ident_is(t[i + 2], "rbegin")) &&
          t[i + 3].text == "(" && is_unordered_var(t[i].text)) {
        add("R2", t[i].line, "iter:" + t[i].text,
            "iterator walk over unordered container '" + t[i].text +
                "': iteration order is hash-seed dependent (use std::map "
                "or sort first)");
      }
    }
  }

  // ---- R4: pointer keys / pointer-to-integer casts -----------------------
  if (scope.r4) {
    for (std::size_t i = 0; i < n; ++i) {
      const Token& tk = t[i];
      if (tk.kind != TokKind::kIdent) continue;
      const bool keyed = in_set(tk.text, kOrderedKeyedContainers) ||
                         in_set(tk.text, kUnorderedContainers) ||
                         tk.text == "hash";
      if (keyed && i + 1 < n && t[i + 1].text == "<") {
        // Inspect the first top-level template argument.
        const auto past = skip_template_args(t, i + 1);
        if (past.has_value()) {
          int depth = 0;
          std::size_t arg_end = *past - 1;
          for (std::size_t j = i + 1; j < *past; ++j) {
            const std::string& s = t[j].text;
            if (s == "<") ++depth;
            if (s == ">" || s == ">>") --depth;
            if (s == "," && depth == 1) {
              arg_end = j;
              break;
            }
          }
          // Last non-const token of arg1 being `*` means pointer key.
          std::size_t last = arg_end;
          while (last > i + 2 && t[last - 1].text == "const") --last;
          if (last > i + 2 && t[last - 1].text == "*") {
            add("R4", tk.line,
                tk.text + "<" + join(t, i + 2, arg_end) + ">",
                "pointer-valued key in '" + tk.text +
                    "': pointer values are allocation-order/ASLR dependent "
                    "and must not feed hashing or ordering (key by id)");
          }
        }
      }
      if ((tk.text == "reinterpret_cast" || tk.text == "bit_cast") &&
          i + 1 < n && t[i + 1].text == "<") {
        const auto past = skip_template_args(t, i + 1);
        if (past.has_value()) {
          for (std::size_t j = i + 2; j < *past; ++j) {
            if (ident_is(t[j], "uintptr_t") || ident_is(t[j], "intptr_t")) {
              add("R4", tk.line, tk.text + "<uintptr_t>",
                  "pointer-to-integer cast: the numeric value of a pointer "
                  "is ASLR-dependent and must not reach hashes, ordering, "
                  "or serialized output");
              break;
            }
          }
        }
      }
      // C-style `(uintptr_t)p`.
      if ((tk.text == "uintptr_t" || tk.text == "intptr_t") && i >= 1 &&
          t[i - 1].text == "(" && i + 1 < n && t[i + 1].text == ")") {
        add("R4", tk.line, "(uintptr_t)cast",
            "pointer-to-integer cast: the numeric value of a pointer is "
            "ASLR-dependent and must not reach hashes or ordering");
      }
    }
  }

  // ---- R3 + R5: structural pass ------------------------------------------
  if (scope.r3 || scope.r5) {
    const Structure s = scan_structure(t);
    if (scope.r3) {
      for (const NsVar& v : s.ns_vars) {
        add("R3", v.line, "global:" + v.name,
            std::string(v.is_extern ? "extern declaration of" : "") +
                (v.is_extern ? " " : "") + "mutable namespace-scope "
                "variable '" + v.name +
                "': hidden shared state breaks partition isolation and "
                "deterministic replay (make it constexpr, or own it in an "
                "object wired through the call graph)");
      }
      for (const auto& m : s.local_statics) {
        add("R3", m.line, "static-local:" + m.name,
            "mutable function-local static '" + m.name +
                "': per-process memoization is shared across partitions "
                "and sweep threads (hoist into owned state)");
      }
      for (const ClassInfo& ci : s.classes) {
        for (const auto& m : ci.mutable_statics) {
          add("R3", m.line, "static-member:" + ci.name + "::" + m.name,
              "mutable static data member '" + ci.name + "::" + m.name +
                  "': class statics are process-global sim state");
        }
      }
    }
    if (scope.r5) {
      for (const ClassInfo& ci : s.classes) {
        if (in_set(ci.name, ctx.domain_required) && !ci.annotated) {
          add("R5", ci.line, "unannotated:" + ci.name,
              "class '" + ci.name +
                  "' holds per-node sim state and must carry "
                  "TFSIM_DOMAIN_OWNED (see sim/domain.hpp) so the runtime "
                  "ownership checker can audit cross-domain mutation");
        }
        if (ci.annotated) {
          for (const auto& m : ci.public_mutable_members) {
            add("R5", m.line, "public-member:" + ci.name + "::" + m.name,
                "public mutable data member '" + ci.name + "::" + m.name +
                    "' on a TFSIM_DOMAIN_OWNED class: state reachable "
                    "without a method bypasses the DomainChecker (make it "
                    "private behind an accessor)");
          }
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.symbol < b.symbol;
            });
  return findings;
}

}  // namespace tfsim::simlint
