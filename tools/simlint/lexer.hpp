// Lightweight C++ lexer for the simlint simulator-safety pass.
//
// simlint does not need a full frontend: every rule in its catalog (see
// rules.hpp) is expressible over a comment-stripped token stream plus a
// small amount of brace-scope structure.  The lexer therefore produces a
// flat vector of tokens tagged with line numbers, and separately records
// every `// simlint: allow(Rn): reason` suppression comment so the rule
// engine can honour inline waivers without re-scanning raw text.
//
// Handled faithfully: line/block comments, string and character literals
// (escapes), raw string literals (R"delim(...)delim"), preprocessor
// directives (tokenized like ordinary code, `#` included, so rules can
// match `# include < chrono >` sequences), digit separators, and
// multi-character punctuators that matter for scope tracking (`::`, `->`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tfsim::simlint {

enum class TokKind {
  kIdent,   ///< identifiers and keywords (rules match by spelling)
  kNumber,  ///< numeric literal (pp-number)
  kString,  ///< string literal, text excludes quotes
  kChar,    ///< character literal
  kPunct,   ///< punctuator; multi-char for :: -> ...
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;

  bool is(const char* s) const { return text == s; }
};

/// One inline waiver: `// simlint: allow(R3): reason`.  `rule` is the
/// parenthesized tag ("R1".."R5" or "*" for all rules); the waiver covers
/// findings on its own line and on the line directly below (so it can sit
/// above the flagged statement).  `allow-file(Rn)` sets `whole_file`.
struct Suppression {
  std::string rule;
  int line = 1;
  bool whole_file = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

/// Tokenize `source`.  Never throws on malformed input: an unterminated
/// literal or comment simply ends at EOF (lint must not die on the code it
/// audits).
LexedFile lex(const std::string& source);

}  // namespace tfsim::simlint
