// simlint rule catalog: simulator-safety invariants checked at the source
// level, clearing the runway for PDES (ROADMAP item 2).  A partitioned
// engine is only correct if no sim-path code depends on wall-clock time,
// ambient RNG, pointer values, unordered-container iteration order, or
// state shared across node partitions -- the properties the
// determinism_check scenarios can only probe end-to-end.  simlint makes
// them build-time errors:
//
//   R1  no wall-clock / ambient randomness in sim paths: std::chrono,
//       <ctime>/<random> includes, time()/clock()/rand()/srand(),
//       std::random_device, std:: engines and distributions.  Only the
//       seeded sim::Rng / SplitMix64 are legal randomness sources.
//   R2  no iteration over std::unordered_{map,set,multimap,multiset}
//       (range-for or .begin()): iteration order is hash-seed dependent
//       and must never feed event ordering, metrics digests, or
//       serialized output.  Use std::map or sort before iterating.
//   R3  no mutable namespace-scope globals, class statics, or
//       function-local statics: hidden shared state breaks partition
//       isolation and replay.  constexpr/constinit/const are fine.
//   R4  no pointer-valued keys in maps/sets/hashes and no
//       pointer-to-integer casts (reinterpret_cast/bit_cast to
//       [u]intptr_t): pointer values are ASLR-dependent and must never
//       feed hashing or ordering.
//   R5  domain-ownership discipline: the classes holding per-node sim
//       state (the configured "owned" set) must carry the
//       TFSIM_DOMAIN_OWNED annotation (sim/domain.hpp), and annotated
//       classes must not expose public mutable data members -- all
//       mutation has to flow through methods the runtime DomainChecker
//       can audit.
//
// Waivers: `// simlint: allow(R3): reason` on the finding's line or the
// line above; `// simlint: allow-file(R2): reason` anywhere in the file.
// Pre-existing findings live in tools/simlint/baseline.txt (burned down
// explicitly); anything new fails the build.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace tfsim::simlint {

struct Finding {
  std::string rule;    ///< "R1".."R5"
  std::string file;    ///< root-relative path
  int line = 0;
  std::string symbol;  ///< stable identifier (survives line drift)
  std::string message;

  /// Baseline key: deliberately line-free so refactors that move a
  /// baselined violation do not churn the baseline.
  std::string key() const { return rule + " " + file + " " + symbol; }
  std::string to_string() const;
};

/// Which rules apply to a file (the driver derives this from its path).
struct RuleScope {
  bool r1 = false, r2 = false, r3 = false, r4 = false, r5 = false;
  bool any() const { return r1 || r2 || r3 || r4 || r5; }
};

/// Cross-file knowledge assembled in a first pass over every file.
struct AnalysisContext {
  /// Variables (incl. members) declared with an unordered container type
  /// anywhere in the tree: a header may declare what a .cpp iterates.
  std::set<std::string> unordered_vars;
  /// Type aliases that resolve to unordered containers.
  std::set<std::string> unordered_types;
  /// Classes that must carry TFSIM_DOMAIN_OWNED (R5).
  std::set<std::string> domain_required;
};

/// Default R5 ownership set: the classes holding per-node mutable sim
/// state, kept in sync with the runtime annotations in src/.
AnalysisContext default_context();

/// Pass 1: harvest declarations from one file into `ctx`.
void collect(const LexedFile& lexed, AnalysisContext& ctx);

/// Pass 2: run every rule in `scope` over one file.  Suppressions recorded
/// by the lexer are already honoured; returned findings are real.
std::vector<Finding> analyze(const std::string& file, const LexedFile& lexed,
                             const RuleScope& scope,
                             const AnalysisContext& ctx);

}  // namespace tfsim::simlint
