// simlint negative fixture: R4 (pointer keys / pointer-to-integer casts).
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Module {
  int id = 0;
};

std::uint64_t order_by_pointer(const std::vector<Module*>& mods) {
  std::map<Module*, int> rank;              // flagged: pointer key
  std::set<const Module*> seen;             // flagged: pointer key
  std::unordered_map<Module*, int> counts;  // flagged: pointer key
  std::uint64_t digest = 0;
  for (Module* m : mods) {
    rank[m] = m->id;
    seen.insert(m);
    counts[m] = m->id;
    digest ^= reinterpret_cast<std::uintptr_t>(m);  // flagged: ptr->int
  }
  std::map<int, Module*> by_id;  // NOT flagged: pointer value, integer key
  (void)by_id;
  return digest + rank.size() + seen.size() + counts.size();
}

}  // namespace fixture
