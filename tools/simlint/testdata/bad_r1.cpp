// simlint negative fixture: R1 (wall-clock time / ambient randomness).
// Every construct below must be flagged; simlint_test.cpp asserts it.
#include <chrono>

#include <ctime>

namespace fixture {

long wall_now() {
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return time(nullptr) + clock();
}

int ambient_random() {
  std::random_device rd;
  srand(42);
  return rand() + static_cast<int>(rd());
}

// Call-context guards: these must NOT be flagged.
struct Clocked {
  long time_ = 0;
  long time_accessor() const { return time_; }
};
long not_a_call(Clocked& c) {
  long time = c.time_accessor();  // declaration, not a call
  return time;
}

}  // namespace fixture
