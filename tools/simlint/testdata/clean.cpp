// simlint positive fixture: idiomatic sim-path code that must produce zero
// findings, including an inline waiver.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ULL;

struct Stats {
  std::map<std::string, std::uint64_t> by_kind;  // ordered: safe to iterate
  std::unordered_map<std::uint64_t, std::uint64_t> index;  // lookups only

  std::uint64_t digest() const {
    std::uint64_t d = kSeed;
    for (const auto& [k, v] : by_kind) d ^= v + k.size();
    return d + index.count(1);
  }
};

// simlint: allow(R3): deliberate waiver exercised by the test suite
std::uint64_t g_waived = 1;

std::uint64_t touch() { return ++g_waived; }

}  // namespace fixture
