// simlint negative fixture: R2 (iteration over unordered containers).
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

using Digest = std::unordered_map<std::string, std::uint64_t>;

struct Report {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  std::unordered_set<std::string> tags;
  Digest by_name;  // declared through the alias
  std::map<std::uint64_t, std::uint64_t> ordered;

  std::uint64_t serialize() const {
    std::uint64_t digest = 0;
    for (const auto& [k, v] : counts) {  // flagged: range-for
      digest ^= k * v;
    }
    for (auto it = tags.begin(); it != tags.end(); ++it) {  // flagged: .begin
      digest ^= it->size();
    }
    for (const auto& [name, v] : by_name) {  // flagged: via alias
      digest += v;
    }
    for (const auto& [k, v] : ordered) {  // NOT flagged: std::map is ordered
      digest += k + v;
    }
    // Keyed lookup is fine; only iteration is order-dependent.
    return digest + counts.count(7);
  }
};

}  // namespace fixture
