// simlint negative fixture: R5 (domain-ownership annotation discipline).
//
// `Dram` is in the configured owned set (it holds per-node sim state), so
// defining it without TFSIM_DOMAIN_OWNED must be flagged.  The annotated
// class exposing a public mutable member must be flagged too.
#include <cstdint>

#define TFSIM_DOMAIN_OWNED /* stand-in for the sim/domain.hpp macro */

namespace fixture {

class Dram {  // flagged: owned class without TFSIM_DOMAIN_OWNED
 public:
  std::uint64_t served() const { return served_; }

 private:
  std::uint64_t served_ = 0;
};

class Exposed {
  TFSIM_DOMAIN_OWNED

 public:
  std::uint64_t hits = 0;  // flagged: public mutable member, annotated class
  const std::uint64_t capacity = 64;  // NOT flagged: const

 private:
  std::uint64_t misses_ = 0;  // NOT flagged: private
};

class Clean {
  TFSIM_DOMAIN_OWNED

 public:
  std::uint64_t hits() const { return hits_; }  // NOT flagged: accessor

 private:
  std::uint64_t hits_ = 0;
};

}  // namespace fixture
