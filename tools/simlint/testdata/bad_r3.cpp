// simlint negative fixture: R3 (mutable globals / statics).
#include <cstdint>

namespace fixture {

std::uint64_t g_counter = 0;  // flagged: mutable namespace-scope variable

namespace {
int g_cache_hits;  // flagged: mutable in anonymous namespace
}  // namespace

constexpr std::uint64_t kLimit = 128;      // NOT flagged
const double kScale = 1.5;                 // NOT flagged
constexpr const char* kNames[] = {"a"};    // NOT flagged

struct Widget {
  static std::uint64_t live_count;  // flagged: mutable static member
  static constexpr int kMax = 4;    // NOT flagged
  int value = 0;                    // NOT flagged (not annotated, R5's job)
};

std::uint64_t bump() {
  static std::uint64_t calls = 0;  // flagged: mutable function-local static
  static const std::uint64_t kStep = 2;  // NOT flagged
  g_counter += kStep;
  ++g_cache_hits;
  return ++calls + kLimit + static_cast<std::uint64_t>(kScale);
}

}  // namespace fixture
