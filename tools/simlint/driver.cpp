#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scenario/json.hpp"

namespace fs = std::filesystem;

namespace tfsim::simlint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string normalize_rel(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path abs = fs::weakly_canonical(p, ec);
  if (ec) abs = p;
  fs::path rel = abs.lexically_relative(root);
  std::string out = rel.generic_string();
  if (starts_with(out, "./")) out = out.substr(2);
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

RuleScope scope_for(const std::string& rel_path) {
  RuleScope s;
  if (starts_with(rel_path, "tools/simlint/testdata/")) return s;
  if (starts_with(rel_path, "src/")) {
    s.r1 = s.r2 = s.r3 = s.r4 = s.r5 = true;
    return s;
  }
  if (starts_with(rel_path, "tools/")) {
    // Tools feed digests and reports; they get every sim-path rule except
    // R5 (no per-node sim state lives there).
    s.r1 = s.r2 = s.r3 = s.r4 = true;
    return s;
  }
  return s;
}

bool lint_file(const std::string& path, const std::string& rel,
               const RuleScope& scope, const AnalysisContext& ctx,
               std::vector<Finding>& out) {
  std::string text;
  if (!read_file(path, text)) {
    out.push_back(Finding{"ERR", rel, 0, "unreadable",
                          "cannot read file for analysis"});
    return false;
  }
  const LexedFile lexed = lex(text);
  std::vector<Finding> f = analyze(rel, lexed, scope, ctx);
  out.insert(out.end(), f.begin(), f.end());
  return true;
}

std::set<std::string> load_baseline(const std::string& path) {
  std::set<std::string> keys;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    std::size_t b = 0;
    while (b < line.size() && line[b] == ' ') ++b;
    line = line.substr(b);
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

RunResult run(const DriverConfig& cfg) {
  RunResult result;
  const fs::path root = fs::weakly_canonical(fs::path(cfg.root));

  // ---- gather files -----------------------------------------------------
  std::set<std::string> rel_files;  // ordered: deterministic scan order

  if (!cfg.compile_commands.empty()) {
    std::string text;
    if (!read_file(cfg.compile_commands, text)) {
      result.findings.push_back(
          Finding{"ERR", cfg.compile_commands, 0, "unreadable",
                  "cannot read compile_commands.json"});
      result.new_findings = result.findings;
      return result;
    }
    const scenario::Json db = scenario::Json::parse(text);
    for (const scenario::Json& entry : db.items()) {
      const scenario::Json* file = entry.find("file");
      if (file == nullptr) continue;
      fs::path p(file->as_string());
      if (!p.is_absolute()) {
        if (const scenario::Json* dir = entry.find("directory")) {
          p = fs::path(dir->as_string()) / p;
        }
      }
      const std::string rel = normalize_rel(p, root);
      if (scope_for(rel).any()) rel_files.insert(rel);
    }
  }

  // Headers are not compile_commands entries; sweep src/ and tools/ for
  // them (plus any sources a unity build might hide).
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext != ".hpp" && ext != ".h" && ext != ".cpp" && ext != ".cc") {
        continue;
      }
      const std::string rel = normalize_rel(e.path(), root);
      if (scope_for(rel).any()) rel_files.insert(rel);
    }
  }

  // Extra files (negative-test fixtures) are analyzed with every rule on,
  // but kept out of the tree's shared declaration context: a fixture that
  // deliberately aliases an unordered container must not turn same-named
  // tree identifiers into false positives (and vice versa).
  std::set<std::string> extra_rel;
  for (const std::string& f : cfg.extra_files) {
    fs::path p(f);
    extra_rel.insert(p.is_absolute() ? normalize_rel(p, root)
                                     : fs::path(f).generic_string());
  }
  for (const std::string& rel : extra_rel) rel_files.insert(rel);

  // ---- pass 1: lex everything, harvest declarations ----------------------
  AnalysisContext ctx = default_context();
  std::vector<std::pair<std::string, LexedFile>> lexed;  // (rel, tokens)
  lexed.reserve(rel_files.size());
  for (const std::string& rel : rel_files) {
    std::string text;
    if (!read_file((root / rel).string(), text)) {
      result.findings.push_back(Finding{"ERR", rel, 0, "unreadable",
                                        "cannot read file for analysis"});
      continue;
    }
    lexed.emplace_back(rel, lex(text));
  }
  // Two sweeps so variables declared through a `using` alias of an
  // unordered container are harvested no matter the file order.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (const auto& [rel, lf] : lexed) {
      if (extra_rel.count(rel) == 0) collect(lf, ctx);
    }
  }

  // ---- pass 2: rules ------------------------------------------------------
  for (const auto& [rel, lf] : lexed) {
    const bool is_extra = extra_rel.count(rel) != 0;
    AnalysisContext local;
    const AnalysisContext* use = &ctx;
    if (is_extra) {
      // Fixture context: tree declarations plus the fixture's own, double
      // swept so the fixture's aliases resolve regardless of ordering.
      local = ctx;
      collect(lf, local);
      collect(lf, local);
      use = &local;
    }
    std::vector<Finding> f =
        analyze(rel, lf, is_extra ? RuleScope{true, true, true, true, true}
                                  : scope_for(rel),
                *use);
    result.findings.insert(result.findings.end(), f.begin(), f.end());
  }
  result.files_scanned = lexed.size();

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.key() < b.key();
            });

  // ---- baseline diff ------------------------------------------------------
  std::set<std::string> baseline;
  if (!cfg.baseline_path.empty()) baseline = load_baseline(cfg.baseline_path);
  std::set<std::string> seen;
  for (const Finding& f : result.findings) {
    seen.insert(f.key());
    if (baseline.count(f.key()) == 0) result.new_findings.push_back(f);
  }
  for (const std::string& key : baseline) {
    if (seen.count(key) == 0) result.stale_baseline.push_back(key);
  }
  return result;
}

std::string render_report(const RunResult& r) {
  std::ostringstream os;
  os << "simlint: " << r.files_scanned << " file(s) scanned, "
     << r.findings.size() << " finding(s), " << r.new_findings.size()
     << " new (not in baseline), " << r.stale_baseline.size()
     << " stale baseline entr" << (r.stale_baseline.size() == 1 ? "y" : "ies")
     << "\n";
  if (!r.new_findings.empty()) {
    os << "\nNEW findings (fail the check; fix them or, for pre-existing "
          "debt being burned down, add their keys to "
          "tools/simlint/baseline.txt):\n";
    for (const Finding& f : r.new_findings) {
      os << "  " << f.to_string() << "\n    key: " << f.key() << "\n";
    }
  }
  std::vector<const Finding*> baselined;
  for (const Finding& f : r.findings) {
    const bool is_new =
        std::find_if(r.new_findings.begin(), r.new_findings.end(),
                     [&](const Finding& n) { return n.key() == f.key(); }) !=
        r.new_findings.end();
    if (!is_new) baselined.push_back(&f);
  }
  if (!baselined.empty()) {
    os << "\nbaselined findings (existing debt, tracked in baseline.txt):\n";
    for (const Finding* f : baselined) os << "  " << f->to_string() << "\n";
  }
  if (!r.stale_baseline.empty()) {
    os << "\nstale baseline entries (violation gone; delete the line):\n";
    for (const std::string& k : r.stale_baseline) os << "  " << k << "\n";
  }
  os << "\nresult: " << (r.ok() ? "PASS" : "FAIL") << "\n";
  return os.str();
}

}  // namespace tfsim::simlint
