// Determinism self-check: run the same simulation twice with identical
// seeds and diff the stats output line by line.
//
// The event engine promises (time, insertion-order) execution; the RNG is
// seeded explicitly everywhere; no container with nondeterministic iteration
// order may leak into results.  Any ordering or iteration nondeterminism --
// an unordered_map walked into a report, a priority-queue tie broken by
// pointer value, uninitialised padding hashed into a digest -- shows up here
// as a diff between two runs that must be bit-for-bit identical.
//
// Exercised scenarios:
//   1. event engine: thousands of events with deliberately colliding
//      timestamps, scheduled from nested callbacks, some cancelled; the
//      execution order is folded into a digest;
//   2. RNG-driven statistics: OnlineStats + Histogram summaries over every
//      distribution the workloads use;
//   3. the cycle-level AXI egress pipeline (router -> RateGate -> mux) with
//      probabilistic source/sink, digesting every arrival, monitor gaps,
//      and the protocol-checker verdict;
//   4. the settle-scheduler guard: the same AXI pipeline under
//      SettleMode::kNaive and kActivity must produce identical arrival and
//      monitor digests, in both the every-cycle-stepped and the
//      fast-forwarded regime (DESIGN.md section 10);
//   5. the parallel sweep runner: the same batch of independent
//      engine+RNG simulations executed serially and on a 4-worker pool
//      must produce byte-identical result vectors (the property every
//      TFSIM_JOBS>1 figure sweep relies on);
//   6. the Testbed -> Cluster refactor guard: the two-node testbed wired
//      by hand (the pre-refactor assembly order) and the one built by
//      node::Cluster from the paper scenario must produce byte-identical
//      mini fig2/fig6-style result tables;
//   7. the fault layer: a small (period x loss x flap) resilience matrix
//      with NIC retry/replay active, computed serially and on an 8-worker
//      pool, must produce byte-identical probe rows -- the seeded fault
//      streams are pure functions of the spec, never of scheduling.
//   8. intra-run PDES (sim/pdes.hpp): seeded cross-domain traffic over a
//      ring fabric driven through per-node calendars with conservative
//      lookahead; the serial run (TFSIM_PDES=off equivalent) and an
//      8-worker barrier-window run must produce byte-identical per-domain
//      digests, clocks and link counters.
//   9. the leaf/spine fabric: post_routed hop-by-hop forwarding through
//      shared switches with shallow kDrop egress buffers, so ECMP striping,
//      switch admission, and tail drops all land in the digest; the serial
//      and 8-worker runs must agree byte-for-byte, and the traffic must
//      actually overflow a buffer (drops > 0) or the check proved nothing.
//  10. open-loop serving (core/run_serving): a compressed serving_diurnal
//      cycle -- Poisson-thinned diurnal arrivals, lender-side QoS credits,
//      a mid-run lender kill with reactive failover -- run serially and on
//      8 workers; the report's canonical serialization (every per-source
//      counter, SLO window, and latency digest) must be byte-identical,
//      and the kill must actually trigger failovers or it proved nothing.
//  11. fabric chaos + online detection: a compressed chaos_rack timeline
//      (gray lender, browned-out port, spine kill) with the health
//      detector enabled -- per-source EWMA scoring, ECMP re-stripes,
//      migrations and rejoin probing are all per-source local state, so
//      the serial and 8-worker serializations must be byte-identical, and
//      the chaos must actually trigger re-stripes and migrations or the
//      reactive paths went unexercised.
//
// Exit code 0 when both runs agree, 1 with a diff otherwise.  Wired into
// ctest and the `determinism_check` CMake target.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "axi/endpoints.hpp"
#include "axi/fifo.hpp"
#include "axi/monitor.hpp"
#include "axi/mux.hpp"
#include "axi/rate_gate.hpp"
#include "axi/router.hpp"
#include "axi/testbench.hpp"
#include "core/resilience.hpp"
#include "core/serving.hpp"
#include "ctrl/control_plane.hpp"
#include "ctrl/policy.hpp"
#include "ctrl/registry.hpp"
#include "node/cluster.hpp"
#include "node/node.hpp"
#include "net/network.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "node/testbed.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/pdes.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/sweep.hpp"
#include "workloads/stream/stream_flow.hpp"

namespace {

using tfsim::sim::Engine;
using tfsim::sim::Histogram;
using tfsim::sim::OnlineStats;
using tfsim::sim::Rng;

/// FNV-1a, so ordering differences anywhere in a sequence change the digest.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
};

void scenario_engine(std::uint64_t seed, std::ostringstream& out) {
  Engine engine;
  Rng rng(seed);
  Digest order;
  OnlineStats times;
  std::uint64_t fired = 0;
  std::vector<Engine::EventId> cancellable;

  // Seed a burst of events on a coarse time grid so many share timestamps;
  // each event reschedules children from inside its callback, the pattern
  // that exposed insertion-order bugs in calendar queues.
  std::function<void(std::uint64_t)> fire = [&](std::uint64_t id) {
    order.add(id);
    order.add(engine.now());
    times.add(static_cast<double>(engine.now()));
    ++fired;
    if (id < 4000) {
      const std::uint64_t t = rng.uniform_u64(16);  // heavy collisions
      engine.schedule_in(t, [&fire, id] { fire(id + 1000); });
      if (id % 7 == 0) {
        cancellable.push_back(
            engine.schedule_in(t + 1, [&fire, id] { fire(id + 100000); }));
      }
      if (id % 11 == 3 && !cancellable.empty()) {
        engine.cancel(cancellable.back());
        cancellable.pop_back();
      }
    }
  };
  for (std::uint64_t i = 0; i < 64; ++i) {
    engine.schedule_at(rng.uniform_u64(8), [&fire, i] { fire(i); });
  }
  engine.run();

  out << "engine: fired=" << fired << " executed=" << engine.executed()
      << " order_digest=" << order.h << " time_mean=" << times.mean()
      << " time_max=" << times.max() << "\n";
}

void scenario_stats(std::uint64_t seed, std::ostringstream& out) {
  Rng rng(seed);
  Histogram hist;
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double v = 1.0 + rng.exponential(50.0) + rng.pareto(1.0, 2.5) +
                     rng.lognormal(1.0, 0.5);
    hist.add(v);
    stats.add(v);
  }
  out << "stats: " << hist.summary() << " mean=" << stats.mean()
      << " stddev=" << stats.stddev() << "\n";
}

void scenario_axi(std::uint64_t seed, std::ostringstream& out) {
  namespace axi = tfsim::axi;
  axi::Testbench tb;  // strict: nondeterministic protocol state would throw
  axi::Wire& in = tb.wire("in");
  axi::Wire& r0 = tb.wire("r0");
  axi::Wire& g0 = tb.wire("g0");
  axi::Wire& f0 = tb.wire("f0");
  axi::Wire& outw = tb.wire("out");
  axi::Source::Config scfg;
  scfg.saturate = true;
  scfg.valid_probability = 0.7;
  scfg.seed = seed;
  tb.add<axi::Source>("src", in, scfg);
  tb.add<axi::Router>("router", in, std::vector<axi::Wire*>{&r0});
  tb.add<axi::RateGate>("gate", r0, g0, 3);
  tb.add<axi::Fifo>("fifo", g0, f0, 8);
  tb.add<axi::RoundRobinMux>("mux", std::vector<axi::Wire*>{&f0}, outw);
  axi::Sink::Config kcfg;
  kcfg.ready_probability = 0.8;
  kcfg.seed = seed + 1;
  auto& sink = tb.add<axi::Sink>("sink", outw, kcfg);
  auto& mon = tb.add<axi::Monitor>("mon", outw, /*check_id_order=*/true);
  tb.run(5000);

  Digest arrivals;
  for (const auto& a : sink.arrivals()) {
    arrivals.add(a.cycle);
    arrivals.add(a.beat.id);
  }
  out << "axi: received=" << sink.received()
      << " arrival_digest=" << arrivals.h
      << " gap_mean=" << mon.gap_stats().mean()
      << " gap_max=" << mon.gap_stats().max()
      << " protocol=" << (tb.sink().clean() ? "clean" : "violated") << "\n";
}

/// Returns false when the naive and activity settle schedulers diverge on
/// the same pipeline (see DESIGN.md section 10: the two modes must be
/// byte-identical in every observable).  Covers both regimes: a
/// probabilistic source/sink pair (every cycle stepped, sensitivity-list
/// settle only) and a deterministic saturated gate at PERIOD=50 (most
/// cycles fast-forwarded).
bool scenario_settle_equiv(std::uint64_t seed, std::ostringstream& out) {
  namespace axi = tfsim::axi;

  const auto digest_run = [seed](axi::SettleMode mode, double valid_p,
                                 double ready_p, std::uint64_t period,
                                 std::uint64_t& skipped) {
    axi::Testbench tb(axi::CheckMode::kStrict, mode);
    axi::Wire& in = tb.wire("in");
    axi::Wire& r0 = tb.wire("r0");
    axi::Wire& g0 = tb.wire("g0");
    axi::Wire& f0 = tb.wire("f0");
    axi::Wire& outw = tb.wire("out");
    axi::Source::Config scfg;
    scfg.saturate = true;
    scfg.valid_probability = valid_p;
    scfg.seed = seed;
    tb.add<axi::Source>("src", in, scfg);
    tb.add<axi::Router>("router", in, std::vector<axi::Wire*>{&r0});
    tb.add<axi::RateGate>("gate", r0, g0, period);
    tb.add<axi::Fifo>("fifo", g0, f0, 8);
    tb.add<axi::RoundRobinMux>("mux", std::vector<axi::Wire*>{&f0}, outw);
    axi::Sink::Config kcfg;
    kcfg.ready_probability = ready_p;
    kcfg.seed = seed + 1;
    auto& sink = tb.add<axi::Sink>("sink", outw, kcfg);
    auto& mon = tb.add<axi::Monitor>("mon", outw, /*check_id_order=*/true);
    tb.run(5000);
    skipped = tb.skipped_cycles();
    Digest d;
    for (const auto& a : sink.arrivals()) {
      d.add(a.cycle);
      d.add(a.beat.id);
    }
    d.add(sink.received());
    d.add(mon.fires());
    d.add(mon.gap_stats().count());
    d.add(static_cast<std::uint64_t>(mon.gap_stats().mean() * 1e6));
    return d.h;
  };

  bool match = true;
  std::uint64_t naive_skipped = 0, act_skipped = 0;
  const std::uint64_t prob_naive =
      digest_run(axi::SettleMode::kNaive, 0.7, 0.8, 3, naive_skipped);
  const std::uint64_t prob_act =
      digest_run(axi::SettleMode::kActivity, 0.7, 0.8, 3, act_skipped);
  match = match && prob_naive == prob_act && naive_skipped == 0;
  const std::uint64_t gated_naive =
      digest_run(axi::SettleMode::kNaive, 1.0, 1.0, 50, naive_skipped);
  const std::uint64_t gated_act =
      digest_run(axi::SettleMode::kActivity, 1.0, 1.0, 50, act_skipped);
  // The deterministic PERIOD=50 run must actually have exercised the
  // fast-forward path, or the equivalence above proved nothing.
  match = match && gated_naive == gated_act && act_skipped > 0;

  out << "settle: prob_digest=" << prob_act << " gated_digest=" << gated_act
      << " gated_skipped=" << act_skipped
      << " naive==activity=" << (match ? "yes" : "NO") << "\n";
  if (!match) {
    std::fprintf(stderr,
                 "determinism_check: settle schedulers diverged "
                 "(prob %llu vs %llu, gated %llu vs %llu, skipped %llu)\n",
                 static_cast<unsigned long long>(prob_naive),
                 static_cast<unsigned long long>(prob_act),
                 static_cast<unsigned long long>(gated_naive),
                 static_cast<unsigned long long>(gated_act),
                 static_cast<unsigned long long>(act_skipped));
  }
  return match;
}

/// Returns false if the serial and parallel sweeps diverge (a hard failure,
/// independent of the run-vs-run diff: both runs would diverge identically).
bool scenario_sweep(std::uint64_t seed, std::ostringstream& out) {
  using tfsim::sim::SweepRunner;

  auto job = [seed](std::size_t i) {
    Engine engine;
    Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    Digest d;
    std::uint64_t fired = 0;
    std::function<void()> hop = [&] {
      ++fired;
      d.add(engine.now());
      if (fired < 800) engine.schedule_in(1 + rng.uniform_u64(11), hop);
    };
    for (int c = 0; c < 3; ++c) engine.schedule_at(rng.uniform_u64(4), hop);
    engine.run();
    std::ostringstream r;
    r << i << ":" << fired << ":" << engine.now() << ":" << d.h;
    return r.str();
  };

  const std::vector<std::string> serial = SweepRunner(1).run(16, job);
  const std::vector<std::string> parallel = SweepRunner(4).run(16, job);

  Digest d;
  for (const auto& s : serial) {
    for (const char c : s) d.add(static_cast<std::uint64_t>(c));
  }
  const bool match = serial == parallel;
  out << "sweep: points=" << serial.size() << " digest=" << d.h
      << " serial==parallel=" << (match ? "yes" : "NO") << "\n";
  if (!match) {
    for (std::size_t i = 0; i < serial.size(); ++i) {
      if (serial[i] != parallel[i]) {
        std::fprintf(stderr,
                     "determinism_check: sweep point %zu diverged\n"
                     "  serial:   %s\n  parallel: %s\n",
                     i, serial[i].c_str(), parallel[i].c_str());
      }
    }
  }
  return match;
}

/// Mini fig2/fig6-style table over (PERIOD, instance-count) cells: per-cell
/// completed lines, bandwidth, and mean latency, formatted as CSV text so
/// the legacy-vs-Cluster comparison is byte-for-byte.
std::string mini_table(tfsim::sim::Engine& engine, tfsim::nic::DisaggNic& nic,
                       tfsim::mem::Addr remote_base) {
  namespace sim = tfsim::sim;
  namespace workloads = tfsim::workloads;
  std::ostringstream csv;
  csv << "period,instances,lines,gbps,mean_us\n";
  for (const std::uint64_t period : {std::uint64_t{1}, std::uint64_t{50}}) {
    for (const int instances : {1, 2}) {
      nic.set_period(period);
      const sim::Time start = engine.now();
      const sim::Time stop = start + sim::from_us(300.0);
      const std::uint64_t span = 64 * sim::kMiB;
      std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
      for (int i = 0; i < instances; ++i) {
        workloads::FlowConfig cfg;
        cfg.concurrency = 32;
        cfg.base = remote_base + static_cast<std::uint64_t>(i) * span;
        cfg.span_bytes = span;
        cfg.stop_at = stop;
        flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
            engine, nic, cfg));
      }
      for (auto& f : flows) f->start();
      engine.run();
      std::uint64_t lines = 0;
      double gbps = 0.0, mean_us = 0.0;
      for (const auto& f : flows) {
        lines += f->stats().lines_completed;
        gbps += f->stats().bandwidth_gbps(stop - start);
        mean_us += f->stats().latency_us.mean();
      }
      char row[128];
      std::snprintf(row, sizeof row, "%llu,%d,%llu,%.9f,%.9f\n",
                    static_cast<unsigned long long>(period), instances,
                    static_cast<unsigned long long>(lines), gbps,
                    mean_us / instances);
      csv << row;
    }
  }
  return csv.str();
}

/// Returns false when the hand-wired two-node testbed (the pre-refactor
/// Testbed assembly, reproduced inline) and the Cluster-built one diverge.
bool scenario_cluster_refactor(std::ostringstream& out) {
  namespace node = tfsim::node;
  namespace ctrl = tfsim::ctrl;
  namespace sim = tfsim::sim;

  const node::TestbedSpec spec = node::thymesisflow_testbed();

  // Legacy wiring, in the exact pre-refactor order: nodes, link pair,
  // registry, control plane (first-fit), lender registration, reserve +
  // attach of the 16 GiB region.
  sim::Engine engine;
  tfsim::net::Network network;
  node::Node borrower(spec.borrower, engine, network);
  node::Node lender(spec.lender, engine, network);
  network.connect(borrower.net_id(), lender.net_id(), spec.link);
  network.connect(lender.net_id(), borrower.net_id(), spec.link);
  ctrl::NodeRegistry registry;
  const auto borrower_reg = registry.add_node(
      borrower.name(), borrower.dram().config().capacity_bytes);
  const auto lender_reg =
      registry.add_node(lender.name(), lender.dram().config().capacity_bytes);
  registry.set_role(borrower_reg, ctrl::Role::kBorrower);
  registry.set_role(lender_reg, ctrl::Role::kLender);
  ctrl::ControlPlane cp(registry, std::make_unique<ctrl::FirstFitPolicy>());
  borrower.nic().register_lender(lender_reg, lender.net_id(), &lender.dram());
  const auto reservation = cp.reserve(borrower_reg, spec.remote_gib * sim::kGiB,
                                      "thymesisflow-borrowed");
  const auto base =
      cp.attach(reservation->id, borrower.nic(), borrower.memory_map());
  const std::string legacy = mini_table(engine, borrower.nic(), *base);

  // The same testbed assembled by Cluster from the declarative scenario.
  node::Cluster cluster(tfsim::scenario::paper_two_node());
  cluster.attach_remote();
  const std::string refactored =
      mini_table(cluster.engine(), cluster.borrower().nic(),
                 cluster.remote_base());

  Digest d;
  for (const char c : refactored) d.add(static_cast<std::uint64_t>(c));
  const bool match = legacy == refactored;
  out << "cluster: digest=" << d.h
      << " legacy==cluster=" << (match ? "yes" : "NO") << "\n";
  if (!match) {
    std::fprintf(stderr,
                 "determinism_check: legacy vs Cluster mini-CSV diverged\n"
                 "--- legacy ---\n%s--- cluster ---\n%s",
                 legacy.c_str(), refactored.c_str());
  }
  return match;
}

/// Returns false when the serial and 8-worker fault matrices diverge.  Each
/// point builds its own Cluster with loss/corruption/flaps active, so this
/// covers the whole fault stack: FaultPlan streams, FaultyLink decoration,
/// NIC retry/backoff, and the abandonment/detach bookkeeping.
bool scenario_faults(std::uint64_t seed, std::ostringstream& out) {
  namespace core = tfsim::core;
  namespace net = tfsim::net;
  namespace sim = tfsim::sim;

  core::FaultMatrixOptions opts;
  opts.periods = {1, 100};
  opts.loss_rates = {0.0, 1e-3, 1e-2};
  opts.flap_schedules = {
      {},
      {net::FlapSpec{sim::from_us(100.0), sim::from_us(50.0), 0.0}},
  };
  opts.corrupt_rate = 1e-3;
  opts.seed = seed;
  opts.accesses = 600;

  const auto digest_rows = [](const std::vector<core::FaultProbe>& probes) {
    std::ostringstream rows;
    for (const auto& p : probes) {
      rows << p.point.period << "," << p.point.loss_rate << ","
           << p.point.flap_schedule << "," << core::to_string(p.health) << ","
           << p.completed << "," << p.failed << "," << p.retries << ","
           << p.abandoned << "," << p.crc_drops << "," << p.frames_lost << ","
           << p.recovered << "," << p.detached_lenders << ","
           << p.avg_latency_us << "\n";
    }
    return rows.str();
  };

  const auto serial_probes = core::assess_fault_matrix(opts, 1);
  const std::string serial = digest_rows(serial_probes);
  const std::string parallel = digest_rows(core::assess_fault_matrix(opts, 8));

  Digest d;
  std::uint64_t retried = 0;
  for (const char c : serial) d.add(static_cast<std::uint64_t>(c));
  for (const auto& p : serial_probes) retried += p.retries;
  const bool match = serial == parallel && retried > 0;
  out << "faults: digest=" << d.h << " retries=" << retried
      << " serial==parallel=" << (serial == parallel ? "yes" : "NO") << "\n";
  if (serial != parallel) {
    std::fprintf(stderr,
                 "determinism_check: fault matrix diverged\n"
                 "--- serial ---\n%s--- parallel ---\n%s",
                 serial.c_str(), parallel.c_str());
  } else if (retried == 0) {
    std::fprintf(stderr,
                 "determinism_check: fault matrix exercised no retries -- "
                 "the determinism claim covered nothing\n");
  }
  return match;
}

// Scenario 8: the intra-run PDES core.  Thread count must change wall-clock
// time only -- per-domain event counts, clocks, traffic digests and link
// byte counters are compared byte-for-byte between a serial run and an
// 8-worker barrier-window run over the same seeded ring traffic.
std::string pdes_traffic(std::uint64_t seed, unsigned threads) {
  namespace net = tfsim::net;
  namespace sim = tfsim::sim;

  constexpr std::size_t kNodes = 12;
  net::Network fabric;
  for (std::size_t i = 0; i < kNodes; ++i) {
    fabric.add_node("n" + std::to_string(i));
  }
  Rng wiring(seed ^ 0xFAB51Cull);
  for (std::size_t i = 0; i < kNodes; ++i) {
    net::LinkConfig cfg;
    cfg.propagation = sim::from_ns(80.0 + wiring.uniform(0.0, 300.0));
    cfg.bandwidth = sim::Bandwidth::from_gbit(50.0);
    fabric.connect(static_cast<net::NodeId>(i),
                   static_cast<net::NodeId>((i + 1) % kNodes), cfg);
  }

  sim::PdesConfig cfg;
  cfg.threads = threads;
  cfg.lookahead = fabric.min_propagation();
  sim::ParallelEngine pdes(kNodes, cfg);

  std::vector<Rng> rng;
  std::vector<std::uint64_t> fold(kNodes, 0);
  rng.reserve(kNodes);
  for (std::size_t d = 0; d < kNodes; ++d) {
    rng.emplace_back(seed ^ (0x9E3779B97F4A7C15ULL * (d + 1)));
  }

  std::function<void(sim::DomainId, int)> bounce = [&](sim::DomainId d,
                                                       int budget) {
    sim::Engine& self = pdes.domain(d);
    fold[d] = fold[d] * 1099511628211ULL ^ self.now() ^ d;
    if (budget <= 0) return;
    const auto dst = static_cast<net::NodeId>((d + 1) % kNodes);
    const std::uint64_t bytes = 64 + rng[d].uniform_u64(1400);
    fabric.post_delivery(
        pdes, d, static_cast<sim::DomainId>(dst), self.now(),
        static_cast<net::NodeId>(d), dst, bytes, sim::Priority::kBulk,
        [&bounce, dst, budget](const net::Delivery&) {
          bounce(static_cast<sim::DomainId>(dst), budget - 1);
        });
  };
  for (std::size_t d = 0; d < kNodes; ++d) {
    const sim::Time start = 1 + rng[d].uniform_u64(cfg.lookahead);
    pdes.post(static_cast<sim::DomainId>(d), static_cast<sim::DomainId>(d),
              start, [&bounce, d] {
                bounce(static_cast<sim::DomainId>(d), 50);
              });
  }
  pdes.run();

  std::ostringstream os;
  for (std::size_t d = 0; d < kNodes; ++d) {
    os << d << ":" << fold[d] << ":"
       << pdes.domain(static_cast<sim::DomainId>(d)).executed() << ":"
       << pdes.domain(static_cast<sim::DomainId>(d)).now() << ";";
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto& link = fabric.link(static_cast<net::NodeId>(i),
                                   static_cast<net::NodeId>((i + 1) % kNodes));
    os << "L" << i << "=" << link.bytes_sent() << "," << link.packets_sent()
       << ";";
  }
  return os.str();
}

bool scenario_pdes(std::uint64_t seed, std::ostringstream& out) {
  const std::string serial = pdes_traffic(seed, 1);
  const std::string parallel = pdes_traffic(seed, 8);

  Digest d;
  for (const char c : serial) d.add(static_cast<std::uint64_t>(c));
  const bool match = serial == parallel;
  out << "pdes: digest=" << d.h
      << " serial==8-thread=" << (match ? "yes" : "NO") << "\n";
  if (!match) {
    std::fprintf(stderr,
                 "determinism_check: PDES diverged across thread counts\n"
                 "--- serial ---\n%s\n--- 8 threads ---\n%s\n",
                 serial.c_str(), parallel.c_str());
  }
  return match;
}

// Scenario 9: the leaf/spine fabric under PDES.  Hop-by-hop post_routed
// forwarding is the only sound way to drive *shared* switches in parallel
// (each egress link is transmitted on only from its owner's domain), so the
// digest covers routing-table forwarding, deterministic ECMP striping, and
// the kDrop admission path under deliberately shallow buffers.
std::string fabric_traffic(std::uint64_t seed, unsigned threads,
                           std::uint64_t& total_drops) {
  namespace net = tfsim::net;
  namespace sim = tfsim::sim;

  constexpr std::size_t kHosts = 8;
  net::Network fabric;
  std::vector<net::NodeId> hosts;
  hosts.reserve(kHosts);
  for (std::size_t i = 0; i < kHosts; ++i) {
    hosts.push_back(fabric.add_node("h" + std::to_string(i)));
  }
  net::LeafSpineConfig topo;
  topo.leaves = 2;
  topo.spines = 2;
  topo.edge.bandwidth = sim::Bandwidth::from_gbit(50.0);
  topo.edge.propagation = sim::from_ns(120.0);
  topo.uplink.bandwidth = sim::Bandwidth::from_gbit(50.0);
  topo.uplink.propagation = sim::from_ns(200.0);
  topo.sw.policy = net::QueuePolicy::kDrop;
  topo.sw.buffer_bytes = 4096;  // shallow on purpose: tail drops must occur
  const auto rack = net::LeafSpineFabric::build(fabric, topo, hosts);

  const std::size_t kDomains = kHosts + rack.leaves.size() + rack.spines.size();
  sim::PdesConfig cfg;
  cfg.threads = threads;
  cfg.lookahead = fabric.min_propagation();
  sim::ParallelEngine pdes(kDomains, cfg);

  std::vector<Rng> rng;
  std::vector<std::uint64_t> fold(kHosts, 0);
  std::vector<std::uint64_t> arrivals(kHosts, 0);
  rng.reserve(kHosts);
  for (std::size_t h = 0; h < kHosts; ++h) {
    rng.emplace_back(seed ^ (0x9E3779B97F4A7C15ULL * (h + 1)));
  }

  // Bounce chains host i -> (i + 1) % kHosts: hosts alternate leaves, so
  // every frame crosses the spine tier and contends for the shallow uplink
  // buffers.  A tail-dropped frame ends its chain silently -- which chains
  // survive is itself part of the determinism claim.  Per-host state (rng,
  // fold, arrivals) is only touched from the owning domain.
  std::function<void(net::NodeId, int, std::uint64_t)> bounce =
      [&](net::NodeId h, int budget, std::uint64_t flow) {
        sim::Engine& self = pdes.domain(static_cast<sim::DomainId>(h));
        fold[h] = fold[h] * 1099511628211ULL ^ self.now() ^ h;
        ++arrivals[h];
        if (budget <= 0) return;
        const auto dst = static_cast<net::NodeId>((h + 1) % kHosts);
        const std::uint64_t bytes = 256 + rng[h].uniform_u64(1200);
        fabric.post_routed(pdes, self.now(), h, dst, bytes,
                           sim::Priority::kBulk, flow,
                           [&bounce, dst, budget, flow](const net::Delivery&) {
                             bounce(dst, budget - 1, flow + 1);
                           });
      };
  for (std::size_t h = 0; h < kHosts; ++h) {
    for (int chain = 0; chain < 4; ++chain) {
      const sim::Time start = 1 + rng[h].uniform_u64(cfg.lookahead);
      const auto flow = static_cast<std::uint64_t>(h * 131 + chain);
      pdes.post(static_cast<sim::DomainId>(h), static_cast<sim::DomainId>(h),
                start, [&bounce, h, flow] {
                  bounce(static_cast<net::NodeId>(h), 40, flow);
                });
    }
  }
  pdes.run();

  std::ostringstream os;
  total_drops = 0;
  for (std::size_t h = 0; h < kHosts; ++h) {
    os << h << ":" << fold[h] << ":" << arrivals[h] << ":"
       << pdes.domain(static_cast<sim::DomainId>(h)).executed() << ":"
       << pdes.domain(static_cast<sim::DomainId>(h)).now() << ";";
  }
  for (const auto& [id, sw] : fabric.switches()) {
    os << "S" << id << "=" << sw.total_drops();
    for (const auto& [egress, port] : sw.ports()) {
      os << ",p" << egress << ":" << port.frames << ":" << port.bytes << ":"
         << port.drops << ":" << port.peak_queued_bytes;
    }
    os << ";";
    total_drops += sw.total_drops();
  }
  return os.str();
}

bool scenario_fabric(std::uint64_t seed, std::ostringstream& out) {
  std::uint64_t serial_drops = 0, parallel_drops = 0;
  const std::string serial = fabric_traffic(seed, 1, serial_drops);
  const std::string parallel = fabric_traffic(seed, 8, parallel_drops);

  Digest d;
  for (const char c : serial) d.add(static_cast<std::uint64_t>(c));
  const bool match = serial == parallel && serial_drops > 0;
  out << "fabric: digest=" << d.h << " drops=" << serial_drops
      << " serial==8-thread=" << (serial == parallel ? "yes" : "NO") << "\n";
  if (serial != parallel) {
    std::fprintf(stderr,
                 "determinism_check: leaf/spine fabric diverged across "
                 "thread counts\n--- serial ---\n%s\n--- 8 threads ---\n%s\n",
                 serial.c_str(), parallel.c_str());
  } else if (serial_drops == 0) {
    std::fprintf(stderr,
                 "determinism_check: fabric scenario saw no switch drops -- "
                 "the kDrop admission path went unexercised\n");
  }
  return match;
}

// Scenario 10: the open-loop serving harness.  A compressed serving_diurnal
// (one 2 ms diurnal cycle, the lender kill at its peak) driven through
// run_serving; the harness already serializes every observable -- source
// counters, failover walks, QoS rejections, SLO windows -- in fixed order,
// so the comparison is simply its canonical string.  TFSIM_PDES is pinned
// per run because the Cluster honors the environment (the CI tsan job sets
// TFSIM_PDES=8, which would silently retarget the serial reference).
tfsim::core::ServingReport serving_traffic(std::uint64_t seed,
                                           unsigned threads) {
  auto spec = *tfsim::scenario::builtin("serving_diurnal");
  spec.traffic.seed = seed;
  spec.traffic.duration_us = 2000.0;
  spec.traffic.diurnal_period_us = 2000.0;
  spec.faults.kill_at_us = 1000.0;
  spec.slo.window_us = 500.0;
  spec.pdes.threads = threads;
  setenv("TFSIM_PDES", std::to_string(threads).c_str(), 1);
  tfsim::node::Cluster cluster(spec);
  return tfsim::core::run_serving(cluster);
}

bool scenario_serving(std::uint64_t seed, std::ostringstream& out) {
  const char* env = std::getenv("TFSIM_PDES");
  const std::string saved = env != nullptr ? env : "";
  const bool had_env = env != nullptr;

  const tfsim::core::ServingReport serial = serving_traffic(seed, 1);
  const tfsim::core::ServingReport parallel = serving_traffic(seed, 8);

  if (had_env) {
    setenv("TFSIM_PDES", saved.c_str(), 1);
  } else {
    unsetenv("TFSIM_PDES");
  }

  const bool match =
      serial.serialized == parallel.serialized && serial.failovers > 0;
  out << "serving: digest=" << serial.digest
      << " completed=" << serial.totals.completed
      << " failovers=" << serial.failovers
      << " serial==8-thread="
      << (serial.serialized == parallel.serialized ? "yes" : "NO") << "\n";
  if (serial.serialized != parallel.serialized) {
    std::fprintf(stderr,
                 "determinism_check: serving harness diverged across thread "
                 "counts\n--- serial ---\n%s\n--- 8 threads ---\n%s\n",
                 serial.serialized.c_str(), parallel.serialized.c_str());
  } else if (serial.failovers == 0) {
    std::fprintf(stderr,
                 "determinism_check: serving scenario saw no failovers -- "
                 "the mid-run kill path went unexercised\n");
  }
  return match;
}

// Scenario 11: fabric chaos with the online detector.  A half-length
// chaos_rack timeline (every chaos event and the SLO window scaled with the
// horizon) so gray-lender detection, ECMP re-striping, migration and rejoin
// probing all fire inside the run.  All reactive state is per-source local,
// so the canonical serialization must match from 1 to 8 workers.
tfsim::core::ServingReport chaos_traffic(std::uint64_t seed,
                                         unsigned threads) {
  auto spec = *tfsim::scenario::builtin("chaos_rack");
  const double scale = 0.5;
  spec.traffic.seed = seed;
  spec.traffic.duration_us *= scale;
  spec.slo.window_us *= scale;
  for (auto& ev : spec.chaos.events) {
    ev.at_us *= scale;
    ev.for_us *= scale;
  }
  spec.pdes.threads = threads;
  setenv("TFSIM_PDES", std::to_string(threads).c_str(), 1);
  tfsim::node::Cluster cluster(spec);
  return tfsim::core::run_serving(cluster);
}

bool scenario_chaos(std::uint64_t seed, std::ostringstream& out) {
  const char* env = std::getenv("TFSIM_PDES");
  const std::string saved = env != nullptr ? env : "";
  const bool had_env = env != nullptr;

  const tfsim::core::ServingReport serial = chaos_traffic(seed, 1);
  const tfsim::core::ServingReport parallel = chaos_traffic(seed, 8);

  if (had_env) {
    setenv("TFSIM_PDES", saved.c_str(), 1);
  } else {
    unsetenv("TFSIM_PDES");
  }

  const bool reacted = serial.restripes > 0 && serial.failovers > 0;
  const bool match = serial.serialized == parallel.serialized && reacted;
  out << "chaos: digest=" << serial.digest
      << " completed=" << serial.totals.completed
      << " restripes=" << serial.restripes
      << " failovers=" << serial.failovers << " rejoins=" << serial.rejoins
      << " gray_inflated=" << serial.gray_inflated
      << " chaos_drops=" << serial.switch_chaos_drops
      << " serial==8-thread="
      << (serial.serialized == parallel.serialized ? "yes" : "NO") << "\n";
  if (serial.serialized != parallel.serialized) {
    std::fprintf(stderr,
                 "determinism_check: chaos scenario diverged across thread "
                 "counts\n--- serial ---\n%s\n--- 8 threads ---\n%s\n",
                 serial.serialized.c_str(), parallel.serialized.c_str());
  } else if (!reacted) {
    std::fprintf(stderr,
                 "determinism_check: chaos scenario never re-striped or "
                 "migrated -- the detector reaction paths went unexercised\n");
  }
  return match;
}

std::string run_all(std::uint64_t seed, bool& sweep_ok) {
  std::ostringstream out;
  scenario_engine(seed, out);
  scenario_stats(seed, out);
  scenario_axi(seed, out);
  sweep_ok = scenario_settle_equiv(seed, out) && sweep_ok;
  sweep_ok = scenario_sweep(seed, out) && sweep_ok;
  sweep_ok = scenario_cluster_refactor(out) && sweep_ok;
  sweep_ok = scenario_faults(seed, out) && sweep_ok;
  sweep_ok = scenario_pdes(seed, out) && sweep_ok;
  sweep_ok = scenario_fabric(seed, out) && sweep_ok;
  sweep_ok = scenario_serving(seed, out) && sweep_ok;
  sweep_ok = scenario_chaos(seed, out) && sweep_ok;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0xD15EA5EULL;
  if (argc > 1) {
    char* end = nullptr;
    seed = std::strtoull(argv[1], &end, 0);
    if (end == argv[1] || *end != '\0') {
      std::fprintf(stderr, "determinism_check: invalid seed '%s'\n", argv[1]);
      return 2;
    }
  }
  bool sweep_ok = true;
  const std::string first = run_all(seed, sweep_ok);
  const std::string second = run_all(seed, sweep_ok);
  if (!sweep_ok) {
    std::fprintf(stderr,
                 "determinism_check: FAILED -- parallel sweep diverged from "
                 "serial\n%s",
                 first.c_str());
    return 1;
  }
  if (first == second) {
    std::printf("determinism_check: OK (seed=%llu)\n%s",
                static_cast<unsigned long long>(seed), first.c_str());
    return 0;
  }
  std::fprintf(stderr,
               "determinism_check: FAILED -- identical seeds diverged\n"
               "--- run 1 ---\n%s--- run 2 ---\n%s",
               first.c_str(), second.c_str());
  return 1;
}
