// Scenario smoke check: load every scenario file, verify the JSON
// round-trips exactly, build the cluster, attach the remote memory, and
// push a short burst of traffic through every borrower NIC.
//
// CI runs this over each checked-in scenarios/*.json so a file that rots
// (schema drift, typo'd key, unbuildable topology) fails the build, not
// the first user who tries it.  `--dump <name>` prints a built-in spec as
// resolved JSON -- the checked-in files are generated this way, so file
// and builder can never disagree.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/serving.hpp"
#include "node/cluster.hpp"
#include "scenario/scenario.hpp"
#include "sim/units.hpp"
#include "workloads/stream/stream_flow.hpp"

using namespace tfsim;

namespace {

bool smoke(const std::string& name) {
  const scenario::ScenarioSpec spec = bench::load_scenario(name);

  // Round-trip: the resolved dump must parse back to an identical dump.
  const std::string dumped = scenario::resolved_json(spec);
  if (scenario::resolved_json(scenario::parse(dumped)) != dumped) {
    std::fprintf(stderr, "[%s] FAIL: resolved JSON does not round-trip\n",
                 name.c_str());
    return false;
  }

  node::Cluster cluster(spec);

  // Serving scenarios carry their own open-loop traffic; run one full
  // cycle through the routed dispatcher instead of the NIC flow smoke.
  if (spec.traffic.enabled()) {
    const core::ServingReport rep = core::run_serving(cluster);
    if (rep.totals.completed == 0 || !rep.balanced) {
      std::fprintf(stderr, "[%s] FAIL: serving completed=%llu balanced=%d\n",
                   name.c_str(),
                   static_cast<unsigned long long>(rep.totals.completed),
                   rep.balanced ? 1 : 0);
      return false;
    }
    std::printf("[%s] OK: %zu node(s), serving %llu/%llu completed, "
                "%llu/%zu windows met SLO\n",
                name.c_str(), cluster.num_nodes(),
                static_cast<unsigned long long>(rep.totals.completed),
                static_cast<unsigned long long>(rep.totals.offered),
                static_cast<unsigned long long>(rep.windows_met),
                rep.windows.size());
    return true;
  }

  if (!cluster.attach_remote()) {
    std::fprintf(stderr, "[%s] FAIL: attach_remote\n", name.c_str());
    return false;
  }

  // A short closed-loop flow per borrower: exercises the NIC pipeline,
  // the fabric (trunk routes included), and every striped chunk mapping.
  const sim::Time stop = sim::from_us(200.0);
  std::vector<std::unique_ptr<workloads::RemoteStreamFlow>> flows;
  for (std::size_t i = 0; i < cluster.num_borrowers(); ++i) {
    workloads::FlowConfig cfg;
    cfg.concurrency = 32;
    cfg.base = cluster.remote_base(i);
    cfg.span_bytes = cluster.remote_span(i);
    cfg.stop_at = stop;
    flows.push_back(std::make_unique<workloads::RemoteStreamFlow>(
        cluster.engine(), cluster.borrower(i).nic(), cfg));
  }
  for (auto& f : flows) f->start();
  cluster.engine().run();

  std::uint64_t lines = 0;
  for (const auto& f : flows) lines += f->stats().lines_completed;
  if (lines == 0) {
    std::fprintf(stderr, "[%s] FAIL: no traffic completed\n", name.c_str());
    return false;
  }
  std::printf("[%s] OK: %zu node(s), %zu borrower(s), %zu lender(s), "
              "%llu lines in %.0f us\n",
              name.c_str(), cluster.num_nodes(), cluster.num_borrowers(),
              cluster.num_lenders(), static_cast<unsigned long long>(lines),
              sim::to_us(stop));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--dump") == 0) {
    const auto spec = scenario::builtin(argv[2]);
    if (!spec.has_value()) {
      std::fprintf(stderr, "unknown built-in scenario: %s\n", argv[2]);
      return 2;
    }
    std::fputs(scenario::resolved_json(*spec).c_str(), stdout);
    return 0;
  }

  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) {
    names = {"paper_twonode", "pooling_1xN", "trunk_contention",
             "leafspine_rack128", "serving_diurnal", "chaos_rack"};
  }
  bool ok = true;
  for (const auto& n : names) ok = smoke(n) && ok;
  return ok ? 0 : 1;
}
