#include "node/node.hpp"

#include <new>
#include <stdexcept>

namespace tfsim::node {

Node::Node(const NodeSpec& spec, sim::Engine& engine, net::Network& network)
    : spec_(spec),
      engine_(engine),
      net_id_(network.add_node(spec.name)),
      caches_(mem::power9_like_hierarchy()),
      dram_(spec.dram, spec.name + "/dram") {
  // Local DRAM occupies the bottom of the physical map.
  map_.add_region(mem::Region{mem::Range{0, spec.dram.capacity_bytes},
                              mem::Backing::kLocalDram, 0,
                              spec.name + "/local"});
  local_arena_ = Arena{0, spec.dram.capacity_bytes};
  if (spec.with_nic) {
    nic_ = std::make_unique<nic::DisaggNic>(spec.nic, network, net_id_,
                                            spec.name + "/nic");
  }
}

nic::DisaggNic& Node::nic() {
  if (!nic_) throw std::logic_error("Node " + spec_.name + " has no NIC");
  return *nic_;
}

void Node::enable_migration(const MigrationConfig& cfg) {
  migrator_ = std::make_unique<PageMigrator>(*this, cfg);
  // A node already bound into a domain checker passes ownership through to
  // daemons started later.
  if (tfsim_domain_h_.bound()) {
    migrator_->tfsim_domain().bind(*tfsim_domain_h_.checker(),
                                   tfsim_domain_h_.id(),
                                   spec_.name + "/migrator");
  }
}

void Node::bind_domain(sim::DomainChecker& checker, sim::DomainId domain) {
  tfsim_domain_h_.bind(checker, domain, spec_.name);
  dram_.tfsim_domain().bind(checker, domain, dram_.name());
  caches_.tfsim_domain().bind(checker, domain, spec_.name + "/caches");
  if (nic_) nic_->tfsim_domain().bind(checker, domain, spec_.name + "/nic");
  if (migrator_) {
    migrator_->tfsim_domain().bind(checker, domain, spec_.name + "/migrator");
  }
}

void Node::refresh_arenas() {
  // Remote regions appear via hot-plug; extend the remote arena when new
  // bytes show up.  Hot-plugged regions are contiguous (control plane bumps
  // a single window), so tracking total size is sufficient.
  const std::uint64_t remote_bytes = map_.total_bytes(mem::Backing::kRemoteDram);
  if (remote_bytes == remote_seen_bytes_) return;
  mem::Addr lo = ~mem::Addr{0};
  mem::Addr hi = 0;
  for (const auto& r : map_.regions()) {
    if (r.backing != mem::Backing::kRemoteDram) continue;
    lo = std::min(lo, r.range.base);
    hi = std::max(hi, r.range.end());
  }
  if (remote_seen_bytes_ == 0) {
    remote_arena_ = Arena{lo, hi};
  } else {
    remote_arena_.end = hi;
  }
  remote_seen_bytes_ = remote_bytes;
}

Node::Arena& Node::arena_for(mem::Backing backing) {
  refresh_arenas();
  return backing == mem::Backing::kLocalDram ? local_arena_ : remote_arena_;
}

mem::Addr Node::allocate(std::uint64_t bytes, Placement placement) {
  TFSIM_DOMAIN_TOUCH("Node::allocate");
  if (bytes == 0) bytes = mem::kCacheLineBytes;
  // Line-align sizes so distinct allocations never share a cache line.
  bytes = (bytes + mem::kCacheLineBytes - 1) & ~std::uint64_t{mem::kCacheLineBytes - 1};

  const auto try_take = [&](mem::Backing backing) -> std::optional<mem::Addr> {
    Arena& a = arena_for(backing);
    if (a.end - a.cursor < bytes) return std::nullopt;
    const mem::Addr addr = a.cursor;
    a.cursor += bytes;
    return addr;
  };

  std::optional<mem::Addr> got;
  switch (placement) {
    case Placement::kLocal:
      got = try_take(mem::Backing::kLocalDram);
      break;
    case Placement::kRemote:
      got = try_take(mem::Backing::kRemoteDram);
      break;
    case Placement::kAuto:
      got = try_take(mem::Backing::kLocalDram);
      if (!got) got = try_take(mem::Backing::kRemoteDram);
      break;
  }
  if (!got) throw std::bad_alloc();
  return *got;
}

std::uint64_t Node::free_bytes(mem::Backing backing) const {
  auto* self = const_cast<Node*>(this);
  const Arena& a = self->arena_for(backing);
  return a.end - a.cursor;
}

}  // namespace tfsim::node
