#include "node/context.hpp"

#include <algorithm>

namespace tfsim::node {

MemContext::MemContext(Node& node, CpuConfig cfg, std::string name)
    : node_(node), cfg_(cfg), name_(std::move(name)) {
  stats_.level_hits.resize(node.caches().num_levels(), 0);
}

void MemContext::seek(sim::Time t) { now_ = std::max(now_, t); }

void MemContext::advance(sim::Time dt) {
  now_ += dt;
  stats_.compute_time += dt;
}

void MemContext::reserve_slot() {
  if (outstanding_.size() < cfg_.mlp) return;
  const sim::Time free_at = outstanding_.top();
  outstanding_.pop();
  if (free_at > now_) {
    stats_.stall_time += free_at - now_;
    now_ = free_at;
  }
}

sim::Time MemContext::miss_path(mem::Addr addr) {
  const mem::Region* region = node_.memory_map().find(addr);
  if (region == nullptr || region->backing == mem::Backing::kLocalDram) {
    // Local DRAM (unmapped addresses also land here: the functional model
    // has no MMU faults; tests assert workloads stay in-bounds).
    return node_.dram().access(now_, mem::kCacheLineBytes);
  }
  // Hot-page migration: pages the daemon already moved are served locally.
  if (auto* migrator = node_.migrator();
      migrator != nullptr && migrator->on_remote_access(addr, now_)) {
    return node_.dram().access(now_, mem::kCacheLineBytes, cfg_.net_priority);
  }
  // Remote: allocation fetch is a read (rd_wnitc) even for store misses
  // (write-allocate); dirty data returns later as a posted writeback.
  const auto trace = node_.nic().remote_access(now_, addr, /*write=*/false,
                                               cfg_.net_priority);
  if (!trace.has_value()) {
    ++stats_.failures;
    device_failed_ = true;
    return now_;
  }
  ++stats_.remote_misses;
  return trace->completion;
}

void MemContext::posted_writeback(mem::Addr line) {
  ++stats_.posted_writebacks;
  const mem::Region* region = node_.memory_map().find(line);
  if (region == nullptr || region->backing == mem::Backing::kLocalDram) {
    node_.dram().access(now_, mem::kCacheLineBytes);
    return;
  }
  const auto trace = node_.nic().remote_access(now_, line, /*write=*/true,
                                               cfg_.net_priority);
  if (!trace.has_value()) {
    ++stats_.failures;
    device_failed_ = true;
  }
}

void MemContext::access(mem::Addr addr, bool write, bool dependent) {
  ++stats_.accesses;
  now_ += cfg_.issue_cost;

  // Domain guards are scoped tightly around the calls that mutate this
  // node's state, never around sync_engine(): engine callbacks belong to
  // whichever domain scheduled them and open their own guards.
  const sim::DomainHandle& dom = node_.tfsim_domain();
  const auto r = [&] {
    const sim::DomainGuard g(dom.checker(), dom.id(), "ctx:cache");
    return node_.caches().access(addr, write);
  }();
  // Dirty lines evicted from the LLC leave the node asynchronously.
  if (!r.memory_writebacks.empty()) {
    sync_engine();
    const sim::DomainGuard g(dom.checker(), dom.id(), "ctx:writeback");
    for (const mem::Addr line : r.memory_writebacks) posted_writeback(line);
  }
  if (r.hit_level >= 0) {
    ++stats_.level_hits[static_cast<std::size_t>(r.hit_level)];
    if (dependent) now_ += r.latency;
    return;
  }

  // Miss to memory.
  const bool is_local = [&] {
    const mem::Region* region = node_.memory_map().find(addr);
    return region == nullptr || region->backing == mem::Backing::kLocalDram;
  }();
  if (is_local) ++stats_.local_misses;

  if (dependent) {
    sync_engine();
    const sim::Time issued = now_;
    const sim::Time done = [&] {
      const sim::DomainGuard g(dom.checker(), dom.id(), "ctx:miss");
      return miss_path(addr);
    }();
    stats_.miss_latency_us.add(sim::to_us(done - issued));
    if (done > now_) {
      stats_.stall_time += done - now_;
      now_ = done;
    }
  } else {
    reserve_slot();
    sync_engine();
    const sim::Time issued = now_;
    const sim::Time done = [&] {
      const sim::DomainGuard g(dom.checker(), dom.id(), "ctx:miss");
      return miss_path(addr);
    }();
    stats_.miss_latency_us.add(sim::to_us(done - issued));
    outstanding_.push(done);
  }
}

void MemContext::stream(mem::Addr addr, std::uint64_t bytes, bool write) {
  const std::uint64_t n = mem::lines_spanned(addr, bytes);
  mem::Addr line = mem::line_base(addr);
  for (std::uint64_t i = 0; i < n; ++i, line += mem::kCacheLineBytes) {
    access(line, write, /*dependent=*/false);
  }
}

sim::Time MemContext::drain() {
  while (!outstanding_.empty()) {
    const sim::Time t = outstanding_.top();
    outstanding_.pop();
    if (t > now_) {
      stats_.stall_time += t - now_;
      now_ = t;
    }
  }
  sync_engine();
  return now_;
}

void MemContext::reset_stats() {
  stats_ = ContextStats{};
  stats_.level_hits.resize(node_.caches().num_levels(), 0);
}

}  // namespace tfsim::node
