#include "node/migration.hpp"

#include "node/node.hpp"
#include "sim/log.hpp"

namespace tfsim::node {

PageMigrator::PageMigrator(Node& node, const MigrationConfig& cfg)
    : node_(node), cfg_(cfg) {}

bool PageMigrator::on_remote_access(mem::Addr addr, sim::Time now) {
  TFSIM_DOMAIN_TOUCH("PageMigrator::on_remote_access");
  ++stats_.remote_accesses_observed;
  const std::uint64_t epoch = access_counter_++ / cfg_.epoch_accesses;
  const mem::Addr page = addr & ~(cfg_.page_bytes - 1);
  PageState& state = pages_[page];

  if (state.migrated) {
    if (now >= state.usable_at) {
      ++stats_.accesses_served_locally;
      return true;
    }
    return false;  // copy still in flight: keep going remote
  }

  if (state.last_epoch != epoch) {
    // New epoch for this page: bank the previous epoch's verdict.
    if (state.last_epoch != ~std::uint64_t{0} &&
        state.epoch_hits >= cfg_.hot_threshold) {
      ++state.hot_epochs;
    }
    state.last_epoch = epoch;
    state.epoch_hits = 0;
  }
  ++state.epoch_hits;

  if (state.hot_epochs >= cfg_.min_hot_epochs) {
    migrate(page, state, now);
  }
  return false;
}

void PageMigrator::migrate(mem::Addr page_base, PageState& state,
                           sim::Time now) {
  if (stats_.bytes_migrated + cfg_.page_bytes > cfg_.budget_bytes) {
    ++stats_.budget_rejections;
    state.hot_epochs = 0;  // back off; re-qualify later
    return;
  }
  // The daemon copies the page with bulk-priority remote reads (it must not
  // perturb latency-class traffic) and local writes.
  sim::Time done = now;
  for (std::uint64_t off = 0; off < cfg_.page_bytes;
       off += mem::kCacheLineBytes) {
    const auto trace = node_.nic().remote_access(
        now, page_base + off, /*write=*/false, sim::Priority::kBulk);
    if (!trace.has_value()) return;  // device lost mid-copy: abandon
    node_.dram().access(trace->completion, mem::kCacheLineBytes);
    done = std::max(done, trace->completion);
  }
  state.migrated = true;
  state.usable_at = done + cfg_.remap_cost;
  ++stats_.pages_migrated;
  stats_.bytes_migrated += cfg_.page_bytes;
  TFSIM_LOG(Debug) << "migrated page 0x" << std::hex << page_base;
}

}  // namespace tfsim::node
