// An N-node disaggregation testbed assembled from a declarative
// scenario::ScenarioSpec: borrower and lender nodes, the fabric joining
// them (direct cables or a two-switch dumbbell with a shared trunk), the
// control plane with the configured placement policy, and the
// remote-memory reservations (optionally striped across lenders).
//
// Cluster generalizes the paper's hardwired two-node prototype to
// 1-borrower-N-lender pooling and M-borrowers-sharing-a-trunk contention;
// Testbed is now a thin two-node wrapper over it, so every Session-based
// experiment runs through this same assembly path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctrl/control_plane.hpp"
#include "ctrl/registry.hpp"
#include "net/network.hpp"
#include "node/context.hpp"
#include "node/node.hpp"
#include "scenario/scenario.hpp"
#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "sim/pdes.hpp"

namespace tfsim::node {

class Cluster {
 public:
  explicit Cluster(const scenario::ScenarioSpec& spec);

  /// The shared (cluster-wide) calendar.  In PDES mode this still exists
  /// and drives cross-cutting activity (flows, benches, MemContext sync);
  /// each node's *own* events live on its domain calendar (engine_for).
  sim::Engine& engine() { return engine_; }
  /// Per-domain calendars when the scenario (or TFSIM_PDES) enables intra-
  /// run parallelism; nullptr in the classic single-calendar mode.
  sim::ParallelEngine* pdes() { return pdes_.get(); }
  const sim::ParallelEngine* pdes() const { return pdes_.get(); }
  /// The calendar node i's events run on: its PDES domain when partitioned,
  /// the shared engine otherwise.  Node index == DomainId by construction.
  sim::Engine& engine_for(std::size_t i) { return node(i).engine(); }
  net::Network& network() { return network_; }
  /// Domain-ownership checker (simlint R5's runtime half).  Every node gets
  /// its own domain at assembly; mode comes from TFSIM_DOMAIN_CHECK.
  sim::DomainChecker& domains() { return domains_; }
  ctrl::NodeRegistry& registry() { return registry_; }
  ctrl::ControlPlane& control_plane() { return *cp_; }
  const scenario::ScenarioSpec& spec() const { return spec_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_.at(i); }
  /// Lookup by expanded name ("borrower", "lender2", ...); nullptr if absent.
  Node* find(const std::string& name);

  std::size_t num_borrowers() const { return borrowers_.size(); }
  std::size_t num_lenders() const { return lenders_.size(); }
  Node& borrower(std::size_t i = 0) { return *borrowers_.at(i); }
  Node& lender(std::size_t i = 0) { return *lenders_.at(i); }
  /// Control-plane registry id of a node (for reserve()/telemetry calls).
  std::uint32_t registry_id(const Node& n) const;

  /// Execute every reservation in the spec: policy-picked lender(s), chunked
  /// striping, NIC translation programming, and the hot-plug attach
  /// handshake.  Returns false when any FPGA attach handshake times out
  /// (extreme PERIOD; the Fig. 4 failure) or no lender can host a chunk.
  bool attach_remote();
  bool remote_attached() const { return attached_; }
  /// Base (resp. total bytes) of borrower i's hot-plugged remote window.
  /// Chunks attach contiguously, so [base, base + span) is usable.
  mem::Addr remote_base(std::size_t i = 0) const;
  std::uint64_t remote_span(std::size_t i = 0) const;

  /// Reconfigure every borrower NIC injector between runs.
  void set_period(std::uint64_t period);
  std::uint64_t period() const;

  /// Declare lender i dead from `at` on (mid-run node failure): every
  /// borrower NIC sees requests to it vanish, retries, and eventually
  /// detaches it.  The spec's faults.kill_lender applies this at build.
  void kill_lender(std::size_t lender_idx, sim::Time at);

  /// A CPU context on borrower i (the node running the workloads).
  MemContext make_context(const CpuConfig& cfg, std::string name = "ctx",
                          std::size_t borrower_idx = 0) {
    return MemContext(borrower(borrower_idx), cfg, std::move(name));
  }

 private:
  void resolve_pdes();
  void build_nodes();
  void build_topology();
  /// Give a fabric switch its own ownership domain (and, under PDES, its
  /// own calendar): the DomainId must equal the network NodeId, extending
  /// the host-index identity partition past the compute nodes.
  void register_switch_domain(net::NodeId sw);
  void build_control_plane();
  void apply_injector();
  void apply_faults();
  /// Resolve the scenario's chaos timeline into read-only switch down /
  /// port-brownout windows (written once here, only read per frame after,
  /// so PDES domains never race on them).  Gray-lender windows stay in the
  /// spec; core/run_serving applies them at the lender's service queue.
  void apply_chaos();

  scenario::ScenarioSpec spec_;
  sim::Engine engine_;
  std::unique_ptr<sim::ParallelEngine> pdes_;  ///< set when PDES enabled
  net::Network network_;
  sim::DomainChecker domains_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Node*> borrowers_;
  std::vector<Node*> lenders_;
  ctrl::NodeRegistry registry_;
  std::vector<std::uint32_t> registry_ids_;  ///< parallel to nodes_
  std::unique_ptr<ctrl::ControlPlane> cp_;
  bool attached_ = false;
  /// Per borrower: [base, end) of the attached remote window.
  struct RemoteWindow {
    std::optional<mem::Addr> base;
    mem::Addr end = 0;
  };
  std::vector<RemoteWindow> remote_;  ///< parallel to borrowers_
};

}  // namespace tfsim::node
