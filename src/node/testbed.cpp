#include "node/testbed.hpp"

#include <stdexcept>

namespace tfsim::node {

TestbedSpec thymesisflow_testbed() {
  TestbedSpec spec;
  spec.borrower.name = "borrower";
  spec.borrower.with_nic = true;
  spec.lender.name = "lender";
  spec.lender.with_nic = false;
  // AC922: 512 GB, dual-socket POWER9.  Link: 100 Gb/s copper.
  // NIC defaults (129-entry window, 320 MHz, PERIOD 1) live in NicConfig.
  return spec;
}

scenario::ScenarioSpec to_scenario(const TestbedSpec& spec) {
  scenario::ScenarioSpec scen;
  scen.name = "testbed";
  scen.description = "two-node testbed (TestbedSpec compatibility shim)";
  scenario::NodeDecl borrower;
  borrower.name = spec.borrower.name;
  borrower.role = scenario::Role::kBorrower;
  borrower.dram = spec.borrower.dram;
  borrower.with_nic = spec.borrower.with_nic;
  borrower.nic = spec.borrower.nic;
  scenario::NodeDecl lender;
  lender.name = spec.lender.name;
  lender.role = scenario::Role::kLender;
  lender.dram = spec.lender.dram;
  lender.with_nic = spec.lender.with_nic;
  lender.nic = spec.lender.nic;
  scen.nodes = {borrower, lender};
  scen.topology.link = spec.link;
  // Legacy semantics: the borrower NicConfig carries the PERIOD, so the
  // injector spec must agree or Cluster::apply_injector would reset it.
  scen.injector.period = spec.borrower.nic.period;
  scenario::ReservationSpec res;
  res.size_gib = spec.remote_gib;
  res.name = "thymesisflow-borrowed";
  scen.reservations.push_back(res);
  return scen;
}

TestbedSpec to_testbed_spec(const scenario::ScenarioSpec& scen) {
  if (scen.topology.kind != scenario::TopologyKind::kDirect) {
    throw std::invalid_argument(
        "to_testbed_spec: scenario \"" + scen.name + "\" is not direct-linked");
  }
  const scenario::NodeDecl* borrower = nullptr;
  const scenario::NodeDecl* lender = nullptr;
  std::uint32_t borrowers = 0, lenders = 0;
  for (const auto& n : scen.nodes) {
    if (n.role == scenario::Role::kBorrower) {
      borrower = &n;
      borrowers += n.count;
    } else {
      lender = &n;
      lenders += n.count;
    }
  }
  if (borrowers != 1 || lenders != 1) {
    throw std::invalid_argument(
        "to_testbed_spec: scenario \"" + scen.name + "\" has " +
        std::to_string(borrowers) + " borrower(s) and " +
        std::to_string(lenders) + " lender(s); need exactly 1+1");
  }
  TestbedSpec spec;
  spec.borrower.name = borrower->name;
  spec.borrower.dram = borrower->dram;
  spec.borrower.with_nic = borrower->nic_enabled();
  spec.borrower.nic = borrower->nic;
  spec.lender.name = lender->name;
  spec.lender.dram = lender->dram;
  spec.lender.with_nic = lender->nic_enabled();
  spec.lender.nic = lender->nic;
  spec.link = scen.topology.link;
  if (!scen.reservations.empty()) {
    spec.remote_gib = scen.reservations.front().size_gib;
  }
  return spec;
}

Testbed::Testbed(const TestbedSpec& spec)
    : spec_(spec), cluster_(to_scenario(spec)) {}

}  // namespace tfsim::node
