#include "node/testbed.hpp"

#include <memory>

#include "ctrl/policy.hpp"
#include "sim/log.hpp"

namespace tfsim::node {

TestbedSpec thymesisflow_testbed() {
  TestbedSpec spec;
  spec.borrower.name = "borrower";
  spec.borrower.with_nic = true;
  spec.lender.name = "lender";
  spec.lender.with_nic = false;
  // AC922: 512 GB, dual-socket POWER9.  Link: 100 Gb/s copper.
  // NIC defaults (129-entry window, 320 MHz, PERIOD 1) live in NicConfig.
  return spec;
}

Testbed::Testbed(const TestbedSpec& spec) : spec_(spec) {
  borrower_ = std::make_unique<Node>(spec_.borrower, engine_, network_);
  lender_ = std::make_unique<Node>(spec_.lender, engine_, network_);
  network_.connect(borrower_->net_id(), lender_->net_id(), spec_.link);
  network_.connect(lender_->net_id(), borrower_->net_id(), spec_.link);

  borrower_reg_ = registry_.add_node(spec_.borrower.name,
                                     spec_.borrower.dram.capacity_bytes);
  lender_reg_ = registry_.add_node(spec_.lender.name,
                                   spec_.lender.dram.capacity_bytes);
  registry_.set_role(borrower_reg_, ctrl::Role::kBorrower);
  registry_.set_role(lender_reg_, ctrl::Role::kLender);
  cp_ = std::make_unique<ctrl::ControlPlane>(
      registry_, std::make_unique<ctrl::FirstFitPolicy>());

  borrower_->nic().register_lender(lender_reg_, lender_->net_id(),
                                   &lender_->dram());
}

bool Testbed::attach_remote() {
  if (remote_attached()) return true;
  const std::uint64_t size = spec_.remote_gib * sim::kGiB;
  const auto reservation =
      cp_->reserve(borrower_reg_, size, "thymesisflow-borrowed");
  if (!reservation.has_value()) {
    TFSIM_LOG(Error) << "testbed: reservation failed";
    return false;
  }
  const auto base = cp_->attach(reservation->id, borrower_->nic(),
                                borrower_->memory_map());
  if (!base.has_value()) {
    TFSIM_LOG(Warn) << "testbed: attach failed (device timeout?)";
    return false;
  }
  remote_base_ = *base;
  return true;
}

void Testbed::set_period(std::uint64_t period) {
  borrower_->nic().set_period(period);
}

std::uint64_t Testbed::period() const {
  return const_cast<Testbed*>(this)->borrower_->nic().period();
}

}  // namespace tfsim::node
