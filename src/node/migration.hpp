// Hot-page migration: the OS-level resource-control mechanism the paper
// proposes for latency-sensitive workloads ("page migration at the
// operating system", §IV-D).
//
// A kernel daemon samples remote accesses; a page that stays hot across
// multiple sampling epochs is copied to local DRAM (bulk-class remote reads
// + local writes + a fixed remap cost), after which accesses to it are
// local.  Single-burst streaming pages never qualify -- the epoch check is
// what keeps the migrator from chasing sequential scans.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mem/address.hpp"
#include "sim/domain.hpp"
#include "sim/units.hpp"

namespace tfsim::node {

class Node;

struct MigrationConfig {
  std::uint64_t page_bytes = 64 * sim::kKiB;
  /// Accesses within one epoch for a page to count as hot.
  std::uint32_t hot_threshold = 32;
  /// Distinct hot epochs before the page is migrated.
  std::uint32_t min_hot_epochs = 2;
  /// Epoch length, in remote accesses observed by the daemon.
  std::uint64_t epoch_accesses = 1 << 15;
  /// Local-memory budget for migrated pages.
  std::uint64_t budget_bytes = 1 * sim::kGiB;
  /// Page-table update / TLB shootdown cost once the copy lands.
  sim::Time remap_cost = sim::from_us(10.0);
};

struct MigrationStats {
  std::uint64_t pages_migrated = 0;
  std::uint64_t bytes_migrated = 0;
  std::uint64_t remote_accesses_observed = 0;
  std::uint64_t accesses_served_locally = 0;  ///< post-migration hits
  std::uint64_t budget_rejections = 0;
};

class PageMigrator {
 public:
  PageMigrator(Node& node, const MigrationConfig& cfg);

  /// Called by the memory path for every remote access.  Returns true when
  /// the page holding `addr` has already been migrated and is usable at
  /// `now` (the access should be served from local DRAM).  May trigger a
  /// migration as a side effect.
  bool on_remote_access(mem::Addr addr, sim::Time now);

  const MigrationConfig& config() const { return cfg_; }
  const MigrationStats& stats() const { return stats_; }

  TFSIM_DOMAIN_OWNED

 private:
  struct PageState {
    std::uint64_t last_epoch = ~std::uint64_t{0};
    std::uint32_t epoch_hits = 0;     ///< accesses within last_epoch
    std::uint32_t hot_epochs = 0;     ///< distinct epochs that crossed the bar
    sim::Time usable_at = sim::kTimeNever;  ///< migration completion
    bool migrated = false;
  };

  void migrate(mem::Addr page_base, PageState& state, sim::Time now);

  Node& node_;
  MigrationConfig cfg_;
  MigrationStats stats_;
  std::unordered_map<mem::Addr, PageState> pages_;
  std::uint64_t access_counter_ = 0;
};

}  // namespace tfsim::node
