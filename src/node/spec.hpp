// Node and testbed configuration (POWER9 AC922-like defaults, matching the
// paper's prototype and the calibration constants in DESIGN.md §4).
#pragma once

#include <cstdint>

#include "mem/dram.hpp"
#include "mem/hierarchy.hpp"
#include "net/link.hpp"
#include "nic/nic.hpp"
#include "sim/server.hpp"
#include "sim/units.hpp"

namespace tfsim::node {

/// Per-context CPU parameters.  `mlp` is the number of outstanding
/// independent misses a context sustains (hardware threads x load-stream
/// depth for throughput-oriented workloads; ~1 for pointer chasing).
struct CpuConfig {
  std::uint32_t mlp = 16;
  sim::Time issue_cost = sim::from_ns(0.3);  ///< per memory instruction
  /// Network QoS class for this context's remote traffic (the paper's
  /// packet-prioritization mechanism; kBulk = no special treatment).
  sim::Priority net_priority = sim::Priority::kBulk;
};

struct NodeSpec {
  std::string name = "node";
  mem::DramConfig dram;               ///< 512 GB, 140 GB/s, 95 ns
  bool with_nic = true;               ///< borrower-capable (has the FPGA card)
  nic::NicConfig nic;                 ///< window 129, 320 MHz, PERIOD 1
};

struct TestbedSpec {
  NodeSpec borrower;
  NodeSpec lender;
  net::LinkConfig link;               ///< 100 Gb/s point-to-point
  std::uint64_t remote_gib = 16;      ///< memory borrowed at setup
};

/// The two-node ThymesisFlow prototype as configured in the paper.
TestbedSpec thymesisflow_testbed();

}  // namespace tfsim::node
