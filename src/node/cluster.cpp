#include "node/cluster.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ctrl/policy.hpp"
#include "net/latency_dist.hpp"
#include "net/topology.hpp"
#include "sim/log.hpp"

namespace tfsim::node {

namespace {

NodeSpec to_node_spec(const scenario::NodeDecl& decl, std::uint32_t index) {
  NodeSpec spec;
  spec.name = decl.count == 1 ? decl.name : decl.name + std::to_string(index);
  spec.dram = decl.dram;
  spec.with_nic = decl.nic_enabled();
  spec.nic = decl.nic;
  return spec;
}

}  // namespace

Cluster::Cluster(const scenario::ScenarioSpec& spec) : spec_(spec) {
  if (spec_.nodes.empty()) {
    throw std::invalid_argument("Cluster: scenario declares no nodes");
  }
  resolve_pdes();
  build_nodes();
  build_topology();
  build_control_plane();
  apply_injector();
  apply_faults();
  apply_chaos();
  remote_.resize(borrowers_.size());
  if (pdes_ != nullptr) {
    // Lookahead derives from the assembled fabric: no frame reaches another
    // domain before now + min link propagation.  An explicit scenario value
    // may only shrink the window below that sound bound.
    const sim::Time min_prop = network_.min_propagation();
    sim::Time lookahead = spec_.pdes.lookahead_ns > 0.0
                              ? sim::from_ns(spec_.pdes.lookahead_ns)
                              : min_prop;
    if (lookahead > min_prop) {
      TFSIM_LOG(Warn) << "cluster: pdes lookahead " << sim::to_ns(lookahead)
                      << " ns exceeds the fabric's min propagation "
                      << sim::to_ns(min_prop) << " ns; clamping";
      lookahead = min_prop;
    }
    pdes_->set_lookahead(lookahead);
  }
}

void Cluster::resolve_pdes() {
  // TFSIM_PDES overrides the scenario whenever it is set at all: "off"/junk
  // force the classic serial engine, N forces N workers (0 = per-core).
  unsigned threads = spec_.pdes.threads;
  if (const char* env = std::getenv("TFSIM_PDES");
      env != nullptr && *env != '\0') {
    threads = sim::PdesConfig::threads_from_env();
  }
  if (threads == 0) return;
  sim::PdesConfig cfg;
  cfg.threads = threads;
  // Switches are domains too: hosts take [0, N), fabric switches take the
  // ids after them, matching the order build_topology registers network
  // nodes (so DomainId == network NodeId everywhere).
  pdes_ = std::make_unique<sim::ParallelEngine>(
      spec_.expanded_node_count() + spec_.topology.switch_count(), cfg);
  if (threads > 1 && domains_.mode() != sim::DomainCheckMode::kOff) {
    // The DomainGuard stack is intentionally not thread-safe (one stack per
    // checker); with parallel workers the ownership audit instead comes
    // from serial runs of the same scenario plus simlint's static rules.
    TFSIM_LOG(Info) << "cluster: PDES with " << threads
                    << " workers disables the runtime domain checker "
                       "(audit ownership with a serial run)";
    domains_.set_mode(sim::DomainCheckMode::kOff);
  }
}

void Cluster::build_nodes() {
  domains_.bind_engine(&engine_);
  engine_.bind_domain_checker(&domains_, sim::kNoDomain);
  // Expansion order is declaration order, so net ids, registry ids and the
  // policy's tie-breaks are all fixed by the spec alone.  In PDES mode the
  // expansion index doubles as the node's DomainId: domain d of pdes() is
  // node d's calendar, so add_domain and domain(i) stay aligned 1:1.
  for (const auto& decl : spec_.nodes) {
    for (std::uint32_t i = 0; i < decl.count; ++i) {
      const auto idx = nodes_.size();
      sim::Engine& calendar =
          pdes_ != nullptr ? pdes_->domain(static_cast<sim::DomainId>(idx))
                           : engine_;
      nodes_.push_back(
          std::make_unique<Node>(to_node_spec(decl, i), calendar, network_));
      Node* n = nodes_.back().get();
      const sim::DomainId dom = domains_.add_domain(n->name());
      n->bind_domain(domains_, dom);
      if (pdes_ != nullptr) calendar.bind_domain_checker(&domains_, dom);
      (decl.role == scenario::Role::kBorrower ? borrowers_ : lenders_)
          .push_back(n);
    }
  }
}

void Cluster::build_topology() {
  const auto& topo = spec_.topology;
  switch (topo.kind) {
    case scenario::TopologyKind::kDirect:
      // Full borrower x lender mesh of point-to-point cables (the paper's
      // two-node testbed is the 1x1 instance).
      for (Node* b : borrowers_) {
        for (Node* l : lenders_) {
          network_.connect(b->net_id(), l->net_id(), topo.link);
          network_.connect(l->net_id(), b->net_id(), topo.link);
        }
      }
      break;
    case scenario::TopologyKind::kDumbbell: {
      // borrowers -- switchA == shared trunk == switchB -- lenders.  The
      // switches are fabric elements, not compute nodes; forwarding comes
      // from the routing table (the only shortest borrower->lender path is
      // edge-trunk-edge, the exact hop list this used to enumerate per
      // pair), with per-port egress admission from the switch config.
      const net::NodeId sw_a =
          network_.add_switch(spec_.name + "/switch-a", topo.sw);
      const net::NodeId sw_b =
          network_.add_switch(spec_.name + "/switch-b", topo.sw);
      register_switch_domain(sw_a);
      register_switch_domain(sw_b);
      network_.connect(sw_a, sw_b, topo.trunk);
      network_.connect(sw_b, sw_a, topo.trunk);
      for (Node* b : borrowers_) {
        network_.connect(b->net_id(), sw_a, topo.link);
        network_.connect(sw_a, b->net_id(), topo.link);
      }
      for (Node* l : lenders_) {
        network_.connect(l->net_id(), sw_b, topo.link);
        network_.connect(sw_b, l->net_id(), topo.link);
      }
      network_.build_routes();
      break;
    }
    case scenario::TopologyKind::kLeafSpine: {
      // Hosts spread round-robin over L leaves, every leaf uplinked to
      // every spine; cross-leaf flows ECMP-stripe over the S spine paths.
      net::LeafSpineConfig cfg;
      cfg.leaves = topo.leaves;
      cfg.spines = topo.spines;
      cfg.edge = topo.link;
      cfg.uplink = topo.uplink;
      cfg.sw = topo.sw;
      cfg.prefix = spec_.name + "/";
      std::vector<net::NodeId> hosts;
      hosts.reserve(nodes_.size());
      for (const auto& n : nodes_) hosts.push_back(n->net_id());
      const net::LeafSpineFabric fabric =
          net::LeafSpineFabric::build(network_, cfg, hosts);
      for (const net::NodeId sw : fabric.leaves) register_switch_domain(sw);
      for (const net::NodeId sw : fabric.spines) register_switch_domain(sw);
      break;
    }
  }
}

void Cluster::register_switch_domain(net::NodeId sw) {
  const sim::DomainId dom = domains_.add_domain(network_.node_name(sw));
  if (dom != static_cast<sim::DomainId>(sw)) {
    throw std::logic_error(
        "Cluster: switch domain id diverged from its network id");
  }
  if (pdes_ != nullptr) {
    pdes_->domain(dom).bind_domain_checker(&domains_, dom);
  }
}

void Cluster::build_control_plane() {
  for (const auto& n : nodes_) {
    registry_ids_.push_back(
        registry_.add_node(n->name(), n->dram().config().capacity_bytes));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const bool is_borrower =
        std::find(borrowers_.begin(), borrowers_.end(), nodes_[i].get()) !=
        borrowers_.end();
    registry_.set_role(registry_ids_[i],
                       is_borrower ? ctrl::Role::kBorrower : ctrl::Role::kLender);
  }
  cp_ = std::make_unique<ctrl::ControlPlane>(registry_,
                                             ctrl::make_policy(spec_.policy));
  for (Node* b : borrowers_) {
    if (!b->has_nic()) continue;
    for (Node* l : lenders_) {
      b->nic().register_lender(registry_id(*l), l->net_id(), &l->dram());
    }
  }
}

void Cluster::apply_injector() {
  const auto& inj = spec_.injector;
  for (Node* b : borrowers_) {
    if (!b->has_nic()) continue;
    if (inj.dist_kind.has_value()) {
      b->nic().set_distribution_injector(
          std::make_unique<net::LatencyDistribution>(
              *inj.dist_kind, sim::from_us(inj.dist_mean_us), inj.dist_seed));
    } else {
      b->nic().set_period(inj.period);
    }
  }
}

void Cluster::apply_faults() {
  const auto& f = spec_.faults;
  if (f.link.enabled()) network_.enable_faults(f.link);
  if (f.kill_lender.empty()) return;
  // The kill names an expanded lender node; a typo must fail loud, exactly
  // like an unknown JSON key.
  for (std::size_t i = 0; i < lenders_.size(); ++i) {
    if (lenders_[i]->name() == f.kill_lender) {
      kill_lender(i, sim::from_us(f.kill_at_us));
      return;
    }
  }
  throw std::invalid_argument("Cluster: faults.kill_lender names no lender: " +
                              f.kill_lender);
}

void Cluster::apply_chaos() {
  if (!spec_.chaos.enabled()) return;
  const auto windows = scenario::resolve_chaos(spec_.chaos);

  // Targets name fabric elements by suffix ("spine1" matches
  // "chaos-rack/spine1"), so scenario files stay independent of the
  // name-prefixing the topology builder applies.
  const auto suffix_match = [](const std::string& name,
                               const std::string& suffix) {
    if (name == suffix) return true;
    return name.size() > suffix.size() + 1 &&
           name[name.size() - suffix.size() - 1] == '/' &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  const auto find_switch = [&](const std::string& suffix,
                               const std::string& what) -> net::NodeId {
    for (const auto& [id, sw] : network_.switches()) {
      (void)sw;
      if (suffix_match(network_.node_name(id), suffix)) return id;
    }
    throw std::invalid_argument("Cluster: " + what +
                                " names no fabric switch: " + suffix);
  };
  const auto find_net_node = [&](const std::string& suffix,
                                 const std::string& what) -> net::NodeId {
    for (net::NodeId id = 0; id < network_.num_nodes(); ++id) {
      if (suffix_match(network_.node_name(id), suffix)) return id;
    }
    throw std::invalid_argument("Cluster: " + what +
                                " names no network node: " + suffix);
  };

  // Accumulate per target first so each schedule is validated and written
  // exactly once (the switches only ever see sorted, non-overlapping sets).
  std::map<net::NodeId, std::vector<net::FlapSpec>> down;
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<net::FlapSpec>>
      ports;
  for (const auto& w : windows) {
    net::FlapSpec flap;
    flap.start = w.start;
    flap.duration = w.end == sim::kTimeNever ? sim::kTimeNever - w.start
                                             : w.end - w.start;
    flap.bandwidth_factor = w.factor;
    switch (w.kind) {
      case scenario::ChaosKind::kKillSwitch:
        down[find_switch(w.target, "chaos kill_switch")].push_back(flap);
        break;
      case scenario::ChaosKind::kBrownoutPort: {
        const auto colon = w.target.find(':');
        const net::NodeId sw =
            find_switch(w.target.substr(0, colon), "chaos brownout_port");
        const net::NodeId nbr =
            find_net_node(w.target.substr(colon + 1), "chaos brownout_port");
        try {
          network_.link(sw, nbr);
        } catch (const std::invalid_argument&) {
          throw std::invalid_argument(
              "Cluster: chaos brownout_port \"" + w.target +
              "\" names no egress link of that switch");
        }
        ports[{sw, nbr}].push_back(flap);
        break;
      }
      case scenario::ChaosKind::kGrayLender: {
        // Applied later by the serving loop; here only the name check, so a
        // typo fails at assembly exactly like faults.kill_lender.
        const auto hit =
            std::find_if(lenders_.begin(), lenders_.end(), [&](Node* l) {
              return l->name() == w.target;
            });
        if (hit == lenders_.end()) {
          throw std::invalid_argument(
              "Cluster: chaos gray_lender names no lender: " + w.target);
        }
        break;
      }
      case scenario::ChaosKind::kRecover:
        break;  // resolve_chaos never emits recover windows
    }
  }
  for (auto& [id, flaps] : down) {
    network_.switch_at(id).set_down_windows(std::move(flaps));
  }
  for (auto& [port, flaps] : ports) {
    network_.switch_at(port.first).set_port_windows(port.second,
                                                    std::move(flaps));
  }
}

void Cluster::kill_lender(std::size_t lender_idx, sim::Time at) {
  const std::uint32_t id = registry_id(*lenders_.at(lender_idx));
  for (Node* b : borrowers_) {
    if (b->has_nic()) b->nic().set_lender_down(id, at);
  }
}

Node* Cluster::find(const std::string& name) {
  for (const auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

std::uint32_t Cluster::registry_id(const Node& n) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].get() == &n) return registry_ids_[i];
  }
  throw std::invalid_argument("Cluster: node not part of this cluster");
}

bool Cluster::attach_remote() {
  if (attached_) return true;
  for (const auto& res : spec_.reservations) {
    // Which borrowers this reservation applies to: all when unnamed, else
    // the exact expanded node name or every expansion of a declaration.
    std::vector<std::size_t> targets;
    for (std::size_t i = 0; i < borrowers_.size(); ++i) {
      const std::string& n = borrowers_[i]->name();
      const bool decl_match =
          !res.borrower.empty() && n.size() > res.borrower.size() &&
          n.compare(0, res.borrower.size(), res.borrower) == 0 &&
          n.find_first_not_of("0123456789", res.borrower.size()) ==
              std::string::npos;
      if (res.borrower.empty() || n == res.borrower || decl_match) {
        targets.push_back(i);
      }
    }
    if (targets.empty()) {
      TFSIM_LOG(Error) << "cluster: reservation \"" << res.name
                       << "\": no borrower named \"" << res.borrower << "\"";
      return false;
    }
    const std::uint64_t size = res.size_gib * sim::kGiB;
    const std::uint64_t chunk = size / res.chunks;
    for (const std::size_t bi : targets) {
      Node* b = borrowers_[bi];
      if (!b->has_nic()) {
        TFSIM_LOG(Error) << "cluster: borrower " << b->name() << " has no NIC";
        return false;
      }
      for (std::uint32_t k = 0; k < res.chunks; ++k) {
        // Last chunk absorbs the division remainder.
        const std::uint64_t bytes =
            k + 1 == res.chunks ? size - chunk * (res.chunks - 1) : chunk;
        std::string name = res.name;
        if (targets.size() > 1) name += "@" + b->name();
        if (res.chunks > 1) name += "#" + std::to_string(k);
        const auto reservation =
            cp_->reserve(registry_id(*b), bytes, name);
        if (!reservation.has_value()) {
          TFSIM_LOG(Error) << "cluster: reservation failed (" << name << ")";
          return false;
        }
        const auto base =
            cp_->attach(reservation->id, b->nic(), b->memory_map());
        if (!base.has_value()) {
          TFSIM_LOG(Warn) << "cluster: attach failed (device timeout?)";
          return false;
        }
        RemoteWindow& w = remote_[bi];
        if (!w.base.has_value()) w.base = *base;
        w.end = *base + bytes;
      }
    }
  }
  attached_ = true;
  return true;
}

mem::Addr Cluster::remote_base(std::size_t i) const {
  return remote_.at(i).base.value();
}

std::uint64_t Cluster::remote_span(std::size_t i) const {
  const RemoteWindow& w = remote_.at(i);
  return w.base.has_value() ? w.end - *w.base : 0;
}

void Cluster::set_period(std::uint64_t period) {
  for (Node* b : borrowers_) {
    if (b->has_nic()) b->nic().set_period(period);
  }
}

std::uint64_t Cluster::period() const {
  for (Node* b : borrowers_) {
    if (b->has_nic()) return b->nic().period();
  }
  throw std::logic_error("Cluster: no borrower NIC to read PERIOD from");
}

}  // namespace tfsim::node
