// A datacenter node: CPU contexts, cache hierarchy, local DRAM, memory map,
// and (for borrower-capable nodes) the disaggregated-memory NIC.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "mem/address.hpp"
#include "mem/dram.hpp"
#include "mem/hierarchy.hpp"
#include "net/network.hpp"
#include "nic/nic.hpp"
#include "node/migration.hpp"
#include "node/spec.hpp"
#include "sim/domain.hpp"
#include "sim/engine.hpp"

namespace tfsim::node {

/// Where a workload wants its arrays placed.
enum class Placement {
  kLocal,   ///< node-local DRAM only
  kRemote,  ///< hot-plugged disaggregated memory only
  kAuto,    ///< local first, spill to remote (the borrowing use-case)
};

class Node {
 public:
  Node(const NodeSpec& spec, sim::Engine& engine, net::Network& network);

  const std::string& name() const { return spec_.name; }
  net::NodeId net_id() const { return net_id_; }
  sim::Engine& engine() { return engine_; }

  mem::MemoryMap& memory_map() { return map_; }
  mem::CacheHierarchy& caches() { return caches_; }
  mem::Dram& dram() { return dram_; }
  bool has_nic() const { return nic_ != nullptr; }
  nic::DisaggNic& nic();
  const NodeSpec& spec() const { return spec_; }

  /// Bump-allocate `bytes` (line-aligned) with the given placement; throws
  /// std::bad_alloc if the placement cannot be satisfied.
  mem::Addr allocate(std::uint64_t bytes, Placement placement);

  /// Bytes still allocatable per backing.
  std::uint64_t free_bytes(mem::Backing backing) const;

  /// Telemetry for the control plane (Fig. 7 insight feeds this).
  double bus_utilization() const {
    return dram_.utilization(engine_.now());
  }

  /// Turn on the hot-page migration daemon (off by default).
  void enable_migration(const MigrationConfig& cfg);
  PageMigrator* migrator() { return migrator_.get(); }

  /// Register this node and every sim object it owns (DRAM, caches, NIC,
  /// migrator) with `checker` under domain `domain`.  Cluster calls this
  /// once per node at assembly; standalone nodes stay unbound (all
  /// ownership checks free).
  void bind_domain(sim::DomainChecker& checker, sim::DomainId domain);

  TFSIM_DOMAIN_OWNED

 private:
  struct Arena {
    mem::Addr cursor = 0;
    mem::Addr end = 0;
  };
  Arena& arena_for(mem::Backing backing);
  /// Rescan the memory map for regions not yet covered by arenas (hot-plug
  /// may add remote regions at any time).
  void refresh_arenas();

  NodeSpec spec_;
  sim::Engine& engine_;
  net::NodeId net_id_;
  mem::MemoryMap map_;
  mem::CacheHierarchy caches_;
  mem::Dram dram_;
  std::unique_ptr<nic::DisaggNic> nic_;
  std::unique_ptr<PageMigrator> migrator_;

  Arena local_arena_;
  Arena remote_arena_;
  std::uint64_t remote_seen_bytes_ = 0;
};

}  // namespace tfsim::node
