// MemContext: the CPU-side memory interface workloads drive.
//
// A context models one application's memory pipeline: every logical access
// goes through the node's cache hierarchy; misses travel to local DRAM or
// through the disaggregated NIC.  Independent misses overlap up to `mlp`
// outstanding (hardware threads x prefetch streams); dependent misses
// (pointer chasing) serialize.  The context owns a local clock `now` that
// the simulation engine is kept in step with, so background processes
// (contention generators) interleave correctly on shared servers.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "mem/address.hpp"
#include "node/node.hpp"
#include "node/spec.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace tfsim::node {

struct ContextStats {
  std::uint64_t accesses = 0;
  std::vector<std::uint64_t> level_hits;  ///< per cache level
  std::uint64_t local_misses = 0;
  std::uint64_t remote_misses = 0;
  std::uint64_t posted_writebacks = 0;
  std::uint64_t failures = 0;          ///< remote access refused (device lost)
  sim::Time stall_time = 0;            ///< waiting on memory (dependent + window-full)
  sim::Time compute_time = 0;          ///< advance() total
  sim::OnlineStats miss_latency_us;    ///< per-miss issue-to-completion (us)

  std::uint64_t cache_hits() const {
    std::uint64_t h = 0;
    for (auto v : level_hits) h += v;
    return h;
  }
};

class MemContext {
 public:
  MemContext(Node& node, CpuConfig cfg, std::string name = "ctx");

  sim::Time now() const { return now_; }
  /// Jump the context clock forward (e.g. to the engine's current time when
  /// starting after setup).  Never moves backward.
  void seek(sim::Time t);

  /// Pure compute for `dt`.
  void advance(sim::Time dt);

  /// One logical memory access.  `dependent` forces program order to wait
  /// for the data (pointer chase / load-to-use on the critical path).
  void access(mem::Addr addr, bool write, bool dependent = false);
  void read(mem::Addr addr, bool dependent = false) { access(addr, false, dependent); }
  void write(mem::Addr addr) { access(addr, true, false); }

  /// Touch `bytes` starting at `addr` as a streaming (independent) access
  /// pattern; one cache access per line.
  void stream(mem::Addr addr, std::uint64_t bytes, bool write);

  /// Wait for all outstanding misses; returns the new `now`.
  sim::Time drain();

  const ContextStats& stats() const { return stats_; }
  void reset_stats();
  Node& node() { return node_; }
  const CpuConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }
  bool device_failed() const { return device_failed_; }

 private:
  /// Let the engine process background events up to the context clock.
  void sync_engine() { node_.engine().run_until(now_); }
  /// Stall (if needed) until an outstanding slot is free.
  void reserve_slot();
  /// Memory path for a miss issued at now_; returns completion time.
  sim::Time miss_path(mem::Addr addr);
  void posted_writeback(mem::Addr line);

  Node& node_;
  CpuConfig cfg_;
  std::string name_;
  sim::Time now_ = 0;
  // Min-heap of outstanding miss completion times (any slot may free first).
  std::priority_queue<sim::Time, std::vector<sim::Time>, std::greater<>>
      outstanding_;
  ContextStats stats_;
  bool device_failed_ = false;
};

}  // namespace tfsim::node
