// The two-node ThymesisFlow testbed, assembled end to end: borrower and
// lender nodes, the 100 Gb/s point-to-point link, the control plane, and
// the hot-plugged remote region -- the environment every experiment in the
// paper runs in.
//
// Since the scenario-layer refactor this is a thin wrapper over
// node::Cluster: the TestbedSpec converts to the equivalent two-node
// scenario::ScenarioSpec and Cluster does the assembly, so the pair-wise
// prototype and the N-node clusters share one wiring path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "ctrl/control_plane.hpp"
#include "ctrl/registry.hpp"
#include "net/network.hpp"
#include "node/cluster.hpp"
#include "node/context.hpp"
#include "node/node.hpp"
#include "node/spec.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace tfsim::node {

/// The two-node scenario equivalent to `spec` (borrower first, then
/// lender, direct link, one reservation of spec.remote_gib).
scenario::ScenarioSpec to_scenario(const TestbedSpec& spec);

/// Extract a TestbedSpec from a two-node scenario (exactly one borrower
/// and one lender, direct topology); throws std::invalid_argument
/// otherwise.  Bridges scenario files to the Session/Testbed API.
TestbedSpec to_testbed_spec(const scenario::ScenarioSpec& spec);

class Testbed {
 public:
  explicit Testbed(const TestbedSpec& spec = thymesisflow_testbed());

  sim::Engine& engine() { return cluster_.engine(); }
  net::Network& network() { return cluster_.network(); }
  Node& borrower() { return cluster_.borrower(); }
  Node& lender() { return cluster_.lender(); }
  ctrl::NodeRegistry& registry() { return cluster_.registry(); }
  ctrl::ControlPlane& control_plane() { return cluster_.control_plane(); }
  /// The underlying N-node assembly (N = 2 here).
  Cluster& cluster() { return cluster_; }

  /// Reserve spec.remote_gib at the lender and hot-plug it into the
  /// borrower.  Returns false when the FPGA attach handshake times out
  /// (extreme PERIOD; the Fig. 4 failure).
  bool attach_remote() { return cluster_.attach_remote(); }
  bool remote_attached() const { return cluster_.remote_attached(); }
  mem::Addr remote_base() const { return cluster_.remote_base(0); }

  /// Reconfigure the borrower NIC injector between runs.
  void set_period(std::uint64_t period) { cluster_.set_period(period); }
  std::uint64_t period() const { return cluster_.period(); }

  /// A CPU context on the borrower (the node running the workloads).
  MemContext make_context(const CpuConfig& cfg, std::string name = "ctx") {
    return cluster_.make_context(cfg, std::move(name));
  }

  const TestbedSpec& spec() const { return spec_; }

 private:
  TestbedSpec spec_;
  Cluster cluster_;
};

}  // namespace tfsim::node
