// The two-node ThymesisFlow testbed, assembled end to end: borrower and
// lender nodes, the 100 Gb/s point-to-point link, the control plane, and
// the hot-plugged remote region -- the environment every experiment in the
// paper runs in.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "ctrl/control_plane.hpp"
#include "ctrl/registry.hpp"
#include "net/network.hpp"
#include "node/context.hpp"
#include "node/node.hpp"
#include "node/spec.hpp"
#include "sim/engine.hpp"

namespace tfsim::node {

class Testbed {
 public:
  explicit Testbed(const TestbedSpec& spec = thymesisflow_testbed());

  sim::Engine& engine() { return engine_; }
  net::Network& network() { return network_; }
  Node& borrower() { return *borrower_; }
  Node& lender() { return *lender_; }
  ctrl::NodeRegistry& registry() { return registry_; }
  ctrl::ControlPlane& control_plane() { return *cp_; }

  /// Reserve spec.remote_gib at the lender and hot-plug it into the
  /// borrower.  Returns false when the FPGA attach handshake times out
  /// (extreme PERIOD; the Fig. 4 failure).
  bool attach_remote();
  bool remote_attached() const { return remote_base_.has_value(); }
  mem::Addr remote_base() const { return remote_base_.value(); }

  /// Reconfigure the borrower NIC injector between runs.
  void set_period(std::uint64_t period);
  std::uint64_t period() const;

  /// A CPU context on the borrower (the node running the workloads).
  MemContext make_context(const CpuConfig& cfg, std::string name = "ctx") {
    return MemContext(*borrower_, cfg, std::move(name));
  }

  const TestbedSpec& spec() const { return spec_; }

 private:
  TestbedSpec spec_;
  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<Node> borrower_;
  std::unique_ptr<Node> lender_;
  ctrl::NodeRegistry registry_;
  std::uint32_t borrower_reg_ = 0;
  std::uint32_t lender_reg_ = 0;
  std::unique_ptr<ctrl::ControlPlane> cp_;
  std::optional<mem::Addr> remote_base_;
};

}  // namespace tfsim::node
