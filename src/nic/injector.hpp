// Event-level delay injector: the paper's contribution, §III-B.
//
// Two modes:
//  * kPeriodGate  -- faithful to the paper's hardware module: the egress
//    admits one transaction every PERIOD FPGA clock cycles (READY gating,
//    Eq. 1).  Modeled as an IntervalServer with interval = PERIOD x Tclk;
//    the cycle-level RTL model (axi::RateGate) validates the equivalence.
//  * kDistribution -- the paper's stated future work: each request gets an
//    extra delay sampled from a distribution (variable latency *within* an
//    application run) without mutual queueing at the injector.
#pragma once

#include <cstdint>
#include <memory>

#include "net/latency_dist.hpp"
#include "sim/server.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace tfsim::nic {

class DelayInjector {
 public:
  enum class Mode { kPeriodGate, kDistribution };

  /// Period-gate mode.  `fpga_clock_hz` defines Tclk; `period` >= 1, where
  /// period == 1 is the vanilla (injector transparent) system.
  DelayInjector(double fpga_clock_hz, std::uint64_t period);

  /// Distribution mode: per-request extra delay sampled from `dist`.
  explicit DelayInjector(std::unique_ptr<net::LatencyDistribution> dist);

  /// A transaction arriving at the injector at `now` leaves it at the
  /// returned time.
  sim::Time admit(sim::Time now);

  Mode mode() const { return mode_; }
  std::uint64_t period() const { return period_; }
  /// Change PERIOD between runs (period-gate mode only).
  void set_period(std::uint64_t period);
  sim::Time clock_period() const { return tclk_; }
  /// interval = PERIOD x Tclk, the admission spacing under saturation.
  sim::Time interval() const { return tclk_ * period_; }

  std::uint64_t admitted() const { return admitted_; }
  /// Delay added per request (queueing at the gate / sampled value).
  const sim::OnlineStats& added_delay() const { return added_delay_; }

 private:
  Mode mode_;
  // Period-gate state.
  sim::Time tclk_ = 0;
  std::uint64_t period_ = 1;
  sim::IntervalServer gate_{1};
  // Distribution state.
  std::unique_ptr<net::LatencyDistribution> dist_;

  std::uint64_t admitted_ = 0;
  sim::OnlineStats added_delay_;
};

}  // namespace tfsim::nic
