#include "nic/nic.hpp"

#include <stdexcept>

#include "capi/frame.hpp"
#include "capi/opcodes.hpp"
#include "net/packet.hpp"
#include "sim/log.hpp"

namespace tfsim::nic {

namespace {
// Wire sizes per direction (packet header + TL frame [+ line payload]).
constexpr std::uint64_t kCmdOnlyBytes =
    net::kPacketHeaderBytes + capi::kFrameBytes;
constexpr std::uint64_t kDataBytes =
    net::kPacketHeaderBytes + capi::kFrameBytes + mem::kCacheLineBytes;
}  // namespace

DisaggNic::DisaggNic(const NicConfig& cfg, net::Network& network,
                     net::NodeId self, std::string name)
    : cfg_(cfg),
      network_(network),
      self_(self),
      name_(std::move(name)),
      window_(cfg.window_entries, cfg.latency_reserved_entries),
      injector_(std::make_unique<DelayInjector>(cfg.fpga_clock_hz, cfg.period)),
      timeout_(cfg.timeout) {}

void DisaggNic::register_lender(std::uint32_t lender_id, net::NodeId lender_node,
                                mem::Dram* lender_dram,
                                sim::Time lender_nic_latency) {
  if (lender_dram == nullptr) {
    throw std::invalid_argument("DisaggNic: null lender DRAM");
  }
  if (!network_.has_route(self_, lender_node) ||
      !network_.has_route(lender_node, self_)) {
    throw std::invalid_argument("DisaggNic: no route to lender node");
  }
  lenders_[lender_id] = Lender{lender_node, lender_dram, lender_nic_latency};
}

bool DisaggNic::attach() {
  if (device_lost_) return false;
  const sim::Time tclk =
      injector_->mode() == DelayInjector::Mode::kPeriodGate
          ? injector_->clock_period()
          : 0;
  const auto probe =
      timeout_.probe(injector_->mode() == DelayInjector::Mode::kPeriodGate
                         ? injector_->period()
                         : 1,
                     tclk);
  if (!probe.detected) {
    device_lost_ = true;
    attached_ = false;
    TFSIM_LOG(Warn) << name_ << ": FPGA not detected (discovery "
                    << sim::to_ms(probe.discovery_time)
                    << " ms > deadline); disaggregated memory cannot attach";
    return false;
  }
  attached_ = true;
  return true;
}

void DisaggNic::reset_device() {
  device_lost_ = false;
  attached_ = false;
}

void DisaggNic::set_period(std::uint64_t period) {
  injector_->set_period(period);
}

void DisaggNic::set_distribution_injector(
    std::unique_ptr<net::LatencyDistribution> dist) {
  injector_ = std::make_unique<DelayInjector>(std::move(dist));
}

std::optional<AccessTrace> DisaggNic::remote_access(sim::Time now,
                                                    mem::Addr addr, bool write,
                                                    sim::Priority prio) {
  if (!attached_ || device_lost_) {
    ++failures_;
    return std::nullopt;
  }
  const auto xlat = translator_.translate(addr);
  if (!xlat.has_value()) {
    ++failures_;
    return std::nullopt;
  }
  const auto lit = lenders_.find(xlat->lender_id);
  if (lit == lenders_.end()) {
    ++failures_;
    return std::nullopt;
  }
  const Lender& lender = lit->second;

  AccessTrace t;
  t.issued = now;
  // 1. Window admission (stall while all MSHR entries are in flight).
  t.admitted = window_.admission_time(now, prio) + cfg_.processing_latency;
  // 2. Delay injector at the egress (between routing and multiplexing).
  t.gate_out = injector_->admit(t.admitted);
  // 3. Packetize + serialize onto the egress path.
  const std::uint64_t req_bytes = write ? kDataBytes : kCmdOnlyBytes;
  t.tx_done =
      network_.deliver(t.gate_out, self_, lender.node, req_bytes, prio);
  wire_out_ += req_bytes;
  // 4. Lender NIC + lender memory bus (shared with local apps: MCLN).
  t.mem_done = lender.dram->access(t.tx_done + lender.nic_latency,
                                   mem::kCacheLineBytes, prio);
  // 5. Response path (data-carrying for reads).
  const std::uint64_t resp_bytes = write ? kCmdOnlyBytes : kDataBytes;
  const sim::Time resp_arrived = network_.deliver(
      t.mem_done + lender.nic_latency, lender.node, self_, resp_bytes, prio);
  wire_in_ += resp_bytes;
  t.completion = resp_arrived + cfg_.processing_latency;

  window_.record_completion(t.completion, prio);
  ++seq_;
  ++(write ? writes_ : reads_);
  latency_us_.add(sim::to_us(t.completion - t.issued));
  return t;
}

void DisaggNic::reset_stats() {
  reads_ = 0;
  writes_ = 0;
  failures_ = 0;
  wire_out_ = 0;
  wire_in_ = 0;
  latency_us_.reset();
}

}  // namespace tfsim::nic
