#include "nic/nic.hpp"

#include <algorithm>
#include <stdexcept>

#include "capi/frame.hpp"
#include "capi/opcodes.hpp"
#include "net/packet.hpp"
#include "sim/log.hpp"

namespace tfsim::nic {

namespace {
// Wire sizes per direction (packet header + TL frame [+ line payload]).
constexpr std::uint64_t kCmdOnlyBytes =
    net::kPacketHeaderBytes + capi::kFrameBytes;
constexpr std::uint64_t kDataBytes =
    net::kPacketHeaderBytes + capi::kFrameBytes + mem::kCacheLineBytes;
}  // namespace

namespace {
std::uint16_t tag_space(std::uint32_t window_entries) {
  // One response-matching tag per window slot, clamped to the 16-bit aCTag.
  return static_cast<std::uint16_t>(
      std::min<std::uint32_t>(window_entries, 0xFFFF));
}
}  // namespace

DisaggNic::DisaggNic(const NicConfig& cfg, net::Network& network,
                     net::NodeId self, std::string name)
    : cfg_(cfg),
      network_(network),
      self_(self),
      name_(std::move(name)),
      window_(cfg.window_entries, cfg.latency_reserved_entries),
      injector_(std::make_unique<DelayInjector>(cfg.fpga_clock_hz, cfg.period)),
      timeout_(cfg.timeout),
      replay_(cfg.replay),
      credits_(cfg.window_entries),
      tags_(tag_space(cfg.window_entries)) {}

void DisaggNic::register_lender(std::uint32_t lender_id, net::NodeId lender_node,
                                mem::Dram* lender_dram,
                                sim::Time lender_nic_latency) {
  if (lender_dram == nullptr) {
    throw std::invalid_argument("DisaggNic: null lender DRAM");
  }
  if (!network_.has_route(self_, lender_node) ||
      !network_.has_route(lender_node, self_)) {
    throw std::invalid_argument("DisaggNic: no route to lender node");
  }
  lenders_[lender_id] = Lender{lender_node, lender_dram, lender_nic_latency};
}

void DisaggNic::set_lender_down(std::uint32_t lender_id, sim::Time at) {
  const auto it = lenders_.find(lender_id);
  if (it == lenders_.end()) {
    throw std::invalid_argument("DisaggNic: unknown lender");
  }
  it->second.down_at = at;
}

bool DisaggNic::lender_down(std::uint32_t lender_id, sim::Time at) const {
  const auto it = lenders_.find(lender_id);
  return it != lenders_.end() && at >= it->second.down_at;
}

bool DisaggNic::attach() {
  if (device_lost_) return false;
  const sim::Time tclk =
      injector_->mode() == DelayInjector::Mode::kPeriodGate
          ? injector_->clock_period()
          : 0;
  const auto probe =
      timeout_.probe(injector_->mode() == DelayInjector::Mode::kPeriodGate
                         ? injector_->period()
                         : 1,
                     tclk);
  if (!probe.detected) {
    device_lost_ = true;
    attached_ = false;
    TFSIM_LOG(Warn) << name_ << ": FPGA not detected (discovery "
                    << sim::to_ms(probe.discovery_time)
                    << " ms > deadline); disaggregated memory cannot attach";
    return false;
  }
  attached_ = true;
  return true;
}

void DisaggNic::reset_device() {
  device_lost_ = false;
  attached_ = false;
}

void DisaggNic::set_period(std::uint64_t period) {
  injector_->set_period(period);
}

void DisaggNic::set_distribution_injector(
    std::unique_ptr<net::LatencyDistribution> dist) {
  injector_ = std::make_unique<DelayInjector>(std::move(dist));
}

std::optional<sim::Time> DisaggNic::attempt_once(sim::Time depart,
                                                 Lender& lender, bool write,
                                                 sim::Priority prio,
                                                 std::uint32_t attempt,
                                                 AccessTrace& t) {
  // 3. Packetize + serialize onto the egress path.  Lost frames still cost
  //    the sender their wire time (they were serialized before vanishing).
  //    The attempt number salts the ECMP stripe, so retries re-roll the
  //    spine pick instead of hammering a dead parallel link.
  const std::uint64_t req_bytes = write ? kDataBytes : kCmdOnlyBytes;
  const auto req = network_.deliver_ex(depart, self_, lender.node, req_bytes,
                                       prio, attempt);
  wire_out_ += req_bytes;
  if (req.outcome == net::FaultOutcome::kLost ||
      req.outcome == net::FaultOutcome::kFlapDropped ||
      req.outcome == net::FaultOutcome::kSwitchDropped) {
    replay_.count_frame_lost();
    return std::nullopt;
  }
  if (req.outcome == net::FaultOutcome::kCorrupted) {
    // CRC check at the lender NIC rejects the frame; no response is sent.
    replay_.count_crc_drop();
    return std::nullopt;
  }
  if (req.arrival >= lender.down_at) {
    // The request reached a dead lender: from the borrower's side this is
    // indistinguishable from loss -- the retransmission timer fires.
    replay_.count_frame_lost();
    return std::nullopt;
  }
  t.tx_done = req.arrival;
  // 4. Lender NIC + lender memory bus (shared with local apps: MCLN).  The
  //    frame has crossed the network boundary, so activity transfers to the
  //    lender's domain -- the one mutation path that legitimately leaves the
  //    borrower's call graph, and exactly what PDES will turn into a
  //    cross-partition message.
  {
    const sim::DomainHandle& ld = lender.dram->tfsim_domain();
    const sim::DomainGuard g(ld.checker(), ld.id(), "net:deliver");
    t.mem_done = lender.dram->access(req.arrival + lender.nic_latency,
                                     mem::kCacheLineBytes, prio);
  }
  // 5. Response path (data-carrying for reads).
  const std::uint64_t resp_bytes = write ? kCmdOnlyBytes : kDataBytes;
  const auto resp = network_.deliver_ex(t.mem_done + lender.nic_latency,
                                        lender.node, self_, resp_bytes, prio,
                                        attempt);
  if (resp.outcome == net::FaultOutcome::kLost ||
      resp.outcome == net::FaultOutcome::kFlapDropped ||
      resp.outcome == net::FaultOutcome::kSwitchDropped) {
    replay_.count_frame_lost();
    return std::nullopt;
  }
  wire_in_ += resp_bytes;  // the frame reached the borrower (even corrupted)
  if (resp.outcome == net::FaultOutcome::kCorrupted) {
    replay_.count_crc_drop();
    return std::nullopt;
  }
  return resp.arrival;
}

void DisaggNic::note_abandoned(std::uint32_t lender_id, Lender& lender) {
  ++lender.consecutive_abandons;
  if (lender.detached ||
      lender.consecutive_abandons < replay_.config().detach_threshold) {
    return;
  }
  const std::size_t unmapped = translator_.remove_lender_segments(lender_id);
  lender.detached = true;
  ++detached_lenders_;
  TFSIM_LOG(Warn) << name_ << ": lender " << lender_id << " detached after "
                  << lender.consecutive_abandons
                  << " consecutive abandonments (" << unmapped
                  << " segment(s) unmapped)";
}

std::optional<AccessTrace> DisaggNic::remote_access(sim::Time now,
                                                    mem::Addr addr, bool write,
                                                    sim::Priority prio) {
  TFSIM_DOMAIN_TOUCH("DisaggNic::remote_access");
  if (!attached_ || device_lost_) {
    ++failures_;
    return std::nullopt;
  }
  const auto xlat = translator_.translate(addr);
  if (!xlat.has_value()) {
    ++failures_;
    return std::nullopt;
  }
  const auto lit = lenders_.find(xlat->lender_id);
  if (lit == lenders_.end() || lit->second.detached) {
    ++failures_;
    return std::nullopt;
  }
  Lender& lender = lit->second;

  AccessTrace t;
  t.issued = now;
  // 1. Window admission (stall while all MSHR entries are in flight).
  t.admitted = window_.admission_time(now, prio) + cfg_.processing_latency;
  // Protocol bookkeeping: the transaction holds one TL credit and one
  // response-matching tag for its whole life, retries included; both must
  // come home on every exit path (check_quiesced asserts they did).
  const auto tag = tags_.allocate();
  const bool credit = credits_.try_consume();
  if (!tag.has_value() || !credit) {
    // Window sizing guarantees a slot implies a tag and a credit; reaching
    // this means a reclamation bug upstream, so fail the access loudly.
    if (tag.has_value()) tags_.release(*tag);
    if (credit) credits_.restore();
    ++failures_;
    return std::nullopt;
  }

  sim::Time depart = t.admitted;
  for (std::uint32_t attempt = 0;; ++attempt) {
    // 2. Delay injector at the egress (between routing and multiplexing);
    //    retransmitted frames traverse it again like any other egress.
    const sim::Time gate = injector_->admit(depart);
    if (attempt == 0) t.gate_out = gate;
    const auto done = attempt_once(gate, lender, write, prio, attempt, t);
    if (done.has_value()) {
      t.completion = *done + cfg_.processing_latency;
      t.retries = attempt;
      if (attempt > 0) replay_.count_recovered();
      lender.consecutive_abandons = 0;
      break;
    }
    if (attempt >= replay_.config().max_retries) {
      // Abandon: surface a fail response at the final timer expiry and
      // reclaim the window slot, tag, and credit.
      replay_.count_abandoned();
      window_.record_completion(replay_.retry_at(gate, attempt), prio);
      tags_.release(*tag);
      credits_.restore();
      ++failures_;
      note_abandoned(xlat->lender_id, lender);
      return std::nullopt;
    }
    replay_.count_retry();
    // The retransmission timer was armed when this attempt left the egress;
    // the next attempt departs when it expires.
    depart = replay_.retry_at(gate, attempt);
  }

  window_.record_completion(t.completion, prio);
  tags_.release(*tag);
  credits_.restore();
  ++seq_;
  ++(write ? writes_ : reads_);
  latency_us_.add(sim::to_us(t.completion - t.issued));
  return t;
}

void DisaggNic::reset_stats() {
  reads_ = 0;
  writes_ = 0;
  failures_ = 0;
  wire_out_ = 0;
  wire_in_ = 0;
  latency_us_.reset();
  replay_.reset_stats();
}

}  // namespace tfsim::nic
