// Address translation between borrower and lender address spaces.
//
// The disaggregated-memory NIC translates borrower physical addresses in a
// hot-plugged remote region into (lender node, lender-local address) before
// encapsulation.  Segment-based: each reservation contributes one segment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/address.hpp"

namespace tfsim::nic {

struct Segment {
  mem::Range borrower;        ///< borrower physical range
  mem::Addr lender_base = 0;  ///< base on the lender node
  std::uint32_t lender_id = 0;
  std::string name;
};

struct Translation {
  std::uint32_t lender_id = 0;
  mem::Addr lender_addr = 0;
};

class AddressTranslator {
 public:
  /// Install a segment; throws std::invalid_argument on borrower-range
  /// overlap with an existing segment.
  void add_segment(Segment seg);
  /// Remove by name (hot-unplug); returns false if absent.
  bool remove_segment(const std::string& name);
  /// Remove every segment mapped to `lender_id` (graceful detach after the
  /// lender is declared dead); returns how many were unmapped.
  std::size_t remove_lender_segments(std::uint32_t lender_id);

  /// Translate a borrower physical address; nullopt if unmapped (the NIC
  /// raises a fail response rather than accessing arbitrary lender memory).
  std::optional<Translation> translate(mem::Addr borrower_addr) const;

  const std::vector<Segment>& segments() const { return segments_; }
  std::uint64_t mapped_bytes() const;

 private:
  std::vector<Segment> segments_;
};

}  // namespace tfsim::nic
