// OpenCAPI-DL-style replay window: retransmission timers with bounded
// exponential backoff.
//
// The DL layer keeps every transmitted frame in a replay buffer until it is
// acknowledged; a frame whose timer expires is retransmitted, and after a
// bounded number of attempts the transaction is abandoned and its tag and
// credit are reclaimed.  In the analytic model the replay buffer never
// stores payloads -- only the timing policy matters: a failed attempt costs
// exactly one timer interval before the next attempt departs, so loss and
// corruption translate into latency instead of hung transactions.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/units.hpp"

namespace tfsim::nic {

struct ReplayConfig {
  /// Retransmission timer for the first attempt (armed when the frame
  /// leaves the egress): covers the full round trip plus slack.
  sim::Time retry_timeout = sim::from_us(25.0);
  /// Timer multiplier per retry (exponential backoff).
  double backoff = 2.0;
  /// Retransmissions after the initial attempt; past this the transaction
  /// is abandoned and surfaced to the host as a fail response.
  std::uint32_t max_retries = 8;
  /// Consecutive abandonments against one lender that trigger a graceful
  /// detach (the lender is declared dead and its segments unmapped) instead
  /// of retrying into a black hole forever.
  std::uint32_t detach_threshold = 4;
};

/// Pure retransmission-timing policy plus the replay-path statistics.
class ReplayWindow {
 public:
  explicit ReplayWindow(const ReplayConfig& cfg) : cfg_(cfg) {
    if (cfg_.retry_timeout == 0) {
      throw std::invalid_argument("ReplayWindow: retry timeout must be > 0");
    }
    if (cfg_.backoff < 1.0) {
      throw std::invalid_argument("ReplayWindow: backoff must be >= 1");
    }
  }

  /// When the retransmission timer for attempt `attempt` (0-based) of a
  /// frame sent at `sent` expires.  Saturates instead of wrapping for
  /// absurd backoff/attempt combinations.
  sim::Time retry_at(sim::Time sent, std::uint32_t attempt) const {
    double timeout = static_cast<double>(cfg_.retry_timeout);
    for (std::uint32_t i = 0; i < attempt; ++i) timeout *= cfg_.backoff;
    const double expiry = static_cast<double>(sent) + timeout;
    if (expiry >= static_cast<double>(sim::kTimeNever)) return sim::kTimeNever;
    return static_cast<sim::Time>(expiry);
  }

  const ReplayConfig& config() const { return cfg_; }

  // --- statistics (owned here so the NIC resets them as one unit) ---------
  void count_retry() { ++retries_; }
  void count_abandoned() { ++abandoned_; }
  void count_crc_drop() { ++crc_drops_; }
  void count_frame_lost() { ++frames_lost_; }
  void count_recovered() { ++recovered_; }

  /// Retransmissions issued (one per expired timer).
  std::uint64_t retries() const { return retries_; }
  /// Transactions given up after max_retries (tag/credit reclaimed).
  std::uint64_t abandoned() const { return abandoned_; }
  /// Frames dropped at a CRC check (either direction).
  std::uint64_t crc_drops() const { return crc_drops_; }
  /// Frames that vanished on the wire (loss, flap, dead lender).
  std::uint64_t frames_lost() const { return frames_lost_; }
  /// Transactions that needed >= 1 retry but completed.
  std::uint64_t recovered() const { return recovered_; }

  void reset_stats() {
    retries_ = abandoned_ = crc_drops_ = frames_lost_ = recovered_ = 0;
  }

 private:
  ReplayConfig cfg_;
  std::uint64_t retries_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t crc_drops_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t recovered_ = 0;
};

}  // namespace tfsim::nic
