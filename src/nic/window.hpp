// Outstanding-request window (MSHR-style) of the compute-side NIC.
//
// The FPGA tracks a bounded number of in-flight remote transactions; a new
// LLC miss stalls once the window is full.  Because completions free slots
// in time order, the window reduces to ordered sets of completion times: an
// arrival when full is admitted exactly when the earliest in-flight request
// completes.  window entries x cache line is the bandwidth-delay product the
// paper measures as constant (~16.5 kB, Fig. 3).
//
// QoS extension: `latency_reserved` slots are usable only by the
// latency-sensitive class, so bulk traffic cannot occupy the entire window
// (the MSHR-partitioning analogue of network packet prioritization).
#pragma once

#include <cstdint>
#include <set>
#include <stdexcept>

#include "sim/server.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace tfsim::nic {

class RequestWindow {
 public:
  explicit RequestWindow(std::uint32_t entries,
                         std::uint32_t latency_reserved = 0)
      : entries_(entries), latency_reserved_(latency_reserved) {
    if (entries_ == 0) {
      throw std::invalid_argument("RequestWindow: needs >= 1 entry");
    }
    if (latency_reserved_ >= entries_) {
      throw std::invalid_argument(
          "RequestWindow: reservation must leave bulk capacity");
    }
  }

  /// Earliest time a request arriving at `now` may enter the pipeline.
  /// Consumes the slot it is granted against: each admission_time call must
  /// be paired with exactly one record_completion.
  sim::Time admission_time(sim::Time now,
                           sim::Priority prio = sim::Priority::kBulk) {
    retire(now, bulk_);
    retire(now, latency_);
    // Sample occupancy after retirement as well as after insertion
    // (record_completion): sampling only post-insert never observes the
    // drained states and biases the mean upward.
    occupancy_.add(static_cast<double>(bulk_.size() + latency_.size()));
    if (prio == sim::Priority::kBulk) {
      // Bulk may not consume the reserved slots.
      const std::size_t bulk_cap = entries_ - latency_reserved_;
      if (bulk_.size() >= bulk_cap) {
        ++stalls_;
        return take_earliest(bulk_);
      }
    }
    if (bulk_.size() + latency_.size() >= entries_) {
      ++stalls_;
      auto& victim =
          (!bulk_.empty() &&
           (latency_.empty() || *bulk_.begin() <= *latency_.begin()))
              ? bulk_
              : latency_;
      return take_earliest(victim);
    }
    return now;
  }

  /// Record the completion time of an admitted request.  Completions may
  /// arrive out of order (QoS classes overtake each other on the network).
  void record_completion(sim::Time completion,
                         sim::Priority prio = sim::Priority::kBulk) {
    auto& mine = prio == sim::Priority::kBulk ? bulk_ : latency_;
    mine.insert(completion);
    occupancy_.add(static_cast<double>(bulk_.size() + latency_.size()));
  }

  std::uint32_t entries() const { return entries_; }
  std::uint32_t latency_reserved() const { return latency_reserved_; }
  std::size_t in_flight() const { return bulk_.size() + latency_.size(); }
  /// Arrivals that found their class's capacity exhausted.
  std::uint64_t stalls() const { return stalls_; }
  const sim::OnlineStats& occupancy_stats() const { return occupancy_; }

 private:
  static void retire(sim::Time now, std::multiset<sim::Time>& set) {
    while (!set.empty() && *set.begin() <= now) set.erase(set.begin());
  }
  static sim::Time take_earliest(std::multiset<sim::Time>& set) {
    const sim::Time t = *set.begin();
    set.erase(set.begin());
    return t;
  }

  std::uint32_t entries_;
  std::uint32_t latency_reserved_;
  std::multiset<sim::Time> bulk_;
  std::multiset<sim::Time> latency_;
  std::uint64_t stalls_ = 0;
  sim::OnlineStats occupancy_;
};

}  // namespace tfsim::nic
