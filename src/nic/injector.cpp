#include "nic/injector.hpp"

#include <stdexcept>

namespace tfsim::nic {

DelayInjector::DelayInjector(double fpga_clock_hz, std::uint64_t period)
    : mode_(Mode::kPeriodGate),
      tclk_(sim::clock_period(fpga_clock_hz)),
      period_(period),
      gate_(tclk_ * period) {
  if (period_ == 0) {
    throw std::invalid_argument("DelayInjector: PERIOD must be >= 1");
  }
  if (tclk_ == 0) {
    throw std::invalid_argument("DelayInjector: clock too fast for ps grid");
  }
}

DelayInjector::DelayInjector(std::unique_ptr<net::LatencyDistribution> dist)
    : mode_(Mode::kDistribution), dist_(std::move(dist)) {
  if (!dist_) {
    throw std::invalid_argument("DelayInjector: null distribution");
  }
}

void DelayInjector::set_period(std::uint64_t period) {
  if (mode_ != Mode::kPeriodGate) {
    throw std::logic_error("DelayInjector: set_period in distribution mode");
  }
  if (period == 0) {
    throw std::invalid_argument("DelayInjector: PERIOD must be >= 1");
  }
  period_ = period;
  gate_.set_interval(tclk_ * period);
}

sim::Time DelayInjector::admit(sim::Time now) {
  sim::Time out = now;
  if (mode_ == Mode::kPeriodGate) {
    // PERIOD == 1: every cycle is admissible; transparent (the vanilla
    // prototype), so skip even the cycle-boundary alignment.
    out = period_ == 1 ? now : gate_.request(now);
  } else {
    out = now + dist_->sample();
  }
  ++admitted_;
  added_delay_.add(sim::to_us(out - now));
  return out;
}

}  // namespace tfsim::nic
