// FPGA detection / attach timeout model (Fig. 4 reliability cliff).
//
// Attaching disaggregated memory requires the host to discover and
// configure the compute-side FPGA: a burst of sequential configuration
// reads over the same gated egress path.  With the injector active, the
// discovery burst takes ~reads x PERIOD x Tclk; if that exceeds the host's
// detection deadline the device is declared lost and the memory cannot be
// attached -- exactly what the paper observes at PERIOD = 10000 (an
// effective delay of ~4 ms) while PERIOD = 1000 (~400 us) still attaches.
#pragma once

#include <cstdint>

#include "sim/units.hpp"

namespace tfsim::nic {

struct TimeoutConfig {
  /// Sequential configuration-space reads in the discovery handshake.
  std::uint32_t discovery_reads = 129;
  /// Fixed cost of the handshake absent injection.
  sim::Time base_cost = sim::from_us(50.0);
  /// Host-side detection deadline.
  sim::Time detection_deadline = sim::from_ms(2.0);
};

struct AttachProbe {
  sim::Time discovery_time = 0;
  bool detected = false;
};

class TimeoutDetector {
 public:
  explicit TimeoutDetector(const TimeoutConfig& cfg = TimeoutConfig())
      : cfg_(cfg) {}

  /// Probe with the injector configured at `period` on a clock of period
  /// `tclk`: would the FPGA still be detected?
  AttachProbe probe(std::uint64_t period, sim::Time tclk) const {
    AttachProbe p;
    p.discovery_time =
        cfg_.base_cost + cfg_.discovery_reads * period * tclk;
    p.detected = p.discovery_time <= cfg_.detection_deadline;
    return p;
  }

  const TimeoutConfig& config() const { return cfg_; }

 private:
  TimeoutConfig cfg_;
};

}  // namespace tfsim::nic
