// FPGA detection / attach timeout model (Fig. 4 reliability cliff).
//
// Attaching disaggregated memory requires the host to discover and
// configure the compute-side FPGA: a burst of sequential configuration
// reads over the same gated egress path.  With the injector active, the
// discovery burst takes ~reads x PERIOD x Tclk; if that exceeds the host's
// detection deadline the device is declared lost and the memory cannot be
// attached -- exactly what the paper observes at PERIOD = 10000 (an
// effective delay of ~4 ms) while PERIOD = 1000 (~400 us) still attaches.
#pragma once

#include <cstdint>

#include "sim/units.hpp"

namespace tfsim::nic {

struct TimeoutConfig {
  /// Sequential configuration-space reads in the discovery handshake.
  std::uint32_t discovery_reads = 129;
  /// Fixed cost of the handshake absent injection.
  sim::Time base_cost = sim::from_us(50.0);
  /// Host-side detection deadline.
  sim::Time detection_deadline = sim::from_ms(2.0);
};

struct AttachProbe {
  sim::Time discovery_time = 0;
  bool detected = false;
};

class TimeoutDetector {
 public:
  explicit TimeoutDetector(const TimeoutConfig& cfg = TimeoutConfig())
      : cfg_(cfg) {}

  /// Probe with the injector configured at `period` on a clock of period
  /// `tclk`: would the FPGA still be detected?  discovery_reads x period x
  /// tclk saturates instead of wrapping, so a huge-PERIOD sweep point reads
  /// as "never detected", not as a bogus small discovery time.
  AttachProbe probe(std::uint64_t period, sim::Time tclk) const {
    AttachProbe p;
    std::uint64_t gated = sat_mul(cfg_.discovery_reads, period);
    gated = sat_mul(gated, tclk);
    p.discovery_time = gated > sim::kTimeNever - cfg_.base_cost
                           ? sim::kTimeNever
                           : cfg_.base_cost + gated;
    p.detected = p.discovery_time <= cfg_.detection_deadline;
    return p;
  }

  const TimeoutConfig& config() const { return cfg_; }

 private:
  static std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0) return 0;
    if (a > ~std::uint64_t{0} / b) return ~std::uint64_t{0};
    return a * b;
  }

  TimeoutConfig cfg_;
};

}  // namespace tfsim::nic
