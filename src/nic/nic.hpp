// The disaggregated-memory NIC (compute/borrower side), assembled.
//
// Pipeline per remote cache-line transaction (Fig. 1 of the paper):
//   LLC miss -> request window (MSHR) -> [delay injector] -> packetizer
//   -> egress link -> lender NIC -> lender memory bus -> response path back.
// All stages are analytic FIFO servers, so each access costs O(1) host time;
// the cycle-level AXI model in src/axi validates the injector stage.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "capi/credit.hpp"
#include "mem/dram.hpp"
#include "net/network.hpp"
#include "nic/injector.hpp"
#include "nic/replay.hpp"
#include "nic/timeout.hpp"
#include "nic/translator.hpp"
#include "nic/window.hpp"
#include "sim/domain.hpp"
#include "sim/stats.hpp"
#include "sim/units.hpp"

namespace tfsim::nic {

struct NicConfig {
  /// Outstanding-transaction window; 129 entries x 128 B = 16.5 kB BDP.
  std::uint32_t window_entries = 129;
  /// Window slots reserved for the latency-sensitive QoS class (0 = off).
  std::uint32_t latency_reserved_entries = 0;
  /// FPGA clock driving the injector's COUNTER (Tclk = 3.125 ns).
  double fpga_clock_hz = 320e6;
  /// Injection PERIOD; 1 = vanilla ThymesisFlow.
  std::uint64_t period = 1;
  /// Fixed pipeline cost through each NIC crossing (OpenCAPI TL/DL,
  /// packetizer, AFU logic).
  sim::Time processing_latency = sim::from_ns(120.0);
  TimeoutConfig timeout;
  /// DL replay window: retransmission timers + bounded backoff for frames
  /// lost or corrupted on a faulty fabric (net::FaultyLink).
  ReplayConfig replay;
};

/// Per-access time breakdown (for validation and tests).
struct AccessTrace {
  sim::Time issued = 0;      ///< LLC miss reached the NIC
  sim::Time admitted = 0;    ///< entered the pipeline (window slot)
  sim::Time gate_out = 0;    ///< left the delay injector (first attempt)
  sim::Time tx_done = 0;     ///< request delivered to lender NIC
  sim::Time mem_done = 0;    ///< lender memory access complete
  sim::Time completion = 0;  ///< response received at borrower
  std::uint32_t retries = 0; ///< retransmissions this access needed
};

class DisaggNic {
 public:
  DisaggNic(const NicConfig& cfg, net::Network& network, net::NodeId self,
            std::string name = "disagg-nic");

  /// Register a lender reachable through the network.  `lender_dram` must
  /// outlive the NIC; `lender_nic_latency` is the remote NIC's fixed cost.
  void register_lender(std::uint32_t lender_id, net::NodeId lender_node,
                       mem::Dram* lender_dram,
                       sim::Time lender_nic_latency = sim::from_ns(120.0));

  /// Declare a lender dead from `at` on: requests reaching it at or after
  /// that time get no response (mid-run node failure).  After
  /// replay.detach_threshold consecutive abandonments the NIC gracefully
  /// detaches the lender -- its segments are unmapped so later accesses
  /// fail fast instead of burning a full retry ladder each.
  void set_lender_down(std::uint32_t lender_id, sim::Time at);
  bool lender_down(std::uint32_t lender_id, sim::Time at) const;
  /// Lenders detached after abandonment storms (graceful degradation).
  std::uint32_t detached_lenders() const { return detached_lenders_; }

  AddressTranslator& translator() { return translator_; }
  const AddressTranslator& translator() const { return translator_; }

  /// Attach handshake: discovers the FPGA through the gated path.  Fails
  /// (returns false and marks the device lost) when discovery exceeds the
  /// host detection deadline -- the Fig. 4 crash mode.
  bool attach();
  bool attached() const { return attached_; }
  /// Clear the device-lost state (host re-initializes the card).
  void reset_device();

  /// Full path for one cache-line transaction on the *borrower physical*
  /// address `addr`.  Returns nullopt if the address is unmapped or the
  /// device is lost.  FIFO model: callers must present non-decreasing `now`.
  /// `prio` selects the network QoS class (latency-sensitive traffic
  /// bypasses bulk backlog on every hop).
  std::optional<AccessTrace> remote_access(
      sim::Time now, mem::Addr addr, bool write,
      sim::Priority prio = sim::Priority::kBulk);

  /// Reconfigure the injector PERIOD (between runs, as in the paper).
  void set_period(std::uint64_t period);
  std::uint64_t period() const { return injector_->period(); }
  /// Swap in a distribution-mode injector (future-work extension).
  void set_distribution_injector(std::unique_ptr<net::LatencyDistribution> dist);

  DelayInjector& injector() { return *injector_; }
  RequestWindow& window() { return window_; }
  const ReplayWindow& replay() const { return replay_; }
  const capi::CreditPool& credits() const { return credits_; }
  const capi::TagAllocator& tags() const { return tags_; }
  const NicConfig& config() const { return cfg_; }

  /// Assert the protocol books balance with no transaction in flight:
  /// every credit restored, every tag released (replay reclamation held up
  /// even through abandonments).  Throws std::logic_error otherwise.
  void check_quiesced() const {
    credits_.check_quiesced();
    tags_.check_quiesced();
  }

  // --- statistics -----------------------------------------------------
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t wire_bytes_out() const { return wire_out_; }
  std::uint64_t wire_bytes_in() const { return wire_in_; }
  /// End-to-end remote access latency (us).
  const sim::Histogram& latency_us() const { return latency_us_; }
  void reset_stats();

  TFSIM_DOMAIN_OWNED

 private:
  struct Lender {
    net::NodeId node = 0;
    mem::Dram* dram = nullptr;
    sim::Time nic_latency = 0;
    sim::Time down_at = sim::kTimeNever;  ///< dead from this time on
    std::uint32_t consecutive_abandons = 0;
    bool detached = false;
  };

  /// One request/response round trip (no retry logic); nullopt when a frame
  /// was lost/dropped/corrupted or the lender is down at request arrival.
  /// `attempt` salts the fabric's ECMP stripe, so a retransmission can take
  /// a different parallel spine path than the attempt that died.
  std::optional<sim::Time> attempt_once(sim::Time depart, Lender& lender,
                                        bool write, sim::Priority prio,
                                        std::uint32_t attempt, AccessTrace& t);
  void note_abandoned(std::uint32_t lender_id, Lender& lender);

  NicConfig cfg_;
  net::Network& network_;
  net::NodeId self_;
  std::string name_;
  bool attached_ = false;
  bool device_lost_ = false;

  AddressTranslator translator_;
  RequestWindow window_;
  std::unique_ptr<DelayInjector> injector_;
  TimeoutDetector timeout_;
  ReplayWindow replay_;
  capi::CreditPool credits_;
  capi::TagAllocator tags_;
  std::map<std::uint32_t, Lender> lenders_;
  std::uint32_t detached_lenders_ = 0;

  std::uint32_t seq_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t wire_out_ = 0;
  std::uint64_t wire_in_ = 0;
  sim::Histogram latency_us_;
};

}  // namespace tfsim::nic
