#include "nic/translator.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfsim::nic {

void AddressTranslator::add_segment(Segment seg) {
  if (seg.borrower.size == 0) {
    throw std::invalid_argument("AddressTranslator: empty segment " + seg.name);
  }
  for (const auto& s : segments_) {
    if (s.borrower.overlaps(seg.borrower)) {
      throw std::invalid_argument("AddressTranslator: segment " + seg.name +
                                  " overlaps " + s.name);
    }
  }
  segments_.push_back(std::move(seg));
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.borrower.base < b.borrower.base;
            });
}

bool AddressTranslator::remove_segment(const std::string& name) {
  const auto it =
      std::find_if(segments_.begin(), segments_.end(),
                   [&](const Segment& s) { return s.name == name; });
  if (it == segments_.end()) return false;
  segments_.erase(it);
  return true;
}

std::size_t AddressTranslator::remove_lender_segments(std::uint32_t lender_id) {
  const auto first = std::remove_if(
      segments_.begin(), segments_.end(),
      [&](const Segment& s) { return s.lender_id == lender_id; });
  const auto removed = static_cast<std::size_t>(segments_.end() - first);
  segments_.erase(first, segments_.end());
  return removed;
}

std::optional<Translation> AddressTranslator::translate(
    mem::Addr borrower_addr) const {
  auto it = std::upper_bound(segments_.begin(), segments_.end(), borrower_addr,
                             [](mem::Addr a, const Segment& s) {
                               return a < s.borrower.base;
                             });
  if (it == segments_.begin()) return std::nullopt;
  --it;
  if (!it->borrower.contains(borrower_addr)) return std::nullopt;
  return Translation{it->lender_id,
                     it->lender_base + (borrower_addr - it->borrower.base)};
}

std::uint64_t AddressTranslator::mapped_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : segments_) total += s.borrower.size;
  return total;
}

}  // namespace tfsim::nic
