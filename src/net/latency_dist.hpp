// Latency distributions for variable network delay.
//
// The paper's injector adds a *fixed* delay per run and flags
// distribution-driven injection as future work (§VII).  We implement both:
// a LatencyDistribution samples per-request extra delay; kFixed reproduces
// the paper, the others model the short-timescale variability production
// fabrics exhibit (Pingmesh/Swift-style tails).
#pragma once

#include <memory>
#include <string>

#include "sim/rng.hpp"
#include "sim/units.hpp"

namespace tfsim::net {

enum class DistKind {
  kFixed,        ///< constant (the paper's injector)
  kUniform,      ///< uniform in [0, 2*mean]
  kExponential,  ///< exponential(mean)
  kLognormal,    ///< lognormal, sigma fixed at 0.8, mu set from mean
  kPareto,       ///< heavy tail, alpha = 2.5, scale set from mean
};

DistKind parse_dist_kind(const std::string& name);
std::string to_string(DistKind kind);

class LatencyDistribution {
 public:
  LatencyDistribution(DistKind kind, sim::Time mean, std::uint64_t seed = 42);

  /// Sample one per-request delay.
  sim::Time sample();

  DistKind kind() const { return kind_; }
  sim::Time mean() const { return mean_; }

 private:
  DistKind kind_;
  sim::Time mean_;
  sim::Rng rng_;
  double lognormal_mu_ = 0.0;
  static constexpr double kLognormalSigma = 0.8;
  static constexpr double kParetoAlpha = 2.5;
  double pareto_scale_ = 0.0;
};

}  // namespace tfsim::net
