// Datacenter fabric: nodes attached to switches, shortest-path (static)
// routing, per-hop links with output queueing.
//
// The prototype the paper characterizes is a two-node point-to-point cable;
// scaling beyond rack-scale introduces a switched, shared network.  This
// model supports both: a direct topology (one link pair), and a star/fat
// topology where borrower-lender pairs share switch uplinks -- the source of
// the contention the paper emulates with delay injection.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/domain.hpp"

namespace tfsim::sim {
class ParallelEngine;
}  // namespace tfsim::sim

namespace tfsim::net {

/// End-to-end result of a delivery attempt across a (possibly faulty) path.
struct Delivery {
  /// Arrival time at the last hop the frame reached.  For kDelivered and
  /// kCorrupted this is the destination arrival; for lost frames it is when
  /// the loss point was reached (the sender only learns via its own timer).
  sim::Time arrival = 0;
  FaultOutcome outcome = FaultOutcome::kDelivered;

  bool delivered() const { return outcome == FaultOutcome::kDelivered; }
};

class Network {
 public:
  /// Register a node; returns its id.
  NodeId add_node(const std::string& name);

  /// Create a unidirectional link between two registered nodes.  Multiple
  /// hops between the same pair are allowed (multi-hop paths are built from
  /// per-hop links via add_route).
  void connect(NodeId from, NodeId to, const LinkConfig& cfg);

  /// Declare the path (sequence of already-connected hops) from src to dst.
  /// A direct connect() implicitly adds the one-hop route.
  void add_route(NodeId src, NodeId dst, std::vector<std::pair<NodeId, NodeId>> hops);

  /// Deliver `wire_bytes` from src to dst starting at `now`; returns arrival
  /// time after traversing every hop (serialization + queueing at each).
  /// Fault-oblivious view: equals deliver_ex(...).arrival (and consumes the
  /// same fault decisions), for callers that model the wire as reliable.
  sim::Time deliver(sim::Time now, NodeId src, NodeId dst,
                    std::uint64_t wire_bytes,
                    sim::Priority prio = sim::Priority::kBulk);

  /// Fault-aware delivery: traverses hops until the frame is delivered or
  /// dropped.  Loss/flap at any hop ends the traversal; corruption travels
  /// on (the CRC is only checked at the destination NIC).
  Delivery deliver_ex(sim::Time now, NodeId src, NodeId dst,
                      std::uint64_t wire_bytes,
                      sim::Priority prio = sim::Priority::kBulk);

  /// Minimum propagation delay over every connected link; kTimeNever when
  /// the fabric has no links yet.  This is the sound conservative lookahead
  /// for partitioning the engine by node (sim/pdes.hpp): a frame sent at t
  /// cannot influence another domain before t + min_propagation.
  sim::Time min_propagation() const;

  /// Cross-domain delivery for PDES runs: computes the same analytic
  /// traversal as deliver_ex on the calling (source-domain) thread, then
  /// posts `on_arrival` into `dst_domain`'s calendar at the arrival time.
  /// Lost and flap-dropped frames post nothing -- the sender only learns
  /// via its own timer, exactly as with deliver_ex.  Returns the Delivery
  /// so the sender can arm that timer.
  ///
  /// Soundness: arrival >= now + min_propagation(), so with the engine
  /// lookahead <= min_propagation() the post always clears the horizon.
  /// The caller must partition link ownership: every link on the src->dst
  /// route may only be transmitted on from `src_domain`'s events (true for
  /// per-node egress links; shared trunks need a dedicated switch domain).
  Delivery post_delivery(sim::ParallelEngine& pdes, sim::DomainId src_domain,
                         sim::DomainId dst_domain, sim::Time now, NodeId src,
                         NodeId dst, std::uint64_t wire_bytes,
                         sim::Priority prio,
                         std::function<void(const Delivery&)> on_arrival);

  /// Wrap every existing link with a FaultyLink driven by `cfg`; each link
  /// gets an independent stream split off cfg.seed via link_fault_seed, so
  /// the full fault pattern is a pure function of (spec, seed).  Links
  /// connected later are unaffected; call again to cover them.
  void enable_faults(const FaultConfig& cfg);
  bool faults_enabled() const { return !faulty_.empty(); }

  /// Link for a hop (for stats); throws if absent.
  Link& link(NodeId from, NodeId to);
  const Link& link(NodeId from, NodeId to) const;
  /// Fault decoration for a hop; nullptr when the hop is fault-free.
  const FaultyLink* faulty_link(NodeId from, NodeId to) const;

  std::size_t num_nodes() const { return names_.size(); }
  const std::string& node_name(NodeId id) const { return names_.at(id); }
  bool has_route(NodeId src, NodeId dst) const {
    return routes_.count({src, dst}) > 0;
  }

 private:
  std::vector<std::string> names_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<FaultyLink>> faulty_;
  std::map<std::pair<NodeId, NodeId>, std::vector<std::pair<NodeId, NodeId>>> routes_;
};

}  // namespace tfsim::net
