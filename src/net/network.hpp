// Datacenter fabric: hosts and switches joined by per-hop links, with
// destination-based routing tables, deterministic ECMP striping, and
// per-port switch queueing.
//
// The prototype the paper characterizes is a two-node point-to-point cable;
// scaling beyond rack-scale introduces a switched, shared network.  This
// model supports the spectrum: a direct topology (one link pair), the
// two-switch dumbbell, and a leaf/spine fabric (net/topology.hpp) where
// borrower-lender traffic stripes across parallel spine links -- the source
// of the contention the paper emulates with delay injection.
//
// Two routing layers coexist.  Explicit hop lists (add_route) remain for
// hand-wired paths and take precedence; everything else is forwarded by the
// RoutingTable computed from the declared links (net/routing.hpp), so a
// topology builder only declares connectivity and every host pair routes.
// Registered switch nodes (add_switch) apply per-port egress admission
// (buffer depth, drop vs backpressure -- net/switch.hpp) on either layer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "net/switch.hpp"
#include "sim/domain.hpp"

namespace tfsim::sim {
class ParallelEngine;
}  // namespace tfsim::sim

namespace tfsim::net {

/// End-to-end result of a delivery attempt across a (possibly faulty) path.
struct Delivery {
  /// Arrival time at the last hop the frame reached.  For kDelivered and
  /// kCorrupted this is the destination arrival; for lost/dropped frames it
  /// is when the loss point was reached (the sender only learns via its own
  /// timer).
  sim::Time arrival = 0;
  FaultOutcome outcome = FaultOutcome::kDelivered;

  bool delivered() const { return outcome == FaultOutcome::kDelivered; }
};

class Network {
 public:
  /// Register a host node; returns its id.
  NodeId add_node(const std::string& name);

  /// Register a switch: a fabric node whose egress queues apply the
  /// configured buffer policy to every frame it forwards.
  NodeId add_switch(const std::string& name, const SwitchConfig& cfg = {});
  bool is_switch(NodeId id) const { return switches_.count(id) > 0; }
  /// Switch state (per-port occupancy stats); throws for non-switch ids.
  Switch& switch_at(NodeId id);
  const Switch& switch_at(NodeId id) const;
  /// All switches, ordered by id (deterministic iteration for reports).
  const std::map<NodeId, Switch>& switches() const { return switches_; }

  /// Create a unidirectional link between two registered nodes.  Multiple
  /// hops between the same pair are allowed (multi-hop paths are built from
  /// per-hop links via the routing table or add_route).
  void connect(NodeId from, NodeId to, const LinkConfig& cfg);

  /// Declare an explicit path (sequence of already-connected hops) from src
  /// to dst, overriding the computed table for that pair.  A direct
  /// connect() implicitly adds the one-hop route.  Validation names the
  /// offending hop: every hop must have a link and consecutive hops must be
  /// contiguous (hop[i].second == hop[i+1].first).
  void add_route(NodeId src, NodeId dst, std::vector<std::pair<NodeId, NodeId>> hops);

  /// Recompute the destination-based routing tables from the current link
  /// graph.  Called lazily by the delivery paths after any topology change;
  /// exposed so builders can pay the cost at assembly time.
  void build_routes();

  /// Deliver `wire_bytes` from src to dst starting at `now`; returns arrival
  /// time after traversing every hop (serialization + queueing at each).
  /// Fault-oblivious view: equals deliver_ex(...).arrival (and consumes the
  /// same fault decisions), for callers that model the wire as reliable.
  sim::Time deliver(sim::Time now, NodeId src, NodeId dst,
                    std::uint64_t wire_bytes,
                    sim::Priority prio = sim::Priority::kBulk,
                    std::uint64_t flow_salt = 0);

  /// Fault-aware delivery: traverses hops until the frame is delivered or
  /// dropped.  Loss/flap/switch-drop at any hop ends the traversal;
  /// corruption travels on (the CRC is only checked at the destination
  /// NIC).  Pairs without an explicit route are forwarded hop by hop from
  /// the routing table; `flow_salt` keys the ECMP stripe (retransmissions
  /// can pass their attempt number to re-stripe around a dead parallel
  /// link).
  Delivery deliver_ex(sim::Time now, NodeId src, NodeId dst,
                      std::uint64_t wire_bytes,
                      sim::Priority prio = sim::Priority::kBulk,
                      std::uint64_t flow_salt = 0);

  /// Minimum propagation delay over every connected link; kTimeNever when
  /// the fabric has no links yet.  This is the sound conservative lookahead
  /// for partitioning the engine by node (sim/pdes.hpp): a frame sent at t
  /// cannot influence another domain before t + min_propagation.
  sim::Time min_propagation() const;

  /// Cross-domain delivery for PDES runs: computes the same analytic
  /// traversal as deliver_ex on the calling (source-domain) thread, then
  /// posts `on_arrival` into `dst_domain`'s calendar at the arrival time.
  /// Lost and flap-dropped frames post nothing -- the sender only learns
  /// via its own timer, exactly as with deliver_ex.  Returns the Delivery
  /// so the sender can arm that timer.
  ///
  /// Soundness: arrival >= now + min_propagation(), so with the engine
  /// lookahead <= min_propagation() the post always clears the horizon.
  /// The caller must partition link ownership: every link on the src->dst
  /// route may only be transmitted on from `src_domain`'s events (true for
  /// per-node egress links; shared switches/trunks need post_routed, which
  /// forwards hop by hop in each owner's domain).
  Delivery post_delivery(sim::ParallelEngine& pdes, sim::DomainId src_domain,
                         sim::DomainId dst_domain, sim::Time now, NodeId src,
                         NodeId dst, std::uint64_t wire_bytes,
                         sim::Priority prio,
                         std::function<void(const Delivery&)> on_arrival);

  /// Hop-by-hop PDES forwarding over the routing table for fabrics with
  /// *shared* switches: each hop's transmit executes in the owning node's
  /// domain (the first hop inline in the caller's, every later hop via a
  /// cross-domain post at the frame's arrival time), so parallel domains
  /// never race on a shared egress link.  Requires the identity partition
  /// the Cluster assembles: DomainId d is network node d's calendar,
  /// switches included.  `on_arrival` runs in dst's domain only if the
  /// frame survives every hop (loss, flap, or switch tail-drop ends the
  /// chain silently -- the sender learns via its own timer).
  ///
  /// Soundness: every post crosses exactly one link, so it lands at least
  /// one propagation delay ahead -- with lookahead <= min_propagation() the
  /// horizon always clears.
  void post_routed(sim::ParallelEngine& pdes, sim::Time now, NodeId src,
                   NodeId dst, std::uint64_t wire_bytes, sim::Priority prio,
                   std::uint64_t flow_salt,
                   std::function<void(const Delivery&)> on_arrival);

  /// Wrap every existing link with a FaultyLink driven by `cfg`; each link
  /// gets an independent stream split off cfg.seed via link_fault_seed, so
  /// the full fault pattern is a pure function of (spec, seed).  Links
  /// connected later are unaffected; call again to cover them.  Switch
  /// uplinks are ordinary links and get wrapped like any other hop.
  void enable_faults(const FaultConfig& cfg);
  /// Target one hop (e.g. flap a single spine uplink); throws when the link
  /// is absent or already decorated.
  void enable_faults_on(NodeId from, NodeId to, const FaultConfig& cfg);
  bool faults_enabled() const { return !faulty_.empty(); }

  /// Link for a hop (for stats); throws if absent.
  Link& link(NodeId from, NodeId to);
  const Link& link(NodeId from, NodeId to) const;
  bool has_link(NodeId from, NodeId to) const {
    return links_.count({from, to}) > 0;
  }
  /// Fault decoration for a hop; nullptr when the hop is fault-free.
  const FaultyLink* faulty_link(NodeId from, NodeId to) const;

  std::size_t num_nodes() const { return names_.size(); }
  const std::string& node_name(NodeId id) const { return names_.at(id); }
  /// True when src can reach dst: an explicit route or a routing-table path.
  bool has_route(NodeId src, NodeId dst) const;
  /// The computed routing table (rebuilt if the topology changed).
  const RoutingTable& routing() const;

 private:
  /// One hop of a traversal: switch egress admission (when `from` is a
  /// registered switch), then the (possibly fault-decorated) link transmit.
  /// Advances d.arrival; returns false when the frame died on this hop.
  bool transmit_hop(Delivery& d, NodeId from, NodeId to,
                    std::uint64_t wire_bytes, sim::Priority prio);
  /// Continue a post_routed chain from `cur` (executing in cur's domain at
  /// d.arrival).
  void step_routed(sim::ParallelEngine& pdes, NodeId cur, NodeId src,
                   NodeId dst, Delivery d, std::uint64_t wire_bytes,
                   sim::Priority prio, std::uint64_t flow_salt,
                   std::function<void(const Delivery&)> on_arrival);
  void ensure_routes() const;
  std::string hop_name(const std::pair<NodeId, NodeId>& hop) const;

  std::vector<std::string> names_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<FaultyLink>> faulty_;
  std::map<std::pair<NodeId, NodeId>, std::vector<std::pair<NodeId, NodeId>>> routes_;
  std::map<NodeId, Switch> switches_;
  /// Lazily rebuilt from links_ (deterministic: the link map is ordered),
  /// so const queries (has_route) can trigger the rebuild.
  mutable RoutingTable table_;
  mutable bool table_dirty_ = true;
};

}  // namespace tfsim::net
