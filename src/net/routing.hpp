// Destination-based routing tables with deterministic ECMP striping.
//
// Instead of enumerating a hop list per (src, dst) pair (the old
// Network::add_route model, which is quadratic in nodes and silent about
// the topology), the table is computed from the declared link graph: a BFS
// per destination yields, for every current node, the set of equal-cost
// next hops.  Parallel spine links therefore appear as multiple candidates
// and a flow-keyed hash stripes traffic across them -- the ECMP the
// leaf/spine fabric needs to spread the paper's contention over S spines
// instead of one trunk.
//
// Determinism rules (simlint R4): candidate sets are ordered by NodeId, the
// stripe hash mixes integer ids and the caller-provided flow salt only --
// never pointers, never wall-clock, never insertion order -- so the chosen
// path is a pure function of (topology, src, dst, salt) and identical under
// serial and PDES execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace tfsim::net {

class RoutingTable {
 public:
  /// Rebuild from the directed edge list (every connected (from, to) hop).
  /// Nodes are [0, num_nodes); edges referencing ids outside that range are
  /// a logic error upstream and throw.
  void build(std::size_t num_nodes,
             const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Equal-cost next hops from `cur` toward `dst`, ascending by NodeId;
  /// empty when dst is unreachable from cur (or cur == dst).
  const std::vector<NodeId>& next_hops(NodeId cur, NodeId dst) const;

  bool reachable(NodeId src, NodeId dst) const {
    return src != dst && !next_hops(src, dst).empty();
  }

  /// Deterministic ECMP pick among the equal-cost candidates: SplitMix64
  /// over (flow src, flow dst, current node, flow salt).  Request and
  /// response directions hash independently; varying the salt (e.g. the
  /// NIC retry attempt) re-stripes a flow onto a different parallel link.
  /// Throws std::invalid_argument when dst is unreachable from cur.
  NodeId pick(NodeId cur, NodeId dst, NodeId src, std::uint64_t flow_salt) const;

  std::size_t num_nodes() const { return n_; }
  bool built() const { return n_ != 0 || next_.empty(); }

 private:
  std::size_t n_ = 0;
  /// next_[dst * n_ + cur] = sorted equal-cost next hops.
  std::vector<std::vector<NodeId>> next_;
};

}  // namespace tfsim::net
