#include "net/fault.hpp"

#include <stdexcept>

namespace tfsim::net {

namespace {

/// Uniform double in [0, 1) from the top 53 bits.
double unit(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const char* to_string(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kDelivered: return "delivered";
    case FaultOutcome::kCorrupted: return "corrupted";
    case FaultOutcome::kLost: return "lost";
    case FaultOutcome::kFlapDropped: return "flap-dropped";
    case FaultOutcome::kSwitchDropped: return "switch-dropped";
  }
  return "?";
}

FaultPlan::FaultPlan(const FaultConfig& cfg) : cfg_(cfg) {
  if (cfg_.loss_rate < 0.0 || cfg_.loss_rate > 1.0 ||
      cfg_.corrupt_rate < 0.0 || cfg_.corrupt_rate > 1.0) {
    throw std::invalid_argument("FaultPlan: rates must be in [0, 1]");
  }
  for (const FlapSpec& f : cfg_.flaps) {
    if (f.duration == 0) {
      throw std::invalid_argument("FaultPlan: flap duration must be > 0");
    }
    if (f.bandwidth_factor < 0.0 || f.bandwidth_factor >= 1.0) {
      throw std::invalid_argument(
          "FaultPlan: flap bandwidth factor must be in [0, 1)");
    }
  }
}

const FlapSpec* FaultPlan::active_flap(sim::Time t) const {
  for (const FlapSpec& f : cfg_.flaps) {
    if (t >= f.start && t < f.end()) return &f;
  }
  return nullptr;
}

FaultOutcome FaultPlan::next(sim::Time depart) {
  const std::uint64_t k = count_++;
  if (const FlapSpec* f = active_flap(depart); f != nullptr && f->down()) {
    return FaultOutcome::kFlapDropped;
  }
  if (cfg_.loss_rate <= 0.0 && cfg_.corrupt_rate <= 0.0) {
    return FaultOutcome::kDelivered;
  }
  // Two independent draws per attempt, both keyed off (seed, k) alone.
  const std::uint64_t base = mix64(cfg_.seed ^ mix64(k));
  if (unit(base) < cfg_.loss_rate) return FaultOutcome::kLost;
  if (unit(mix64(base)) < cfg_.corrupt_rate) return FaultOutcome::kCorrupted;
  return FaultOutcome::kDelivered;
}

FaultyLink::TxResult FaultyLink::transmit(sim::Time now,
                                          std::uint64_t wire_bytes,
                                          sim::Priority prio) {
  TxResult r;
  r.outcome = plan_.next(now);
  r.delivered = inner_.transmit(now, wire_bytes, prio);
  // A degraded (not down) flap stretches the effective serialization of
  // frames entering the window: FEC retries / lane loss below the MAC.
  if (const FlapSpec* f = plan_.active_flap(now);
      f != nullptr && !f->down()) {
    const sim::Time ser =
        inner_.config().bandwidth.serialization_time(wire_bytes);
    r.delivered += static_cast<sim::Time>(
        static_cast<double>(ser) * (1.0 / f->bandwidth_factor - 1.0));
  }
  switch (r.outcome) {
    case FaultOutcome::kDelivered: ++delivered_; break;
    case FaultOutcome::kCorrupted: ++corrupted_; break;
    case FaultOutcome::kLost: ++lost_; break;
    case FaultOutcome::kFlapDropped: ++flap_dropped_; break;
    case FaultOutcome::kSwitchDropped: break;  // decided upstream, never here
  }
  return r;
}

std::uint64_t link_fault_seed(std::uint64_t base, std::uint32_t from,
                              std::uint32_t to) {
  return mix64(base ^ mix64((std::uint64_t{from} << 32) | to));
}

}  // namespace tfsim::net
