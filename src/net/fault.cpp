#include "net/fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfsim::net {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const char* to_string(FaultOutcome o) {
  switch (o) {
    case FaultOutcome::kDelivered: return "delivered";
    case FaultOutcome::kCorrupted: return "corrupted";
    case FaultOutcome::kLost: return "lost";
    case FaultOutcome::kFlapDropped: return "flap-dropped";
    case FaultOutcome::kSwitchDropped: return "switch-dropped";
  }
  return "?";
}

FaultOutcome parse_fault_outcome(const std::string& name) {
  if (name == "delivered") return FaultOutcome::kDelivered;
  if (name == "corrupted") return FaultOutcome::kCorrupted;
  if (name == "lost") return FaultOutcome::kLost;
  if (name == "flap-dropped") return FaultOutcome::kFlapDropped;
  if (name == "switch-dropped") return FaultOutcome::kSwitchDropped;
  throw std::invalid_argument("unknown fault outcome \"" + name + "\"");
}

double unit_interval(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

void validate_flap_schedule(std::vector<FlapSpec>& flaps,
                            const std::string& what) {
  std::sort(flaps.begin(), flaps.end(),
            [](const FlapSpec& a, const FlapSpec& b) {
              return a.start < b.start;
            });
  for (std::size_t i = 0; i < flaps.size(); ++i) {
    const FlapSpec& f = flaps[i];
    if (f.duration == 0) {
      throw std::invalid_argument(what + ": flap window " + std::to_string(i) +
                                  " duration (for_us) must be > 0");
    }
    if (f.bandwidth_factor < 0.0 || f.bandwidth_factor >= 1.0) {
      throw std::invalid_argument(what + ": flap window " + std::to_string(i) +
                                  " bandwidth factor must be in [0, 1)");
    }
    if (i > 0 && flaps[i - 1].end() > f.start) {
      throw std::invalid_argument(
          what + ": flap windows " + std::to_string(i - 1) + " and " +
          std::to_string(i) +
          " overlap (active-window precedence would depend on declaration "
          "order)");
    }
  }
}

const FlapSpec* active_window(const std::vector<FlapSpec>& sorted,
                              sim::Time t) {
  // First window starting strictly after t; its predecessor is the only
  // candidate that can cover t (the schedule is sorted and non-overlapping).
  const auto it = std::upper_bound(
      sorted.begin(), sorted.end(), t,
      [](sim::Time v, const FlapSpec& f) { return v < f.start; });
  if (it == sorted.begin()) return nullptr;
  const FlapSpec& f = *std::prev(it);
  return t < f.end() ? &f : nullptr;
}

FaultPlan::FaultPlan(const FaultConfig& cfg) : cfg_(cfg) {
  if (cfg_.loss_rate < 0.0 || cfg_.loss_rate > 1.0 ||
      cfg_.corrupt_rate < 0.0 || cfg_.corrupt_rate > 1.0) {
    throw std::invalid_argument("FaultPlan: rates must be in [0, 1]");
  }
  validate_flap_schedule(cfg_.flaps, "FaultPlan");
}

const FlapSpec* FaultPlan::active_flap(sim::Time t) const {
  return active_window(cfg_.flaps, t);
}

FaultOutcome FaultPlan::next(sim::Time depart) {
  const std::uint64_t k = count_++;
  if (const FlapSpec* f = active_flap(depart); f != nullptr && f->down()) {
    return FaultOutcome::kFlapDropped;
  }
  if (cfg_.loss_rate <= 0.0 && cfg_.corrupt_rate <= 0.0) {
    return FaultOutcome::kDelivered;
  }
  // Two independent draws per attempt, both keyed off (seed, k) alone.
  const std::uint64_t base = mix64(cfg_.seed ^ mix64(k));
  if (unit_interval(base) < cfg_.loss_rate) return FaultOutcome::kLost;
  if (unit_interval(mix64(base)) < cfg_.corrupt_rate) {
    return FaultOutcome::kCorrupted;
  }
  return FaultOutcome::kDelivered;
}

FaultyLink::TxResult FaultyLink::transmit(sim::Time now,
                                          std::uint64_t wire_bytes,
                                          sim::Priority prio) {
  TxResult r;
  r.outcome = plan_.next(now);
  r.delivered = inner_.transmit(now, wire_bytes, prio);
  // A degraded (not down) flap stretches the effective serialization of
  // frames entering the window: FEC retries / lane loss below the MAC.
  if (const FlapSpec* f = plan_.active_flap(now);
      f != nullptr && !f->down()) {
    const sim::Time ser =
        inner_.config().bandwidth.serialization_time(wire_bytes);
    r.delivered += static_cast<sim::Time>(
        static_cast<double>(ser) * (1.0 / f->bandwidth_factor - 1.0));
  }
  switch (r.outcome) {
    case FaultOutcome::kDelivered: ++delivered_; break;
    case FaultOutcome::kCorrupted: ++corrupted_; break;
    case FaultOutcome::kLost: ++lost_; break;
    case FaultOutcome::kFlapDropped: ++flap_dropped_; break;
    case FaultOutcome::kSwitchDropped: break;  // decided upstream, never here
  }
  return r;
}

std::uint64_t link_fault_seed(std::uint64_t base, std::uint32_t from,
                              std::uint32_t to) {
  return mix64(base ^ mix64((std::uint64_t{from} << 32) | to));
}

}  // namespace tfsim::net
