// Deterministic link-fault injection: loss, corruption, and flaps.
//
// Real disaggregated fabrics do not only delay traffic (the paper's axis);
// they lose frames, corrupt payloads, and flap links.  CXL-DMSim and Clio
// both treat link-level retransmission as part of the memory path, so the
// fault layer here is the missing second axis of the resilience assessment:
// a FaultPlan makes a per-packet decision (deliver / lose / corrupt) and a
// FaultyLink decorates a Link with that plan plus a schedule of flap
// intervals (hard-down or degraded-bandwidth windows).
//
// Determinism is the design constraint.  Decision k depends only on
// (seed, k) through a SplitMix64 hash -- not on simulated time, not on any
// other random stream, and not on call interleaving across sweep points --
// so identical seed + spec reproduce the exact fault sequence under serial
// and TFSIM_JOBS parallel sweeps (each sweep point owns its own plan).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "sim/units.hpp"

namespace tfsim::net {

/// One scheduled flap: inside [start, start + duration) the link is hard
/// down (bandwidth_factor == 0: every frame entering the window is lost) or
/// degraded (0 < factor < 1: serialization effectively slowed by 1/factor).
struct FlapSpec {
  sim::Time start = 0;
  sim::Time duration = 0;
  double bandwidth_factor = 0.0;

  sim::Time end() const { return start + duration; }
  bool down() const { return bandwidth_factor <= 0.0; }
  friend bool operator==(const FlapSpec&, const FlapSpec&) = default;
};

struct FaultConfig {
  double loss_rate = 0.0;     ///< per-packet loss probability
  double corrupt_rate = 0.0;  ///< per-packet payload/CRC-corruption probability
  std::uint64_t seed = 1;     ///< fault-stream seed (per-link streams are
                              ///< split off this deterministically)
  std::vector<FlapSpec> flaps;

  bool enabled() const {
    return loss_rate > 0.0 || corrupt_rate > 0.0 || !flaps.empty();
  }
  friend bool operator==(const FaultConfig&, const FaultConfig&) = default;
};

/// What happened to one transmission attempt.
enum class FaultOutcome {
  kDelivered,      ///< arrived intact
  kCorrupted,      ///< arrived, but the CRC check at the receiver will fail
  kLost,           ///< vanished on the wire (random loss)
  kFlapDropped,    ///< sent into a hard-down flap window
  kSwitchDropped,  ///< tail-dropped by a switch egress queue (net/switch.hpp)
};

const char* to_string(FaultOutcome o);
/// Inverse of to_string; throws std::invalid_argument on unknown names
/// (report parsers round-trip through this pair).
FaultOutcome parse_fault_outcome(const std::string& name);

/// SplitMix64 finalizer: one full avalanche round, the same mixer sim::Rng
/// seeds through.  Pure function of the input; shared by the fault streams
/// and the ECMP flow hash (net/routing.hpp), both of which must depend on
/// integer identities only (simlint R4).
std::uint64_t mix64(std::uint64_t x);

/// Uniform double in [0, 1) from the top 53 bits of a hashed word.  The one
/// place the bits->unit-interval idiom lives; the gray-lender jitter stream
/// (core/serving.cpp) shares it with the per-packet fault draws.
double unit_interval(std::uint64_t bits);

/// Sort a flap/chaos window schedule by start and validate it: every window
/// needs duration > 0 and bandwidth_factor in [0, 1), and no two windows
/// may overlap (overlap would make the active-window precedence depend on
/// declaration order).  Throws std::invalid_argument naming the offending
/// window index; `what` names the schedule in the message ("FaultPlan",
/// "switch spine1 down windows", ...).
void validate_flap_schedule(std::vector<FlapSpec>& flaps,
                            const std::string& what);

/// The window covering `t` in a schedule already sorted by start with no
/// overlaps (validate_flap_schedule's postcondition); nullptr when clean.
/// Binary search: chaos timelines make schedules long, and this runs per
/// packet.
const FlapSpec* active_window(const std::vector<FlapSpec>& sorted,
                              sim::Time t);

/// Replayable per-packet fault decisions.  Stateless apart from a monotone
/// attempt counter: decision k is a pure function of (seed, k).  The
/// constructor sorts the flap schedule by start and rejects overlaps, so
/// config().flaps is the validated, ordered form of the input.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultConfig& cfg);

  /// Classify the next transmission attempt, departing at `depart`.
  /// Precedence: hard-down flap > loss > corruption.
  FaultOutcome next(sim::Time depart);

  /// The flap interval covering `t`, if any (degraded or down).  Binary
  /// search over the sorted schedule (active_window).
  const FlapSpec* active_flap(sim::Time t) const;

  const FaultConfig& config() const { return cfg_; }
  std::uint64_t decisions() const { return count_; }

 private:
  FaultConfig cfg_;
  std::uint64_t count_ = 0;
};

/// Decorator over Link: same serialization/queueing model underneath, with
/// the plan deciding each frame's fate and flaps stretching service time.
class FaultyLink {
 public:
  FaultyLink(Link& inner, const FaultConfig& cfg)
      : inner_(inner), plan_(cfg) {}

  struct TxResult {
    /// Arrival time at the far end.  Meaningful for kDelivered/kCorrupted;
    /// for lost frames it is when the frame *would* have arrived (the wire
    /// time is still spent -- the sender serialized the frame).
    sim::Time delivered = 0;
    FaultOutcome outcome = FaultOutcome::kDelivered;
  };

  TxResult transmit(sim::Time now, std::uint64_t wire_bytes,
                    sim::Priority prio = sim::Priority::kBulk);

  Link& inner() { return inner_; }
  const FaultPlan& plan() const { return plan_; }

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t corrupted() const { return corrupted_; }
  std::uint64_t lost() const { return lost_; }
  std::uint64_t flap_dropped() const { return flap_dropped_; }

 private:
  Link& inner_;
  FaultPlan plan_;
  std::uint64_t delivered_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t flap_dropped_ = 0;
};

/// Split a per-link fault stream off a base seed: deterministic in the link
/// endpoints only, so adding unrelated links never reshuffles existing
/// streams.
std::uint64_t link_fault_seed(std::uint64_t base, std::uint32_t from,
                              std::uint32_t to);

}  // namespace tfsim::net
