// Beyond-rack-scale topologies.
//
// The prototype the paper measures is a two-node cable; its motivation is a
// datacenter where borrower-lender pairs share a *switched* network and
// congestion manifests as increased memory-access latency (§II-B).  These
// builders produce that fabric: K borrowers and K lenders hanging off two
// switches joined by one shared trunk -- the congestion point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace tfsim::net {

struct StarTopologyConfig {
  std::uint32_t pairs = 4;  ///< borrower-lender pairs
  LinkConfig edge;          ///< node <-> switch hops
  LinkConfig trunk;         ///< the shared switch <-> switch hop
};

/// Two-switch dumbbell: borrowers -- switchA == trunk == switchB -- lenders.
/// With trunk bandwidth equal to one edge link, K active pairs oversubscribe
/// the trunk K:1.
struct StarTopology {
  NodeId switch_a = 0;
  NodeId switch_b = 0;
  std::vector<NodeId> borrowers;
  std::vector<NodeId> lenders;

  /// Builds nodes, links, and per-pair routes in `network` (which must be
  /// empty).  Pair i routes borrower[i] -> lender[i] across the trunk and
  /// back.
  static StarTopology build(Network& network, const StarTopologyConfig& cfg);
};

struct LeafSpineConfig {
  std::uint32_t leaves = 2;  ///< leaf (top-of-rack) switches
  std::uint32_t spines = 2;  ///< spine switches, each linked to every leaf
  LinkConfig edge;           ///< host <-> leaf hops
  LinkConfig uplink;         ///< leaf <-> spine hops
  SwitchConfig sw;           ///< per-switch egress queue policy
  std::string prefix;        ///< switch-name prefix (Cluster scoping)
};

/// Two-tier leaf/spine fabric over already-registered hosts: host i attaches
/// to leaf (i mod L) and every leaf links to every spine, so cross-leaf
/// traffic ECMP-stripes across S parallel spine paths.  Aggregate bisection
/// is S uplinks per leaf instead of the dumbbell's single trunk -- the
/// contention cliff moves out by roughly the oversubscription ratio.
///
/// Unlike StarTopology, connectivity alone is declared; forwarding comes
/// from the routing table (build() finishes with network.build_routes()).
/// Switch nodes are appended *after* the hosts, preserving the identity
/// host-index == NodeId partition the Cluster's PDES assembly relies on.
struct LeafSpineFabric {
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;

  /// Attach `hosts` (existing node ids) to a fresh leaf/spine tier in
  /// `network`.  Throws when cfg declares zero leaves/spines or when there
  /// are fewer hosts than leaves (an empty leaf would be dead weight).
  static LeafSpineFabric build(Network& network, const LeafSpineConfig& cfg,
                               const std::vector<NodeId>& hosts);

  /// The leaf that build() attached host index `i` to.
  NodeId leaf_of(std::size_t host_index) const {
    return leaves[host_index % leaves.size()];
  }
};

}  // namespace tfsim::net
