// Beyond-rack-scale topologies.
//
// The prototype the paper measures is a two-node cable; its motivation is a
// datacenter where borrower-lender pairs share a *switched* network and
// congestion manifests as increased memory-access latency (§II-B).  These
// builders produce that fabric: K borrowers and K lenders hanging off two
// switches joined by one shared trunk -- the congestion point.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace tfsim::net {

struct StarTopologyConfig {
  std::uint32_t pairs = 4;  ///< borrower-lender pairs
  LinkConfig edge;          ///< node <-> switch hops
  LinkConfig trunk;         ///< the shared switch <-> switch hop
};

/// Two-switch dumbbell: borrowers -- switchA == trunk == switchB -- lenders.
/// With trunk bandwidth equal to one edge link, K active pairs oversubscribe
/// the trunk K:1.
struct StarTopology {
  NodeId switch_a = 0;
  NodeId switch_b = 0;
  std::vector<NodeId> borrowers;
  std::vector<NodeId> lenders;

  /// Builds nodes, links, and per-pair routes in `network` (which must be
  /// empty).  Pair i routes borrower[i] -> lender[i] across the trunk and
  /// back.
  static StarTopology build(Network& network, const StarTopologyConfig& cfg);
};

}  // namespace tfsim::net
