#include "net/latency_dist.hpp"

#include <cmath>
#include <stdexcept>

namespace tfsim::net {

DistKind parse_dist_kind(const std::string& name) {
  if (name == "fixed") return DistKind::kFixed;
  if (name == "uniform") return DistKind::kUniform;
  if (name == "exponential") return DistKind::kExponential;
  if (name == "lognormal") return DistKind::kLognormal;
  if (name == "pareto") return DistKind::kPareto;
  throw std::invalid_argument("unknown latency distribution: " + name);
}

std::string to_string(DistKind kind) {
  switch (kind) {
    case DistKind::kFixed: return "fixed";
    case DistKind::kUniform: return "uniform";
    case DistKind::kExponential: return "exponential";
    case DistKind::kLognormal: return "lognormal";
    case DistKind::kPareto: return "pareto";
  }
  return "?";
}

LatencyDistribution::LatencyDistribution(DistKind kind, sim::Time mean,
                                         std::uint64_t seed)
    : kind_(kind), mean_(mean), rng_(seed) {
  const double m = static_cast<double>(mean);
  // E[lognormal(mu, s)] = exp(mu + s^2/2)  =>  mu = ln(m) - s^2/2.
  lognormal_mu_ = m > 0 ? std::log(m) - kLognormalSigma * kLognormalSigma / 2.0
                        : 0.0;
  // E[pareto(x_m, a)] = a x_m / (a-1)  =>  x_m = m (a-1) / a.
  pareto_scale_ = m * (kParetoAlpha - 1.0) / kParetoAlpha;
}

sim::Time LatencyDistribution::sample() {
  if (mean_ == 0) return 0;
  const double m = static_cast<double>(mean_);
  double v = 0.0;
  switch (kind_) {
    case DistKind::kFixed:
      return mean_;
    case DistKind::kUniform:
      v = rng_.uniform(0.0, 2.0 * m);
      break;
    case DistKind::kExponential:
      v = rng_.exponential(m);
      break;
    case DistKind::kLognormal:
      v = rng_.lognormal(lognormal_mu_, kLognormalSigma);
      break;
    case DistKind::kPareto:
      v = rng_.pareto(pareto_scale_, kParetoAlpha);
      break;
  }
  if (v < 0.0) v = 0.0;
  return static_cast<sim::Time>(v);
}

}  // namespace tfsim::net
