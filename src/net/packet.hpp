// Network packets for the disaggregated-memory fabric.
//
// The ThymesisFlow NIC encapsulates each TL command in a network packet:
// destination address, sequence number, checksum, payload (the encoded TL
// frame, plus cache-line data in the data-carrying direction).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "capi/opcodes.hpp"

namespace tfsim::net {

using NodeId = std::uint32_t;

struct PacketHeader {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t seq = 0;
  std::uint16_t payload_bytes = 0;
  std::uint32_t checksum = 0;  ///< CRC-32 over payload
};

inline constexpr std::uint32_t kPacketHeaderBytes = 30;  ///< incl. framing/FCS

struct Packet {
  PacketHeader header;
  std::vector<std::uint8_t> payload;

  std::uint32_t wire_bytes() const {
    return kPacketHeaderBytes + static_cast<std::uint32_t>(payload.size());
  }
};

/// CRC-32 (IEEE 802.3, reflected, table-driven).
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);
inline std::uint32_t crc32(const std::vector<std::uint8_t>& v) {
  return crc32(v.data(), v.size());
}

/// Build a packet carrying an encoded TL command (+ data payload bytes for
/// data-carrying directions), with checksum filled in.
Packet encapsulate(NodeId src, NodeId dst, std::uint32_t seq,
                   const capi::Command& cmd);

/// Validate checksum and decode the TL command; nullopt on corruption.
std::optional<capi::Command> decapsulate(const Packet& pkt);

}  // namespace tfsim::net
