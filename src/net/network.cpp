#include "net/network.hpp"

#include "sim/pdes.hpp"

namespace tfsim::net {

NodeId Network::add_node(const std::string& name) {
  names_.push_back(name);
  return static_cast<NodeId>(names_.size() - 1);
}

void Network::connect(NodeId from, NodeId to, const LinkConfig& cfg) {
  if (from >= names_.size() || to >= names_.size()) {
    throw std::invalid_argument("Network::connect: unknown node");
  }
  const auto key = std::make_pair(from, to);
  if (links_.count(key) != 0) {
    throw std::invalid_argument("Network::connect: duplicate link");
  }
  links_[key] = std::make_unique<Link>(
      cfg, names_[from] + "->" + names_[to]);
  routes_[key] = {key};  // implicit one-hop route
}

void Network::add_route(NodeId src, NodeId dst,
                        std::vector<std::pair<NodeId, NodeId>> hops) {
  if (hops.empty()) {
    throw std::invalid_argument("Network::add_route: empty path");
  }
  for (const auto& hop : hops) {
    if (links_.count(hop) == 0) {
      throw std::invalid_argument("Network::add_route: hop has no link");
    }
  }
  if (hops.front().first != src || hops.back().second != dst) {
    throw std::invalid_argument("Network::add_route: path endpoints mismatch");
  }
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (hops[i].second != hops[i + 1].first) {
      throw std::invalid_argument("Network::add_route: disconnected path");
    }
  }
  routes_[{src, dst}] = std::move(hops);
}

sim::Time Network::deliver(sim::Time now, NodeId src, NodeId dst,
                           std::uint64_t wire_bytes, sim::Priority prio) {
  return deliver_ex(now, src, dst, wire_bytes, prio).arrival;
}

Delivery Network::deliver_ex(sim::Time now, NodeId src, NodeId dst,
                             std::uint64_t wire_bytes, sim::Priority prio) {
  const auto it = routes_.find({src, dst});
  if (it == routes_.end()) {
    throw std::invalid_argument("Network::deliver: no route " +
                                names_.at(src) + "->" + names_.at(dst));
  }
  Delivery d;
  d.arrival = now;
  for (const auto& hop : it->second) {
    const auto fit = faulty_.find(hop);
    if (fit == faulty_.end()) {
      d.arrival = links_.at(hop)->transmit(d.arrival, wire_bytes, prio);
      continue;
    }
    const auto tx = fit->second->transmit(d.arrival, wire_bytes, prio);
    d.arrival = tx.delivered;
    if (tx.outcome == FaultOutcome::kLost ||
        tx.outcome == FaultOutcome::kFlapDropped) {
      d.outcome = tx.outcome;
      return d;  // the frame is gone; downstream hops never see it
    }
    if (tx.outcome == FaultOutcome::kCorrupted) {
      d.outcome = FaultOutcome::kCorrupted;  // sticky until the far end
    }
  }
  return d;
}

sim::Time Network::min_propagation() const {
  sim::Time min = sim::kTimeNever;
  for (const auto& [key, link] : links_) {
    if (link->propagation() < min) min = link->propagation();
  }
  return min;
}

Delivery Network::post_delivery(sim::ParallelEngine& pdes,
                                sim::DomainId src_domain,
                                sim::DomainId dst_domain, sim::Time now,
                                NodeId src, NodeId dst,
                                std::uint64_t wire_bytes, sim::Priority prio,
                                std::function<void(const Delivery&)> on_arrival) {
  const Delivery d = deliver_ex(now, src, dst, wire_bytes, prio);
  if (d.outcome == FaultOutcome::kLost ||
      d.outcome == FaultOutcome::kFlapDropped) {
    return d;  // the frame is gone; the destination domain never hears of it
  }
  pdes.post(src_domain, dst_domain, d.arrival,
            [cb = std::move(on_arrival), d] { cb(d); });
  return d;
}

void Network::enable_faults(const FaultConfig& cfg) {
  for (const auto& [key, link] : links_) {
    if (faulty_.count(key) != 0) continue;
    FaultConfig per_link = cfg;
    per_link.seed = link_fault_seed(cfg.seed, key.first, key.second);
    faulty_[key] = std::make_unique<FaultyLink>(*link, per_link);
  }
}

const FaultyLink* Network::faulty_link(NodeId from, NodeId to) const {
  const auto it = faulty_.find({from, to});
  return it == faulty_.end() ? nullptr : it->second.get();
}

Link& Network::link(NodeId from, NodeId to) {
  const auto it = links_.find({from, to});
  if (it == links_.end()) {
    throw std::invalid_argument("Network::link: no such link");
  }
  return *it->second;
}

const Link& Network::link(NodeId from, NodeId to) const {
  const auto it = links_.find({from, to});
  if (it == links_.end()) {
    throw std::invalid_argument("Network::link: no such link");
  }
  return *it->second;
}

}  // namespace tfsim::net
