#include "net/network.hpp"

#include "sim/pdes.hpp"

namespace tfsim::net {

NodeId Network::add_node(const std::string& name) {
  names_.push_back(name);
  table_dirty_ = true;
  return static_cast<NodeId>(names_.size() - 1);
}

NodeId Network::add_switch(const std::string& name, const SwitchConfig& cfg) {
  const NodeId id = add_node(name);
  switches_.emplace(id, Switch(cfg));
  return id;
}

Switch& Network::switch_at(NodeId id) {
  const auto it = switches_.find(id);
  if (it == switches_.end()) {
    throw std::invalid_argument("Network::switch_at: node " +
                                names_.at(id) + " is not a switch");
  }
  return it->second;
}

const Switch& Network::switch_at(NodeId id) const {
  const auto it = switches_.find(id);
  if (it == switches_.end()) {
    throw std::invalid_argument("Network::switch_at: node " +
                                names_.at(id) + " is not a switch");
  }
  return it->second;
}

void Network::connect(NodeId from, NodeId to, const LinkConfig& cfg) {
  if (from >= names_.size() || to >= names_.size()) {
    throw std::invalid_argument("Network::connect: unknown node");
  }
  const auto key = std::make_pair(from, to);
  if (links_.count(key) != 0) {
    throw std::invalid_argument("Network::connect: duplicate link");
  }
  links_[key] = std::make_unique<Link>(
      cfg, names_[from] + "->" + names_[to]);
  routes_[key] = {key};  // implicit one-hop route
  table_dirty_ = true;
}

std::string Network::hop_name(const std::pair<NodeId, NodeId>& hop) const {
  const auto name = [this](NodeId id) -> std::string {
    if (id < names_.size()) return names_[id];
    std::string unknown = "#";
    unknown += std::to_string(id);
    return unknown;
  };
  return name(hop.first) + "->" + name(hop.second);
}

void Network::add_route(NodeId src, NodeId dst,
                        std::vector<std::pair<NodeId, NodeId>> hops) {
  if (hops.empty()) {
    throw std::invalid_argument("Network::add_route: empty path");
  }
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (links_.count(hops[i]) == 0) {
      throw std::invalid_argument("Network::add_route: hop " +
                                  std::to_string(i) + " (" +
                                  hop_name(hops[i]) + ") has no link");
    }
  }
  if (hops.front().first != src || hops.back().second != dst) {
    throw std::invalid_argument(
        "Network::add_route: path endpoints mismatch (path " +
        hop_name({hops.front().first, hops.back().second}) +
        ", route " + hop_name({src, dst}) + ")");
  }
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (hops[i].second != hops[i + 1].first) {
      throw std::invalid_argument(
          "Network::add_route: hop " + std::to_string(i) + " (" +
          hop_name(hops[i]) + ") is not contiguous with hop " +
          std::to_string(i + 1) + " (" + hop_name(hops[i + 1]) + ")");
    }
  }
  routes_[{src, dst}] = std::move(hops);
}

void Network::build_routes() {
  table_dirty_ = true;
  ensure_routes();
}

void Network::ensure_routes() const {
  if (!table_dirty_) return;
  // The rebuild is deterministic (the link map is ordered), so lazy
  // recomputation from const queries can never diverge between runs; the
  // table members are mutable for exactly this cache.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(links_.size());
  for (const auto& [key, link] : links_) edges.push_back(key);
  table_.build(names_.size(), edges);
  table_dirty_ = false;
}

const RoutingTable& Network::routing() const {
  ensure_routes();
  return table_;
}

bool Network::has_route(NodeId src, NodeId dst) const {
  if (routes_.count({src, dst}) > 0) return true;
  ensure_routes();
  return table_.reachable(src, dst);
}

sim::Time Network::deliver(sim::Time now, NodeId src, NodeId dst,
                           std::uint64_t wire_bytes, sim::Priority prio,
                           std::uint64_t flow_salt) {
  return deliver_ex(now, src, dst, wire_bytes, prio, flow_salt).arrival;
}

bool Network::transmit_hop(Delivery& d, NodeId from, NodeId to,
                           std::uint64_t wire_bytes, sim::Priority prio) {
  const auto key = std::make_pair(from, to);
  Link& out = *links_.at(key);
  // A degraded chaos window (port brownout) stretches the frame's effective
  // serialization, like a degraded link flap; the window is looked up at the
  // frame's arrival at the switch, matching the admission decision below.
  double stretch = 1.0;
  if (const auto sit = switches_.find(from); sit != switches_.end()) {
    if (!sit->second.admit(to, d.arrival, wire_bytes, out)) {
      // Tail-dropped or inside a chaos down window (kill_switch / hard-down
      // brownout); downstream hops never see the frame.
      d.outcome = FaultOutcome::kSwitchDropped;
      return false;
    }
    stretch = sit->second.service_stretch(to, d.arrival);
  }
  if (stretch > 1.0) {
    const sim::Time ser = out.config().bandwidth.serialization_time(wire_bytes);
    d.arrival += static_cast<sim::Time>(static_cast<double>(ser) *
                                        (stretch - 1.0));
  }
  const auto fit = faulty_.find(key);
  if (fit == faulty_.end()) {
    d.arrival = out.transmit(d.arrival, wire_bytes, prio);
    return true;
  }
  const auto tx = fit->second->transmit(d.arrival, wire_bytes, prio);
  d.arrival = tx.delivered;
  if (tx.outcome == FaultOutcome::kLost ||
      tx.outcome == FaultOutcome::kFlapDropped) {
    d.outcome = tx.outcome;
    return false;  // the frame is gone
  }
  if (tx.outcome == FaultOutcome::kCorrupted) {
    d.outcome = FaultOutcome::kCorrupted;  // sticky until the far end
  }
  return true;
}

Delivery Network::deliver_ex(sim::Time now, NodeId src, NodeId dst,
                             std::uint64_t wire_bytes, sim::Priority prio,
                             std::uint64_t flow_salt) {
  Delivery d;
  d.arrival = now;
  if (const auto it = routes_.find({src, dst}); it != routes_.end()) {
    for (const auto& hop : it->second) {
      if (!transmit_hop(d, hop.first, hop.second, wire_bytes, prio)) return d;
    }
    return d;
  }
  // No explicit route: forward hop by hop from the routing table, striping
  // across equal-cost links by the flow hash.
  ensure_routes();
  if (!table_.reachable(src, dst)) {
    throw std::invalid_argument("Network::deliver: no route " +
                                names_.at(src) + "->" + names_.at(dst));
  }
  NodeId cur = src;
  while (cur != dst) {
    const NodeId next = table_.pick(cur, dst, src, flow_salt);
    if (!transmit_hop(d, cur, next, wire_bytes, prio)) return d;
    cur = next;
  }
  return d;
}

sim::Time Network::min_propagation() const {
  sim::Time min = sim::kTimeNever;
  for (const auto& [key, link] : links_) {
    if (link->propagation() < min) min = link->propagation();
  }
  return min;
}

Delivery Network::post_delivery(sim::ParallelEngine& pdes,
                                sim::DomainId src_domain,
                                sim::DomainId dst_domain, sim::Time now,
                                NodeId src, NodeId dst,
                                std::uint64_t wire_bytes, sim::Priority prio,
                                std::function<void(const Delivery&)> on_arrival) {
  const Delivery d = deliver_ex(now, src, dst, wire_bytes, prio);
  if (d.outcome == FaultOutcome::kLost ||
      d.outcome == FaultOutcome::kFlapDropped ||
      d.outcome == FaultOutcome::kSwitchDropped) {
    return d;  // the frame is gone; the destination domain never hears of it
  }
  pdes.post(src_domain, dst_domain, d.arrival,
            [cb = std::move(on_arrival), d] { cb(d); });
  return d;
}

void Network::post_routed(sim::ParallelEngine& pdes, sim::Time now, NodeId src,
                          NodeId dst, std::uint64_t wire_bytes,
                          sim::Priority prio, std::uint64_t flow_salt,
                          std::function<void(const Delivery&)> on_arrival) {
  ensure_routes();
  if (!table_.reachable(src, dst)) {
    throw std::invalid_argument("Network::post_routed: no route " +
                                names_.at(src) + "->" + names_.at(dst));
  }
  Delivery d;
  d.arrival = now;
  step_routed(pdes, src, src, dst, d, wire_bytes, prio, flow_salt,
              std::move(on_arrival));
}

void Network::step_routed(sim::ParallelEngine& pdes, NodeId cur, NodeId src,
                          NodeId dst, Delivery d, std::uint64_t wire_bytes,
                          sim::Priority prio, std::uint64_t flow_salt,
                          std::function<void(const Delivery&)> on_arrival) {
  const NodeId next = table_.pick(cur, dst, src, flow_salt);
  if (!transmit_hop(d, cur, next, wire_bytes, prio)) {
    return;  // dropped mid-fabric; the sender only learns via its own timer
  }
  const auto cur_dom = static_cast<sim::DomainId>(cur);
  const auto next_dom = static_cast<sim::DomainId>(next);
  if (next == dst) {
    pdes.post(cur_dom, next_dom, d.arrival,
              [cb = std::move(on_arrival), d] { cb(d); });
    return;
  }
  pdes.post(cur_dom, next_dom, d.arrival,
            [this, &pdes, next, src, dst, d, wire_bytes, prio, flow_salt,
             cb = std::move(on_arrival)]() mutable {
              step_routed(pdes, next, src, dst, d, wire_bytes, prio,
                          flow_salt, std::move(cb));
            });
}

void Network::enable_faults(const FaultConfig& cfg) {
  for (const auto& [key, link] : links_) {
    if (faulty_.count(key) != 0) continue;
    FaultConfig per_link = cfg;
    per_link.seed = link_fault_seed(cfg.seed, key.first, key.second);
    faulty_[key] = std::make_unique<FaultyLink>(*link, per_link);
  }
}

void Network::enable_faults_on(NodeId from, NodeId to,
                               const FaultConfig& cfg) {
  const auto key = std::make_pair(from, to);
  const auto it = links_.find(key);
  if (it == links_.end()) {
    throw std::invalid_argument("Network::enable_faults_on: no link " +
                                hop_name(key));
  }
  if (faulty_.count(key) != 0) {
    throw std::invalid_argument("Network::enable_faults_on: link " +
                                hop_name(key) + " already fault-decorated");
  }
  FaultConfig per_link = cfg;
  per_link.seed = link_fault_seed(cfg.seed, from, to);
  faulty_[key] = std::make_unique<FaultyLink>(*it->second, per_link);
}

const FaultyLink* Network::faulty_link(NodeId from, NodeId to) const {
  const auto it = faulty_.find({from, to});
  return it == faulty_.end() ? nullptr : it->second.get();
}

Link& Network::link(NodeId from, NodeId to) {
  const auto it = links_.find({from, to});
  if (it == links_.end()) {
    throw std::invalid_argument("Network::link: no such link");
  }
  return *it->second;
}

const Link& Network::link(NodeId from, NodeId to) const {
  const auto it = links_.find({from, to});
  if (it == links_.end()) {
    throw std::invalid_argument("Network::link: no such link");
  }
  return *it->second;
}

}  // namespace tfsim::net
