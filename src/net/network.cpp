#include "net/network.hpp"

namespace tfsim::net {

NodeId Network::add_node(const std::string& name) {
  names_.push_back(name);
  return static_cast<NodeId>(names_.size() - 1);
}

void Network::connect(NodeId from, NodeId to, const LinkConfig& cfg) {
  if (from >= names_.size() || to >= names_.size()) {
    throw std::invalid_argument("Network::connect: unknown node");
  }
  const auto key = std::make_pair(from, to);
  if (links_.count(key) != 0) {
    throw std::invalid_argument("Network::connect: duplicate link");
  }
  links_[key] = std::make_unique<Link>(
      cfg, names_[from] + "->" + names_[to]);
  routes_[key] = {key};  // implicit one-hop route
}

void Network::add_route(NodeId src, NodeId dst,
                        std::vector<std::pair<NodeId, NodeId>> hops) {
  if (hops.empty()) {
    throw std::invalid_argument("Network::add_route: empty path");
  }
  for (const auto& hop : hops) {
    if (links_.count(hop) == 0) {
      throw std::invalid_argument("Network::add_route: hop has no link");
    }
  }
  if (hops.front().first != src || hops.back().second != dst) {
    throw std::invalid_argument("Network::add_route: path endpoints mismatch");
  }
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (hops[i].second != hops[i + 1].first) {
      throw std::invalid_argument("Network::add_route: disconnected path");
    }
  }
  routes_[{src, dst}] = std::move(hops);
}

sim::Time Network::deliver(sim::Time now, NodeId src, NodeId dst,
                           std::uint64_t wire_bytes, sim::Priority prio) {
  const auto it = routes_.find({src, dst});
  if (it == routes_.end()) {
    throw std::invalid_argument("Network::deliver: no route " +
                                names_.at(src) + "->" + names_.at(dst));
  }
  sim::Time t = now;
  for (const auto& hop : it->second) {
    t = links_.at(hop)->transmit(t, wire_bytes, prio);
  }
  return t;
}

Link& Network::link(NodeId from, NodeId to) {
  const auto it = links_.find({from, to});
  if (it == links_.end()) {
    throw std::invalid_argument("Network::link: no such link");
  }
  return *it->second;
}

const Link& Network::link(NodeId from, NodeId to) const {
  const auto it = links_.find({from, to});
  if (it == links_.end()) {
    throw std::invalid_argument("Network::link: no such link");
  }
  return *it->second;
}

}  // namespace tfsim::net
