#include "net/switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfsim::net {

const char* to_string(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::kDrop: return "drop";
    case QueuePolicy::kBackpressure: return "backpressure";
  }
  return "?";
}

QueuePolicy parse_queue_policy(const std::string& name) {
  if (name == "drop") return QueuePolicy::kDrop;
  if (name == "backpressure") return QueuePolicy::kBackpressure;
  throw std::invalid_argument("unknown switch queue policy \"" + name +
                              "\" (expected drop or backpressure)");
}

void Switch::set_down_windows(std::vector<FlapSpec> windows) {
  validate_flap_schedule(windows, "Switch down windows");
  down_ = std::move(windows);
}

void Switch::set_port_windows(NodeId egress, std::vector<FlapSpec> windows) {
  validate_flap_schedule(windows, "Switch port " + std::to_string(egress) +
                                      " brownout windows");
  port_windows_[egress] = std::move(windows);
}

const FlapSpec* Switch::active_chaos(NodeId egress, sim::Time now) const {
  // Switch-wide windows dominate: a killed switch is dead on every port no
  // matter what the per-port schedule says.
  if (const FlapSpec* w = active_window(down_, now)) return w;
  if (const auto it = port_windows_.find(egress); it != port_windows_.end()) {
    return active_window(it->second, now);
  }
  return nullptr;
}

bool Switch::chaos_down(NodeId egress, sim::Time now) const {
  const FlapSpec* w = active_chaos(egress, now);
  return w != nullptr && w->down();
}

double Switch::service_stretch(NodeId egress, sim::Time now) const {
  const FlapSpec* w = active_chaos(egress, now);
  if (w == nullptr || w->down()) return 1.0;
  return 1.0 / w->bandwidth_factor;
}

bool Switch::admit(NodeId egress, sim::Time now, std::uint64_t wire_bytes,
                   const Link& out) {
  PortStats& p = ports_[egress];
  if (chaos_down(egress, now)) {
    ++p.chaos_drops;
    return false;
  }
  const std::uint64_t occ = out.queued_bytes(now);
  if (cfg_.policy == QueuePolicy::kDrop &&
      occ + wire_bytes > cfg_.buffer_bytes) {
    ++p.drops;
    return false;
  }
  ++p.frames;
  p.bytes += wire_bytes;
  p.queued_bytes_sum += static_cast<double>(occ);
  p.peak_queued_bytes = std::max(p.peak_queued_bytes, occ + wire_bytes);
  return true;
}

const PortStats* Switch::port(NodeId egress) const {
  const auto it = ports_.find(egress);
  return it == ports_.end() ? nullptr : &it->second;
}

std::uint64_t Switch::total_drops() const {
  std::uint64_t n = 0;
  for (const auto& [id, p] : ports_) n += p.drops;
  return n;
}

std::uint64_t Switch::total_chaos_drops() const {
  std::uint64_t n = 0;
  for (const auto& [id, p] : ports_) n += p.chaos_drops;
  return n;
}

}  // namespace tfsim::net
