#include "net/switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfsim::net {

const char* to_string(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::kDrop: return "drop";
    case QueuePolicy::kBackpressure: return "backpressure";
  }
  return "?";
}

QueuePolicy parse_queue_policy(const std::string& name) {
  if (name == "drop") return QueuePolicy::kDrop;
  if (name == "backpressure") return QueuePolicy::kBackpressure;
  throw std::invalid_argument("unknown switch queue policy \"" + name +
                              "\" (expected drop or backpressure)");
}

bool Switch::admit(NodeId egress, sim::Time now, std::uint64_t wire_bytes,
                   const Link& out) {
  PortStats& p = ports_[egress];
  const std::uint64_t occ = out.queued_bytes(now);
  if (cfg_.policy == QueuePolicy::kDrop &&
      occ + wire_bytes > cfg_.buffer_bytes) {
    ++p.drops;
    return false;
  }
  ++p.frames;
  p.bytes += wire_bytes;
  p.queued_bytes_sum += static_cast<double>(occ);
  p.peak_queued_bytes = std::max(p.peak_queued_bytes, occ + wire_bytes);
  return true;
}

const PortStats* Switch::port(NodeId egress) const {
  const auto it = ports_.find(egress);
  return it == ports_.end() ? nullptr : &it->second;
}

std::uint64_t Switch::total_drops() const {
  std::uint64_t n = 0;
  for (const auto& [id, p] : ports_) n += p.drops;
  return n;
}

}  // namespace tfsim::net
