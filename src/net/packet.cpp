#include "net/packet.hpp"

#include <algorithm>
#include <array>

#include "capi/frame.hpp"

namespace tfsim::net {

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
const std::array<std::uint32_t, 256> kCrcTable = make_crc_table();
}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = kCrcTable[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Packet encapsulate(NodeId src, NodeId dst, std::uint32_t seq,
                   const capi::Command& cmd) {
  Packet pkt;
  pkt.payload = capi::encode(cmd);
  // Data-carrying directions append the cache-line payload bytes.  Content
  // is not simulated; zero-fill stands in for the line image so wire sizes
  // and checksums are faithful.
  if (cmd.opcode == capi::Opcode::kWriteRequest ||
      cmd.opcode == capi::Opcode::kReadResponse) {
    pkt.payload.resize(pkt.payload.size() + cmd.size, 0);
  }
  pkt.header.src = src;
  pkt.header.dst = dst;
  pkt.header.seq = seq;
  pkt.header.payload_bytes = static_cast<std::uint16_t>(pkt.payload.size());
  pkt.header.checksum = crc32(pkt.payload);
  return pkt;
}

std::optional<capi::Command> decapsulate(const Packet& pkt) {
  if (pkt.payload.size() != pkt.header.payload_bytes) return std::nullopt;
  if (crc32(pkt.payload) != pkt.header.checksum) return std::nullopt;
  const auto res = capi::decode(pkt.payload.data(),
                                std::min<std::size_t>(pkt.payload.size(),
                                                      capi::kFrameBytes));
  if (!res.command.has_value()) return std::nullopt;
  return res.command;
}

}  // namespace tfsim::net
