// Point-to-point link: serialization at line rate plus propagation delay.
//
// ThymesisFlow's testbed uses a 100 Gb/s copper cable; beyond rack-scale the
// same abstraction models a switch-to-switch hop.  A link is a FIFO
// bandwidth server, so concurrent flows naturally queue and share capacity.
#pragma once

#include <cstdint>
#include <string>

#include "sim/server.hpp"
#include "sim/units.hpp"

namespace tfsim::net {

struct LinkConfig {
  sim::Bandwidth bandwidth = sim::Bandwidth::from_gbit(100.0);
  sim::Time propagation = sim::from_ns(300.0);  ///< cable + PHY/MAC
};

class Link {
 public:
  explicit Link(const LinkConfig& cfg, std::string name = "link")
      : cfg_(cfg), name_(std::move(name)),
        server_(cfg.bandwidth, cfg.propagation) {}

  /// Transmit `wire_bytes` starting no earlier than `now`; returns delivery
  /// time at the far end.  Latency-class packets bypass the bulk backlog
  /// (two-queue egress scheduling, the paper's QoS mechanism).
  sim::Time transmit(sim::Time now, std::uint64_t wire_bytes,
                     sim::Priority prio = sim::Priority::kBulk) {
    return server_.request(now, wire_bytes, prio);
  }

  const LinkConfig& config() const { return cfg_; }
  /// Propagation component of the hop latency.  This is the PDES lookahead
  /// source: no frame can arrive before now + propagation, whatever the
  /// queueing, so the fabric-wide minimum bounds cross-domain causality.
  sim::Time propagation() const { return cfg_.propagation; }
  const std::string& name() const { return name_; }
  std::uint64_t bytes_sent() const { return server_.bytes_served(); }
  std::uint64_t packets_sent() const { return server_.requests(); }
  sim::Time busy_time() const { return server_.busy_time(); }
  sim::Time backlog(sim::Time now,
                    sim::Priority prio = sim::Priority::kBulk) const {
    return server_.backlog(now, prio);
  }
  /// Egress-queue occupancy in bytes at `now`: the backlog time converted
  /// back through the line rate.  This is what a switch's buffer-management
  /// sees when deciding to admit or tail-drop a frame (net/switch.hpp); it
  /// includes the frame currently being serialized.
  std::uint64_t queued_bytes(sim::Time now) const {
    return static_cast<std::uint64_t>(
        sim::to_sec(server_.backlog(now, sim::Priority::kBulk)) *
            cfg_.bandwidth.bytes_per_sec +
        0.5);
  }
  double utilization(sim::Time elapsed) const {
    return elapsed ? sim::to_sec(server_.busy_time()) / sim::to_sec(elapsed)
                   : 0.0;
  }

 private:
  LinkConfig cfg_;
  std::string name_;
  sim::PriorityBandwidthServer server_;
};

}  // namespace tfsim::net
