#include "net/topology.hpp"

#include <stdexcept>
#include <string>

namespace tfsim::net {

StarTopology StarTopology::build(Network& network,
                                 const StarTopologyConfig& cfg) {
  if (network.num_nodes() != 0) {
    throw std::invalid_argument("StarTopology: network must be empty");
  }
  if (cfg.pairs == 0) {
    throw std::invalid_argument("StarTopology: needs at least one pair");
  }
  StarTopology topo;
  topo.switch_a = network.add_node("switch-a");
  topo.switch_b = network.add_node("switch-b");
  network.connect(topo.switch_a, topo.switch_b, cfg.trunk);
  network.connect(topo.switch_b, topo.switch_a, cfg.trunk);

  for (std::uint32_t i = 0; i < cfg.pairs; ++i) {
    const auto b = network.add_node("borrower" + std::to_string(i));
    const auto l = network.add_node("lender" + std::to_string(i));
    network.connect(b, topo.switch_a, cfg.edge);
    network.connect(topo.switch_a, b, cfg.edge);
    network.connect(l, topo.switch_b, cfg.edge);
    network.connect(topo.switch_b, l, cfg.edge);
    network.add_route(b, l, {{b, topo.switch_a},
                             {topo.switch_a, topo.switch_b},
                             {topo.switch_b, l}});
    network.add_route(l, b, {{l, topo.switch_b},
                             {topo.switch_b, topo.switch_a},
                             {topo.switch_a, b}});
    topo.borrowers.push_back(b);
    topo.lenders.push_back(l);
  }
  return topo;
}

LeafSpineFabric LeafSpineFabric::build(Network& network,
                                       const LeafSpineConfig& cfg,
                                       const std::vector<NodeId>& hosts) {
  if (cfg.leaves == 0 || cfg.spines == 0) {
    throw std::invalid_argument(
        "LeafSpineFabric: needs at least one leaf and one spine");
  }
  if (hosts.size() < cfg.leaves) {
    throw std::invalid_argument("LeafSpineFabric: fewer hosts (" +
                                std::to_string(hosts.size()) +
                                ") than leaves (" +
                                std::to_string(cfg.leaves) + ")");
  }
  LeafSpineFabric topo;
  for (std::uint32_t l = 0; l < cfg.leaves; ++l) {
    topo.leaves.push_back(
        network.add_switch(cfg.prefix + "leaf" + std::to_string(l), cfg.sw));
  }
  for (std::uint32_t s = 0; s < cfg.spines; ++s) {
    topo.spines.push_back(
        network.add_switch(cfg.prefix + "spine" + std::to_string(s), cfg.sw));
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const NodeId leaf = topo.leaves[i % topo.leaves.size()];
    network.connect(hosts[i], leaf, cfg.edge);
    network.connect(leaf, hosts[i], cfg.edge);
  }
  for (const NodeId leaf : topo.leaves) {
    for (const NodeId spine : topo.spines) {
      network.connect(leaf, spine, cfg.uplink);
      network.connect(spine, leaf, cfg.uplink);
    }
  }
  network.build_routes();
  return topo;
}

}  // namespace tfsim::net
