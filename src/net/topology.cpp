#include "net/topology.hpp"

#include <stdexcept>
#include <string>

namespace tfsim::net {

StarTopology StarTopology::build(Network& network,
                                 const StarTopologyConfig& cfg) {
  if (network.num_nodes() != 0) {
    throw std::invalid_argument("StarTopology: network must be empty");
  }
  if (cfg.pairs == 0) {
    throw std::invalid_argument("StarTopology: needs at least one pair");
  }
  StarTopology topo;
  topo.switch_a = network.add_node("switch-a");
  topo.switch_b = network.add_node("switch-b");
  network.connect(topo.switch_a, topo.switch_b, cfg.trunk);
  network.connect(topo.switch_b, topo.switch_a, cfg.trunk);

  for (std::uint32_t i = 0; i < cfg.pairs; ++i) {
    const auto b = network.add_node("borrower" + std::to_string(i));
    const auto l = network.add_node("lender" + std::to_string(i));
    network.connect(b, topo.switch_a, cfg.edge);
    network.connect(topo.switch_a, b, cfg.edge);
    network.connect(l, topo.switch_b, cfg.edge);
    network.connect(topo.switch_b, l, cfg.edge);
    network.add_route(b, l, {{b, topo.switch_a},
                             {topo.switch_a, topo.switch_b},
                             {topo.switch_b, l}});
    network.add_route(l, b, {{l, topo.switch_b},
                             {topo.switch_b, topo.switch_a},
                             {topo.switch_a, b}});
    topo.borrowers.push_back(b);
    topo.lenders.push_back(l);
  }
  return topo;
}

}  // namespace tfsim::net
