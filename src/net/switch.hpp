// Switch node kind: per-port egress queueing on top of the link FIFO model.
//
// A switch is a fabric element (it never computes) with one egress queue per
// output port.  The queue itself is the analytic FIFO backlog of the egress
// link; the switch adds the buffer-management decision in front of it: a
// frame arriving for port p sees the port's current occupancy (queued bytes
// not yet on the wire) and is either admitted or handled per the configured
// policy.  kDrop models a shallow shared-nothing output buffer -- frames
// beyond the configured depth are tail-dropped, exactly what DRackSim-style
// rack models do at their ToR queues; kBackpressure models a lossless fabric
// (PFC/credit-based) where the queue simply grows and the latency cliff
// shows up as queueing delay instead of loss.
//
// Per-port occupancy statistics (frames, bytes, drops, peak and mean queued
// bytes at admission) are the observable bench/fabric_contention reports:
// where the contention cliff forms is visible as which egress port saturates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/units.hpp"

namespace tfsim::net {

enum class QueuePolicy {
  kDrop,          ///< tail-drop frames that would exceed the buffer
  kBackpressure,  ///< lossless: the egress backlog grows without bound
};

const char* to_string(QueuePolicy p);
/// Parse "drop" / "backpressure"; throws std::invalid_argument otherwise.
QueuePolicy parse_queue_policy(const std::string& name);

struct SwitchConfig {
  /// Per-egress-port buffer depth in bytes (kDrop only; admission compares
  /// occupancy + frame size against this, so a frame landing *exactly* at
  /// the depth is still admitted).
  std::uint64_t buffer_bytes = 256 * 1024;
  QueuePolicy policy = QueuePolicy::kBackpressure;

  friend bool operator==(const SwitchConfig&, const SwitchConfig&) = default;
};

/// Per-egress-port counters, sampled at every admission decision.
struct PortStats {
  std::uint64_t frames = 0;  ///< admitted frames
  std::uint64_t bytes = 0;   ///< admitted wire bytes
  std::uint64_t drops = 0;   ///< tail-dropped frames (kDrop only)
  /// Frames dropped by a chaos down window (kill_switch or a hard-down port
  /// brownout) -- kept apart from buffer tail-drops so a chaos event's
  /// blast radius is directly observable.
  std::uint64_t chaos_drops = 0;
  /// Peak queue depth in bytes, measured right after admission (occupancy
  /// the admitted frame sees plus the frame itself).
  std::uint64_t peak_queued_bytes = 0;
  /// Sum of the occupancy each admitted frame found ahead of it; divide by
  /// `frames` for the mean queue depth at arrival.
  double queued_bytes_sum = 0.0;

  double mean_queued_bytes() const {
    return frames != 0 ? queued_bytes_sum / static_cast<double>(frames) : 0.0;
  }
};

class Switch {
 public:
  explicit Switch(const SwitchConfig& cfg) : cfg_(cfg) {}

  /// Admission decision for a frame of `wire_bytes` entering the egress
  /// queue toward neighbour `egress` (whose link is `out`) at `now`.
  /// Updates the port statistics; returns false when the frame is dropped.
  bool admit(NodeId egress, sim::Time now, std::uint64_t wire_bytes,
             const Link& out);

  const SwitchConfig& config() const { return cfg_; }
  /// Ordered by egress neighbour id, so iteration is deterministic.
  const std::map<NodeId, PortStats>& ports() const { return ports_; }
  /// Stats for one egress port; nullptr before any frame touched it.
  const PortStats* port(NodeId egress) const;
  std::uint64_t total_drops() const;
  std::uint64_t total_chaos_drops() const;

  // --- chaos schedules (net/fault.hpp FlapSpec semantics) ------------------
  //
  // Written once at Cluster assembly from the scenario's chaos timeline and
  // only *read* per frame afterwards, so concurrent PDES domains forwarding
  // through different switches never race on them.  A down() window drops
  // every frame entering it (counted in chaos_drops); a degraded window
  // (0 < factor < 1) admits the frame and stretches its serialization by
  // 1/factor (applied by Network::transmit_hop).

  /// Whole-switch windows (kill_switch): apply to every egress port.
  void set_down_windows(std::vector<FlapSpec> windows);
  /// Per-port brownout windows for the egress toward `egress`.
  void set_port_windows(NodeId egress, std::vector<FlapSpec> windows);

  const std::vector<FlapSpec>& down_windows() const { return down_; }
  /// True when a hard-down window (switch-wide or this port's) covers `now`.
  bool chaos_down(NodeId egress, sim::Time now) const;
  /// Serialization multiplier for frames leaving toward `egress` at `now`:
  /// 1.0 on a clean port, 1/factor inside a degraded window (the tighter of
  /// the switch-wide and per-port windows wins).
  double service_stretch(NodeId egress, sim::Time now) const;

 private:
  const FlapSpec* active_chaos(NodeId egress, sim::Time now) const;

  SwitchConfig cfg_;
  std::map<NodeId, PortStats> ports_;
  std::vector<FlapSpec> down_;                      ///< sorted, validated
  std::map<NodeId, std::vector<FlapSpec>> port_windows_;  ///< each sorted
};

}  // namespace tfsim::net
