#include "net/routing.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "net/fault.hpp"  // mix64

namespace tfsim::net {

namespace {
const std::vector<NodeId> kNoHops;
}  // namespace

void RoutingTable::build(std::size_t num_nodes,
                         const std::vector<std::pair<NodeId, NodeId>>& edges) {
  n_ = num_nodes;
  next_.assign(n_ * n_, {});
  // Forward adjacency, neighbour lists ascending (edges arrive ordered from
  // Network's std::map, but sort anyway so callers need not care).
  std::vector<std::vector<NodeId>> out(n_);
  for (const auto& [from, to] : edges) {
    if (from >= n_ || to >= n_) {
      throw std::invalid_argument("RoutingTable: edge references unknown node");
    }
    out[from].push_back(to);
  }
  for (auto& neigh : out) {
    std::sort(neigh.begin(), neigh.end());
  }

  // One BFS per destination over the reversed graph gives hop distances
  // d(v) = hops from v to dst; the equal-cost next hops at v are exactly
  // the forward neighbours one hop closer.
  std::vector<std::vector<NodeId>> in(n_);
  for (const auto& [from, to] : edges) in[to].push_back(from);

  constexpr std::uint32_t kUnreached = ~std::uint32_t{0};
  std::vector<std::uint32_t> dist(n_);
  std::vector<NodeId> queue;
  queue.reserve(n_);
  for (NodeId dst = 0; dst < n_; ++dst) {
    dist.assign(n_, kUnreached);
    dist[dst] = 0;
    queue.clear();
    queue.push_back(dst);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const NodeId u : in[v]) {
        if (dist[u] == kUnreached) {
          dist[u] = dist[v] + 1;
          queue.push_back(u);
        }
      }
    }
    for (NodeId cur = 0; cur < n_; ++cur) {
      if (cur == dst || dist[cur] == kUnreached) continue;
      auto& hops = next_[static_cast<std::size_t>(dst) * n_ + cur];
      for (const NodeId nb : out[cur]) {
        if (dist[nb] + 1 == dist[cur]) hops.push_back(nb);
      }
    }
  }
}

const std::vector<NodeId>& RoutingTable::next_hops(NodeId cur,
                                                   NodeId dst) const {
  if (cur >= n_ || dst >= n_) return kNoHops;
  return next_[static_cast<std::size_t>(dst) * n_ + cur];
}

NodeId RoutingTable::pick(NodeId cur, NodeId dst, NodeId src,
                          std::uint64_t flow_salt) const {
  const auto& hops = next_hops(cur, dst);
  if (hops.empty()) {
    throw std::invalid_argument("RoutingTable: no route from node " +
                                std::to_string(cur) + " to node " +
                                std::to_string(dst));
  }
  if (hops.size() == 1) return hops.front();
  const std::uint64_t flow = (std::uint64_t{src} << 32) | dst;
  const std::uint64_t here = (std::uint64_t{cur} << 32) ^ flow_salt;
  const std::uint64_t h = mix64(mix64(flow) ^ mix64(here));
  return hops[h % hops.size()];
}

}  // namespace tfsim::net
