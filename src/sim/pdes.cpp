#include "sim/pdes.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "sim/sweep.hpp"

namespace tfsim::sim {

unsigned PdesConfig::threads_from_env() {
  const char* v = std::getenv("TFSIM_PDES");
  if (v == nullptr || *v == '\0') return 0;
  if (std::string(v) == "off") return 0;
  return env_thread_count("TFSIM_PDES", /*fallback=*/0);
}

ParallelEngine::ParallelEngine(std::size_t num_domains, PdesConfig cfg)
    : cfg_(cfg) {
  if (num_domains == 0) {
    throw std::invalid_argument("ParallelEngine: need at least one domain");
  }
  domains_.reserve(num_domains);
  for (std::size_t d = 0; d < num_domains; ++d) {
    domains_.push_back(std::make_unique<Engine>());
  }
  outboxes_.resize(num_domains);
  errors_.resize(num_domains);
}

void ParallelEngine::set_lookahead(Time lookahead) {
  if (running_) {
    throw std::logic_error("ParallelEngine::set_lookahead: run in progress");
  }
  cfg_.lookahead = lookahead;
}

void ParallelEngine::post(DomainId src, DomainId dst, Time t,
                          Engine::Callback cb) {
  if (src >= domains_.size() || dst >= domains_.size()) {
    throw std::out_of_range("ParallelEngine::post: domain id out of range");
  }
  if (!running_ || src == dst) {
    // Setup-time posts and same-domain sends go straight onto the target
    // calendar.  During a window the posting thread owns the src calendar,
    // so a direct schedule is race-free; zero-delay self-sends are legal
    // because schedule_at only requires t >= the domain's own now().
    domains_[dst]->schedule_at(t, std::move(cb));
    return;
  }
  if (t < horizon_) {
    throw std::logic_error(
        "ParallelEngine::post: cross-domain send at t=" + std::to_string(t) +
        " is below the lookahead horizon " + std::to_string(horizon_) +
        " (the model's delay to another domain must be >= the configured "
        "lookahead; derive lookahead from net::Network::min_propagation)");
  }
  // Single writer: during a window only the thread executing `src` appends
  // to outboxes_[src]; the flush happens behind the window barrier.
  outboxes_[src].push_back(Pending{dst, t, std::move(cb)});
}

Time ParallelEngine::next_event_time() {
  Time min = kTimeNever;
  for (const auto& d : domains_) {
    const std::optional<Time> t = d->next_event_time();
    if (t.has_value() && *t < min) min = *t;
  }
  return min;
}

void ParallelEngine::flush_outboxes() {
  // Fixed (source domain, send order) flush so same-timestamp cross-domain
  // arrivals get identical sequence numbers in the target calendar for
  // every thread count -- the load-bearing line of the determinism
  // argument (DESIGN.md section 13).
  for (auto& box : outboxes_) {
    for (Pending& p : box) {
      domains_[p.dst]->schedule_at(p.time, std::move(p.cb));
    }
    box.clear();
  }
}

bool ParallelEngine::begin_window() {
  const Time t = next_event_time();
  if (t == kTimeNever) return false;
  window_start_ = t;
  horizon_ =
      (t > kTimeNever - cfg_.lookahead) ? kTimeNever : t + cfg_.lookahead;
  ++windows_;
  return true;
}

void ParallelEngine::execute_domain(std::size_t d) {
  domains_[d]->run_before(horizon_);
}

void ParallelEngine::run_serial() {
  while (begin_window()) {
    // Domains in id order is one legal (and the reference) schedule of the
    // independent window slices; the parallel path must match it exactly.
    for (std::size_t d = 0; d < domains_.size(); ++d) execute_domain(d);
    flush_outboxes();
  }
}

void ParallelEngine::run_parallel() {
  if (!begin_window()) return;  // idle: nothing scheduled anywhere
  const std::size_t nthreads =
      std::min<std::size_t>(cfg_.threads, domains_.size());
  std::atomic<std::size_t> next_domain{0};
  std::atomic<bool> done{false};
  std::exception_ptr flush_error;

  // Barrier phase completion: runs on one worker while the rest wait, so
  // it may touch calendars and outboxes freely.  Must not exit via an
  // exception (std::barrier requirement), hence the catch-all.
  auto on_window_done = [this, &next_domain, &done, &flush_error]() noexcept {
    for (const std::exception_ptr& e : errors_) {
      if (e != nullptr) {
        aborted_ = true;
        break;
      }
    }
    if (!aborted_) {
      try {
        flush_outboxes();
        if (!begin_window()) done.store(true, std::memory_order_relaxed);
      } catch (...) {
        flush_error = std::current_exception();
        aborted_ = true;
      }
    }
    if (aborted_) done.store(true, std::memory_order_relaxed);
    next_domain.store(0, std::memory_order_relaxed);
  };
  std::barrier sync(static_cast<std::ptrdiff_t>(nthreads), on_window_done);

  auto worker = [this, &next_domain, &done, &sync] {
    while (!done.load(std::memory_order_relaxed)) {
      for (;;) {
        const std::size_t d =
            next_domain.fetch_add(1, std::memory_order_relaxed);
        if (d >= domains_.size()) break;
        try {
          execute_domain(d);
        } catch (...) {
          errors_[d] = std::current_exception();
        }
      }
      // The barrier phase completion publishes its effects (flushed
      // calendars, next window bounds, the done flag) to every worker.
      sync.arrive_and_wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (std::size_t w = 0; w < nthreads; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (aborted_) {
    // Serial equivalence for errors too: the lowest-id failing domain in
    // the aborting window wins, matching run_serial's in-order execution;
    // a flush failure surfaces only when every domain slice succeeded.
    for (std::exception_ptr& e : errors_) {
      if (e != nullptr) {
        std::exception_ptr first = std::move(e);
        for (auto& other : errors_) other = nullptr;
        std::rethrow_exception(first);
      }
    }
    if (flush_error != nullptr) std::rethrow_exception(flush_error);
  }
}

void ParallelEngine::run() {
  if (running_) {
    throw std::logic_error("ParallelEngine::run: already running");
  }
  if (cfg_.lookahead == 0) {
    throw std::logic_error(
        "ParallelEngine::run: lookahead is unset (derive it from "
        "net::Network::min_propagation or set it explicitly)");
  }
  running_ = true;
  aborted_ = false;
  errors_.assign(domains_.size(), nullptr);
  struct RunningScope {
    explicit RunningScope(bool& flag) : flag_(flag) {}
    RunningScope(const RunningScope&) = delete;
    RunningScope& operator=(const RunningScope&) = delete;
    ~RunningScope() { flag_ = false; }

   private:
    bool& flag_;
  };
  const RunningScope scope(running_);
  if (cfg_.threads > 1 && domains_.size() > 1) {
    run_parallel();
  } else {
    run_serial();
  }
}

std::uint64_t ParallelEngine::executed() const {
  std::uint64_t total = 0;
  for (const auto& d : domains_) total += d->executed();
  return total;
}

std::size_t ParallelEngine::pending() const {
  std::size_t total = 0;
  for (const auto& d : domains_) total += d->pending();
  return total;
}

}  // namespace tfsim::sim
