// Runtime domain-ownership checker: the dynamic half of simlint rule R5.
//
// PDES (ROADMAP item 2) will partition the event engine by node, which is
// only sound if no simulation state is mutated from outside its owning
// node's call graph except through net::Network delivery.  This layer makes
// that invariant executable today, before the engine is partitioned:
//
//  * Every node::Cluster assigns each node a DomainId and binds the
//    DomainHandle of every sim object the node owns (DRAM, cache
//    hierarchy, NIC, migrator, the node itself).
//  * Code that drives a domain -- a MemContext issuing accesses, the NIC
//    handing a frame to the lender's memory at the network boundary --
//    opens a DomainGuard scope declaring the active domain.
//  * Annotated classes (TFSIM_DOMAIN_OWNED) call TFSIM_DOMAIN_TOUCH on
//    every mutating entry point.  A touch inside a guard for a different
//    domain is a cross-domain mutation: the violation names the object,
//    both domains, the guard label, and the exact event (engine time +
//    event index), mirroring how the settle scheduler names toggling
//    modules on non-convergence.
//
// Outside any guard (setup, teardown, direct poking from tests) touches
// are unchecked: ownership is an *event dispatch* invariant.  Modes follow
// axi::ViolationSink: strict throws DomainError on the first violation,
// collect accumulates for injection tests, off disables.  The default
// comes from TFSIM_DOMAIN_CHECK (off|collect|strict; strict when unset),
// so every existing scenario continuously proves itself violation-free.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/units.hpp"

namespace tfsim::sim {

class Engine;

using DomainId = std::uint32_t;
inline constexpr DomainId kNoDomain = ~DomainId{0};

enum class DomainCheckMode {
  kOff,      ///< touches are no-ops
  kCollect,  ///< record violations; tests inspect them afterwards
  kStrict,   ///< throw DomainError on the first violation
};

/// One detected cross-domain mutation.
struct DomainViolation {
  std::string object;       ///< registered object name ("lender1/dram")
  std::string what;         ///< mutating entry point ("Dram::access")
  DomainId owner = kNoDomain;
  DomainId active = kNoDomain;
  std::string owner_name;   ///< domain names resolved at report time
  std::string active_name;
  std::string guard_label;  ///< label of the innermost guard, if any
  Time when = 0;            ///< engine time at detection
  std::uint64_t event_index = 0;  ///< Engine::executed() at detection

  std::string to_string() const;
};

/// Thrown by DomainChecker in strict mode.
class DomainError : public std::runtime_error {
 public:
  explicit DomainError(const DomainViolation& v)
      : std::runtime_error(v.to_string()), violation_(v) {}
  const DomainViolation& violation() const { return violation_; }

 private:
  DomainViolation violation_;
};

/// Central ownership registry + active-domain stack.  One per Cluster
/// (standalone Testbenches and unit tests may build their own).
class DomainChecker {
 public:
  DomainChecker() : mode_(mode_from_env()) {}

  /// TFSIM_DOMAIN_CHECK=off|collect|strict; strict when unset/junk.
  static DomainCheckMode mode_from_env();

  void set_mode(DomainCheckMode mode) { mode_ = mode; }
  DomainCheckMode mode() const { return mode_; }

  /// Register a domain (normally one per node); returns its id.
  DomainId add_domain(std::string name);
  std::size_t num_domains() const { return names_.size(); }
  const std::string& domain_name(DomainId id) const;

  /// Event context for violation reports (time + event index).  Optional:
  /// unbound checkers report t=0/event 0.
  void bind_engine(const Engine* engine) { engine_ = engine; }

  /// Innermost guard's domain, or kNoDomain outside any guard.
  DomainId active() const {
    return stack_.empty() ? kNoDomain : stack_.back().domain;
  }
  bool in_guard() const { return !stack_.empty(); }
  std::size_t guard_depth() const { return stack_.size(); }

  /// Record (and log) a violation.  Throws DomainError in strict mode;
  /// discards in off mode.
  void report(DomainViolation v);

  bool clean() const { return total_ == 0; }
  /// Total violations reported (including any beyond the storage cap).
  std::uint64_t total() const { return total_; }
  /// Stored violations (capped at kMaxStored to bound memory).
  const std::vector<DomainViolation>& violations() const {
    return violations_;
  }
  void clear();

 private:
  friend class DomainGuard;
  friend class DomainHandle;
  struct GuardFrame {
    DomainId domain = kNoDomain;
    std::string label;
  };

  void push(DomainId domain, std::string label);
  void pop();

  static constexpr std::size_t kMaxStored = 256;
  DomainCheckMode mode_;
  std::vector<std::string> names_;
  std::vector<GuardFrame> stack_;
  const Engine* engine_ = nullptr;
  std::vector<DomainViolation> violations_;
  std::uint64_t total_ = 0;
};

/// RAII active-domain scope.  A null checker makes the guard inert, so
/// call sites can guard unconditionally.  The label names the activity for
/// violation reports ("ctx:stream", "net:deliver borrower->lender1").
class DomainGuard {
 public:
  DomainGuard(DomainChecker* checker, DomainId domain, std::string label = "")
      : checker_(checker) {
    if (checker_ != nullptr && checker_->mode() != DomainCheckMode::kOff) {
      checker_->push(domain, std::move(label));
    } else {
      checker_ = nullptr;  // mode switched mid-scope must not unbalance
    }
  }
  ~DomainGuard() {
    if (checker_ != nullptr) checker_->pop();
  }
  DomainGuard(const DomainGuard&) = delete;
  DomainGuard& operator=(const DomainGuard&) = delete;

 private:
  DomainChecker* checker_;
};

/// Per-object ownership record embedded by TFSIM_DOMAIN_OWNED.  Unbound
/// handles (standalone objects, unit tests) make touch() free.
class DomainHandle {
 public:
  void bind(DomainChecker& checker, DomainId domain, std::string object_name) {
    checker_ = &checker;
    domain_ = domain;
    object_ = std::move(object_name);
  }
  void unbind() {
    checker_ = nullptr;
    domain_ = kNoDomain;
  }
  bool bound() const { return checker_ != nullptr; }
  DomainId id() const { return domain_; }
  DomainChecker* checker() const { return checker_; }
  const std::string& object_name() const { return object_; }

  /// Assert the active domain owns this object.  Unchecked outside guards
  /// and in off mode; O(1) otherwise.
  void touch(const char* what) const {
    if (checker_ == nullptr || checker_->mode() == DomainCheckMode::kOff) {
      return;
    }
    if (!checker_->in_guard()) return;
    if (checker_->active() == domain_) return;
    report_mismatch(what);
  }

 private:
  void report_mismatch(const char* what) const;

  DomainChecker* checker_ = nullptr;
  DomainId domain_ = kNoDomain;
  std::string object_;
};

/// Annotates a class as domain-owned sim state (simlint rule R5 statically
/// requires the annotation on the configured ownership set and forbids
/// public mutable members on annotated classes).  Leaves the access level
/// `private`.
#define TFSIM_DOMAIN_OWNED                                                  \
 public:                                                                    \
  ::tfsim::sim::DomainHandle& tfsim_domain() { return tfsim_domain_h_; }    \
  const ::tfsim::sim::DomainHandle& tfsim_domain() const {                  \
    return tfsim_domain_h_;                                                 \
  }                                                                         \
                                                                            \
 private:                                                                   \
  ::tfsim::sim::DomainHandle tfsim_domain_h_;

/// Call on every mutating entry point of a TFSIM_DOMAIN_OWNED class.
#define TFSIM_DOMAIN_TOUCH(what) this->tfsim_domain_h_.touch(what)

}  // namespace tfsim::sim
