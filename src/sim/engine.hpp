// Discrete-event simulation engine.
//
// A single-threaded event calendar: callbacks scheduled at absolute simulated
// times, executed in (time, insertion-order) order.  Deterministic by
// construction — equal-time events run in the order they were scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/units.hpp"

namespace tfsim::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Handle for cancelling a scheduled event.  Default-constructed handles
  /// are inert; cancel() on an already-fired event is a no-op.
  class EventId {
   public:
    EventId() = default;
    bool valid() const { return !alive_.expired(); }

   private:
    friend class Engine;
    explicit EventId(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
    std::weak_ptr<bool> alive_;
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedule `cb` `dt` after the current time.
  EventId schedule_in(Time dt, Callback cb) { return schedule_at(now_ + dt, std::move(cb)); }

  /// Cancel a previously scheduled event.  Safe on fired/invalid ids.
  void cancel(EventId& id);

  /// Run the earliest pending event.  Returns false if the calendar is empty.
  bool step();

  /// Run until the calendar is empty.
  void run();

  /// Run events with time <= t, then set now() = t.
  void run_until(Time t);

  /// Run until `stop` returns true (checked after every event) or the
  /// calendar empties.  Returns true if `stop` triggered the halt.
  bool run_while_pending(const std::function<bool()>& stop);

  /// Number of live (non-cancelled) scheduled events.
  std::size_t pending() const { return live_; }

  /// Total events executed since construction (for tests / reporting).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> alive;  // *alive == false => cancelled
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Event& ev);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace tfsim::sim
