// Discrete-event simulation engine.
//
// A single-threaded event calendar: callbacks scheduled at absolute simulated
// times, executed in (time, insertion-order) order.  Deterministic by
// construction — equal-time events run in the order they were scheduled.
//
// Storage is a slab: callbacks live in pooled slots recycled through a free
// list, and the priority queue holds small trivially-copyable entries that
// reference slots by (index, generation).  Scheduling therefore costs no
// per-event heap allocation (beyond std::function capture storage), and a
// stale handle — cancelled, fired, or slot-reused — is detected by a
// generation mismatch instead of a shared_ptr control block.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "sim/domain.hpp"
#include "sim/units.hpp"

namespace tfsim::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Handle for cancelling a scheduled event.  Default-constructed handles
  /// are inert; cancel() on an already-fired event is a no-op.  A handle
  /// references its engine and must not be used after the engine is
  /// destroyed.
  class EventId {
   public:
    EventId() = default;
    /// True while the event is still pending (not fired, not cancelled).
    bool valid() const;

   private:
    friend class Engine;
    EventId(const Engine* owner, std::uint32_t slot, std::uint64_t gen)
        : owner_(owner), slot_(slot), gen_(gen) {}
    const Engine* owner_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t gen_ = 0;
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedule `cb` `dt` after the current time.
  EventId schedule_in(Time dt, Callback cb) { return schedule_at(now_ + dt, std::move(cb)); }

  /// Cancel a previously scheduled event.  Safe on fired/invalid ids.
  /// Presenting a handle minted by a *different* engine is a no-op on this
  /// calendar, but with per-domain engines (sim/pdes.hpp) it almost always
  /// means a cross-domain cancel bug — when a DomainChecker is bound it is
  /// reported as a violation (strict throws, collect records, off stays
  /// silent).  The foreign event is never touched either way.
  void cancel(EventId& id);

  /// Run the earliest pending event.  Returns false if the calendar is empty.
  bool step();

  /// Run until the calendar is empty.
  void run();

  /// Run events with time <= t, then set now() = t.
  void run_until(Time t);

  /// Run events with time strictly < t; now() is left at the last executed
  /// event (NOT advanced to t).  This is the PDES window primitive: a
  /// domain executes its slice of [window, horizon) without claiming to
  /// have reached the horizon, so cross-domain arrivals scheduled exactly
  /// at the horizon are still in this calendar's future.
  void run_before(Time t);

  /// Earliest live event time, or nullopt when the calendar is empty.
  /// Prunes stale (cancelled) queue heads as a side effect.
  std::optional<Time> next_event_time();

  /// Run until `stop` returns true (checked after every event) or the
  /// calendar empties.  Returns true if `stop` triggered the halt.
  bool run_while_pending(const std::function<bool()>& stop);

  /// Number of live (non-cancelled) scheduled events.
  std::size_t pending() const { return live_; }

  /// Total events executed since construction (for tests / reporting).
  std::uint64_t executed() const { return executed_; }

  /// Wire up foreign-handle cancel reporting: `self` names the domain this
  /// calendar belongs to in violation reports.  Unbound engines (the
  /// default, and every pre-PDES caller) keep the historical silent no-op.
  void bind_domain_checker(DomainChecker* checker, DomainId self) {
    checker_ = checker;
    domain_id_ = self;
  }
  DomainId domain_id() const { return domain_id_; }

 private:
  /// Pooled callback storage.  `gen` increments every time the slot is
  /// released (fired or cancelled), invalidating queue entries and handles
  /// minted against the old generation.
  struct Slot {
    Callback cb;
    std::uint64_t gen = 0;
    bool live = false;
  };
  /// Calendar entry: trivially copyable, so popping never needs to move a
  /// callback (or const_cast priority_queue::top()).
  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.gen == e.gen;
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  bool pop_next(Entry& ev);
  void report_foreign_cancel(const EventId& id) const;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // released slot indices, LIFO reuse
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  DomainChecker* checker_ = nullptr;  // foreign-cancel reporting (optional)
  DomainId domain_id_ = kNoDomain;
};

inline bool Engine::EventId::valid() const {
  if (owner_ == nullptr || slot_ >= owner_->slots_.size()) return false;
  const Slot& s = owner_->slots_[slot_];
  return s.live && s.gen == gen_;
}

}  // namespace tfsim::sim
