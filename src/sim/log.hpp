// Leveled logging to stderr.  Off by default above Warn so benches stay
// machine-readable; tests can raise verbosity via TFSIM_LOG env var or
// set_level().
#pragma once

#include <sstream>
#include <string>

namespace tfsim::sim {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
/// Parse "debug"/"info"/"warn"/"error"/"off"; returns Warn on junk.
LogLevel parse_log_level(const std::string& s);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style logger: LOG(Info) << "x=" << x;  Evaluates the stream only
/// when the level is enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

#define TFSIM_LOG(level)                                      \
  if (::tfsim::sim::log_level() > ::tfsim::sim::LogLevel::level) { \
  } else                                                      \
    ::tfsim::sim::LogLine(::tfsim::sim::LogLevel::level)

}  // namespace tfsim::sim
