#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tfsim::sim {

Engine::EventId Engine::schedule_at(Time t, Callback cb) {
  if (t < now_) {
    throw std::logic_error("Engine::schedule_at: time is in the past");
  }
  auto alive = std::make_shared<bool>(true);
  EventId id(alive);
  queue_.push(Event{t, next_seq_++, std::move(cb), std::move(alive)});
  ++live_;
  return id;
}

void Engine::cancel(EventId& id) {
  if (auto alive = id.alive_.lock()) {
    if (*alive) {
      *alive = false;
      assert(live_ > 0);
      --live_;
    }
  }
  id.alive_.reset();
}

bool Engine::pop_next(Event& ev) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the event is moved out via const_cast,
    // which is safe because we pop immediately and never re-heapify.
    ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (*ev.alive) return true;  // skip cancelled tombstones
  }
  return false;
}

bool Engine::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  assert(ev.time >= now_);
  now_ = ev.time;
  *ev.alive = false;
  --live_;
  ++executed_;
  ev.cb();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t) {
  for (;;) {
    // Drop cancelled tombstones so the deadline check sees a live event.
    while (!queue_.empty() && !*queue_.top().alive) queue_.pop();
    if (queue_.empty() || queue_.top().time > t) break;
    step();
  }
  if (t > now_) now_ = t;
}

bool Engine::run_while_pending(const std::function<bool()>& stop) {
  while (!stop()) {
    if (!step()) return false;
  }
  return true;
}

}  // namespace tfsim::sim
