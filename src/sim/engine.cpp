#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tfsim::sim {

std::uint32_t Engine::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return idx;
}

void Engine::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.cb = nullptr;  // drop capture storage; the slab itself is recycled
  ++s.gen;         // invalidate outstanding handles and queue entries
  s.live = false;
  free_.push_back(idx);
}

Engine::EventId Engine::schedule_at(Time t, Callback cb) {
  if (t < now_) {
    throw std::logic_error("Engine::schedule_at: time is in the past");
  }
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.cb = std::move(cb);
  s.live = true;
  queue_.push(Entry{t, next_seq_++, idx, s.gen});
  ++live_;
  return EventId(this, idx, s.gen);
}

void Engine::cancel(EventId& id) {
  if (id.owner_ != nullptr && id.owner_ != this) {
    // Foreign handle: minted by another engine.  Historically a silent
    // no-op; with per-domain calendars it masks cross-domain cancel bugs,
    // so report it when a checker is bound (strict mode throws).
    report_foreign_cancel(id);
  } else if (id.owner_ == this && id.slot_ < slots_.size()) {
    const Slot& s = slots_[id.slot_];
    if (s.live && s.gen == id.gen_) {
      release_slot(id.slot_);
      assert(live_ > 0);
      --live_;
    }
  }
  id = EventId{};
}

void Engine::report_foreign_cancel(const EventId& id) const {
  if (checker_ == nullptr || checker_->mode() == DomainCheckMode::kOff) {
    return;
  }
  DomainViolation v;
  v.object = "Engine";
  v.what = "Engine::cancel (handle minted by a different engine)";
  v.owner = id.owner_->domain_id_;
  v.active = domain_id_;
  v.owner_name = checker_->domain_name(v.owner);
  v.active_name = checker_->domain_name(v.active);
  v.guard_label = "engine:foreign-cancel";
  v.when = now_;
  v.event_index = executed_;
  checker_->report(std::move(v));
}

bool Engine::pop_next(Entry& ev) {
  while (!queue_.empty()) {
    const Entry e = queue_.top();  // trivially copyable: cheap by-value pop
    queue_.pop();
    if (entry_live(e)) {
      ev = e;
      return true;
    }
    // stale entry: cancelled, or the slot was released and reused
  }
  return false;
}

bool Engine::step() {
  Entry ev;
  if (!pop_next(ev)) return false;
  assert(ev.time >= now_);
  now_ = ev.time;
  // Move the callback out before releasing: it may schedule new events that
  // immediately reuse this slot under a fresh generation.
  Callback cb = std::move(slots_[ev.slot].cb);
  release_slot(ev.slot);
  --live_;
  ++executed_;
  cb();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t) {
  for (;;) {
    // Drop stale entries so the deadline check sees a live event.
    while (!queue_.empty() && !entry_live(queue_.top())) queue_.pop();
    if (queue_.empty() || queue_.top().time > t) break;
    step();
  }
  if (t > now_) now_ = t;
}

void Engine::run_before(Time t) {
  for (;;) {
    while (!queue_.empty() && !entry_live(queue_.top())) queue_.pop();
    if (queue_.empty() || queue_.top().time >= t) break;
    step();
  }
}

std::optional<Time> Engine::next_event_time() {
  while (!queue_.empty() && !entry_live(queue_.top())) queue_.pop();
  if (queue_.empty()) return std::nullopt;
  return queue_.top().time;
}

bool Engine::run_while_pending(const std::function<bool()>& stop) {
  while (!stop()) {
    if (!step()) return false;
  }
  return true;
}

}  // namespace tfsim::sim
