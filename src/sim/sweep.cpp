#include "sim/sweep.hpp"

#include <cstdlib>
#include <string>

namespace tfsim::sim {

unsigned SweepRunner::jobs_from_env() {
  const char* v = std::getenv("TFSIM_JOBS");
  if (v == nullptr || *v == '\0') return 1;
  char* end = nullptr;
  const unsigned long n = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0') return 1;  // junk: fall back to serial
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
  }
  return static_cast<unsigned>(n);
}

}  // namespace tfsim::sim
