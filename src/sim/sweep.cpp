#include "sim/sweep.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "sim/log.hpp"

namespace tfsim::sim {

unsigned env_thread_count(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  // strtoul happily accepts a leading '-' and wraps it through modular
  // arithmetic ("-1" -> 4294967295 threads); reject the sign up front.
  const char* p = v;
  while (std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  if (*p == '-') {
    TFSIM_LOG(Warn) << name << ": negative thread count '" << v
                    << "' rejected; using " << fallback;
    return fallback;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long n = std::strtoul(p, &end, 10);
  if (end == p || *end != '\0') {
    TFSIM_LOG(Warn) << name << ": unparseable thread count '" << v
                    << "' (expected a small integer); using " << fallback;
    return fallback;
  }
  if (errno == ERANGE || n > kMaxEnvThreads) {
    TFSIM_LOG(Warn) << name << ": thread count '" << v << "' exceeds the "
                    << kMaxEnvThreads << "-thread ceiling; clamping";
    return kMaxEnvThreads;
  }
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
  }
  return static_cast<unsigned>(n);
}

unsigned SweepRunner::jobs_from_env() {
  return env_thread_count("TFSIM_JOBS", /*fallback=*/1);
}

}  // namespace tfsim::sim
