#include "sim/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tfsim::sim {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  assert(n > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_m, double alpha) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

Rng Rng::split() {
  Rng child(0);
  for (auto& w : child.s_) w = next();
  // Avoid the (astronomically unlikely) all-zero state.
  if (child.s_[0] == 0 && child.s_[1] == 0 && child.s_[2] == 0 &&
      child.s_[3] == 0) {
    child.s_[0] = 1;
  }
  return child;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double s) : n_(n), cdf_(n) {
  // A hard check, not an assert: with NDEBUG an empty table would make
  // cdf_.back() below undefined behaviour.
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be > 0");
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against FP slack
}

std::uint64_t ZipfGenerator::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace tfsim::sim
