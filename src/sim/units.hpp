// Time, bandwidth and size units used throughout the simulator.
//
// Simulated time is an integer count of picoseconds.  Picosecond resolution
// lets us represent both FPGA clock periods (~3.125 ns) and multi-second
// application runs in one 64-bit integer without rounding drift
// (2^64 ps ~ 213 days of simulated time).
#pragma once

#include <cstdint>

namespace tfsim::sim {

/// Simulated time in picoseconds.
using Time = std::uint64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000ULL;

/// A time far in the future; used as "never" / infinity sentinel.
inline constexpr Time kTimeNever = ~Time{0};

constexpr double to_ns(Time t) { return static_cast<double>(t) / static_cast<double>(kNanosecond); }
constexpr double to_us(Time t) { return static_cast<double>(t) / static_cast<double>(kMicrosecond); }
constexpr double to_ms(Time t) { return static_cast<double>(t) / static_cast<double>(kMillisecond); }
constexpr double to_sec(Time t) { return static_cast<double>(t) / static_cast<double>(kSecond); }

constexpr Time from_ns(double ns) { return static_cast<Time>(ns * static_cast<double>(kNanosecond)); }
constexpr Time from_us(double us) { return static_cast<Time>(us * static_cast<double>(kMicrosecond)); }
constexpr Time from_ms(double ms) { return static_cast<Time>(ms * static_cast<double>(kMillisecond)); }
constexpr Time from_sec(double s) { return static_cast<Time>(s * static_cast<double>(kSecond)); }

// ---------------------------------------------------------------------------
// Sizes.

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

// ---------------------------------------------------------------------------
// Bandwidth.  Stored as bytes per second (double: values like 12.5e9 are
// exactly representable and we never accumulate in this unit).

struct Bandwidth {
  double bytes_per_sec = 0.0;

  static constexpr Bandwidth from_gbit(double gbit_per_sec) {
    return Bandwidth{gbit_per_sec * 1e9 / 8.0};
  }
  static constexpr Bandwidth from_gbyte(double gbyte_per_sec) {
    return Bandwidth{gbyte_per_sec * 1e9};
  }
  constexpr double gbyte_per_sec() const { return bytes_per_sec / 1e9; }
  constexpr double gbit_per_sec() const { return bytes_per_sec * 8.0 / 1e9; }

  /// Time to serialize `bytes` onto a channel of this bandwidth.
  constexpr Time serialization_time(std::uint64_t bytes) const {
    if (bytes_per_sec <= 0.0) return kTimeNever;
    return static_cast<Time>(static_cast<double>(bytes) / bytes_per_sec *
                             static_cast<double>(kSecond));
  }
};

/// Frequency helper: period of a clock in picoseconds.
constexpr Time clock_period(double hz) {
  return static_cast<Time>(static_cast<double>(kSecond) / hz);
}

}  // namespace tfsim::sim
