// Intra-run parallel discrete-event simulation (PDES): per-domain slab
// calendars behind a conservative barrier-window facade.
//
// SweepRunner parallelizes *across* sweep points; ParallelEngine makes one
// big scenario use all cores.  The design follows the classic conservative
// (Chandy-Misra style, barrier-window variant) recipe, specialized to this
// simulator's invariants:
//
//  * One Engine calendar per domain (node partition; sim/domain.hpp
//    ownership, proven event-dispatch-local by the runtime DomainChecker
//    and simlint R1-R5).  Events scheduled on a domain's calendar only
//    mutate that domain's state.
//  * Links are the sync boundary: a frame cannot arrive before
//    `now + prop_delay`, so the minimum propagation delay over the fabric
//    is a sound lookahead.  Cross-domain effects travel exclusively
//    through post(), which enforces `t >= horizon()` while a window is
//    executing.
//  * Execution advances in windows [T, T + lookahead): every domain runs
//    its own events with time < horizon independently (in parallel),
//    then a barrier flushes the cross-domain outboxes into the target
//    calendars in a fixed order (source-domain id, send order) and opens
//    the next window at the new global minimum event time.
//
// Determinism is inherited from the sweep runner's contract and is
// non-negotiable: for a fixed (domains, lookahead, workload), every thread
// count — including the inline serial fallback — executes byte-identical
// per-domain event sequences.  Each domain's calendar is a deterministic
// (time, seq) queue; outbox flushing is deterministic because per-domain
// execution is; therefore thread scheduling can change wall-clock time
// only, never results.  determinism_check scenario 8 and
// tests/property/pdes_property_test.cpp enforce this continuously.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "sim/units.hpp"

namespace tfsim::sim {

struct PdesConfig {
  /// Worker threads executing domain windows.  0 or 1 = run every window
  /// inline on the calling thread (the serial reference the determinism
  /// digests compare against); N > 1 = a pool of N workers.
  unsigned threads = 0;
  /// Conservative sync horizon; must be > 0 before run().  Derive it from
  /// the fabric (net::Network::min_propagation()) or set it explicitly.
  Time lookahead = 0;

  /// Worker count from $TFSIM_PDES: unset/empty/"off" -> 0 (PDES off),
  /// 0 -> one worker per hardware thread, N -> N workers.  Junk, negative
  /// and overflowing values are rejected with a warning (see
  /// sim::env_thread_count); oversized values clamp to kMaxEnvThreads.
  static unsigned threads_from_env();
};

class ParallelEngine {
 public:
  /// `num_domains` fixed at construction; domain ids are [0, num_domains).
  explicit ParallelEngine(std::size_t num_domains, PdesConfig cfg = {});
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  std::size_t num_domains() const { return domains_.size(); }
  unsigned threads() const { return cfg_.threads; }
  Time lookahead() const { return cfg_.lookahead; }
  /// Reconfigure the sync horizon (illegal while run() is executing).
  void set_lookahead(Time lookahead);

  /// Domain d's calendar.  Full Engine API *within* the domain: events it
  /// schedules on itself (any time >= its now()) never synchronize.
  Engine& domain(DomainId d) { return *domains_.at(d); }
  const Engine& domain(DomainId d) const { return *domains_.at(d); }

  /// Cross-domain conservative send: run `cb` in domain `dst` at absolute
  /// time `t`.  `src` must be the posting domain (the one whose event is
  /// executing).  While a window is open, a send to a different domain
  /// must respect the lookahead horizon (`t >= horizon()`); sends to the
  /// posting domain itself are unconstrained beyond `t >= now()` —
  /// zero-delay self-sends are legal.  Outside run() (setup), posts
  /// schedule directly into the target calendar.
  void post(DomainId src, DomainId dst, Time t, Engine::Callback cb);

  /// Execute barrier windows until every calendar is empty.  May be called
  /// repeatedly; throws std::logic_error when lookahead <= 0.  If a domain
  /// callback throws, the run aborts at the window barrier and the first
  /// failing domain's exception (lowest id) is rethrown; calendar state
  /// after an aborted run is unspecified.
  void run();

  /// True while run() is executing (post() uses this to pick the
  /// setup-time vs windowed path).
  bool running() const { return running_; }
  /// Start of the current window (meaningful while running()).
  Time window_start() const { return window_start_; }
  /// End of the current window: cross-domain sends must land at or after
  /// this time.
  Time horizon() const { return horizon_; }

  /// Barrier windows executed since construction.
  std::uint64_t windows() const { return windows_; }
  /// Total events executed across every domain.
  std::uint64_t executed() const;
  /// Live events pending across every domain (outboxes are always empty
  /// between runs).
  std::size_t pending() const;

 private:
  struct Pending {
    DomainId dst = 0;
    Time time = 0;
    Engine::Callback cb;
  };

  /// Earliest live event time across every calendar; kTimeNever when idle.
  Time next_event_time();
  /// Move every outbox entry into its target calendar, in (source domain,
  /// send order) order — the deterministic tie-break for same-timestamp
  /// cross-domain arrivals.
  void flush_outboxes();
  /// Open the window at the global minimum event time.  False when idle.
  bool begin_window();
  /// Run domain d's slice of the current window.
  void execute_domain(std::size_t d);
  void run_serial();
  void run_parallel();

  PdesConfig cfg_;
  std::vector<std::unique_ptr<Engine>> domains_;
  std::vector<std::vector<Pending>> outboxes_;  ///< per source domain
  std::vector<std::exception_ptr> errors_;      ///< per domain, this window
  bool running_ = false;
  bool aborted_ = false;
  Time window_start_ = 0;
  Time horizon_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace tfsim::sim
