// C++20 coroutine processes for the simulation engine.
//
// A `Task` is an eagerly-started simulation process.  Inside it you can:
//   co_await delay(engine, dt);     // advance simulated time
//   co_await trigger;               // wait for a one-shot event
//   co_await semaphore.acquire();   // wait for a resource slot
//   co_await other_task;            // join another process
//
// Tasks are detached by default: a Task handle may be dropped while the
// coroutine keeps running under engine control.  Completion state is held in
// a shared block that survives both the handle and the frame.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace tfsim::sim {

class Task {
 public:
  struct State {
    bool done = false;
    std::exception_ptr exception;
    std::vector<std::coroutine_handle<>> waiters;
  };

  struct promise_type {
    std::shared_ptr<State> state = std::make_shared<State>();

    Task get_return_object() {
      return Task(state);
    }
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        auto st = h.promise().state;
        st->done = true;
        auto waiters = std::move(st->waiters);
        h.destroy();
        for (auto w : waiters) w.resume();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { state->exception = std::current_exception(); }
  };

  Task() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const { return !state_ || state_->done; }

  /// Rethrow an exception that escaped the process, if any.
  void rethrow_if_failed() const {
    if (state_ && state_->exception) std::rethrow_exception(state_->exception);
  }
  bool failed() const { return state_ && state_->exception != nullptr; }

  // Awaitable: co_await task joins it.
  bool await_ready() const { return done(); }
  void await_suspend(std::coroutine_handle<> h) { state_->waiters.push_back(h); }
  void await_resume() const { rethrow_if_failed(); }

 private:
  explicit Task(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Awaiter that suspends the current process for `dt` simulated time.
struct DelayAwaiter {
  Engine& engine;
  Time dt;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    engine.schedule_in(dt, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Engine& engine, Time dt) { return {engine, dt}; }

/// Awaiter that suspends until absolute simulated time `t` (no-op if past).
struct UntilAwaiter {
  Engine& engine;
  Time t;

  bool await_ready() const noexcept { return engine.now() >= t; }
  void await_suspend(std::coroutine_handle<> h) {
    engine.schedule_at(t, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline UntilAwaiter until(Engine& engine, Time t) { return {engine, t}; }

}  // namespace tfsim::sim
