#include "sim/config.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace tfsim::sim {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Option::Kind::Flag, "false", help, std::nullopt};
}

void ArgParser::add_string(const std::string& name, const std::string& def,
                           const std::string& help) {
  options_[name] = Option{Option::Kind::String, def, help, std::nullopt};
}

void ArgParser::add_int(const std::string& name, std::int64_t def,
                        const std::string& help) {
  options_[name] = Option{Option::Kind::Int, std::to_string(def), help, std::nullopt};
}

void ArgParser::add_double(const std::string& name, double def,
                           const std::string& help) {
  std::ostringstream os;
  os << def;
  options_[name] = Option{Option::Kind::Double, os.str(), help, std::nullopt};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "tfsim";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s", arg.c_str(),
                   usage().c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown option: --%s\n%s", arg.c_str(), usage().c_str());
      return false;
    }
    Option& opt = it->second;
    if (opt.kind == Option::Kind::Flag) {
      opt.value = has_value ? value : "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option --%s requires a value\n", arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    opt.value = value;
  }
  return true;
}

const ArgParser::Option& ArgParser::lookup(const std::string& name,
                                           Option::Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end()) {
    throw std::logic_error("ArgParser: option not registered: " + name);
  }
  if (it->second.kind != kind) {
    throw std::logic_error("ArgParser: option type mismatch: " + name);
  }
  return it->second;
}

bool ArgParser::flag(const std::string& name) const {
  const auto& opt = lookup(name, Option::Kind::Flag);
  return opt.value.value_or(opt.def) == "true";
}

std::string ArgParser::str(const std::string& name) const {
  const auto& opt = lookup(name, Option::Kind::String);
  return opt.value.value_or(opt.def);
}

std::int64_t ArgParser::integer(const std::string& name) const {
  const auto& opt = lookup(name, Option::Kind::Int);
  return std::stoll(opt.value.value_or(opt.def));
}

double ArgParser::real(const std::string& name) const {
  const auto& opt = lookup(name, Option::Kind::Double);
  return std::stod(opt.value.value_or(opt.def));
}

std::vector<std::int64_t> ArgParser::int_list(const std::string& name) const {
  const auto& opt = lookup(name, Option::Kind::String);
  const std::string raw = opt.value.value_or(opt.def);
  std::vector<std::int64_t> out;
  std::istringstream is(raw);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoll(tok));
  }
  return out;
}

std::vector<double> ArgParser::double_list(const std::string& name) const {
  const auto& opt = lookup(name, Option::Kind::String);
  const std::string raw = opt.value.value_or(opt.def);
  std::vector<double> out;
  std::istringstream is(raw);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stod(tok));
  }
  return out;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (opt.kind != Option::Kind::Flag) os << "=<" << opt.def << ">";
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace tfsim::sim
