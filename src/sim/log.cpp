#include "sim/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace tfsim::sim {

namespace {
// Atomic: sweep worker threads (sim/sweep.hpp) read the level concurrently.
// Host-side observability state, never simulation state: it cannot perturb
// event order or results, so it is exempt from the no-globals rule.
// simlint: allow(R3): process-wide log level is host-side, not sim state
std::atomic<LogLevel> g_level = [] {
  if (const char* env = std::getenv("TFSIM_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::Warn;
}();

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

LogLevel parse_log_level(const std::string& s) {
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::cerr << "[tfsim:" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace tfsim::sim
