// Analytic FIFO queueing servers.
//
// A FIFO server with deterministic service times admits an exact O(1)
// simulation: the finish time of a request arriving at t is
// max(t, next_free) + service, and next_free advances to the end of
// service.  Latency-only post-delays (propagation, DRAM CAS) do not occupy
// the server.  These servers model the link, the lender memory bus, and the
// event-level delay injector without per-cycle simulation; the cycle-level
// AXI model (src/axi) validates the equivalence.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/units.hpp"

namespace tfsim::sim {

/// Serializes requests at a fixed bandwidth; adds a fixed latency after
/// service that does not hold the server.
class BandwidthServer {
 public:
  BandwidthServer(Bandwidth bw, Time post_latency)
      : bw_(bw), post_latency_(post_latency) {}

  /// Admit `bytes` at time `now`; returns the completion time (service done
  /// + post latency).
  Time request(Time now, std::uint64_t bytes) {
    const Time start = std::max(now, next_free_);
    const Time done = start + bw_.serialization_time(bytes);
    next_free_ = done;
    busy_ += done - start;
    bytes_ += bytes;
    ++requests_;
    return done + post_latency_;
  }

  /// Earliest time a new request could begin service.
  Time next_free() const { return next_free_; }
  /// Queueing + service backlog seen by an arrival at `now`.
  Time backlog(Time now) const {
    return next_free_ > now ? next_free_ - now : 0;
  }

  Bandwidth bandwidth() const { return bw_; }
  Time post_latency() const { return post_latency_; }
  std::uint64_t bytes_served() const { return bytes_; }
  std::uint64_t requests() const { return requests_; }
  /// Total time the server spent serving (for utilization).
  Time busy_time() const { return busy_; }

  void set_bandwidth(Bandwidth bw) { bw_ = bw; }

 private:
  Bandwidth bw_;
  Time post_latency_;
  Time next_free_ = 0;
  Time busy_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t requests_ = 0;
};

/// Service priority for two-class links (QoS extension: the paper's
/// "network packet prioritization" resource-control mechanism).
enum class Priority {
  kLatency = 0,  ///< latency-sensitive class: bypasses bulk backlog
  kBulk = 1,     ///< default / throughput class
};

/// Two-class strict-priority bandwidth server.
///
/// Analytic approximation of a priority queue: the latency class sees only
/// its own backlog plus the residual of the transfer in service; the bulk
/// class queues behind everything.  Non-preemptive (a bulk frame in flight
/// finishes), no starvation control -- matching a simple two-queue egress
/// scheduler.  Capacity accounting is shared, so the classes cannot jointly
/// exceed the line rate.
class PriorityBandwidthServer {
 public:
  PriorityBandwidthServer(Bandwidth bw, Time post_latency)
      : bw_(bw), post_latency_(post_latency) {}

  Time request(Time now, std::uint64_t bytes, Priority prio) {
    const Time ser = bw_.serialization_time(bytes);
    Time start = 0;
    if (prio == Priority::kLatency) {
      // Non-preemptive priority: waits for earlier latency-class traffic
      // plus at most the residual of the bulk frame on the wire, but jumps
      // the queued bulk backlog entirely.
      const Time lo_backlog = lo_next_free_ > now ? lo_next_free_ - now : 0;
      const Time residual = std::min(lo_backlog, last_bulk_ser_);
      start = std::max(now + residual, hi_next_free_);
      hi_next_free_ = start + ser;
      // The bypassing frame steals wire time from the bulk queue.
      lo_next_free_ = std::max(lo_next_free_ + ser, hi_next_free_);
    } else {
      start = std::max({now, lo_next_free_, hi_next_free_});
      lo_next_free_ = start + ser;
      last_bulk_ser_ = ser;
    }
    busy_ += ser;
    bytes_ += bytes;
    ++requests_;
    return start + ser + post_latency_;
  }

  Time request(Time now, std::uint64_t bytes) {
    return request(now, bytes, Priority::kBulk);
  }

  Bandwidth bandwidth() const { return bw_; }
  std::uint64_t bytes_served() const { return bytes_; }
  std::uint64_t requests() const { return requests_; }
  Time busy_time() const { return busy_; }
  Time backlog(Time now, Priority prio) const {
    const Time horizon =
        prio == Priority::kLatency ? hi_next_free_ : lo_next_free_;
    return horizon > now ? horizon - now : 0;
  }

 private:
  Bandwidth bw_;
  Time post_latency_;
  Time hi_next_free_ = 0;
  Time lo_next_free_ = 0;
  Time last_bulk_ser_ = 0;  ///< bounds the non-preemption residual
  Time busy_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t requests_ = 0;
};

/// Admits one request every `interval`; the event-level twin of the
/// cycle-level RateGate (READY high once every PERIOD cycles).  A request
/// arriving at t is admitted at the first multiple-of-interval boundary at
/// or after max(t, previous admission + interval).
class IntervalServer {
 public:
  explicit IntervalServer(Time interval) : interval_(interval) {}

  /// Admit a request at `now`; returns the admission time.
  Time request(Time now) {
    // The gate opens at integer multiples of interval_ (COUNTER % PERIOD
    // == 0); the request takes the first open slot not already consumed.
    Time slot = next_boundary(std::max(now, earliest_));
    earliest_ = slot + interval_;
    ++requests_;
    return slot;
  }

  Time interval() const { return interval_; }
  void set_interval(Time interval) { interval_ = interval; }
  std::uint64_t requests() const { return requests_; }
  Time backlog(Time now) const {
    return earliest_ > now ? earliest_ - now : 0;
  }

 private:
  Time next_boundary(Time t) const {
    if (interval_ <= 1) return t;
    const Time rem = t % interval_;
    return rem == 0 ? t : t + (interval_ - rem);
  }

  Time interval_;
  Time earliest_ = 0;  ///< next admissible slot
  std::uint64_t requests_ = 0;
};

}  // namespace tfsim::sim
