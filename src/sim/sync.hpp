// Synchronization primitives for simulation processes.
//
//  * Trigger    — one-shot event; any number of waiters, fires once.
//  * Semaphore  — counted resource with FIFO waiters (models NIC request
//                 windows, credit pools, link slots ...).
//  * Latch      — countdown: fires when N completions have been posted.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

namespace tfsim::sim {

/// One-shot event.  `fire()` resumes all current waiters synchronously and
/// makes all future awaits ready immediately.
class Trigger {
 public:
  bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) h.resume();
  }

  /// Re-arm a fired trigger (no waiters may be pending).
  void reset() {
    assert(waiters_.empty());
    fired_ = false;
  }

  bool await_ready() const noexcept { return fired_; }
  void await_suspend(std::coroutine_handle<> h) { waiters_.push_back(h); }
  void await_resume() const noexcept {}

 private:
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counted semaphore with strict FIFO wakeup order (fairness matters: the
/// paper's Fig. 6 "equal division of bandwidth" depends on fair arbitration).
class Semaphore {
 public:
  explicit Semaphore(std::size_t initial) : count_(initial) {}

  std::size_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

  struct Acquire {
    Semaphore& sem;
    bool await_ready() noexcept {
      if (sem.count_ > 0 && sem.waiters_.empty()) {
        --sem.count_;  // fast path: take the slot without suspending
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
    void await_resume() const noexcept {
      // Slot was either taken in await_ready or handed over by release().
    }
  };

  /// co_await sem.acquire(); takes one slot (FIFO among waiters).
  Acquire acquire() { return Acquire{*this}; }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      h.resume();  // slot handed directly to the waiter; count_ unchanged
    } else {
      ++count_;
    }
  }

 private:
  friend struct Acquire;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: `count_down()` N times fires the trigger.
class Latch {
 public:
  explicit Latch(std::size_t n) : remaining_(n) {
    if (remaining_ == 0) done_.fire();
  }

  void count_down() {
    assert(remaining_ > 0);
    if (--remaining_ == 0) done_.fire();
  }

  std::size_t remaining() const { return remaining_; }

  bool await_ready() const noexcept { return done_.fired(); }
  void await_suspend(std::coroutine_handle<> h) { done_.await_suspend(h); }
  void await_resume() const noexcept {}

 private:
  std::size_t remaining_;
  Trigger done_;
};

}  // namespace tfsim::sim
