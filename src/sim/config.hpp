// Command-line configuration for benches and examples.
//
// Flags take the form --key=value or --key value; bare --key is a boolean.
// Every option is registered with a default and a help string, so each
// binary prints a self-describing --help.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tfsim::sim {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Register options (call before parse()).
  void add_flag(const std::string& name, const std::string& help);
  void add_string(const std::string& name, const std::string& def,
                  const std::string& help);
  void add_int(const std::string& name, std::int64_t def, const std::string& help);
  void add_double(const std::string& name, double def, const std::string& help);

  /// Parse argv.  Returns false (after printing usage) on --help or on an
  /// unknown/malformed option.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;

  /// Comma-separated integer list option (e.g. --periods=1,10,100).
  std::vector<std::int64_t> int_list(const std::string& name) const;

  /// Comma-separated double list option (e.g. --delays-us=0.5,1,2.5).
  std::vector<double> double_list(const std::string& name) const;

  std::string usage() const;

 private:
  struct Option {
    enum class Kind { Flag, String, Int, Double } kind;
    std::string def;
    std::string help;
    std::optional<std::string> value;
  };
  const Option& lookup(const std::string& name, Option::Kind kind) const;

  std::string description_;
  std::string program_;
  std::map<std::string, Option> options_;
};

}  // namespace tfsim::sim
