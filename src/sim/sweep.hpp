// Deterministic parallel sweep runner.
//
// Every figure in the paper is a sweep over independent configurations
// (PERIOD, contention level, workload mix); each point builds its own
// Engine/Testbed and shares nothing with its neighbours.  SweepRunner
// fans those points out across a fixed-size thread pool and collects the
// results in input order, so the output is byte-identical to a serial
// loop — parallelism changes wall-clock time only, never results.
//
// Requirements on the job function: it must not touch mutable state shared
// across points (each point constructs its own Session/Testbed/Engine/Rng;
// globals such as the log level are read-only during a sweep).  Exceptions
// thrown by a job are captured and rethrown on the caller's thread — the
// first failing input index wins, matching serial behaviour.
//
// The worker count comes from the TFSIM_JOBS environment variable by
// default: unset or 1 → serial (run on the calling thread, no pool),
// 0 → one worker per hardware thread, N → N workers.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tfsim::sim {

/// Ceiling for thread counts taken from the environment.  Far above any
/// sane machine, but low enough that a negative value wrapped through
/// strtoul (TFSIM_JOBS=-1 -> 4294967295) or a typo'd exponent can no
/// longer ask for billions of threads.
inline constexpr unsigned kMaxEnvThreads = 256;

/// Hardened thread-count parser shared by TFSIM_JOBS and TFSIM_PDES:
///   unset/empty -> `fallback`
///   "0"         -> one worker per hardware thread
///   1..ceiling  -> that many workers
///   negative or non-numeric junk -> warn, `fallback`
///   > kMaxEnvThreads (including strtoul overflow) -> warn, clamp
unsigned env_thread_count(const char* name, unsigned fallback);

class SweepRunner {
 public:
  /// `jobs` = maximum worker threads; values < 1 are clamped to 1 (serial).
  explicit SweepRunner(unsigned jobs = jobs_from_env())
      : jobs_(jobs < 1 ? 1 : jobs) {}

  /// Worker count from $TFSIM_JOBS (see file comment).
  static unsigned jobs_from_env();

  unsigned jobs() const { return jobs_; }

  /// Run `fn(i)` for every i in [0, count) and return the results in input
  /// order.  With jobs() == 1 (or count < 2) the jobs run inline on the
  /// calling thread; otherwise a pool of min(jobs, count) threads pulls
  /// indices from a shared counter.  Either way the result vector is
  /// identical.
  template <typename Fn>
  auto run(std::size_t count, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>,
                  "SweepRunner jobs must return a result (the sweep row)");
    std::vector<R> results;
    if (count == 0) return results;
    results.reserve(count);
    const std::size_t workers = std::min<std::size_t>(jobs_, count);
    if (workers <= 1) {
      for (std::size_t i = 0; i < count; ++i) results.push_back(fn(i));
      return results;
    }

    std::vector<std::optional<R>> staging(count);
    std::vector<std::exception_ptr> errors(count);
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          staging[i].emplace(fn(i));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();

    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    for (auto& s : staging) results.push_back(std::move(*s));
    return results;
  }

  /// Map `fn` over `inputs`, results in input order.
  template <typename T, typename Fn>
  auto map(const std::vector<T>& inputs, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, const T&>> {
    return run(inputs.size(),
               [&](std::size_t i) { return fn(inputs[i]); });
  }

 private:
  unsigned jobs_;
};

}  // namespace tfsim::sim
