// CSV trace/series output.  Benches and examples emit one CSV per figure so
// plots can be regenerated from the same rows the paper reports.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace tfsim::sim {

/// Minimal CSV writer with RFC-4180 quoting for string cells.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates).  Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::string& path);
  /// In-memory mode (for tests); contents available via str().
  CsvWriter();

  void header(const std::vector<std::string>& cols);

  class Row {
   public:
    explicit Row(CsvWriter& w) : writer_(w) {}
    ~Row();
    Row(const Row&) = delete;
    Row& operator=(const Row&) = delete;

    Row& col(const std::string& v);
    Row& col(double v);
    Row& col(std::uint64_t v);
    Row& col(std::int64_t v);
    Row& col(int v) { return col(static_cast<std::int64_t>(v)); }

   private:
    CsvWriter& writer_;
    std::vector<std::string> cells_;
    friend class CsvWriter;
  };

  Row row() { return Row(*this); }

  /// Contents so far (in-memory mode or mirror of what was written).
  std::string str() const { return buffer_.str(); }

  std::size_t rows_written() const { return rows_; }

 private:
  void write_line(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  std::ofstream file_;
  std::ostringstream buffer_;
  bool to_file_ = false;
  std::size_t rows_ = 0;
  std::size_t header_cols_ = 0;
};

}  // namespace tfsim::sim
