// Deterministic pseudo-random number generation for reproducible simulations.
//
// xoshiro256** seeded through SplitMix64, plus the distributions the
// workloads and the delay-injection framework need (uniform, exponential,
// lognormal, Pareto, Zipf).  Every experiment takes an explicit seed so runs
// are bit-for-bit repeatable.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace tfsim::sim {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Exponential with the given mean (= 1/lambda).
  double exponential(double mean);
  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean, double stddev);
  /// Lognormal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Pareto with scale x_m and shape alpha (heavy tail for alpha <= 2).
  double pareto(double x_m, double alpha);

  /// Split off an independent generator (for per-component streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Zipf-distributed integers in [0, n), exponent `s`.  Uses the classic
/// rejection-inversion-free CDF table for moderate n (key popularity in the
/// KV-store workload).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double s);
  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  std::vector<double> cdf_;  // cumulative probabilities, size n
};

}  // namespace tfsim::sim
