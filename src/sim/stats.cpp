#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tfsim::sim {

void OnlineStats::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  // Empty-operand guards are load-bearing: without them the Chan update
  // below divides by nt == 0 (NaN poisoning mean_/m2_ forever) and the
  // +/-infinity min_/max_ sentinels of an empty side would win the
  // min/max fold.  These merges run at every PDES barrier when per-domain
  // stats are combined, where empty domains are routine — regression
  // tests: StatsTest.Merge{BothEmpty,EmptyIntoFull,FullIntoEmpty}.
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double d = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += d * nb / nt;
  m2_ += other.m2_ + d * d * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

// ---------------------------------------------------------------------------

Histogram::Histogram()
    : buckets_(static_cast<std::size_t>(kNegOctaves + kPosOctaves)
                   << kSubBucketBits,
               0) {}

std::size_t Histogram::bucket_index(double value) const {
  // Values at or below the smallest representable octave (and NaN) collapse
  // into bucket 0; everything in (2^-kNegOctaves, 2^kPosOctaves) gets log2
  // bucketing, including the sub-unit range quantiles used to be blind to.
  if (!(value >= std::ldexp(1.0, -kNegOctaves))) return 0;
  auto octave = static_cast<int>(std::floor(std::log2(value)));
  if (octave >= kPosOctaves) octave = kPosOctaves - 1;
  if (octave < -kNegOctaves) octave = -kNegOctaves;
  // Position within the octave: value / 2^octave in [1, 2).
  const double frac = value / std::ldexp(1.0, octave) - 1.0;
  auto sub = static_cast<std::size_t>(frac * (1u << kSubBucketBits));
  if (sub >= (1u << kSubBucketBits)) sub = (1u << kSubBucketBits) - 1;
  return (static_cast<std::size_t>(octave + kNegOctaves) << kSubBucketBits) +
         sub;
}

double Histogram::bucket_midpoint(std::size_t idx) const {
  const auto octave = static_cast<int>(idx >> kSubBucketBits) - kNegOctaves;
  const auto sub = idx & ((1u << kSubBucketBits) - 1);
  const double base = std::ldexp(1.0, octave);
  const double width = base / (1u << kSubBucketBits);
  return base + (static_cast<double>(sub) + 0.5) * width;
}

void Histogram::add_count(double value, std::uint64_t count) {
  if (count == 0) return;
  if (total_ == 0) {
    raw_min_ = value;
    raw_max_ = value;
  } else {
    raw_min_ = std::min(raw_min_, value);
    raw_max_ = std::max(raw_max_, value);
  }
  buckets_[bucket_index(value)] += count;
  total_ += count;
  sum_ += value * static_cast<double>(count);
}

void Histogram::merge(const Histogram& other) {
  assert(buckets_.size() == other.buckets_.size());
  // Same empty-operand discipline as OnlineStats::merge: an empty side
  // must neither leak its raw_min_/raw_max_ placeholders (0.0 here, not
  // infinities) nor perturb sum_/total_.
  if (other.total_ == 0) return;
  if (total_ == 0) {
    raw_min_ = other.raw_min_;
    raw_max_ = other.raw_max_;
  } else {
    raw_min_ = std::min(raw_min_, other.raw_min_);
    raw_max_ = std::max(raw_max_, other.raw_max_);
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  raw_min_ = 0.0;
  raw_max_ = 0.0;
}

double Histogram::min() const { return total_ ? raw_min_ : 0.0; }
double Histogram::max() const { return total_ ? raw_max_ : 0.0; }
double Histogram::mean() const {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen >= rank) {
      // Interpolate within the bucket instead of returning its midpoint:
      // with log2 buckets a midpoint answer can misreport sparse tail
      // quantiles (p999) by up to the bucket width.  Model the in-bucket
      // samples as uniform and place the k-th of c at (k - 0.5)/c of the
      // bucket span.
      const auto octave = static_cast<int>(i >> kSubBucketBits) - kNegOctaves;
      const auto sub = i & ((1u << kSubBucketBits) - 1);
      const double base = std::ldexp(1.0, octave);
      const double width = base / (1u << kSubBucketBits);
      const double lower = base + static_cast<double>(sub) * width;
      const std::uint64_t before = seen - buckets_[i];
      const double pos_in_bucket =
          (static_cast<double>(rank - before) - 0.5) /
          static_cast<double>(buckets_[i]);
      return std::clamp(lower + pos_in_bucket * width, raw_min_, raw_max_);
    }
  }
  return raw_max_;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << total_ << " mean=" << mean() << " p50=" << p50()
     << " p99=" << p99() << " min=" << min() << " max=" << max();
  return os.str();
}

// ---------------------------------------------------------------------------

double RateMeter::bytes_per_sec(std::uint64_t interval_ps) const {
  if (interval_ps == 0) return 0.0;
  return static_cast<double>(bytes_) /
         (static_cast<double>(interval_ps) * 1e-12);
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) {
    // Mismatched series are a caller bug; silently truncating used to fit a
    // line through accidentally re-paired points.
    throw std::invalid_argument("linear_fit: x and y must have equal length");
  }
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace tfsim::sim
