#include "sim/domain.hpp"

#include <cstdlib>
#include <sstream>

#include "sim/engine.hpp"
#include "sim/log.hpp"

namespace tfsim::sim {

namespace {
const std::string kUnknownDomain = "<none>";
}  // namespace

std::string DomainViolation::to_string() const {
  std::ostringstream os;
  os << "cross-domain mutation: " << what << " on '" << object
     << "' owned by domain " << owner_name << " (#" << owner
     << ") while domain " << active_name << " (#" << active << ")";
  if (!guard_label.empty()) os << " [" << guard_label << "]";
  os << " was active at t=" << when << " event #" << event_index;
  return os.str();
}

DomainCheckMode DomainChecker::mode_from_env() {
  const char* env = std::getenv("TFSIM_DOMAIN_CHECK");
  if (env == nullptr) return DomainCheckMode::kStrict;
  const std::string s(env);
  if (s == "off") return DomainCheckMode::kOff;
  if (s == "collect") return DomainCheckMode::kCollect;
  if (s == "strict") return DomainCheckMode::kStrict;
  TFSIM_LOG(Warn) << "TFSIM_DOMAIN_CHECK: unknown mode '" << s
                  << "' (expected off|collect|strict); using strict";
  return DomainCheckMode::kStrict;
}

DomainId DomainChecker::add_domain(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<DomainId>(names_.size() - 1);
}

const std::string& DomainChecker::domain_name(DomainId id) const {
  if (id >= names_.size()) return kUnknownDomain;
  return names_[id];
}

void DomainChecker::push(DomainId domain, std::string label) {
  stack_.push_back(GuardFrame{domain, std::move(label)});
}

void DomainChecker::pop() { stack_.pop_back(); }

void DomainChecker::report(DomainViolation v) {
  if (mode_ == DomainCheckMode::kOff) return;
  ++total_;
  TFSIM_LOG(Error) << "[domain] " << v.to_string();
  if (mode_ == DomainCheckMode::kStrict) throw DomainError(v);
  if (violations_.size() < kMaxStored) violations_.push_back(std::move(v));
}

void DomainChecker::clear() {
  violations_.clear();
  total_ = 0;
}

void DomainHandle::report_mismatch(const char* what) const {
  DomainViolation v;
  v.object = object_;
  v.what = what;
  v.owner = domain_;
  v.active = checker_->active();
  v.owner_name = checker_->domain_name(domain_);
  v.active_name = checker_->domain_name(v.active);
  if (checker_->in_guard()) {
    // Innermost frame labels the activity that crossed the boundary.
    v.guard_label = checker_->stack_.back().label;
  }
  if (const Engine* e = checker_->engine_; e != nullptr) {
    v.when = e->now();
    v.event_index = e->executed();
  }
  checker_->report(std::move(v));
}

}  // namespace tfsim::sim
