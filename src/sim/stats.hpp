// Statistics collection: streaming moments, HDR-style histograms with
// quantiles, and rate meters.  Used by every experiment to report the
// latency/bandwidth series the paper's figures plot.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tfsim::sim {

/// Streaming count/mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1); 0 if n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log-linear histogram (HDR-histogram style): values bucketed with bounded
/// relative error, supporting quantile queries.  Range (2^-32, 2^62) —
/// negative octaves keep quantiles of sub-unit metrics (ratios, GB/s,
/// sub-µs latencies) meaningful; values at or below 2^-32 clamp to the
/// first bucket.  Sub-bucket resolution 1/64 (<1.6% relative error),
/// plenty for latency percentiles.
class Histogram {
 public:
  Histogram();

  void add(double value) { add_count(value, 1); }
  void add_count(double value, std::uint64_t count);
  void merge(const Histogram& other);
  void reset();

  std::uint64_t count() const { return total_; }
  double min() const;
  double max() const;
  double mean() const;

  /// q in [0, 1]; locates the bucket containing the q-quantile and linearly
  /// interpolates within it (values assumed uniform across the bucket), so
  /// tail quantiles are not snapped to bucket midpoints.  Clamped to the
  /// observed [min, max].  0 if empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  /// Human-readable summary "n=... mean=... p50=... p99=... max=...".
  std::string summary() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave
  static constexpr int kNegOctaves = 32;    // covers (2^-32, 1)
  static constexpr int kPosOctaves = 62;    // covers [1, 2^62)
  std::size_t bucket_index(double value) const;
  double bucket_midpoint(std::size_t idx) const;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double raw_min_ = 0.0;
  double raw_max_ = 0.0;
};

/// Accumulates (bytes, duration) to report achieved bandwidth.
class RateMeter {
 public:
  void add(std::uint64_t bytes) { bytes_ += bytes; }
  std::uint64_t bytes() const { return bytes_; }

  /// Bandwidth in bytes/sec over the given picosecond interval.
  double bytes_per_sec(std::uint64_t interval_ps) const;
  double gbyte_per_sec(std::uint64_t interval_ps) const {
    return bytes_per_sec(interval_ps) / 1e9;
  }
  void reset() { bytes_ = 0; }

 private:
  std::uint64_t bytes_ = 0;
};

/// Least-squares linear fit, used to validate the PERIOD-latency linear
/// correlation the paper reports in §III-B.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};
/// Precondition: x.size() == y.size(); throws std::invalid_argument
/// otherwise (mismatched series are a caller bug, never truncated).
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace tfsim::sim
