#include "sim/trace.hpp"

#include <iomanip>
#include <stdexcept>

namespace tfsim::sim {

CsvWriter::CsvWriter(const std::string& path) : to_file_(true) {
  file_.open(path, std::ios::trunc);
  if (!file_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::CsvWriter() = default;

void CsvWriter::header(const std::vector<std::string>& cols) {
  header_cols_ = cols.size();
  write_line(cols);
}

CsvWriter::Row::~Row() {
  if (!cells_.empty()) writer_.write_line(cells_);
  if (!cells_.empty()) ++writer_.rows_;
}

CsvWriter::Row& CsvWriter::Row::col(const std::string& v) {
  cells_.push_back(escape(v));
  return *this;
}

CsvWriter::Row& CsvWriter::Row::col(double v) {
  std::ostringstream os;
  os << std::setprecision(10) << v;
  cells_.push_back(os.str());
  return *this;
}

CsvWriter::Row& CsvWriter::Row::col(std::uint64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

CsvWriter::Row& CsvWriter::Row::col(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += cells[i];
  }
  line += '\n';
  buffer_ << line;
  if (to_file_) {
    file_ << line;
    file_.flush();
  }
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace tfsim::sim
