// Trace capture and replay.
//
// Characterizing a workload the library does not implement is a matter of
// recording its memory accesses once (on real hardware via a PIN/DynamoRIO
// tool, or from any of the built-in workloads) and replaying the trace
// against the simulated testbed under different PERIOD / distribution /
// placement configurations.  The format is line-oriented text, one access
// per line:
//
//     R <hex-offset>            independent read
//     W <hex-offset>            write
//     D <hex-offset>            dependent read (pointer chase)
//     C <nanoseconds>           compute gap
//
// Offsets are relative to a base chosen at replay time, so one trace can be
// replayed local or remote.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mem/address.hpp"
#include "node/context.hpp"
#include "sim/units.hpp"

namespace tfsim::workloads::replay {

enum class OpKind : std::uint8_t {
  kRead,
  kWrite,
  kDependentRead,
  kCompute,
};

struct TraceOp {
  OpKind kind = OpKind::kRead;
  std::uint64_t value = 0;  ///< offset (accesses) or nanoseconds (compute)

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

struct Trace {
  std::vector<TraceOp> ops;

  /// Highest offset touched + one line (bytes the replay arena must span).
  std::uint64_t footprint_bytes() const;
  std::uint64_t accesses() const;
};

/// Parse a trace from a stream.  Throws std::runtime_error with the line
/// number on malformed input.
Trace parse_trace(std::istream& in);
Trace parse_trace_string(const std::string& text);

/// Serialize (the exact inverse of parse).
void write_trace(std::ostream& out, const Trace& trace);

/// Records accesses into a Trace (relative to `base`) while forwarding them
/// to a MemContext -- wrap a workload's context use to capture its trace.
class TraceRecorder {
 public:
  TraceRecorder(node::MemContext& ctx, mem::Addr base)
      : ctx_(ctx), base_(base) {}

  void access(mem::Addr addr, bool write, bool dependent = false);
  void advance(sim::Time dt);

  const Trace& trace() const { return trace_; }

 private:
  node::MemContext& ctx_;
  mem::Addr base_;
  Trace trace_;
};

struct ReplayResult {
  sim::Time elapsed = 0;
  std::uint64_t accesses = 0;
  std::uint64_t remote_misses = 0;
  double avg_miss_latency_us = 0.0;
};

/// Replay `trace` on `node` with the arena placed per `placement`.
ReplayResult replay(node::Node& node, const Trace& trace,
                    node::Placement placement,
                    const node::CpuConfig& cpu = node::CpuConfig{});

}  // namespace tfsim::workloads::replay
