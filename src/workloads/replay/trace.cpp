#include "workloads/replay/trace.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tfsim::workloads::replay {

std::uint64_t Trace::footprint_bytes() const {
  std::uint64_t hi = 0;
  for (const auto& op : ops) {
    if (op.kind != OpKind::kCompute) {
      hi = std::max(hi, op.value + mem::kCacheLineBytes);
    }
  }
  return hi;
}

std::uint64_t Trace::accesses() const {
  std::uint64_t n = 0;
  for (const auto& op : ops) n += op.kind != OpKind::kCompute ? 1 : 0;
  return n;
}

Trace parse_trace(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](const char* what) -> void {
      throw std::runtime_error("trace line " + std::to_string(line_no) + ": " +
                               what);
    };
    if (line.size() < 3 || line[1] != ' ') fail("expected '<op> <value>'");
    TraceOp op;
    int base = 16;
    switch (line[0]) {
      case 'R': op.kind = OpKind::kRead; break;
      case 'W': op.kind = OpKind::kWrite; break;
      case 'D': op.kind = OpKind::kDependentRead; break;
      case 'C':
        op.kind = OpKind::kCompute;
        base = 10;
        break;
      default: fail("unknown op (want R/W/D/C)");
    }
    const char* begin = line.data() + 2;
    const char* end = line.data() + line.size();
    const auto [ptr, ec] = std::from_chars(begin, end, op.value, base);
    if (ec != std::errc{} || ptr != end) fail("bad value");
    trace.ops.push_back(op);
  }
  return trace;
}

Trace parse_trace_string(const std::string& text) {
  std::istringstream is(text);
  return parse_trace(is);
}

void write_trace(std::ostream& out, const Trace& trace) {
  for (const auto& op : trace.ops) {
    switch (op.kind) {
      case OpKind::kRead: out << "R " << std::hex << op.value << '\n'; break;
      case OpKind::kWrite: out << "W " << std::hex << op.value << '\n'; break;
      case OpKind::kDependentRead:
        out << "D " << std::hex << op.value << '\n';
        break;
      case OpKind::kCompute:
        out << "C " << std::dec << op.value << '\n';
        break;
    }
  }
}

void TraceRecorder::access(mem::Addr addr, bool write, bool dependent) {
  TraceOp op;
  op.kind = write ? OpKind::kWrite
                  : (dependent ? OpKind::kDependentRead : OpKind::kRead);
  op.value = addr - base_;
  trace_.ops.push_back(op);
  ctx_.access(addr, write, dependent);
}

void TraceRecorder::advance(sim::Time dt) {
  TraceOp op;
  op.kind = OpKind::kCompute;
  op.value = static_cast<std::uint64_t>(sim::to_ns(dt));
  trace_.ops.push_back(op);
  ctx_.advance(dt);
}

ReplayResult replay(node::Node& node, const Trace& trace,
                    node::Placement placement, const node::CpuConfig& cpu) {
  const std::uint64_t span = trace.footprint_bytes();
  const mem::Addr base =
      span == 0 ? 0 : node.allocate(span, placement);
  node::MemContext ctx(node, cpu, "replay");
  ctx.seek(node.engine().now());
  const sim::Time start = ctx.now();
  for (const auto& op : trace.ops) {
    switch (op.kind) {
      case OpKind::kRead: ctx.read(base + op.value); break;
      case OpKind::kWrite: ctx.write(base + op.value); break;
      case OpKind::kDependentRead:
        ctx.read(base + op.value, /*dependent=*/true);
        break;
      case OpKind::kCompute:
        ctx.advance(sim::from_ns(static_cast<double>(op.value)));
        break;
    }
  }
  ReplayResult res;
  res.elapsed = ctx.drain() - start;
  res.accesses = ctx.stats().accesses;
  res.remote_misses = ctx.stats().remote_misses;
  res.avg_miss_latency_us = ctx.stats().miss_latency_us.mean();
  return res;
}

}  // namespace tfsim::workloads::replay
