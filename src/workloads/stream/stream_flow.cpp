#include "workloads/stream/stream_flow.hpp"

namespace tfsim::workloads {

RemoteStreamFlow::RemoteStreamFlow(sim::Engine& engine, nic::DisaggNic& nic,
                                   FlowConfig cfg)
    : engine_(engine), nic_(nic), cfg_(cfg), cursor_(cfg.base),
      rng_(cfg.seed) {}

void RemoteStreamFlow::start() {
  stats_.first_issue = engine_.now();
  for (std::uint32_t i = 0; i < cfg_.concurrency; ++i) {
    lanes_.push_back(lane(i));
  }
}

bool RemoteStreamFlow::finished() const {
  for (const auto& l : lanes_) {
    if (!l.done()) return false;
  }
  return !lanes_.empty();
}

sim::Task RemoteStreamFlow::lane(std::uint32_t /*lane_id*/) {
  std::uint64_t since_pause = 0;
  // Per-flow phase offset so flows do not synchronize.
  const sim::Time phase_offset =
      cfg_.phase_on ? cfg_.seed * sim::from_us(97.0) : 0;
  while (engine_.now() < cfg_.stop_at) {
    if (cfg_.phase_on != 0 && cfg_.phase_off != 0) {
      const sim::Time cycle = cfg_.phase_on + cfg_.phase_off;
      const sim::Time pos = (engine_.now() + phase_offset) % cycle;
      if (pos >= cfg_.phase_on) {
        co_await sim::delay(engine_, cycle - pos);  // sleep out the off phase
        continue;
      }
    }
    // Next line in the streaming walk (shared cursor: lanes cooperate on
    // one sequential sweep, like prefetch streams of one application).
    const mem::Addr addr = cursor_;
    cursor_ += mem::kCacheLineBytes;
    if (cursor_ >= cfg_.base + cfg_.span_bytes) cursor_ = cfg_.base;

    const auto trace = nic_.remote_access(engine_.now(), addr, /*write=*/false,
                                          cfg_.priority);
    if (!trace.has_value()) co_return;  // detached / unmapped: stop the lane
    co_await sim::until(engine_, trace->completion);
    ++stats_.lines_completed;
    stats_.last_completion = trace->completion;
    stats_.latency_us.add(sim::to_us(trace->completion - trace->issued));

    if (cfg_.burst_lines != 0 && ++since_pause >= cfg_.burst_lines) {
      since_pause = 0;
      co_await sim::delay(engine_, static_cast<sim::Time>(rng_.exponential(
                                       static_cast<double>(cfg_.idle_mean))));
    }
  }
}

LocalStreamFlow::LocalStreamFlow(sim::Engine& engine, mem::Dram& dram,
                                 FlowConfig cfg)
    : engine_(engine), dram_(dram), cfg_(cfg) {}

void LocalStreamFlow::start() {
  stats_.first_issue = engine_.now();
  for (std::uint32_t i = 0; i < cfg_.concurrency; ++i) {
    lanes_.push_back(lane(i));
  }
}

bool LocalStreamFlow::finished() const {
  for (const auto& l : lanes_) {
    if (!l.done()) return false;
  }
  return !lanes_.empty();
}

sim::Task LocalStreamFlow::lane(std::uint32_t /*lane_id*/) {
  while (engine_.now() < cfg_.stop_at) {
    const sim::Time done =
        dram_.access(engine_.now(), mem::kCacheLineBytes);
    co_await sim::until(engine_, done);
    ++stats_.lines_completed;
    stats_.last_completion = done;
  }
}

}  // namespace tfsim::workloads
