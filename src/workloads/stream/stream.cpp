#include "workloads/stream/stream.hpp"

#include <cmath>
#include <stdexcept>

namespace tfsim::workloads {

namespace {
constexpr std::uint64_t kElemsPerLine = mem::kCacheLineBytes / sizeof(double);
}

const StreamKernelResult& StreamResult::kernel(const std::string& name) const {
  for (const auto& k : kernels) {
    if (k.kernel == name) return k;
  }
  throw std::out_of_range("StreamResult: no kernel " + name);
}

Stream::Stream(node::Node& node, const StreamConfig& cfg)
    : node_(node), cfg_(cfg) {
  a_ = std::make_unique<SimArray<double>>(node, cfg.elements,
                                          cfg.placement, "stream/a");
  b_ = std::make_unique<SimArray<double>>(node, cfg.elements,
                                          cfg.placement, "stream/b");
  c_ = std::make_unique<SimArray<double>>(node, cfg.elements,
                                          cfg.placement, "stream/c");
  for (std::uint64_t i = 0; i < cfg.elements; ++i) {
    (*a_)[i] = 1.0;
    (*b_)[i] = 2.0;
    (*c_)[i] = 0.0;
  }
}

// Each kernel walks the arrays line by line: one timed cache access per
// array line (reads for sources, a write for the destination -- write-
// allocate makes the line fetch a read; the dirty data leaves later as a
// writeback), plus the host-side arithmetic on all 16 elements in the line.

void Stream::kernel_copy(node::MemContext& ctx) {
  const std::uint64_t n = cfg_.elements;
  auto& av = a_->host();
  auto& cv = c_->host();
  for (std::uint64_t i = 0; i < n; i += kElemsPerLine) {
    ctx.read(a_->addr_of(i));
    ctx.write(c_->addr_of(i));
    const std::uint64_t end = std::min(n, i + kElemsPerLine);
    for (std::uint64_t j = i; j < end; ++j) cv[j] = av[j];
  }
}

void Stream::kernel_scale(node::MemContext& ctx) {
  const std::uint64_t n = cfg_.elements;
  const double s = cfg_.scalar;
  auto& bv = b_->host();
  auto& cv = c_->host();
  for (std::uint64_t i = 0; i < n; i += kElemsPerLine) {
    ctx.read(c_->addr_of(i));
    ctx.write(b_->addr_of(i));
    const std::uint64_t end = std::min(n, i + kElemsPerLine);
    for (std::uint64_t j = i; j < end; ++j) bv[j] = s * cv[j];
    ctx.advance((end - i) * cfg_.flop_cost);
  }
}

void Stream::kernel_add(node::MemContext& ctx) {
  const std::uint64_t n = cfg_.elements;
  auto& av = a_->host();
  auto& bv = b_->host();
  auto& cv = c_->host();
  for (std::uint64_t i = 0; i < n; i += kElemsPerLine) {
    ctx.read(a_->addr_of(i));
    ctx.read(b_->addr_of(i));
    ctx.write(c_->addr_of(i));
    const std::uint64_t end = std::min(n, i + kElemsPerLine);
    for (std::uint64_t j = i; j < end; ++j) cv[j] = av[j] + bv[j];
    ctx.advance((end - i) * cfg_.flop_cost);
  }
}

void Stream::kernel_triad(node::MemContext& ctx) {
  const std::uint64_t n = cfg_.elements;
  const double s = cfg_.scalar;
  auto& av = a_->host();
  auto& bv = b_->host();
  auto& cv = c_->host();
  for (std::uint64_t i = 0; i < n; i += kElemsPerLine) {
    ctx.read(b_->addr_of(i));
    ctx.read(c_->addr_of(i));
    ctx.write(a_->addr_of(i));
    const std::uint64_t end = std::min(n, i + kElemsPerLine);
    for (std::uint64_t j = i; j < end; ++j) av[j] = bv[j] + s * cv[j];
    ctx.advance(2 * (end - i) * cfg_.flop_cost);
  }
}

bool Stream::validate() const {
  // Arrays start uniform and every kernel maps uniform -> uniform, so the
  // expected values follow from replaying the kernel sequence on scalars
  // (the original STREAM validation).
  double ea = 1.0, eb = 2.0, ec = 0.0;
  for (std::uint32_t r = 0; r < cfg_.repetitions; ++r) {
    ec = ea;                    // copy
    eb = cfg_.scalar * ec;      // scale
    ec = ea + eb;               // add
    ea = eb + cfg_.scalar * ec; // triad
  }
  const double eps = 1e-8;
  for (std::uint64_t i = 0; i < cfg_.elements;
       i += std::max<std::uint64_t>(1, cfg_.elements / 1024)) {
    if (std::abs((*a_)[i] - ea) > eps * std::abs(ea)) return false;
    if (std::abs((*b_)[i] - eb) > eps * std::abs(eb)) return false;
    if (std::abs((*c_)[i] - ec) > eps * std::abs(ec)) return false;
  }
  return true;
}

StreamResult Stream::run() {
  StreamResult result;
  struct KernelDef {
    const char* name;
    void (Stream::*fn)(node::MemContext&);
    std::uint64_t bytes_per_elem;
  };
  const KernelDef defs[] = {
      {"copy", &Stream::kernel_copy, 16},
      {"scale", &Stream::kernel_scale, 16},
      {"add", &Stream::kernel_add, 24},
      {"triad", &Stream::kernel_triad, 24},
  };

  for (std::uint32_t rep = 0; rep < cfg_.repetitions; ++rep) {
    for (const auto& def : defs) {
      node::MemContext ctx(node_, cfg_.cpu, std::string("stream/") + def.name);
      ctx.seek(node_.engine().now());
      const sim::Time start = ctx.now();
      (this->*def.fn)(ctx);
      const sim::Time end = ctx.drain();

      StreamKernelResult kr;
      kr.kernel = def.name;
      kr.elapsed = end - start;
      kr.bytes = def.bytes_per_elem * cfg_.elements;
      kr.bandwidth_gbps =
          static_cast<double>(kr.bytes) / sim::to_sec(kr.elapsed) / 1e9;
      kr.avg_latency_us = ctx.stats().miss_latency_us.mean();
      result.total_elapsed += kr.elapsed;
      if (rep + 1 == cfg_.repetitions) {
        result.kernels.push_back(kr);
      }
    }
  }

  const bool ok = validate();
  double lat_sum = 0.0;
  for (auto& k : result.kernels) {
    k.validated = ok;
    result.best_bandwidth_gbps =
        std::max(result.best_bandwidth_gbps, k.bandwidth_gbps);
    lat_sum += k.avg_latency_us;
  }
  result.avg_latency_us =
      result.kernels.empty() ? 0.0 : lat_sum / static_cast<double>(result.kernels.size());
  result.validated = ok;
  return result;
}

}  // namespace tfsim::workloads
