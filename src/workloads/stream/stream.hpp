// STREAM (McCalpin) over simulated memory.
//
// The four kernels -- copy, scale, add, triad -- run on real double arrays
// (results are validated against the analytic expected values, as the
// original benchmark does) while every array line touched is charged to the
// simulated memory system.  Configured as in the paper: 10 M elements,
// ~0.23 GiB of arrays, beyond the node's 120 MiB of cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "node/context.hpp"
#include "node/node.hpp"
#include "workloads/sim_array.hpp"

namespace tfsim::workloads {

struct StreamConfig {
  std::uint64_t elements = 10'000'000;  ///< per array (doubles)
  std::uint32_t repetitions = 1;        ///< timed repetitions per kernel
  node::Placement placement = node::Placement::kRemote;
  /// 128 outstanding lines (threads x prefetch streams): together with the
  /// NIC window this pins the measured BDP at ~16.5 kB like the testbed.
  node::CpuConfig cpu{/*mlp=*/128, /*issue_cost=*/sim::from_ns(0.05)};
  sim::Time flop_cost = sim::from_ns(0.02);  ///< per floating-point op
  double scalar = 3.0;
};

struct StreamKernelResult {
  std::string kernel;
  sim::Time elapsed = 0;
  std::uint64_t bytes = 0;          ///< STREAM-counted bytes moved
  double bandwidth_gbps = 0.0;      ///< bytes / elapsed, GB/s
  double avg_latency_us = 0.0;      ///< mean remote-access latency observed
  bool validated = false;
};

struct StreamResult {
  std::vector<StreamKernelResult> kernels;
  sim::Time total_elapsed = 0;
  double best_bandwidth_gbps = 0.0;
  double avg_latency_us = 0.0;      ///< across all kernels
  bool validated = false;           ///< all kernels numerically correct

  const StreamKernelResult& kernel(const std::string& name) const;
};

class Stream {
 public:
  /// Arrays are allocated on `node` at construction (placement per config).
  Stream(node::Node& node, const StreamConfig& cfg);

  /// Run all four kernels once (plus repetitions) and report.
  StreamResult run();

  const StreamConfig& config() const { return cfg_; }
  /// Bytes of simulated memory the three arrays occupy.
  std::uint64_t footprint_bytes() const { return 3 * a_->bytes(); }

 private:
  void kernel_copy(node::MemContext& ctx);
  void kernel_scale(node::MemContext& ctx);
  void kernel_add(node::MemContext& ctx);
  void kernel_triad(node::MemContext& ctx);
  bool validate() const;

  node::Node& node_;
  StreamConfig cfg_;
  std::unique_ptr<SimArray<double>> a_;
  std::unique_ptr<SimArray<double>> b_;
  std::unique_ptr<SimArray<double>> c_;
};

}  // namespace tfsim::workloads
