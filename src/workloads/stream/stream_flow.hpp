// Closed-loop STREAM-like traffic flows for the contention experiments.
//
// The MCBN scenario (Fig. 6) runs N concurrent STREAM instances on the
// borrower, all using disaggregated memory; MCLN (Fig. 7) pins STREAM
// instances to the lender's local memory bus while one borrower instance
// streams remotely.  Concurrent instances need event-driven co-simulation,
// so each instance here is a set of coroutine "lanes" (its memory-level
// parallelism) issuing back-to-back line transfers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/address.hpp"
#include "mem/dram.hpp"
#include "nic/nic.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace tfsim::workloads {

struct FlowConfig {
  std::uint32_t concurrency = 32;  ///< in-flight line requests (lanes)
  mem::Addr base = 0;              ///< address range the flow walks
  std::uint64_t span_bytes = 256 * 1024 * 1024;
  sim::Time stop_at = sim::from_ms(10.0);
  sim::Priority priority = sim::Priority::kBulk;  ///< network QoS class
  /// Per-lane micro-bursts: after every `burst_lines` lines a lane pauses
  /// for an exponentially-distributed think time (0 = smooth, always-on).
  std::uint64_t burst_lines = 0;
  sim::Time idle_mean = 0;
  /// Flow-level macro phases: the whole flow alternates `phase_on` of
  /// traffic with `phase_off` of silence (0 = always on).  Fluctuating
  /// aggregate load is what gives real congestion its heavy tail.
  sim::Time phase_on = 0;
  sim::Time phase_off = 0;
  std::uint64_t seed = 17;
};

struct FlowStats {
  std::uint64_t lines_completed = 0;
  sim::Time first_issue = 0;
  sim::Time last_completion = 0;
  sim::OnlineStats latency_us;  ///< per-line issue-to-completion

  std::uint64_t bytes() const { return lines_completed * mem::kCacheLineBytes; }
  double bandwidth_gbps(sim::Time elapsed) const {
    return elapsed ? static_cast<double>(bytes()) / sim::to_sec(elapsed) / 1e9
                   : 0.0;
  }
};

/// One STREAM instance as a remote-memory flow through the borrower NIC.
class RemoteStreamFlow {
 public:
  RemoteStreamFlow(sim::Engine& engine, nic::DisaggNic& nic, FlowConfig cfg);

  /// Spawn the lanes (call once); they run until cfg.stop_at.
  void start();
  bool finished() const;
  const FlowStats& stats() const { return stats_; }

 private:
  sim::Task lane(std::uint32_t lane_id);

  sim::Engine& engine_;
  nic::DisaggNic& nic_;
  FlowConfig cfg_;
  FlowStats stats_;
  mem::Addr cursor_ = 0;
  std::vector<sim::Task> lanes_;
  sim::Rng rng_;
};

/// One STREAM instance hammering a node's local memory bus (lender side).
class LocalStreamFlow {
 public:
  LocalStreamFlow(sim::Engine& engine, mem::Dram& dram, FlowConfig cfg);

  void start();
  bool finished() const;
  const FlowStats& stats() const { return stats_; }

 private:
  sim::Task lane(std::uint32_t lane_id);

  sim::Engine& engine_;
  mem::Dram& dram_;
  FlowConfig cfg_;
  FlowStats stats_;
  std::vector<sim::Task> lanes_;
};

}  // namespace tfsim::workloads
