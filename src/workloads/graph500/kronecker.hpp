// Graph500 Kronecker (R-MAT) edge-list generator.
//
// Standard initiator (A,B,C,D) = (0.57, 0.19, 0.19, 0.05), 2^scale
// vertices, edgefactor x 2^scale edges, uniform [0,1) edge weights for
// SSSP, and a random vertex relabeling so generator locality does not leak
// into the cache model.
#pragma once

#include <cstdint>
#include <vector>

namespace tfsim::workloads::g500 {

struct Edge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  float w = 0.0f;
};

struct EdgeList {
  std::uint32_t scale = 0;
  std::uint64_t num_vertices = 0;
  std::vector<Edge> edges;
};

struct KroneckerParams {
  std::uint32_t scale = 16;
  std::uint32_t edgefactor = 16;
  std::uint64_t seed = 20220208;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
};

EdgeList kronecker_generate(const KroneckerParams& params);

}  // namespace tfsim::workloads::g500
