#include "workloads/graph500/graph500.hpp"

#include <limits>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace tfsim::workloads::g500 {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
}

Graph500::Graph500(node::Node& node, const Graph500Config& cfg)
    : Graph500(node, cfg, kronecker_generate(cfg.gen)) {}

Graph500::Graph500(node::Node& node, const Graph500Config& cfg, EdgeList edges)
    : node_(node), cfg_(cfg), edges_(std::move(edges)),
      graph_(build_csr(edges_)) {
  map_arrays();
}

Graph500::Graph500(node::Node& node, const Graph500Config& cfg, CsrGraph graph)
    : node_(node), cfg_(cfg), graph_(std::move(graph)) {
  map_arrays();
}

void Graph500::map_arrays() {
  const auto p = cfg_.placement;
  if (!edges_.edges.empty()) {
    edge_map_ = AddrSpan<Edge>(node_, edges_.edges.size(), p);
  }
  xadj_map_ = AddrSpan<std::uint64_t>(node_, graph_.xadj.size(), p);
  adj_map_ = AddrSpan<std::int64_t>(node_, graph_.adj.size(), p);
  weight_map_ = AddrSpan<float>(node_, graph_.weights.size(), p);
  parent_map_ = AddrSpan<std::int64_t>(node_, graph_.num_vertices, p);
  dist_map_ = AddrSpan<float>(node_, graph_.num_vertices, p);
}

std::uint64_t Graph500::footprint_bytes() const {
  return edge_map_.bytes() + xadj_map_.bytes() + adj_map_.bytes() +
         weight_map_.bytes() + parent_map_.bytes() + dist_map_.bytes();
}

sim::Time Graph500::run_construction() {
  if (edges_.edges.empty()) {
    throw std::logic_error("Graph500: no edge list for construction replay");
  }
  node::MemContext ctx(node_, cfg_.cpu, "graph500/construct");
  ctx.seek(node_.engine().now());
  const sim::Time start = ctx.now();

  // Replay kernel 1's memory traffic against the already-built CSR: stream
  // the edge list, read the per-vertex cursor (xadj-resident), and scatter
  // the adjacency entry + weight for both directions of each edge.  The
  // scatter writes are the bandwidth-hungry part: random lines across an
  // array far larger than the LLC.
  std::vector<std::uint64_t> cursor(graph_.xadj.begin(), graph_.xadj.end() - 1);
  for (std::size_t i = 0; i < edges_.edges.size(); ++i) {
    const Edge& e = edges_.edges[i];
    edge_map_.touch_read(ctx, i);  // streaming source read
    if (e.u == e.v) continue;      // self loops dropped, as in build_csr
    for (const std::uint32_t end : {e.u, e.v}) {
      xadj_map_.touch_read(ctx, end);
      const std::uint64_t slot = cursor[end]++;
      adj_map_.touch_write(ctx, slot);
      weight_map_.touch_write(ctx, slot);
      ctx.advance(cfg_.edge_cost);
    }
  }
  return ctx.drain() - start;
}

JobResult Graph500::run_bfs_job(std::uint32_t root) {
  JobResult job;
  job.construction_elapsed = run_construction();
  const auto bfs = run_bfs(root);
  job.kernel_elapsed = bfs.elapsed;
  job.validation_error = validate_bfs(graph_, root, bfs.parent);
  return job;
}

JobResult Graph500::run_sssp_job(std::uint32_t root) {
  JobResult job;
  job.construction_elapsed = run_construction();
  const auto sssp = run_sssp(root);
  job.kernel_elapsed = sssp.elapsed;
  job.validation_error = validate_sssp(graph_, root, sssp.dist, sssp.parent);
  return job;
}

BfsResult Graph500::run_bfs(std::uint32_t root) {
  const std::uint64_t n = graph_.num_vertices;
  BfsResult res;
  res.root = root;
  res.parent.assign(n, -1);

  node::MemContext ctx(node_, cfg_.cpu, "graph500/bfs");
  ctx.seek(node_.engine().now());
  const sim::Time start = ctx.now();

  std::vector<std::uint32_t> frontier{root};
  std::vector<std::uint32_t> next;
  res.parent[root] = root;
  parent_map_.touch_write(ctx, root);
  res.vertices_visited = 1;

  while (!frontier.empty()) {
    next.clear();
    for (const std::uint32_t u : frontier) {
      // Row bounds: two sequential reads, usually the same cached line.
      xadj_map_.touch_read(ctx, u);
      xadj_map_.touch_read(ctx, u + 1);
      const std::uint64_t lo = graph_.xadj[u];
      const std::uint64_t hi = graph_.xadj[u + 1];
      for (std::uint64_t e = lo; e < hi; ++e) {
        adj_map_.touch_read(ctx, e);  // streaming edge read (prefetchable)
        const std::uint32_t v = graph_.adj[e];
        // Visited check: the address depends on the edge value just read --
        // a dependent random access, the load that makes BFS latency-bound.
        parent_map_.touch_read(ctx, v, /*dependent=*/true);
        ctx.advance(cfg_.edge_cost);
        ++res.edges_traversed;
        if (res.parent[v] == -1) {
          res.parent[v] = u;
          parent_map_.touch_write(ctx, v);
          next.push_back(v);
          ++res.vertices_visited;
        }
      }
    }
    frontier.swap(next);
  }

  res.elapsed = ctx.drain() - start;
  res.teps = res.elapsed
                 ? static_cast<double>(res.edges_traversed) / sim::to_sec(res.elapsed)
                 : 0.0;
  return res;
}

SsspResult Graph500::run_sssp(std::uint32_t root) {
  const std::uint64_t n = graph_.num_vertices;
  SsspResult res;
  res.root = root;
  res.dist.assign(n, kInf);
  res.parent.assign(n, -1);

  node::MemContext ctx(node_, cfg_.cpu, "graph500/sssp");
  ctx.seek(node_.engine().now());
  const sim::Time start = ctx.now();

  // Dijkstra with a host-side binary heap; the Graph500 reference SSSP is
  // delta-stepping, but on one node with non-negative uniform weights
  // Dijkstra touches the same arrays with the same locality profile.
  using QEntry = std::pair<float, std::uint32_t>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  res.dist[root] = 0.0f;
  res.parent[root] = root;
  dist_map_.touch_write(ctx, root);
  parent_map_.touch_write(ctx, root);
  pq.emplace(0.0f, root);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    dist_map_.touch_read(ctx, u, /*dependent=*/true);
    if (d > res.dist[u]) continue;  // stale entry
    ++res.vertices_visited;
    xadj_map_.touch_read(ctx, u);
    xadj_map_.touch_read(ctx, u + 1);
    const std::uint64_t lo = graph_.xadj[u];
    const std::uint64_t hi = graph_.xadj[u + 1];
    for (std::uint64_t e = lo; e < hi; ++e) {
      adj_map_.touch_read(ctx, e);
      weight_map_.touch_read(ctx, e);
      const std::uint32_t v = graph_.adj[e];
      const float nd = d + graph_.weights[e];
      // Relaxation check: address depends on the edge value (dependent).
      dist_map_.touch_read(ctx, v, /*dependent=*/true);
      ctx.advance(2 * cfg_.edge_cost);  // SSSP: more work per edge than BFS
      ++res.edges_relaxed;
      if (nd < res.dist[v]) {
        res.dist[v] = nd;
        res.parent[v] = u;
        dist_map_.touch_write(ctx, v);
        parent_map_.touch_write(ctx, v);
        pq.emplace(nd, v);
      }
    }
  }

  res.elapsed = ctx.drain() - start;
  res.teps = res.elapsed
                 ? static_cast<double>(res.edges_relaxed) / sim::to_sec(res.elapsed)
                 : 0.0;
  return res;
}

std::string validate_bfs(const CsrGraph& g, std::uint32_t root,
                         const std::vector<std::int64_t>& parent) {
  std::ostringstream err;
  if (parent.size() != g.num_vertices) return "parent array size mismatch";
  if (parent[root] != root) return "root is not its own parent";

  // Compute levels by walking parent chains with cycle detection.
  std::vector<std::int64_t> level(g.num_vertices, -1);
  level[root] = 0;
  for (std::uint32_t v = 0; v < g.num_vertices; ++v) {
    if (parent[v] < 0 || level[v] >= 0) continue;
    // Walk up to the root or a vertex with known level.
    std::vector<std::uint32_t> chain;
    std::uint32_t cur = v;
    while (level[cur] < 0) {
      chain.push_back(cur);
      const std::int64_t p = parent[cur];
      if (p < 0 || p >= static_cast<std::int64_t>(g.num_vertices)) {
        err << "vertex " << cur << " has invalid parent " << p;
        return err.str();
      }
      if (chain.size() > g.num_vertices) return "parent chain has a cycle";
      cur = static_cast<std::uint32_t>(p);
    }
    std::int64_t l = level[cur];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) level[*it] = ++l;
  }

  for (std::uint32_t v = 0; v < g.num_vertices; ++v) {
    const std::int64_t p = parent[v];
    if (p < 0 || v == root) continue;
    const auto pu = static_cast<std::uint32_t>(p);
    if (!g.has_edge(pu, v)) {
      err << "tree edge (" << pu << "," << v << ") not in graph";
      return err.str();
    }
    if (level[v] != level[pu] + 1) {
      err << "vertex " << v << " level " << level[v]
          << " != parent level + 1 (" << level[pu] + 1 << ")";
      return err.str();
    }
  }
  // Reachability completeness: every neighbour of a visited vertex must be
  // visited (BFS explores the full component).
  for (std::uint32_t u = 0; u < g.num_vertices; ++u) {
    if (parent[u] < 0) continue;
    for (std::uint64_t e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      if (parent[g.adj[e]] < 0) {
        err << "unvisited vertex " << g.adj[e]
            << " adjacent to visited " << u;
        return err.str();
      }
    }
  }
  return {};
}

std::string validate_sssp(const CsrGraph& g, std::uint32_t root,
                          const std::vector<float>& dist,
                          const std::vector<std::int64_t>& parent) {
  std::ostringstream err;
  if (dist.size() != g.num_vertices) return "dist array size mismatch";
  if (dist[root] != 0.0f) return "dist[root] != 0";
  const float eps = 1e-4f;

  for (std::uint32_t u = 0; u < g.num_vertices; ++u) {
    if (dist[u] == kInf) continue;
    // No relaxable edge may remain.
    for (std::uint64_t e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const std::uint32_t v = g.adj[e];
      if (dist[u] + g.weights[e] + eps < dist[v]) {
        err << "edge (" << u << "," << v << ") still relaxable";
        return err.str();
      }
    }
    // Tree edge consistency.
    if (u != root) {
      const std::int64_t p = parent[u];
      if (p < 0 || p >= static_cast<std::int64_t>(g.num_vertices)) {
        err << "visited vertex " << u << " has invalid parent";
        return err.str();
      }
      const auto pu = static_cast<std::uint32_t>(p);
      const float w = g.min_edge_weight(pu, u);
      if (dist[pu] + w > dist[u] + eps) {
        err << "tree edge (" << pu << "," << u << ") inconsistent with dist";
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace tfsim::workloads::g500
