#include "workloads/graph500/kronecker.hpp"

#include <algorithm>
#include <numeric>

#include "sim/rng.hpp"

namespace tfsim::workloads::g500 {

EdgeList kronecker_generate(const KroneckerParams& params) {
  sim::Rng rng(params.seed);
  EdgeList el;
  el.scale = params.scale;
  el.num_vertices = std::uint64_t{1} << params.scale;
  const std::uint64_t num_edges = el.num_vertices * params.edgefactor;
  el.edges.reserve(num_edges);

  const double ab = params.a + params.b;
  const double c_norm = params.c / (1.0 - ab);
  const double a_norm = params.a / ab;

  for (std::uint64_t e = 0; e < num_edges; ++e) {
    std::uint64_t u = 0, v = 0;
    for (std::uint32_t bit = 0; bit < params.scale; ++bit) {
      const bool ii = rng.uniform() > ab;
      const bool jj =
          rng.uniform() > (ii ? c_norm : a_norm);
      u |= static_cast<std::uint64_t>(ii) << bit;
      v |= static_cast<std::uint64_t>(jj) << bit;
    }
    Edge edge;
    edge.u = static_cast<std::uint32_t>(u);
    edge.v = static_cast<std::uint32_t>(v);
    edge.w = static_cast<float>(rng.uniform());
    el.edges.push_back(edge);
  }

  // Random vertex relabeling (the spec's permutation step).
  std::vector<std::uint32_t> perm(el.num_vertices);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint64_t i = el.num_vertices - 1; i > 0; --i) {
    const std::uint64_t j = rng.uniform_u64(i + 1);
    std::swap(perm[i], perm[j]);
  }
  for (auto& edge : el.edges) {
    edge.u = perm[edge.u];
    edge.v = perm[edge.v];
  }
  return el;
}

}  // namespace tfsim::workloads::g500
