// Graph500 kernels over simulated memory: BFS (kernel 2) and SSSP
// (kernel 3), with result validation.
//
// The graph and result arrays live in simulated memory (remote, in the
// paper's configuration); the algorithms are real -- they produce actual
// BFS parent trees and shortest-path distances which the validators check
// -- while each logical access is charged to the memory model.  BFS
// processes the frontier with high memory-level parallelism (the reference
// code is OpenMP-parallel), which is what makes Graph500 throughput-bound
// on remote memory and so brutally sensitive to injected delay (Table I).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "node/context.hpp"
#include "node/node.hpp"
#include "workloads/graph500/csr.hpp"
#include "workloads/sim_array.hpp"

namespace tfsim::workloads::g500 {

struct Graph500Config {
  KroneckerParams gen;  ///< paper: scale 20, edgefactor 16 (~1 GB)
  node::Placement placement = node::Placement::kRemote;
  node::CpuConfig cpu{/*mlp=*/128, /*issue_cost=*/sim::from_ns(0.1)};
  /// CPU work per traversed edge (branching, bitmap ops).  Calibrated so
  /// the local-memory run is compute/memory balanced like the testbed.
  sim::Time edge_cost = sim::from_ns(2.0);
};

struct BfsResult {
  std::uint32_t root = 0;
  std::vector<std::int64_t> parent;  ///< -1 = unreached
  std::uint64_t vertices_visited = 0;
  std::uint64_t edges_traversed = 0;
  sim::Time elapsed = 0;
  double teps = 0.0;  ///< traversed edges per second (simulated)
};

struct SsspResult {
  std::uint32_t root = 0;
  std::vector<float> dist;           ///< +inf = unreached
  std::vector<std::int64_t> parent;  ///< -1 = unreached
  std::uint64_t vertices_visited = 0;
  std::uint64_t edges_relaxed = 0;
  sim::Time elapsed = 0;
  double teps = 0.0;
};

/// Job-level result: Graph500 "job completion time" covers kernel 1 (CSR
/// construction -- a random-scatter, bandwidth-hungry phase) plus the
/// search kernel, which is how the paper measures Graph500 (Table I,
/// Fig. 5).
struct JobResult {
  sim::Time construction_elapsed = 0;
  sim::Time kernel_elapsed = 0;
  sim::Time total() const { return construction_elapsed + kernel_elapsed; }
  std::string validation_error;  ///< empty when the kernel output validated
};

/// Holds the graph (host data) plus its simulated address mapping.
class Graph500 {
 public:
  /// Generates the Kronecker graph and maps it into simulated memory on
  /// `node` per the config.
  Graph500(node::Node& node, const Graph500Config& cfg);
  /// Use an existing edge list (sessions share one generated graph).
  Graph500(node::Node& node, const Graph500Config& cfg, EdgeList edges);
  /// Use an existing CSR (tests; construction replay unavailable).
  Graph500(node::Node& node, const Graph500Config& cfg, CsrGraph graph);

  /// Kernel 1: replay the CSR construction's memory traffic (edge-list
  /// stream + adjacency/weight scatter).  Requires the edge list.
  sim::Time run_construction();
  bool has_edge_list() const { return !edges_.edges.empty(); }

  BfsResult run_bfs(std::uint32_t root);
  SsspResult run_sssp(std::uint32_t root);

  /// Construction + kernel + validation, the paper's job-level metric.
  JobResult run_bfs_job(std::uint32_t root);
  JobResult run_sssp_job(std::uint32_t root);

  const CsrGraph& graph() const { return graph_; }
  const Graph500Config& config() const { return cfg_; }
  std::uint64_t footprint_bytes() const;

 private:
  void map_arrays();

  node::Node& node_;
  Graph500Config cfg_;
  EdgeList edges_;  ///< retained for construction replay (may be empty)
  CsrGraph graph_;
  AddrSpan<Edge> edge_map_;
  AddrSpan<std::uint64_t> xadj_map_;
  // The reference implementation stores adjacency as int64 vertices; the
  // simulated layout follows it (8 B per entry) so the working set and
  // miss behaviour match the code the paper ran.
  AddrSpan<std::int64_t> adj_map_;
  AddrSpan<float> weight_map_;
  AddrSpan<std::int64_t> parent_map_;
  AddrSpan<float> dist_map_;
};

/// BFS tree validation (Graph500 spec checks): root is its own parent,
/// every tree edge exists in the graph, levels increase by exactly one.
/// Returns an empty string when valid, else a diagnostic.
std::string validate_bfs(const CsrGraph& g, std::uint32_t root,
                         const std::vector<std::int64_t>& parent);

/// SSSP validation: dist[root] == 0, tree edges consistent with dist,
/// no relaxable edge remains.
std::string validate_sssp(const CsrGraph& g, std::uint32_t root,
                          const std::vector<float>& dist,
                          const std::vector<std::int64_t>& parent);

}  // namespace tfsim::workloads::g500
