#include "workloads/graph500/csr.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace tfsim::workloads::g500 {

CsrGraph build_csr(const EdgeList& el) {
  CsrGraph g;
  g.num_vertices = el.num_vertices;
  const std::uint64_t n = g.num_vertices;

  // Count directed degrees (both directions; drop self loops).
  std::vector<std::uint64_t> degree(n, 0);
  std::uint64_t directed = 0;
  for (const auto& e : el.edges) {
    if (e.u == e.v) continue;
    ++degree[e.u];
    ++degree[e.v];
    directed += 2;
  }

  g.xadj.assign(n + 1, 0);
  for (std::uint64_t v = 0; v < n; ++v) g.xadj[v + 1] = g.xadj[v] + degree[v];
  g.adj.resize(directed);
  g.weights.resize(directed);

  std::vector<std::uint64_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
  for (const auto& e : el.edges) {
    if (e.u == e.v) continue;
    g.adj[cursor[e.u]] = e.v;
    g.weights[cursor[e.u]++] = e.w;
    g.adj[cursor[e.v]] = e.u;
    g.weights[cursor[e.v]++] = e.w;
  }

  // Sort each adjacency list by target (weights follow).
  std::vector<std::uint64_t> order;
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t lo = g.xadj[v], hi = g.xadj[v + 1];
    if (hi - lo < 2) continue;
    order.resize(hi - lo);
    std::iota(order.begin(), order.end(), lo);
    std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
      return g.adj[a] < g.adj[b];
    });
    std::vector<std::uint32_t> tmp_adj(hi - lo);
    std::vector<float> tmp_w(hi - lo);
    for (std::uint64_t i = 0; i < order.size(); ++i) {
      tmp_adj[i] = g.adj[order[i]];
      tmp_w[i] = g.weights[order[i]];
    }
    std::copy(tmp_adj.begin(), tmp_adj.end(), g.adj.begin() + static_cast<std::ptrdiff_t>(lo));
    std::copy(tmp_w.begin(), tmp_w.end(), g.weights.begin() + static_cast<std::ptrdiff_t>(lo));
  }
  return g;
}

bool CsrGraph::has_edge(std::uint32_t u, std::uint32_t v) const {
  const auto lo = adj.begin() + static_cast<std::ptrdiff_t>(xadj[u]);
  const auto hi = adj.begin() + static_cast<std::ptrdiff_t>(xadj[u + 1]);
  return std::binary_search(lo, hi, v);
}

float CsrGraph::min_edge_weight(std::uint32_t u, std::uint32_t v) const {
  const auto lo = adj.begin() + static_cast<std::ptrdiff_t>(xadj[u]);
  const auto hi = adj.begin() + static_cast<std::ptrdiff_t>(xadj[u + 1]);
  auto it = std::lower_bound(lo, hi, v);
  float best = std::numeric_limits<float>::infinity();
  while (it != hi && *it == v) {
    const auto idx = static_cast<std::uint64_t>(it - adj.begin());
    best = std::min(best, weights[idx]);
    ++it;
  }
  return best;
}

}  // namespace tfsim::workloads::g500
