// Compressed sparse row graph, built from a Kronecker edge list.
//
// Symmetrized (each input edge stored in both directions, as Graph500's
// BFS treats the graph as undirected), self-loops dropped, adjacency
// sorted per vertex (enables binary-search edge queries in the
// validators).  Multi-edges are kept, matching the reference code.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/graph500/kronecker.hpp"

namespace tfsim::workloads::g500 {

struct CsrGraph {
  std::uint64_t num_vertices = 0;
  std::vector<std::uint64_t> xadj;  ///< size n+1
  std::vector<std::uint32_t> adj;   ///< size 2*|E'| (symmetrized)
  std::vector<float> weights;       ///< parallel to adj

  std::uint64_t num_edges_directed() const { return adj.size(); }
  std::uint64_t degree(std::uint64_t v) const {
    return xadj[v + 1] - xadj[v];
  }
  /// True if (u,v) is an edge (binary search in sorted adjacency).
  bool has_edge(std::uint32_t u, std::uint32_t v) const;
  /// Smallest weight among (possibly multiple) (u,v) edges; +inf if none.
  float min_edge_weight(std::uint32_t u, std::uint32_t v) const;

  /// Approximate bytes the CSR occupies (for working-set reporting).
  std::uint64_t footprint_bytes() const {
    return xadj.size() * sizeof(std::uint64_t) +
           adj.size() * (sizeof(std::uint32_t) + sizeof(float));
  }
};

CsrGraph build_csr(const EdgeList& el);

}  // namespace tfsim::workloads::g500
