// Open-loop traffic source: multiplexes a large simulated client population
// over one borrower node with a bounded dispatch window and explicit
// overload accounting.
//
// Arrivals come from an ArrivalProcess regardless of service progress.  A
// request that cannot dispatch immediately (window full) waits in a bounded
// queue; when the queue is also full it is shed on the spot.  Every request
// the source ever saw is in exactly one terminal or transient bucket —
// offered == completed + shed + rejected + failed + in_flight + queued at
// every instant — which is the invariant the property tests pin at drain
// points.
//
// Determinism contract: the source touches only its own engine (the
// borrower's calendar under PDES) and its private RNG stream.  The sink is
// handed a completion functor and must call it exactly once from the same
// domain; sinks that never answer (dead lender, lost frame) are covered by
// the source's own timeout.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "sim/engine.hpp"
#include "workloads/openloop/arrivals.hpp"

namespace tfsim::workloads {

/// Terminal state of a request.
enum class RequestOutcome {
  kCompleted,  ///< response arrived before the timeout
  kShed,       ///< dropped locally: dispatch window and queue both full
  kRejected,   ///< refused downstream (QoS credit exhaustion)
  kFailed,     ///< timed out: lost frame or dead lender
};

struct OpenLoopConfig {
  ArrivalConfig arrivals;
  std::uint64_t clients = 0;         ///< modeled population (reporting only)
  std::uint32_t max_in_flight = 64;  ///< dispatch window
  std::uint32_t queue_depth = 128;   ///< waiting room; overflow is shed
  sim::Time stop_at = 0;             ///< no arrivals at or after this time
  sim::Time request_timeout = 0;     ///< 0 = wait forever
};

struct OpenLoopCounters {
  std::uint64_t offered = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t queued = 0;

  /// Conservation law: every offered request is in exactly one bucket.
  bool balanced() const {
    return offered ==
           completed + shed + rejected + failed + in_flight + queued;
  }
};

class OpenLoopSource {
 public:
  /// The sink reports the request's fate (kCompleted or kRejected) at the
  /// given time; calling it after the source's timeout already fired is a
  /// harmless no-op (the late response is dropped, as on a real NIC).
  using CompletionFn = std::function<void(sim::Time, RequestOutcome)>;
  /// Invoked on the source's engine when a request enters service.
  using DispatchFn =
      std::function<void(sim::Time now, std::uint64_t req_id, CompletionFn)>;
  /// Request id reported to the observer for requests shed before dispatch
  /// (they never received one).
  static constexpr std::uint64_t kNoRequestId = ~std::uint64_t{0};
  /// Per-request record, fired once per offered request at its terminal
  /// transition (arrival == terminal time for shed requests).  `req_id` is
  /// the dispatch id (the same one the DispatchFn saw) so control layers
  /// can attribute outcomes — including timeouts, which never pass through
  /// the sink's CompletionFn — to the requests they tagged; kNoRequestId
  /// for shed requests.
  using ObserverFn = std::function<void(sim::Time arrival, sim::Time terminal,
                                        RequestOutcome outcome,
                                        std::uint64_t req_id)>;

  OpenLoopSource(sim::Engine& engine, OpenLoopConfig cfg, DispatchFn dispatch);

  void set_observer(ObserverFn observer) { observer_ = std::move(observer); }

  /// Schedule the first arrival.  No-op when the process is idle (rate 0)
  /// or the first arrival already lies at or past stop_at.
  void start();

  const OpenLoopCounters& counters() const { return counters_; }
  const OpenLoopConfig& config() const { return cfg_; }

 private:
  struct Pending {
    sim::Time arrival = 0;
    sim::Engine::EventId timeout;
  };

  void on_arrival(sim::Time t);
  void schedule_next_arrival();
  void dispatch(sim::Time now, sim::Time arrival);
  void finish(std::uint64_t req_id, sim::Time t, RequestOutcome outcome);
  void drain_queue(sim::Time now);

  sim::Engine& engine_;
  OpenLoopConfig cfg_;
  DispatchFn dispatch_;
  ObserverFn observer_;
  ArrivalProcess arrivals_;
  OpenLoopCounters counters_;
  std::uint64_t next_req_id_ = 0;
  std::map<std::uint64_t, Pending> pending_;  // ordered: deterministic
  std::deque<sim::Time> queue_;               // arrival times, FIFO
};

}  // namespace tfsim::workloads
