#include "workloads/openloop/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tfsim::workloads {

ArrivalKind arrival_kind_from(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  throw std::invalid_argument("unknown arrival process: " + name);
}

std::string to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "poisson";
}

namespace {
double peak_rate(const ArrivalConfig& cfg) {
  switch (cfg.kind) {
    case ArrivalKind::kPoisson:
      return cfg.rate_rps;
    case ArrivalKind::kBursty: {
      const double on = std::max(cfg.burst_on_us, 1e-9);
      return cfg.rate_rps * (on + std::max(cfg.burst_off_us, 0.0)) / on;
    }
    case ArrivalKind::kDiurnal:
      return cfg.rate_rps * (1.0 + std::clamp(cfg.diurnal_amplitude, 0.0, 1.0));
  }
  return cfg.rate_rps;
}
}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), peak_rate_rps_(peak_rate(cfg)) {}

double ArrivalProcess::rate_at(sim::Time t) const {
  switch (cfg_.kind) {
    case ArrivalKind::kPoisson:
      return cfg_.rate_rps;
    case ArrivalKind::kBursty: {
      const sim::Time on = sim::from_us(std::max(cfg_.burst_on_us, 1e-9));
      const sim::Time off = sim::from_us(std::max(cfg_.burst_off_us, 0.0));
      const sim::Time period = on + off;
      if (period == 0) return cfg_.rate_rps;
      return (t % period) < on ? peak_rate_rps_ : 0.0;
    }
    case ArrivalKind::kDiurnal: {
      const double period_ps =
          static_cast<double>(sim::from_us(std::max(cfg_.diurnal_period_us, 1e-9)));
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      const double phase = kTwoPi * (static_cast<double>(t) / period_ps);
      const double amp = std::clamp(cfg_.diurnal_amplitude, 0.0, 1.0);
      return cfg_.rate_rps * (1.0 + amp * std::sin(phase));
    }
  }
  return cfg_.rate_rps;
}

sim::Time ArrivalProcess::next() {
  if (cfg_.rate_rps <= 0.0 || peak_rate_rps_ <= 0.0) return sim::kTimeNever;
  const double mean_gap_us = 1e6 / peak_rate_rps_;
  for (;;) {
    // Candidate from the homogeneous envelope; at least 1 ps so the stream
    // is strictly increasing even at absurd rates.
    const sim::Time gap =
        std::max<sim::Time>(1, sim::from_us(rng_.exponential(mean_gap_us)));
    cursor_ += gap;
    const double accept = rate_at(cursor_) / peak_rate_rps_;
    // The uniform draw is consumed even when accept == 1 (pure Poisson
    // keeps the same stream as a degenerate thinned one).
    if (rng_.uniform() < accept) return cursor_;
  }
}

}  // namespace tfsim::workloads
