// Deterministic open-loop arrival processes.
//
// The ROADMAP north-star is serving traffic from millions of users, which a
// closed-loop workload (next request only after the previous response) can
// never represent: real clients do not slow down because the rack is slow.
// An ArrivalProcess emits the absolute times at which requests *would*
// arrive, independent of service progress, as a pure function of its seeded
// RNG — never wall-clock — so a stream is bit-for-bit reproducible across
// runs and across PDES worker counts (each source owns a private stream on
// its borrower's calendar).
#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.hpp"
#include "sim/units.hpp"

namespace tfsim::workloads {

enum class ArrivalKind {
  kPoisson,  ///< memoryless arrivals at a constant mean rate
  kBursty,   ///< deterministic on/off gating of a Poisson stream
  kDiurnal,  ///< sinusoidal rate modulation over a configurable period
};

/// Parse "poisson" / "bursty" / "diurnal"; throws std::invalid_argument on
/// anything else (scenario typos must fail loudly, like the fault layer).
ArrivalKind arrival_kind_from(const std::string& name);
std::string to_string(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_rps = 0.0;    ///< long-run mean offered rate, requests/sec
  std::uint64_t seed = 1;   ///< private stream seed (split per source)
  // kBursty: fixed on/off phases starting in "on" at t=0.  The on-phase
  // rate is scaled by (on+off)/on so the long-run mean stays rate_rps.
  double burst_on_us = 100.0;
  double burst_off_us = 300.0;
  // kDiurnal: rate(t) = rate_rps * (1 + amplitude * sin(2*pi*t/period)).
  // One period is one simulated "day"; amplitude in [0, 1].
  double diurnal_period_us = 10'000.0;
  double diurnal_amplitude = 0.8;
};

/// Generates a strictly increasing stream of absolute arrival times by
/// thinning a homogeneous Poisson envelope at the configured peak rate
/// (Lewis & Shedler): candidates arrive exponentially at the peak rate and
/// are accepted with probability rate(t)/peak.  One algorithm covers all
/// three processes — for kPoisson the acceptance probability is 1, for
/// kBursty it is an on/off indicator — which keeps the determinism contract
/// trivial: the stream is a pure function of (config, number of next()
/// calls).
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& cfg);

  /// Next absolute arrival time (picoseconds), strictly after the previous
  /// one.  kTimeNever when rate_rps <= 0.
  sim::Time next();

  /// Instantaneous rate (requests/sec) at absolute time t.
  double rate_at(sim::Time t) const;

 private:
  ArrivalConfig cfg_;
  sim::Rng rng_;
  sim::Time cursor_ = 0;
  double peak_rate_rps_ = 0.0;
};

}  // namespace tfsim::workloads
