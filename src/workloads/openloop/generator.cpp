#include "workloads/openloop/generator.hpp"

#include <utility>

namespace tfsim::workloads {

OpenLoopSource::OpenLoopSource(sim::Engine& engine, OpenLoopConfig cfg,
                               DispatchFn dispatch)
    : engine_(engine),
      cfg_(cfg),
      dispatch_(std::move(dispatch)),
      arrivals_(cfg.arrivals) {}

void OpenLoopSource::start() {
  const sim::Time first = arrivals_.next();
  if (first == sim::kTimeNever || first >= cfg_.stop_at) return;
  engine_.schedule_at(first, [this, first] { on_arrival(first); });
}

void OpenLoopSource::schedule_next_arrival() {
  const sim::Time t = arrivals_.next();
  if (t == sim::kTimeNever || t >= cfg_.stop_at) return;
  engine_.schedule_at(t, [this, t] { on_arrival(t); });
}

void OpenLoopSource::on_arrival(sim::Time t) {
  ++counters_.offered;
  if (counters_.in_flight < cfg_.max_in_flight) {
    dispatch(t, t);
  } else if (counters_.queued < cfg_.queue_depth) {
    ++counters_.queued;
    queue_.push_back(t);
  } else {
    // Overload: the client is turned away immediately.  Open-loop sources
    // must shed — blocking the arrival stream would silently convert the
    // workload back into a closed loop.
    ++counters_.shed;
    if (observer_) observer_(t, t, RequestOutcome::kShed, kNoRequestId);
  }
  schedule_next_arrival();
}

void OpenLoopSource::dispatch(sim::Time now, sim::Time arrival) {
  const std::uint64_t id = next_req_id_++;
  ++counters_.dispatched;
  ++counters_.in_flight;
  Pending p;
  p.arrival = arrival;
  if (cfg_.request_timeout > 0) {
    p.timeout = engine_.schedule_in(cfg_.request_timeout, [this, id] {
      finish(id, engine_.now(), RequestOutcome::kFailed);
    });
  }
  pending_.emplace(id, p);
  dispatch_(now, id, [this, id](sim::Time t, RequestOutcome outcome) {
    finish(id, t, outcome);
  });
}

void OpenLoopSource::finish(std::uint64_t req_id, sim::Time t,
                            RequestOutcome outcome) {
  auto it = pending_.find(req_id);
  // Late responses (the timeout already declared the request failed) are
  // dropped, exactly like a NIC completing a replay-abandoned tag.
  if (it == pending_.end()) return;
  const sim::Time arrival = it->second.arrival;
  engine_.cancel(it->second.timeout);
  pending_.erase(it);
  --counters_.in_flight;
  switch (outcome) {
    case RequestOutcome::kCompleted: ++counters_.completed; break;
    case RequestOutcome::kRejected: ++counters_.rejected; break;
    case RequestOutcome::kFailed: ++counters_.failed; break;
    case RequestOutcome::kShed: ++counters_.shed; break;  // sinks never shed
  }
  if (observer_) observer_(arrival, t, outcome, req_id);
  drain_queue(t);
}

void OpenLoopSource::drain_queue(sim::Time now) {
  while (!queue_.empty() && counters_.in_flight < cfg_.max_in_flight) {
    const sim::Time arrival = queue_.front();
    queue_.pop_front();
    --counters_.queued;
    dispatch(now, arrival);
  }
}

}  // namespace tfsim::workloads
