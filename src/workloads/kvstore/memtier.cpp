#include "workloads/kvstore/memtier.hpp"

#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/rng.hpp"

#include "workloads/kvstore/resp.hpp"

namespace tfsim::workloads::kv {

Memtier::Memtier(node::Node& node, KvStore& store, const MemtierConfig& cfg)
    : node_(node), store_(store), cfg_(cfg) {}

std::string Memtier::key_name(std::uint64_t k) const {
  return "memtier-" + std::to_string(k);
}

MemtierResult Memtier::run() {
  MemtierResult res;
  sim::Rng rng(cfg_.seed);
  node::MemContext ctx(node_, cfg_.cpu, "redis/server");
  ctx.seek(node_.engine().now());

  // Client-side oracle of what each key should hold.
  std::unordered_map<std::uint64_t, std::uint64_t> expected_version;
  std::uint64_t version_counter = 1;

  if (cfg_.populate) {
    const sim::Time t0 = ctx.now();
    for (std::uint64_t k = 0; k < cfg_.key_space; ++k) {
      const std::uint64_t v = version_counter++;
      store_.set(ctx, key_name(k), v);
      expected_version[k] = v;
    }
    res.populate_elapsed = ctx.drain() - t0;
  }

  // Closed loop: each connection has one request in flight.  The server is
  // a FIFO; arrivals are kept in a min-heap of (arrival_time, connection).
  const std::uint64_t num_conns =
      static_cast<std::uint64_t>(cfg_.threads) * cfg_.connections;
  const std::uint64_t total_requests = num_conns * cfg_.requests_per_client;
  const sim::Time half_rtt = cfg_.netstack.client_rtt / 2;

  struct Arrival {
    sim::Time at;
    std::uint32_t conn;
    sim::Time sent;
    bool operator>(const Arrival& o) const { return at > o.at; }
  };
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> arrivals;
  std::vector<std::uint64_t> remaining(num_conns, cfg_.requests_per_client);

  const sim::Time bench_start = ctx.now();
  for (std::uint32_t c = 0; c < num_conns; ++c) {
    arrivals.push(Arrival{bench_start + half_rtt, c, bench_start});
  }

  sim::OnlineStats service_us;
  sim::Time last_reply = bench_start;

  while (!arrivals.empty()) {
    const Arrival a = arrivals.top();
    arrivals.pop();

    // Server picks the request up when both it and the request are ready.
    if (a.at > ctx.now()) ctx.seek(a.at);
    const sim::Time service_start = ctx.now();

    // Pick the operation and key for this request.
    const bool is_set = rng.uniform_u64(100) < cfg_.set_percent;
    const std::uint64_t k = rng.uniform_u64(cfg_.key_space);
    const std::string key = key_name(k);

    std::string request_wire, reply_wire;
    if (is_set) {
      const std::uint64_t v = version_counter++;
      const std::string value =
          make_value(key, v, store_.config().value_size);
      request_wire = resp_encode_command({"SET", key, value});
      store_.set(ctx, key, v);
      expected_version[k] = v;
      reply_wire = resp_encode_simple("OK");
      ++res.sets;
    } else {
      request_wire = resp_encode_command({"GET", key});
      const auto got = store_.get(ctx, key);
      if (got.found) {
        ++res.hits;
        reply_wire = resp_encode_bulk(got.value);
        const auto it = expected_version.find(k);
        if (it == expected_version.end() || got.version != it->second ||
            got.value !=
                make_value(key, it->second, store_.config().value_size)) {
          res.validated = false;
        }
      } else {
        reply_wire = resp_encode_null();
        if (expected_version.count(k) != 0) res.validated = false;
      }
      ++res.gets;
    }

    // The reply cannot be built before the store's reads complete: a
    // single-threaded server serializes memory stalls with stack work.
    ctx.drain();
    // Kernel/network-stack service cost scales with wire bytes.
    ctx.advance(cfg_.netstack.service_cost(request_wire.size() + reply_wire.size()));
    const sim::Time service_end = ctx.now();
    service_us.add(sim::to_us(service_end - service_start));

    const sim::Time client_receive = service_end + half_rtt;
    last_reply = std::max(last_reply, client_receive);
    res.latency_us.add(sim::to_us(client_receive - a.sent));
    ++res.requests;

    if (--remaining[a.conn] > 0) {
      // Client immediately pipelines the next request.
      arrivals.push(Arrival{client_receive + half_rtt, a.conn, client_receive});
    }
  }

  res.elapsed = last_reply - bench_start;
  res.ops_per_sec = res.elapsed
                        ? static_cast<double>(res.requests) / sim::to_sec(res.elapsed)
                        : 0.0;
  res.avg_service_us = service_us.mean();
  (void)total_requests;
  return res;
}

}  // namespace tfsim::workloads::kv
