// Redis-like in-memory key-value store over simulated memory.
//
// Chained hash table: buckets -> entry chains -> values.  The dictionary
// walk is dependent (pointer chasing); the value body is copied with
// streaming (independent) accesses, like Redis memcpying an SDS string into
// the output buffer.  Values are deterministic functions of (key, version)
// so multi-gigabyte datasets need no host backing while GET results remain
// verifiable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "node/context.hpp"
#include "node/node.hpp"
#include "workloads/sim_array.hpp"

namespace tfsim::workloads::kv {

struct KvStoreConfig {
  std::uint64_t buckets = 1 << 20;  ///< hash buckets (power of two)
  std::uint64_t max_keys = 1 << 21; ///< entry-slot capacity
  std::uint32_t value_size = 512;   ///< bytes per value
  node::Placement placement = node::Placement::kRemote;
  /// Heap lines the server touches per request besides dict+value (robj
  /// metadata, SDS headers, allocator, output buffer on the same heap).
  std::uint32_t aux_lines_per_request = 18;
};

/// Deterministic value body for (key, version).
std::string make_value(const std::string& key, std::uint64_t version,
                       std::uint32_t size);

class KvStore {
 public:
  KvStore(node::Node& node, const KvStoreConfig& cfg);

  /// SET key -> (version).  Timed on `ctx`.
  void set(node::MemContext& ctx, const std::string& key, std::uint64_t version);

  struct GetResult {
    bool found = false;
    std::uint64_t version = 0;
    std::string value;  ///< regenerated body (verifiable)
  };
  GetResult get(node::MemContext& ctx, const std::string& key);

  /// DEL; returns true if the key existed.
  bool del(node::MemContext& ctx, const std::string& key);

  std::uint64_t size() const { return live_entries_; }
  /// Simulated bytes of dataset (dict + values).
  std::uint64_t footprint_bytes() const;
  const KvStoreConfig& config() const { return cfg_; }

 private:
  struct Entry {
    std::string key;
    std::uint64_t key_hash = 0;
    std::uint64_t version = 0;
    mem::Addr value_addr = 0;   ///< simulated value body location
    std::int64_t next = -1;     ///< chain link (entry index)
    bool live = false;
  };

  static std::uint64_t hash_key(const std::string& key);
  /// Walk the chain (timed, dependent); returns entry index or -1.
  std::int64_t find(node::MemContext& ctx, const std::string& key,
                    std::uint64_t h);
  /// Touch the value body (independent streaming accesses).
  void touch_value(node::MemContext& ctx, mem::Addr addr, bool write);
  void touch_aux(node::MemContext& ctx);

  node::Node& node_;
  KvStoreConfig cfg_;
  std::vector<std::int64_t> buckets_;     ///< head entry index or -1
  std::vector<Entry> entries_;
  std::uint64_t live_entries_ = 0;
  AddrSpan<std::uint64_t> bucket_map_;    ///< 8 B per bucket head pointer
  AddrSpan<std::uint8_t> entry_map_;      ///< 64 B metadata per entry slot
  static constexpr std::uint32_t kEntryBytes = 64;
  std::uint64_t entry_slots_ = 0;         ///< reserved entry metadata slots
  // Aux heap region the server scatters per-request touches over.
  AddrSpan<std::uint8_t> aux_heap_;
  std::uint64_t aux_cursor_ = 0;
};

}  // namespace tfsim::workloads::kv
