#include "workloads/kvstore/resp.hpp"

#include <charconv>

namespace tfsim::workloads::kv {

std::string resp_encode_command(const std::vector<std::string>& parts) {
  std::string out = "*" + std::to_string(parts.size()) + "\r\n";
  for (const auto& p : parts) {
    out += "$" + std::to_string(p.size()) + "\r\n" + p + "\r\n";
  }
  return out;
}

std::string resp_encode_simple(const std::string& s) { return "+" + s + "\r\n"; }
std::string resp_encode_error(const std::string& s) { return "-" + s + "\r\n"; }
std::string resp_encode_bulk(const std::string& s) {
  return "$" + std::to_string(s.size()) + "\r\n" + s + "\r\n";
}
std::string resp_encode_null() { return "$-1\r\n"; }
std::string resp_encode_integer(std::int64_t v) {
  return ":" + std::to_string(v) + "\r\n";
}

namespace {
/// Parse "<digits>\r\n" starting at pos; returns value and advances pos.
std::optional<std::int64_t> parse_int_line(const std::string& data,
                                           std::size_t& pos) {
  const std::size_t eol = data.find("\r\n", pos);
  if (eol == std::string::npos) return std::nullopt;
  std::int64_t value = 0;
  const char* begin = data.data() + pos;
  const char* end = data.data() + eol;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  pos = eol + 2;
  return value;
}
}  // namespace

std::optional<ParsedCommand> resp_parse_command(const std::string& data,
                                                std::string* error) {
  const auto fail = [&](const char* msg) -> std::optional<ParsedCommand> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  if (data.empty()) return std::nullopt;
  if (data[0] != '*') return fail("expected array");
  std::size_t pos = 1;
  const auto count = parse_int_line(data, pos);
  if (!count.has_value()) return std::nullopt;
  if (*count < 0 || *count > 1024) return fail("bad array length");

  ParsedCommand cmd;
  for (std::int64_t i = 0; i < *count; ++i) {
    if (pos >= data.size()) return std::nullopt;
    if (data[pos] != '$') return fail("expected bulk string");
    ++pos;
    const auto len = parse_int_line(data, pos);
    if (!len.has_value()) return std::nullopt;
    if (*len < 0) return fail("negative bulk length");
    if (pos + static_cast<std::size_t>(*len) + 2 > data.size()) {
      return std::nullopt;  // incomplete
    }
    cmd.parts.push_back(data.substr(pos, static_cast<std::size_t>(*len)));
    pos += static_cast<std::size_t>(*len);
    if (data.compare(pos, 2, "\r\n") != 0) return fail("missing CRLF");
    pos += 2;
  }
  cmd.consumed = pos;
  return cmd;
}

}  // namespace tfsim::workloads::kv
