#include "workloads/kvstore/kvstore.hpp"

#include <stdexcept>

namespace tfsim::workloads::kv {

std::string make_value(const std::string& key, std::uint64_t version,
                       std::uint32_t size) {
  // xorshift-style expansion of a (key, version) seed: deterministic,
  // cheap, and different for every version.
  std::uint64_t s = version * 0x9e3779b97f4a7c15ULL;
  for (const char c : key) s = (s ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  std::string v(size, '\0');
  for (std::uint32_t i = 0; i < size; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    v[i] = static_cast<char>('a' + (s % 26));
  }
  return v;
}

std::uint64_t KvStore::hash_key(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : key) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  }
  return h;
}

KvStore::KvStore(node::Node& node, const KvStoreConfig& cfg)
    : node_(node), cfg_(cfg) {
  if ((cfg_.buckets & (cfg_.buckets - 1)) != 0 || cfg_.buckets == 0) {
    throw std::invalid_argument("KvStore: buckets must be a power of two");
  }
  buckets_.assign(cfg_.buckets, -1);
  entries_.reserve(1024);
  bucket_map_ = AddrSpan<std::uint64_t>(node, cfg_.buckets, cfg_.placement);
  entry_map_ = AddrSpan<std::uint8_t>(node, cfg_.max_keys * kEntryBytes,
                                      cfg_.placement);
  entry_slots_ = cfg_.max_keys;
  // Aux heap: large enough that per-request touches do not self-cache.
  aux_heap_ = AddrSpan<std::uint8_t>(node, 2 * sim::kGiB, cfg_.placement);
}

void KvStore::touch_value(node::MemContext& ctx, mem::Addr addr, bool write) {
  const std::uint64_t lines = mem::lines_spanned(addr, cfg_.value_size);
  for (std::uint64_t i = 0; i < lines; ++i) {
    ctx.access(addr + i * mem::kCacheLineBytes, write, /*dependent=*/false);
  }
}

void KvStore::touch_aux(node::MemContext& ctx) {
  // Scattered heap touches (allocator metadata, robj headers, output
  // buffers): independent accesses over the whole heap, so they miss like
  // a real allocator-churned heap rather than cycling a cached stride.
  for (std::uint32_t i = 0; i < cfg_.aux_lines_per_request; ++i) {
    aux_cursor_ =
        aux_cursor_ * 6364136223846793005ULL + 1442695040888963407ULL;
    ctx.read(aux_heap_.addr_of(aux_cursor_ % aux_heap_.bytes()));
  }
}

std::int64_t KvStore::find(node::MemContext& ctx, const std::string& key,
                           std::uint64_t h) {
  const std::uint64_t b = h & (cfg_.buckets - 1);
  bucket_map_.touch_read(ctx, b, /*dependent=*/true);
  std::int64_t idx = buckets_[b];
  while (idx >= 0) {
    // Entry metadata: one line, dependent (chain pointer chase).
    entry_map_.touch_read(ctx, static_cast<std::uint64_t>(idx) * kEntryBytes,
                          /*dependent=*/true);
    const Entry& e = entries_[static_cast<std::size_t>(idx)];
    if (e.live && e.key_hash == h && e.key == key) return idx;
    idx = e.next;
  }
  return -1;
}

void KvStore::set(node::MemContext& ctx, const std::string& key,
                  std::uint64_t version) {
  const std::uint64_t h = hash_key(key);
  touch_aux(ctx);
  std::int64_t idx = find(ctx, key, h);
  if (idx < 0) {
    if (entries_.size() >= entry_slots_) {
      throw std::runtime_error("KvStore: max_keys exceeded; raise config");
    }
    Entry e;
    e.key = key;
    e.key_hash = h;
    e.value_addr = node_.allocate(cfg_.value_size, cfg_.placement);
    const std::uint64_t b = h & (cfg_.buckets - 1);
    e.next = buckets_[b];
    e.live = true;
    entries_.push_back(std::move(e));
    idx = static_cast<std::int64_t>(entries_.size() - 1);
    buckets_[b] = idx;
    bucket_map_.touch_write(ctx, b);
    ++live_entries_;
  }
  Entry& e = entries_[static_cast<std::size_t>(idx)];
  if (!e.live) {
    e.live = true;
    ++live_entries_;
  }
  e.version = version;
  entry_map_.touch_write(ctx, static_cast<std::uint64_t>(idx) * kEntryBytes);
  touch_value(ctx, e.value_addr, /*write=*/true);
}

KvStore::GetResult KvStore::get(node::MemContext& ctx, const std::string& key) {
  GetResult r;
  const std::uint64_t h = hash_key(key);
  touch_aux(ctx);
  const std::int64_t idx = find(ctx, key, h);
  if (idx < 0) return r;
  const Entry& e = entries_[static_cast<std::size_t>(idx)];
  touch_value(ctx, e.value_addr, /*write=*/false);
  r.found = true;
  r.version = e.version;
  r.value = make_value(key, e.version, cfg_.value_size);
  return r;
}

bool KvStore::del(node::MemContext& ctx, const std::string& key) {
  const std::uint64_t h = hash_key(key);
  const std::int64_t idx = find(ctx, key, h);
  if (idx < 0) return false;
  Entry& e = entries_[static_cast<std::size_t>(idx)];
  if (!e.live) return false;
  e.live = false;
  --live_entries_;
  entry_map_.touch_write(ctx, static_cast<std::uint64_t>(idx) * kEntryBytes);
  return true;
}

std::uint64_t KvStore::footprint_bytes() const {
  return bucket_map_.bytes() + live_entries_ * (kEntryBytes + cfg_.value_size);
}

}  // namespace tfsim::workloads::kv
