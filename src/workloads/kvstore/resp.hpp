// Minimal RESP (REdis Serialization Protocol) codec.
//
// The KV server speaks RESP like Redis does: requests are arrays of bulk
// strings, replies are simple strings / bulk strings / errors.  Wire sizes
// from this codec feed the network-stack cost model, and the codec itself
// is exercised by protocol unit tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tfsim::workloads::kv {

/// Encode a command (e.g. {"SET", key, value}) as a RESP array of bulk
/// strings.
std::string resp_encode_command(const std::vector<std::string>& parts);

/// Encode replies.
std::string resp_encode_simple(const std::string& s);   // +OK\r\n
std::string resp_encode_error(const std::string& s);    // -ERR ...\r\n
std::string resp_encode_bulk(const std::string& s);     // $N\r\n...\r\n
std::string resp_encode_null();                         // $-1\r\n
std::string resp_encode_integer(std::int64_t v);        // :N\r\n

struct ParsedCommand {
  std::vector<std::string> parts;
  std::size_t consumed = 0;  ///< bytes of input consumed
};

/// Parse one RESP command array from `data`; nullopt if incomplete or
/// malformed (malformed sets `*error`).
std::optional<ParsedCommand> resp_parse_command(const std::string& data,
                                                std::string* error = nullptr);

}  // namespace tfsim::workloads::kv
