// Memtier-like load generator + the Redis-like server loop.
//
// Closed-loop clients (threads x connections, each sending
// requests-per-client requests back to back) against a single-threaded
// server.  The server's per-request cost = network-stack service cost
// (kernel, epoll, RESP parse, reply -- the overhead the paper identifies as
// Redis's limiting factor) + the timed memory accesses of the store
// operation.  Client-observed latency includes the client-server RTT and
// server queueing.
#pragma once

#include <cstdint>
#include <string>

#include "node/context.hpp"
#include "sim/stats.hpp"
#include "workloads/kvstore/kvstore.hpp"

namespace tfsim::workloads::kv {

/// Kernel + network-stack cost model for one request/response pass.
struct NetStackModel {
  sim::Time per_request = sim::from_us(90.0);  ///< syscalls, epoll, parse, reply
  sim::Time per_kilobyte = sim::from_us(0.35); ///< copies / checksums
  sim::Time client_rtt = sim::from_us(60.0);   ///< client <-> server network

  sim::Time service_cost(std::uint64_t wire_bytes) const {
    return per_request +
           static_cast<sim::Time>(static_cast<double>(per_kilobyte) *
                                  static_cast<double>(wire_bytes) / 1024.0);
  }
};

struct MemtierConfig {
  std::uint32_t threads = 4;             ///< paper: 4
  std::uint32_t connections = 50;        ///< per thread; paper: 50
  std::uint64_t requests_per_client = 10'000;  ///< paper: 10000
  std::uint32_t set_percent = 10;        ///< memtier default 1:10 set:get
  std::uint64_t key_space = 500'000;
  bool populate = true;                  ///< preload every key first
  std::uint64_t seed = 7;
  node::CpuConfig cpu{/*mlp=*/32, /*issue_cost=*/sim::from_ns(0.2)};
  NetStackModel netstack;
};

struct MemtierResult {
  std::uint64_t requests = 0;
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t hits = 0;
  sim::Time elapsed = 0;         ///< first request sent -> last reply received
  double ops_per_sec = 0.0;
  sim::Histogram latency_us;     ///< client-observed per request
  double avg_service_us = 0.0;   ///< server-side per request
  bool validated = true;         ///< every GET body matched expectation
  sim::Time populate_elapsed = 0;
};

class Memtier {
 public:
  Memtier(node::Node& node, KvStore& store, const MemtierConfig& cfg);

  /// Populate (optional) then run the full closed-loop benchmark.
  MemtierResult run();

  const MemtierConfig& config() const { return cfg_; }

 private:
  std::string key_name(std::uint64_t k) const;

  node::Node& node_;
  KvStore& store_;
  MemtierConfig cfg_;
};

}  // namespace tfsim::workloads::kv
