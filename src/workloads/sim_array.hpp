// SimArray: a host-side array paired with a simulated address range.
//
// Workloads are real implementations (actual BFS trees, actual key-value
// pairs) whose every logical memory access is also charged to the simulated
// memory system.  A SimArray owns the host data and knows the simulated
// physical base, so `arr.read(ctx, i)` both returns the value and walks the
// cache/NIC timing path for the backing line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/address.hpp"
#include "node/context.hpp"
#include "node/node.hpp"

namespace tfsim::workloads {

template <typename T>
class SimArray {
 public:
  SimArray(node::Node& node, std::size_t count, node::Placement placement,
           std::string name = "array")
      : host_(count),
        base_(node.allocate(count * sizeof(T), placement)),
        name_(std::move(name)) {}

  std::size_t size() const { return host_.size(); }
  mem::Addr base() const { return base_; }
  mem::Addr addr_of(std::size_t i) const { return base_ + i * sizeof(T); }
  std::uint64_t bytes() const { return host_.size() * sizeof(T); }

  /// Host-only element access (no simulated cost) -- for setup/validation.
  T& operator[](std::size_t i) { return host_[i]; }
  const T& operator[](std::size_t i) const { return host_[i]; }

  /// Timed read: charges the access to `ctx`, returns the value.
  T read(node::MemContext& ctx, std::size_t i, bool dependent = false) const {
    ctx.read(addr_of(i), dependent);
    return host_[i];
  }

  /// Timed write.
  void write(node::MemContext& ctx, std::size_t i, const T& v) {
    ctx.write(addr_of(i));
    host_[i] = v;
  }

  std::vector<T>& host() { return host_; }
  const std::vector<T>& host() const { return host_; }
  const std::string& name() const { return name_; }

 private:
  std::vector<T> host_;
  mem::Addr base_;
  std::string name_;
};

/// AddrSpan: simulated addresses for data owned elsewhere.  Used when a
/// workload already holds its host data (e.g. a CSR graph) and only needs
/// the simulated address mapping for timing.
template <typename T>
class AddrSpan {
 public:
  AddrSpan() = default;
  AddrSpan(node::Node& node, std::size_t count, node::Placement placement)
      : count_(count), base_(node.allocate(count * sizeof(T), placement)) {}

  std::size_t size() const { return count_; }
  mem::Addr base() const { return base_; }
  mem::Addr addr_of(std::size_t i) const { return base_ + i * sizeof(T); }
  std::uint64_t bytes() const { return count_ * sizeof(T); }

  /// Charge a read/write of element i to `ctx`.
  void touch_read(node::MemContext& ctx, std::size_t i,
                  bool dependent = false) const {
    ctx.read(addr_of(i), dependent);
  }
  void touch_write(node::MemContext& ctx, std::size_t i) const {
    ctx.write(addr_of(i));
  }

 private:
  std::size_t count_ = 0;
  mem::Addr base_ = 0;
};

}  // namespace tfsim::workloads
