// Credit-based flow control and tag allocation.
//
// OpenCAPI TL uses credits per virtual channel: a sender may only issue a
// command while it holds a credit; the receiver returns credits as it drains
// its buffers.  The credit pool bounds the in-flight commands on the
// compute-side AFU -- together with the NIC request window this is what
// pins the bandwidth-delay product the paper measures (~16.5 kB).
//
// Both classes are protocol-accounting checks for the retry/replay path:
// every abandoned transaction must hand its tag and credit back, and
// check_quiesced() asserts the books balance once the fabric drains.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace tfsim::capi {

class CreditPool {
 public:
  explicit CreditPool(std::uint32_t total)
      : total_(total), available_(total), min_available_(total) {}

  std::uint32_t total() const { return total_; }
  std::uint32_t available() const { return available_; }
  std::uint32_t in_use() const { return total_ - available_; }

  /// Take one credit; returns false when exhausted.
  bool try_consume() {
    if (available_ == 0) {
      ++exhaustions_;
      return false;
    }
    --available_;
    min_available_ = std::min(min_available_, available_);
    return true;
  }

  /// Return one credit.  Throws std::logic_error on over-return (a protocol
  /// bug we want loud, not silent).
  void restore() {
    if (available_ >= total_) {
      throw std::logic_error("CreditPool: credit returned twice");
    }
    ++available_;
  }

  /// Arrivals that found the pool empty (back-pressure events).
  std::uint64_t exhaustions() const { return exhaustions_; }
  /// Low-water mark of available credits since construction: how close the
  /// retry path came to starving the channel.
  std::uint32_t min_available() const { return min_available_; }

  /// Assert every credit came home -- the quiesce invariant the replay
  /// window's reclamation must uphold even for abandoned transactions.
  void check_quiesced() const {
    if (available_ != total_) {
      throw std::logic_error("CreditPool: " +
                             std::to_string(total_ - available_) +
                             " credit(s) leaked at quiesce");
    }
  }

 private:
  std::uint32_t total_;
  std::uint32_t available_;
  std::uint32_t min_available_;
  std::uint64_t exhaustions_ = 0;
};

/// Allocates response-matching tags from a fixed space (free list, LIFO).
/// Tracks per-tag allocated state, so releasing an already-free tag throws
/// on the exact duplicate -- even while other tags are still in flight.
class TagAllocator {
 public:
  explicit TagAllocator(std::uint16_t capacity) : allocated_(capacity, false) {
    free_.reserve(capacity);
    for (std::uint16_t t = capacity; t > 0; --t) {
      free_.push_back(static_cast<std::uint16_t>(t - 1));
    }
    capacity_ = capacity;
  }

  std::optional<std::uint16_t> allocate() {
    if (free_.empty()) return std::nullopt;
    const std::uint16_t t = free_.back();
    free_.pop_back();
    allocated_[t] = true;
    return t;
  }

  void release(std::uint16_t tag) {
    if (tag >= capacity_) {
      throw std::logic_error("TagAllocator: tag out of range");
    }
    if (!allocated_[tag]) {
      throw std::logic_error("TagAllocator: double release of tag " +
                             std::to_string(tag));
    }
    allocated_[tag] = false;
    free_.push_back(tag);
  }

  /// True while `tag` is held by a transaction.
  bool in_flight(std::uint16_t tag) const {
    if (tag >= capacity_) {
      throw std::logic_error("TagAllocator: tag out of range");
    }
    return allocated_[tag];
  }

  /// Assert every tag is back in the free list (see CreditPool).
  void check_quiesced() const {
    if (free_.size() != capacity_) {
      throw std::logic_error("TagAllocator: " +
                             std::to_string(capacity_ - free_.size()) +
                             " tag(s) leaked at quiesce");
    }
  }

  std::uint16_t capacity() const { return capacity_; }
  std::size_t available() const { return free_.size(); }

 private:
  std::uint16_t capacity_ = 0;
  std::vector<std::uint16_t> free_;
  std::vector<bool> allocated_;
};

}  // namespace tfsim::capi
