// Credit-based flow control and tag allocation.
//
// OpenCAPI TL uses credits per virtual channel: a sender may only issue a
// command while it holds a credit; the receiver returns credits as it drains
// its buffers.  The credit pool bounds the in-flight commands on the
// compute-side AFU -- together with the NIC request window this is what
// pins the bandwidth-delay product the paper measures (~16.5 kB).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace tfsim::capi {

class CreditPool {
 public:
  explicit CreditPool(std::uint32_t total) : total_(total), available_(total) {}

  std::uint32_t total() const { return total_; }
  std::uint32_t available() const { return available_; }
  std::uint32_t in_use() const { return total_ - available_; }

  /// Take one credit; returns false when exhausted.
  bool try_consume() {
    if (available_ == 0) return false;
    --available_;
    return true;
  }

  /// Return one credit.  Throws std::logic_error on over-return (a protocol
  /// bug we want loud, not silent).
  void restore() {
    if (available_ >= total_) {
      throw std::logic_error("CreditPool: credit returned twice");
    }
    ++available_;
  }

 private:
  std::uint32_t total_;
  std::uint32_t available_;
};

/// Allocates response-matching tags from a fixed space (free list, LIFO).
class TagAllocator {
 public:
  explicit TagAllocator(std::uint16_t capacity) {
    free_.reserve(capacity);
    for (std::uint16_t t = capacity; t > 0; --t) {
      free_.push_back(static_cast<std::uint16_t>(t - 1));
    }
    capacity_ = capacity;
  }

  std::optional<std::uint16_t> allocate() {
    if (free_.empty()) return std::nullopt;
    const std::uint16_t t = free_.back();
    free_.pop_back();
    return t;
  }

  void release(std::uint16_t tag) {
    if (tag >= capacity_) {
      throw std::logic_error("TagAllocator: tag out of range");
    }
    free_.push_back(tag);
    if (free_.size() > capacity_) {
      throw std::logic_error("TagAllocator: double release");
    }
  }

  std::uint16_t capacity() const { return capacity_; }
  std::size_t available() const { return free_.size(); }

 private:
  std::uint16_t capacity_ = 0;
  std::vector<std::uint16_t> free_;
};

}  // namespace tfsim::capi
