// OpenCAPI-like transaction-layer commands.
//
// ThymesisFlow rides the OpenCAPI 3.0 transaction layer: LLC misses to
// hot-plugged remote memory become TL commands (rd_wnitc / dma_w) that the
// compute-side AFU forwards onto the wire.  We model the command vocabulary
// the disaggregated-memory path uses plus responses.
#pragma once

#include <cstdint>
#include <string>

#include "mem/address.hpp"

namespace tfsim::capi {

enum class Opcode : std::uint8_t {
  kNop = 0x00,
  kReadRequest = 0x10,    ///< rd_wnitc: read with no intent to cache remotely
  kWriteRequest = 0x20,   ///< dma_w: posted cache-line write
  kReadResponse = 0x11,   ///< data return
  kWriteResponse = 0x21,  ///< write acknowledgement
  kFailResponse = 0x3f,   ///< access fault / timeout notification
};

constexpr bool is_request(Opcode op) {
  return op == Opcode::kReadRequest || op == Opcode::kWriteRequest;
}
constexpr bool is_response(Opcode op) {
  return op == Opcode::kReadResponse || op == Opcode::kWriteResponse ||
         op == Opcode::kFailResponse;
}
/// Response opcode paired with a request.
constexpr Opcode response_for(Opcode op) {
  switch (op) {
    case Opcode::kReadRequest: return Opcode::kReadResponse;
    case Opcode::kWriteRequest: return Opcode::kWriteResponse;
    default: return Opcode::kFailResponse;
  }
}

std::string to_string(Opcode op);

/// One TL command/response.  `tag` pairs responses with requests (aCTag in
/// OpenCAPI); `size` is the access size in bytes (cache line for the
/// disaggregated path).
struct Command {
  Opcode opcode = Opcode::kNop;
  std::uint16_t tag = 0;
  mem::Addr addr = 0;
  std::uint32_t size = mem::kCacheLineBytes;

  friend bool operator==(const Command&, const Command&) = default;
};

/// Bytes a command occupies on the wire: header always; payload for
/// write requests and read responses (the data-carrying directions).
constexpr std::uint32_t kTlHeaderBytes = 28;
constexpr std::uint32_t wire_bytes(const Command& c) {
  const bool carries_data =
      c.opcode == Opcode::kWriteRequest || c.opcode == Opcode::kReadResponse;
  return kTlHeaderBytes + (carries_data ? c.size : 0);
}

}  // namespace tfsim::capi
