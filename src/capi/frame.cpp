#include "capi/frame.hpp"

#include <algorithm>

namespace tfsim::capi {

namespace {
constexpr std::uint16_t kMagic = 0xCA91;

void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  put_u16(b, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(b, static_cast<std::uint16_t>(v >> 16));
}
void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(get_u16(p)) |
         (static_cast<std::uint32_t>(get_u16(p + 2)) << 16);
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

bool valid_opcode(std::uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kNop:
    case Opcode::kReadRequest:
    case Opcode::kWriteRequest:
    case Opcode::kReadResponse:
    case Opcode::kWriteResponse:
    case Opcode::kFailResponse:
      return true;
  }
  return false;
}
}  // namespace

std::uint32_t fletcher32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum1 = 0xffff, sum2 = 0xffff;
  std::size_t i = 0;
  while (i + 1 < len) {
    std::size_t block = std::min<std::size_t>(359 * 2, len - i);
    block &= ~std::size_t{1};
    for (std::size_t j = 0; j < block; j += 2) {
      sum1 += static_cast<std::uint32_t>(data[i + j]) |
              (static_cast<std::uint32_t>(data[i + j + 1]) << 8);
      sum2 += sum1;
    }
    sum1 = (sum1 & 0xffff) + (sum1 >> 16);
    sum2 = (sum2 & 0xffff) + (sum2 >> 16);
    i += block;
  }
  if (i < len) {  // odd trailing byte
    sum1 += data[i];
    sum2 += sum1;
  }
  sum1 = (sum1 & 0xffff) + (sum1 >> 16);
  sum2 = (sum2 & 0xffff) + (sum2 >> 16);
  return (sum2 << 16) | sum1;
}

std::vector<std::uint8_t> encode(const Command& cmd) {
  std::vector<std::uint8_t> b;
  b.reserve(kFrameBytes);
  put_u16(b, kMagic);
  b.push_back(static_cast<std::uint8_t>(cmd.opcode));
  b.push_back(0);  // reserved
  put_u16(b, cmd.tag);
  put_u16(b, 0);  // reserved
  put_u64(b, cmd.addr);
  put_u32(b, cmd.size);
  put_u32(b, fletcher32(b.data(), b.size()));
  return b;
}

DecodeResult decode(const std::uint8_t* data, std::size_t len) {
  DecodeResult res;
  if (len < kFrameBytes) {
    res.error = DecodeError::kTruncated;
    return res;
  }
  if (get_u16(data) != kMagic) {
    res.error = DecodeError::kBadMagic;
    return res;
  }
  const std::uint32_t want = get_u32(data + kFrameBytes - 4);
  const std::uint32_t got = fletcher32(data, kFrameBytes - 4);
  if (want != got) {
    res.error = DecodeError::kBadChecksum;
    return res;
  }
  if (!valid_opcode(data[2])) {
    res.error = DecodeError::kBadOpcode;
    return res;
  }
  Command cmd;
  cmd.opcode = static_cast<Opcode>(data[2]);
  cmd.tag = get_u16(data + 4);
  cmd.addr = get_u64(data + 8);
  cmd.size = get_u32(data + 16);
  res.command = cmd;
  return res;
}

}  // namespace tfsim::capi
