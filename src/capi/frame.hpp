// TL frame encode/decode.
//
// Commands are serialized into a fixed-layout byte frame with a Fletcher-32
// integrity check, mirroring how the ThymesisFlow NIC encapsulates cache
// misses before handing them to the network packetizer.  Decode validates
// structure and checksum; corruption is reported, never silently accepted.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "capi/opcodes.hpp"

namespace tfsim::capi {

inline constexpr std::size_t kFrameBytes = 24;

/// Serialize a command into its 24-byte frame.
std::vector<std::uint8_t> encode(const Command& cmd);

enum class DecodeError {
  kTruncated,
  kBadMagic,
  kBadChecksum,
  kBadOpcode,
};

struct DecodeResult {
  std::optional<Command> command;      ///< set on success
  std::optional<DecodeError> error;    ///< set on failure
};

DecodeResult decode(const std::uint8_t* data, std::size_t len);
inline DecodeResult decode(const std::vector<std::uint8_t>& buf) {
  return decode(buf.data(), buf.size());
}

/// Fletcher-32 over 16-bit words (frame uses it; exposed for tests).
std::uint32_t fletcher32(const std::uint8_t* data, std::size_t len);

}  // namespace tfsim::capi
