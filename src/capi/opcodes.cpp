#include "capi/opcodes.hpp"

namespace tfsim::capi {

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kReadRequest: return "rd_wnitc";
    case Opcode::kWriteRequest: return "dma_w";
    case Opcode::kReadResponse: return "rd_response";
    case Opcode::kWriteResponse: return "wr_response";
    case Opcode::kFailResponse: return "fail_response";
  }
  return "unknown";
}

}  // namespace tfsim::capi
