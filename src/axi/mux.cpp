#include "axi/mux.hpp"

#include <stdexcept>

namespace tfsim::axi {

RoundRobinMux::RoundRobinMux(std::string name, std::vector<Wire*> inputs,
                             Wire& out)
    : Module(std::move(name)),
      inputs_(std::move(inputs)),
      out_(out),
      transfers_(inputs_.size(), 0) {
  if (inputs_.empty()) {
    throw std::invalid_argument("RoundRobinMux: needs at least one input");
  }
}

std::size_t RoundRobinMux::pick() const {
  const std::size_t n = inputs_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (rr_ + k) % n;
    if (inputs_[i]->valid()) return i;
  }
  return n;  // none valid
}

void RoundRobinMux::eval() {
  const std::size_t n = inputs_.size();
  const std::size_t grant = pick();
  for (std::size_t i = 0; i < n; ++i) {
    inputs_[i]->set_ready(i == grant && out_.ready());
  }
  if (grant < n) {
    out_.set_valid(true);
    out_.set_beat(inputs_[grant]->beat());
  } else {
    out_.set_valid(false);
  }
}

void RoundRobinMux::tick(std::uint64_t /*cycle*/) {
  const std::size_t grant = pick();
  if (grant < inputs_.size() && inputs_[grant]->fire()) {
    ++transfers_[grant];
    // Rotate past the granted input so a saturating producer cannot starve
    // the others.
    rr_ = (grant + 1) % inputs_.size();
  }
}

}  // namespace tfsim::axi
