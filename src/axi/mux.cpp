#include "axi/mux.hpp"

#include <sstream>
#include <stdexcept>

#include "axi/checker.hpp"

namespace tfsim::axi {

RoundRobinMux::RoundRobinMux(std::string name, std::vector<Wire*> inputs,
                             Wire& out)
    : Module(std::move(name)),
      inputs_(std::move(inputs)),
      out_(out),
      transfers_(inputs_.size(), 0) {
  if (inputs_.empty()) {
    throw std::invalid_argument("RoundRobinMux: needs at least one input");
  }
}

std::size_t RoundRobinMux::pick() const {
  const std::size_t n = inputs_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (rr_ + k) % n;
    if (inputs_[i]->valid()) return i;
  }
  return n;  // none valid
}

std::size_t RoundRobinMux::grant() const {
  // Lock the grant while a downstream offer is outstanding: AXI forbids
  // changing the payload under a stalled VALID, so a newly-valid input must
  // not steal the slot mid-offer.  (If the held input retracted VALID --
  // itself a protocol violation, caught by its WireChecker -- fall back to
  // a fresh pick rather than wedging the output.)
  if (offering_ && held_ < inputs_.size() && inputs_[held_]->valid()) {
    return held_;
  }
  return pick();
}

void RoundRobinMux::eval() {
  const std::size_t n = inputs_.size();
  const std::size_t g = grant();
  for (std::size_t i = 0; i < n; ++i) {
    inputs_[i]->set_ready(i == g && out_.ready());
  }
  if (g < n) {
    out_.set_valid(true);
    out_.set_beat(inputs_[g]->beat());
  } else {
    out_.set_valid(false);
  }
}

void RoundRobinMux::tick(std::uint64_t cycle) {
  const std::size_t n = inputs_.size();
  const std::size_t g = grant();
  // Conservation self-check: the output may fire only together with the
  // granted input, carrying its exact beat; a non-granted input must never
  // fire (its READY is held low).
  if (sink() != nullptr) {
    if (out_.fire() && (g >= n || !inputs_[g]->fire())) {
      report_violation(ViolationKind::kBeatDuplicated, cycle,
                       "output fired without the granted input firing");
    } else if (out_.fire() && !(out_.beat() == inputs_[g]->beat())) {
      report_violation(ViolationKind::kBeatCorrupted, cycle,
                       "output beat differs from the granted input's beat");
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (inputs_[i]->fire() && !(i == g && out_.fire())) {
        std::ostringstream os;
        os << "input " << i << " fired without the output taking its beat";
        report_violation(ViolationKind::kBeatDropped, cycle, os.str());
      }
    }
  }
  if (g < n && inputs_[g]->fire()) {
    ++transfers_[g];
    // Rotate past the granted input so a saturating producer cannot starve
    // the others.
    rr_ = (g + 1) % n;
  }
  // Track whether this cycle's offer went un-accepted; if so the grant is
  // locked until the handshake completes.
  offering_ = out_.valid() && !out_.ready();
  held_ = g;
}

}  // namespace tfsim::axi
