#include "axi/checker.hpp"

#include <sstream>
#include <utility>

#include "sim/log.hpp"

namespace tfsim::axi {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kValidRetracted:
      return "VALID_RETRACTED";
    case ViolationKind::kPayloadMutated:
      return "PAYLOAD_MUTATED";
    case ViolationKind::kBeatDropped:
      return "BEAT_DROPPED";
    case ViolationKind::kBeatDuplicated:
      return "BEAT_DUPLICATED";
    case ViolationKind::kBeatCorrupted:
      return "BEAT_CORRUPTED";
    case ViolationKind::kBeatReordered:
      return "BEAT_REORDERED";
    case ViolationKind::kTdestChangedMidPacket:
      return "TDEST_CHANGED_MID_PACKET";
    case ViolationKind::kPacketUnterminated:
      return "PACKET_UNTERMINATED";
    case ViolationKind::kMisroute:
      return "MISROUTE";
  }
  return "UNKNOWN";
}

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "AXI protocol violation [" << axi::to_string(kind) << "] at cycle "
     << cycle << " on " << where << ": " << detail;
  return os.str();
}

void ViolationSink::report(Violation v) {
  if (mode_ == CheckMode::kOff) return;
  TFSIM_LOG(Error) << v.to_string();
  ++total_;
  if (violations_.size() < kMaxStored) violations_.push_back(v);
  if (mode_ == CheckMode::kStrict) throw ProtocolError(v);
}

std::uint64_t ViolationSink::count(ViolationKind kind) const {
  std::uint64_t n = 0;
  for (const auto& v : violations_) {
    if (v.kind == kind) ++n;
  }
  return n;
}

void ViolationSink::clear() {
  violations_.clear();
  total_ = 0;
}

namespace {

std::string beat_repr(const Beat& b) {
  std::ostringstream os;
  os << "{id=" << b.id << " dest=" << b.dest << " user=" << b.user
     << " last=" << (b.last ? 1 : 0) << "}";
  return os.str();
}

}  // namespace

WireChecker::WireChecker(std::string name, Wire& wire, ViolationSink& sink)
    : Module(std::move(name)), wire_(wire), sink_(sink) {}

void WireChecker::report(ViolationKind kind, std::uint64_t cycle,
                         std::string detail) {
  sink_.report(Violation{kind, wire_.label.empty() ? name() : wire_.label,
                         cycle, std::move(detail)});
}

void WireChecker::tick(std::uint64_t cycle) {
  // A3.2.1: once VALID is asserted it must remain asserted, and A3.2.2: the
  // payload must remain stable, until the handshake completes.
  if (prev_offered_) {
    if (!wire_.valid()) {
      report(ViolationKind::kValidRetracted, cycle,
             "VALID deasserted while beat " + beat_repr(prev_beat_) +
                 " awaited READY");
    } else if (!(wire_.beat() == prev_beat_)) {
      report(ViolationKind::kPayloadMutated, cycle,
             "beat changed from " + beat_repr(prev_beat_) + " to " +
                 beat_repr(wire_.beat()) + " while awaiting READY");
    }
  }
  if (wire_.fire()) {
    ++beats_;
    const Beat& b = wire_.beat();
    // TLAST framing: TDEST must be constant between the first beat of a
    // packet and its TLAST beat (a stream routed mid-packet would tear the
    // packet apart downstream).
    if (in_packet_ && b.dest != packet_dest_) {
      std::ostringstream os;
      os << "TDEST moved from " << packet_dest_ << " to " << b.dest
         << " inside a packet";
      report(ViolationKind::kTdestChangedMidPacket, cycle, os.str());
      packet_dest_ = b.dest;  // resynchronize; report once per change
    }
    if (b.last) {
      in_packet_ = false;
    } else if (!in_packet_) {
      in_packet_ = true;
      packet_dest_ = b.dest;
    }
  }
  prev_offered_ = wire_.valid() && !wire_.ready();
  if (prev_offered_) prev_beat_ = wire_.beat();
}

void WireChecker::finish(std::uint64_t cycle) {
  if (in_packet_) {
    std::ostringstream os;
    os << "stream ended inside an open packet (TDEST " << packet_dest_
       << " never saw TLAST)";
    report(ViolationKind::kPacketUnterminated, cycle, os.str());
    in_packet_ = false;
  }
}

FlowChecker::FlowChecker(std::string name, std::vector<const Wire*> entries,
                         std::vector<const Wire*> exits, ViolationSink& sink)
    : Module(std::move(name)),
      entries_(std::move(entries)),
      exits_(std::move(exits)),
      sink_(sink) {}

void FlowChecker::tick(std::uint64_t cycle) {
  // Entries first: a purely combinational region fires entry and exit in
  // the same cycle, and the entry beat must be bookable before the exit
  // beat is matched against it.
  for (const Wire* w : entries_) {
    if (!w->fire()) continue;
    pending_[w->beat().dest].push_back(w->beat());
    ++entered_;
  }
  for (const Wire* w : exits_) {
    if (!w->fire()) continue;
    ++exited_;
    const Beat& b = w->beat();
    auto it = pending_.find(b.dest);
    if (it == pending_.end() || it->second.empty()) {
      sink_.report(Violation{ViolationKind::kBeatDuplicated, name(), cycle,
                             "beat " + beat_repr(b) +
                                 " exited with no matching entry"});
      continue;
    }
    std::deque<Beat>& q = it->second;
    if (q.front() == b) {
      q.pop_front();
      continue;
    }
    // Not the oldest in-flight beat for this TDEST: either the region
    // reordered the stream (beat found deeper in the queue) or it corrupted
    // a payload (no byte-exact match at all).
    bool found = false;
    for (auto qi = q.begin(); qi != q.end(); ++qi) {
      if (*qi == b) {
        sink_.report(Violation{
            ViolationKind::kBeatReordered, name(), cycle,
            "beat " + beat_repr(b) + " overtook " + beat_repr(q.front()) +
                " within TDEST " + std::to_string(b.dest)});
        q.erase(qi);
        found = true;
        break;
      }
    }
    if (!found) {
      sink_.report(Violation{ViolationKind::kBeatCorrupted, name(), cycle,
                             "beat " + beat_repr(b) +
                                 " exited but the oldest in-flight beat is " +
                                 beat_repr(q.front())});
      q.pop_front();  // consume the mismatched entry to stay in sync
    }
  }
}

void FlowChecker::finish(std::uint64_t cycle) {
  if (in_flight() > allowed_in_flight_) {
    std::ostringstream os;
    os << in_flight() << " beat(s) entered but never exited ("
       << allowed_in_flight_ << " may legitimately remain buffered)";
    // pending_ is TDEST-ordered, so the first non-empty queue names the
    // stranded beat with the lowest TDEST.
    for (const auto& [dest, q] : pending_) {
      if (q.empty()) continue;
      os << "; oldest stranded beat: " << beat_repr(q.front());
      break;
    }
    sink_.report(
        Violation{ViolationKind::kBeatDropped, name(), cycle, os.str()});
  }
}

}  // namespace tfsim::axi
