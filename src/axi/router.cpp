#include "axi/router.hpp"

#include <sstream>
#include <stdexcept>

#include "axi/checker.hpp"

namespace tfsim::axi {

Router::Router(std::string name, Wire& in, std::vector<Wire*> outputs)
    : Module(std::move(name)),
      in_(in),
      outputs_(std::move(outputs)),
      transfers_(outputs_.size(), 0) {
  if (outputs_.empty()) {
    throw std::invalid_argument("Router: needs at least one output");
  }
}

void Router::eval() {
  const std::uint32_t dest = in_.beat().dest;
  const bool in_range = dest < outputs_.size();
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    const bool sel = in_.valid() && in_range && dest == i;
    outputs_[i]->set_valid(sel);
    if (sel) outputs_[i]->set_beat(in_.beat());
  }
  if (in_range) {
    in_.set_ready(outputs_[dest]->ready());
  } else {
    // Out-of-range dest: swallow the beat so the pipeline does not deadlock;
    // counted as a misroute and reported as a protocol violation.
    in_.set_ready(in_.valid());
  }
}

void Router::tick(std::uint64_t cycle) {
  // Conservation self-check: an accepted in-range beat must fire on exactly
  // the selected output, unmodified, in the same cycle; no output may fire
  // without the input firing for it.
  if (sink() != nullptr) {
    const std::uint32_t dest = in_.beat().dest;
    const bool in_fire = in_.fire();
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      const bool should_fire = in_fire && dest == i;
      if (outputs_[i]->fire() && !should_fire) {
        std::ostringstream os;
        os << "output " << i << " fired without a matching input beat";
        report_violation(ViolationKind::kBeatDuplicated, cycle, os.str());
      } else if (should_fire && !outputs_[i]->fire()) {
        std::ostringstream os;
        os << "input beat accepted but output " << i << " did not fire";
        report_violation(ViolationKind::kBeatDropped, cycle, os.str());
      } else if (should_fire && outputs_[i]->fire() &&
                 !(outputs_[i]->beat() == in_.beat())) {
        std::ostringstream os;
        os << "beat payload rewritten on the way to output " << i;
        report_violation(ViolationKind::kBeatCorrupted, cycle, os.str());
      }
    }
  }
  if (!in_.fire()) return;
  const std::uint32_t dest = in_.beat().dest;
  if (dest < outputs_.size()) {
    ++transfers_[dest];
  } else {
    ++misroutes_;
    std::ostringstream os;
    os << "beat id=" << in_.beat().id << " carried TDEST " << dest
       << " but only " << outputs_.size() << " output(s) exist; beat dropped";
    report_violation(ViolationKind::kMisroute, cycle, os.str());
  }
}

}  // namespace tfsim::axi
