#include "axi/router.hpp"

#include <stdexcept>

namespace tfsim::axi {

Router::Router(std::string name, Wire& in, std::vector<Wire*> outputs)
    : Module(std::move(name)),
      in_(in),
      outputs_(std::move(outputs)),
      transfers_(outputs_.size(), 0) {
  if (outputs_.empty()) {
    throw std::invalid_argument("Router: needs at least one output");
  }
}

void Router::eval() {
  const std::uint32_t dest = in_.beat().dest;
  const bool in_range = dest < outputs_.size();
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    const bool sel = in_.valid() && in_range && dest == i;
    outputs_[i]->set_valid(sel);
    if (sel) outputs_[i]->set_beat(in_.beat());
  }
  if (in_range) {
    in_.set_ready(outputs_[dest]->ready());
  } else {
    // Out-of-range dest: swallow the beat so the pipeline does not deadlock;
    // counted as a misroute.
    in_.set_ready(in_.valid());
  }
}

void Router::tick(std::uint64_t /*cycle*/) {
  if (!in_.fire()) return;
  const std::uint32_t dest = in_.beat().dest;
  if (dest < outputs_.size()) {
    ++transfers_[dest];
  } else {
    ++misroutes_;
  }
}

}  // namespace tfsim::axi
