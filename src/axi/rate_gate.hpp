// The paper's delay-injection module (§III-B).
//
// Spliced between the routing and multiplexer blocks of the ThymesisFlow
// compute-node egress.  It passes VALID and the payload through unchanged and
// gates the READY seen by the upstream block:
//
//     READY_NEW = READY_OLD & (COUNTER % PERIOD == 0)          (Eq. 1)
//
// where COUNTER counts FPGA clock cycles since system start.  Effectively a
// transaction may proceed once every PERIOD cycles, provided READY_OLD and
// VALID are high.  PERIOD = 1 is the vanilla system (every cycle eligible).
#pragma once

#include <cstdint>

#include "axi/module.hpp"
#include "axi/stream.hpp"

namespace tfsim::axi {

class RateGate final : public Module {
 public:
  /// `in` is the upstream (router-facing) channel, `out` the downstream
  /// (multiplexer-facing) channel.  `period` >= 1.
  RateGate(std::string name, Wire& in, Wire& out, std::uint64_t period);

  void eval() override;
  void tick(std::uint64_t cycle) override;
  /// eval() reads in_ (VALID, payload) and out_ (READY).
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{&in_, &out_};
  }
  /// The next cycle at which the Eq. 1 window (COUNTER % PERIOD == 0) flips
  /// the gate's outputs; kIdle while the window state cannot be observed
  /// (no upstream VALID and no downstream READY) or is pinned open by a
  /// held offer.  This horizon is what lets run() jump over the closed
  /// window in one step at high PERIOD.
  std::uint64_t next_activity(std::uint64_t next) const override;
  /// Fast-forward COUNTER and the stall tally across a quiescent gap.
  void advance(std::uint64_t cycles) override;

  std::uint64_t period() const { return period_; }
  /// Reconfigure the injection period (takes effect next cycle).
  void set_period(std::uint64_t period);

  /// Beats that crossed the gate since construction.
  std::uint64_t transfers() const { return transfers_; }
  /// Cycles during which upstream had VALID data but the gate held READY low
  /// (back-pressure the injector created).
  std::uint64_t stalled_cycles() const { return stalled_cycles_; }

 private:
  bool window_open() const { return counter_ % period_ == 0; }

  Wire& in_;
  Wire& out_;
  std::uint64_t period_;
  std::uint64_t counter_ = 0;  ///< COUNTER in Eq. 1: cycles since start
  bool offering_ = false;      ///< un-accepted offer held across closure
  std::uint64_t transfers_ = 0;
  std::uint64_t stalled_cycles_ = 0;
};

}  // namespace tfsim::axi
