// TDEST-based router (demultiplexer): forwards each beat to the output
// selected by beat.dest.  The ThymesisFlow egress routing block sits directly
// upstream of the delay injector.
#pragma once

#include <cstdint>
#include <vector>

#include "axi/module.hpp"
#include "axi/stream.hpp"

namespace tfsim::axi {

class Router final : public Module {
 public:
  Router(std::string name, Wire& in, std::vector<Wire*> outputs);

  void eval() override;
  void tick(std::uint64_t cycle) override;
  /// eval() reads in_ (VALID, TDEST, payload) and every output's READY.
  std::optional<std::vector<const Wire*>> inputs() const override {
    std::vector<const Wire*> ins{&in_};
    ins.insert(ins.end(), outputs_.begin(), outputs_.end());
    return ins;
  }
  /// Routing is stateless combinational logic: only wire changes (or a
  /// fire, which updates the transfer counters) matter.
  std::uint64_t next_activity(std::uint64_t next) const override {
    return in_.fire() ? next : kIdle;
  }

  /// Beats forwarded to output i.
  std::uint64_t transfers(std::size_t i) const { return transfers_.at(i); }
  /// Beats whose dest was out of range (dropped with an error count --
  /// the monitor flags these as protocol violations upstream).
  std::uint64_t misroutes() const { return misroutes_; }

 private:
  Wire& in_;
  std::vector<Wire*> outputs_;
  std::vector<std::uint64_t> transfers_;
  std::uint64_t misroutes_ = 0;
};

}  // namespace tfsim::axi
