// Round-robin multiplexer: merges N upstream AXI4-Stream channels onto one
// downstream channel.  In ThymesisFlow the egress multiplexer sits directly
// downstream of the delay injector; fairness here is what produces the
// "equal division of bandwidth" behaviour in the MCBN contention experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "axi/module.hpp"
#include "axi/stream.hpp"

namespace tfsim::axi {

class RoundRobinMux final : public Module {
 public:
  RoundRobinMux(std::string name, std::vector<Wire*> inputs, Wire& out);

  void eval() override;
  void tick(std::uint64_t cycle) override;
  /// eval() reads every input's VALID/payload and the output's READY.
  std::optional<std::vector<const Wire*>> inputs() const override {
    std::vector<const Wire*> ins(inputs_.begin(), inputs_.end());
    ins.push_back(&out_);
    return ins;
  }
  /// Arbiter state (rr_, the held grant) only changes when a handshake
  /// fires or a wire moves; with frozen wires and nothing firing the grant
  /// is stable, so the mux is idle.
  std::uint64_t next_activity(std::uint64_t next) const override {
    if (out_.fire()) return next;
    for (const Wire* w : inputs_) {
      if (w->fire()) return next;
    }
    return kIdle;
  }

  std::size_t fan_in() const { return inputs_.size(); }
  /// Beats forwarded from input i.
  std::uint64_t transfers(std::size_t i) const { return transfers_.at(i); }

 private:
  /// First valid input at or after rr_, if any.
  std::size_t pick() const;
  /// The input driving the output this cycle: while an offer made earlier is
  /// still un-accepted the original grant is held (switching would rewrite
  /// the stalled beat, violating AXI payload stability); otherwise pick().
  std::size_t grant() const;

  std::vector<Wire*> inputs_;
  Wire& out_;
  std::size_t rr_ = 0;  ///< next input to consider (rotates after a grant)
  bool offering_ = false;  ///< un-accepted downstream offer outstanding
  std::size_t held_ = 0;   ///< grant locked while offering_
  std::vector<std::uint64_t> transfers_;
};

}  // namespace tfsim::axi
