#include "axi/trace.hpp"

#include <sstream>

namespace tfsim::axi {

CycleTraceRecorder::CycleTraceRecorder(std::string name,
                                       std::vector<const Wire*> wires)
    : Module(std::move(name)), wires_(std::move(wires)) {}

void CycleTraceRecorder::tick(std::uint64_t /*cycle*/) {
  for (const Wire* w : wires_) {
    samples_.push_back(Sample{w->valid(), w->ready(), w->beat()});
  }
  ++cycles_;
}

void CycleTraceRecorder::advance(std::uint64_t cycles) {
  if (cycles_ == 0) return;  // nothing recorded yet: nothing to replicate
  const std::size_t stride = wires_.size();
  const std::size_t last_row = (cycles_ - 1) * stride;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (std::size_t w = 0; w < stride; ++w) {
      samples_.push_back(samples_[last_row + w]);
    }
    ++cycles_;
  }
}

namespace {

std::string sample_repr(const CycleTraceRecorder::Sample& s) {
  std::ostringstream os;
  os << "V=" << s.valid << " R=" << s.ready << " {id=" << s.beat.id
     << " dest=" << s.beat.dest << " user=" << s.beat.user
     << " last=" << s.beat.last << "}";
  return os.str();
}

}  // namespace

std::string CycleTraceRecorder::diff(const CycleTraceRecorder& a,
                                     const CycleTraceRecorder& b) {
  std::ostringstream os;
  if (a.wire_count() != b.wire_count()) {
    os << "wire counts differ: " << a.wire_count() << " vs " << b.wire_count();
    return os.str();
  }
  if (a.cycles() != b.cycles()) {
    os << "trace lengths differ: " << a.cycles() << " vs " << b.cycles()
       << " cycles";
    return os.str();
  }
  for (std::uint64_t c = 0; c < a.cycles(); ++c) {
    for (std::size_t w = 0; w < a.wire_count(); ++w) {
      if (!(a.at(c, w) == b.at(c, w))) {
        os << "first divergence at cycle " << c << " on wire '"
           << a.wires_[w]->label << "': " << sample_repr(a.at(c, w)) << " vs "
           << sample_repr(b.at(c, w));
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace tfsim::axi
