// AXI4-Stream protocol-assertion layer.
//
// The software equivalent of the SystemVerilog assertions a hardware team
// would bind to every AXI4-Stream interface.  Three pieces:
//
//  * Violation / ViolationSink -- a structured violation record and a
//    central collector with two modes: Strict (throw ProtocolError, the
//    simulation analogue of an assertion abort) and Collect (accumulate for
//    tests that inject bugs on purpose).  Every report is also mirrored to
//    the sim/log error channel.
//  * WireChecker -- per-wire handshake assertions, one instance bound to
//    every Wire a Testbench creates: VALID may not be retracted before the
//    beat fires (A3.2.1 of the AMBA 4 Stream spec), the payload must be
//    stable while VALID is high and READY is low (A3.2.2), and TLAST
//    framing must be well-formed (TDEST constant within a packet, no packet
//    left open at end of test).
//  * FlowChecker -- a conservation scoreboard across a module or pipeline
//    region: every beat that enters must leave exactly once, unmodified, in
//    per-TDEST order.  Catches drops, duplicates, corruption, and
//    reordering that per-wire checks cannot see.
//
// RateGate, Router, and RoundRobinMux additionally self-check cycle-exact
// conservation through the ViolationSink a Testbench attaches to every
// module (see Module::attach_sink), so the paper's delay injector is
// continuously audited for the Eq. 1 contract: gating READY must delay
// beats, never drop, duplicate, or corrupt them.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "axi/module.hpp"
#include "axi/stream.hpp"

namespace tfsim::axi {

/// Classes of AXI4-Stream contract violations the checkers detect.
enum class ViolationKind {
  kValidRetracted,    ///< VALID deasserted before READY completed the beat
  kPayloadMutated,    ///< TDATA/TDEST/TUSER/TLAST changed while stalled
  kBeatDropped,       ///< a beat entered a region and never left
  kBeatDuplicated,    ///< a beat left a region more often than it entered
  kBeatCorrupted,     ///< a beat left a region with a different payload
  kBeatReordered,     ///< per-TDEST order not preserved across a region
  kTdestChangedMidPacket,  ///< TDEST moved between beats of one packet
  kPacketUnterminated,     ///< stream ended inside a TLAST=0 packet
  kMisroute,          ///< beat carried a TDEST no output exists for
};

const char* to_string(ViolationKind kind);

/// One detected violation, in the shape sim/log and core/report consume.
struct Violation {
  ViolationKind kind = ViolationKind::kValidRetracted;
  std::string where;        ///< wire label or module name
  std::uint64_t cycle = 0;  ///< testbench cycle at detection
  std::string detail;       ///< human-readable specifics

  std::string to_string() const;
};

/// Thrown by ViolationSink in strict mode: the software analogue of a
/// SystemVerilog assertion failure aborting the simulation.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const Violation& v)
      : std::runtime_error(v.to_string()), violation_(v) {}
  const Violation& violation() const { return violation_; }

 private:
  Violation violation_;
};

/// Checker reporting policy.
enum class CheckMode {
  kOff,      ///< checks disabled (reports discarded)
  kCollect,  ///< record violations; tests inspect them afterwards
  kStrict,   ///< throw ProtocolError on the first violation
};

/// Central violation collector.  One per Testbench; shared by every
/// WireChecker, FlowChecker, and self-checking module.
class ViolationSink {
 public:
  void set_mode(CheckMode mode) { mode_ = mode; }
  CheckMode mode() const { return mode_; }

  /// Record (and log) a violation.  Throws ProtocolError in strict mode;
  /// discards in off mode.
  void report(Violation v);

  bool clean() const { return total_ == 0; }
  /// Total violations reported (including any beyond the storage cap).
  std::uint64_t total() const { return total_; }
  /// Stored violations (capped at kMaxStored to bound memory in
  /// pathological runs).
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t count(ViolationKind kind) const;
  void clear();

 private:
  static constexpr std::size_t kMaxStored = 256;
  CheckMode mode_ = CheckMode::kStrict;
  std::vector<Violation> violations_;
  std::uint64_t total_ = 0;
};

/// Per-wire handshake assertions; bound automatically to every wire a
/// Testbench creates.  Ticks like any module but drives nothing, so it has
/// no effect on combinational convergence.
class WireChecker final : public Module {
 public:
  WireChecker(std::string name, Wire& wire, ViolationSink& sink);

  void tick(std::uint64_t cycle) override;
  /// Pure observer: frozen wires with nothing firing make its tick a no-op,
  /// so quiescent gaps may be fast-forwarded past it.
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{};
  }
  std::uint64_t next_activity(std::uint64_t /*next*/) const override {
    return kIdle;
  }
  /// End-of-test framing assertion: a packet opened with TLAST=0 must have
  /// been closed.  Called by Testbench::finish_checks().
  void finish(std::uint64_t cycle);

  std::uint64_t beats() const { return beats_; }

 private:
  void report(ViolationKind kind, std::uint64_t cycle, std::string detail);

  Wire& wire_;
  ViolationSink& sink_;
  bool prev_offered_ = false;  ///< VALID && !READY at the previous edge
  Beat prev_beat_{};
  bool in_packet_ = false;  ///< saw TLAST=0, waiting for TLAST=1
  std::uint32_t packet_dest_ = 0;
  std::uint64_t beats_ = 0;
};

/// Conservation scoreboard across a region with N entry wires and M exit
/// wires: beats-in == beats-out, payloads unmodified, per-TDEST FIFO order.
/// Attach around a single module (RateGate in/out) or a whole pipeline
/// (source wire vs sink wire).
class FlowChecker final : public Module {
 public:
  FlowChecker(std::string name, std::vector<const Wire*> entries,
              std::vector<const Wire*> exits, ViolationSink& sink);

  void tick(std::uint64_t cycle) override;
  /// Pure observer, like WireChecker: the scoreboard only moves on fires,
  /// and gaps never contain one.
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{};
  }
  std::uint64_t next_activity(std::uint64_t /*next*/) const override {
    return kIdle;
  }
  /// End-of-test conservation assertion: at most `allowed_in_flight` beats
  /// may remain buffered inside the region (e.g. FIFO capacity); anything
  /// beyond that was dropped.  Called by Testbench::finish_checks() with
  /// the slack registered at construction time.
  void finish(std::uint64_t cycle);

  /// Beats the region may legitimately hold at end of test (sum of internal
  /// buffer capacities).  Default 0: purely combinational regions.
  void set_allowed_in_flight(std::uint64_t n) { allowed_in_flight_ = n; }

  std::uint64_t entered() const { return entered_; }
  std::uint64_t exited() const { return exited_; }
  std::uint64_t in_flight() const { return entered_ - exited_; }

 private:
  std::vector<const Wire*> entries_;
  std::vector<const Wire*> exits_;
  ViolationSink& sink_;
  // Ordered by TDEST so end-of-test reports never depend on hash layout
  // (simlint R2: no unordered iteration may feed serialized output).
  std::map<std::uint32_t, std::deque<Beat>> pending_;
  std::uint64_t entered_ = 0;
  std::uint64_t exited_ = 0;
  std::uint64_t allowed_in_flight_ = 0;
};

}  // namespace tfsim::axi
