#include "axi/fifo.hpp"

#include <algorithm>
#include <stdexcept>

namespace tfsim::axi {

Fifo::Fifo(std::string name, Wire& in, Wire& out, std::size_t depth)
    : Module(std::move(name)), in_(in), out_(out), depth_(depth) {
  if (depth_ == 0) throw std::invalid_argument("Fifo: depth must be >= 1");
}

void Fifo::eval() {
  in_.set_ready(data_.size() < depth_);
  const bool have = !data_.empty();
  out_.set_valid(have);
  if (have) out_.set_beat(data_.front());
}

void Fifo::tick(std::uint64_t /*cycle*/) {
  // Sample both handshakes as settled this cycle, then update state.  Pop
  // before push so a simultaneously-full FIFO can accept when it drains --
  // no: READY was computed against pre-edge occupancy, so a full FIFO did
  // not accept this cycle; order here is still pop-then-push for clarity.
  const bool out_fire = out_.fire();
  const bool in_fire = in_.fire();
  if (out_fire) {
    data_.pop_front();
    ++delivered_;
  }
  if (in_fire) {
    data_.push_back(in_.beat());
    ++accepted_;
  }
  max_occupancy_ = std::max(max_occupancy_, data_.size());
}

RegisterSlice::RegisterSlice(std::string name, Wire& in, Wire& out)
    : Module(std::move(name)), in_(in), out_(out) {}

void RegisterSlice::eval() {
  in_.set_ready(!full_);
  out_.set_valid(full_);
  if (full_) out_.set_beat(reg_);
}

void RegisterSlice::tick(std::uint64_t /*cycle*/) {
  const bool out_fire = out_.fire();
  const bool in_fire = in_.fire();
  if (out_fire) full_ = false;
  if (in_fire) {
    reg_ = in_.beat();
    full_ = true;
  }
}

}  // namespace tfsim::axi
