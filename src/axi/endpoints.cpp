#include "axi/endpoints.hpp"

namespace tfsim::axi {

Source::Source(std::string name, Wire& out, Config cfg)
    : Module(std::move(name)), out_(out), cfg_(cfg), rng_(cfg.seed) {
  offer_ = rng_.uniform() < cfg_.valid_probability;
}

Source::Source(std::string name, Wire& out)
    : Source(std::move(name), out, Config{}) {}

void Source::push(const Beat& beat) {
  queue_.push_back(beat);
  request_wake();
}

std::uint64_t Source::next_activity(std::uint64_t next) const {
  if (out_.fire()) return next;   // beat consumed: offer the next one
  if (out_.valid()) return kIdle; // held offer: VALID pinned, no coin flips
  if (!deterministic_offer()) return next;  // per-cycle coin flips
  if (cfg_.valid_probability <= 0.0) return kIdle;  // never offers
  // p >= 1: the offer is pinned true; only an empty queue keeps VALID low.
  return has_beat() ? next : kIdle;
}

Beat Source::front_beat() const {
  if (!queue_.empty()) return queue_.front();
  Beat b;
  b.id = next_id_;
  b.dest = cfg_.dest;
  return b;
}

void Source::eval() {
  const bool v = has_beat() && offer_;
  out_.set_valid(v);
  if (v) out_.set_beat(front_beat());
}

void Source::tick(std::uint64_t /*cycle*/) {
  if (out_.fire()) {
    if (!queue_.empty()) {
      queue_.pop_front();
    } else {
      ++next_id_;
    }
    ++emitted_;
  }
  // AXI4-Stream requires VALID to stay asserted until the handshake, so a
  // new coin flip happens only when we are not mid-offer.
  if (!out_.valid() || out_.fire()) {
    offer_ = rng_.uniform() < cfg_.valid_probability;
  }
}

Sink::Sink(std::string name, Wire& in, Config cfg)
    : Module(std::move(name)), in_(in), cfg_(cfg), rng_(cfg.seed) {
  accept_ = rng_.uniform() < cfg_.ready_probability;
}

Sink::Sink(std::string name, Wire& in) : Sink(std::move(name), in, Config{}) {}

void Sink::eval() { in_.set_ready(accept_); }

std::uint64_t Sink::next_activity(std::uint64_t next) const {
  if (in_.fire()) return next;
  const bool deterministic =
      cfg_.ready_probability >= 1.0 || cfg_.ready_probability <= 0.0;
  return deterministic ? kIdle : next;
}

void Sink::tick(std::uint64_t cycle) {
  if (in_.fire()) {
    arrivals_.push_back(Arrival{cycle, in_.beat()});
  }
  accept_ = rng_.uniform() < cfg_.ready_probability;
}

}  // namespace tfsim::axi
