#include "axi/testbench.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace tfsim::axi {

const char* to_string(SettleMode mode) {
  switch (mode) {
    case SettleMode::kNaive:
      return "naive";
    case SettleMode::kActivity:
      return "activity";
  }
  return "unknown";
}

SettleMode default_settle_mode() {
  static const SettleMode mode = [] {
    const char* env = std::getenv("TFSIM_SETTLE");
    if (env == nullptr || *env == '\0') return SettleMode::kActivity;
    const std::string_view v(env);
    if (v == "naive") return SettleMode::kNaive;
    if (v == "activity") return SettleMode::kActivity;
    throw std::invalid_argument(
        "TFSIM_SETTLE=\"" + std::string(v) +
        "\" is not a settle mode (expected \"naive\" or \"activity\")");
  }();
  return mode;
}

Wire& Testbench::wire(std::string label) {
  auto w = std::make_unique<Wire>();
  w->label = std::move(label);
  w->attach_change_log(&change_log_, change_log_.add_wire());
  listeners_.emplace_back();
  Wire& ref = *w;
  wires_.push_back(std::move(w));
  auto& checker = add<WireChecker>("check(" + ref.label + ")", ref, sink_);
  wire_checkers_.push_back(&checker);
  return ref;
}

void Testbench::register_module(Module& m) {
  const std::size_t index = modules_.size() - 1;
  m.attach_sink(&sink_);
  m.attach_scheduler(this, index);
  wake_at_.push_back(0);  // newly added modules are due at the next settle
  queued_.push_back(0);
  const auto ins = m.inputs();
  if (!ins.has_value()) {
    // Unknown sensitivity: re-evaluate on every wire change, like the naive
    // loop would.  Keeps hand-rolled test modules correct by default.
    catch_all_.push_back(index);
    return;
  }
  bool foreign = false;
  for (const Wire* w : *ins) {
    if (w == nullptr || w->change_log() != &change_log_) {
      foreign = true;  // a wire this bench does not track: be conservative
      continue;
    }
    listeners_[w->index()].push_back(index);
  }
  if (foreign) catch_all_.push_back(index);
}

FlowChecker& Testbench::watch_flow(std::string name,
                                   std::vector<const Wire*> entries,
                                   std::vector<const Wire*> exits,
                                   std::uint64_t allowed_in_flight) {
  auto& checker = add<FlowChecker>(std::move(name), std::move(entries),
                                   std::move(exits), sink_);
  checker.set_allowed_in_flight(allowed_in_flight);
  flow_checkers_.push_back(&checker);
  return checker;
}

void Testbench::wake_module(std::size_t module_index) {
  wake_at_[module_index] = 0;
}

void Testbench::schedule(std::size_t module_index) {
  if (queued_[module_index] == 0) {
    queued_[module_index] = 1;
    next_pending_.push_back(module_index);
  }
}

void Testbench::schedule_wire_listeners(std::uint32_t wire_index) {
  for (const std::size_t m : listeners_[wire_index]) schedule(m);
  for (const std::size_t m : catch_all_) schedule(m);
}

void Testbench::throw_non_convergence(
    const std::vector<std::size_t>& culprits) const {
  std::ostringstream os;
  os << "Testbench: combinational logic did not converge after "
     << (2 * modules_.size() + 4) << " passes; still-toggling module(s):";
  if (culprits.empty()) {
    os << " (none identified)";
  } else {
    for (std::size_t i = 0; i < culprits.size(); ++i) {
      os << (i == 0 ? " " : ", ") << modules_[culprits[i]]->name();
    }
  }
  throw std::runtime_error(os.str());
}

void Testbench::settle_naive() {
  // Fixpoint iteration: each pass lets valid/ready propagate one module
  // further.  An acyclic handshake graph converges within |modules| passes;
  // allow a generous margin before declaring a combinational loop.
  const std::size_t limit = 2 * modules_.size() + 4;
  for (std::size_t iter = 0; iter < limit; ++iter) {
    change_log_.clear();
    culprits_.clear();
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      const std::size_t before = change_log_.changed().size();
      ++eval_calls_;
      modules_[i]->eval();
      if (change_log_.changed().size() > before) culprits_.push_back(i);
    }
    if (change_log_.empty()) return;
  }
  throw_non_convergence(culprits_);
}

void Testbench::settle_activity() {
  // Seed the worklist: modules whose activity horizon arrived, plus
  // listeners of wires poked since the last settle (external stimulus
  // between step()s, or a tick that drove a wire directly).
  next_pending_.clear();
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (wake_at_[i] <= cycle_) schedule(i);
  }
  for (const std::uint32_t w : change_log_.changed()) {
    schedule_wire_listeners(w);
  }
  change_log_.clear();

  const std::size_t limit = 2 * modules_.size() + 4;
  std::size_t passes = 0;
  while (!next_pending_.empty()) {
    if (++passes > limit) throw_non_convergence(culprits_);
    pending_.swap(next_pending_);
    next_pending_.clear();
    // Evaluate in module registration order (the order the naive loop uses)
    // and allow this pass's wire changes to re-queue its own members.
    std::sort(pending_.begin(), pending_.end());
    for (const std::size_t i : pending_) queued_[i] = 0;
    culprits_.clear();
    for (const std::size_t i : pending_) {
      const std::size_t before = change_log_.changed().size();
      ++eval_calls_;
      modules_[i]->eval();
      if (change_log_.changed().size() > before) culprits_.push_back(i);
    }
    for (const std::uint32_t w : change_log_.changed()) {
      schedule_wire_listeners(w);
    }
    change_log_.clear();
  }
}

void Testbench::settle() {
  if (settle_mode_ == SettleMode::kNaive) {
    settle_naive();
  } else {
    settle_activity();
  }
}

bool Testbench::any_wire_fires() const {
  for (const auto& w : wires_) {
    if (w->fire()) return true;
  }
  return false;
}

void Testbench::step() {
  settle();
  for (auto& m : modules_) m->tick(cycle_);
  ++stepped_cycles_;
  if (settle_mode_ == SettleMode::kActivity) {
    // Refresh every module's activity horizon against the post-tick state;
    // run() fast-forwards to the earliest one when nothing fires.
    last_step_fired_ = any_wire_fires();
    const std::uint64_t next = cycle_ + 1;
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      wake_at_[i] = modules_[i]->next_activity(next);
    }
  }
  ++cycle_;
}

void Testbench::run(std::uint64_t n) {
  const std::uint64_t end = cycle_ + n;
  while (cycle_ < end) {
    step();
    if (settle_mode_ != SettleMode::kActivity) continue;
    // A quiescent gap requires: no handshake in flight (a firing wire
    // transfers a beat every cycle), no wire poked outside settle (a
    // bug-injection module driving wires from tick()), and every module's
    // next activity strictly in the future.
    if (last_step_fired_ || !change_log_.empty()) continue;
    std::uint64_t horizon = Module::kIdle;
    for (const std::uint64_t w : wake_at_) horizon = std::min(horizon, w);
    if (horizon <= cycle_) continue;
    const std::uint64_t to = std::min(horizon, end);
    if (to <= cycle_) continue;
    const std::uint64_t gap = to - cycle_;
    for (auto& m : modules_) m->advance(gap);
    skipped_cycles_ += gap;
    cycle_ += gap;
  }
}

void Testbench::finish_checks() {
  for (WireChecker* c : wire_checkers_) c->finish(cycle_);
  for (FlowChecker* c : flow_checkers_) c->finish(cycle_);
}

}  // namespace tfsim::axi
