#include "axi/testbench.hpp"

namespace tfsim::axi {

Wire& Testbench::wire(std::string label) {
  auto w = std::make_unique<Wire>();
  w->label = std::move(label);
  w->attach_dirty_flag(&dirty_);
  Wire& ref = *w;
  wires_.push_back(std::move(w));
  auto& checker = add<WireChecker>("check(" + ref.label + ")", ref, sink_);
  wire_checkers_.push_back(&checker);
  return ref;
}

FlowChecker& Testbench::watch_flow(std::string name,
                                   std::vector<const Wire*> entries,
                                   std::vector<const Wire*> exits,
                                   std::uint64_t allowed_in_flight) {
  auto& checker = add<FlowChecker>(std::move(name), std::move(entries),
                                   std::move(exits), sink_);
  checker.set_allowed_in_flight(allowed_in_flight);
  flow_checkers_.push_back(&checker);
  return checker;
}

void Testbench::settle() {
  // Fixpoint iteration: each pass lets valid/ready propagate one module
  // further.  An acyclic handshake graph converges within |modules| passes;
  // allow a generous margin before declaring a combinational loop.
  const std::size_t limit = 2 * modules_.size() + 4;
  for (std::size_t iter = 0; iter < limit; ++iter) {
    dirty_ = false;
    for (auto& m : modules_) m->eval();
    if (!dirty_) return;
  }
  throw std::runtime_error("Testbench: combinational logic did not converge");
}

void Testbench::step() {
  settle();
  for (auto& m : modules_) m->tick(cycle_);
  ++cycle_;
}

void Testbench::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

void Testbench::finish_checks() {
  for (WireChecker* c : wire_checkers_) c->finish(cycle_);
  for (FlowChecker* c : flow_checkers_) c->finish(cycle_);
}

}  // namespace tfsim::axi
