// Per-cycle wire-state recorder for differential testing of the settle
// schedulers.
//
// A CycleTraceRecorder snapshots (VALID, READY, payload) of a set of wires
// at every clock edge.  Run the same stimulus through a SettleMode::kNaive
// bench and a SettleMode::kActivity bench and the two traces must be
// byte-identical -- that equality is the correctness argument for the
// activity-driven scheduler (DESIGN.md section 10) and is enforced by
// tests/axi/sched_equiv_test.cpp and tests/property/axi_sched_fuzz_test.cpp.
//
// During a fast-forwarded gap the wires are frozen by construction, so
// advance() replicates the last snapshot once per skipped cycle; if the
// scheduler ever skipped a cycle in which a wire actually moved, the
// replicated rows diverge from the naive trace and the differential suite
// pinpoints the first bad cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/module.hpp"
#include "axi/stream.hpp"

namespace tfsim::axi {

class CycleTraceRecorder final : public Module {
 public:
  struct Sample {
    bool valid = false;
    bool ready = false;
    Beat beat{};

    friend bool operator==(const Sample&, const Sample&) = default;
  };

  CycleTraceRecorder(std::string name, std::vector<const Wire*> wires);

  void tick(std::uint64_t cycle) override;
  /// Pure observer with no eval().
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{};
  }
  std::uint64_t next_activity(std::uint64_t /*next*/) const override {
    return kIdle;
  }
  /// Replicate the last recorded row once per skipped cycle: the scheduler
  /// guarantees wires are frozen across the gap, and this is how that
  /// guarantee becomes checkable against the naive trace.
  void advance(std::uint64_t cycles) override;

  std::size_t wire_count() const { return wires_.size(); }
  /// Recorded cycles (rows).
  std::uint64_t cycles() const { return cycles_; }
  const Sample& at(std::uint64_t cycle, std::size_t wire) const {
    return samples_[cycle * wires_.size() + wire];
  }

  /// Empty string when the two traces are byte-identical; otherwise a
  /// human-readable description of the first divergence (cycle, wire label,
  /// both samples) for test failure messages and fuzz-seed replay.
  static std::string diff(const CycleTraceRecorder& a,
                          const CycleTraceRecorder& b);

 private:
  std::vector<const Wire*> wires_;
  std::vector<Sample> samples_;  ///< row-major: cycle * wire_count + wire
  std::uint64_t cycles_ = 0;
};

}  // namespace tfsim::axi
