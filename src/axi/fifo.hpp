// Synchronous FIFO and register slice: the elastic buffers used throughout
// the ThymesisFlow egress/ingress pipelines.
#pragma once

#include <cstddef>
#include <deque>

#include "axi/module.hpp"
#include "axi/stream.hpp"

namespace tfsim::axi {

/// Depth-N FIFO.  READY while not full; VALID while not empty.  A beat
/// accepted on cycle t is visible downstream on cycle t+1 (registered
/// output), matching typical synchronous FIFO behaviour.
class Fifo final : public Module {
 public:
  Fifo(std::string name, Wire& in, Wire& out, std::size_t depth);

  void eval() override;
  void tick(std::uint64_t cycle) override;
  /// eval() reads no wires: READY/VALID are pure functions of occupancy.
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{};
  }
  /// Occupancy only changes on a handshake; a FIFO with nothing firing is
  /// idle until an input wire changes.
  std::uint64_t next_activity(std::uint64_t next) const override {
    return (in_.fire() || out_.fire()) ? next : kIdle;
  }

  std::size_t depth() const { return depth_; }
  std::size_t size() const { return data_.size(); }
  std::size_t max_occupancy() const { return max_occupancy_; }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t delivered() const { return delivered_; }

 private:
  Wire& in_;
  Wire& out_;
  std::size_t depth_;
  std::deque<Beat> data_;
  std::size_t max_occupancy_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t delivered_ = 0;
};

/// Single-register pipeline stage (depth-1 "skid buffer" without
/// bypass): breaks long combinational READY chains exactly like the register
/// slices in the real design.
class RegisterSlice final : public Module {
 public:
  RegisterSlice(std::string name, Wire& in, Wire& out);

  void eval() override;
  void tick(std::uint64_t cycle) override;
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{};
  }
  std::uint64_t next_activity(std::uint64_t next) const override {
    return (in_.fire() || out_.fire()) ? next : kIdle;
  }

  bool full() const { return full_; }

 private:
  Wire& in_;
  Wire& out_;
  bool full_ = false;
  Beat reg_{};
};

}  // namespace tfsim::axi
