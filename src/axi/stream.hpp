// AXI4-Stream signal model.
//
// The ThymesisFlow hardware design interconnects its internal blocks with
// AXI4-Stream: data moves when both VALID (producer has data) and READY
// (consumer can take it) are high at a rising clock edge.  The paper's delay
// injector is a module spliced between the routing and multiplexer blocks of
// the compute-node egress that gates READY (Eq. 1).  This header models the
// wire bundle; modules are in module.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tfsim::axi {

/// One transfer ("beat") on an AXI4-Stream channel.  TDATA is abstracted to
/// a request id + routing metadata; payload width does not matter for
/// handshake-level behaviour.
struct Beat {
  std::uint64_t id = 0;      ///< request identifier (TDATA surrogate)
  std::uint32_t dest = 0;    ///< TDEST: egress route / lender port
  std::uint32_t user = 0;    ///< TUSER: opcode or flags
  bool last = true;          ///< TLAST: end of packet

  friend bool operator==(const Beat&, const Beat&) = default;
};

/// Dirty-wire set: records which wires changed since the owning testbench
/// last drained it.  The testbench assigns every wire an index at creation;
/// Wire::set_* enqueues the index at most once per drain interval (a per-wire
/// queued flag deduplicates).  The activity-driven scheduler seeds its settle
/// worklist from this set instead of sweeping every module to convergence.
/// Lives here (not in testbench.hpp) so Wire stays dependency-free.
class WireChangeLog {
 public:
  /// Register one more wire; returns its index.
  std::uint32_t add_wire() {
    queued_.push_back(0);
    return static_cast<std::uint32_t>(queued_.size() - 1);
  }

  void notify(std::uint32_t index) {
    if (queued_[index] == 0) {
      queued_[index] = 1;
      changed_.push_back(index);
    }
  }

  bool empty() const { return changed_.empty(); }
  /// Indices of wires changed since the last clear(), in first-change order.
  const std::vector<std::uint32_t>& changed() const { return changed_; }

  void clear() {
    for (const std::uint32_t i : changed_) queued_[i] = 0;
    changed_.clear();
  }

 private:
  std::vector<std::uint8_t> queued_;  ///< per-wire: already in changed_?
  std::vector<std::uint32_t> changed_;
};

/// A VALID/READY/payload wire bundle between two modules.  Combinational
/// updates flow through set_* which record the wire in the owning
/// testbench's WireChangeLog, so the settle loop re-evaluates exactly the
/// modules whose inputs changed.
class Wire {
 public:
  bool valid() const { return valid_; }
  bool ready() const { return ready_; }
  const Beat& beat() const { return beat_; }
  /// Handshake completes this cycle.
  bool fire() const { return valid_ && ready_; }

  void set_valid(bool v) {
    if (valid_ != v) {
      valid_ = v;
      mark_dirty();
    }
  }
  void set_ready(bool r) {
    if (ready_ != r) {
      ready_ = r;
      mark_dirty();
    }
  }
  void set_beat(const Beat& b) {
    if (!(beat_ == b)) {
      beat_ = b;
      mark_dirty();
    }
  }

  /// Installed by the owning testbench: change notifications drive the
  /// sensitivity-list scheduler (and combinational-convergence detection).
  void attach_change_log(WireChangeLog* log, std::uint32_t index) {
    log_ = log;
    index_ = index;
  }
  const WireChangeLog* change_log() const { return log_; }
  std::uint32_t index() const { return index_; }

  std::string label;  ///< for monitor/error messages

 private:
  void mark_dirty() {
    if (log_ != nullptr) log_->notify(index_);
  }
  bool valid_ = false;
  bool ready_ = false;
  Beat beat_{};
  WireChangeLog* log_ = nullptr;
  std::uint32_t index_ = 0;
};

}  // namespace tfsim::axi
