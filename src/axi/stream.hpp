// AXI4-Stream signal model.
//
// The ThymesisFlow hardware design interconnects its internal blocks with
// AXI4-Stream: data moves when both VALID (producer has data) and READY
// (consumer can take it) are high at a rising clock edge.  The paper's delay
// injector is a module spliced between the routing and multiplexer blocks of
// the compute-node egress that gates READY (Eq. 1).  This header models the
// wire bundle; modules are in module.hpp.
#pragma once

#include <cstdint>
#include <string>

namespace tfsim::axi {

/// One transfer ("beat") on an AXI4-Stream channel.  TDATA is abstracted to
/// a request id + routing metadata; payload width does not matter for
/// handshake-level behaviour.
struct Beat {
  std::uint64_t id = 0;      ///< request identifier (TDATA surrogate)
  std::uint32_t dest = 0;    ///< TDEST: egress route / lender port
  std::uint32_t user = 0;    ///< TUSER: opcode or flags
  bool last = true;          ///< TLAST: end of packet

  friend bool operator==(const Beat&, const Beat&) = default;
};

/// A VALID/READY/payload wire bundle between two modules.  Combinational
/// updates flow through set_* which mark the owning testbench dirty so the
/// eval loop reaches a fixpoint.
class Wire {
 public:
  bool valid() const { return valid_; }
  bool ready() const { return ready_; }
  const Beat& beat() const { return beat_; }
  /// Handshake completes this cycle.
  bool fire() const { return valid_ && ready_; }

  void set_valid(bool v) {
    if (valid_ != v) {
      valid_ = v;
      mark_dirty();
    }
  }
  void set_ready(bool r) {
    if (ready_ != r) {
      ready_ = r;
      mark_dirty();
    }
  }
  void set_beat(const Beat& b) {
    if (!(beat_ == b)) {
      beat_ = b;
      mark_dirty();
    }
  }

  /// Installed by the testbench; tracks combinational convergence.
  void attach_dirty_flag(bool* dirty) { dirty_ = dirty; }

  std::string label;  ///< for monitor/error messages

 private:
  void mark_dirty() {
    if (dirty_ != nullptr) *dirty_ = true;
  }
  bool valid_ = false;
  bool ready_ = false;
  Beat beat_{};
  bool* dirty_ = nullptr;
};

}  // namespace tfsim::axi
