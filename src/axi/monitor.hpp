// AXI4-Stream protocol monitor.
//
// Watches one wire and checks the handshake rules the spec mandates:
//  * once VALID is asserted it must remain asserted, with stable payload,
//    until READY completes the transfer (no retraction);
//  * (optionally) beats must arrive with monotonically increasing ids.
// Also collects throughput and inter-arrival statistics -- the validation
// bench uses these to check the injector's one-beat-per-PERIOD behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/module.hpp"
#include "axi/stream.hpp"
#include "sim/stats.hpp"

namespace tfsim::axi {

class Monitor final : public Module {
 public:
  Monitor(std::string name, Wire& wire, bool check_id_order = false);

  void tick(std::uint64_t cycle) override;
  /// Pure observer: no eval(), and a quiescent gap (frozen wires, nothing
  /// firing) is a sequence of no-op ticks, so fast-forwarding cannot change
  /// any count or gap statistic.
  std::optional<std::vector<const Wire*>> inputs() const override {
    return std::vector<const Wire*>{};
  }
  std::uint64_t next_activity(std::uint64_t /*next*/) const override {
    return kIdle;
  }

  std::uint64_t fires() const { return fires_; }
  const std::vector<std::string>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }

  /// Inter-arrival gap (cycles) between consecutive fired beats.
  const tfsim::sim::OnlineStats& gap_stats() const { return gaps_; }
  /// Fires per cycle over the observed window.
  double throughput(std::uint64_t cycles) const {
    return cycles ? static_cast<double>(fires_) / static_cast<double>(cycles)
                  : 0.0;
  }

 private:
  void violation(std::uint64_t cycle, const std::string& what);

  Wire& wire_;
  bool check_id_order_;
  bool prev_offered_ = false;  ///< VALID && !READY at the previous edge
  Beat prev_beat_{};
  std::uint64_t fires_ = 0;
  std::uint64_t last_fire_cycle_ = 0;
  bool any_fire_ = false;
  std::uint64_t last_id_ = 0;
  std::vector<std::string> violations_;
  tfsim::sim::OnlineStats gaps_;
};

}  // namespace tfsim::axi
