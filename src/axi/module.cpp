#include "axi/module.hpp"

namespace tfsim::axi {

Module::~Module() = default;

}  // namespace tfsim::axi
