#include "axi/module.hpp"

#include "axi/checker.hpp"

namespace tfsim::axi {

Module::~Module() = default;

void Module::report_violation(ViolationKind kind, std::uint64_t cycle,
                              const std::string& detail) const {
  if (sink_ == nullptr) return;
  sink_->report(Violation{kind, name(), cycle, detail});
}

}  // namespace tfsim::axi
