#include "axi/rate_gate.hpp"

#include <algorithm>
#include <stdexcept>

#include "axi/checker.hpp"

namespace tfsim::axi {

RateGate::RateGate(std::string name, Wire& in, Wire& out, std::uint64_t period)
    : Module(std::move(name)), in_(in), out_(out), period_(period) {
  if (period_ == 0) {
    throw std::invalid_argument("RateGate: PERIOD must be >= 1");
  }
}

void RateGate::set_period(std::uint64_t period) {
  if (period == 0) {
    throw std::invalid_argument("RateGate: PERIOD must be >= 1");
  }
  period_ = period;
  // The window schedule changed out of band: re-evaluate at the next settle
  // and recompute the activity horizon.
  request_wake();
}

std::uint64_t RateGate::next_activity(std::uint64_t next) const {
  // Queried post-tick, so counter_ is the COUNTER value eval() will see at
  // cycle `next`.
  if (in_.fire() || out_.fire()) return next;  // beat in flight: step it
  if (offering_) return kIdle;  // window pinned open until the offer lands
  if (period_ == 1) return kIdle;  // window always open: outputs track inputs
  if (!in_.valid() && !out_.ready()) {
    return kIdle;  // both gate outputs are low regardless of the window
  }
  // `open` flips at COUNTER % PERIOD == 0 (opens) and == 1 (closes); the
  // earliest flip is when the gate's outputs next change.
  const std::uint64_t phase = counter_ % period_;
  const std::uint64_t to_open = (period_ - phase) % period_;
  const std::uint64_t to_close = (period_ + 1 - phase) % period_;
  return next + std::min(to_open, to_close);
}

void RateGate::advance(std::uint64_t cycles) {
  // Replays `cycles` ticks in which nothing fired and the wires were
  // frozen: COUNTER keeps counting FPGA cycles and the stall tally keeps
  // accruing while upstream VALID waits on the closed window.
  counter_ += cycles;
  if (in_.valid() && !in_.ready()) stalled_cycles_ += cycles;
}

void RateGate::eval() {
  // Eq. 1 gates READY toward the upstream block.  Because the simulation
  // splits the spliced channel into an upstream and a downstream interface,
  // the same window must mask VALID downstream too -- otherwise an
  // always-ready consumer would re-sample the waiting beat every cycle.
  // An offer made in an open window is held until the handshake completes
  // (AXI forbids retracting VALID), so a stalled consumer extends the
  // window instead of dropping the beat.  Upstream-visible behaviour is
  // exactly Eq. 1: a transfer may start once every PERIOD cycles while
  // READY_OLD and VALID are high.
  const bool open = window_open() || offering_;
  out_.set_valid(in_.valid() && open);
  out_.set_beat(in_.beat());
  in_.set_ready(out_.ready() && open);
}

void RateGate::tick(std::uint64_t cycle) {
  // Conservation self-check: the gate is combinational, so the upstream and
  // downstream handshakes must complete in the same cycle with the same
  // payload.  READY gating may only delay a beat -- never invent, swallow,
  // or rewrite one.
  if (sink() != nullptr) {
    const bool in_fire = in_.fire();
    const bool out_fire = out_.fire();
    if (out_fire && !in_fire) {
      report_violation(ViolationKind::kBeatDuplicated, cycle,
                       "downstream handshake fired without an upstream beat");
    } else if (in_fire && !out_fire) {
      report_violation(ViolationKind::kBeatDropped, cycle,
                       "upstream beat accepted but not offered downstream");
    } else if (in_fire && out_fire && !(in_.beat() == out_.beat())) {
      report_violation(ViolationKind::kBeatCorrupted, cycle,
                       "beat payload rewritten while crossing the gate");
    }
  }
  if (in_.fire()) ++transfers_;
  if (in_.valid() && !in_.ready()) ++stalled_cycles_;
  // Hold an un-accepted downstream offer across window closure.
  offering_ = out_.valid() && !out_.ready();
  ++counter_;
}

}  // namespace tfsim::axi
