#include "axi/rate_gate.hpp"

#include <stdexcept>

namespace tfsim::axi {

RateGate::RateGate(std::string name, Wire& in, Wire& out, std::uint64_t period)
    : Module(std::move(name)), in_(in), out_(out), period_(period) {
  if (period_ == 0) {
    throw std::invalid_argument("RateGate: PERIOD must be >= 1");
  }
}

void RateGate::set_period(std::uint64_t period) {
  if (period == 0) {
    throw std::invalid_argument("RateGate: PERIOD must be >= 1");
  }
  period_ = period;
}

void RateGate::eval() {
  // Eq. 1 gates READY toward the upstream block.  Because the simulation
  // splits the spliced channel into an upstream and a downstream interface,
  // the same window must mask VALID downstream too -- otherwise an
  // always-ready consumer would re-sample the waiting beat every cycle.
  // An offer made in an open window is held until the handshake completes
  // (AXI forbids retracting VALID), so a stalled consumer extends the
  // window instead of dropping the beat.  Upstream-visible behaviour is
  // exactly Eq. 1: a transfer may start once every PERIOD cycles while
  // READY_OLD and VALID are high.
  const bool open = window_open() || offering_;
  out_.set_valid(in_.valid() && open);
  out_.set_beat(in_.beat());
  in_.set_ready(out_.ready() && open);
}

void RateGate::tick(std::uint64_t /*cycle*/) {
  if (in_.fire()) ++transfers_;
  if (in_.valid() && !in_.ready()) ++stalled_cycles_;
  // Hold an un-accepted downstream offer across window closure.
  offering_ = out_.valid() && !out_.ready();
  ++counter_;
}

}  // namespace tfsim::axi
