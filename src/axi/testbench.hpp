// Cycle-level testbench: owns wires and modules, runs the two-phase
// (combinational settle, then clock edge) simulation loop.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "axi/module.hpp"
#include "axi/stream.hpp"

namespace tfsim::axi {

class Testbench {
 public:
  /// Create a wire owned by the testbench.
  Wire& wire(std::string label);

  /// Construct and register a module.  Returns a reference with the
  /// testbench retaining ownership.
  template <typename M, typename... Args>
  M& add(Args&&... args) {
    auto mod = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *mod;
    modules_.push_back(std::move(mod));
    return ref;
  }

  /// Advance one clock cycle: settle combinational logic, then tick.
  /// Throws std::runtime_error if the combinational loop does not converge
  /// (a genuine combinational cycle in the module graph).
  void step();

  /// Advance n cycles.
  void run(std::uint64_t n);

  std::uint64_t cycle() const { return cycle_; }

 private:
  void settle();

  std::vector<std::unique_ptr<Wire>> wires_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::uint64_t cycle_ = 0;
  bool dirty_ = false;
};

}  // namespace tfsim::axi
