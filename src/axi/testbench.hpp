// Cycle-level testbench: owns wires and modules, runs the two-phase
// (combinational settle, then clock edge) simulation loop.
//
// Every wire a testbench creates is bound to a WireChecker, and every module
// it adds is handed the testbench's ViolationSink, so the AXI4-Stream
// protocol assertions (see checker.hpp) run by default.  The default mode is
// strict -- any violation throws ProtocolError, like a SystemVerilog
// assertion aborting the simulation; tests that inject bugs on purpose
// construct the bench with CheckMode::kCollect and inspect sink().
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "axi/checker.hpp"
#include "axi/module.hpp"
#include "axi/stream.hpp"

namespace tfsim::axi {

class Testbench {
 public:
  explicit Testbench(CheckMode mode = CheckMode::kStrict) {
    sink_.set_mode(mode);
  }

  /// Create a wire owned by the testbench.  A WireChecker is bound to it
  /// automatically (protocol assertions are on by default).
  Wire& wire(std::string label);

  /// Construct and register a module.  Returns a reference with the
  /// testbench retaining ownership.  The testbench's violation sink is
  /// attached so self-checking modules report into it.
  template <typename M, typename... Args>
  M& add(Args&&... args) {
    auto mod = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *mod;
    ref.attach_sink(&sink_);
    modules_.push_back(std::move(mod));
    return ref;
  }

  /// Watch a region (entry wires -> exit wires) for beat conservation:
  /// beats-in == beats-out, unmodified, in per-TDEST order.
  /// `allowed_in_flight` is the region's legitimate internal buffering
  /// (FIFO capacity etc.), checked by finish_checks().
  FlowChecker& watch_flow(std::string name, std::vector<const Wire*> entries,
                          std::vector<const Wire*> exits,
                          std::uint64_t allowed_in_flight = 0);

  /// Advance one clock cycle: settle combinational logic, then tick.
  /// Throws std::runtime_error if the combinational loop does not converge
  /// (a genuine combinational cycle in the module graph), and ProtocolError
  /// in strict mode when a checker fires.
  void step();

  /// Advance n cycles.
  void run(std::uint64_t n);

  /// End-of-test assertions: unterminated packets (WireChecker) and beat
  /// conservation (FlowChecker).  Call after the last step().
  void finish_checks();

  std::uint64_t cycle() const { return cycle_; }

  ViolationSink& sink() { return sink_; }
  const ViolationSink& sink() const { return sink_; }
  void set_check_mode(CheckMode mode) { sink_.set_mode(mode); }

 private:
  void settle();

  ViolationSink sink_;
  std::vector<std::unique_ptr<Wire>> wires_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<WireChecker*> wire_checkers_;
  std::vector<FlowChecker*> flow_checkers_;
  std::uint64_t cycle_ = 0;
  bool dirty_ = false;
};

}  // namespace tfsim::axi
